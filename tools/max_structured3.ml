(* Structured Max no-NE search with THREE free players (rock-paper-
   scissors couplings are richer than 2-player ones).  Same complete-
   certificate structure as max_structured.ml: forced nodes provably pin
   to their unique strict best response, free players range over all
   strategies. *)

module B = Bbc
module SM = Bbc_prng.Splitmix

let () =
  let n = 9 in
  let free = 3 in
  let rng = SM.create 987654321 in
  let tries = ref 0 in
  let found = ref false in
  let t0 = Unix.gettimeofday () in
  while (not !found) && Unix.gettimeofday () -. t0 < 2400. do
    incr tries;
    let weight = Array.init n (fun _ -> Array.make n 0) in
    let forced_target = Array.make n (-1) in
    for u = free to n - 1 do
      let t = SM.int rng (n - 1) in
      let t = if t >= u then t + 1 else t in
      forced_target.(u) <- t;
      weight.(u).(t) <- 1
    done;
    let randomize_player u =
      let count = 2 + SM.int rng 2 in
      let targets = SM.sample_without_replacement rng count (n - 1) in
      List.iter
        (fun t0 ->
          let t = if t0 >= u then t0 + 1 else t0 in
          weight.(u).(t) <- 1 + SM.int rng 2)
        targets
    in
    for u = 0 to free - 1 do
      randomize_player u
    done;
    let instance = B.Instance.of_weights ~k:1 weight in
    let candidates =
      Array.init n (fun u ->
          if u < free then
            [] :: List.filter_map (fun v -> if v = u then None else Some [ v ])
                    (List.init n Fun.id)
          else [ [ forced_target.(u) ] ])
    in
    match B.Exhaustive.has_equilibrium ~objective:B.Objective.Max ~candidates instance with
    | Some false ->
        found := true;
        Printf.printf "MAX no-NE (3 free players) found after %d tries (%.0fs)\n"
          !tries (Unix.gettimeofday () -. t0);
        Array.iter
          (fun row ->
            Printf.printf "  [| %s |];\n"
              (String.concat "; " (Array.to_list (Array.map string_of_int row))))
          weight
    | _ -> ()
  done;
  if not !found then Printf.printf "structured3: none after %d tries\n" !tries
