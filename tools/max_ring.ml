(* Max no-NE search biased toward strong connectivity: forced nodes
   mostly point at their ring successor (keeping a backbone cycle), so
   player deviations flip finite distances rather than reachability —
   the regime where max-objective preference cycles can live. *)

module B = Bbc
module SM = Bbc_prng.Splitmix

let () =
  let seed = int_of_string Sys.argv.(1) in
  let rng = SM.create seed in
  let tries = ref 0 in
  let found = ref false in
  let t0 = Unix.gettimeofday () in
  while (not !found) && Unix.gettimeofday () -. t0 < 3000. do
    incr tries;
    let n = 8 + SM.int rng 4 in
    let free_count = 2 + SM.int rng 2 in
    let weight = Array.init n (fun _ -> Array.make n 0) in
    let forced_target = Array.make n (-1) in
    (* Free players occupy ids 0..free_count-1; forced nodes point at
       their ring successor with prob 0.7, else a random node. *)
    for u = free_count to n - 1 do
      let t =
        if SM.float rng 1.0 < 0.7 then (u + 1) mod n
        else begin
          let t = SM.int rng (n - 1) in
          if t >= u then t + 1 else t
        end
      in
      forced_target.(u) <- t;
      weight.(u).(t) <- 1
    done;
    let randomize_player u =
      let count = 2 + SM.int rng 2 in
      let targets = SM.sample_without_replacement rng count (n - 1) in
      List.iter
        (fun t0 ->
          let t = if t0 >= u then t0 + 1 else t0 in
          weight.(u).(t) <- 1 + SM.int rng 3)
        targets
    in
    for u = 0 to free_count - 1 do
      randomize_player u
    done;
    let instance = B.Instance.of_weights ~k:1 weight in
    let candidates =
      Array.init n (fun u ->
          if u < free_count then
            [] :: List.filter_map (fun v -> if v = u then None else Some [ v ])
                    (List.init n Fun.id)
          else [ [ forced_target.(u) ] ])
    in
    match B.Exhaustive.has_equilibrium ~objective:B.Objective.Max ~candidates instance with
    | Some false ->
        found := true;
        Printf.printf "MAX no-NE ring-biased found: n=%d free=%d seed=%d try=%d (%.0fs)\n"
          n free_count seed !tries (Unix.gettimeofday () -. t0);
        Array.iter
          (fun row ->
            Printf.printf "  [| %s |];\n"
              (String.concat "; " (Array.to_list (Array.map string_of_int row))))
          weight
    | _ -> ()
  done;
  if not !found then Printf.printf "ring-biased seed=%d: none after %d tries\n" seed !tries
