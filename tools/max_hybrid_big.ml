(* Same as max_hybrid but larger n (11..16), <= 3 free nodes. *)
module B = Bbc
module SM = Bbc_prng.Splitmix

let () =
  let seed = int_of_string Sys.argv.(1) in
  let rng = SM.create seed in
  let tries = ref 0 in
  let found = ref false in
  let t0 = Unix.gettimeofday () in
  while (not !found) && Unix.gettimeofday () -. t0 < 3000. do
    incr tries;
    let n = 11 + SM.int rng 6 in
    let weight = Array.init n (fun _ -> Array.make n 0) in
    for u = 0 to n - 1 do
      let count = if SM.float rng 1.0 < 0.75 then 1 else 2 + SM.int rng 2 in
      let targets = SM.sample_without_replacement rng count (n - 1) in
      List.iter
        (fun t0 ->
          let t = if t0 >= u then t0 + 1 else t0 in
          weight.(u).(t) <- 1 + SM.int rng 3)
        targets
    done;
    let positives u =
      List.filter (fun v -> weight.(u).(v) > 0) (List.init n Fun.id)
    in
    let free = List.filter (fun u -> List.length (positives u) > 1) (List.init n Fun.id) in
    if List.length free <= 3 && List.length free >= 2 then begin
      let instance = B.Instance.of_weights ~k:1 weight in
      let candidates =
        Array.init n (fun u ->
            match positives u with
            | [ t ] -> [ [ t ] ]
            | _ ->
                [] :: List.filter_map (fun v -> if v = u then None else Some [ v ])
                        (List.init n Fun.id))
      in
      match
        B.Exhaustive.has_equilibrium ~objective:B.Objective.Max ~candidates instance
      with
      | Some false ->
          found := true;
          Printf.printf "MAX no-NE big-hybrid found: n=%d seed=%d try=%d (%.0fs)\n" n seed
            !tries (Unix.gettimeofday () -. t0);
          Array.iter
            (fun row ->
              Printf.printf "  [| %s |];\n"
                (String.concat "; " (Array.to_list (Array.map string_of_int row))))
            weight
      | _ -> ()
    end
  done;
  if not !found then Printf.printf "big-hybrid seed=%d: none after %d tries\n" seed !tries
