(* Closed-loop load generator for bbc serve: N client threads hammer a
   shared session over a Unix-domain socket and report throughput,
   latency quantiles and the consistency verdict (identical queries
   must get byte-identical answers).  Used by scripts/check_server.sh
   as the soak gate and by hand for capacity probing.

   Usage:
     bbc_loadgen --socket PATH [--clients N] [--requests N]
                 [--name CONSTRUCTION] [--n NODES] [--deadline-ms MS]
                 [--json] [--shutdown] *)

let () =
  let socket = ref "" in
  let clients = ref 4 in
  let requests = ref 2500 in
  let name = ref "ring" in
  let n = ref 12 in
  let deadline_ms = ref 0 in
  let json = ref false in
  let shutdown = ref false in
  let spec =
    [
      ("--socket", Arg.Set_string socket, "PATH  server socket (required)");
      ("--clients", Arg.Set_int clients, "N  concurrent client threads (default 4)");
      ("--requests", Arg.Set_int requests, "N  requests per client (default 2500)");
      ("--name", Arg.Set_string name, "NAME  catalog construction for the shared session (default ring)");
      ("--n", Arg.Set_int n, "N  instance size (default 12)");
      ("--deadline-ms", Arg.Set_int deadline_ms, "MS  attach a deadline to every request (0 = none)");
      ("--json", Arg.Set json, "  emit the summary as JSON instead of text");
      ("--shutdown", Arg.Set shutdown, "  send a shutdown request after the run");
    ]
  in
  let usage = "bbc_loadgen --socket PATH [options]" in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  if !socket = "" then begin
    prerr_endline "bbc_loadgen: --socket is required";
    exit 2
  end;
  let deadline_ms = if !deadline_ms > 0 then Some !deadline_ms else None in
  match
    Bbc_server.Loadgen.run ~socket:!socket ~clients:!clients ~requests:!requests
      ~name:!name ~n:!n ?deadline_ms ()
  with
  | Error e ->
      prerr_endline ("bbc_loadgen: " ^ e);
      exit 1
  | Ok s ->
      if !json then
        print_endline (Bbc.Json.to_string (Bbc_server.Loadgen.summary_to_json s))
      else begin
        Printf.printf "clients:          %d\n" s.clients;
        Printf.printf "requests:         %d\n" s.requests;
        Printf.printf "errors:           %d\n" s.errors;
        Printf.printf "protocol errors:  %d\n" s.protocol_errors;
        Printf.printf "elapsed:          %.3f s\n" s.elapsed_s;
        Printf.printf "throughput:       %.0f req/s\n" s.req_per_s;
        Printf.printf "latency p50/p99:  %.3f / %.3f ms\n" s.p50_ms s.p99_ms;
        List.iter
          (fun (m : Bbc_server.Loadgen.method_stats) ->
            Printf.printf "  %-14s count %6d  p50 %.3f ms  p99 %.3f ms\n" m.meth
              m.count m.m_p50_ms m.m_p99_ms)
          s.by_method;
        Printf.printf "consistent:       %b\n" s.consistent
      end;
      if !shutdown then begin
        match Bbc_server.Loadgen.request_shutdown ~socket:!socket with
        | Ok () -> ()
        | Error e ->
            prerr_endline ("bbc_loadgen: shutdown: " ^ e);
            exit 1
      end;
      if s.protocol_errors > 0 || not s.consistent then exit 1
