(* Closed-loop load generator for bbc serve: N concurrent connections
   (a single-threaded poll event loop, so N can reach the thousands)
   hammer identical sessions over a Unix-domain socket or TCP and
   report throughput, latency quantiles and the consistency verdict
   (identical queries must get byte-identical answers, across worker
   shards too).  Used by scripts/check_server.sh as the soak gate and
   by hand for capacity probing.

   Usage:
     bbc_loadgen (--socket PATH | --tcp HOST:PORT)
                 [--conns N] [--total N] [--sessions N]
                 [--name CONSTRUCTION] [--n NODES] [--deadline-ms MS]
                 [--duration-s S] [--json] [--shutdown] *)

let () =
  let socket = ref "" in
  let tcp = ref "" in
  let conns = ref 4 in
  let total = ref 10_000 in
  let sessions = ref 1 in
  let name = ref "ring" in
  let n = ref 12 in
  let deadline_ms = ref 0 in
  let duration_s = ref 0.0 in
  let json = ref false in
  let shutdown = ref false in
  let spec =
    [
      ("--socket", Arg.Set_string socket, "PATH  Unix-domain server socket");
      ("--tcp", Arg.Set_string tcp, "HOST:PORT  TCP server endpoint");
      ("--conns", Arg.Set_int conns, "N  concurrent connections (default 4)");
      ("--total", Arg.Set_int total, "N  total requests across all connections (default 10000)");
      ("--sessions", Arg.Set_int sessions, "N  identical sessions to spread load over (default 1)");
      ("--name", Arg.Set_string name, "NAME  catalog construction for the sessions (default ring)");
      ("--n", Arg.Set_int n, "N  instance size (default 12)");
      ("--deadline-ms", Arg.Set_int deadline_ms, "MS  attach a deadline to every request (0 = none)");
      ("--duration-s", Arg.Set_float duration_s, "S  stop issuing after S seconds, even below --total (0 = no limit)");
      ("--json", Arg.Set json, "  emit the summary as JSON instead of text");
      ("--shutdown", Arg.Set shutdown, "  send a shutdown request after the run");
    ]
  in
  let usage = "bbc_loadgen (--socket PATH | --tcp HOST:PORT) [options]" in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let endpoint =
    match (!socket, !tcp) with
    | "", "" ->
        prerr_endline "bbc_loadgen: --socket or --tcp is required";
        exit 2
    | _, "" -> Bbc_server.Net.Unix_path !socket
    | "", spec -> (
        match Bbc_server.Net.parse_tcp spec with
        | Ok (host, port) -> Bbc_server.Net.Tcp (host, port)
        | Error e ->
            prerr_endline ("bbc_loadgen: --tcp: " ^ e);
            exit 2)
    | _ ->
        prerr_endline "bbc_loadgen: --socket and --tcp are mutually exclusive";
        exit 2
  in
  let deadline_ms = if !deadline_ms > 0 then Some !deadline_ms else None in
  let duration_s = if !duration_s > 0.0 then Some !duration_s else None in
  match
    Bbc_server.Loadgen.run ~endpoint ~conns:!conns ~total:!total
      ~sessions:!sessions ~name:!name ~n:!n ?deadline_ms ?duration_s ()
  with
  | Error e ->
      prerr_endline ("bbc_loadgen: " ^ e);
      exit 1
  | Ok s ->
      if !json then
        print_endline (Bbc.Json.to_string (Bbc_server.Loadgen.summary_to_json s))
      else begin
        Printf.printf "conns:            %d\n" s.conns;
        Printf.printf "sessions:         %d\n" s.sessions;
        Printf.printf "requests:         %d\n" s.requests;
        Printf.printf "errors:           %d\n" s.errors;
        Printf.printf "protocol errors:  %d\n" s.protocol_errors;
        Printf.printf "elapsed:          %.3f s\n" s.elapsed_s;
        Printf.printf "throughput:       %.0f req/s\n" s.req_per_s;
        Printf.printf "latency p50/p99:  %.3f / %.3f ms\n" s.p50_ms s.p99_ms;
        List.iter
          (fun (m : Bbc_server.Loadgen.method_stats) ->
            Printf.printf "  %-14s count %6d  p50 %.3f ms  p99 %.3f ms\n" m.meth
              m.count m.m_p50_ms m.m_p99_ms)
          s.by_method;
        Printf.printf "consistent:       %b\n" s.consistent
      end;
      if !shutdown then begin
        match Bbc_server.Loadgen.request_shutdown ~endpoint with
        | Ok () -> ()
        | Error e ->
            prerr_endline ("bbc_loadgen: shutdown: " ^ e);
            exit 1
      end;
      if s.protocol_errors > 0 || not s.consistent then exit 1
