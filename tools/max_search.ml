module B = Bbc
module SM = Bbc_prng.Splitmix

let () =
  let n = 6 in
  let rng = SM.create 20260707 in
  let t = ref 0 in
  let found = ref false in
  let t0 = Unix.gettimeofday () in
  while not !found && !t < 120000 && Unix.gettimeofday () -. t0 < 2400. do
    incr t;
    let weight =
      Array.init n (fun u ->
          Array.init n (fun v ->
              if u = v then 0
              else if SM.float rng 1.0 < 0.55 then 0
              else 1 + SM.int rng 3))
    in
    let instance = B.Instance.of_weights ~k:1 weight in
    match B.Exhaustive.has_equilibrium ~objective:B.Objective.Max instance with
    | Some false ->
        found := true;
        Printf.printf "MAX no-NE n=6 found after %d tries (%.0fs)\n" !t (Unix.gettimeofday () -. t0);
        Array.iter
          (fun row ->
            Printf.printf "  [| %s |];\n"
              (String.concat "; " (Array.to_list (Array.map string_of_int row))))
          weight
    | _ -> ()
  done;
  if not !found then Printf.printf "MAX n=6: none after %d tries (%.0fs)\n" !t (Unix.gettimeofday () -. t0)
