(* Complete enumeration: does EVERY (4,1) BBC-max game with preference
   weights in {0..2} have a pure Nash equilibrium?  3^12 = 531441 weight
   matrices, each checked exhaustively over its full 5^4 profile space.
   (A positive answer is a machine-checked theorem at this size; a
   counterexample would be the sought Theorem-7 witness.) *)

module B = Bbc

let () =
  let n = 4 in
  let cells = n * (n - 1) in
  let total = ref 0 and without = ref 0 in
  let weight = Array.init n (fun _ -> Array.make n 0) in
  let positions =
    List.concat_map
      (fun u -> List.filter_map (fun v -> if u = v then None else Some (u, v)) (List.init n Fun.id))
      (List.init n Fun.id)
    |> Array.of_list
  in
  let t0 = Unix.gettimeofday () in
  let rec go i =
    if i = cells then begin
      incr total;
      let instance = B.Instance.of_weights ~k:1 (Array.map Array.copy weight) in
      match B.Exhaustive.has_equilibrium ~objective:B.Objective.Max instance with
      | Some true -> ()
      | Some false ->
          incr without;
          if !without <= 3 then begin
            Printf.printf "COUNTEREXAMPLE:\n";
            Array.iter
              (fun row ->
                Printf.printf "  [| %s |];\n"
                  (String.concat "; " (Array.to_list (Array.map string_of_int row))))
              weight
          end
      | None -> assert false
    end
    else begin
      let u, v = positions.(i) in
      for w = 0 to 2 do
        weight.(u).(v) <- w;
        go (i + 1)
      done;
      weight.(u).(v) <- 0
    end
  in
  go 0;
  Printf.printf
    "complete (4,1) Max sweep: %d games, %d without pure NE (%.0fs)\n" !total
    !without
    (Unix.gettimeofday () -. t0)
