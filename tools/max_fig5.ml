(* Directed search over Figure-5-like architectures for a BBC-max no-NE
   instance.  Two mirrored sub-gadgets i in {0,1}:

     iC   central switch (free: links iLT or iRT, or anything else)
     iLT, iRT  tops (forced, single preference; wiring enumerated)
     iRB  bottom switch (free; paper preferences w(iRB,iS)=w(iRB,iC)=a)
     iS   sink head (forced -> ix)
     ix, iy  sink chain (forced: ix -> iy, iy -> iC)

   n = 16.  Free nodes: 0C, 1C, 0RB, 1RB.  The enumeration covers the
   tops' forced targets and the centrals' weight profile; each variant is
   screened by exhaustive search over the free nodes' FULL strategy sets
   (17 strategies each -> 83k profiles, with early exit). *)

module B = Bbc
module SM = Bbc_prng.Splitmix

(* Node ids: gadget i base = 8*i: C=0, LT=1, RT=2, RB=3, S=4, x=5, y=6,
   spare=7 (an extra forced relay, wiring enumerated). *)
let c i = (8 * i) + 0
let lt i = (8 * i) + 1
let rt i = (8 * i) + 2
let rb i = (8 * i) + 3
let s i = (8 * i) + 4
let x i = (8 * i) + 5
let y i = (8 * i) + 6
let spare i = (8 * i) + 7

let n = 16

let build ~lt_target ~rt_target ~spare_target ~zeta ~xi ~a ~cross =
  let weight = Array.init n (fun _ -> Array.make n 0) in
  let forced u v = weight.(u).(v) <- 1 in
  for i = 0 to 1 do
    let j = 1 - i in
    (* Tops: forced targets from the enumerated choice. *)
    let resolve = function
      | `OwnS -> s i
      | `OtherS -> s j
      | `OtherC -> c j
      | `OtherLT -> lt j
      | `OwnRB -> rb i
      | `Spare -> spare i
      | `OtherSpare -> spare j
    in
    forced (lt i) (resolve lt_target);
    forced (rt i) (resolve rt_target);
    forced (spare i) (resolve spare_target);
    (* Sink chain. *)
    forced (s i) (x i);
    forced (x i) (y i);
    forced (y i) (c i);
    (* Central switch: wants both tops equally, plus the other central. *)
    weight.(c i).(lt i) <- zeta;
    weight.(c i).(rt i) <- zeta;
    weight.(c i).(c j) <- xi;
    (* Bottom switch: paper's w(RB,S) = w(RB,C) = a, plus an enumerated
       crossover preference. *)
    weight.(rb i).(s i) <- a;
    weight.(rb i).(c i) <- a;
    (match cross with
    | `None -> ()
    | `OtherC w -> weight.(rb i).(c j) <- w
    | `OwnLT w -> weight.(rb i).(lt i) <- w)
  done;
  B.Instance.of_weights ~k:1 weight

let free_nodes = [ c 0; c 1; rb 0; rb 1 ]

let target_name = function
  | `OwnS -> "ownS"
  | `OtherS -> "otherS"
  | `OtherC -> "otherC"
  | `OtherLT -> "otherLT"
  | `OwnRB -> "ownRB"
  | `Spare -> "spare"
  | `OtherSpare -> "otherSpare"

let cross_name = function
  | `None -> "none"
  | `OtherC w -> Printf.sprintf "otherC:%d" w
  | `OwnLT w -> Printf.sprintf "ownLT:%d" w

let () =
  let count = ref 0 and hits = ref 0 in
  let t0 = Unix.gettimeofday () in
  let lt_choices = [ `OwnS; `OtherS; `OtherC; `OtherLT; `Spare; `OtherSpare ] in
  let rt_choices = [ `OwnS; `OtherS; `OtherC; `OtherLT; `OwnRB; `Spare; `OtherSpare ] in
  let spare_choices = [ `OtherC; `OtherS; `OwnS ] in
  let weight_choices = [ (2, 1); (3, 1); (3, 2); (1, 1); (1, 2); (2, 3); (1, 3) ] in
  let a_choices = [ 1; 2 ] in
  let cross_choices = [ `None; `OtherC 1; `OtherC 2; `OwnLT 1; `OwnLT 2 ] in
  List.iter
    (fun lt_target ->
      List.iter
        (fun rt_target ->
          List.iter
            (fun spare_target ->
              List.iter
                (fun (zeta, xi) ->
                  List.iter
                    (fun a ->
                      List.iter
                        (fun cross ->
                          incr count;
                          let instance =
                            build ~lt_target ~rt_target ~spare_target ~zeta ~xi ~a ~cross
                          in
                          (* forced nodes pinned to their unique positive
                             target; free nodes full singleton space. *)
                          let cands =
                            Array.init n (fun u ->
                                if List.mem u free_nodes then
                                  [] :: List.filter_map
                                          (fun v -> if v = u then None else Some [ v ])
                                          (List.init n Fun.id)
                                else begin
                                  let ts =
                                    List.filter
                                      (fun v -> B.Instance.weight instance u v > 0)
                                      (List.init n Fun.id)
                                  in
                                  match ts with [ t ] -> [ [ t ] ] | _ -> [ [] ]
                                end)
                          in
                          match
                            B.Exhaustive.has_equilibrium ~objective:B.Objective.Max
                              ~candidates:cands instance
                          with
                          | Some false ->
                              incr hits;
                              if !hits <= 5 then begin
                                Printf.printf
                                  "HIT #%d: lt=%s rt=%s spare=%s zeta=%d xi=%d a=%d cross=%s\n%!"
                                  !hits (target_name lt_target)
                                  (target_name rt_target)
                                  (target_name spare_target) zeta xi a
                                  (cross_name cross);
                                let w = Array.init n (fun u -> Array.init n (fun v -> B.Instance.weight instance u v)) in
                                Array.iter
                                  (fun row ->
                                    Printf.printf "  [| %s |];\n"
                                      (String.concat "; "
                                         (Array.to_list (Array.map string_of_int row))))
                                  w
                              end
                          | _ -> ())
                        cross_choices)
                    a_choices)
                weight_choices)
            spare_choices)
        rt_choices)
    lt_choices;
  Printf.printf "fig5 sweep: %d variants, %d hits (%.0fs)\n" !count !hits
    (Unix.gettimeofday () -. t0)
