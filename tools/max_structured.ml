(* Structured search for a BBC-max no-NE instance (Theorem 7 class):
   uniform costs/lengths, budget 1, nonuniform preferences.

   Architecture: two "free" players A=0, B=1 whose preferences we search
   over, plus F forced nodes.  Each forced node gets exactly one positive
   preference toward a random target, which makes a direct link its
   unique strict best response in every profile (distance 1 is otherwise
   unattainable).  Hence any pure NE fixes the forced nodes' links, and
   NE existence reduces to the 2-player game where A and B range over all
   n strategies each (n-1 links + empty): a complete certificate checked
   by exhaustive search over that reduced space. *)

module B = Bbc
module SM = Bbc_prng.Splitmix

let () =
  let n = 10 in
  let free = 2 in
  let rng = SM.create 424242 in
  let tries = ref 0 in
  let found = ref false in
  let t0 = Unix.gettimeofday () in
  while (not !found) && Unix.gettimeofday () -. t0 < 1200. do
    incr tries;
    let weight = Array.init n (fun _ -> Array.make n 0) in
    (* Forced chain targets. *)
    let forced_target = Array.make n (-1) in
    for u = free to n - 1 do
      let t = SM.int rng (n - 1) in
      let t = if t >= u then t + 1 else t in
      forced_target.(u) <- t;
      weight.(u).(t) <- 1
    done;
    (* Free players: 2-4 positive preferences each with weights 1..3,
       never toward each other's... anywhere is fine. *)
    let randomize_player u =
      let count = 2 + SM.int rng 3 in
      let targets = SM.sample_without_replacement rng count (n - 1) in
      List.iter
        (fun t0 ->
          let t = if t0 >= u then t0 + 1 else t0 in
          weight.(u).(t) <- 1 + SM.int rng 3)
        targets
    in
    randomize_player 0;
    randomize_player 1;
    let instance = B.Instance.of_weights ~k:1 weight in
    (* Candidate space: forced nodes pinned, A and B free. *)
    let candidates =
      Array.init n (fun u ->
          if u < free then
            [] :: List.filter_map (fun v -> if v = u then None else Some [ v ])
                    (List.init n Fun.id)
          else [ [ forced_target.(u) ] ])
    in
    match B.Exhaustive.has_equilibrium ~objective:B.Objective.Max ~candidates instance with
    | Some false ->
        found := true;
        Printf.printf "MAX no-NE structured instance found after %d tries (%.0fs)\n"
          !tries (Unix.gettimeofday () -. t0);
        Printf.printf "let max_weights () = [|\n";
        Array.iter
          (fun row ->
            Printf.printf "  [| %s |];\n"
              (String.concat "; " (Array.to_list (Array.map string_of_int row))))
          weight;
        Printf.printf "|]\n%!"
    | _ -> ()
  done;
  if not !found then Printf.printf "structured: none after %d tries\n" !tries
