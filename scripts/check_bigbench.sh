#!/bin/sh
# Regression gate on the large-n engine (BENCH_*.json "bigbench" section):
#   - every small-n equivalence bit must hold (streaming builder
#     bit-identical to the Digraph route; landmark estimator exact at a
#     full sample) for every streaming family;
#   - the streaming build must stay under the ns/node ceiling at n = 10^4
#     (default 5000 ns/node, override with BIGBENCH_NS_PER_NODE_BUDGET);
#   - the n = 10^5 row must be present and completed (the landmark
#     estimate ran to a value without error).
#
# Usage: scripts/check_bigbench.sh bench/results/BENCH_smoke.json
set -eu

json=${1:?usage: check_bigbench.sh BENCH.json}
budget=${BIGBENCH_NS_PER_NODE_BUDGET:-5000}

[ -f "$json" ] || { echo "check_bigbench: $json not found" >&2; exit 1; }

# The writer emits one object per line (bench/main.ml write_json), so a
# line-oriented scan is reliable without a JSON parser.
awk -v budget="$budget" '
  /"bigbench"/ { bb = 1; next }
  bb && /"equivalence"/ { section = "equiv"; next }
  bb && /"scale"/ { section = "scale"; next }
  bb && /\]/ { section = "" }
  bb && section == "" && /^  \}/ { bb = 0 }

  section == "equiv" && /"family"/ {
    name = $0; sub(/.*"family": "/, "", name); sub(/".*/, "", name)
    ok = ($0 ~ /"streaming_matches_digraph": true/ && $0 ~ /"estimator_exact_at_full_sample": true/)
    printf "  equivalence %-12s %s\n", name, ok ? "ok" : "MISMATCH"
    equiv_checked++
    if (!ok) bad++
  }

  section == "scale" && /"family"/ {
    name = $0; sub(/.*"family": "/, "", name); sub(/".*/, "", name)
    n = $0; sub(/.*"n": /, "", n); sub(/[,}].*/, "", n)
    ns = $0; sub(/.*"build_ns_per_node": /, "", ns); sub(/[,}].*/, "", ns)
    completed = ($0 ~ /"completed": true/)
    printf "  scale %-10s n=%-7d %8.1f ns/node (budget %s)%s\n", \
      name, n, ns, budget, completed ? "" : "  [INCOMPLETE]"
    if (!completed) bad++
    if (n + 0 == 10000) {
      ceiling_checked++
      if (ns + 0 > budget + 0) { printf "  ^ over ns/node budget\n"; bad++ }
    }
    if (n + 0 >= 100000 && completed) big_done++
  }

  END {
    if (equiv_checked == 0) { print "check_bigbench: no equivalence entries found" > "/dev/stderr"; exit 1 }
    if (ceiling_checked == 0) { print "check_bigbench: no n=10^4 scale rows found" > "/dev/stderr"; exit 1 }
    if (big_done == 0) { print "check_bigbench: no completed n>=10^5 row" > "/dev/stderr"; exit 1 }
    if (bad > 0) { printf "check_bigbench: %d check%s failed\n", bad, bad == 1 ? "" : "s" > "/dev/stderr"; exit 1 }
    print "check_bigbench: ok"
  }
' "$json"
