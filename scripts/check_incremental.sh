#!/bin/sh
# Regression gate on the incremental evaluation engine (DESIGN.md
# section 9): every entry of a BENCH_*.json "incremental" section must
# report results_match = true (bit-identical walk vs the from-scratch
# oracle), and the ring+path dynamics workload — the engine's headline
# case — must hold its speedup floor (default 3x, override with
# INCR_SPEEDUP_FLOOR).
#
# Usage: scripts/check_incremental.sh bench/results/BENCH_smoke.json
set -eu

json=${1:?usage: check_incremental.sh BENCH.json}
floor=${INCR_SPEEDUP_FLOOR:-3}

[ -f "$json" ] || { echo "check_incremental: $json not found" >&2; exit 1; }

awk -v floor="$floor" '
  /"incremental"/ && /\[/ { section = 1; next }
  section && /\]/ { section = 0 }
  section && /"speedup"/ {
    name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
    sp = $0; sub(/.*"speedup": /, "", sp); sub(/[,}].*/, "", sp)
    match_ok = ($0 ~ /"results_match": true/)
    printf "  %-44s %8.2fx  %s\n", name, sp, match_ok ? "match" : "MISMATCH"
    checked++
    if (!match_ok) { bad++ }
    if (name ~ /ring\+path/) {
      gated++
      if (sp + 0 < floor + 0) {
        printf "check_incremental: %s below %sx floor\n", name, floor > "/dev/stderr"
        bad++
      }
    }
  }
  END {
    if (checked == 0) { print "check_incremental: no incremental entries found" > "/dev/stderr"; exit 1 }
    if (gated == 0) { print "check_incremental: no ring+path entry found" > "/dev/stderr"; exit 1 }
    if (bad > 0) { exit 1 }
    print "check_incremental: ok"
  }
' "$json"
