#!/bin/sh
# Crash-resume determinism gate on the campaign runner (DESIGN.md
# section 15): the final report.json must be a pure function of the
# spec — independent of jobs, chunk size, execution mode, and
# interruption.  Three legs over one fixed ~800-unit spec:
#   - reference: run to completion in-process, then require
#     `bbc campaign report` to recompute byte-identical output from the
#     checkpoints alone;
#   - crash-resume: start the same campaign with tiny chunks, SIGKILL
#     it once a few chunk files exist (no report.json yet), resume with
#     a different chunk size and jobs count, and require report.json to
#     be byte-identical to the reference (and at least one unit to have
#     been skipped from the checkpoints);
#   - via-server: run the same campaign fanned out over a sharded
#     `bbc serve --tcp` daemon and require the same bytes again.
#
# Usage: scripts/check_campaign.sh
#   (override SEEDS_PER_POINT/WORKERS/OUT_DIR)
set -eu

SEEDS_PER_POINT=${SEEDS_PER_POINT:-100}
WORKERS=${WORKERS:-2}
OUT_DIR=${OUT_DIR:-bench/results}

dune build bin/bbc_cli.exe

bbc=_build/default/bin/bbc_cli.exe

tmpdir=$(mktemp -d /tmp/bbc-check-campaign-XXXXXX)
server=
cleanup() {
  if [ -n "$server" ]; then kill "$server" 2>/dev/null || true; fi
  rm -rf "$tmpdir"
}
trap cleanup EXIT INT TERM
mkdir -p "$OUT_DIR"

# 2 points x 2 inits x 2 schedulers x SEEDS_PER_POINT seeds = 8 cells,
# 8 * SEEDS_PER_POINT units: big enough that a prompt SIGKILL lands
# mid-campaign, small enough to finish three legs in CI seconds.
cat > "$tmpdir/spec.json" <<SPEC
{"type":"bbc-campaign","name":"check-campaign","seed":2008,
 "seeds_per_point":$SEEDS_PER_POINT,"max_rounds":60,
 "points":[
   {"generator":{"kind":"sparse","zero_pct":50,"max_weight":3},"n":10,"k":2},
   {"generator":{"kind":"catalog","name":"ring"},"n":8,"k":1}],
 "inits":["empty","random"],
 "schedulers":["round-robin","max-cost"]}
SPEC
total=$((8 * SEEDS_PER_POINT))

# Leg 1: uninterrupted reference run.
"$bbc" campaign run --spec "$tmpdir/spec.json" --out "$tmpdir/ref" \
  --checkpoint-every 64 > "$tmpdir/ref.log"
grep -q "units:    $total total, 0 skipped, $total executed, 0 quarantined" \
  "$tmpdir/ref.log" || {
  echo "check_campaign: reference run did not execute all $total units" >&2
  cat "$tmpdir/ref.log" >&2
  exit 1
}
"$bbc" campaign report --out "$tmpdir/ref" | cmp - "$tmpdir/ref/report.json" || {
  echo "check_campaign: 'campaign report' disagrees with report.json" >&2
  exit 1
}

# Leg 2: SIGKILL mid-campaign, then resume with different chunking/jobs.
"$bbc" campaign run --spec "$tmpdir/spec.json" --out "$tmpdir/crash" \
  --checkpoint-every 4 --jobs 2 > "$tmpdir/crash.log" 2>&1 &
victim=$!
i=0
while [ "$(find "$tmpdir/crash" -maxdepth 1 -name 'chunk-*' 2>/dev/null | wc -l)" -lt 3 ]; do
  i=$((i + 1))
  if [ "$i" -gt 400 ]; then
    echo "check_campaign: no checkpoint chunks appeared before timeout" >&2
    exit 1
  fi
  sleep 0.05
done
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
if [ -f "$tmpdir/crash/report.json" ]; then
  echo "check_campaign: campaign finished before SIGKILL; raise SEEDS_PER_POINT" >&2
  exit 1
fi
chunks=$(find "$tmpdir/crash" -maxdepth 1 -name 'chunk-*' | wc -l)
echo "check_campaign: killed mid-campaign with $chunks chunk(s) checkpointed"
"$bbc" campaign resume --out "$tmpdir/crash" --checkpoint-every 32 --jobs 1 \
  > "$tmpdir/resume.log"
skipped=$(sed -n 's/^units: *[0-9]* total, \([0-9]*\) skipped.*/\1/p' "$tmpdir/resume.log")
if [ -z "$skipped" ] || [ "$skipped" -lt 1 ]; then
  echo "check_campaign: resume skipped no units ($skipped)" >&2
  cat "$tmpdir/resume.log" >&2
  exit 1
fi
cmp "$tmpdir/ref/report.json" "$tmpdir/crash/report.json" || {
  echo "check_campaign: crash-resume report differs from reference" >&2
  exit 1
}
echo "check_campaign: crash-resume report byte-identical ($skipped units from checkpoints)"

# Leg 3: the same campaign over a sharded serve daemon.
"$bbc" serve --tcp 127.0.0.1:0 --workers "$WORKERS" > "$tmpdir/announce" &
server=$!
i=0
while ! grep -q '^listening on tcp:' "$tmpdir/announce" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "check_campaign: serve daemon never announced its port" >&2
    exit 1
  fi
  sleep 0.1
done
endpoint=$(sed -n 's/^listening on tcp://p' "$tmpdir/announce" | head -n 1)
"$bbc" campaign run --spec "$tmpdir/spec.json" --out "$tmpdir/srv" \
  --via-server "tcp:$endpoint" --checkpoint-every 32 > "$tmpdir/srv.log"
kill -TERM "$server"
wait "$server" || {
  echo "check_campaign: serve daemon exited non-zero on SIGTERM" >&2
  exit 1
}
server=
cmp "$tmpdir/ref/report.json" "$tmpdir/srv/report.json" || {
  echo "check_campaign: via-server report differs from in-process" >&2
  exit 1
}
echo "check_campaign: via-server report byte-identical (tcp:$endpoint, $WORKERS workers)"

cp "$tmpdir/ref/report.json" "$OUT_DIR/campaign_report.json"

if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
  {
    echo "### Campaign crash-resume gate ($total units, 8 cells)"
    echo ""
    echo "- reference / crash-resume / via-server reports: byte-identical"
    echo "- chunks checkpointed before SIGKILL: $chunks; units resumed from disk: $skipped"
  } >> "$GITHUB_STEP_SUMMARY"
fi

echo "check_campaign: ok ($total units x 3 legs, reports byte-identical)"
