#!/bin/sh
# Regression gate on the flat-CSR kernels and pooled workspaces
# (DESIGN.md section 11).  Two checks against a bench --json report:
#
#   1. Every entry of the "kernels" section must report
#      results_match = true — the CSR sweep, the CSR APSP, and the
#      pooled best-response enumeration are bit-identical to their
#      list-graph references.
#   2. The evaluation hot path must hold its speedup over the recorded
#      pre-CSR baseline (BENCH_1.json): micro ns_per_run of
#      "best_response/exact (n=40,k=2)" at least KERNELS_BR_FLOOR
#      (default 2) times faster, and "dynamics/one round (n=40,k=2)" at
#      least KERNELS_DYN_FLOOR (default 1.5) times faster.  Raise or
#      lower the floors by env var when a runner generation proves
#      slower or noisier than the machine that wrote the baseline.
#
# Usage: scripts/check_kernels.sh bench/results/BENCH_smoke.json [BASELINE.json]
set -eu

json=${1:?usage: check_kernels.sh BENCH.json [BASELINE.json]}
baseline=${2:-BENCH_1.json}
br_floor=${KERNELS_BR_FLOOR:-2}
dyn_floor=${KERNELS_DYN_FLOOR:-1.5}

[ -f "$json" ] || { echo "check_kernels: $json not found" >&2; exit 1; }
[ -f "$baseline" ] || { echo "check_kernels: baseline $baseline not found" >&2; exit 1; }

# --- 1. differential bits on the kernels section -----------------------
awk '
  /"kernels"/ && /\[/ { section = 1; next }
  section && /\]/ { section = 0 }
  section && /"results_match"/ {
    name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
    sp = $0; sub(/.*"speedup": /, "", sp); sub(/[,}].*/, "", sp)
    match_ok = ($0 ~ /"results_match": true/)
    printf "  %-44s %8.2fx  %s\n", name, sp, match_ok ? "match" : "MISMATCH"
    checked++
    if (!match_ok) { bad++ }
  }
  END {
    if (checked == 0) { print "check_kernels: no kernels entries found" > "/dev/stderr"; exit 1 }
    if (bad > 0) { exit 1 }
  }
' "$json"

# --- 2. hot-path floors vs the recorded baseline -----------------------
micro_ns() {
  awk -v want="$2" '
    /"micro"/ && /\[/ { section = 1; next }
    section && /\]/ { section = 0 }
    section && /"ns_per_run"/ {
      name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
      if (name == want) {
        ns = $0; sub(/.*"ns_per_run": /, "", ns); sub(/[,}].*/, "", ns)
        print ns
        exit
      }
    }
  ' "$1"
}

gate() {
  bench_name=$1; floor=$2
  base=$(micro_ns "$baseline" "$bench_name")
  cur=$(micro_ns "$json" "$bench_name")
  [ -n "$base" ] || { echo "check_kernels: $bench_name missing from $baseline" >&2; exit 1; }
  [ -n "$cur" ] || { echo "check_kernels: $bench_name missing from $json" >&2; exit 1; }
  awk -v base="$base" -v cur="$cur" -v floor="$floor" -v name="$bench_name" '
    BEGIN {
      sp = base / cur
      printf "  %-44s %8.2fx vs baseline (floor %sx)\n", name, sp, floor
      if (sp + 0 < floor + 0) {
        printf "check_kernels: %s below %sx floor (%.1f -> %.1f ns)\n", name, floor, base, cur > "/dev/stderr"
        exit 1
      }
    }
  '
}

gate "best_response/exact (n=40,k=2)" "$br_floor"
gate "dynamics/one round (n=40,k=2)" "$dyn_floor"

echo "check_kernels: ok"
