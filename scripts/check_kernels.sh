#!/bin/sh
# Regression gate on the flat-CSR kernels and pooled workspaces
# (DESIGN.md sections 11 and 16).  Checks against a bench --json report:
#
#   1. Every entry of the "kernels" section must report
#      results_match = true — the CSR sweep, the CSR APSP, and the
#      pooled best-response enumeration are bit-identical to their
#      list-graph references.
#   2. The evaluation hot path must hold its speedup over the recorded
#      pre-CSR baseline (BENCH_1.json): micro ns_per_run of
#      "best_response/exact (n=40,k=2)" at least KERNELS_BR_FLOOR
#      (default 2) times faster, and "dynamics/one round (n=40,k=2)" at
#      least KERNELS_DYN_FLOOR (default 1.5) times faster.  Raise or
#      lower the floors by env var when a runner generation proves
#      slower or noisier than the machine that wrote the baseline.
#   3. Multi-source bit-parallel BFS gate: every "msbfs" row must
#      report results_match = true, and the batched apsp time must beat
#      the pre-batching per-source time recorded in MSBFS_BASELINE
#      (default BENCH_2.json, speedup row "graph/apsp (n=512,k=3)"
#      sequential_s) by at least MSBFS_APSP_FLOOR (default 4) times.
#      When the report was taken on a multi-core runner
#      (recommended_domains >= 2), the jobs=2 speedup rows for
#      eval/all_costs and stability/is_stable must also hold
#      MSBFS_JOBS2_FLOOR (default 1.5); on single-core runners that
#      check is skipped — there is no parallelism to measure.
#
# Usage: scripts/check_kernels.sh bench/results/BENCH_smoke.json [BASELINE.json]
set -eu

json=${1:?usage: check_kernels.sh BENCH.json [BASELINE.json]}
baseline=${2:-BENCH_1.json}
br_floor=${KERNELS_BR_FLOOR:-2}
dyn_floor=${KERNELS_DYN_FLOOR:-1.5}
msbfs_baseline=${MSBFS_BASELINE:-BENCH_2.json}
msbfs_floor=${MSBFS_APSP_FLOOR:-4}
jobs2_floor=${MSBFS_JOBS2_FLOOR:-1.5}

[ -f "$json" ] || { echo "check_kernels: $json not found" >&2; exit 1; }
[ -f "$baseline" ] || { echo "check_kernels: baseline $baseline not found" >&2; exit 1; }
[ -f "$msbfs_baseline" ] || { echo "check_kernels: msbfs baseline $msbfs_baseline not found" >&2; exit 1; }

# --- 1. differential bits on the kernels section -----------------------
awk '
  /"kernels"/ && /\[/ { section = 1; next }
  section && /\]/ { section = 0 }
  section && /"results_match"/ {
    name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
    sp = $0; sub(/.*"speedup": /, "", sp); sub(/[,}].*/, "", sp)
    match_ok = ($0 ~ /"results_match": true/)
    printf "  %-44s %8.2fx  %s\n", name, sp, match_ok ? "match" : "MISMATCH"
    checked++
    if (!match_ok) { bad++ }
  }
  END {
    if (checked == 0) { print "check_kernels: no kernels entries found" > "/dev/stderr"; exit 1 }
    if (bad > 0) { exit 1 }
  }
' "$json"

# --- 2. hot-path floors vs the recorded baseline -----------------------
micro_ns() {
  awk -v want="$2" '
    /"micro"/ && /\[/ { section = 1; next }
    section && /\]/ { section = 0 }
    section && /"ns_per_run"/ {
      name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
      if (name == want) {
        ns = $0; sub(/.*"ns_per_run": /, "", ns); sub(/[,}].*/, "", ns)
        print ns
        exit
      }
    }
  ' "$1"
}

gate() {
  bench_name=$1; floor=$2
  base=$(micro_ns "$baseline" "$bench_name")
  cur=$(micro_ns "$json" "$bench_name")
  [ -n "$base" ] || { echo "check_kernels: $bench_name missing from $baseline" >&2; exit 1; }
  [ -n "$cur" ] || { echo "check_kernels: $bench_name missing from $json" >&2; exit 1; }
  awk -v base="$base" -v cur="$cur" -v floor="$floor" -v name="$bench_name" '
    BEGIN {
      sp = base / cur
      printf "  %-44s %8.2fx vs baseline (floor %sx)\n", name, sp, floor
      if (sp + 0 < floor + 0) {
        printf "check_kernels: %s below %sx floor (%.1f -> %.1f ns)\n", name, floor, base, cur > "/dev/stderr"
        exit 1
      }
    }
  '
}

gate "best_response/exact (n=40,k=2)" "$br_floor"
gate "dynamics/one round (n=40,k=2)" "$dyn_floor"

# --- 3. multi-source bit-parallel BFS gate -----------------------------
# 3a. every differential row of the "msbfs" section must match.
awk '
  /"msbfs"/ && /\[/ { section = 1; next }
  section && /\]/ { section = 0 }
  section && /"results_match"/ {
    name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
    sp = $0; sub(/.*"speedup": /, "", sp); sub(/[,}].*/, "", sp)
    match_ok = ($0 ~ /"results_match": true/)
    printf "  %-44s %8.2fx  %s\n", name, sp, match_ok ? "match" : "MISMATCH"
    checked++
    if (!match_ok) { bad++ }
  }
  END {
    if (checked == 0) { print "check_kernels: no msbfs entries found" > "/dev/stderr"; exit 1 }
    if (bad > 0) { exit 1 }
  }
' "$json"

# Pull one numeric field from a named row of a named top-level array
# section (rows are one line each; names matched literally, so the
# parens in bench names are safe).  Optional 5th arg filters on the
# row's "jobs" field.
json_num() {
  awk -v sec="$2" -v want="$3" -v field="$4" -v jobs="${5:-}" '
    index($0, "\"" sec "\"") && /\[/ { section = 1; next }
    section && /\]/ { section = 0 }
    section && index($0, "\"name\": \"" want "\"") {
      if (jobs != "" && !index($0, "\"jobs\": " jobs ",")) next
      v = $0
      sub(".*\"" field "\": ", "", v); sub(/[,}].*/, "", v)
      print v; exit
    }
  ' "$1"
}

# 3b. batched apsp vs the pre-batching per-source time recorded before
# the kernel landed (BENCH_2 measured Apsp.compute when it was one
# scalar sweep per source).
base_apsp=$(json_num "$msbfs_baseline" speedup "graph/apsp (n=512,k=3)" sequential_s)
cur_apsp=$(json_num "$json" msbfs "msbfs/apsp (n=512,k=3)" batched_s)
[ -n "$base_apsp" ] || { echo "check_kernels: apsp row missing from $msbfs_baseline" >&2; exit 1; }
[ -n "$cur_apsp" ] || { echo "check_kernels: msbfs/apsp row missing from $json" >&2; exit 1; }
awk -v base="$base_apsp" -v cur="$cur_apsp" -v floor="$msbfs_floor" '
  BEGIN {
    sp = base / cur
    printf "  %-44s %8.2fx vs pre-batching baseline (floor %sx)\n", \
      "msbfs/apsp (n=512,k=3)", sp, floor
    if (sp + 0 < floor + 0) {
      printf "check_kernels: batched apsp below %sx floor (%.6f -> %.6f s)\n", \
        floor, base, cur > "/dev/stderr"
      exit 1
    }
  }
'

# 3c. rechunked jobs=2 scaling — only meaningful where the runner has
# cores to scale onto.
rec_domains=$(sed -n 's/.*"recommended_domains": \([0-9][0-9]*\).*/\1/p' "$json" | head -1)
if [ "${rec_domains:-1}" -lt 2 ]; then
  echo "  jobs=2 scaling: skipped (recommended_domains = ${rec_domains:-?} < 2)"
else
  for name in "eval/all_costs (n=2000,k=3)" "stability/is_stable willows(n=126)"; do
    seq_s=$(json_num "$json" speedup "$name" sequential_s 2)
    par_s=$(json_num "$json" speedup "$name" parallel_s 2)
    [ -n "$seq_s" ] && [ -n "$par_s" ] || {
      echo "check_kernels: jobs=2 speedup row for $name missing from $json" >&2
      exit 1
    }
    awk -v seq="$seq_s" -v par="$par_s" -v floor="$jobs2_floor" -v name="$name" '
      BEGIN {
        sp = seq / par
        printf "  %-44s %8.2fx at jobs=2 (floor %sx)\n", name, sp, floor
        if (sp + 0 < floor + 0) {
          printf "check_kernels: %s jobs=2 speedup below %sx\n", name, floor > "/dev/stderr"
          exit 1
        }
      }
    '
  done
fi

echo "check_kernels: ok"
