#!/bin/sh
# Differential-fuzzing gate (DESIGN.md section 12), two halves:
#
#   1. The real suites — every engine pair (Paths/Apsp vs CSR kernels,
#      scratch Eval vs Incr contexts under delta sequences, exact best
#      response vs exhaustive, in-process server vs direct calls) —
#      must report zero mismatches under a fixed seed and budget.
#   2. The harness itself must still catch bugs: the "selfcheck" suite
#      runs the same social-cost property against a deliberately broken
#      oracle (drops node 0), and the gate requires the planted bug to
#      be FOUND, and SHRUNK to an instance with n <= 8 within the step
#      budget.  A fuzzer that goes green when the code is wrong is
#      worse than no fuzzer.
#
# Usage: scripts/check_fuzz.sh
#        (override FUZZ_SEED / FUZZ_COUNT / FUZZ_SHRINK_STEPS / FUZZ_MAX_N
#         / FUZZ_MSBFS_COUNT)
set -eu

SEED=${FUZZ_SEED:-7}
COUNT=${FUZZ_COUNT:-60}
STEPS=${FUZZ_SHRINK_STEPS:-400}
MAX_N=${FUZZ_MAX_N:-8}
MSBFS_COUNT=${FUZZ_MSBFS_COUNT:-125}

dune build bin/bbc_cli.exe
bbc=_build/default/bin/bbc_cli.exe

echo "check_fuzz: all suites, seed=$SEED count=$COUNT max-shrink-steps=$STEPS"
"$bbc" fuzz --suite all --seed "$SEED" --count "$COUNT" \
  --max-shrink-steps "$STEPS" || {
  echo "check_fuzz: engine-pair mismatch (see counterexample above)" >&2
  exit 1
}

# Deeper soak on the bit-parallel batch kernels alone: 5 properties x
# $MSBFS_COUNT cases (default 625 total) across window boundaries,
# bans, shuffled source subsets and scratch reuse.
echo "check_fuzz: msbfs soak, seed=$((SEED + 1)) count=$MSBFS_COUNT"
"$bbc" fuzz --suite msbfs --seed "$((SEED + 1))" --count "$MSBFS_COUNT" \
  --max-shrink-steps "$STEPS" || {
  echo "check_fuzz: msbfs batch-kernel mismatch (see counterexample above)" >&2
  exit 1
}

echo "check_fuzz: selfcheck (planted broken oracle must be caught + shrunk)"
out=/tmp/check_fuzz_selfcheck.txt
if "$bbc" fuzz --suite selfcheck --seed "$SEED" --count "$COUNT" \
  --max-shrink-steps "$STEPS" > "$out" 2>&1; then
  cat "$out"
  echo "check_fuzz: selfcheck passed — the planted bug was NOT found" >&2
  exit 1
fi

grep -q "FAIL at case" "$out" || {
  cat "$out"
  echo "check_fuzz: selfcheck exited non-zero without a FAIL report" >&2
  exit 1
}

n=$(sed -n 's/^ *shrunk instance n = \([0-9][0-9]*\).*/\1/p' "$out" | head -1)
[ -n "$n" ] || {
  cat "$out"
  echo "check_fuzz: no shrunk-instance size in selfcheck output" >&2
  exit 1
}
if [ "$n" -gt "$MAX_N" ]; then
  cat "$out"
  echo "check_fuzz: planted bug shrunk only to n = $n (> $MAX_N)" >&2
  exit 1
fi

echo "check_fuzz: ok (all pairs clean; planted bug caught and shrunk to n = $n)"
