#!/bin/sh
# Regression gate on the observability "disabled = one branch" guarantee:
# every obs_overhead entry of a BENCH_*.json must stay within the budget
# (percent; default 3, override with OBS_OVERHEAD_BUDGET_PCT).
#
# Usage: scripts/check_obs_overhead.sh bench/results/BENCH_smoke.json
set -eu

json=${1:?usage: check_obs_overhead.sh BENCH.json}
budget=${OBS_OVERHEAD_BUDGET_PCT:-3}

[ -f "$json" ] || { echo "check_obs_overhead: $json not found" >&2; exit 1; }

# The writer emits one object per line (bench/main.ml write_json), so a
# line-oriented scan is reliable without a JSON parser.
awk -v budget="$budget" '
  /"obs_overhead"/ { section = 1; next }
  section && /\]/ { section = 0 }
  section && /"overhead_pct"/ {
    name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
    pct = $0; sub(/.*"overhead_pct": /, "", pct); sub(/[,}].*/, "", pct)
    printf "  %-44s %+6.2f%% (budget %s%%)\n", name, pct, budget
    checked++
    if (pct + 0 > budget + 0) { bad++ }
  }
  END {
    if (checked == 0) { print "check_obs_overhead: no obs_overhead entries found" > "/dev/stderr"; exit 1 }
    if (bad > 0) { printf "check_obs_overhead: %d entr%s over budget\n", bad, bad == 1 ? "y" : "ies" > "/dev/stderr"; exit 1 }
    print "check_obs_overhead: ok"
  }
' "$json"
