#!/bin/sh
# Soak gate on the serving layer (DESIGN.md section 10): start the
# daemon on a private socket, drive >= 10k requests from >= 4 concurrent
# clients against one shared session (tools/bbc_loadgen), and require
#   - zero protocol errors and zero error responses,
#   - the consistency cross-check to pass (identical queries answered
#     byte-identically under concurrency — the batching scheduler's
#     determinism contract),
#   - a graceful drain: SIGTERM makes the daemon stop accepting, finish
#     in-flight work, and exit 0.
#
# Usage: scripts/check_server.sh   (override CLIENTS/REQUESTS/SOAK_N)
set -eu

CLIENTS=${CLIENTS:-4}
REQUESTS=${REQUESTS:-2500}
SOAK_N=${SOAK_N:-12}

dune build bin/bbc_cli.exe tools/bbc_loadgen.exe

bbc=_build/default/bin/bbc_cli.exe
loadgen=_build/default/tools/bbc_loadgen.exe
sock=$(mktemp -u /tmp/bbc-check-XXXXXX.sock)

"$bbc" serve --socket "$sock" &
server=$!
trap 'kill "$server" 2>/dev/null || true; rm -f "$sock"' EXIT

# Wait for the socket to appear (the daemon unlinks stale paths and
# binds before accepting).
i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "check_server: daemon never bound $sock" >&2; exit 1; }
  sleep 0.1
done

echo "check_server: soaking $((CLIENTS * REQUESTS)) requests ($CLIENTS clients x $REQUESTS) on n=$SOAK_N"
"$loadgen" --socket "$sock" --clients "$CLIENTS" --requests "$REQUESTS" \
  --name ring --n "$SOAK_N" --json > /tmp/check_server_summary.json

# bbc_loadgen exits non-zero on protocol errors or inconsistency; the
# gate additionally requires zero error responses (no timeouts/overload
# at this load) and the full request count.
awk -v want=$((CLIENTS * REQUESTS)) '
  {
    if (!match($0, /"requests":[0-9]+/)) { print "check_server: no request count" > "/dev/stderr"; exit 1 }
    requests = substr($0, RSTART + 11, RLENGTH - 11)
    if (requests + 0 != want) { printf "check_server: served %d of %d requests\n", requests, want > "/dev/stderr"; exit 1 }
    if ($0 !~ /"errors":0,/) { print "check_server: error responses present" > "/dev/stderr"; exit 1 }
    if ($0 !~ /"protocol_errors":0,/) { print "check_server: protocol errors present" > "/dev/stderr"; exit 1 }
    if ($0 !~ /"consistent":true/) { print "check_server: inconsistent responses" > "/dev/stderr"; exit 1 }
  }
' /tmp/check_server_summary.json

# Graceful lifecycle: SIGTERM -> drain -> exit 0, socket unlinked.
kill -TERM "$server"
if wait "$server"; then :; else
  echo "check_server: daemon exited non-zero on SIGTERM" >&2
  exit 1
fi
trap - EXIT
if [ -e "$sock" ]; then
  echo "check_server: stale socket left behind" >&2
  exit 1
fi

echo "check_server: ok ($((CLIENTS * REQUESTS)) requests, 0 errors, graceful drain)"
