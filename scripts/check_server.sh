#!/bin/sh
# Soak-and-latency gate on the serving layer (DESIGN.md sections 10 and
# 14): drive a large concurrent TCP workload through the sharded
# multi-worker front and require
#   - zero error responses and zero protocol errors over the whole soak,
#   - the consistency cross-check to pass (identical queries answered
#     byte-identically under concurrency, across worker shards too),
#   - a graceful drain: SIGTERM makes the daemon stop accepting, finish
#     in-flight work, reap its workers, and exit 0 (asserted via
#     `wait "$server"` on both legs),
#   - the N-worker configuration to beat the 1-worker baseline by
#     SERVER_SPEEDUP_FLOOR on multi-core machines (auto-relaxed to a
#     sanity floor when nproc < 4 — forked shards can't beat one
#     process on one core).
#
# Latency quantiles and throughput for both legs land in
# $OUT_DIR/server_soak_*.json (uploaded as a CI artifact) and, when
# $GITHUB_STEP_SUMMARY is set, as a markdown table on the run page.
#
# Usage: scripts/check_server.sh
#   (override CONNS/REQUESTS/WORKERS/SESSIONS/SOAK_N/OUT_DIR/
#    SERVER_SPEEDUP_FLOOR)
set -eu

CONNS=${CONNS:-64}
REQUESTS=${REQUESTS:-50000}
WORKERS=${WORKERS:-4}
SESSIONS=${SESSIONS:-8}
SOAK_N=${SOAK_N:-12}
OUT_DIR=${OUT_DIR:-bench/results}

cores=$(nproc 2>/dev/null || echo 1)
if [ -z "${SERVER_SPEEDUP_FLOOR:-}" ]; then
  if [ "$cores" -ge 4 ]; then
    SERVER_SPEEDUP_FLOOR=2.0
  else
    # Too few cores for parallel speedup; only require that sharding
    # doesn't collapse throughput.
    SERVER_SPEEDUP_FLOOR=0.5
  fi
fi

dune build bin/bbc_cli.exe tools/bbc_loadgen.exe

bbc=_build/default/bin/bbc_cli.exe
loadgen=_build/default/tools/bbc_loadgen.exe

tmpdir=$(mktemp -d /tmp/bbc-check-server-XXXXXX)
server=
cleanup() {
  if [ -n "$server" ]; then kill "$server" 2>/dev/null || true; fi
  rm -rf "$tmpdir"
}
trap cleanup EXIT INT TERM
mkdir -p "$OUT_DIR"

# start_server WORKERS: launch `bbc serve --tcp 127.0.0.1:0` and wait
# for the announce line carrying the kernel-resolved port.  Sets
# $server (pid) and $endpoint (HOST:PORT).
start_server() {
  "$bbc" serve --tcp 127.0.0.1:0 --workers "$1" > "$tmpdir/announce.$1" &
  server=$!
  i=0
  while ! grep -q '^listening on tcp:' "$tmpdir/announce.$1" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "check_server: daemon (workers=$1) never announced its port" >&2
      exit 1
    fi
    sleep 0.1
  done
  endpoint=$(sed -n 's/^listening on tcp://p' "$tmpdir/announce.$1" | head -n 1)
}

# stop_server WORKERS: SIGTERM -> graceful drain -> exit 0, checked
# through wait so a crash or a non-zero worker exit fails the gate.
stop_server() {
  kill -TERM "$server"
  if wait "$server"; then
    server=
  else
    echo "check_server: daemon (workers=$1) exited non-zero on SIGTERM" >&2
    exit 1
  fi
}

# check_summary FILE: the loadgen already exits non-zero on protocol
# errors or inconsistency; additionally require the full request count
# and zero error responses (no timeouts/overload at this load).
check_summary() {
  awk -v want="$REQUESTS" '
    {
      if (!match($0, /"requests":[0-9]+/)) { print "check_server: no request count" > "/dev/stderr"; exit 1 }
      requests = substr($0, RSTART + 11, RLENGTH - 11)
      if (requests + 0 != want) { printf "check_server: served %d of %d requests\n", requests, want > "/dev/stderr"; exit 1 }
      if ($0 !~ /"errors":0,/) { print "check_server: error responses present" > "/dev/stderr"; exit 1 }
      if ($0 !~ /"protocol_errors":0,/) { print "check_server: protocol errors present" > "/dev/stderr"; exit 1 }
      if ($0 !~ /"consistent":true/) { print "check_server: inconsistent responses" > "/dev/stderr"; exit 1 }
    }
  ' "$1"
}

# field FILE NAME: pull a numeric field out of the one-line summary.
field() {
  awk -v name="$2" '
    {
      if (match($0, "\"" name "\":[0-9.]+")) {
        print substr($0, RSTART + length(name) + 3, RLENGTH - length(name) - 3)
      }
    }
  ' "$1"
}

run_leg() { # WORKERS OUT
  start_server "$1"
  echo "check_server: soaking $REQUESTS requests ($CONNS conns, $SESSIONS sessions, workers=$1, n=$SOAK_N) on tcp:$endpoint"
  "$loadgen" --tcp "$endpoint" --conns "$CONNS" --total "$REQUESTS" \
    --sessions "$SESSIONS" --name ring --n "$SOAK_N" --json > "$2"
  check_summary "$2"
  stop_server "$1"
}

single_json=$OUT_DIR/server_soak_workers1.json
multi_json=$OUT_DIR/server_soak_workers$WORKERS.json

run_leg 1 "$single_json"
run_leg "$WORKERS" "$multi_json"

single_rps=$(field "$single_json" req_per_s)
multi_rps=$(field "$multi_json" req_per_s)

speedup=$(awk -v a="$multi_rps" -v b="$single_rps" 'BEGIN { printf "%.2f", a / b }')
echo "check_server: workers=1 $single_rps req/s, workers=$WORKERS $multi_rps req/s (speedup ${speedup}x, floor $SERVER_SPEEDUP_FLOOR, $cores cores)"
awk -v s="$speedup" -v floor="$SERVER_SPEEDUP_FLOOR" 'BEGIN {
  if (s + 0 < floor + 0) {
    printf "check_server: sharding speedup %.2fx below floor %.2fx\n", s, floor > "/dev/stderr"
    exit 1
  }
}'

if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
  {
    echo "### Server soak ($REQUESTS requests, $CONNS connections, $SESSIONS sessions)"
    echo ""
    echo "| workers | req/s | p50 ms | p99 ms |"
    echo "|---:|---:|---:|---:|"
    echo "| 1 | $single_rps | $(field "$single_json" p50_ms) | $(field "$single_json" p99_ms) |"
    echo "| $WORKERS | $multi_rps | $(field "$multi_json" p50_ms) | $(field "$multi_json" p99_ms) |"
    echo ""
    echo "Sharding speedup: ${speedup}x (floor ${SERVER_SPEEDUP_FLOOR}, ${cores} cores)."
  } >> "$GITHUB_STEP_SUMMARY"
fi

echo "check_server: ok ($((2 * REQUESTS)) requests total, 0 errors, consistent, graceful drains)"
