# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check bench bench-full bench-json experiments examples clean doc

all: build

# Pre-commit gate (documented in README): full build, test suite, and a
# smoke bench --json into a temp dir (exercises the speedup +
# observability-overhead sections and the JSON writer).
check:
	dune build @all
	dune runtest
	@tmp=$$(mktemp -d) && \
	dune exec bench/main.exe -- --timing-only --json $$tmp/BENCH_smoke.json > $$tmp/bench.log 2>&1 && \
	grep -q '"obs_overhead"' $$tmp/BENCH_smoke.json && \
	echo "check: ok (smoke bench in $$tmp)" || { cat $$tmp/bench.log; exit 1; }

build:
	dune build @all

test:
	dune runtest

test-capture:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe

bench-capture:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

bench-full:
	dune exec bench/main.exe -- --full --ablations

# Quick Bechamel pass + sequential-vs-parallel speedups, machine-readable
# (BENCH_1.json; format in DESIGN.md).  Honours BBC_JOBS / --jobs.
bench-json:
	dune exec bench/main.exe -- --timing-only --json

experiments:
	dune exec bin/bbc_cli.exe -- experiment

examples:
	dune exec examples/quickstart.exe
	dune exec examples/social_network.exe
	dune exec examples/p2p_overlay.exe
	dune exec examples/cayley_tour.exe
	dune exec examples/np_hardness.exe

clean:
	dune clean
