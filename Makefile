# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check ci bench bench-full bench-json experiments examples clean doc

all: build

# Pre-commit gate (documented in README): full build, test suite, and a
# smoke bench --json into the git-ignored bench/results/ (exercises the
# speedup + incremental-engine + observability-overhead + serving-layer
# sections and the JSON writer).
check:
	dune build @all
	dune runtest
	@mkdir -p bench/results && \
	dune exec bench/main.exe -- --timing-only --json bench/results/BENCH_smoke.json \
	  > bench/results/bench_smoke.log 2>&1 && \
	grep -q '"obs_overhead"' bench/results/BENCH_smoke.json && \
	grep -q '"incremental"' bench/results/BENCH_smoke.json && \
	grep -q '"msbfs"' bench/results/BENCH_smoke.json && \
	grep -q '"bigbench"' bench/results/BENCH_smoke.json && \
	grep -q '"server"' bench/results/BENCH_smoke.json && \
	grep -q '"campaign"' bench/results/BENCH_smoke.json && \
	echo "check: ok (smoke bench in bench/results/)" || \
	{ cat bench/results/bench_smoke.log; exit 1; }

# Everything CI runs, in the same order (see .github/workflows/ci.yml):
# build, tests, smoke bench, then the regression gates on its JSON —
# observability overhead within budget, incremental engine faster than
# the oracle and bit-identical to it, CSR kernels bit-identical to the
# list-graph references and the hot path holding its floors over the
# BENCH_1 baseline, the bit-parallel batch kernels bit-identical to
# per-source sweeps and holding their 4x apsp floor over the BENCH_2
# pre-batching baseline, the large-n engine's equivalence bits and ns/node
# ceiling — the serving-layer soak (64 TCP connections x 50k requests
# on 1-worker and 4-worker daemons, zero errors, cross-shard
# consistency, graceful drains, multi-core speedup floor), the
# campaign crash-resume gate (SIGKILL mid-campaign + resume and a
# via-server leg must all render byte-identical report.json), and the
# differential-fuzzing gate
# (every engine pair mismatch-free under a fixed seed, plus the
# selfcheck planted bug caught and shrunk to n <= 8).
ci: check
	scripts/check_obs_overhead.sh bench/results/BENCH_smoke.json
	scripts/check_incremental.sh bench/results/BENCH_smoke.json
	scripts/check_kernels.sh bench/results/BENCH_smoke.json
	scripts/check_bigbench.sh bench/results/BENCH_smoke.json
	scripts/check_server.sh
	scripts/check_campaign.sh
	scripts/check_fuzz.sh

build:
	dune build @all

test:
	dune runtest

test-capture:
	@mkdir -p bench/results
	dune runtest --force --no-buffer 2>&1 | tee bench/results/test_output.txt

bench:
	dune exec bench/main.exe

bench-capture:
	@mkdir -p bench/results
	dune exec bench/main.exe 2>&1 | tee bench/results/bench_output.txt

bench-full:
	dune exec bench/main.exe -- --full --ablations

# Quick Bechamel pass + sequential-vs-parallel + incremental-engine
# speedups, machine-readable (first free bench/results/BENCH_N.json;
# format in DESIGN.md).  Honours BBC_JOBS / --jobs.
bench-json:
	dune exec bench/main.exe -- --timing-only --json

experiments:
	dune exec bin/bbc_cli.exe -- experiment

examples:
	dune exec examples/quickstart.exe
	dune exec examples/social_network.exe
	dune exec examples/p2p_overlay.exe
	dune exec examples/cayley_tour.exe
	dune exec examples/np_hardness.exe

clean:
	dune clean
