# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-full bench-json experiments examples clean doc

all: build

build:
	dune build @all

test:
	dune runtest

test-capture:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe

bench-capture:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

bench-full:
	dune exec bench/main.exe -- --full --ablations

# Quick Bechamel pass + sequential-vs-parallel speedups, machine-readable
# (BENCH_1.json; format in DESIGN.md).  Honours BBC_JOBS / --jobs.
bench-json:
	dune exec bench/main.exe -- --timing-only --json

experiments:
	dune exec bin/bbc_cli.exe -- experiment

examples:
	dune exec examples/quickstart.exe
	dune exec examples/social_network.exe
	dune exec examples/p2p_overlay.exe
	dune exec examples/cayley_tour.exe
	dune exec examples/np_hardness.exe

clean:
	dune clean
