(* Reproduction harness.

   Default run: every experiment E1..E11 (quick parameters) — one section
   per figure/claim of the paper (see DESIGN.md's index) — followed by
   Bechamel micro-benchmarks of the core operations and the ablation
   pairs called out in DESIGN.md.

   Flags:
     --full         larger parameter sweeps (several minutes)
     --no-timing    skip the Bechamel section
     --timing-only  only the Bechamel section
     --ablations    include the ablation benchmarks (implied by --full)
     --jobs N       size the Bbc_parallel domain pool (default: BBC_JOBS
                    or the machine's recommended domain count)
     --json [FILE]  run the sequential-vs-parallel speedup section and
                    write machine-readable results (default BENCH_1.json)
     e1 .. e11      run only the listed experiments *)

open Bechamel

let fmt = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                     *)

let willows_fixture =
  lazy
    (let p = Bbc.Willows.{ k = 2; h = 3; l = 1 } in
     Bbc.Willows.build p)

let big_willows_fixture =
  lazy
    (let p = Bbc.Willows.{ k = 2; h = 3; l = 6 } in
     Bbc.Willows.build p)

let random_config_fixture =
  lazy
    (let n = 40 and k = 2 in
     let inst = Bbc.Instance.uniform ~n ~k in
     let g = Bbc_graph.Generators.random_k_out (Bbc_prng.Splitmix.create 1) ~n ~k in
     (inst, Bbc.Config.of_graph g))

let big_graph_fixture =
  lazy (Bbc_graph.Generators.random_k_out (Bbc_prng.Splitmix.create 2) ~n:2000 ~k:3)

let fractional_fixture =
  lazy
    (let inst = Bbc.Instance.uniform ~n:8 ~k:1 in
     (inst, Bbc.Fractional.uniform_profile inst))

(* Naive best response (rebuilds the graph for every candidate subset):
   the ablation baseline for the d_{-u} decomposition. *)
let naive_best_response instance config u =
  List.fold_left
    (fun best s ->
      let c = Bbc.Eval.node_cost instance (Bbc.Config.with_strategy config u s) u in
      min best c)
    max_int
    (Bbc.Exhaustive.all_strategies instance u)

let core_benchmarks () =
  [
    Test.make ~name:"eval/node_cost willows(n=46)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force willows_fixture in
           ignore (Bbc.Eval.node_cost inst config 0)));
    Test.make ~name:"eval/social_cost willows(n=46)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force willows_fixture in
           ignore (Bbc.Eval.social_cost inst config)));
    Test.make ~name:"best_response/exact (n=40,k=2)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force random_config_fixture in
           ignore (Bbc.Best_response.exact inst config 0)));
    Test.make ~name:"stability/is_stable willows(n=46)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force willows_fixture in
           ignore (Bbc.Stability.is_stable inst config)));
    Test.make ~name:"dynamics/one round (n=40,k=2)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force random_config_fixture in
           ignore
             (Bbc.Dynamics.run ~scheduler:Bbc.Dynamics.Round_robin ~max_rounds:1
                inst config)));
    Test.make ~name:"graph/scc (n=2000,k=3)"
      (Staged.stage (fun () ->
           ignore (Bbc_graph.Scc.compute (Lazy.force big_graph_fixture))));
    Test.make ~name:"graph/bfs (n=2000,k=3)"
      (Staged.stage (fun () ->
           ignore (Bbc_graph.Paths.bfs (Lazy.force big_graph_fixture) 0)));
    Test.make ~name:"flow/min-cost unit flow (n=8)"
      (Staged.stage (fun () ->
           let inst, profile = Lazy.force fractional_fixture in
           ignore (Bbc.Fractional.pair_cost inst profile 0 5)));
  ]

let ablation_benchmarks () =
  [
    Test.make ~name:"ablation/BR via d_{-u} (n=40,k=2)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force random_config_fixture in
           ignore (Bbc.Best_response.exact inst config 0)));
    Test.make ~name:"ablation/BR naive rebuild (n=40,k=2)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force random_config_fixture in
           ignore (naive_best_response inst config 0)));
    Test.make ~name:"ablation/bfs on unit graph (n=2000)"
      (Staged.stage (fun () ->
           ignore (Bbc_graph.Paths.bfs (Lazy.force big_graph_fixture) 0)));
    Test.make ~name:"ablation/dijkstra on unit graph (n=2000)"
      (Staged.stage (fun () ->
           ignore (Bbc_graph.Paths.dijkstra (Lazy.force big_graph_fixture) 0)));
    Test.make ~name:"ablation/stability early-exit, unstable start"
      (Staged.stage (fun () ->
           let inst, _ = Lazy.force random_config_fixture in
           ignore (Bbc.Stability.is_stable inst (Bbc.Config.empty 40))));
    Test.make ~name:"ablation/stability full scan, stable graph"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force willows_fixture in
           ignore (Bbc.Stability.is_stable inst config)));
    Test.make ~name:"ablation/stability sequential (n=126)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force big_willows_fixture in
           ignore (Bbc.Stability.is_stable inst config)));
    Test.make ~name:"ablation/stability 4 domains (n=126)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force big_willows_fixture in
           ignore (Bbc.Stability.is_stable_parallel ~domains:4 inst config)));
  ]

(* Returns [(name, ns_per_run)] so the JSON writer can replay them. *)
let run_benchmarks ~name tests =
  Format.fprintf fmt "@.%s@.%s@." (String.make 72 '=') name;
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let collected = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun key ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Format.fprintf fmt "  %-48s %14.1f ns/run@." key est;
              collected := (key, est) :: !collected
          | _ -> Format.fprintf fmt "  %-48s (no estimate)@." key)
        analyzed)
    tests;
  Format.pp_print_flush fmt ();
  List.rev !collected

(* ------------------------------------------------------------------ *)
(* Sequential vs parallel speedup on the domain pool.                   *)

type speedup = {
  sp_name : string;
  seq_s : float;
  par_s : float;
  par_jobs : int;
  matches : bool;  (** parallel result identical to sequential *)
}

let time_best ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

(* Each entry runs the same computation with [jobs = 1] and with the
   pool engaged, times both, and checks the results are identical (the
   engine's determinism contract, asserted here and in the test suite;
   the speedup itself is reported, not gating). *)
let speedup_benchmarks ~par_jobs =
  let inst2000 = Bbc.Instance.uniform ~n:2000 ~k:3 in
  let cfg2000 = Bbc.Config.of_graph (Lazy.force big_graph_fixture) in
  let apsp_graph =
    Bbc_graph.Generators.random_k_out (Bbc_prng.Splitmix.create 7) ~n:512 ~k:3
  in
  let willows_inst, willows_cfg = Lazy.force big_willows_fixture in
  let exh_inst = Bbc.Instance.uniform ~n:6 ~k:1 in
  let run (name, reps, compute, equal) =
    let seq = compute 1 in
    let par = compute par_jobs in
    let seq_s = time_best ~reps (fun () -> compute 1) in
    let par_s = time_best ~reps (fun () -> compute par_jobs) in
    { sp_name = name; seq_s; par_s; par_jobs; matches = equal seq par }
  in
  let entry name reps f = (name, reps, f, Stdlib.( = )) in
  [
    entry "eval/all_costs (n=2000,k=3)" 3 (fun jobs ->
        `Costs (Bbc.Eval.all_costs ~jobs inst2000 cfg2000));
    entry "eval/social_cost (n=2000,k=3)" 3 (fun jobs ->
        `Cost (Bbc.Eval.social_cost ~jobs inst2000 cfg2000));
    entry "graph/apsp (n=512,k=3)" 2 (fun jobs ->
        `Diameter (Bbc_graph.Apsp.diameter (Bbc_graph.Apsp.compute ~jobs apsp_graph)));
    entry "stability/is_stable willows(n=126)" 2 (fun jobs ->
        `Stable (Bbc.Stability.is_stable ~jobs willows_inst willows_cfg));
    entry "exhaustive/count_equilibria (n=6,k=1)" 2 (fun jobs ->
        `Count (Bbc.Exhaustive.count_equilibria ~jobs exh_inst));
  ]
  |> List.map run

let print_speedups speedups =
  Format.fprintf fmt "@.%s@.Sequential vs parallel (domain pool, jobs=%d)@."
    (String.make 72 '=')
    (match speedups with s :: _ -> s.par_jobs | [] -> 0);
  List.iter
    (fun s ->
      Format.fprintf fmt "  %-44s seq %8.4fs  par %8.4fs  speedup %5.2fx%s@."
        s.sp_name s.seq_s s.par_s (s.seq_s /. s.par_s)
        (if s.matches then "" else "  [MISMATCH]"))
    speedups;
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Machine-readable output (BENCH_*.json); format documented in
   DESIGN.md and README.md.                                            *)

let write_json ~path ~micro ~speedups =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"version\": 1,\n";
  out "  \"default_jobs\": %d,\n" (Bbc_parallel.default_jobs ());
  out "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"micro\": [\n";
  List.iteri
    (fun i (name, ns) ->
      out "    {\"name\": %S, \"ns_per_run\": %.1f}%s\n" name ns
        (if i = List.length micro - 1 then "" else ","))
    micro;
  out "  ],\n";
  out "  \"speedup\": [\n";
  List.iteri
    (fun i s ->
      out
        "    {\"name\": %S, \"jobs\": %d, \"sequential_s\": %.6f, \
         \"parallel_s\": %.6f, \"speedup\": %.3f, \"results_match\": %b}%s\n"
        s.sp_name s.par_jobs s.seq_s s.par_s (s.seq_s /. s.par_s) s.matches
        (if i = List.length speedups - 1 then "" else ","))
    speedups;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Format.fprintf fmt "wrote %s@." path

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Pull "--jobs N" and "--json [FILE]" out of the argument list before
     experiment-id filtering sees it. *)
  let jobs_arg = ref None and json_arg = ref None in
  let rec strip = function
    | [] -> []
    | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 ->
            jobs_arg := Some j;
            strip rest
        | _ ->
            prerr_endline "bench: --jobs expects a positive integer";
            exit 2)
    | "--json" :: v :: rest when String.length v > 0 && v.[0] <> '-'
                                 && Bbc_experiments.Registry.find v = None ->
        json_arg := Some v;
        strip rest
    | "--json" :: rest ->
        json_arg := Some "BENCH_1.json";
        strip rest
    | a :: rest -> a :: strip rest
  in
  let args = strip args in
  Option.iter Bbc_parallel.set_default_jobs !jobs_arg;
  let has flag = List.mem flag args in
  let full = has "--full" in
  let quick = not full in
  let timing_only = has "--timing-only" in
  let no_timing = has "--no-timing" in
  let selected =
    List.filter_map Bbc_experiments.Registry.find args
  in
  if not timing_only then begin
    Format.fprintf fmt
      "BBC games reproduction harness — Laoutaris et al., PODC 2008@.";
    Format.fprintf fmt "mode: %s (jobs=%d)@."
      (if full then "full" else "quick")
      (Bbc_parallel.default_jobs ());
    match selected with
    | [] -> Bbc_experiments.Registry.run_all ~quick fmt
    | entries -> List.iter (fun (e : Bbc_experiments.Registry.entry) -> e.run ~quick fmt) entries
  end;
  let micro = ref [] in
  if (not no_timing) && selected = [] then begin
    micro := run_benchmarks ~name:"Micro-benchmarks (Bechamel)" (core_benchmarks ());
    if full || has "--ablations" || timing_only then
      micro :=
        !micro
        @ run_benchmarks ~name:"Ablations (DESIGN.md section 5)" (ablation_benchmarks ())
  end;
  (match !json_arg with
  | None -> ()
  | Some path ->
      let par_jobs = max 2 (Bbc_parallel.default_jobs ()) in
      let speedups = speedup_benchmarks ~par_jobs in
      print_speedups speedups;
      write_json ~path ~micro:!micro ~speedups);
  Format.pp_print_flush fmt ()
