(* Reproduction harness.

   Default run: every experiment E1..E11 (quick parameters) — one section
   per figure/claim of the paper (see DESIGN.md's index) — followed by
   Bechamel micro-benchmarks of the core operations and the ablation
   pairs called out in DESIGN.md.

   Flags:
     --full         larger parameter sweeps (several minutes)
     --no-timing    skip the Bechamel section
     --timing-only  only the Bechamel section
     --ablations    include the ablation benchmarks (implied by --full)
     e1 .. e11      run only the listed experiments *)

open Bechamel

let fmt = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                     *)

let willows_fixture =
  lazy
    (let p = Bbc.Willows.{ k = 2; h = 3; l = 1 } in
     Bbc.Willows.build p)

let big_willows_fixture =
  lazy
    (let p = Bbc.Willows.{ k = 2; h = 3; l = 6 } in
     Bbc.Willows.build p)

let random_config_fixture =
  lazy
    (let n = 40 and k = 2 in
     let inst = Bbc.Instance.uniform ~n ~k in
     let g = Bbc_graph.Generators.random_k_out (Bbc_prng.Splitmix.create 1) ~n ~k in
     (inst, Bbc.Config.of_graph g))

let big_graph_fixture =
  lazy (Bbc_graph.Generators.random_k_out (Bbc_prng.Splitmix.create 2) ~n:2000 ~k:3)

let fractional_fixture =
  lazy
    (let inst = Bbc.Instance.uniform ~n:8 ~k:1 in
     (inst, Bbc.Fractional.uniform_profile inst))

(* Naive best response (rebuilds the graph for every candidate subset):
   the ablation baseline for the d_{-u} decomposition. *)
let naive_best_response instance config u =
  List.fold_left
    (fun best s ->
      let c = Bbc.Eval.node_cost instance (Bbc.Config.with_strategy config u s) u in
      min best c)
    max_int
    (Bbc.Exhaustive.all_strategies instance u)

let core_benchmarks () =
  [
    Test.make ~name:"eval/node_cost willows(n=46)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force willows_fixture in
           ignore (Bbc.Eval.node_cost inst config 0)));
    Test.make ~name:"eval/social_cost willows(n=46)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force willows_fixture in
           ignore (Bbc.Eval.social_cost inst config)));
    Test.make ~name:"best_response/exact (n=40,k=2)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force random_config_fixture in
           ignore (Bbc.Best_response.exact inst config 0)));
    Test.make ~name:"stability/is_stable willows(n=46)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force willows_fixture in
           ignore (Bbc.Stability.is_stable inst config)));
    Test.make ~name:"dynamics/one round (n=40,k=2)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force random_config_fixture in
           ignore
             (Bbc.Dynamics.run ~scheduler:Bbc.Dynamics.Round_robin ~max_rounds:1
                inst config)));
    Test.make ~name:"graph/scc (n=2000,k=3)"
      (Staged.stage (fun () ->
           ignore (Bbc_graph.Scc.compute (Lazy.force big_graph_fixture))));
    Test.make ~name:"graph/bfs (n=2000,k=3)"
      (Staged.stage (fun () ->
           ignore (Bbc_graph.Paths.bfs (Lazy.force big_graph_fixture) 0)));
    Test.make ~name:"flow/min-cost unit flow (n=8)"
      (Staged.stage (fun () ->
           let inst, profile = Lazy.force fractional_fixture in
           ignore (Bbc.Fractional.pair_cost inst profile 0 5)));
  ]

let ablation_benchmarks () =
  [
    Test.make ~name:"ablation/BR via d_{-u} (n=40,k=2)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force random_config_fixture in
           ignore (Bbc.Best_response.exact inst config 0)));
    Test.make ~name:"ablation/BR naive rebuild (n=40,k=2)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force random_config_fixture in
           ignore (naive_best_response inst config 0)));
    Test.make ~name:"ablation/bfs on unit graph (n=2000)"
      (Staged.stage (fun () ->
           ignore (Bbc_graph.Paths.bfs (Lazy.force big_graph_fixture) 0)));
    Test.make ~name:"ablation/dijkstra on unit graph (n=2000)"
      (Staged.stage (fun () ->
           ignore (Bbc_graph.Paths.dijkstra (Lazy.force big_graph_fixture) 0)));
    Test.make ~name:"ablation/stability early-exit, unstable start"
      (Staged.stage (fun () ->
           let inst, _ = Lazy.force random_config_fixture in
           ignore (Bbc.Stability.is_stable inst (Bbc.Config.empty 40))));
    Test.make ~name:"ablation/stability full scan, stable graph"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force willows_fixture in
           ignore (Bbc.Stability.is_stable inst config)));
    Test.make ~name:"ablation/stability sequential (n=126)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force big_willows_fixture in
           ignore (Bbc.Stability.is_stable inst config)));
    Test.make ~name:"ablation/stability 4 domains (n=126)"
      (Staged.stage (fun () ->
           let inst, config = Lazy.force big_willows_fixture in
           ignore (Bbc.Stability.is_stable_parallel ~domains:4 inst config)));
  ]

let run_benchmarks ~name tests =
  Format.fprintf fmt "@.%s@.%s@." (String.make 72 '=') name;
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun key ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Format.fprintf fmt "  %-48s %14.1f ns/run@." key est
          | _ -> Format.fprintf fmt "  %-48s (no estimate)@." key)
        analyzed)
    tests;
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let has flag = List.mem flag args in
  let full = has "--full" in
  let quick = not full in
  let timing_only = has "--timing-only" in
  let no_timing = has "--no-timing" in
  let selected =
    List.filter_map Bbc_experiments.Registry.find args
  in
  if not timing_only then begin
    Format.fprintf fmt
      "BBC games reproduction harness — Laoutaris et al., PODC 2008@.";
    Format.fprintf fmt "mode: %s@." (if full then "full" else "quick");
    match selected with
    | [] -> Bbc_experiments.Registry.run_all ~quick fmt
    | entries -> List.iter (fun (e : Bbc_experiments.Registry.entry) -> e.run ~quick fmt) entries
  end;
  if (not no_timing) && selected = [] then begin
    run_benchmarks ~name:"Micro-benchmarks (Bechamel)" (core_benchmarks ());
    if full || has "--ablations" || timing_only then
      run_benchmarks ~name:"Ablations (DESIGN.md section 5)" (ablation_benchmarks ())
  end;
  Format.pp_print_flush fmt ()
