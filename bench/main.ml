(* Reproduction harness.

   Default run: every experiment E1..E11 (quick parameters) — one section
   per figure/claim of the paper (see DESIGN.md's index) — followed by
   Bechamel micro-benchmarks of the core operations and the ablation
   pairs called out in DESIGN.md.

   Flags:
     --full         larger parameter sweeps (several minutes)
     --no-timing    skip the Bechamel section
     --timing-only  only the Bechamel section
     --ablations    include the ablation benchmarks (implied by --full)
     --jobs N       size the Bbc_parallel domain pool (default: BBC_JOBS
                    or the machine's recommended domain count)
     --json [FILE]  run the speedup + incremental-engine +
                    observability-overhead + serving-layer sections and
                    write machine-readable results (default: the first
                    free bench/results/BENCH_N.json, so the perf
                    trajectory accumulates in a git-ignored directory)
     --metrics      enable Bbc_obs and print its summary on exit
     --trace-out F  enable Bbc_obs and write the JSONL trace to F
     e1 .. e11      run only the listed experiments *)

open Bechamel

let fmt = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                     *)

let willows_fixture =
  lazy
    (let p = Bbc.Willows.{ k = 2; h = 3; l = 1 } in
     Bbc.Willows.build p)

let big_willows_fixture =
  lazy
    (let p = Bbc.Willows.{ k = 2; h = 3; l = 6 } in
     Bbc.Willows.build p)

let random_config_fixture =
  lazy
    (let n = 40 and k = 2 in
     let inst = Bbc.Instance.uniform ~n ~k in
     let g = Bbc_graph.Generators.random_k_out (Bbc_prng.Splitmix.create 1) ~n ~k in
     (inst, Bbc.Config.of_graph g))

let big_graph_fixture =
  lazy (Bbc_graph.Generators.random_k_out (Bbc_prng.Splitmix.create 2) ~n:2000 ~k:3)

let fractional_fixture =
  lazy
    (let inst = Bbc.Instance.uniform ~n:8 ~k:1 in
     (inst, Bbc.Fractional.uniform_profile inst))

(* Naive best response (rebuilds the graph for every candidate subset):
   the ablation baseline for the d_{-u} decomposition. *)
let naive_best_response instance config u =
  List.fold_left
    (fun best s ->
      let c = Bbc.Eval.node_cost instance (Bbc.Config.with_strategy config u s) u in
      min best c)
    max_int
    (Bbc.Exhaustive.all_strategies instance u)

(* Micro benchmarks as (name, thunk) pairs: the same closure feeds the
   Bechamel timing run and the allocation measurement below, so the
   [minor_words]/[major_words] columns of the JSON describe exactly the
   timed computation. *)
let core_benchmarks () =
  [
    ( "eval/node_cost willows(n=46)",
      fun () ->
        let inst, config = Lazy.force willows_fixture in
        ignore (Bbc.Eval.node_cost inst config 0) );
    ( "eval/social_cost willows(n=46)",
      fun () ->
        let inst, config = Lazy.force willows_fixture in
        ignore (Bbc.Eval.social_cost inst config) );
    ( "best_response/exact (n=40,k=2)",
      fun () ->
        let inst, config = Lazy.force random_config_fixture in
        ignore (Bbc.Best_response.exact inst config 0) );
    ( "stability/is_stable willows(n=46)",
      fun () ->
        let inst, config = Lazy.force willows_fixture in
        ignore (Bbc.Stability.is_stable inst config) );
    ( "dynamics/one round (n=40,k=2)",
      fun () ->
        let inst, config = Lazy.force random_config_fixture in
        ignore
          (Bbc.Dynamics.run ~scheduler:Bbc.Dynamics.Round_robin ~max_rounds:1
             inst config) );
    ( "graph/scc (n=2000,k=3)",
      fun () -> ignore (Bbc_graph.Scc.compute (Lazy.force big_graph_fixture)) );
    ( "graph/bfs (n=2000,k=3)",
      fun () -> ignore (Bbc_graph.Paths.bfs (Lazy.force big_graph_fixture) 0) );
    ( "flow/min-cost unit flow (n=8)",
      fun () ->
        let inst, profile = Lazy.force fractional_fixture in
        ignore (Bbc.Fractional.pair_cost inst profile 0 5) );
  ]

let ablation_benchmarks () =
  [
    ( "ablation/BR via d_{-u} (n=40,k=2)",
      fun () ->
        let inst, config = Lazy.force random_config_fixture in
        ignore (Bbc.Best_response.exact inst config 0) );
    ( "ablation/BR naive rebuild (n=40,k=2)",
      fun () ->
        let inst, config = Lazy.force random_config_fixture in
        ignore (naive_best_response inst config 0) );
    ( "ablation/bfs on unit graph (n=2000)",
      fun () -> ignore (Bbc_graph.Paths.bfs (Lazy.force big_graph_fixture) 0) );
    ( "ablation/dijkstra on unit graph (n=2000)",
      fun () ->
        ignore (Bbc_graph.Paths.dijkstra (Lazy.force big_graph_fixture) 0) );
    ( "ablation/stability early-exit, unstable start",
      fun () ->
        let inst, _ = Lazy.force random_config_fixture in
        ignore (Bbc.Stability.is_stable inst (Bbc.Config.empty 40)) );
    ( "ablation/stability full scan, stable graph",
      fun () ->
        let inst, config = Lazy.force willows_fixture in
        ignore (Bbc.Stability.is_stable inst config) );
    (* Stability engines on the same fixture, labelled by engine.  The
       old pair compared `is_stable` (incremental engine, default on)
       against `is_stable_parallel ~domains:4` (from-scratch) and called
       them "sequential" vs "4 domains" — an engine confound, not a
       domain-count ablation.  Only the last two differ by domain count
       alone (both from-scratch over the shared CSR snapshot, one node
       per chunk pull). *)
    ( "ablation/stability incremental (n=126)",
      fun () ->
        let inst, config = Lazy.force big_willows_fixture in
        ignore (Bbc.Stability.is_stable inst config) );
    ( "ablation/stability from-scratch 1 domain (n=126)",
      fun () ->
        let inst, config = Lazy.force big_willows_fixture in
        ignore (Bbc.Stability.is_stable ~jobs:1 ~incremental:false inst config) );
    ( "ablation/stability from-scratch 4 domains (n=126)",
      fun () ->
        let inst, config = Lazy.force big_willows_fixture in
        ignore (Bbc.Stability.is_stable_parallel ~domains:4 inst config) );
  ]

(* Allocation per call, measured with [Gc.quick_stat] deltas over a few
   repetitions (one warm-up call first, so lazy fixtures and workspace
   pools are paid for outside the window). *)
let alloc_words f =
  ignore (Sys.opaque_identity (f ()));
  let reps = 5 in
  let minor0, _, major0 = Gc.counters () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (f ()))
  done;
  let minor1, _, major1 = Gc.counters () in
  ( (minor1 -. minor0) /. float_of_int reps,
    (major1 -. major0) /. float_of_int reps )

(* Returns [(name, ns_per_run, minor_words, major_words)] so the JSON
   writer can replay them. *)
let run_benchmarks ~name entries =
  Format.fprintf fmt "@.%s@.%s@." (String.make 72 '=') name;
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let collected = ref [] in
  List.iter
    (fun (bname, f) ->
      let test = Test.make ~name:bname (Staged.stage f) in
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      let minor, major = alloc_words f in
      Hashtbl.iter
        (fun key ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Format.fprintf fmt "  %-48s %14.1f ns/run  %12.0f minor w/run@."
                key est minor;
              collected := (key, est, minor, major) :: !collected
          | _ -> Format.fprintf fmt "  %-48s (no estimate)@." key)
        analyzed)
    entries;
  Format.pp_print_flush fmt ();
  List.rev !collected

(* ------------------------------------------------------------------ *)
(* Sequential vs parallel speedup on the domain pool.                   *)

type speedup = {
  sp_name : string;
  seq_s : float;
  par_s : float;
  par_jobs : int;
  matches : bool;  (** parallel result identical to sequential *)
}

let time_best ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

(* Each entry runs the same computation with [jobs = 1] and with the
   pool engaged, times both, and checks the results are identical (the
   engine's determinism contract, asserted here and in the test suite;
   the speedup itself is reported, not gating). *)
let speedup_benchmarks ~par_jobs =
  let inst2000 = Bbc.Instance.uniform ~n:2000 ~k:3 in
  let cfg2000 = Bbc.Config.of_graph (Lazy.force big_graph_fixture) in
  let apsp_graph =
    Bbc_graph.Generators.random_k_out (Bbc_prng.Splitmix.create 7) ~n:512 ~k:3
  in
  let willows_inst, willows_cfg = Lazy.force big_willows_fixture in
  let exh_inst = Bbc.Instance.uniform ~n:6 ~k:1 in
  let run (name, reps, compute, equal) =
    let seq = compute 1 in
    let par = compute par_jobs in
    let seq_s = time_best ~reps (fun () -> compute 1) in
    let par_s = time_best ~reps (fun () -> compute par_jobs) in
    { sp_name = name; seq_s; par_s; par_jobs; matches = equal seq par }
  in
  let entry name reps f = (name, reps, f, Stdlib.( = )) in
  [
    entry "eval/all_costs (n=2000,k=3)" 3 (fun jobs ->
        `Costs (Bbc.Eval.all_costs ~jobs inst2000 cfg2000));
    entry "eval/social_cost (n=2000,k=3)" 3 (fun jobs ->
        `Cost (Bbc.Eval.social_cost ~jobs inst2000 cfg2000));
    entry "graph/apsp (n=512,k=3)" 2 (fun jobs ->
        `Diameter (Bbc_graph.Apsp.diameter (Bbc_graph.Apsp.compute ~jobs apsp_graph)));
    entry "stability/is_stable willows(n=126)" 2 (fun jobs ->
        `Stable (Bbc.Stability.is_stable ~jobs willows_inst willows_cfg));
    entry "exhaustive/count_equilibria (n=6,k=1)" 2 (fun jobs ->
        `Count (Bbc.Exhaustive.count_equilibria ~jobs exh_inst));
  ]
  |> List.map run

let print_speedups speedups =
  let jobs_seen =
    List.sort_uniq compare (List.map (fun s -> s.par_jobs) speedups)
  in
  Format.fprintf fmt "@.%s@.Sequential vs parallel (domain pool, jobs: %s)@."
    (String.make 72 '=')
    (String.concat ", " (List.map string_of_int jobs_seen));
  List.iter
    (fun s ->
      Format.fprintf fmt
        "  %-44s seq %8.4fs  par[j=%d] %8.4fs  speedup %5.2fx%s@." s.sp_name
        s.seq_s s.par_jobs s.par_s (s.seq_s /. s.par_s)
        (if s.matches then "" else "  [MISMATCH]"))
    speedups;
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* CSR kernels vs the list-graph baselines.  Each entry times the
   adjacency-list reference implementation against the flat-CSR pooled
   kernel on the same input, checks the results are identical, and
   records allocation per call on both sides — the perf gate
   (scripts/check_kernels.sh) asserts every [results_match] bit. *)

type kernel = {
  k_name : string;
  k_base_s : float;  (** list-graph / pre-CSR reference *)
  k_csr_s : float;  (** flat CSR + pooled workspace *)
  k_matches : bool;
  k_base_minor_w : float;
  k_csr_minor_w : float;
}

(* The pre-CSR best response: G_{-u} as a mutated adjacency-list copy,
   one allocated distance row per SSSP, and one [Array.copy] per DFS
   node.  Kept here (not in the library) as the ablation baseline for
   the pooled enumeration. *)
let legacy_exact_cost instance config u =
  let module D = Bbc_graph.Digraph in
  let module P = Bbc_graph.Paths in
  let g = Bbc.Config.to_graph instance config in
  D.remove_out_edges g u;
  let n = Bbc.Instance.n instance in
  let cache = Array.make n None in
  let row v =
    match cache.(v) with
    | Some d -> d
    | None ->
        let d = P.shortest g v in
        cache.(v) <- Some d;
        d
  in
  let merge_row cur v =
    let luv = Bbc.Instance.length instance u v in
    let d = Array.copy cur in
    let rv = row v in
    for x = 0 to n - 1 do
      if rv.(x) <> P.unreachable then begin
        let c = luv + rv.(x) in
        if c < d.(x) then d.(x) <- c
      end
    done;
    d
  in
  let base = Array.make n P.unreachable in
  base.(u) <- 0;
  let candidates = Array.of_list (Bbc.Best_response.candidate_targets instance u) in
  let best = ref (Bbc.Eval.cost_of_distances instance u base) in
  let rec dfs i budget cur =
    for j = i to Array.length candidates - 1 do
      let v = candidates.(j) in
      let c = Bbc.Instance.cost instance u v in
      if c <= budget then begin
        let cur' = merge_row cur v in
        let cost = Bbc.Eval.cost_of_distances instance u cur' in
        if cost < !best then best := cost;
        dfs (j + 1) (budget - c) cur'
      end
    done
  in
  dfs 0 (Bbc.Instance.budget instance u) base;
  !best

let kernel_benchmarks () =
  let module Csr = Bbc_graph.Csr in
  let module W = Bbc_graph.Workspace in
  let module P = Bbc_graph.Paths in
  let g = Lazy.force big_graph_fixture in
  let csr = Csr.of_digraph g in
  (* Weighted variant of the same topology (lengths 1..4), so the
     Dijkstra pair exercises the heap kernel rather than BFS. *)
  let gw =
    let rng = Bbc_prng.Splitmix.create 11 in
    let h = Bbc_graph.Digraph.create (Bbc_graph.Digraph.n g) in
    Bbc_graph.Digraph.iter_edges g (fun u v _ ->
        Bbc_graph.Digraph.add_edge h u v (1 + Bbc_prng.Splitmix.int rng 4));
    h
  in
  let csrw = Csr.of_digraph gw in
  (* Pure pooled sweep: distances land in a pooled row and are undone
     with the dirty-list reset, so steady state allocates nothing. *)
  let pooled_sweep snapshot () =
    let ws = W.get () in
    let scratch = W.scratch ws in
    let row = W.acquire ws (Csr.n snapshot) in
    Csr.sssp snapshot scratch ~src:0 ~dist:row;
    Csr.reset scratch row;
    W.release_clean ws row
  in
  let br_inst, br_cfg = Lazy.force random_config_fixture in
  let apsp_graph =
    Bbc_graph.Generators.random_k_out (Bbc_prng.Splitmix.create 7) ~n:256 ~k:3
  in
  let run (name, reps, base, csrf, check) =
    let matches = check () in
    let k_base_s = time_best ~reps base and k_csr_s = time_best ~reps csrf in
    let k_base_minor_w, _ = alloc_words base in
    let k_csr_minor_w, _ = alloc_words csrf in
    { k_name = name; k_base_s; k_csr_s; k_matches = matches; k_base_minor_w; k_csr_minor_w }
  in
  List.map run
    [
      ( "graph/bfs (n=2000,k=3)", 40,
        (fun () -> ignore (P.bfs g 0)),
        pooled_sweep csr,
        fun () -> P.bfs g 0 = P.shortest_csr csr 0 );
      ( "graph/dijkstra (n=2000,k=3,weighted)", 40,
        (fun () -> ignore (P.dijkstra gw 0)),
        pooled_sweep csrw,
        fun () -> P.dijkstra gw 0 = P.shortest_csr csrw 0 );
      ( "graph/apsp (n=256,k=3)", 3,
        (fun () -> ignore (Bbc_graph.Apsp.floyd_warshall apsp_graph)),
        (fun () -> ignore (Bbc_graph.Apsp.compute apsp_graph)),
        fun () ->
          Bbc_graph.Apsp.matrix (Bbc_graph.Apsp.floyd_warshall apsp_graph)
          = Bbc_graph.Apsp.matrix (Bbc_graph.Apsp.compute apsp_graph) );
      ( "best_response/exact (n=40,k=2)", 10,
        (fun () -> ignore (legacy_exact_cost br_inst br_cfg 0)),
        (fun () -> ignore (Bbc.Best_response.exact br_inst br_cfg 0)),
        fun () ->
          legacy_exact_cost br_inst br_cfg 0
          = (Bbc.Best_response.exact br_inst br_cfg 0).cost );
    ]

let print_kernels kernels =
  Format.fprintf fmt "@.%s@.CSR kernels vs list-graph baselines@."
    (String.make 72 '=');
  List.iter
    (fun k ->
      Format.fprintf fmt
        "  %-40s base %10.6fs  csr %10.6fs  speedup %5.2fx  minor w %8.0f -> %-8.0f%s@."
        k.k_name k.k_base_s k.k_csr_s
        (k.k_base_s /. k.k_csr_s)
        k.k_base_minor_w k.k_csr_minor_w
        (if k.k_matches then "" else "  [MISMATCH]"))
    kernels;
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Bit-parallel multi-source BFS ([Csr.sssp_batch]) vs the per-source
   scalar sweeps it replaced, on the same snapshot and pooled scratch.
   Every row carries a differential bit ([mb_matches]); the apsp row is
   the one [scripts/check_kernels.sh] holds to the >= 4x floor against
   BENCH_2's recorded per-source time. *)

type msbfs_bench = {
  mb_name : string;
  mb_scalar_s : float;  (** one [Csr.sssp] per source *)
  mb_batched_s : float;  (** [Csr.sssp_batch] windows *)
  mb_matches : bool;
}

let msbfs_benchmarks () =
  let module Csr = Bbc_graph.Csr in
  let module W = Bbc_graph.Workspace in
  let apsp_graph =
    Bbc_graph.Generators.random_k_out (Bbc_prng.Splitmix.create 7) ~n:512 ~k:3
  in
  let csr = Csr.of_digraph apsp_graph in
  let n = Csr.n csr in
  let srcs = Array.init n Fun.id in
  let scratch () = W.scratch (W.get ()) in
  let fresh () = Array.init n (fun _ -> Array.make n Bbc_graph.Paths.unreachable) in
  let scalar_matrix ?ban () =
    let s = scratch () in
    let dist = fresh () in
    for src = 0 to n - 1 do
      Csr.sssp ?ban csr s ~src ~dist:dist.(src)
    done;
    dist
  in
  let batched_matrix ?ban () =
    let s = scratch () in
    let dist = fresh () in
    Csr.sssp_batch ?ban csr s ~srcs ~rows:dist;
    dist
  in
  let fresh32 () = Array.init n (fun _ -> Csr.create_dist32 n) in
  let scalar_matrix32 () =
    let s = scratch () in
    let dist = fresh32 () in
    for src = 0 to n - 1 do
      Csr.sssp32 csr s ~src ~dist:dist.(src)
    done;
    dist
  in
  let batched_matrix32 () =
    let s = scratch () in
    let dist = fresh32 () in
    Csr.sssp_batch32 csr s ~srcs ~rows:dist;
    dist
  in
  let inst2000 = Bbc.Instance.uniform ~n:2000 ~k:3 in
  let cfg2000 = Bbc.Config.of_graph (Lazy.force big_graph_fixture) in
  let ecsr = Bbc.Config.to_csr inst2000 cfg2000 in
  let scalar_costs () =
    Array.init (Bbc.Instance.n inst2000) (fun u ->
        Bbc.Eval.csr_node_cost inst2000 ecsr u)
  in
  let batched_costs () = Bbc.Eval.all_costs ~jobs:1 inst2000 cfg2000 in
  let run (name, reps, scalar, batched, check) =
    let mb_matches = check () in
    let mb_scalar_s = time_best ~reps scalar
    and mb_batched_s = time_best ~reps batched in
    { mb_name = name; mb_scalar_s; mb_batched_s; mb_matches }
  in
  List.map run
    [
      ( "msbfs/apsp (n=512,k=3)", 5,
        (fun () -> ignore (scalar_matrix ())),
        (fun () -> ignore (batched_matrix ())),
        fun () -> scalar_matrix () = batched_matrix () );
      ( "msbfs/ban sweep (n=512,k=3,ban=0)", 5,
        (fun () -> ignore (scalar_matrix ~ban:0 ())),
        (fun () -> ignore (batched_matrix ~ban:0 ())),
        fun () -> scalar_matrix ~ban:0 () = batched_matrix ~ban:0 () );
      ( "msbfs/apsp32 (n=512,k=3)", 5,
        (fun () -> ignore (scalar_matrix32 ())),
        (fun () -> ignore (batched_matrix32 ())),
        fun () -> scalar_matrix32 () = batched_matrix32 () );
      ( "msbfs/eval.all_costs (n=2000,k=3)", 3,
        (fun () -> ignore (scalar_costs ())),
        (fun () -> ignore (batched_costs ())),
        fun () -> scalar_costs () = batched_costs () );
    ]

let print_msbfs msbfs =
  Format.fprintf fmt "@.%s@.Multi-source bit-parallel BFS vs per-source sweeps@."
    (String.make 72 '=');
  List.iter
    (fun m ->
      Format.fprintf fmt
        "  %-40s scalar %10.6fs  batched %10.6fs  speedup %5.2fx%s@." m.mb_name
        m.mb_scalar_s m.mb_batched_s
        (m.mb_scalar_s /. m.mb_batched_s)
        (if m.mb_matches then "" else "  [MISMATCH]"))
    msbfs;
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Incremental engine (delta SSSP + cost caching) vs the from-scratch
   oracle, on the dynamics workloads where the engine matters: long
   best-response walks that mutate one strategy per step.  Each side
   runs the complete walk once; [is_matches] asserts the two engines
   produced bit-identical step streams, final profiles, and outcome
   statistics — the contract the differential tests check exhaustively
   on small instances, re-asserted here at bench scale. *)

type incr_speedup = {
  is_name : string;
  scratch_s : float;
  incr_s : float;
  is_matches : bool;
}

(* One timed dynamics walk under the given engine, digesting the entire
   trace (not just the final state) for the identity check. *)
let timed_walk ~incremental ~scheduler ~max_rounds instance config =
  let trace = ref [] in
  let t0 = Unix.gettimeofday () in
  let outcome =
    Bbc.Dynamics.run ~scheduler ~max_rounds ~incremental
      ~on_step:(fun (s : Bbc.Dynamics.step) ->
        if s.moved then
          trace := (s.index, s.round, s.node, s.strategy, s.cost_after) :: !trace)
      instance config
  in
  let dt = Unix.gettimeofday () -. t0 in
  let kind =
    match outcome with
    | Bbc.Dynamics.Converged _ -> `Converged
    | Bbc.Dynamics.Cycled { period; _ } -> `Cycled period
    | Bbc.Dynamics.Exhausted _ -> `Exhausted
  in
  (dt, (List.rev !trace, kind, Bbc.Dynamics.stats outcome,
        Bbc.Dynamics.final_config outcome))

let incremental_benchmarks ~full =
  let ring, path = if full then (200, 40) else (140, 28) in
  let ring_path =
    let instance, config = Bbc.Constructions.ring_with_path ~ring ~path in
    let n = Bbc.Instance.n instance in
    ( Printf.sprintf "dynamics/ring+path (n=%d)" n,
      instance, config, Bbc.Dynamics.Round_robin, 4 * n )
  in
  let cayley =
    let c = Bbc_group.Cayley.circulant ~n:(if full then 96 else 64) ~offsets:[ 1; 5 ] in
    let instance, config = Bbc.Cayley_game.to_game c in
    let n = Bbc.Instance.n instance in
    ( Printf.sprintf "dynamics/cayley circulant (n=%d,k=2)" n,
      instance, config, Bbc.Dynamics.Round_robin, if full then 50 else 8 )
  in
  List.map
    (fun (name, instance, config, scheduler, max_rounds) ->
      let scratch_s, scratch_digest =
        timed_walk ~incremental:false ~scheduler ~max_rounds instance config
      in
      let incr_s, incr_digest =
        timed_walk ~incremental:true ~scheduler ~max_rounds instance config
      in
      let (st, sk, ss, sc) = scratch_digest and (it, ik, is_, ic) = incr_digest in
      let is_matches = st = it && sk = ik && ss = is_ && Bbc.Config.equal sc ic in
      { is_name = name; scratch_s; incr_s; is_matches })
    [ ring_path; cayley ]

let print_incr_speedups entries =
  Format.fprintf fmt "@.%s@.Incremental engine vs from-scratch oracle (dynamics)@."
    (String.make 72 '=');
  List.iter
    (fun e ->
      Format.fprintf fmt
        "  %-44s scratch %8.4fs  incr %8.4fs  speedup %7.2fx%s@."
        e.is_name e.scratch_s e.incr_s
        (e.scratch_s /. e.incr_s)
        (if e.is_matches then "" else "  [MISMATCH]"))
    entries;
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Observability overhead: the instrumented library hot paths vs local
   uninstrumented copies, with Bbc_obs disabled.  Verifies the
   "disabled = one branch" guarantee (acceptance: within noise, < 3%). *)

type overhead = {
  ov_name : string;
  base_s : float;  (** uninstrumented copy *)
  inst_s : float;  (** instrumented library version, observability off *)
}

(* Uninstrumented [Eval.all_costs]: same CSR snapshot, same pooled
   bit-parallel [Csr.sssp_batch] windows and batch-sized chunk fan-out
   as the library's batched path — no span, no counter.  (Must mirror
   the library shape: timing the legacy per-source sweep here would
   make the <3% disabled-overhead gate compare different algorithms.) *)
let plain_all_costs inst config =
  let n = Bbc.Instance.n inst in
  let jobs = Bbc_parallel.jobs_for ~threshold:64 n in
  let csr = Bbc.Config.to_csr inst config in
  let costs = Array.make n 0 in
  Bbc_parallel.parallel_for_chunks ~jobs ~chunk:Bbc_graph.Csr.batch_width 0 n
    (fun lo hi ->
      let ws = Bbc_graph.Workspace.get () in
      let scratch = Bbc_graph.Workspace.scratch ws in
      let width = min Bbc_graph.Csr.batch_width (hi - lo) in
      let rows = Bbc_graph.Workspace.acquire_many ws n width in
      let pos = ref lo in
      while !pos < hi do
        let base = !pos in
        let k = min width (hi - base) in
        let srcs = Array.init k (fun i -> base + i) in
        let rows_k = if k = width then rows else Array.sub rows 0 k in
        Bbc_graph.Csr.sssp_batch csr scratch ~srcs ~rows:rows_k;
        for i = 0 to k - 1 do
          costs.(base + i) <- Bbc.Eval.cost_of_distances inst (base + i) rows.(i)
        done;
        Bbc_graph.Csr.reset_rows scratch ~rows:rows_k;
        pos := base + k
      done;
      Bbc_graph.Workspace.release_clean_many ws rows);
  costs

(* Uninstrumented [Apsp.compute] (same batched CSR sweeps and
   batch-sized chunking). *)
let plain_apsp g =
  let n = Bbc_graph.Digraph.n g in
  let jobs = Bbc_parallel.jobs_for ~threshold:128 n in
  let csr = Bbc_graph.Csr.of_digraph g in
  let dist = Array.init n (fun _ -> Array.make n Bbc_graph.Paths.unreachable) in
  Bbc_parallel.parallel_for_chunks ~jobs ~chunk:Bbc_graph.Csr.batch_width 0 n
    (fun lo hi ->
      let srcs = Array.init (hi - lo) (fun i -> lo + i) in
      Bbc_graph.Csr.sssp_batch csr
        (Bbc_graph.Workspace.scratch (Bbc_graph.Workspace.get ()))
        ~srcs
        ~rows:(Array.sub dist lo (hi - lo)));
  dist

(* Interleave base/instrumented reps so machine-load drift hits both
   sides of each pair equally, then take the median per-pair ratio —
   robust against the multiplicative noise of a shared container,
   where best-of-N on each side independently is not. *)
let time_pair ~reps base inst =
  let time f =
    (* Settle the heap first: otherwise a major slice triggered by the
       previous runner's garbage lands inside this runner's window, and
       the GC debt shows up as phantom overhead on whoever runs second. *)
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    Unix.gettimeofday () -. t0
  in
  ignore (Sys.opaque_identity (base ()));
  ignore (Sys.opaque_identity (inst ()));
  let bs = Array.make reps 0.0 and ratios = Array.make reps 0.0 in
  for r = 0 to reps - 1 do
    (* Swap who goes first each rep: the second runner of a pair sees a
       warmer allocator, and a fixed order turns that into bias. *)
    let b, i =
      if r land 1 = 0 then
        let b = time base in
        (b, time inst)
      else
        let i = time inst in
        (time base, i)
    in
    bs.(r) <- b;
    ratios.(r) <- i /. b
  done;
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let b = median bs in
  (b, b *. median ratios)

let overhead_benchmarks () =
  let was_enabled = Bbc_obs.enabled () in
  Bbc_obs.disable ();
  let inst2000 = Bbc.Instance.uniform ~n:2000 ~k:3 in
  let cfg2000 = Bbc.Config.of_graph (Lazy.force big_graph_fixture) in
  let apsp_graph =
    Bbc_graph.Generators.random_k_out (Bbc_prng.Splitmix.create 7) ~n:512 ~k:3
  in
  let eval_b, eval_i =
    time_pair ~reps:15
      (fun () -> plain_all_costs inst2000 cfg2000)
      (fun () -> Bbc.Eval.all_costs inst2000 cfg2000)
  in
  let apsp_b, apsp_i =
    time_pair ~reps:15
      (fun () -> plain_apsp apsp_graph)
      (fun () -> Bbc_graph.Apsp.compute apsp_graph)
  in
  let results =
    [
      { ov_name = "eval/all_costs (n=2000,k=3)"; base_s = eval_b; inst_s = eval_i };
      { ov_name = "graph/apsp (n=512,k=3)"; base_s = apsp_b; inst_s = apsp_i };
    ]
  in
  if was_enabled then Bbc_obs.enable ();
  results

let print_overheads overheads =
  Format.fprintf fmt "@.%s@.Observability overhead (disabled mode vs uninstrumented)@."
    (String.make 72 '=');
  List.iter
    (fun o ->
      Format.fprintf fmt "  %-44s base %8.4fs  instrumented %8.4fs  overhead %+5.1f%%@."
        o.ov_name o.base_s o.inst_s (100.0 *. ((o.inst_s /. o.base_s) -. 1.0)))
    overheads;
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Large-n engine: the streaming CSR builders and the landmark
   social-cost estimator.  Two sub-sections: small-n equivalence bits
   (streaming builder bit-identical to the Digraph route; estimator
   exact at a full sample) and scale rows (build ns/node, allocated
   words/node, landmark-sweep time and the estimate itself) up to
   n = 10^5.  scripts/check_bigbench.sh gates on both. *)

type bigbench_equiv = {
  be_family : string;
  be_streaming_matches : bool;  (** streaming CSR = of_digraph CSR, bit for bit *)
  be_estimator_exact : bool;  (** L = n estimate equals [Eval.social_cost] *)
}

type bigbench_row = {
  bb_family : string;
  bb_n : int;
  bb_k : int;
  bb_landmarks : int;
  bb_build_s : float;
  bb_build_ns_per_node : float;
  bb_words_per_node : float;  (** words allocated per node during the build *)
  bb_sweep_s : float;
  bb_value : float;
  bb_bound : float;
  bb_exact : bool;
  bb_completed : bool;
}

let bigbench_equivalence () =
  List.map
    (fun name ->
      let n = 60 and k = 2 and seed = 3 in
      let fam = Option.get (Bbc.Gen_instance.family_of_name name) in
      let inst, csr = Bbc.Gen_instance.streaming fam ~n ~k ~seed in
      let rcsr = Bbc.Gen_instance.streaming_reference_csr fam ~n ~k ~seed in
      let rinst, config = Bbc.Gen_instance.streaming_reference fam ~n ~k ~seed in
      let exact = Bbc.Eval.social_cost rinst config in
      let e =
        Bbc.Approx.social_cost ~landmarks:(Bbc.Instance.n inst) ~seed:1 inst csr
      in
      {
        be_family = name;
        be_streaming_matches =
          Bbc_graph.Csr.equal csr rcsr
          && Bbc_graph.Csr.equal csr (Bbc.Config.to_csr rinst config);
        be_estimator_exact =
          e.Bbc.Approx.exact && e.Bbc.Approx.value = float_of_int exact;
      })
    Bbc.Catalog.streaming_names

let bigbench_scale_rows () =
  let row (family, n, k, landmarks) =
    let fam = Option.get (Bbc.Gen_instance.family_of_name family) in
    match
      Gc.full_major ();
      let a0 = Gc.allocated_bytes () in
      let t0 = Unix.gettimeofday () in
      let inst, csr = Bbc.Gen_instance.streaming fam ~n ~k ~seed:1 in
      let t1 = Unix.gettimeofday () in
      let a1 = Gc.allocated_bytes () in
      let t2 = Unix.gettimeofday () in
      let e = Bbc.Approx.social_cost ~landmarks ~seed:1 inst csr in
      let t3 = Unix.gettimeofday () in
      (t1 -. t0, (a1 -. a0) /. 8.0, t3 -. t2, e)
    with
    | build_s, words, sweep_s, e ->
        {
          bb_family = family;
          bb_n = n;
          bb_k = k;
          bb_landmarks = e.Bbc.Approx.landmarks;
          bb_build_s = build_s;
          bb_build_ns_per_node = build_s *. 1e9 /. float_of_int n;
          bb_words_per_node = words /. float_of_int n;
          bb_sweep_s = sweep_s;
          bb_value = e.Bbc.Approx.value;
          bb_bound = e.Bbc.Approx.bound;
          bb_exact = e.Bbc.Approx.exact;
          bb_completed = true;
        }
    | exception exn ->
        Format.fprintf fmt "  bigbench %s n=%d failed: %s@." family n
          (Printexc.to_string exn);
        {
          bb_family = family;
          bb_n = n;
          bb_k = k;
          bb_landmarks = landmarks;
          bb_build_s = 0.0;
          bb_build_ns_per_node = 0.0;
          bb_words_per_node = 0.0;
          bb_sweep_s = 0.0;
          bb_value = 0.0;
          bb_bound = 0.0;
          bb_exact = false;
          bb_completed = false;
        }
  in
  List.map row
    [
      ("ring", 10_000, 1, 32);
      ("circulant", 10_000, 3, 32);
      ("random", 10_000, 2, 32);
      ("random", 100_000, 2, 64);
    ]

let print_bigbench equiv rows =
  Format.fprintf fmt "@.%s@.Large-n engine (streaming build + landmark estimate)@."
    (String.make 72 '=');
  List.iter
    (fun e ->
      Format.fprintf fmt "  %-12s streaming=of_digraph %b  L=n exact %b%s@."
        e.be_family e.be_streaming_matches e.be_estimator_exact
        (if e.be_streaming_matches && e.be_estimator_exact then "" else "  [MISMATCH]"))
    equiv;
  List.iter
    (fun r ->
      Format.fprintf fmt
        "  %-10s n=%-7d build %7.1f ms (%6.0f ns/node, %5.1f w/node)  sweep %8.1f ms (L=%d)  cost %.6g +- %.3g%s@."
        r.bb_family r.bb_n (r.bb_build_s *. 1e3) r.bb_build_ns_per_node
        r.bb_words_per_node (r.bb_sweep_s *. 1e3) r.bb_landmarks r.bb_value
        r.bb_bound
        (if r.bb_completed then "" else "  [FAILED]"))
    rows;
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Serving layer: a real `bbc serve --tcp` daemon spawned as a child
   process (the bench has live domains, so forking in-process is off
   the table — create_process is fork+exec, which is safe), hammered by
   the event-loop load generator over TCP at 1 worker and N workers.
   The 1-vs-N throughput ratio is the sharding speedup the CI soak gate
   asserts; the generator's consistency cross-check (identical
   read-only queries must get byte-identical answers, across shards)
   rides along as the correctness bit. *)

(* The CLI binary sits next to the bench in the build tree
   (_build/default/{bench,bin}); BBC_CLI overrides for odd layouts. *)
let cli_binary () =
  match Sys.getenv_opt "BBC_CLI" with
  | Some p -> p
  | None ->
      let root = Filename.dirname (Filename.dirname Sys.executable_name) in
      Filename.concat (Filename.concat root "bin") "bbc_cli.exe"

(* Spawn `bbc serve --tcp 127.0.0.1:0 --workers W` and parse the
   resolved ephemeral port from its "listening on tcp:HOST:PORT"
   stdout line. *)
let start_server ~workers =
  let exe = cli_binary () in
  if not (Sys.file_exists exe) then Error (exe ^ " not built")
  else begin
    let out_r, out_w = Unix.pipe ~cloexec:false () in
    let pid =
      Unix.create_process exe
        [| exe; "serve"; "--tcp"; "127.0.0.1:0"; "--workers"; string_of_int workers |]
        Unix.stdin out_w Unix.stderr
    in
    Unix.close out_w;
    let ic = Unix.in_channel_of_descr out_r in
    match input_line ic with
    | line -> (
        let prefix = "listening on tcp:" in
        let plen = String.length prefix in
        if String.length line > plen && String.sub line 0 plen = prefix then
          match
            Bbc_server.Net.parse_tcp
              (String.sub line plen (String.length line - plen))
          with
          | Ok (host, port) -> Ok (pid, ic, Bbc_server.Net.Tcp (host, port))
          | Error e ->
              ignore (Unix.waitpid [] pid);
              Error ("unparseable listening line: " ^ e)
        else begin
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error (_, _, _) -> ());
          ignore (Unix.waitpid [] pid);
          Error ("unexpected server output: " ^ line)
        end)
    | exception End_of_file ->
        ignore (Unix.waitpid [] pid);
        Error "server exited before listening"
  end

let stop_server (pid, ic, endpoint) =
  (match Bbc_server.Loadgen.request_shutdown ~endpoint with
  | Ok () -> ()
  | Error _ -> ( try Unix.kill pid Sys.sigterm with Unix.Unix_error (_, _, _) -> ()));
  let ok = match Unix.waitpid [] pid with _, Unix.WEXITED 0 -> true | _ -> false in
  close_in_noerr ic;
  ok

let server_benchmarks ~full =
  let total = if full then 20_000 else 5_000 in
  let conns = 64 and sessions = 8 in
  List.filter_map
    (fun workers ->
      match start_server ~workers with
      | Error e ->
          Format.fprintf fmt "  serve bench (workers=%d): %s@." workers e;
          None
      | Ok ((_, _, endpoint) as srv) -> (
          let r =
            Bbc_server.Loadgen.run ~endpoint ~conns ~total ~sessions ~name:"ring"
              ~n:24 ()
          in
          let clean = stop_server srv in
          match r with
          | Ok s ->
              if not clean then
                Format.fprintf fmt
                  "  serve bench (workers=%d): unclean server exit@." workers;
              Some
                ( Printf.sprintf "serve/tcp ring(n=24) workers=%d conns=%d" workers
                    conns,
                  workers,
                  s )
          | Error e ->
              Format.fprintf fmt "  serve bench (workers=%d) failed: %s@." workers e;
              None))
    [ 1; 4 ]

let print_servers entries =
  Format.fprintf fmt "@.%s@.Serving layer (bbc serve --tcp, sharded workers, TCP loadgen)@."
    (String.make 72 '=');
  List.iter
    (fun (name, _, (s : Bbc_server.Loadgen.summary)) ->
      Format.fprintf fmt
        "  %-40s %8.0f req/s  p50 %6.3f ms  p99 %6.3f ms  errors %d%s@." name
        s.req_per_s s.p50_ms s.p99_ms
        (s.errors + s.protocol_errors)
        (if s.consistent then "" else "  [INCONSISTENT]"))
    entries;
  (match entries with
  | [ (_, _, one); (_, _, many) ] when one.req_per_s > 0.0 ->
      Format.fprintf fmt "  sharding speedup: %.2fx@."
        (many.req_per_s /. one.req_per_s)
  | _ -> ());
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Campaign runner: throughput (runs/s) over a fixed spec, the cost of
   per-chunk checkpointing, and a jobs ablation alongside the
   recommended-domains figure the JSON already carries.  Every run of
   the same spec must render byte-identical report.json regardless of
   jobs or chunk size — that determinism contract is asserted here, not
   just timed. *)

type campaign_bench = {
  ca_units : int;
  ca_checkpoint_every : int;
  ca_overhead_pct : float;
      (** per-chunk checkpointing vs one final chunk, at jobs=1 *)
  ca_matches : bool;  (** report bytes identical across all runs *)
  ca_rows : (int * float * float) list;  (** jobs, elapsed s, runs/s *)
}

let campaign_bench_spec ~units : Bbc_campaign.Spec.t =
  {
    name = "bench";
    seed = 17;
    seeds_per_point = units;
    max_rounds = 60;
    points =
      [
        {
          generator = Bbc.Trial.Sparse { zero_pct = 50; max_weight = 3 };
          n = 12;
          k = 2;
          h = 2;
          l = 3;
        };
      ];
    inits = [ Bbc.Trial.Random_start ];
    schedulers = [ Bbc.Trial.Round_robin ];
    policies = [ Bbc.Trial.Exact ];
    objectives = [ Bbc.Objective.Sum ];
  }

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_campaign_dir f =
  let base = Filename.temp_file "bbc-bench-campaign" "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  Fun.protect
    ~finally:(fun () -> try rm_rf base with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f base)

(* One fresh-directory campaign run; returns wall time and report bytes. *)
let run_campaign ~jobs ~checkpoint_every spec =
  with_temp_campaign_dir (fun dir ->
      let opts =
        {
          Bbc_campaign.Runner.default_opts with
          jobs = Some jobs;
          checkpoint_every;
        }
      in
      let t0 = Unix.gettimeofday () in
      match Bbc_campaign.Runner.run opts ~dir spec with
      | Error e -> Error e
      | Ok o ->
          let dt = Unix.gettimeofday () -. t0 in
          let report =
            In_channel.with_open_bin o.report_path In_channel.input_all
          in
          Ok (dt, report))

let campaign_benchmarks ~full =
  let units = if full then 600 else 150 in
  let checkpoint_every = 16 in
  let spec = campaign_bench_spec ~units in
  let jobs_list =
    List.sort_uniq compare [ 1; 2; max 2 (Domain.recommended_domain_count ()) ]
  in
  (* Overhead baseline: same spec, jobs=1, a single final chunk — the
     delta against checkpoint_every=16 is pure checkpoint I/O (fsync'd
     temp-file renames). *)
  match run_campaign ~jobs:1 ~checkpoint_every:units spec with
  | Error e ->
      Format.fprintf fmt "  campaign bench: %s@." e;
      None
  | Ok (t_single, ref_report) -> (
      let rows =
        List.filter_map
          (fun jobs ->
            match run_campaign ~jobs ~checkpoint_every spec with
            | Error e ->
                Format.fprintf fmt "  campaign bench (jobs=%d): %s@." jobs e;
                None
            | Ok (t, report) ->
                Some (jobs, t, float_of_int units /. t, report))
          jobs_list
      in
      match rows with
      | [] -> None
      | _ ->
          let matches =
            List.for_all (fun (_, _, _, r) -> String.equal r ref_report) rows
          in
          let t_chunked =
            match List.find_opt (fun (j, _, _, _) -> j = 1) rows with
            | Some (_, t, _, _) -> t
            | None -> t_single
          in
          Some
            {
              ca_units = units;
              ca_checkpoint_every = checkpoint_every;
              ca_overhead_pct = 100.0 *. ((t_chunked /. t_single) -. 1.0);
              ca_matches = matches;
              ca_rows = List.map (fun (j, t, rps, _) -> (j, t, rps)) rows;
            })

let print_campaign = function
  | None -> ()
  | Some c ->
      Format.fprintf fmt
        "@.%s@.Campaign runner (%d units, sparse(n=12,k=2), checkpoint every \
         %d)@."
        (String.make 72 '=')
        c.ca_units c.ca_checkpoint_every;
      List.iter
        (fun (jobs, t, rps) ->
          Format.fprintf fmt "  jobs=%-3d %8.3fs  %8.0f runs/s@." jobs t rps)
        c.ca_rows;
      Format.fprintf fmt "  checkpoint overhead: %.2f%% (jobs=1)%s@."
        c.ca_overhead_pct
        (if c.ca_matches then "  reports identical across runs"
         else "  [REPORTS DIFFER]");
      Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Machine-readable output (BENCH_*.json); format documented in
   DESIGN.md and README.md.                                            *)

(* First free bench/results/BENCH_N.json, so successive runs accumulate
   a perf trajectory instead of silently overwriting the last one.  The
   directory is git-ignored; falls back to the cwd when it cannot be
   created (e.g. the binary runs outside a checkout). *)
let next_bench_path () =
  let dir = Filename.concat "bench" "results" in
  let dir =
    try
      if not (Sys.file_exists "bench") then Unix.mkdir "bench" 0o755;
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      dir
    with Unix.Unix_error _ -> Filename.current_dir_name
  in
  (* An index is taken if it exists in the results directory *or* at the
     repo root — promoted snapshots (BENCH_1.json, ...) live there, and
     the next run must continue the shared numbering. *)
  let rec go i =
    let name = Printf.sprintf "BENCH_%d.json" i in
    let p = Filename.concat dir name in
    if Sys.file_exists p || Sys.file_exists name then go (i + 1) else p
  in
  go 1

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let write_json ~path ~micro ~kernels ~msbfs ~speedups ~incr ~overheads ~bigbench
    ~servers ~campaign =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"version\": 4,\n";
  out "  \"jobs\": %d,\n" (Bbc_parallel.default_jobs ());
  out "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"git_rev\": %S,\n" (git_rev ());
  out "  \"micro\": [\n";
  List.iteri
    (fun i (name, ns, minor_w, major_w) ->
      out
        "    {\"name\": %S, \"ns_per_run\": %.1f, \"minor_words\": %.0f, \
         \"major_words\": %.0f}%s\n"
        name ns minor_w major_w
        (if i = List.length micro - 1 then "" else ","))
    micro;
  out "  ],\n";
  out "  \"kernels\": [\n";
  List.iteri
    (fun i k ->
      out
        "    {\"name\": %S, \"baseline_s\": %.6f, \"csr_s\": %.6f, \
         \"speedup\": %.3f, \"results_match\": %b, \
         \"baseline_minor_words\": %.0f, \"csr_minor_words\": %.0f}%s\n"
        k.k_name k.k_base_s k.k_csr_s
        (k.k_base_s /. k.k_csr_s)
        k.k_matches k.k_base_minor_w k.k_csr_minor_w
        (if i = List.length kernels - 1 then "" else ","))
    kernels;
  out "  ],\n";
  out "  \"msbfs\": [\n";
  List.iteri
    (fun i m ->
      out
        "    {\"name\": %S, \"scalar_s\": %.6f, \"batched_s\": %.6f, \
         \"speedup\": %.3f, \"results_match\": %b}%s\n"
        m.mb_name m.mb_scalar_s m.mb_batched_s
        (m.mb_scalar_s /. m.mb_batched_s)
        m.mb_matches
        (if i = List.length msbfs - 1 then "" else ","))
    msbfs;
  out "  ],\n";
  out "  \"speedup\": [\n";
  List.iteri
    (fun i s ->
      out
        "    {\"name\": %S, \"jobs\": %d, \"sequential_s\": %.6f, \
         \"parallel_s\": %.6f, \"speedup\": %.3f, \"results_match\": %b}%s\n"
        s.sp_name s.par_jobs s.seq_s s.par_s (s.seq_s /. s.par_s) s.matches
        (if i = List.length speedups - 1 then "" else ","))
    speedups;
  out "  ],\n";
  out "  \"incremental\": [\n";
  List.iteri
    (fun i e ->
      out
        "    {\"name\": %S, \"scratch_s\": %.6f, \"incremental_s\": %.6f, \
         \"speedup\": %.3f, \"results_match\": %b}%s\n"
        e.is_name e.scratch_s e.incr_s
        (e.scratch_s /. e.incr_s)
        e.is_matches
        (if i = List.length incr - 1 then "" else ","))
    incr;
  out "  ],\n";
  out "  \"obs_overhead\": [\n";
  List.iteri
    (fun i o ->
      out
        "    {\"name\": %S, \"baseline_s\": %.6f, \"instrumented_s\": %.6f, \
         \"overhead_pct\": %.2f}%s\n"
        o.ov_name o.base_s o.inst_s
        (100.0 *. ((o.inst_s /. o.base_s) -. 1.0))
        (if i = List.length overheads - 1 then "" else ","))
    overheads;
  out "  ],\n";
  let equiv, scale = bigbench in
  out "  \"bigbench\": {\n";
  out "    \"equivalence\": [\n";
  List.iteri
    (fun i e ->
      out
        "      {\"family\": %S, \"streaming_matches_digraph\": %b, \
         \"estimator_exact_at_full_sample\": %b}%s\n"
        e.be_family e.be_streaming_matches e.be_estimator_exact
        (if i = List.length equiv - 1 then "" else ","))
    equiv;
  out "    ],\n";
  out "    \"scale\": [\n";
  List.iteri
    (fun i r ->
      out
        "      {\"family\": %S, \"n\": %d, \"k\": %d, \"landmarks\": %d, \
         \"build_s\": %.6f, \"build_ns_per_node\": %.1f, \
         \"words_per_node\": %.1f, \"sweep_s\": %.6f, \"estimate\": %.1f, \
         \"bound\": %.1f, \"exact\": %b, \"completed\": %b}%s\n"
        r.bb_family r.bb_n r.bb_k r.bb_landmarks r.bb_build_s
        r.bb_build_ns_per_node r.bb_words_per_node r.bb_sweep_s r.bb_value
        r.bb_bound r.bb_exact r.bb_completed
        (if i = List.length scale - 1 then "" else ","))
    scale;
  out "    ]\n";
  out "  },\n";
  out "  \"server\": [\n";
  List.iteri
    (fun i (name, workers, (s : Bbc_server.Loadgen.summary)) ->
      out
        "    {\"name\": %S, \"workers\": %d, \"conns\": %d, \"sessions\": %d, \
         \"requests\": %d, \"req_per_s\": %.1f, \"p50_ms\": %.4f, \
         \"p99_ms\": %.4f, \"errors\": %d, \"protocol_errors\": %d, \
         \"consistent\": %b}%s\n"
        name workers s.conns s.sessions s.requests s.req_per_s s.p50_ms s.p99_ms
        s.errors s.protocol_errors s.consistent
        (if i = List.length servers - 1 then "" else ","))
    servers;
  out "  ],\n";
  (match campaign with
  | None -> out "  \"campaign\": null\n"
  | Some c ->
      out "  \"campaign\": {\n";
      out "    \"units\": %d,\n" c.ca_units;
      out "    \"checkpoint_every\": %d,\n" c.ca_checkpoint_every;
      out "    \"checkpoint_overhead_pct\": %.2f,\n" c.ca_overhead_pct;
      out "    \"reports_identical\": %b,\n" c.ca_matches;
      out "    \"jobs_ablation\": [\n";
      List.iteri
        (fun i (jobs, t, rps) ->
          out "      {\"jobs\": %d, \"elapsed_s\": %.6f, \"runs_per_s\": %.1f}%s\n"
            jobs t rps
            (if i = List.length c.ca_rows - 1 then "" else ","))
        c.ca_rows;
      out "    ]\n";
      out "  }\n");
  out "}\n";
  close_out oc;
  Format.fprintf fmt "wrote %s@." path

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Pull "--jobs N", "--json [FILE]" and the observability flags out of
     the argument list before experiment-id filtering sees them. *)
  let jobs_arg = ref None
  and json_arg = ref None
  and metrics_arg = ref false
  and trace_arg = ref None in
  let rec strip = function
    | [] -> []
    | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 ->
            jobs_arg := Some j;
            strip rest
        | _ ->
            prerr_endline "bench: --jobs expects a positive integer";
            exit 2)
    | "--json" :: v :: rest when String.length v > 0 && v.[0] <> '-'
                                 && Bbc_experiments.Registry.find v = None ->
        json_arg := Some v;
        strip rest
    | "--json" :: rest ->
        json_arg := Some (next_bench_path ());
        strip rest
    | "--metrics" :: rest ->
        metrics_arg := true;
        strip rest
    | "--trace-out" :: v :: rest ->
        trace_arg := Some v;
        strip rest
    | a :: rest -> a :: strip rest
  in
  let args = strip args in
  Option.iter Bbc_parallel.set_default_jobs !jobs_arg;
  let trace_oc = Option.map open_out !trace_arg in
  if !metrics_arg || trace_oc <> None then Bbc_obs.enable ();
  Option.iter (fun oc -> Bbc_obs.add_sink (Bbc_obs.jsonl_sink oc)) trace_oc;
  let has flag = List.mem flag args in
  let full = has "--full" in
  let quick = not full in
  let timing_only = has "--timing-only" in
  let no_timing = has "--no-timing" in
  let selected =
    List.filter_map Bbc_experiments.Registry.find args
  in
  if not timing_only then begin
    Format.fprintf fmt
      "BBC games reproduction harness — Laoutaris et al., PODC 2008@.";
    Format.fprintf fmt "mode: %s (jobs=%d)@."
      (if full then "full" else "quick")
      (Bbc_parallel.default_jobs ());
    match selected with
    | [] -> Bbc_experiments.Registry.run_all ~quick fmt
    | entries -> List.iter (fun (e : Bbc_experiments.Registry.entry) -> e.run ~quick fmt) entries
  end;
  let micro = ref [] in
  if (not no_timing) && selected = [] then begin
    micro := run_benchmarks ~name:"Micro-benchmarks (Bechamel)" (core_benchmarks ());
    if full || has "--ablations" || timing_only then
      micro :=
        !micro
        @ run_benchmarks ~name:"Ablations (DESIGN.md section 5)" (ablation_benchmarks ())
  end;
  (match !json_arg with
  | None -> ()
  | Some path ->
      (* Per-jobs ablation: jobs in {2, 4} (the EXPERIMENTS.md rechunk
         table; seq rows carry jobs=1), plus the configured pool width
         and the runtime's recommended domain count when they differ
         (the JSON carries both figures, so regressions in either are
         attributable). *)
      let jobs_ablation =
        List.sort_uniq compare
          [
            2;
            4;
            max 2 (Bbc_parallel.default_jobs ());
            max 2 (Domain.recommended_domain_count ());
          ]
      in
      (* The seq-vs-par section measures the domain pool, so the
         incremental engine (sequential by construction) must stay out
         of the from-scratch code paths it times. *)
      let speedups =
        let was = Bbc.Incr.enabled () in
        Bbc.Incr.set_enabled false;
        Fun.protect
          ~finally:(fun () -> Bbc.Incr.set_enabled was)
          (fun () ->
            List.concat_map
              (fun par_jobs -> speedup_benchmarks ~par_jobs)
              jobs_ablation)
      in
      print_speedups speedups;
      let kernels = kernel_benchmarks () in
      print_kernels kernels;
      let msbfs = msbfs_benchmarks () in
      print_msbfs msbfs;
      let incr = incremental_benchmarks ~full in
      print_incr_speedups incr;
      let overheads = overhead_benchmarks () in
      print_overheads overheads;
      let bigbench = (bigbench_equivalence (), bigbench_scale_rows ()) in
      (let equiv, scale = bigbench in
       print_bigbench equiv scale);
      let servers = server_benchmarks ~full in
      print_servers servers;
      let campaign = campaign_benchmarks ~full in
      print_campaign campaign;
      write_json ~path ~micro:!micro ~kernels ~msbfs ~speedups ~incr ~overheads
        ~bigbench ~servers ~campaign);
  Bbc_obs.drain ();
  Option.iter close_out trace_oc;
  if !metrics_arg then Bbc_obs.pp_summary fmt;
  Format.pp_print_flush fmt ()
