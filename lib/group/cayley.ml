module Digraph = Bbc_graph.Digraph

type t = {
  group : Abelian.t;
  generators : Abelian.element list;
  graph : Digraph.t;
}

let make group generators =
  let identity = Abelian.identity group in
  if List.mem identity generators then
    invalid_arg "Cayley.make: identity generator would create self-loops";
  let sorted = List.sort_uniq compare generators in
  if List.length sorted <> List.length generators then
    invalid_arg "Cayley.make: repeated generator";
  let n = Abelian.order group in
  let graph = Digraph.create n in
  List.iter
    (fun x ->
      List.iter (fun a -> Digraph.add_edge graph x (Abelian.add group x a) 1) generators)
    (Abelian.elements group);
  { group; generators; graph }

let circulant ~n ~offsets =
  let group = Abelian.cyclic n in
  make group (List.map (fun o -> ((o mod n) + n) mod n) offsets)

let hypercube d =
  let group = Abelian.boolean_cube d in
  let unit i = Abelian.of_coords group (List.init d (fun j -> if i = j then 1 else 0)) in
  make group (List.init d unit)

let torus a b =
  let group = Abelian.create [ a; b ] in
  make group [ Abelian.of_coords group [ 1; 0 ]; Abelian.of_coords group [ 0; 1 ] ]

let degree t = List.length t.generators

let random_circulant rng ~n ~k =
  if k > n - 1 then invalid_arg "Cayley.random_circulant: k > n - 1";
  let offsets =
    Bbc_prng.Splitmix.sample_without_replacement rng k (n - 1)
    |> List.map (fun o -> o + 1)
  in
  circulant ~n ~offsets
