(** Cayley graphs of finite abelian groups (paper, Section 4.2).

    [G(H, S)] has the elements of [H] as vertices and an edge
    [u -> u + a] for every generator [a] in [S].  The paper's "regular
    graphs" (each node's i-th edge goes to [x + a_i mod n]) are exactly
    the Cayley graphs of [Z_n]; hypercubes are Cayley graphs of [Z_2^d].
    All edges have length 1 (the game studied on them is uniform). *)

type t = private {
  group : Abelian.t;
  generators : Abelian.element list;  (** Distinct, non-identity. *)
  graph : Bbc_graph.Digraph.t;
}

val make : Abelian.t -> Abelian.element list -> t
(** Raises [Invalid_argument] if a generator is the identity (self-loop)
    or repeated. *)

val circulant : n:int -> offsets:int list -> t
(** The "regular graph" of the paper: Cayley graph of [Z_n] with the given
    offsets (each taken mod n, must be non-zero mod n and distinct). *)

val hypercube : int -> t
(** [hypercube d]: Cayley graph of [Z_2^d] with the [d] unit vectors —
    the [2^d]-node hypercube of Corollary 1. *)

val torus : int -> int -> t
(** [torus a b]: Cayley graph of [Z_a x Z_b] with generators [(1,0)] and
    [(0,1)] (directed 2-D torus). *)

val degree : t -> int

val random_circulant : Bbc_prng.Splitmix.t -> n:int -> k:int -> t
(** Circulant on [Z_n] with [k] distinct random non-zero offsets. *)
