type t = { moduli : int array; order : int }
type element = int

let create ms =
  if ms = [] then invalid_arg "Abelian.create: empty factor list";
  List.iter (fun m -> if m < 1 then invalid_arg "Abelian.create: modulus < 1") ms;
  let moduli = Array.of_list ms in
  { moduli; order = Array.fold_left ( * ) 1 moduli }

let cyclic n = create [ n ]

let boolean_cube d =
  if d < 1 then invalid_arg "Abelian.boolean_cube: dimension < 1";
  create (List.init d (fun _ -> 2))

let order g = g.order
let rank g = Array.length g.moduli
let moduli g = Array.to_list g.moduli

let identity _g = 0

let to_coords g x =
  if x < 0 || x >= g.order then invalid_arg "Abelian.to_coords: element out of range";
  let rec go x i acc =
    if i < 0 then acc
    else go (x / g.moduli.(i)) (i - 1) ((x mod g.moduli.(i)) :: acc)
  in
  go x (Array.length g.moduli - 1) []

let of_coords g cs =
  if List.length cs <> Array.length g.moduli then
    invalid_arg "Abelian.of_coords: wrong coordinate count";
  List.fold_left2
    (fun acc c m -> (acc * m) + (((c mod m) + m) mod m))
    0 cs (moduli g)

let add g x y =
  let cx = to_coords g x and cy = to_coords g y in
  of_coords g (List.map2 ( + ) cx cy)

let neg g x = of_coords g (List.map (fun c -> -c) (to_coords g x))

let sub g x y = add g x (neg g y)

let element_order g x =
  let rec go acc p = if acc = 0 then p else go (add g acc x) (p + 1) in
  if x = 0 then 1 else go x 1

let elements g = List.init g.order Fun.id

let pp_element g fmt x =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",") Format.pp_print_int)
    (to_coords g x)
