(** Finite abelian groups as products of cyclic groups
    [Z_{m_1} x ... x Z_{m_d}] (every finite abelian group is isomorphic to
    such a product).  Elements are encoded as integers in
    [0 .. order - 1] via mixed-radix positional encoding, which makes them
    directly usable as graph vertices. *)

type t

type element = int
(** Encoded element: the mixed-radix packing of the coordinate vector. *)

val create : int list -> t
(** [create [m1; ...; md]] is [Z_m1 x ... x Z_md].  Every modulus must be
    at least 1. *)

val cyclic : int -> t
(** [cyclic n] is [Z_n]. *)

val boolean_cube : int -> t
(** [boolean_cube d] is [Z_2^d] (the group of the [d]-dimensional
    hypercube). *)

val order : t -> int
val rank : t -> int
(** Number of cyclic factors. *)

val moduli : t -> int list

val identity : t -> element

val of_coords : t -> int list -> element
(** Coordinates are reduced modulo the respective factor. *)

val to_coords : t -> element -> int list

val add : t -> element -> element -> element
val neg : t -> element -> element
val sub : t -> element -> element -> element

val element_order : t -> element -> int
(** Smallest [p >= 1] with [p * x = 0]. *)

val elements : t -> element list
(** All elements, in encoding order (identity first). *)

val pp_element : t -> Format.formatter -> element -> unit
