(* Fixed-size domain pool with chunked deterministic data-parallel
   operations.  See bbc_parallel.mli for the contract. *)

let hard_cap = 128

(* Observability handles (no-ops while Bbc_obs is disabled).
   [pool.wait_ns] is per-domain sharded, so each worker's pickup latency
   lands in its own cells and the merged histogram is contention-free. *)
let obs_tasks = Bbc_obs.counter "pool.tasks"
let obs_runs = Bbc_obs.counter "pool.runs"
let obs_wait = Bbc_obs.histogram "pool.wait_ns"
let obs_workers = Bbc_obs.gauge "pool.workers"

(* ------------------------------------------------------------------ *)
(* Job-count configuration.                                            *)

let env_jobs () =
  match Sys.getenv_opt "BBC_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some (min j hard_cap)
      | _ -> None)

let configured_jobs = ref None

let set_default_jobs j =
  if j < 1 then invalid_arg "Bbc_parallel.set_default_jobs: jobs must be >= 1";
  configured_jobs := Some (min j hard_cap)

let default_jobs () =
  match !configured_jobs with
  | Some j -> j
  | None -> (
      match env_jobs () with
      | Some j -> j
      | None -> max 1 (min hard_cap (Domain.recommended_domain_count ())))

let jobs_for ?jobs ~threshold n =
  match jobs with
  | Some j -> max 1 j
  | None -> if n < threshold then 1 else default_jobs ()

(* ------------------------------------------------------------------ *)
(* The pool.

   Worker domains park on [work_ready] until a generation bump publishes
   a task.  Every worker runs the task closure; the closure itself pulls
   chunks from an atomic counter, so workers beyond the task's job bound
   (or beyond the available chunks) return immediately.  The caller
   participates too, then blocks on [work_done] until the workers that
   picked the task up are finished. *)

type pool = {
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;
  mutable task : (unit -> unit) option;
  mutable pending : int;  (* workers still inside the current task *)
  mutable workers : unit Domain.t list;
  mutable nworkers : int;
  mutable shutdown : bool;
  mutable published_ns : int;  (* publish time of the current task *)
}

let pool =
  {
    mutex = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    generation = 0;
    task = None;
    pending = 0;
    workers = [];
    nworkers = 0;
    shutdown = false;
    published_ns = 0;
  }

(* Set while a domain is executing (a slice of) a pool task: any nested
   parallel operation falls back to its sequential path rather than
   deadlocking on the busy pool. *)
let inside_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let run_task_slice f =
  Domain.DLS.set inside_task true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set inside_task false) f

let worker_loop () =
  let last = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock pool.mutex;
    (* Wait for a generation this worker has not served yet AND an active
       task: a worker spawned between two runs starts with [last = 0] but
       must not pick up a generation that already completed. *)
    while
      (pool.task = None || pool.generation = !last) && not pool.shutdown
    do
      Condition.wait pool.work_ready pool.mutex
    done;
    if pool.shutdown then begin
      Mutex.unlock pool.mutex;
      continue := false
    end
    else begin
      last := pool.generation;
      let task = Option.get pool.task in
      let published = pool.published_ns in
      Mutex.unlock pool.mutex;
      if Bbc_obs.enabled () then begin
        (* Queue wait: publish-to-pickup latency, sharded per worker. *)
        Bbc_obs.observe obs_wait (Bbc_obs.now_ns () - published);
        Bbc_obs.incr obs_tasks
      end;
      (* Task closures record their own exceptions; see [run]. *)
      run_task_slice task;
      Mutex.lock pool.mutex;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.broadcast pool.work_done;
      Mutex.unlock pool.mutex
    end
  done

let teardown () =
  Mutex.lock pool.mutex;
  pool.shutdown <- true;
  Condition.broadcast pool.work_ready;
  let workers = pool.workers in
  pool.workers <- [];
  pool.nworkers <- 0;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let () = at_exit teardown

(* Grow the pool to at least [n] workers (it never shrinks: the pool is
   sized once from the first effective job count and only grows when a
   caller explicitly requests more jobs than it has served so far). *)
let ensure_workers n =
  let n = min n (hard_cap - 1) in
  Mutex.lock pool.mutex;
  if (not pool.shutdown) && pool.nworkers < n then begin
    for _ = pool.nworkers + 1 to n do
      pool.workers <- Domain.spawn worker_loop :: pool.workers
    done;
    pool.nworkers <- n
  end;
  let available = pool.nworkers in
  Mutex.unlock pool.mutex;
  Bbc_obs.set_gauge obs_workers (float_of_int available);
  available

(* Run [body] on [jobs] participants (the caller plus [jobs - 1] pool
   workers).  [body] must be safe to run concurrently with itself; the
   chunked operations below satisfy that by construction. *)
let run ~jobs body =
  let jobs = max 1 (min jobs hard_cap) in
  if jobs = 1 || Domain.DLS.get inside_task then body ()
  else begin
    let first_exn = Atomic.make None in
    let guarded () =
      try body ()
      with exn ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set first_exn None (Some (exn, bt)))
    in
    let available = ensure_workers (jobs - 1) in
    if available = 0 then body ()
    else begin
      Mutex.lock pool.mutex;
      pool.task <- Some guarded;
      pool.pending <- available;
      pool.generation <- pool.generation + 1;
      pool.published_ns <- (if Bbc_obs.enabled () then Bbc_obs.now_ns () else 0);
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.mutex;
      if Bbc_obs.enabled () then begin
        Bbc_obs.incr obs_runs;
        Bbc_obs.incr obs_tasks (* the caller participates too *)
      end;
      run_task_slice guarded;
      Mutex.lock pool.mutex;
      while pool.pending > 0 do
        Condition.wait pool.work_done pool.mutex
      done;
      pool.task <- None;
      Mutex.unlock pool.mutex;
      match Atomic.get first_exn with
      | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
      | None -> ()
    end
  end

(* ------------------------------------------------------------------ *)
(* Chunked operations.                                                 *)

let resolve_jobs jobs = match jobs with Some j -> max 1 j | None -> default_jobs ()

(* Chunk geometry for the index range [lo, hi): aim for several chunks
   per job so stragglers rebalance, but never fewer than [chunk] = 1. *)
let chunk_size ?chunk ~jobs lo hi =
  let len = hi - lo in
  match chunk with
  | Some c -> max 1 c
  | None -> max 1 (1 + ((len - 1) / (jobs * 8)))

let parallel_for ?jobs ?chunk lo hi f =
  let jobs = resolve_jobs jobs in
  if hi <= lo then ()
  else if jobs = 1 || hi - lo = 1 then
    for i = lo to hi - 1 do
      f i
    done
  else begin
    let chunk = chunk_size ?chunk ~jobs lo hi in
    let nchunks = 1 + ((hi - lo - 1) / chunk) in
    let next = Atomic.make 0 in
    let participants = Atomic.make 0 in
    run ~jobs (fun () ->
        if Atomic.fetch_and_add participants 1 < jobs then begin
          let continue = ref true in
          while !continue do
            let c = Atomic.fetch_and_add next 1 in
            if c >= nchunks then continue := false
            else begin
              let start = lo + (c * chunk) in
              let stop = min hi (start + chunk) in
              for i = start to stop - 1 do
                f i
              done
            end
          done
        end)
  end

let parallel_for_chunks ?jobs ?chunk lo hi f =
  let jobs = resolve_jobs jobs in
  if hi <= lo then ()
  else if jobs = 1 then f lo hi
  else begin
    let chunk = chunk_size ?chunk ~jobs lo hi in
    let nchunks = 1 + ((hi - lo - 1) / chunk) in
    let next = Atomic.make 0 in
    let participants = Atomic.make 0 in
    run ~jobs (fun () ->
        if Atomic.fetch_and_add participants 1 < jobs then begin
          let continue = ref true in
          while !continue do
            let c = Atomic.fetch_and_add next 1 in
            if c >= nchunks then continue := false
            else begin
              let start = lo + (c * chunk) in
              f start (min hi (start + chunk))
            end
          done
        end)
  end

let parallel_init ?jobs ?chunk n f =
  if n < 0 then invalid_arg "Bbc_parallel.parallel_init: negative length";
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    parallel_for ?jobs ?chunk 1 n (fun i -> out.(i) <- f i);
    out
  end

let parallel_map ?jobs ?chunk f arr =
  parallel_init ?jobs ?chunk (Array.length arr) (fun i -> f arr.(i))

let parallel_reduce ?jobs ?chunk ~neutral ~combine lo hi f =
  let jobs = resolve_jobs jobs in
  if hi <= lo then neutral
  else if jobs = 1 then begin
    let acc = ref neutral in
    for i = lo to hi - 1 do
      acc := combine !acc (f i)
    done;
    !acc
  end
  else begin
    let chunk = chunk_size ?chunk ~jobs lo hi in
    let nchunks = 1 + ((hi - lo - 1) / chunk) in
    (* Per-chunk accumulators, folded in chunk order afterwards, keep the
       combine order independent of scheduling. *)
    let partial = Array.make nchunks neutral in
    parallel_for ~jobs ~chunk:1 0 nchunks (fun c ->
        let start = lo + (c * chunk) in
        let stop = min hi (start + chunk) in
        let acc = ref neutral in
        for i = start to stop - 1 do
          acc := combine !acc (f i)
        done;
        partial.(c) <- !acc);
    Array.fold_left combine neutral partial
  end

let parallel_find_first ?jobs ?chunk lo hi f =
  let jobs = resolve_jobs jobs in
  if hi <= lo then None
  else if jobs = 1 then begin
    let rec go i = if i >= hi then None else match f i with Some _ as r -> r | None -> go (i + 1) in
    go lo
  end
  else begin
    let chunk = chunk_size ?chunk ~jobs lo hi in
    let nchunks = 1 + ((hi - lo - 1) / chunk) in
    let next = Atomic.make 0 in
    let participants = Atomic.make 0 in
    (* Lowest index with a hit so far; [hi] = none yet.  A participant
       abandons work at or beyond the current best, but keeps scanning
       below it, so the final winner is exactly the first hit in index
       order — the same answer as the sequential scan. *)
    let best = Atomic.make hi in
    let results = Array.make nchunks None in
    let rec lower_best i =
      let cur = Atomic.get best in
      if i < cur && not (Atomic.compare_and_set best cur i) then lower_best i
    in
    run ~jobs (fun () ->
        if Atomic.fetch_and_add participants 1 < jobs then begin
          let continue = ref true in
          while !continue do
            let c = Atomic.fetch_and_add next 1 in
            if c >= nchunks then continue := false
            else begin
              let start = lo + (c * chunk) in
              if start >= Atomic.get best then continue := false
              else begin
                let stop = min hi (start + chunk) in
                let i = ref start in
                while !i < stop && !i < Atomic.get best do
                  (match f !i with
                  | Some _ as r ->
                      results.(c) <- Option.map (fun v -> (!i, v)) r;
                      lower_best !i;
                      i := stop
                  | None -> ());
                  incr i
                done
              end
            end
          done
        end);
    let winner = Atomic.get best in
    if winner >= hi then None
    else
      Array.fold_left
        (fun acc r ->
          match (acc, r) with
          | Some _, _ -> acc
          | None, Some (i, v) when i = winner -> Some v
          | None, _ -> None)
        None results
  end

let parallel_exists ?jobs ?chunk lo hi pred =
  Option.is_some
    (parallel_find_first ?jobs ?chunk lo hi (fun i -> if pred i then Some () else None))
