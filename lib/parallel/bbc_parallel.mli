(** Multicore execution engine: a fixed-size OCaml 5 domain pool with
    chunked, deterministic data-parallel operations.

    {1 Pool model}

    A single process-wide pool of worker domains is created lazily on the
    first parallel call and grows (never shrinks) up to the largest job
    count requested, bounded by an internal hard cap.  Each operation runs
    on [jobs] participants: the calling domain plus [jobs - 1] pool
    workers.  [jobs] defaults to {!default_jobs}.  Workers park on a
    condition variable between operations, so an idle pool costs nothing
    but memory.

    {1 Determinism}

    Every operation returns a result that is independent of the number of
    jobs and of scheduling:
    - {!parallel_for} / {!parallel_init} / {!parallel_map} write disjoint
      output slots;
    - {!parallel_reduce} folds per-chunk partial results in chunk order
      (equal to the sequential fold when [combine] is associative with
      [neutral] as identity);
    - {!parallel_find_first} returns the hit with the {e lowest index},
      exactly as a sequential left-to-right scan would, while still
      aborting work at higher indices early.

    {1 Thread-safety contract}

    The function passed to an operation is executed concurrently on
    several domains.  It must confine its mutable state to the call (own
    scratch arrays, own graph copies) and treat everything captured from
    the environment as {b read-only}.  The BBC hot paths satisfy this:
    {!Bbc.Instance.t} and {!Bbc.Config.t} are immutable, and the
    realized graph handed to per-node cost evaluations is only read (see
    the read-only-graph contract in [eval.mli], [stability.mli] and
    [digraph.mli]).

    Nested parallel calls (from inside a function already running on the
    pool) transparently degrade to the sequential path instead of
    deadlocking, so library code may call these operations without
    knowing whether it is itself inside one. *)

val default_jobs : unit -> int
(** Effective default job count, resolved in priority order:
    {!set_default_jobs} if called, else the [BBC_JOBS] environment
    variable (ignored unless a positive integer), else
    [Domain.recommended_domain_count ()].  Always at least 1. *)

val set_default_jobs : int -> unit
(** Override the default job count (the [--jobs] CLI flag).  Raises
    [Invalid_argument] if the argument is < 1.  Values are clamped to an
    internal hard cap. *)

val jobs_for : ?jobs:int -> threshold:int -> int -> int
(** [jobs_for ?jobs ~threshold n] resolves an optional per-call job
    count for a problem of size [n]: an explicit [jobs] always wins
    (floored at 1, so callers can force the parallel path in tests);
    otherwise problems below [threshold] run sequentially and larger
    ones use {!default_jobs}.  Shared by the hot-path call sites so
    "small inputs stay sequential" is one policy, not many. *)

val parallel_for : ?jobs:int -> ?chunk:int -> int -> int -> (int -> unit) -> unit
(** [parallel_for lo hi f] runs [f i] for every [lo <= i < hi], fanned
    out in index chunks of size [chunk] (default: range split into ~8
    chunks per job).  [f] must be safe to call concurrently on distinct
    indices. *)

val parallel_for_chunks : ?jobs:int -> ?chunk:int -> int -> int -> (int -> int -> unit) -> unit
(** [parallel_for_chunks lo hi f] covers [lo, hi) with disjoint chunk
    ranges and runs [f start stop] once per chunk ([start <= i < stop]).
    Unlike {!parallel_for}, the callee sees the whole chunk, so it can
    amortize per-slice setup — acquire a workspace row once, sweep the
    chunk, release once — instead of paying it per index.  With
    [jobs = 1] the whole range arrives as a single chunk. *)

val parallel_init : ?jobs:int -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init].  [f 0] is evaluated first on the caller (to
    seed the array), the rest in parallel. *)

val parallel_map : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]. *)

val parallel_reduce :
  ?jobs:int ->
  ?chunk:int ->
  neutral:'a ->
  combine:('a -> 'a -> 'a) ->
  int ->
  int ->
  (int -> 'a) ->
  'a
(** [parallel_reduce ~neutral ~combine lo hi f] folds [f i] over the
    range.  Chunk-local folds run in parallel; partial results are then
    combined in chunk order, so the result equals the sequential
    left-to-right fold whenever [combine] is associative and [neutral]
    its identity. *)

val parallel_find_first : ?jobs:int -> ?chunk:int -> int -> int -> (int -> 'a option) -> 'a option
(** [parallel_find_first lo hi f] is [f i] for the smallest [i] with
    [f i <> None], or [None].  Identical to the sequential scan, with
    early abort: once a hit is known at index [i], no work is started at
    indices [>= i]. *)

val parallel_exists : ?jobs:int -> ?chunk:int -> int -> int -> (int -> bool) -> bool
(** [parallel_exists lo hi p] — early-aborting parallel disjunction. *)
