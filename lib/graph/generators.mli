(** Structured and random graph generators.

    All edges produced have length 1 (uniform-game graphs); the random
    generators take an explicit {!Bbc_prng.Splitmix.t} so experiments are
    replayable. *)

val directed_ring : int -> Digraph.t
(** [directed_ring n]: edge [i -> (i+1) mod n] for every [i].  [n >= 2]. *)

val directed_path : int -> Digraph.t
(** [directed_path n]: edge [i -> i+1] for [i < n-1]. *)

val complete : int -> Digraph.t
(** Every ordered pair is an edge. *)

val k_ary_tree : k:int -> height:int -> Digraph.t
(** Complete directed [k]-ary tree of the given height; node 0 is the root
    and edges point away from the root.  Nodes are numbered in BFS order,
    so the children of [v] are [k*v + 1 .. k*v + k]. *)

val k_ary_tree_size : k:int -> height:int -> int
(** Number of nodes of {!k_ary_tree}. *)

val random_k_out : Bbc_prng.Splitmix.t -> n:int -> k:int -> Digraph.t
(** Every node gets [k] out-edges to distinct uniformly random targets
    (never itself).  Requires [k <= n - 1]. *)

val gnp : Bbc_prng.Splitmix.t -> n:int -> p:float -> Digraph.t
(** Directed Erdős–Rényi: each ordered pair is an edge independently with
    probability [p]. *)
