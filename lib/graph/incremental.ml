let unreachable = max_int

(* ------------------------------------------------------------------ *)
(* Mirror graph.                                                       *)

type graph = {
  gn : int;
  fwd : (int * int) list array; (* fwd.(u) = [(v, len); ...] *)
  bwd : (int * int) list array; (* bwd.(v) = [(u, len); ...] *)
  mutable multi : int; (* vertices with out-degree >= 2 *)
  mutable non_unit : int; (* edges with length <> 1 *)
  mutable version : int; (* bumped on every mutation *)
}

let of_digraph g =
  let n = Digraph.n g in
  let t =
    {
      gn = n;
      fwd = Array.make n [];
      bwd = Array.make n [];
      multi = 0;
      non_unit = 0;
      version = 0;
    }
  in
  for u = 0 to n - 1 do
    let es = Digraph.out_edges g u in
    t.fwd.(u) <- es;
    if List.length es >= 2 then t.multi <- t.multi + 1;
    List.iter
      (fun (v, len) ->
        t.bwd.(v) <- (u, len) :: t.bwd.(v);
        if len <> 1 then t.non_unit <- t.non_unit + 1)
      es
  done;
  t

let graph_size g = g.gn
let out_edges g u = g.fwd.(u)
let functional g = g.multi = 0
let unit_lengths g = g.non_unit = 0
let version g = g.version

let count_non_unit es =
  List.fold_left (fun acc (_, len) -> if len <> 1 then acc + 1 else acc) 0 es

let replace_out g u es =
  let old = g.fwd.(u) in
  if List.length old >= 2 then g.multi <- g.multi - 1;
  if List.length es >= 2 then g.multi <- g.multi + 1;
  g.non_unit <- g.non_unit - count_non_unit old + count_non_unit es;
  List.iter
    (fun (v, _) -> g.bwd.(v) <- List.filter (fun (p, _) -> p <> u) g.bwd.(v))
    old;
  List.iter (fun (v, len) -> g.bwd.(v) <- (u, len) :: g.bwd.(v)) es;
  g.fwd.(u) <- es;
  g.version <- g.version + 1;
  old

(* ------------------------------------------------------------------ *)
(* Dynamic SSSP with an explicit shortest-path tree.                   *)

type t = {
  g : graph;
  src : int;
  dist : int array;
  parent : int array; (* tree parent; -1 for source / unreachable *)
  first_child : int array; (* -1 = none *)
  next_sib : int array;
  prev_sib : int array;
  mutable reach : int; (* #vertices with finite distance (incl. src) *)
  heap : Binary_heap.t; (* scratch, cleared per repair *)
  mark : int array; (* stamped when a vertex enters the current log *)
  mutable stamp : int;
}

(* Undo record: each touched vertex appears once with its pre-repair
   distance and tree parent. *)
type undo = (int * int * int) list

let source t = t.src
let distances t = t.dist
let reachable_count t = t.reach

(* --- tree surgery ------------------------------------------------- *)

let detach t x =
  let p = t.parent.(x) in
  if p >= 0 then begin
    let prev = t.prev_sib.(x) and next = t.next_sib.(x) in
    if prev >= 0 then t.next_sib.(prev) <- next else t.first_child.(p) <- next;
    if next >= 0 then t.prev_sib.(next) <- prev;
    t.parent.(x) <- -1;
    t.prev_sib.(x) <- -1;
    t.next_sib.(x) <- -1
  end

let attach t x p =
  t.parent.(x) <- p;
  if p >= 0 then begin
    let head = t.first_child.(p) in
    t.next_sib.(x) <- head;
    if head >= 0 then t.prev_sib.(head) <- x;
    t.prev_sib.(x) <- -1;
    t.first_child.(p) <- x
  end

(* --- observability ------------------------------------------------ *)

let obs_full = Bbc_obs.counter "incremental.full_sssp"
let obs_repairs = Bbc_obs.counter "incremental.repairs"
let obs_noop = Bbc_obs.counter "incremental.repairs_noop"
let obs_repair_size = Bbc_obs.histogram "incremental.repair_touched"

(* --- full build ---------------------------------------------------- *)

let compute_full t =
  let n = t.g.gn in
  Array.fill t.dist 0 n unreachable;
  Array.fill t.parent 0 n (-1);
  Array.fill t.first_child 0 n (-1);
  Array.fill t.next_sib 0 n (-1);
  Array.fill t.prev_sib 0 n (-1);
  t.dist.(t.src) <- 0;
  t.reach <- 1;
  if unit_lengths t.g then begin
    let queue = Queue.create () in
    Queue.add t.src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.take queue in
      let du = t.dist.(u) in
      List.iter
        (fun (v, _len) ->
          if t.dist.(v) = unreachable then begin
            t.dist.(v) <- du + 1;
            attach t v u;
            t.reach <- t.reach + 1;
            Queue.add v queue
          end)
        t.g.fwd.(u)
    done
  end
  else begin
    Binary_heap.clear t.heap;
    Binary_heap.push t.heap 0 t.src;
    let rec drain () =
      match Binary_heap.pop t.heap with
      | None -> ()
      | Some (d, u) ->
          if d = t.dist.(u) then
            List.iter
              (fun (v, len) ->
                let nd = d + len in
                if nd < t.dist.(v) then begin
                  if t.dist.(v) = unreachable then t.reach <- t.reach + 1;
                  t.dist.(v) <- nd;
                  detach t v;
                  attach t v u;
                  Binary_heap.push t.heap nd v
                end)
              t.g.fwd.(u);
          drain ()
    in
    drain ()
  end;
  Bbc_obs.incr obs_full

let create g src =
  if src < 0 || src >= g.gn then invalid_arg "Incremental.create: source out of range";
  let n = g.gn in
  let t =
    {
      g;
      src;
      dist = Array.make n unreachable;
      parent = Array.make n (-1);
      first_child = Array.make n (-1);
      next_sib = Array.make n (-1);
      prev_sib = Array.make n (-1);
      reach = 0;
      heap = Binary_heap.create ~capacity:(max 16 n) ();
      mark = Array.make n 0;
      stamp = 0;
    }
  in
  compute_full t;
  t

(* --- repair -------------------------------------------------------- *)

(* Log a vertex's pre-repair state exactly once per repair. *)
let log_once t log x =
  if t.mark.(x) <> t.stamp then begin
    t.mark.(x) <- t.stamp;
    log := (x, t.dist.(x), t.parent.(x)) :: !log
  end

(* Collect the shortest-path-tree subtree rooted at [r] (inclusive). *)
let subtree t r acc =
  let stack = ref [ r ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | x :: rest ->
        stack := rest;
        acc := x :: !acc;
        let c = ref t.first_child.(x) in
        while !c >= 0 do
          stack := !c :: !stack;
          c := t.next_sib.(!c)
        done
  done

(* Repair after the mirror graph changed at vertex [u]: the edges in
   [removed] were deleted from u's out-list and those in [added] were
   inserted.  Distances of vertices whose shortest-path-tree route used
   a removed edge are invalidated (whole subtrees, conservatively) and
   recomputed by a Dijkstra seeded from the unaffected boundary; added
   edges feed ordinary decrease-only relaxation.  Returns the number of
   vertices whose distance actually changed plus the undo log. *)
let repair t ~u ~removed ~added =
  if t.dist.(u) = unreachable then begin
    (* u was and stays unreachable from the source: no route from the
       source uses u's out-edges, so no distance can change. *)
    Bbc_obs.incr obs_noop;
    (0, [])
  end
  else begin
    t.stamp <- t.stamp + 1;
    let log = ref [] in
    (* 1. Invalidate subtrees hanging off removed tree edges. *)
    let affected = ref [] in
    List.iter
      (fun (v, _len) -> if t.parent.(v) = u then subtree t v affected)
      removed;
    List.iter
      (fun a ->
        log_once t log a;
        t.dist.(a) <- unreachable;
        t.reach <- t.reach - 1;
        detach t a)
      !affected;
    Binary_heap.clear t.heap;
    let improve x nd p =
      log_once t log x;
      if t.dist.(x) = unreachable then t.reach <- t.reach + 1;
      t.dist.(x) <- nd;
      detach t x;
      attach t x p;
      Binary_heap.push t.heap nd x
    in
    (* 2. Seed affected vertices from their unaffected in-neighbours. *)
    List.iter
      (fun a ->
        List.iter
          (fun (p, len) ->
            if t.dist.(p) <> unreachable then begin
              let nd = t.dist.(p) + len in
              if nd < t.dist.(a) then improve a nd p
            end)
          t.g.bwd.(a))
      !affected;
    (* 3. Relax added edges (decrease-only from u). *)
    let du = t.dist.(u) in
    List.iter
      (fun (v, len) ->
        let nd = du + len in
        if nd < t.dist.(v) then improve v nd u)
      added;
    (* 4. Dijkstra over the improvable region. *)
    let rec drain () =
      match Binary_heap.pop t.heap with
      | None -> ()
      | Some (d, x) ->
          if d = t.dist.(x) then
            List.iter
              (fun (y, len) ->
                let nd = d + len in
                if nd < t.dist.(y) then improve y nd x)
              t.g.fwd.(x);
          drain ()
    in
    drain ();
    let changed =
      List.fold_left
        (fun acc (x, old_dist, _) -> if t.dist.(x) <> old_dist then acc + 1 else acc)
        0 !log
    in
    Bbc_obs.incr obs_repairs;
    Bbc_obs.observe obs_repair_size (List.length !log);
    (changed, !log)
  end

let undo t log =
  (* Two passes: restore every touched vertex's distance first (with the
     tree link severed), then re-attach under the recorded parents —
     attachment order is irrelevant once all parents are final. *)
  List.iter
    (fun (x, old_dist, _) ->
      if t.dist.(x) = unreachable && old_dist <> unreachable then
        t.reach <- t.reach + 1
      else if t.dist.(x) <> unreachable && old_dist = unreachable then
        t.reach <- t.reach - 1;
      detach t x;
      t.dist.(x) <- old_dist)
    log;
  List.iter (fun (x, _, old_parent) -> if old_parent >= 0 then attach t x old_parent) log

(* --- debug oracle -------------------------------------------------- *)

let well_formed t =
  let ok = ref (t.dist.(t.src) = 0) in
  let reach = ref 0 in
  for x = 0 to t.g.gn - 1 do
    if t.dist.(x) <> unreachable then incr reach;
    let p = t.parent.(x) in
    if p >= 0 then begin
      (match List.assoc_opt x t.g.fwd.(p) with
      | Some len -> if t.dist.(p) = unreachable || t.dist.(p) + len <> t.dist.(x) then ok := false
      | None -> ok := false);
      (* x must appear in p's child list exactly once *)
      let seen = ref 0 in
      let c = ref t.first_child.(p) in
      while !c >= 0 do
        if !c = x then incr seen;
        c := t.next_sib.(!c)
      done;
      if !seen <> 1 then ok := false
    end
  done;
  !ok && !reach = t.reach
