(** Centrality measures for analyzing equilibrium networks.

    Betweenness (Brandes 2001, directed, unit lengths) measures how much
    shortest-path traffic transits each node — in an equilibrium overlay,
    the nodes everyone implicitly depends on.  In-degree is the crude
    "attention" measure the social-network example reports. *)

val betweenness : Digraph.t -> float array
(** [betweenness g] returns, for each vertex, the number of shortest
    paths between ordered pairs (s, t) (s, t distinct from the vertex)
    that pass through it, each pair contributing fractionally when it
    has several shortest paths.  Edge lengths are ignored (hop-count
    paths), matching the uniform-game metric. *)

val in_degrees : Digraph.t -> int array

val gini : int array -> float
(** Gini coefficient of a non-negative integer distribution (0 =
    perfectly equal, -> 1 = concentrated); 0 for empty or all-zero
    input.  Used to quantify how unequally incoming links are
    distributed across an equilibrium. *)
