(* Per-domain buffer pools; see workspace.mli for the contract. *)

type t = {
  mutable row_len : int;
  mutable free : int array array; (* stack of clean rows, [0 .. nfree) live *)
  mutable nfree : int;
  scratch : Csr.scratch;
}

let obs_acquires = Bbc_obs.counter "workspace.acquires"
let obs_alloc = Bbc_obs.counter "workspace.row_allocs"

let key : t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { row_len = 0; free = [||]; nfree = 0; scratch = Csr.create_scratch () })

let get () = Domain.DLS.get key

let scratch ws = ws.scratch

let acquire ws n =
  Bbc_obs.incr obs_acquires;
  if ws.row_len <> n then begin
    (* Different instance size: the pooled rows no longer fit. *)
    ws.free <- [||];
    ws.nfree <- 0;
    ws.row_len <- n
  end;
  if ws.nfree > 0 then begin
    ws.nfree <- ws.nfree - 1;
    ws.free.(ws.nfree)
  end
  else begin
    Bbc_obs.incr obs_alloc;
    Array.make n Csr.unreachable
  end

let release_clean ws row =
  if Array.length row = ws.row_len then begin
    if ws.nfree = Array.length ws.free then begin
      let grown = Array.make (max 8 (2 * ws.nfree)) [||] in
      Array.blit ws.free 0 grown 0 ws.nfree;
      ws.free <- grown
    end;
    ws.free.(ws.nfree) <- row;
    ws.nfree <- ws.nfree + 1
  end

let release ws row =
  Array.fill row 0 (Array.length row) Csr.unreachable;
  release_clean ws row

let pooled ws = ws.nfree
