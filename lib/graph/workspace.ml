(* Per-domain buffer pools; see workspace.mli for the contract. *)

type t = {
  mutable row_len : int;
  mutable free : int array array; (* stack of clean rows, [0 .. nfree) live *)
  mutable nfree : int;
  mutable row_len32 : int;
  mutable free32 : Csr.dist32 array; (* stack of clean int32 rows *)
  mutable nfree32 : int;
  scratch : Csr.scratch;
}

let obs_acquires = Bbc_obs.counter "workspace.acquires"
let obs_alloc = Bbc_obs.counter "workspace.row_allocs"

let key : t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        row_len = 0;
        free = [||];
        nfree = 0;
        row_len32 = 0;
        free32 = [||];
        nfree32 = 0;
        scratch = Csr.create_scratch ();
      })

let get () = Domain.DLS.get key

let scratch ws = ws.scratch

let acquire ws n =
  Bbc_obs.incr obs_acquires;
  if ws.row_len <> n then begin
    (* Different instance size: the pooled rows no longer fit. *)
    ws.free <- [||];
    ws.nfree <- 0;
    ws.row_len <- n
  end;
  if ws.nfree > 0 then begin
    ws.nfree <- ws.nfree - 1;
    ws.free.(ws.nfree)
  end
  else begin
    Bbc_obs.incr obs_alloc;
    Array.make n Csr.unreachable
  end

let release_clean ws row =
  if Array.length row = ws.row_len then begin
    if ws.nfree = Array.length ws.free then begin
      let grown = Array.make (max 8 (2 * ws.nfree)) [||] in
      Array.blit ws.free 0 grown 0 ws.nfree;
      ws.free <- grown
    end;
    ws.free.(ws.nfree) <- row;
    ws.nfree <- ws.nfree + 1
  end

let release ws row =
  Array.fill row 0 (Array.length row) Csr.unreachable;
  release_clean ws row

let pooled ws = ws.nfree

(* Batched acquisition for the MS-BFS consumers: one call per
   bit-parallel window instead of one per source. *)

let acquire_many ws n k = Array.init k (fun _ -> acquire ws n)
let release_clean_many ws rows = Array.iter (release_clean ws) rows

(* int32 rows: same pool discipline, same counters (an acquisition is an
   acquisition whatever the element width). *)

let acquire32 ws n =
  Bbc_obs.incr obs_acquires;
  if ws.row_len32 <> n then begin
    ws.free32 <- [||];
    ws.nfree32 <- 0;
    ws.row_len32 <- n
  end;
  if ws.nfree32 > 0 then begin
    ws.nfree32 <- ws.nfree32 - 1;
    ws.free32.(ws.nfree32)
  end
  else begin
    Bbc_obs.incr obs_alloc;
    Csr.create_dist32 n
  end

let release_clean32 ws row =
  if Bigarray.Array1.dim row = ws.row_len32 then begin
    if ws.nfree32 = Array.length ws.free32 then begin
      let grown = Array.make (max 8 (2 * ws.nfree32)) row in
      Array.blit ws.free32 0 grown 0 ws.nfree32;
      ws.free32 <- grown
    end;
    ws.free32.(ws.nfree32) <- row;
    ws.nfree32 <- ws.nfree32 + 1
  end

let release32 ws row =
  Csr.fill32 row;
  release_clean32 ws row

let pooled32 ws = ws.nfree32
let acquire_many32 ws n k = Array.init k (fun _ -> acquire32 ws n)
let release_clean_many32 ws rows = Array.iter (release_clean32 ws) rows
