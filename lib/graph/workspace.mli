(** Per-domain pools of reusable scratch buffers for the evaluation hot
    path.

    Every domain — the main one and each {!Bbc_parallel} pool worker —
    owns one workspace, fetched with {!get} (domain-local storage, so
    concurrent callers never contend and never see each other's
    buffers).  A workspace holds a free stack of {e clean} distance rows
    (every entry [Csr.unreachable]) plus one {!Csr.scratch} for the
    traversal kernels.

    Discipline: {!acquire} a row, use it, hand it back with {!release}
    (which re-cleans it with one [Array.fill]) or {!release_clean} (when
    the caller already restored it, e.g. via {!Csr.reset} — O(visited)).
    Acquire/release pairs must stay on the domain that issued them; the
    hot paths satisfy this by construction (rows never outlive the
    parallel task slice that acquired them).

    Rows are sized on demand: asking for a different length than the
    pool currently holds drops the old free stack (workloads switch
    instance sizes rarely; within a workload the pool is stable and
    steady-state acquisition allocates nothing). *)

type t

val get : unit -> t
(** This domain's workspace (created on first use). *)

val scratch : t -> Csr.scratch
(** The workspace's kernel scratch (queue, heap, dirty list). *)

val acquire : t -> int -> int array
(** [acquire ws n] is a clean length-[n] row: every entry
    [Csr.unreachable]. *)

val release : t -> int array -> unit
(** Return a row in any state: it is re-cleaned (O(n) [Array.fill]) and
    pushed on the free stack.  Rows whose length no longer matches the
    pool are dropped. *)

val release_clean : t -> int array -> unit
(** Return a row the caller has already restored to all-unreachable
    (e.g. with {!Csr.reset}); skips the fill.  Returning a dirty row
    through this function corrupts later acquisitions. *)

val pooled : t -> int
(** Number of rows currently on the free stack (for tests/metrics). *)

val acquire_many : t -> int -> int -> int array array
(** [acquire_many ws n k] is [k] clean length-[n] rows — one
    {!Csr.sssp_batch} window's worth. *)

val release_clean_many : t -> int array array -> unit
(** Return a batch of rows already restored to clean (e.g. via
    {!Csr.reset_rows}). *)

(** {1 Compact int32 rows}

    A second free stack holding {!Csr.dist32} rows, behind the same
    acquire/release discipline and the same counters.  The two pools are
    independent — a workload can mix exact [int array] sweeps and
    compact int32 sweeps without thrashing either stack. *)

val acquire32 : t -> int -> Csr.dist32
(** [acquire32 ws n] is a clean length-[n] int32 row: every entry
    [Csr.unreachable32]. *)

val release32 : t -> Csr.dist32 -> unit
(** Return an int32 row in any state (re-cleaned with one fill). *)

val release_clean32 : t -> Csr.dist32 -> unit
(** Return an int32 row already restored to clean (e.g. via
    {!Csr.reset32}). *)

val pooled32 : t -> int
(** Number of int32 rows on the free stack. *)

val acquire_many32 : t -> int -> int -> Csr.dist32 array
(** {!acquire_many} for int32 rows. *)

val release_clean_many32 : t -> Csr.dist32 array -> unit
(** {!release_clean_many} for int32 rows (pairs with
    {!Csr.reset_rows32}). *)
