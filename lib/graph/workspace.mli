(** Per-domain pools of reusable scratch buffers for the evaluation hot
    path.

    Every domain — the main one and each {!Bbc_parallel} pool worker —
    owns one workspace, fetched with {!get} (domain-local storage, so
    concurrent callers never contend and never see each other's
    buffers).  A workspace holds a free stack of {e clean} distance rows
    (every entry [Csr.unreachable]) plus one {!Csr.scratch} for the
    traversal kernels.

    Discipline: {!acquire} a row, use it, hand it back with {!release}
    (which re-cleans it with one [Array.fill]) or {!release_clean} (when
    the caller already restored it, e.g. via {!Csr.reset} — O(visited)).
    Acquire/release pairs must stay on the domain that issued them; the
    hot paths satisfy this by construction (rows never outlive the
    parallel task slice that acquired them).

    Rows are sized on demand: asking for a different length than the
    pool currently holds drops the old free stack (workloads switch
    instance sizes rarely; within a workload the pool is stable and
    steady-state acquisition allocates nothing). *)

type t

val get : unit -> t
(** This domain's workspace (created on first use). *)

val scratch : t -> Csr.scratch
(** The workspace's kernel scratch (queue, heap, dirty list). *)

val acquire : t -> int -> int array
(** [acquire ws n] is a clean length-[n] row: every entry
    [Csr.unreachable]. *)

val release : t -> int array -> unit
(** Return a row in any state: it is re-cleaned (O(n) [Array.fill]) and
    pushed on the free stack.  Rows whose length no longer matches the
    pool are dropped. *)

val release_clean : t -> int array -> unit
(** Return a row the caller has already restored to all-unreachable
    (e.g. with {!Csr.reset}); skips the fill.  Returning a dirty row
    through this function corrupts later acquisitions. *)

val pooled : t -> int
(** Number of rows currently on the free stack (for tests/metrics). *)
