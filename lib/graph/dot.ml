let to_dot ?(name = "g") ?vertex_label ?show_lengths g =
  let label = match vertex_label with Some f -> f | None -> string_of_int in
  let show_lengths =
    match show_lengths with Some b -> b | None -> not (Paths.all_unit_lengths g)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  for v = 0 to Digraph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d [label=%S];\n" v (label v))
  done;
  Digraph.iter_edges g (fun u v len ->
      if show_lengths then
        Buffer.add_string buf (Printf.sprintf "  %d -> %d [label=\"%d\"];\n" u v len)
      else Buffer.add_string buf (Printf.sprintf "  %d -> %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
