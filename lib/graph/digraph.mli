(** Mutable directed graphs over a fixed vertex set [0 .. n-1].

    Edges carry a non-negative integer length (used as the link length
    [l(u,v)] of the BBC model).  At most one edge exists per ordered pair;
    re-adding an edge replaces its length.  The representation is an
    adjacency list per vertex, which matches the access pattern of the
    shortest-path and best-response code (iterate out-edges of a vertex).

    {b Read-only-graph contract (multicore).}  A graph that is not
    mutated is safe to read from any number of domains concurrently: all
    queries ([n], [edge_count], [all_unit_lengths], [mem_edge],
    [edge_length], [out_edges], [iter_out], [iter_edges], ...) only read.
    The parallel engine ({!Bbc_parallel}) relies on this — workers share
    one realized graph and keep their own scratch (distance arrays,
    graph copies for [G_{-u}]).  Interleaving a mutation ([add_edge],
    [remove_edge], [remove_out_edges]) with concurrent readers is a data
    race and is forbidden. *)

type t

val create : int -> t
(** [create n] is the empty graph on vertices [0 .. n-1]. *)

val n : t -> int
(** Number of vertices. *)

val edge_count : t -> int
(** Number of edges currently present. *)

val all_unit_lengths : t -> bool
(** Whether every edge has length 1, in O(1): the graph maintains a
    count of non-unit edges, updated on every insertion, replacement and
    removal.  {!Paths.shortest} uses this to dispatch BFS vs Dijkstra
    without rescanning the edge set. *)

val add_edge : t -> int -> int -> int -> unit
(** [add_edge g u v len] adds (or replaces) the edge [u -> v] with length
    [len].  Raises [Invalid_argument] on out-of-range vertices, negative
    length, or a self-loop. *)

val remove_edge : t -> int -> int -> unit
(** [remove_edge g u v] removes the edge [u -> v] if present. *)

val remove_out_edges : t -> int -> unit
(** [remove_out_edges g u] deletes all edges leaving [u]. *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] is [true] iff the edge [u -> v] is present. *)

val edge_length : t -> int -> int -> int option
(** Length of the edge [u -> v], if present. *)

val out_edges : t -> int -> (int * int) list
(** [out_edges g u] is the list of [(v, length)] pairs for edges leaving
    [u], in unspecified order. *)

val out_degree : t -> int -> int

val iter_out : t -> int -> (int -> int -> unit) -> unit
(** [iter_out g u f] calls [f v len] for every edge [u -> v]. *)

val iter_edges : t -> (int -> int -> int -> unit) -> unit
(** [iter_edges g f] calls [f u v len] for every edge. *)

val fold_edges : t -> ('a -> int -> int -> int -> 'a) -> 'a -> 'a

val edges : t -> (int * int * int) list
(** All edges as [(u, v, length)] triples, sorted lexicographically. *)

val copy : t -> t

val transpose : t -> t
(** Graph with every edge reversed (lengths preserved). *)

val of_edges : int -> (int * int * int) list -> t
(** [of_edges n edges] builds a graph from [(u, v, length)] triples. *)

val of_unit_edges : int -> (int * int) list -> t
(** [of_unit_edges n edges] builds a graph whose edges all have length 1. *)

val equal : t -> t -> bool
(** Structural equality: same vertex count, same edge set with lengths. *)

val pp : Format.formatter -> t -> unit
