(** Immutable flat CSR (compressed sparse row) snapshots of a digraph,
    with allocation-free shortest-path kernels.

    A snapshot packs the adjacency structure into three flat [int]
    arrays — row offsets, edge targets, edge lengths — so a sweep walks
    contiguous memory instead of chasing list cells.  Snapshots are
    immutable: build one per realized graph (or per [G_{-u}]), run any
    number of sweeps against it, from any number of domains.

    The kernels ({!bfs}, {!dijkstra}, {!sssp}) write distances into a
    {b caller-supplied} buffer and keep all traversal state (BFS ring
    queue, Dijkstra heap, touched-vertex dirty list) in a reusable
    {!scratch}, so a sweep allocates nothing once the scratch has grown
    to the graph's size.  The dirty list makes clearing a distance
    buffer between sweeps cost O(visited), not O(n) ({!reset}).

    {b Contract.}  A distance buffer handed to a kernel must be
    {e clean}: every entry equal to {!unreachable}.  After the sweep,
    entries of visited vertices hold distances and the scratch's dirty
    list records exactly which entries were written; {!reset} restores
    the buffer to clean using that list.  The dirty list describes only
    the {e most recent} sweep through that scratch — reusing one scratch
    for several live buffers is fine, but only the last one can be reset
    through it (clear the others with [Array.fill _ 0 n unreachable], or
    let {!Workspace} do it on release).

    Scratches are single-domain state; {!Workspace} hands out one per
    domain. *)

type t

val unreachable : int
(** Sentinel distance ([max_int]), same value as [Paths.unreachable]. *)

val n : t -> int
val edge_count : t -> int

val unit_lengths : t -> bool
(** Whether every edge has length 1 (recorded at build time; {!sssp}
    dispatches BFS vs Dijkstra on it). *)

val equal : t -> t -> bool
(** Structural equality of the packed arrays — bit-identical layout,
    not just graph isomorphism.  Used to check that streaming builders
    reproduce {!of_digraph} exactly. *)

val of_digraph : ?skip:int -> Digraph.t -> t
(** Snapshot of [g]; with [~skip:u], the out-edges of [u] are left out
    (the best-response [G_{-u}] shape) — [u] keeps its vertex slot with
    an empty row. *)

(** {1 Direct construction}

    For callers that can enumerate edges grouped by source in ascending
    order (e.g. a strategy profile), building the snapshot directly
    skips the intermediate adjacency-list graph. *)

type builder

val builder : n:int -> m:int -> builder
(** A builder for a graph on [n] vertices with at most [m] edges. *)

val add : builder -> int -> int -> int -> unit
(** [add b u v len] appends the edge [u -> v].  Sources must arrive in
    non-decreasing order; raises [Invalid_argument] otherwise. *)

val finish : builder -> t
(** Seal the builder.  The builder must not be reused. *)

(** {1 Kernels} *)

type scratch

val create_scratch : unit -> scratch
(** An empty scratch; grows on first use to the graph's size and is
    reused (allocation-free) afterwards. *)

val bfs : ?ban:int -> t -> scratch -> src:int -> dist:int array -> unit
(** Hop-count distances from [src] into [dist] (must be clean, length
    [n]).  Edge lengths are ignored — exact for unit-length graphs.
    With [~ban:u], the out-edges of [u] are not traversed: distances
    equal those in the [G_{-u}] snapshot ([of_digraph ~skip:u]) without
    building a per-node CSR. *)

val dijkstra : ?ban:int -> t -> scratch -> src:int -> dist:int array -> unit
(** Length-weighted distances from [src] into [dist] (must be clean).
    [ban] as in {!bfs}. *)

val sssp : ?ban:int -> t -> scratch -> src:int -> dist:int array -> unit
(** {!bfs} when {!unit_lengths}, {!dijkstra} otherwise — the CSR
    counterpart of [Paths.shortest]. *)

val reset : scratch -> int array -> unit
(** Restore a distance buffer to all-{!unreachable} by clearing exactly
    the entries the {e most recent} sweep through this scratch wrote:
    O(visited), not O(n). *)

(** {1 Multi-source bit-parallel BFS}

    Unit-length sweeps from up to {!batch_width} sources share one
    traversal (the MS-BFS technique): per-vertex source bitmaps replace
    the visited flag, so each adjacency row is read once per {e batch}
    instead of once per source, and dense frontiers flip to a bottom-up
    pull pass over a lazily cached transpose (direction-optimizing
    BFS).  Weighted snapshots fall back to per-source {!dijkstra} —
    bit-parallelism needs all sources to agree on the expansion order,
    which only uniform hop counts guarantee.

    {!sssp_batch} is the single entry point: it windows any number of
    sources internally, picks MS-BFS vs scalar per snapshot, and keeps
    the {!bfs} [?ban] semantics ([G_{-u}] sweeps).  Rows must be clean
    on entry, one per source, each of length >= [n]; {!reset_rows}
    restores the whole batch to clean afterwards — O(batch reach) when
    the batch fit one window, one fill per row otherwise. *)

val batch_width : int
(** Sources per bit-parallel window: [Sys.int_size - 1] (62 on 64-bit —
    the sign bit stays clear so source masks are non-negative). *)

val sssp_batch :
  ?ban:int -> t -> scratch -> srcs:int array -> rows:int array array -> unit
(** Distances from every [srcs.(i)] into [rows.(i)].  Unit-length
    snapshots with more than one source take the bit-parallel path in
    ⌈k/{!batch_width}⌉ windows; otherwise each source runs {!sssp}.
    Equivalent to k independent [sssp] sweeps, bit for bit. *)

val msbfs :
  ?ban:int -> t -> scratch -> srcs:int array -> rows:int array array -> unit
(** One bit-parallel window: hop distances from at most {!batch_width}
    sources (raises above that, and on non-unit snapshots).  Prefer
    {!sssp_batch} unless the caller manages windows itself. *)

val reset_rows : scratch -> rows:int array array -> unit
(** Restore every row of the most recent batched call on this scratch
    to clean.  Uses the dirty list when it covers the whole batch
    (single window), full fills otherwise. *)

(** {1 Compact int32 rows}

    The same kernels over distance rows stored as an int32 [Bigarray] —
    4 bytes per entry instead of 8, halving the resident footprint of a
    sweep at n = 10^5.  The sentinel is {!unreachable32}; a computed
    distance that does not fit below it raises [Invalid_argument]
    (hop-count sweeps check once up front, weighted sweeps check per
    relaxation). *)

type dist32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

val unreachable32 : int32
(** Sentinel distance for int32 rows ([Int32.max_int]). *)

val create_dist32 : int -> dist32
(** A fresh clean row: every entry {!unreachable32}. *)

val fill32 : dist32 -> unit
(** Restore a row to clean with one O(n) fill (the int32 analogue of
    [Array.fill _ _ _ unreachable]). *)

val bfs32 : ?ban:int -> t -> scratch -> src:int -> dist:dist32 -> unit
val dijkstra32 : ?ban:int -> t -> scratch -> src:int -> dist:dist32 -> unit

val sssp32 : ?ban:int -> t -> scratch -> src:int -> dist:dist32 -> unit
(** {!bfs32} when {!unit_lengths}, {!dijkstra32} otherwise. *)

val reset32 : scratch -> dist32 -> unit
(** {!reset} for int32 rows: O(visited) restore to clean. *)

val sssp_batch32 :
  ?ban:int -> t -> scratch -> srcs:int array -> rows:dist32 array -> unit
(** {!sssp_batch} over int32 rows (raises if a hop count could reach
    {!unreachable32}). *)

val msbfs32 :
  ?ban:int -> t -> scratch -> srcs:int array -> rows:dist32 array -> unit
(** {!msbfs} over int32 rows. *)

val reset_rows32 : scratch -> rows:dist32 array -> unit
(** {!reset_rows} for int32 rows. *)
