(** Immutable flat CSR (compressed sparse row) snapshots of a digraph,
    with allocation-free shortest-path kernels.

    A snapshot packs the adjacency structure into three flat [int]
    arrays — row offsets, edge targets, edge lengths — so a sweep walks
    contiguous memory instead of chasing list cells.  Snapshots are
    immutable: build one per realized graph (or per [G_{-u}]), run any
    number of sweeps against it, from any number of domains.

    The kernels ({!bfs}, {!dijkstra}, {!sssp}) write distances into a
    {b caller-supplied} buffer and keep all traversal state (BFS ring
    queue, Dijkstra heap, touched-vertex dirty list) in a reusable
    {!scratch}, so a sweep allocates nothing once the scratch has grown
    to the graph's size.  The dirty list makes clearing a distance
    buffer between sweeps cost O(visited), not O(n) ({!reset}).

    {b Contract.}  A distance buffer handed to a kernel must be
    {e clean}: every entry equal to {!unreachable}.  After the sweep,
    entries of visited vertices hold distances and the scratch's dirty
    list records exactly which entries were written; {!reset} restores
    the buffer to clean using that list.  The dirty list describes only
    the {e most recent} sweep through that scratch — reusing one scratch
    for several live buffers is fine, but only the last one can be reset
    through it (clear the others with [Array.fill _ 0 n unreachable], or
    let {!Workspace} do it on release).

    Scratches are single-domain state; {!Workspace} hands out one per
    domain. *)

type t

val unreachable : int
(** Sentinel distance ([max_int]), same value as [Paths.unreachable]. *)

val n : t -> int
val edge_count : t -> int

val unit_lengths : t -> bool
(** Whether every edge has length 1 (recorded at build time; {!sssp}
    dispatches BFS vs Dijkstra on it). *)

val equal : t -> t -> bool
(** Structural equality of the packed arrays — bit-identical layout,
    not just graph isomorphism.  Used to check that streaming builders
    reproduce {!of_digraph} exactly. *)

val of_digraph : ?skip:int -> Digraph.t -> t
(** Snapshot of [g]; with [~skip:u], the out-edges of [u] are left out
    (the best-response [G_{-u}] shape) — [u] keeps its vertex slot with
    an empty row. *)

(** {1 Direct construction}

    For callers that can enumerate edges grouped by source in ascending
    order (e.g. a strategy profile), building the snapshot directly
    skips the intermediate adjacency-list graph. *)

type builder

val builder : n:int -> m:int -> builder
(** A builder for a graph on [n] vertices with at most [m] edges. *)

val add : builder -> int -> int -> int -> unit
(** [add b u v len] appends the edge [u -> v].  Sources must arrive in
    non-decreasing order; raises [Invalid_argument] otherwise. *)

val finish : builder -> t
(** Seal the builder.  The builder must not be reused. *)

(** {1 Kernels} *)

type scratch

val create_scratch : unit -> scratch
(** An empty scratch; grows on first use to the graph's size and is
    reused (allocation-free) afterwards. *)

val bfs : ?ban:int -> t -> scratch -> src:int -> dist:int array -> unit
(** Hop-count distances from [src] into [dist] (must be clean, length
    [n]).  Edge lengths are ignored — exact for unit-length graphs.
    With [~ban:u], the out-edges of [u] are not traversed: distances
    equal those in the [G_{-u}] snapshot ([of_digraph ~skip:u]) without
    building a per-node CSR. *)

val dijkstra : ?ban:int -> t -> scratch -> src:int -> dist:int array -> unit
(** Length-weighted distances from [src] into [dist] (must be clean).
    [ban] as in {!bfs}. *)

val sssp : ?ban:int -> t -> scratch -> src:int -> dist:int array -> unit
(** {!bfs} when {!unit_lengths}, {!dijkstra} otherwise — the CSR
    counterpart of [Paths.shortest]. *)

val reset : scratch -> int array -> unit
(** Restore a distance buffer to all-{!unreachable} by clearing exactly
    the entries the {e most recent} sweep through this scratch wrote:
    O(visited), not O(n). *)

(** {1 Compact int32 rows}

    The same kernels over distance rows stored as an int32 [Bigarray] —
    4 bytes per entry instead of 8, halving the resident footprint of a
    sweep at n = 10^5.  The sentinel is {!unreachable32}; a computed
    distance that does not fit below it raises [Invalid_argument]
    (hop-count sweeps check once up front, weighted sweeps check per
    relaxation). *)

type dist32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

val unreachable32 : int32
(** Sentinel distance for int32 rows ([Int32.max_int]). *)

val create_dist32 : int -> dist32
(** A fresh clean row: every entry {!unreachable32}. *)

val fill32 : dist32 -> unit
(** Restore a row to clean with one O(n) fill (the int32 analogue of
    [Array.fill _ _ _ unreachable]). *)

val bfs32 : ?ban:int -> t -> scratch -> src:int -> dist:dist32 -> unit
val dijkstra32 : ?ban:int -> t -> scratch -> src:int -> dist:dist32 -> unit

val sssp32 : ?ban:int -> t -> scratch -> src:int -> dist:dist32 -> unit
(** {!bfs32} when {!unit_lengths}, {!dijkstra32} otherwise. *)

val reset32 : scratch -> dist32 -> unit
(** {!reset} for int32 rows: O(visited) restore to clean. *)
