(** Single-source shortest paths.

    Distances are returned as an [int array] indexed by vertex, with
    [unreachable] (= [max_int]) marking vertices with no path from the
    source.  The BBC cost model replaces [unreachable] by the disconnection
    penalty [M] at a higher layer. *)

val unreachable : int
(** Sentinel distance ([max_int]) for vertices with no path. *)

val bfs : Digraph.t -> int -> int array
(** [bfs g src] is the array of hop-count distances from [src], ignoring
    edge lengths (every edge counts 1).  Exact for uniform games. *)

val dijkstra : Digraph.t -> int -> int array
(** [dijkstra g src] is the array of length-weighted distances from [src].
    Edge lengths must be non-negative (enforced by {!Digraph.add_edge}). *)

val shortest : Digraph.t -> int -> int array
(** [shortest g src] dispatches to {!bfs} when every edge of [g] has length
    1, to {!dijkstra} otherwise.  Large graphs take a CSR fast path: one
    {!Csr.of_digraph} snapshot, then a flat-array sweep through this
    domain's pooled {!Workspace} scratch.  Distances are identical on
    every path. *)

val shortest_csr : Csr.t -> int -> int array
(** [shortest_csr csr src] is a fresh distance row computed by the CSR
    kernel ({!Csr.sssp}) with this domain's pooled scratch.  Callers
    running many sweeps over one graph should prefer this (build the
    snapshot once) over repeated {!shortest} calls. *)

val all_unit_lengths : Digraph.t -> bool
(** Whether every edge of the graph has length 1.  O(1): the graph keeps
    a non-unit edge count up to date (see {!Digraph.all_unit_lengths}),
    so the BFS/Dijkstra dispatch in {!shortest} no longer rescans the
    whole edge set on every call. *)

val distance : Digraph.t -> int -> int -> int
(** [distance g u v] is the shortest-path distance from [u] to [v]
    ([unreachable] if there is no path). *)

val path : Digraph.t -> int -> int -> int list option
(** [path g u v] is a shortest path [u; ...; v] as a vertex list, or [None]
    if [v] is unreachable from [u]. *)
