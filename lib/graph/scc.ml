type t = { count : int; component : int array }

(* Iterative Tarjan.  The explicit stack stores (vertex, remaining out-edge
   list) frames so deep graphs (paths, rings of size ~10^5) do not overflow
   the OCaml call stack. *)
let compute g =
  let n = Digraph.n g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let component = Array.make n (-1) in
  let next_index = ref 0 in
  let next_component = ref 0 in
  let visit root =
    let frames = ref [ (root, Digraph.out_edges g root) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (u, succs) :: rest -> (
          match succs with
          | [] ->
              frames := rest;
              (match rest with
              | (parent, _) :: _ ->
                  if lowlink.(u) < lowlink.(parent) then lowlink.(parent) <- lowlink.(u)
              | [] -> ());
              if lowlink.(u) = index.(u) then begin
                (* u is the root of a component: pop the stack down to u. *)
                let rec pop () =
                  match !stack with
                  | [] -> assert false
                  | v :: tl ->
                      stack := tl;
                      on_stack.(v) <- false;
                      component.(v) <- !next_component;
                      if v <> u then pop ()
                in
                pop ();
                incr next_component
              end
          | (v, _) :: succs' ->
              frames := (u, succs') :: rest;
              if index.(v) = -1 then begin
                index.(v) <- !next_index;
                lowlink.(v) <- !next_index;
                incr next_index;
                stack := v :: !stack;
                on_stack.(v) <- true;
                frames := (v, Digraph.out_edges g v) :: !frames
              end
              else if on_stack.(v) && index.(v) < lowlink.(u) then lowlink.(u) <- index.(v))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  { count = !next_component; component }

let members scc id =
  let acc = ref [] in
  for v = Array.length scc.component - 1 downto 0 do
    if scc.component.(v) = id then acc := v :: !acc
  done;
  !acc

let sizes scc =
  let s = Array.make scc.count 0 in
  Array.iter (fun c -> s.(c) <- s.(c) + 1) scc.component;
  s

let is_strongly_connected g = Digraph.n g = 0 || (compute g).count = 1

let condensation g scc =
  let c = Digraph.create scc.count in
  Digraph.iter_edges g (fun u v _len ->
      let cu = scc.component.(u) and cv = scc.component.(v) in
      if cu <> cv && not (Digraph.mem_edge c cu cv) then Digraph.add_edge c cu cv 1);
  c

let sink_components g scc =
  let c = condensation g scc in
  let acc = ref [] in
  for id = scc.count - 1 downto 0 do
    if Digraph.out_degree c id = 0 then acc := id :: !acc
  done;
  !acc
