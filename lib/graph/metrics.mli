(** Graph-level metrics: eccentricities, diameter, distance sums, degrees.

    Distances are hop counts when all edge lengths are 1 and weighted
    otherwise (see {!Paths.shortest}).  Unreachable pairs make the metric
    [None] (the BBC layer substitutes the disconnection penalty instead;
    these raw metrics are about the graph itself, e.g. Lemma 7's diameter
    bound applies to stable graphs, which are strongly connected). *)

val eccentricity : Digraph.t -> int -> int option
(** Max distance from a vertex to any other; [None] if some vertex is
    unreachable from it. *)

val diameter : Digraph.t -> int option
(** Max over vertices of {!eccentricity}; [None] unless strongly
    connected.  O(n (m + n log n)). *)

val radius : Digraph.t -> int option
(** Min over vertices of {!eccentricity} over vertices that reach all
    others; [None] if no vertex reaches all others. *)

val total_distance : Digraph.t -> int -> int option
(** Sum of distances from a vertex to all others. *)

val sum_of_distances : Digraph.t -> int option
(** Sum over ordered pairs of distances (the uniform-game social cost when
    the graph is strongly connected). *)

val average_distance : Digraph.t -> float option

val max_out_degree : Digraph.t -> int

val degree_histogram : Digraph.t -> (int * int) list
(** [(degree, multiplicity)] pairs sorted by degree. *)
