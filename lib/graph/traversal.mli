(** Reachability utilities used by the dynamics layer.

    The paper's convergence argument (Lemmas 9, 10) is phrased in terms of
    the {e reach} of a node: the number of nodes it has a path to,
    including itself. *)

val reachable_set : Digraph.t -> int -> bool array
(** [reachable_set g u] marks every vertex reachable from [u] (including
    [u] itself). *)

val reach : Digraph.t -> int -> int
(** [reach g u] is the number of vertices reachable from [u], including
    [u] itself. *)

val reach_vector : Digraph.t -> int array
(** Reach of every vertex.  Computed component-wise: vertices in the same
    SCC share their reach, so only one traversal per component is needed. *)

val min_reach : Digraph.t -> int
(** Minimum over vertices of {!reach}. *)
