type t = { dist : int array array }

let compute g =
  let n = Digraph.n g in
  let dist = Array.init n (fun _ -> Array.make n Paths.unreachable) in
  for v = 0 to n - 1 do
    dist.(v).(v) <- 0
  done;
  Digraph.iter_edges g (fun u v len -> if len < dist.(u).(v) then dist.(u).(v) <- len);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let dik = dist.(i).(k) in
      if dik <> Paths.unreachable then
        for j = 0 to n - 1 do
          let dkj = dist.(k).(j) in
          if dkj <> Paths.unreachable && dik + dkj < dist.(i).(j) then
            dist.(i).(j) <- dik + dkj
        done
    done
  done;
  { dist }

let distance t u v = t.dist.(u).(v)

let matrix t = t.dist

let eccentricity t v =
  let best = ref 0 in
  let ok = ref true in
  Array.iteri
    (fun u d ->
      if u <> v then
        if d = Paths.unreachable then ok := false else if d > !best then best := d)
    t.dist.(v);
  if !ok then Some !best else None

let diameter t =
  let n = Array.length t.dist in
  if n <= 1 then Some 0
  else begin
    let best = ref 0 in
    let ok = ref true in
    for v = 0 to n - 1 do
      match eccentricity t v with
      | None -> ok := false
      | Some e -> if e > !best then best := e
    done;
    if !ok then Some !best else None
  end
