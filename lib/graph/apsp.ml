type t = { dist : int array array }

(* Below this size the per-pivot fan-out costs more than the row work. *)
let parallel_threshold = 128

let relax_row dist k i =
  let dik = dist.(i).(k) in
  if dik <> Paths.unreachable then begin
    let row_i = dist.(i) and row_k = dist.(k) in
    let n = Array.length row_i in
    for j = 0 to n - 1 do
      let dkj = row_k.(j) in
      if dkj <> Paths.unreachable && dik + dkj < row_i.(j) then
        row_i.(j) <- dik + dkj
    done
  end

let obs_pivots = Bbc_obs.counter "apsp.pivots"
let obs_sweeps = Bbc_obs.counter "apsp.sweeps"

let floyd_warshall ?jobs g =
  let n = Digraph.n g in
  let jobs = match jobs with Some j -> max 1 j | None -> Bbc_parallel.default_jobs () in
  Bbc_obs.with_span "apsp.floyd_warshall"
    ~attrs:[ ("n", Bbc_obs.Int n); ("jobs", Bbc_obs.Int jobs) ] (fun () ->
      let dist = Array.init n (fun _ -> Array.make n Paths.unreachable) in
      for v = 0 to n - 1 do
        dist.(v).(v) <- 0
      done;
      Digraph.iter_edges g (fun u v len -> if len < dist.(u).(v) then dist.(u).(v) <- len);
      Bbc_obs.add obs_pivots n;
      if jobs = 1 || n < parallel_threshold then
        for k = 0 to n - 1 do
          for i = 0 to n - 1 do
            relax_row dist k i
          done
        done
      else
        (* Parallel Floyd–Warshall: for a fixed pivot [k] the row updates are
           independent, and pivot row [k] itself is a fixed point of pass [k]
           (d(k,k) = 0), so workers only read it — no write conflicts. *)
        for k = 0 to n - 1 do
          Bbc_parallel.parallel_for ~jobs 0 n (fun i -> relax_row dist k i)
        done;
      { dist })

(* Batched CSR sweeps: O(n (m + n)) on unit graphs instead of the
   Floyd–Warshall O(n^3), and unit-length snapshots run the bit-parallel
   MS-BFS kernel — one traversal per [Csr.batch_width] sources, reading
   the adjacency once per window instead of once per row.  Each pool
   pull claims one window, so parallel domains split the matrix into
   batch-sized row bands; rows are independent, hence the result is
   identical for every job count. *)
let compute ?jobs g =
  let n = Digraph.n g in
  let jobs = Bbc_parallel.jobs_for ?jobs ~threshold:parallel_threshold n in
  Bbc_obs.with_span "apsp.compute"
    ~attrs:[ ("n", Bbc_obs.Int n); ("jobs", Bbc_obs.Int jobs) ] (fun () ->
      let csr = Csr.of_digraph g in
      Bbc_obs.add obs_sweeps n;
      let dist = Array.init n (fun _ -> Array.make n Paths.unreachable) in
      (* jobs = 1 hands the whole range over as one chunk; [sssp_batch]
         windows it internally. *)
      Bbc_parallel.parallel_for_chunks ~jobs ~chunk:Csr.batch_width 0 n (fun lo hi ->
          let srcs = Array.init (hi - lo) (fun i -> lo + i) in
          Csr.sssp_batch csr
            (Workspace.scratch (Workspace.get ()))
            ~srcs
            ~rows:(Array.sub dist lo (hi - lo)));
      { dist })

let distance t u v = t.dist.(u).(v)

let matrix t = t.dist

let eccentricity t v =
  let best = ref 0 in
  let ok = ref true in
  Array.iteri
    (fun u d ->
      if u <> v then
        if d = Paths.unreachable then ok := false else if d > !best then best := d)
    t.dist.(v);
  if !ok then Some !best else None

let diameter t =
  let n = Array.length t.dist in
  if n <= 1 then Some 0
  else begin
    let best = ref 0 in
    let ok = ref true in
    for v = 0 to n - 1 do
      match eccentricity t v with
      | None -> ok := false
      | Some e -> if e > !best then best := e
    done;
    if !ok then Some !best else None
  end
