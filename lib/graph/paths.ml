let unreachable = max_int

let bfs g src =
  let n = Digraph.n g in
  let dist = Array.make n unreachable in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    let du = dist.(u) in
    Digraph.iter_out g u (fun v _len ->
        if dist.(v) = unreachable then begin
          dist.(v) <- du + 1;
          Queue.add v queue
        end)
  done;
  dist

let dijkstra g src =
  let n = Digraph.n g in
  let dist = Array.make n unreachable in
  let heap = Binary_heap.create ~capacity:n () in
  dist.(src) <- 0;
  Binary_heap.push heap 0 src;
  let rec drain () =
    match Binary_heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        (* Lazy deletion: skip entries that were superseded. *)
        if d = dist.(u) then
          Digraph.iter_out g u (fun v len ->
              let nd = d + len in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                Binary_heap.push heap nd v
              end);
        drain ()
  in
  drain ();
  dist

let all_unit_lengths = Digraph.all_unit_lengths

let shortest_csr csr src =
  let ws = Workspace.get () in
  let dist = Array.make (Csr.n csr) unreachable in
  Csr.sssp csr (Workspace.scratch ws) ~src ~dist;
  dist

(* Below this vertex count the one-shot CSR conversion costs about as
   much as it saves; repeated-sweep callers (best response, APSP, eval)
   hold a [Csr.t] directly instead of paying the conversion per query. *)
let csr_threshold = 256

let shortest g src =
  if Digraph.n g >= csr_threshold then shortest_csr (Csr.of_digraph g) src
  else if all_unit_lengths g then bfs g src
  else dijkstra g src

let distance g u v = (shortest g u).(v)

let path g u v =
  let n = Digraph.n g in
  let dist = Array.make n unreachable in
  let parent = Array.make n (-1) in
  let heap = Binary_heap.create ~capacity:n () in
  dist.(u) <- 0;
  Binary_heap.push heap 0 u;
  let rec drain () =
    match Binary_heap.pop heap with
    | None -> ()
    | Some (d, x) ->
        if d = dist.(x) then
          Digraph.iter_out g x (fun y len ->
              let nd = d + len in
              if nd < dist.(y) then begin
                dist.(y) <- nd;
                parent.(y) <- x;
                Binary_heap.push heap nd y
              end);
        drain ()
  in
  drain ();
  if dist.(v) = unreachable then None
  else begin
    let rec build acc x = if x = u then u :: acc else build (x :: acc) parent.(x) in
    Some (build [] v)
  end
