(* Brandes' algorithm: one BFS per source, accumulating pair
   dependencies in reverse BFS order. *)
let betweenness g =
  let n = Digraph.n g in
  let centrality = Array.make n 0.0 in
  let dist = Array.make n (-1) in
  let sigma = Array.make n 0.0 in
  let delta = Array.make n 0.0 in
  let preds = Array.make n [] in
  let order = Array.make n 0 in
  for s = 0 to n - 1 do
    Array.fill dist 0 n (-1);
    Array.fill sigma 0 n 0.0;
    Array.fill delta 0 n 0.0;
    Array.fill preds 0 n [];
    let count = ref 0 in
    dist.(s) <- 0;
    sigma.(s) <- 1.0;
    let queue = Queue.create () in
    Queue.add s queue;
    while not (Queue.is_empty queue) do
      let v = Queue.take queue in
      order.(!count) <- v;
      incr count;
      Digraph.iter_out g v (fun w _ ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w queue
          end;
          if dist.(w) = dist.(v) + 1 then begin
            sigma.(w) <- sigma.(w) +. sigma.(v);
            preds.(w) <- v :: preds.(w)
          end)
    done;
    for i = !count - 1 downto 0 do
      let w = order.(i) in
      List.iter
        (fun v -> delta.(v) <- delta.(v) +. (sigma.(v) /. sigma.(w) *. (1.0 +. delta.(w))))
        preds.(w);
      if w <> s then centrality.(w) <- centrality.(w) +. delta.(w)
    done
  done;
  centrality

let in_degrees g =
  let n = Digraph.n g in
  let deg = Array.make n 0 in
  Digraph.iter_edges g (fun _ v _ -> deg.(v) <- deg.(v) + 1);
  deg

let gini values =
  let n = Array.length values in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy values in
    Array.sort compare sorted;
    let total = Array.fold_left ( + ) 0 sorted in
    if total = 0 then 0.0
    else begin
      (* G = (2 * sum_i i*x_(i) / (n * sum x)) - (n+1)/n with 1-based i. *)
      let weighted = ref 0.0 in
      Array.iteri
        (fun i x -> weighted := !weighted +. (float_of_int (i + 1) *. float_of_int x))
        sorted;
      (2.0 *. !weighted /. (float_of_int n *. float_of_int total))
      -. (float_of_int (n + 1) /. float_of_int n)
    end
  end
