(** All-pairs shortest paths (Floyd–Warshall).

    O(n^3) regardless of density — slower than n single-source runs on
    the sparse graphs this project mostly handles, but valuable as an
    independent oracle: the test suite cross-checks {!Paths.dijkstra}
    against it, and dense-instance callers (the fractional experiments)
    can amortize one matrix across many queries. *)

type t

val compute : ?jobs:int -> Digraph.t -> t
(** [jobs] (default {!Bbc_parallel.default_jobs}) fans the row updates of
    each Floyd–Warshall pass over the domain pool; for a fixed pivot the
    rows are independent, so the result is identical for every job
    count.  Small matrices (n < 128) always run sequentially. *)

val distance : t -> int -> int -> int
(** [Paths.unreachable] when no path exists; 0 on the diagonal. *)

val matrix : t -> int array array
(** The full distance matrix (not a copy; treat as read-only). *)

val eccentricity : t -> int -> int option
(** Max distance from a vertex; [None] if it does not reach everyone. *)

val diameter : t -> int option
(** [None] unless the graph is strongly connected. *)
