(** All-pairs shortest paths.

    {!compute} builds the matrix from one {!Csr} kernel sweep per source
    — O(n (m + n)) on the sparse unit graphs this project mostly handles
    — with all traversal state drawn from the per-domain {!Workspace}
    pool, so the only allocation is the result matrix.  The classic
    Floyd–Warshall is kept as {!floyd_warshall}: O(n^3) but structurally
    independent of the SSSP kernels, which makes it the oracle the test
    suite cross-checks {!compute}, {!Paths.dijkstra} and the CSR kernels
    against. *)

type t

val compute : ?jobs:int -> Digraph.t -> t
(** One CSR sweep per source, fanned over the domain pool in contiguous
    source ranges.  Rows are independent, so the result is identical for
    every job count; small matrices (n < 128) run sequentially. *)

val floyd_warshall : ?jobs:int -> Digraph.t -> t
(** Floyd–Warshall oracle; same matrix as {!compute}.  [jobs] fans the
    row updates of each pivot pass over the domain pool. *)

val distance : t -> int -> int -> int
(** [Paths.unreachable] when no path exists; 0 on the diagonal. *)

val matrix : t -> int array array
(** The full distance matrix (not a copy; treat as read-only). *)

val eccentricity : t -> int -> int option
(** Max distance from a vertex; [None] if it does not reach everyone. *)

val diameter : t -> int option
(** [None] unless the graph is strongly connected. *)
