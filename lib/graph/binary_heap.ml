type t = {
  mutable prio : int array;
  mutable load : int array;
  mutable len : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { prio = Array.make capacity 0; load = Array.make capacity 0; len = 0 }

let is_empty h = h.len = 0

let size h = h.len

let grow h =
  let cap = Array.length h.prio in
  let prio = Array.make (2 * cap) 0 and load = Array.make (2 * cap) 0 in
  Array.blit h.prio 0 prio 0 h.len;
  Array.blit h.load 0 load 0 h.len;
  h.prio <- prio;
  h.load <- load

let swap h i j =
  let tp = h.prio.(i) and tl = h.load.(i) in
  h.prio.(i) <- h.prio.(j);
  h.load.(i) <- h.load.(j);
  h.prio.(j) <- tp;
  h.load.(j) <- tl

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.prio.(i) < h.prio.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.prio.(l) < h.prio.(!smallest) then smallest := l;
  if r < h.len && h.prio.(r) < h.prio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h priority payload =
  if h.len = Array.length h.prio then grow h;
  h.prio.(h.len) <- priority;
  h.load.(h.len) <- payload;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let p = h.prio.(0) and v = h.load.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.prio.(0) <- h.prio.(h.len);
      h.load.(0) <- h.load.(h.len);
      sift_down h 0
    end;
    Some (p, v)
  end

let clear h = h.len <- 0
