let reachable_set g u =
  let n = Digraph.n g in
  let seen = Array.make n false in
  let stack = ref [ u ] in
  seen.(u) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | x :: rest ->
        stack := rest;
        Digraph.iter_out g x (fun y _ ->
            if not seen.(y) then begin
              seen.(y) <- true;
              stack := y :: !stack
            end)
  done;
  seen

let reach g u =
  let seen = reachable_set g u in
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen

(* All vertices of one SCC reach exactly the same set, and the reach of a
   component is the sum of the sizes of the components reachable from it in
   the condensation.  This computes the reach vector in O(n + m) plus the
   condensation's transitive closure (cheap: the condensation is small in
   the dynamics workloads). *)
let reach_vector g =
  let scc = Scc.compute g in
  let cond = Scc.condensation g scc in
  let sizes = Scc.sizes scc in
  let comp_reach = Array.make scc.count 0 in
  for c = 0 to scc.count - 1 do
    let seen = reachable_set cond c in
    let total = ref 0 in
    Array.iteri (fun c' b -> if b then total := !total + sizes.(c')) seen;
    comp_reach.(c) <- !total
  done;
  Array.map (fun c -> comp_reach.(c)) scc.component

let min_reach g =
  if Digraph.n g = 0 then 0
  else Array.fold_left min max_int (reach_vector g)
