(** Dynamic single-source shortest paths over a mutable mirror graph.

    The mirror ({!graph}) keeps forward and reverse adjacency for a
    digraph whose only mutation is replacing one vertex's out-edge set
    ({!replace_out} — exactly the move a BBC player makes).  Each
    {!t} maintains the distance array and an explicit shortest-path
    tree for one source; after a mutation, {!repair} fixes only the
    affected region instead of recomputing from scratch and returns an
    undo log so the mutation can be rolled back exactly. *)

val unreachable : int
(** Same sentinel as [Paths.unreachable] ([max_int]). *)

(** {1 Mirror graph} *)

type graph

val of_digraph : Digraph.t -> graph
(** Snapshot a digraph into a mutable mirror. *)

val graph_size : graph -> int
val out_edges : graph -> int -> (int * int) list

val functional : graph -> bool
(** [true] iff every vertex has out-degree at most one. *)

val unit_lengths : graph -> bool
(** [true] iff every edge has length 1. *)

val version : graph -> int
(** Monotone counter bumped by every {!replace_out}. *)

val replace_out : graph -> int -> (int * int) list -> (int * int) list
(** [replace_out g u es] installs [es] as [u]'s out-edges and returns
    the previous out-edge list (for repair and rollback). *)

(** {1 Dynamic SSSP} *)

type t

type undo
(** Opaque log from one {!repair}; feed back to {!undo} to restore the
    pre-repair state (valid only while the graph matches the post-repair
    mutation). *)

val create : graph -> int -> t
(** [create g src] runs a full BFS/Dijkstra from [src]. *)

val source : t -> int

val distances : t -> int array
(** Live internal array — do not mutate; entries are {!unreachable}
    for vertices with no path from the source. *)

val reachable_count : t -> int
(** Number of vertices at finite distance, including the source. *)

val repair : t -> u:int -> removed:(int * int) list -> added:(int * int) list -> int * undo
(** [repair t ~u ~removed ~added] updates distances after [u]'s
    out-edges changed by deleting [removed] and inserting [added]
    (i.e. after the matching {!replace_out}).  Returns the number of
    vertices whose distance actually changed, and the undo log. *)

val undo : t -> undo -> unit
(** Roll the structure back to its exact pre-{!repair} state.  Must be
    applied after the graph itself has been rolled back (or is about to
    be, before any further queries). *)

val well_formed : t -> bool
(** Internal invariant check (tree edges exist in the graph, distances
    consistent, reach count exact) — for tests. *)
