let unreachable = max_int

type t = {
  n : int;
  offsets : int array; (* length n + 1; row u = targets.(offsets.(u) .. offsets.(u+1) - 1) *)
  targets : int array;
  lengths : int array;
  unit_lengths : bool;
}

let n t = t.n
let edge_count t = t.offsets.(t.n)
let unit_lengths t = t.unit_lengths

let equal a b =
  a.n = b.n && a.unit_lengths = b.unit_lengths && a.offsets = b.offsets
  && a.targets = b.targets && a.lengths = b.lengths

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)

type builder = {
  b_n : int;
  b_offsets : int array;
  mutable b_targets : int array;
  mutable b_lengths : int array;
  mutable b_cur : int; (* current source row *)
  mutable b_pos : int; (* next free edge slot *)
  mutable b_unit : bool;
}

let builder ~n ~m =
  if n < 0 then invalid_arg "Csr.builder: negative size";
  if m < 0 then invalid_arg "Csr.builder: negative edge count";
  {
    b_n = n;
    b_offsets = Array.make (n + 1) 0;
    b_targets = Array.make (max m 1) 0;
    b_lengths = Array.make (max m 1) 0;
    b_cur = 0;
    b_pos = 0;
    b_unit = true;
  }

let add b u v len =
  if u < b.b_cur then invalid_arg "Csr.add: sources must be non-decreasing";
  if u >= b.b_n || v < 0 || v >= b.b_n then invalid_arg "Csr.add: vertex out of range";
  if b.b_pos >= Array.length b.b_targets then invalid_arg "Csr.add: more edges than declared";
  while b.b_cur < u do
    b.b_cur <- b.b_cur + 1;
    b.b_offsets.(b.b_cur) <- b.b_pos
  done;
  b.b_targets.(b.b_pos) <- v;
  b.b_lengths.(b.b_pos) <- len;
  b.b_pos <- b.b_pos + 1;
  if len <> 1 then b.b_unit <- false

let finish b =
  while b.b_cur < b.b_n do
    b.b_cur <- b.b_cur + 1;
    b.b_offsets.(b.b_cur) <- b.b_pos
  done;
  let targets, lengths =
    if b.b_pos = Array.length b.b_targets then (b.b_targets, b.b_lengths)
    else (Array.sub b.b_targets 0 b.b_pos, Array.sub b.b_lengths 0 b.b_pos)
  in
  { n = b.b_n; offsets = b.b_offsets; targets; lengths; unit_lengths = b.b_unit }

let of_digraph ?skip g =
  let n = Digraph.n g in
  let sk = match skip with Some u -> u | None -> -1 in
  let skipped = if sk >= 0 then Digraph.out_degree g sk else 0 in
  let b = builder ~n ~m:(Digraph.edge_count g - skipped) in
  for u = 0 to n - 1 do
    if u <> sk then Digraph.iter_out g u (fun v len -> add b u v len)
  done;
  finish b

(* ------------------------------------------------------------------ *)
(* Kernels.                                                            *)

type scratch = {
  mutable queue : int array; (* BFS ring buffer; capacity >= n *)
  heap : Binary_heap.t;
  mutable touched : int array; (* vertices written by the last sweep *)
  mutable ntouched : int;
  (* Multi-source bit-parallel state (see the MS-BFS kernels below).
     [seen]/[front]/[next_front] are per-vertex source bitmaps, kept
     all-zero between sweeps (each sweep self-cleans on exit via the
     dirty list).  [cur_list]/[next_list] are the frontier vertex
     lists; the two bitmap arrays and the two lists swap roles every
     level. *)
  mutable seen : int array;
  mutable front : int array;
  mutable next_front : int array;
  mutable cur_list : int array;
  mutable next_list : int array;
  mutable dl_covers_batch : bool;
      (* whether the dirty list covers every row of the last batched
         call (false after a scalar or multi-window batch, where only
         the final sweep's writes are recorded) *)
  (* Reverse adjacency for the bottom-up direction, built lazily on the
     first dense frontier and cached per snapshot (physical equality —
     consumers sweep one immutable snapshot many times). *)
  mutable rev_key : t option;
  mutable rev_offsets : int array;
  mutable rev_targets : int array;
}

let create_scratch () =
  {
    queue = [||];
    heap = Binary_heap.create ~capacity:16 ();
    touched = [||];
    ntouched = 0;
    seen = [||];
    front = [||];
    next_front = [||];
    cur_list = [||];
    next_list = [||];
    dl_covers_batch = false;
    rev_key = None;
    rev_offsets = [||];
    rev_targets = [||];
  }

let ensure s n =
  if Array.length s.queue < n then begin
    s.queue <- Array.make n 0;
    s.touched <- Array.make n 0
  end;
  s.ntouched <- 0;
  s.dl_covers_batch <- false

let touch s v =
  s.touched.(s.ntouched) <- v;
  s.ntouched <- s.ntouched + 1

let reset s dist =
  for i = 0 to s.ntouched - 1 do
    dist.(s.touched.(i)) <- unreachable
  done;
  s.ntouched <- 0

(* [ban] excludes one vertex's out-edges from the traversal: sweeping
   the full snapshot with [~ban:u] from any source computes exactly the
   distances of the [G_{-u}] sub-snapshot ([of_digraph ~skip:u]) — the
   best-response shape — without building a per-node CSR. *)

let bfs ?(ban = -1) t s ~src ~dist =
  ensure s t.n;
  let queue = s.queue in
  let cap = Array.length queue in
  let offsets = t.offsets and targets = t.targets in
  dist.(src) <- 0;
  touch s src;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head <> !tail do
    let u = queue.(!head) in
    head := (!head + 1) mod cap;
    if u <> ban then begin
      let du = dist.(u) + 1 in
      for e = offsets.(u) to offsets.(u + 1) - 1 do
        let v = targets.(e) in
        if dist.(v) = unreachable then begin
          dist.(v) <- du;
          touch s v;
          queue.(!tail) <- v;
          tail := (!tail + 1) mod cap
        end
      done
    end
  done

let dijkstra ?(ban = -1) t s ~src ~dist =
  ensure s t.n;
  let heap = s.heap in
  Binary_heap.clear heap;
  let offsets = t.offsets and targets = t.targets and lengths = t.lengths in
  dist.(src) <- 0;
  touch s src;
  Binary_heap.push heap 0 src;
  let continue = ref true in
  while !continue do
    match Binary_heap.pop heap with
    | None -> continue := false
    | Some (d, u) ->
        (* Lazy deletion: skip entries that were superseded. *)
        if d = dist.(u) && u <> ban then
          for e = offsets.(u) to offsets.(u + 1) - 1 do
            let v = targets.(e) in
            let nd = d + lengths.(e) in
            if nd < dist.(v) then begin
              if dist.(v) = unreachable then touch s v;
              dist.(v) <- nd;
              Binary_heap.push heap nd v
            end
          done
  done

let sssp ?ban t s ~src ~dist =
  if t.unit_lengths then bfs ?ban t s ~src ~dist else dijkstra ?ban t s ~src ~dist

(* ------------------------------------------------------------------ *)
(* Compact int32 rows.

   Same kernels, distances stored in an int32 Bigarray — half the
   resident footprint of a boxed-free [int array] row on 64-bit, which
   is what lets an n = 10^5 landmark sweep keep several rows in cache.
   [unreachable32] ([Int32.max_int]) is the clean sentinel; any real
   distance reaching it is an overflow and raises. *)

type dist32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

let unreachable32 = Int32.max_int

(* The sentinel as an int, for overflow checks in 63-bit arithmetic. *)
let inf32 = Int32.to_int Int32.max_int

let create_dist32 n =
  let a = Bigarray.Array1.create Bigarray.Int32 Bigarray.C_layout n in
  Bigarray.Array1.fill a unreachable32;
  a

let fill32 (dist : dist32) = Bigarray.Array1.fill dist unreachable32

let reset32 s (dist : dist32) =
  for i = 0 to s.ntouched - 1 do
    Bigarray.Array1.unsafe_set dist s.touched.(i) unreachable32
  done;
  s.ntouched <- 0

let bfs32 ?(ban = -1) t s ~src ~(dist : dist32) =
  ensure s t.n;
  if t.n >= inf32 then invalid_arg "Csr.bfs32: hop distance could overflow int32";
  let queue = s.queue in
  let cap = Array.length queue in
  let offsets = t.offsets and targets = t.targets in
  Bigarray.Array1.unsafe_set dist src 0l;
  touch s src;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head <> !tail do
    let u = queue.(!head) in
    head := (!head + 1) mod cap;
    if u <> ban then begin
      let du = Int32.add (Bigarray.Array1.unsafe_get dist u) 1l in
      for e = offsets.(u) to offsets.(u + 1) - 1 do
        let v = targets.(e) in
        if Bigarray.Array1.unsafe_get dist v = unreachable32 then begin
          Bigarray.Array1.unsafe_set dist v du;
          touch s v;
          queue.(!tail) <- v;
          tail := (!tail + 1) mod cap
        end
      done
    end
  done

let dijkstra32 ?(ban = -1) t s ~src ~(dist : dist32) =
  ensure s t.n;
  let heap = s.heap in
  Binary_heap.clear heap;
  let offsets = t.offsets and targets = t.targets and lengths = t.lengths in
  Bigarray.Array1.unsafe_set dist src 0l;
  touch s src;
  Binary_heap.push heap 0 src;
  let continue = ref true in
  while !continue do
    match Binary_heap.pop heap with
    | None -> continue := false
    | Some (d, u) ->
        if d = Int32.to_int (Bigarray.Array1.unsafe_get dist u) && u <> ban then
          for e = offsets.(u) to offsets.(u + 1) - 1 do
            let v = targets.(e) in
            let nd = d + lengths.(e) in
            (* The heap carries int distances, so [nd] is exact; it only
               has to fit the row.  >= keeps the sentinel unambiguous. *)
            if nd >= inf32 then
              invalid_arg "Csr.dijkstra32: distance overflows int32";
            if nd < Int32.to_int (Bigarray.Array1.unsafe_get dist v) then begin
              if Bigarray.Array1.unsafe_get dist v = unreachable32 then touch s v;
              Bigarray.Array1.unsafe_set dist v (Int32.of_int nd);
              Binary_heap.push heap nd v
            end
          done
  done

let sssp32 ?ban t s ~src ~dist =
  if t.unit_lengths then bfs32 ?ban t s ~src ~dist else dijkstra32 ?ban t s ~src ~dist

(* ------------------------------------------------------------------ *)
(* Multi-source bit-parallel BFS (MS-BFS).

   Unit-length sweeps from up to [batch_width] sources share one
   traversal: per-vertex bitmaps replace the visited flag, bit [b]
   standing for source [srcs.(b)].  Each level walks the adjacency
   once for every source whose frontier reaches it, so the graph is
   read once per *batch* instead of once per source.  OCaml's native
   int has [Sys.int_size] = 63 usable bits on 64-bit; we keep the top
   bit clear ([batch_width] = 62) so masks stay non-negative and the
   lowest-bit extraction below needs no sign special-cases.

   Dense frontiers flip to a bottom-up (pull) pass over the reverse
   adjacency (Beamer's direction-optimizing BFS): every not-fully-seen
   vertex scans its in-neighbours, exiting early once all its missing
   source bits are found.  The transpose is built lazily and cached in
   the scratch keyed by physical equality of the snapshot — consumers
   sweep one immutable snapshot many times, so the build amortizes to
   nothing.

   Weighted graphs keep the scalar Dijkstra path: bit-parallelism
   requires all sources to agree on the expansion order, which only
   uniform hop counts guarantee. *)

let batch_width = Sys.int_size - 1

(* Lowest-bit index by perfect hash: powers of two are distinct mod 67
   (2 is a primitive root mod 67), so [(1 lsl i) mod 67] maps bit
   positions 0..61 injectively into a 67-entry table. *)
let bit_index =
  let tbl = Array.make 67 (-1) in
  for i = 0 to batch_width - 1 do
    tbl.((1 lsl i) mod 67) <- i
  done;
  tbl

(* The bitmap arrays carry a self-cleaning invariant: all-zero between
   sweeps (each window zeroes exactly what it set on the way out), so
   growth is the only O(n) event. *)
let ensure_batch s n =
  ensure s n;
  if Array.length s.seen < n then begin
    s.seen <- Array.make n 0;
    s.front <- Array.make n 0;
    s.next_front <- Array.make n 0;
    s.cur_list <- Array.make n 0;
    s.next_list <- Array.make n 0
  end

let ensure_rev t s =
  match s.rev_key with
  | Some key when key == t -> ()
  | _ ->
      let n = t.n and targets = t.targets in
      let m = t.offsets.(n) in
      let roffs = Array.make (n + 1) 0 in
      for e = 0 to m - 1 do
        let w = targets.(e) in
        roffs.(w + 1) <- roffs.(w + 1) + 1
      done;
      for w = 1 to n do
        roffs.(w) <- roffs.(w) + roffs.(w - 1)
      done;
      let cursor = Array.copy roffs in
      let rtgts = Array.make (max m 1) 0 in
      for u = 0 to n - 1 do
        for e = t.offsets.(u) to t.offsets.(u + 1) - 1 do
          let w = targets.(e) in
          rtgts.(cursor.(w)) <- u;
          cursor.(w) <- cursor.(w) + 1
        done
      done;
      s.rev_offsets <- roffs;
      s.rev_targets <- rtgts;
      s.rev_key <- Some t

(* One window: hop distances from sources [srcs.(soff .. soff+k-1)]
   into [rows.(roff .. roff+k-1)] (clean, length >= n each).  Assumes
   [ensure_batch] ran and k <= batch_width.  Leaves the dirty list
   covering every vertex any source reached. *)
let msbfs_window ~ban t s ~srcs ~soff ~k ~rows ~roff =
  let n = t.n in
  let offsets = t.offsets and targets = t.targets in
  let m = offsets.(n) in
  let seen = s.seen in
  let full = if k = batch_width then max_int else (1 lsl k) - 1 in
  let fr = ref s.front and nf = ref s.next_front in
  let cl = ref s.cur_list and nl = ref s.next_list in
  let cn = ref 0 and ce = ref 0 in
  for b = 0 to k - 1 do
    let v = srcs.(soff + b) in
    let bit = 1 lsl b in
    if seen.(v) = 0 then touch s v;
    seen.(v) <- seen.(v) lor bit;
    if (!fr).(v) = 0 then begin
      (!cl).(!cn) <- v;
      incr cn;
      ce := !ce + offsets.(v + 1) - offsets.(v)
    end;
    (!fr).(v) <- (!fr).(v) lor bit;
    rows.(roff + b).(v) <- 0
  done;
  let d = ref 0 in
  while !cn > 0 do
    let d' = !d + 1 in
    let frA = !fr and nfA = !nf and clA = !cl and nlA = !nl in
    let nn = ref 0 and ne = ref 0 in
    (* Pull pays once the frontier touches a constant fraction of the
       edges: the pass is O(n + m) with early exit per vertex, versus
       O(frontier out-edges) for push.  8 is Beamer's alpha, untuned. *)
    if !ce * 8 > m then begin
      ensure_rev t s;
      let roffs = s.rev_offsets and rtgts = s.rev_targets in
      for w = 0 to n - 1 do
        let miss = full land lnot seen.(w) in
        if miss <> 0 then begin
          let acc = ref 0 in
          let e = ref roffs.(w) in
          let stop = roffs.(w + 1) in
          while !e < stop && !acc land miss <> miss do
            let v = rtgts.(!e) in
            if v <> ban then acc := !acc lor frA.(v);
            incr e
          done;
          let add = !acc land miss in
          if add <> 0 then begin
            if seen.(w) = 0 then touch s w;
            seen.(w) <- seen.(w) lor add;
            nfA.(w) <- add;
            nlA.(!nn) <- w;
            incr nn;
            ne := !ne + offsets.(w + 1) - offsets.(w);
            let mm = ref add in
            while !mm <> 0 do
              let bit = !mm land - !mm in
              rows.(roff + bit_index.(bit mod 67)).(w) <- d';
              mm := !mm lxor bit
            done
          end
        end
      done
    end
    else
      for i = 0 to !cn - 1 do
        let u = clA.(i) in
        if u <> ban then begin
          let fu = frA.(u) in
          for e = offsets.(u) to offsets.(u + 1) - 1 do
            let w = targets.(e) in
            let add = fu land lnot seen.(w) in
            if add <> 0 then begin
              if seen.(w) = 0 then touch s w;
              seen.(w) <- seen.(w) lor add;
              if nfA.(w) = 0 then begin
                nlA.(!nn) <- w;
                incr nn;
                ne := !ne + offsets.(w + 1) - offsets.(w)
              end;
              nfA.(w) <- nfA.(w) lor add;
              let mm = ref add in
              while !mm <> 0 do
                let bit = !mm land - !mm in
                rows.(roff + bit_index.(bit mod 67)).(w) <- d';
                mm := !mm lxor bit
              done
            end
          done
        end
      done;
    for i = 0 to !cn - 1 do
      frA.(clA.(i)) <- 0
    done;
    fr := nfA;
    nf := frA;
    cl := nlA;
    nl := clA;
    cn := !nn;
    ce := !ne;
    d := d'
  done;
  (* Self-clean: both frontier bitmaps are already zero (cleared level
     by level); [seen] is zeroed through the dirty list, which stays
     intact for [reset_rows]. *)
  for i = 0 to s.ntouched - 1 do
    seen.(s.touched.(i)) <- 0
  done

(* Same window over int32 rows. *)
let msbfs_window32 ~ban t s ~srcs ~soff ~k ~(rows : dist32 array) ~roff =
  let n = t.n in
  let offsets = t.offsets and targets = t.targets in
  let m = offsets.(n) in
  let seen = s.seen in
  let full = if k = batch_width then max_int else (1 lsl k) - 1 in
  let fr = ref s.front and nf = ref s.next_front in
  let cl = ref s.cur_list and nl = ref s.next_list in
  let cn = ref 0 and ce = ref 0 in
  for b = 0 to k - 1 do
    let v = srcs.(soff + b) in
    let bit = 1 lsl b in
    if seen.(v) = 0 then touch s v;
    seen.(v) <- seen.(v) lor bit;
    if (!fr).(v) = 0 then begin
      (!cl).(!cn) <- v;
      incr cn;
      ce := !ce + offsets.(v + 1) - offsets.(v)
    end;
    (!fr).(v) <- (!fr).(v) lor bit;
    Bigarray.Array1.unsafe_set rows.(roff + b) v 0l
  done;
  let d = ref 0 in
  while !cn > 0 do
    let d' = !d + 1 in
    let d32 = Int32.of_int d' in
    let frA = !fr and nfA = !nf and clA = !cl and nlA = !nl in
    let nn = ref 0 and ne = ref 0 in
    if !ce * 8 > m then begin
      ensure_rev t s;
      let roffs = s.rev_offsets and rtgts = s.rev_targets in
      for w = 0 to n - 1 do
        let miss = full land lnot seen.(w) in
        if miss <> 0 then begin
          let acc = ref 0 in
          let e = ref roffs.(w) in
          let stop = roffs.(w + 1) in
          while !e < stop && !acc land miss <> miss do
            let v = rtgts.(!e) in
            if v <> ban then acc := !acc lor frA.(v);
            incr e
          done;
          let add = !acc land miss in
          if add <> 0 then begin
            if seen.(w) = 0 then touch s w;
            seen.(w) <- seen.(w) lor add;
            nfA.(w) <- add;
            nlA.(!nn) <- w;
            incr nn;
            ne := !ne + offsets.(w + 1) - offsets.(w);
            let mm = ref add in
            while !mm <> 0 do
              let bit = !mm land - !mm in
              Bigarray.Array1.unsafe_set rows.(roff + bit_index.(bit mod 67)) w d32;
              mm := !mm lxor bit
            done
          end
        end
      done
    end
    else
      for i = 0 to !cn - 1 do
        let u = clA.(i) in
        if u <> ban then begin
          let fu = frA.(u) in
          for e = offsets.(u) to offsets.(u + 1) - 1 do
            let w = targets.(e) in
            let add = fu land lnot seen.(w) in
            if add <> 0 then begin
              if seen.(w) = 0 then touch s w;
              seen.(w) <- seen.(w) lor add;
              if nfA.(w) = 0 then begin
                nlA.(!nn) <- w;
                incr nn;
                ne := !ne + offsets.(w + 1) - offsets.(w)
              end;
              nfA.(w) <- nfA.(w) lor add;
              let mm = ref add in
              while !mm <> 0 do
                let bit = !mm land - !mm in
                Bigarray.Array1.unsafe_set rows.(roff + bit_index.(bit mod 67)) w d32;
                mm := !mm lxor bit
              done
            end
          done
        end
      done;
    for i = 0 to !cn - 1 do
      frA.(clA.(i)) <- 0
    done;
    fr := nfA;
    nf := frA;
    cl := nlA;
    nl := clA;
    cn := !nn;
    ce := !ne;
    d := d'
  done;
  for i = 0 to s.ntouched - 1 do
    seen.(s.touched.(i)) <- 0
  done

let msbfs ?(ban = -1) t s ~srcs ~rows =
  let k = Array.length srcs in
  if k > batch_width then invalid_arg "Csr.msbfs: more sources than batch_width";
  if not t.unit_lengths then invalid_arg "Csr.msbfs: unit-length snapshots only";
  if Array.length rows < k then invalid_arg "Csr.msbfs: fewer rows than sources";
  ensure_batch s t.n;
  if k > 0 then msbfs_window ~ban t s ~srcs ~soff:0 ~k ~rows ~roff:0;
  s.dl_covers_batch <- true

let msbfs32 ?(ban = -1) t s ~srcs ~(rows : dist32 array) =
  let k = Array.length srcs in
  if k > batch_width then invalid_arg "Csr.msbfs32: more sources than batch_width";
  if not t.unit_lengths then invalid_arg "Csr.msbfs32: unit-length snapshots only";
  if Array.length rows < k then invalid_arg "Csr.msbfs32: fewer rows than sources";
  if t.n >= inf32 then invalid_arg "Csr.msbfs32: hop distance could overflow int32";
  ensure_batch s t.n;
  if k > 0 then msbfs_window32 ~ban t s ~srcs ~soff:0 ~k ~rows ~roff:0;
  s.dl_covers_batch <- true

let sssp_batch ?(ban = -1) t s ~srcs ~rows =
  let k = Array.length srcs in
  if Array.length rows < k then invalid_arg "Csr.sssp_batch: fewer rows than sources";
  if t.unit_lengths && k > 1 then begin
    ensure_batch s t.n;
    let nwin = (k + batch_width - 1) / batch_width in
    for w = 0 to nwin - 1 do
      let soff = w * batch_width in
      (* The dirty list has capacity n, enough for one window; later
         windows restart it, so only a single-window batch leaves it
         covering every row. *)
      if w > 0 then s.ntouched <- 0;
      msbfs_window ~ban t s ~srcs ~soff ~k:(min batch_width (k - soff)) ~rows ~roff:soff
    done;
    s.dl_covers_batch <- nwin = 1
  end
  else begin
    for i = 0 to k - 1 do
      sssp ~ban t s ~src:srcs.(i) ~dist:rows.(i)
    done;
    s.dl_covers_batch <- k <= 1
  end

let sssp_batch32 ?(ban = -1) t s ~srcs ~(rows : dist32 array) =
  let k = Array.length srcs in
  if Array.length rows < k then invalid_arg "Csr.sssp_batch32: fewer rows than sources";
  if t.unit_lengths && k > 1 then begin
    if t.n >= inf32 then invalid_arg "Csr.sssp_batch32: hop distance could overflow int32";
    ensure_batch s t.n;
    let nwin = (k + batch_width - 1) / batch_width in
    for w = 0 to nwin - 1 do
      let soff = w * batch_width in
      if w > 0 then s.ntouched <- 0;
      msbfs_window32 ~ban t s ~srcs ~soff ~k:(min batch_width (k - soff)) ~rows ~roff:soff
    done;
    s.dl_covers_batch <- nwin = 1
  end
  else begin
    for i = 0 to k - 1 do
      sssp32 ~ban t s ~src:srcs.(i) ~dist:rows.(i)
    done;
    s.dl_covers_batch <- k <= 1
  end

let reset_rows s ~rows =
  if s.dl_covers_batch then begin
    for r = 0 to Array.length rows - 1 do
      let row = rows.(r) in
      for i = 0 to s.ntouched - 1 do
        row.(s.touched.(i)) <- unreachable
      done
    done;
    s.ntouched <- 0;
    s.dl_covers_batch <- false
  end
  else begin
    Array.iter (fun row -> Array.fill row 0 (Array.length row) unreachable) rows;
    s.ntouched <- 0
  end

let reset_rows32 s ~(rows : dist32 array) =
  if s.dl_covers_batch then begin
    for r = 0 to Array.length rows - 1 do
      let row = rows.(r) in
      for i = 0 to s.ntouched - 1 do
        Bigarray.Array1.unsafe_set row s.touched.(i) unreachable32
      done
    done;
    s.ntouched <- 0;
    s.dl_covers_batch <- false
  end
  else begin
    Array.iter fill32 rows;
    s.ntouched <- 0
  end
