let unreachable = max_int

type t = {
  n : int;
  offsets : int array; (* length n + 1; row u = targets.(offsets.(u) .. offsets.(u+1) - 1) *)
  targets : int array;
  lengths : int array;
  unit_lengths : bool;
}

let n t = t.n
let edge_count t = t.offsets.(t.n)
let unit_lengths t = t.unit_lengths

let equal a b =
  a.n = b.n && a.unit_lengths = b.unit_lengths && a.offsets = b.offsets
  && a.targets = b.targets && a.lengths = b.lengths

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)

type builder = {
  b_n : int;
  b_offsets : int array;
  mutable b_targets : int array;
  mutable b_lengths : int array;
  mutable b_cur : int; (* current source row *)
  mutable b_pos : int; (* next free edge slot *)
  mutable b_unit : bool;
}

let builder ~n ~m =
  if n < 0 then invalid_arg "Csr.builder: negative size";
  if m < 0 then invalid_arg "Csr.builder: negative edge count";
  {
    b_n = n;
    b_offsets = Array.make (n + 1) 0;
    b_targets = Array.make (max m 1) 0;
    b_lengths = Array.make (max m 1) 0;
    b_cur = 0;
    b_pos = 0;
    b_unit = true;
  }

let add b u v len =
  if u < b.b_cur then invalid_arg "Csr.add: sources must be non-decreasing";
  if u >= b.b_n || v < 0 || v >= b.b_n then invalid_arg "Csr.add: vertex out of range";
  if b.b_pos >= Array.length b.b_targets then invalid_arg "Csr.add: more edges than declared";
  while b.b_cur < u do
    b.b_cur <- b.b_cur + 1;
    b.b_offsets.(b.b_cur) <- b.b_pos
  done;
  b.b_targets.(b.b_pos) <- v;
  b.b_lengths.(b.b_pos) <- len;
  b.b_pos <- b.b_pos + 1;
  if len <> 1 then b.b_unit <- false

let finish b =
  while b.b_cur < b.b_n do
    b.b_cur <- b.b_cur + 1;
    b.b_offsets.(b.b_cur) <- b.b_pos
  done;
  let targets, lengths =
    if b.b_pos = Array.length b.b_targets then (b.b_targets, b.b_lengths)
    else (Array.sub b.b_targets 0 b.b_pos, Array.sub b.b_lengths 0 b.b_pos)
  in
  { n = b.b_n; offsets = b.b_offsets; targets; lengths; unit_lengths = b.b_unit }

let of_digraph ?skip g =
  let n = Digraph.n g in
  let sk = match skip with Some u -> u | None -> -1 in
  let skipped = if sk >= 0 then Digraph.out_degree g sk else 0 in
  let b = builder ~n ~m:(Digraph.edge_count g - skipped) in
  for u = 0 to n - 1 do
    if u <> sk then Digraph.iter_out g u (fun v len -> add b u v len)
  done;
  finish b

(* ------------------------------------------------------------------ *)
(* Kernels.                                                            *)

type scratch = {
  mutable queue : int array; (* BFS ring buffer; capacity >= n *)
  heap : Binary_heap.t;
  mutable touched : int array; (* vertices written by the last sweep *)
  mutable ntouched : int;
}

let create_scratch () =
  { queue = [||]; heap = Binary_heap.create ~capacity:16 (); touched = [||]; ntouched = 0 }

let ensure s n =
  if Array.length s.queue < n then begin
    s.queue <- Array.make n 0;
    s.touched <- Array.make n 0
  end;
  s.ntouched <- 0

let touch s v =
  s.touched.(s.ntouched) <- v;
  s.ntouched <- s.ntouched + 1

let reset s dist =
  for i = 0 to s.ntouched - 1 do
    dist.(s.touched.(i)) <- unreachable
  done;
  s.ntouched <- 0

(* [ban] excludes one vertex's out-edges from the traversal: sweeping
   the full snapshot with [~ban:u] from any source computes exactly the
   distances of the [G_{-u}] sub-snapshot ([of_digraph ~skip:u]) — the
   best-response shape — without building a per-node CSR. *)

let bfs ?(ban = -1) t s ~src ~dist =
  ensure s t.n;
  let queue = s.queue in
  let cap = Array.length queue in
  let offsets = t.offsets and targets = t.targets in
  dist.(src) <- 0;
  touch s src;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head <> !tail do
    let u = queue.(!head) in
    head := (!head + 1) mod cap;
    if u <> ban then begin
      let du = dist.(u) + 1 in
      for e = offsets.(u) to offsets.(u + 1) - 1 do
        let v = targets.(e) in
        if dist.(v) = unreachable then begin
          dist.(v) <- du;
          touch s v;
          queue.(!tail) <- v;
          tail := (!tail + 1) mod cap
        end
      done
    end
  done

let dijkstra ?(ban = -1) t s ~src ~dist =
  ensure s t.n;
  let heap = s.heap in
  Binary_heap.clear heap;
  let offsets = t.offsets and targets = t.targets and lengths = t.lengths in
  dist.(src) <- 0;
  touch s src;
  Binary_heap.push heap 0 src;
  let continue = ref true in
  while !continue do
    match Binary_heap.pop heap with
    | None -> continue := false
    | Some (d, u) ->
        (* Lazy deletion: skip entries that were superseded. *)
        if d = dist.(u) && u <> ban then
          for e = offsets.(u) to offsets.(u + 1) - 1 do
            let v = targets.(e) in
            let nd = d + lengths.(e) in
            if nd < dist.(v) then begin
              if dist.(v) = unreachable then touch s v;
              dist.(v) <- nd;
              Binary_heap.push heap nd v
            end
          done
  done

let sssp ?ban t s ~src ~dist =
  if t.unit_lengths then bfs ?ban t s ~src ~dist else dijkstra ?ban t s ~src ~dist

(* ------------------------------------------------------------------ *)
(* Compact int32 rows.

   Same kernels, distances stored in an int32 Bigarray — half the
   resident footprint of a boxed-free [int array] row on 64-bit, which
   is what lets an n = 10^5 landmark sweep keep several rows in cache.
   [unreachable32] ([Int32.max_int]) is the clean sentinel; any real
   distance reaching it is an overflow and raises. *)

type dist32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

let unreachable32 = Int32.max_int

(* The sentinel as an int, for overflow checks in 63-bit arithmetic. *)
let inf32 = Int32.to_int Int32.max_int

let create_dist32 n =
  let a = Bigarray.Array1.create Bigarray.Int32 Bigarray.C_layout n in
  Bigarray.Array1.fill a unreachable32;
  a

let fill32 (dist : dist32) = Bigarray.Array1.fill dist unreachable32

let reset32 s (dist : dist32) =
  for i = 0 to s.ntouched - 1 do
    Bigarray.Array1.unsafe_set dist s.touched.(i) unreachable32
  done;
  s.ntouched <- 0

let bfs32 ?(ban = -1) t s ~src ~(dist : dist32) =
  ensure s t.n;
  if t.n >= inf32 then invalid_arg "Csr.bfs32: hop distance could overflow int32";
  let queue = s.queue in
  let cap = Array.length queue in
  let offsets = t.offsets and targets = t.targets in
  Bigarray.Array1.unsafe_set dist src 0l;
  touch s src;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head <> !tail do
    let u = queue.(!head) in
    head := (!head + 1) mod cap;
    if u <> ban then begin
      let du = Int32.add (Bigarray.Array1.unsafe_get dist u) 1l in
      for e = offsets.(u) to offsets.(u + 1) - 1 do
        let v = targets.(e) in
        if Bigarray.Array1.unsafe_get dist v = unreachable32 then begin
          Bigarray.Array1.unsafe_set dist v du;
          touch s v;
          queue.(!tail) <- v;
          tail := (!tail + 1) mod cap
        end
      done
    end
  done

let dijkstra32 ?(ban = -1) t s ~src ~(dist : dist32) =
  ensure s t.n;
  let heap = s.heap in
  Binary_heap.clear heap;
  let offsets = t.offsets and targets = t.targets and lengths = t.lengths in
  Bigarray.Array1.unsafe_set dist src 0l;
  touch s src;
  Binary_heap.push heap 0 src;
  let continue = ref true in
  while !continue do
    match Binary_heap.pop heap with
    | None -> continue := false
    | Some (d, u) ->
        if d = Int32.to_int (Bigarray.Array1.unsafe_get dist u) && u <> ban then
          for e = offsets.(u) to offsets.(u + 1) - 1 do
            let v = targets.(e) in
            let nd = d + lengths.(e) in
            (* The heap carries int distances, so [nd] is exact; it only
               has to fit the row.  >= keeps the sentinel unambiguous. *)
            if nd >= inf32 then
              invalid_arg "Csr.dijkstra32: distance overflows int32";
            if nd < Int32.to_int (Bigarray.Array1.unsafe_get dist v) then begin
              if Bigarray.Array1.unsafe_get dist v = unreachable32 then touch s v;
              Bigarray.Array1.unsafe_set dist v (Int32.of_int nd);
              Binary_heap.push heap nd v
            end
          done
  done

let sssp32 ?ban t s ~src ~dist =
  if t.unit_lengths then bfs32 ?ban t s ~src ~dist else dijkstra32 ?ban t s ~src ~dist
