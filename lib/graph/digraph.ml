type t = {
  size : int;
  adj : (int * int) list array; (* adj.(u) = [(v, length); ...] *)
  mutable edges : int;
  mutable non_unit : int; (* edges with length <> 1; see all_unit_lengths *)
}

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  { size = n; adj = Array.make n []; edges = 0; non_unit = 0 }

let n g = g.size

let edge_count g = g.edges

let all_unit_lengths g = g.non_unit = 0

let check_vertex g u name =
  if u < 0 || u >= g.size then
    invalid_arg (Printf.sprintf "Digraph.%s: vertex %d out of range [0,%d)" name u g.size)

let count_non_unit l = if l <> 1 then 1 else 0

let add_edge g u v len =
  check_vertex g u "add_edge";
  check_vertex g v "add_edge";
  if u = v then invalid_arg "Digraph.add_edge: self-loop";
  if len < 0 then invalid_arg "Digraph.add_edge: negative length";
  (* Single tail-recursive pass: find the edge to replace (rebuilding
     only the scanned prefix) or learn it is absent and prepend. *)
  let rec replace prefix = function
    | [] ->
        g.adj.(u) <- (v, len) :: g.adj.(u);
        g.edges <- g.edges + 1;
        g.non_unit <- g.non_unit + count_non_unit len
    | (v', old_len) :: rest when v' = v ->
        g.adj.(u) <- List.rev_append prefix ((v, len) :: rest);
        g.non_unit <- g.non_unit - count_non_unit old_len + count_non_unit len
    | e :: rest -> replace (e :: prefix) rest
  in
  replace [] g.adj.(u)

let remove_edge g u v =
  check_vertex g u "remove_edge";
  check_vertex g v "remove_edge";
  (* Single tail-recursive pass; an absent edge leaves the list intact
     (no rebuild). *)
  let rec remove prefix = function
    | [] -> ()
    | (v', len) :: rest when v' = v ->
        g.adj.(u) <- List.rev_append prefix rest;
        g.edges <- g.edges - 1;
        g.non_unit <- g.non_unit - count_non_unit len
    | e :: rest -> remove (e :: prefix) rest
  in
  remove [] g.adj.(u)

let remove_out_edges g u =
  check_vertex g u "remove_out_edges";
  g.edges <- g.edges - List.length g.adj.(u);
  List.iter (fun (_, len) -> g.non_unit <- g.non_unit - count_non_unit len) g.adj.(u);
  g.adj.(u) <- []

let mem_edge g u v =
  check_vertex g u "mem_edge";
  List.exists (fun (v', _) -> v' = v) g.adj.(u)

let edge_length g u v =
  check_vertex g u "edge_length";
  List.assoc_opt v g.adj.(u)

let out_edges g u =
  check_vertex g u "out_edges";
  g.adj.(u)

let out_degree g u =
  check_vertex g u "out_degree";
  List.length g.adj.(u)

let iter_out g u f =
  check_vertex g u "iter_out";
  List.iter (fun (v, len) -> f v len) g.adj.(u)

let iter_edges g f =
  for u = 0 to g.size - 1 do
    List.iter (fun (v, len) -> f u v len) g.adj.(u)
  done

let fold_edges g f init =
  let acc = ref init in
  iter_edges g (fun u v len -> acc := f !acc u v len);
  !acc

let edges g =
  fold_edges g (fun acc u v len -> (u, v, len) :: acc) [] |> List.sort compare

let copy g = { size = g.size; adj = Array.copy g.adj; edges = g.edges; non_unit = g.non_unit }

let transpose g =
  let t = create g.size in
  iter_edges g (fun u v len -> add_edge t v u len);
  t

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v, len) -> add_edge g u v len) es;
  g

let of_unit_edges n es = of_edges n (List.map (fun (u, v) -> (u, v, 1)) es)

let equal g1 g2 = g1.size = g2.size && edges g1 = edges g2

let pp fmt g =
  Format.fprintf fmt "@[<v>digraph(%d vertices, %d edges)" g.size g.edges;
  List.iter (fun (u, v, len) -> Format.fprintf fmt "@,  %d -> %d (len %d)" u v len) (edges g);
  Format.fprintf fmt "@]"
