(** Minimal binary min-heap of [(priority, payload)] pairs with integer
    priorities, used by Dijkstra and min-cost-flow.  Lazy deletion is the
    caller's concern (push duplicates, skip stale pops). *)

type t

val create : ?capacity:int -> unit -> t

val is_empty : t -> bool

val size : t -> int

val push : t -> int -> int -> unit
(** [push h priority payload]. *)

val pop : t -> (int * int) option
(** Remove and return the [(priority, payload)] pair with the smallest
    priority, or [None] if the heap is empty. *)

val clear : t -> unit
