(** Strongly connected components (iterative Tarjan) and condensation.

    Component ids are assigned in reverse topological order of the
    condensation: if there is an edge from component [a] to component [b]
    (with [a <> b]) then [id a > id b].  Equivalently, component 0 is a sink
    of the condensation DAG.  This matches the use in the dynamics layer
    (Lemma 10 of the paper reasons about sink components). *)

type t = {
  count : int;  (** Number of strongly connected components. *)
  component : int array;  (** [component.(v)] is the id of [v]'s SCC. *)
}

val compute : Digraph.t -> t

val members : t -> int -> int list
(** Vertices of a given component, in increasing order. *)

val sizes : t -> int array
(** [sizes scc] maps each component id to its cardinality. *)

val is_strongly_connected : Digraph.t -> bool

val condensation : Digraph.t -> t -> Digraph.t
(** The condensation DAG: one vertex per component, a unit-length edge
    between distinct components whenever some original edge crosses them. *)

val sink_components : Digraph.t -> t -> int list
(** Components with no outgoing edge in the condensation. *)
