(** Graphviz export, used by the CLI and examples to visualize equilibria
    and gadgets. *)

val to_dot :
  ?name:string ->
  ?vertex_label:(int -> string) ->
  ?show_lengths:bool ->
  Digraph.t ->
  string
(** Render the graph in DOT syntax.  [vertex_label] defaults to the vertex
    number; edge lengths are printed as edge labels when [show_lengths]
    (default: only when some length differs from 1). *)
