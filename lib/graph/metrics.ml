let fold_distances g src ~init ~f =
  let dist = Paths.shortest g src in
  let acc = ref (Some init) in
  Array.iteri
    (fun v d ->
      if v <> src then
        match !acc with
        | None -> ()
        | Some a -> if d = Paths.unreachable then acc := None else acc := Some (f a d))
    dist;
  !acc

let eccentricity g u = if Digraph.n g <= 1 then Some 0 else fold_distances g u ~init:0 ~f:max

let total_distance g u = fold_distances g u ~init:0 ~f:( + )

let diameter g =
  let n = Digraph.n g in
  if n <= 1 then Some 0
  else begin
    let best = ref (Some 0) in
    (try
       for u = 0 to n - 1 do
         match eccentricity g u with
         | None ->
             best := None;
             raise Exit
         | Some e -> best := Some (max e (Option.get !best))
       done
     with Exit -> ());
    !best
  end

let radius g =
  let n = Digraph.n g in
  if n <= 1 then Some 0
  else begin
    let best = ref None in
    for u = 0 to n - 1 do
      match eccentricity g u with
      | None -> ()
      | Some e -> (
          match !best with None -> best := Some e | Some b -> if e < b then best := Some e)
    done;
    !best
  end

let sum_of_distances g =
  let n = Digraph.n g in
  let total = ref (Some 0) in
  (try
     for u = 0 to n - 1 do
       match total_distance g u with
       | None ->
           total := None;
           raise Exit
       | Some s -> total := Some (s + Option.get !total)
     done
   with Exit -> ());
  !total

let average_distance g =
  let n = Digraph.n g in
  if n <= 1 then Some 0.
  else
    Option.map
      (fun s -> float_of_int s /. float_of_int (n * (n - 1)))
      (sum_of_distances g)

let max_out_degree g =
  let best = ref 0 in
  for u = 0 to Digraph.n g - 1 do
    best := max !best (Digraph.out_degree g u)
  done;
  !best

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  for u = 0 to Digraph.n g - 1 do
    let d = Digraph.out_degree g u in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [] |> List.sort compare
