let directed_ring n =
  if n < 2 then invalid_arg "Generators.directed_ring: n must be >= 2";
  let g = Digraph.create n in
  for i = 0 to n - 1 do
    Digraph.add_edge g i ((i + 1) mod n) 1
  done;
  g

let directed_path n =
  let g = Digraph.create n in
  for i = 0 to n - 2 do
    Digraph.add_edge g i (i + 1) 1
  done;
  g

let complete n =
  let g = Digraph.create n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then Digraph.add_edge g u v 1
    done
  done;
  g

let k_ary_tree_size ~k ~height =
  if k < 1 || height < 0 then invalid_arg "Generators.k_ary_tree_size";
  if k = 1 then height + 1
  else begin
    let total = ref 0 and level = ref 1 in
    for _ = 0 to height do
      total := !total + !level;
      level := !level * k
    done;
    !total
  end

let k_ary_tree ~k ~height =
  let n = k_ary_tree_size ~k ~height in
  let g = Digraph.create n in
  for v = 0 to n - 1 do
    for c = 1 to k do
      let child = (k * v) + c in
      if child < n then Digraph.add_edge g v child 1
    done
  done;
  g

let random_k_out rng ~n ~k =
  if k > n - 1 then invalid_arg "Generators.random_k_out: k > n - 1";
  let g = Digraph.create n in
  for u = 0 to n - 1 do
    (* Sample k distinct targets from [0, n-1) and skip over u. *)
    let targets = Bbc_prng.Splitmix.sample_without_replacement rng k (n - 1) in
    List.iter (fun t -> Digraph.add_edge g u (if t >= u then t + 1 else t) 1) targets
  done;
  g

let gnp rng ~n ~p =
  if p < 0. || p > 1. then invalid_arg "Generators.gnp: p out of [0,1]";
  let g = Digraph.create n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Bbc_prng.Splitmix.float rng 1.0 < p then Digraph.add_edge g u v 1
    done
  done;
  g
