(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every randomized component of the library takes an explicit generator so
    that experiments are replayable bit-for-bit from a seed.  The generator
    is a mutable 64-bit state advanced by the splitmix64 recurrence; [split]
    derives an independent stream, which lets parallel or nested experiments
    consume randomness without perturbing each other. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator seeded with [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val next_int64 : t -> int64
(** Next raw 64-bit output of the splitmix64 recurrence. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)].  [bound] must be
    positive. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform integer in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** A uniform boolean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t m n] draws [m] distinct integers from
    [\[0, n)], in increasing order.  Requires [m <= n]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
