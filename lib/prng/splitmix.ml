(* Splitmix64 (Steele, Lea & Flood, OOPSLA 2014).  The state advances by a
   fixed odd increment ("golden gamma"); outputs are the state passed through
   a 64-bit variant of the MurmurHash3 finalizer. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = mix64 seed }

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec loop () =
    let raw = Int64.to_int (next_int64 t) land mask in
    let v = raw mod bound in
    if raw - v > mask - bound + 1 then loop () else v
  in
  loop ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Splitmix.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (raw /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t m n =
  if m > n then invalid_arg "Splitmix.sample_without_replacement: m > n";
  (* Floyd's algorithm: O(m) expected insertions. *)
  let chosen = Hashtbl.create (2 * m) in
  for j = n - m to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem chosen r then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen r ()
  done;
  Hashtbl.fold (fun k () acc -> k :: acc) chosen []
  |> List.sort compare

let choose t a =
  if Array.length a = 0 then invalid_arg "Splitmix.choose: empty array";
  a.(int t (Array.length a))
