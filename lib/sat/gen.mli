(** Random 3SAT formula generation for the reduction experiments. *)

val random_3sat : Bbc_prng.Splitmix.t -> num_vars:int -> num_clauses:int -> Cnf.t
(** Each clause draws three distinct variables uniformly and negates each
    with probability 1/2.  Requires [num_vars >= 3]. *)

val planted_3sat :
  Bbc_prng.Splitmix.t -> num_vars:int -> num_clauses:int -> Cnf.t * bool array
(** Like {!random_3sat} but every clause is checked (and re-drawn) to be
    satisfied by a hidden random assignment, which is returned (indexed by
    variable, index 0 unused).  The formula is satisfiable by
    construction. *)

val pigeonhole : holes:int -> Cnf.t
(** The PHP(holes+1, holes) principle: unsatisfiable by construction, with
    clauses of width [holes] and 2; used as an unsatisfiable control in the
    reduction experiments (note: not 3SAT for [holes > 3]). *)
