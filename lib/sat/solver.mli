(** A small DPLL SAT solver: unit propagation, pure-literal elimination,
    most-occurring-variable branching.  Complete (always terminates with
    the right answer); adequate for the reduction experiments, whose
    formulas have at most a few dozen variables. *)

type outcome =
  | Sat of bool array
      (** Witness assignment, indexed by variable (index 0 unused). *)
  | Unsat

val solve : Cnf.t -> outcome

val is_satisfiable : Cnf.t -> bool

val count_models : Cnf.t -> int
(** Number of satisfying assignments (exhaustive over [2^num_vars];
    intended for formulas with at most ~20 variables, used to cross-check
    the DPLL solver in tests). *)
