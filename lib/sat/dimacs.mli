(** DIMACS CNF parsing and printing, so the reduction experiments can be
    fed standard benchmark files. *)

val parse : string -> (Cnf.t, string) result
(** Parse DIMACS CNF text.  Accepts comment lines ([c ...]), a problem
    line ([p cnf <vars> <clauses>]), and zero-terminated clauses possibly
    spanning multiple lines.  The declared clause count is checked. *)

val parse_file : string -> (Cnf.t, string) result

val print : Cnf.t -> string
(** Render in DIMACS format. *)
