let parse text =
  let lines = String.split_on_char '\n' text in
  let tokens =
    List.concat_map
      (fun line ->
        let line = String.trim line in
        if line = "" || line.[0] = 'c' then []
        else if line.[0] = 'p' then [ "\000" ^ line ]
        else String.split_on_char ' ' line |> List.filter (fun s -> s <> ""))
      lines
  in
  let rec split_header acc = function
    | [] -> Error "Dimacs.parse: missing problem line"
    | tok :: rest when String.length tok > 0 && tok.[0] = '\000' ->
        if acc <> [] then Error "Dimacs.parse: literals before problem line"
        else Ok (String.sub tok 1 (String.length tok - 1), rest)
    | tok :: rest -> split_header (tok :: acc) rest
  in
  match split_header [] tokens with
  | Error e -> Error e
  | Ok (header, body) -> (
      match String.split_on_char ' ' header |> List.filter (fun s -> s <> "") with
      | [ "p"; "cnf"; vars; clauses ] -> (
          match (int_of_string_opt vars, int_of_string_opt clauses) with
          | Some num_vars, Some num_clauses -> (
              let ints =
                List.map
                  (fun tok ->
                    match int_of_string_opt tok with
                    | Some i -> Ok i
                    | None -> Error (Printf.sprintf "Dimacs.parse: bad token %S" tok))
                  body
              in
              match List.find_opt Result.is_error ints with
              | Some (Error e) -> Error e
              | Some (Ok _) -> assert false
              | None ->
                  let ints = List.map Result.get_ok ints in
                  let rec clauses_of acc current = function
                    | [] ->
                        if current = [] then Ok (List.rev acc)
                        else Error "Dimacs.parse: unterminated final clause"
                    | 0 :: rest -> clauses_of (List.rev current :: acc) [] rest
                    | lit :: rest -> clauses_of acc (lit :: current) rest
                  in
                  (match clauses_of [] [] ints with
                  | Error e -> Error e
                  | Ok cls ->
                      if List.length cls <> num_clauses then
                        Error
                          (Printf.sprintf
                             "Dimacs.parse: declared %d clauses, found %d"
                             num_clauses (List.length cls))
                      else
                        (try Ok (Cnf.make ~num_vars cls)
                         with Invalid_argument m -> Error m)))
          | _ -> Error "Dimacs.parse: malformed problem line")
      | _ -> Error "Dimacs.parse: malformed problem line")

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error m -> Error m

let print f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" (Cnf.num_vars f) (Cnf.num_clauses f));
  List.iter
    (fun clause ->
      List.iter (fun lit -> Buffer.add_string buf (string_of_int lit ^ " ")) clause;
      Buffer.add_string buf "0\n")
    (Cnf.clauses f);
  Buffer.contents buf
