module Splitmix = Bbc_prng.Splitmix

let random_clause rng num_vars =
  let vars = Splitmix.sample_without_replacement rng 3 num_vars in
  List.map (fun v0 -> if Splitmix.bool rng then v0 + 1 else -(v0 + 1)) vars

let random_3sat rng ~num_vars ~num_clauses =
  if num_vars < 3 then invalid_arg "Gen.random_3sat: need at least 3 variables";
  let clauses = List.init num_clauses (fun _ -> random_clause rng num_vars) in
  Cnf.make ~num_vars clauses

let planted_3sat rng ~num_vars ~num_clauses =
  if num_vars < 3 then invalid_arg "Gen.planted_3sat: need at least 3 variables";
  let hidden = Array.init (num_vars + 1) (fun _ -> Splitmix.bool rng) in
  let rec draw () =
    let clause = random_clause rng num_vars in
    if Cnf.clause_satisfied clause hidden then clause else draw ()
  in
  let clauses = List.init num_clauses (fun _ -> draw ()) in
  (Cnf.make ~num_vars clauses, hidden)

let pigeonhole ~holes =
  if holes < 1 then invalid_arg "Gen.pigeonhole: need at least one hole";
  let pigeons = holes + 1 in
  (* Variable p_{i,j} (pigeon i in hole j), 1-based packing. *)
  let var i j = (i * holes) + j + 1 in
  let num_vars = pigeons * holes in
  let every_pigeon_placed =
    List.init pigeons (fun i -> List.init holes (fun j -> var i j))
  in
  let no_hole_shared =
    List.concat
      (List.init holes (fun j ->
           List.concat
             (List.init pigeons (fun i ->
                  List.filteri (fun i' _ -> i' > i) (List.init pigeons Fun.id)
                  |> List.map (fun i' -> [ -var i j; -var i' j ])))))
  in
  Cnf.make ~num_vars (every_pigeon_placed @ no_hole_shared)
