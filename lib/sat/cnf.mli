(** CNF formulas for the Theorem-2 reduction (3SAT -> BBC instance).

    Variables are numbered [1 .. num_vars]; a literal is a non-zero integer
    whose sign gives the polarity (DIMACS convention).  The reduction only
    needs 3SAT, but the type supports arbitrary clause widths so the DPLL
    solver and generators are reusable. *)

type literal = int
(** Non-zero; [v] means variable [v] is true, [-v] that it is false. *)

type clause = literal list

type t = private { num_vars : int; clauses : clause list }

val make : num_vars:int -> clause list -> t
(** Validates that every literal's variable is within range and non-zero,
    and that no clause is empty of variables. *)

val num_vars : t -> int
val clauses : t -> clause list
val num_clauses : t -> int

val is_three_sat : t -> bool
(** Every clause has at most three literals. *)

val var : literal -> int
(** Variable of a literal (absolute value). *)

val eval : t -> bool array -> bool
(** [eval f assignment] with [assignment.(v)] the value of variable [v]
    (index 0 unused).  Raises [Invalid_argument] if the array is shorter
    than [num_vars + 1]. *)

val clause_satisfied : clause -> bool array -> bool

val pp : Format.formatter -> t -> unit
