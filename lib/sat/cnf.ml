type literal = int
type clause = literal list
type t = { num_vars : int; clauses : clause list }

let make ~num_vars cls =
  if num_vars < 0 then invalid_arg "Cnf.make: negative num_vars";
  List.iter
    (fun clause ->
      if clause = [] then invalid_arg "Cnf.make: empty clause";
      List.iter
        (fun lit ->
          let v = abs lit in
          if lit = 0 || v > num_vars then
            invalid_arg (Printf.sprintf "Cnf.make: literal %d out of range" lit))
        clause)
    cls;
  { num_vars; clauses = cls }

let num_vars f = f.num_vars
let clauses f = f.clauses
let num_clauses f = List.length f.clauses

let is_three_sat f = List.for_all (fun c -> List.length c <= 3) f.clauses

let var lit = abs lit

let literal_satisfied lit assignment =
  if lit > 0 then assignment.(lit) else not assignment.(-lit)

let clause_satisfied clause assignment =
  List.exists (fun lit -> literal_satisfied lit assignment) clause

let eval f assignment =
  if Array.length assignment < f.num_vars + 1 then
    invalid_arg "Cnf.eval: assignment too short";
  List.for_all (fun c -> clause_satisfied c assignment) f.clauses

let pp fmt f =
  let pp_lit fmt lit = if lit > 0 then Format.fprintf fmt "x%d" lit else Format.fprintf fmt "~x%d" (-lit) in
  let pp_clause fmt c =
    Format.fprintf fmt "(%a)" (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " | ") pp_lit) c
  in
  Format.fprintf fmt "@[<hov>%a@]"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "@ & ") pp_clause)
    f.clauses
