type outcome = Sat of bool array | Unsat

(* Assignment state during search: 0 = unassigned, 1 = true, -1 = false. *)

let literal_value assignment lit =
  let v = abs lit in
  let s = assignment.(v) in
  if s = 0 then 0 else if (lit > 0 && s = 1) || (lit < 0 && s = -1) then 1 else -1

(* Simplify clauses under the current partial assignment.  Returns [None]
   if some clause is falsified, otherwise the remaining (shortened)
   clauses. *)
let simplify clauses assignment =
  let rec simplify_clause acc = function
    | [] -> Some (List.rev acc)
    | lit :: rest -> (
        match literal_value assignment lit with
        | 1 -> None (* clause satisfied: drop it *)
        | 0 -> simplify_clause (lit :: acc) rest
        | _ -> simplify_clause acc rest)
  in
  let rec go acc = function
    | [] -> Some acc
    | clause :: rest -> (
        match simplify_clause [] clause with
        | None -> go acc rest
        | Some [] -> None
        | Some c -> go (c :: acc) rest)
  in
  go [] clauses

let choose_branch_variable clauses =
  (* Most frequently occurring variable among remaining clauses. *)
  let counts = Hashtbl.create 16 in
  List.iter
    (List.iter (fun lit ->
         let v = abs lit in
         Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))))
    clauses;
  Hashtbl.fold
    (fun v c best ->
      match best with Some (_, c') when c' >= c -> best | _ -> Some (v, c))
    counts None
  |> Option.map fst

let solve f =
  let num_vars = Cnf.num_vars f in
  let assignment = Array.make (num_vars + 1) 0 in
  let rec search clauses =
    match simplify clauses assignment with
    | None -> false
    | Some [] -> true
    | Some clauses -> (
        (* Unit propagation. *)
        match List.find_opt (fun c -> List.length c = 1) clauses with
        | Some [ lit ] ->
            let v = abs lit in
            assignment.(v) <- (if lit > 0 then 1 else -1);
            let ok = search clauses in
            if not ok then assignment.(v) <- 0;
            ok
        | Some _ -> assert false
        | None -> (
            (* Pure-literal elimination. *)
            let polarity = Hashtbl.create 16 in
            List.iter
              (List.iter (fun lit ->
                   let v = abs lit in
                   match Hashtbl.find_opt polarity v with
                   | None -> Hashtbl.replace polarity v (compare lit 0)
                   | Some s -> if s <> compare lit 0 then Hashtbl.replace polarity v 0))
              clauses;
            let pure = Hashtbl.fold (fun v s acc -> if s <> 0 then (v, s) :: acc else acc) polarity [] in
            match pure with
            | (v, s) :: _ ->
                assignment.(v) <- s;
                let ok = search clauses in
                if not ok then assignment.(v) <- 0;
                ok
            | [] -> (
                match choose_branch_variable clauses with
                | None -> true
                | Some v ->
                    let try_value value =
                      assignment.(v) <- value;
                      let ok = search clauses in
                      if not ok then assignment.(v) <- 0;
                      ok
                    in
                    try_value 1 || try_value (-1))))
  in
  if search (Cnf.clauses f) then begin
    let witness = Array.make (num_vars + 1) false in
    for v = 1 to num_vars do
      witness.(v) <- assignment.(v) = 1 (* unassigned vars default to false *)
    done;
    Sat witness
  end
  else Unsat

let is_satisfiable f = match solve f with Sat _ -> true | Unsat -> false

let count_models f =
  let num_vars = Cnf.num_vars f in
  let assignment = Array.make (num_vars + 1) false in
  let count = ref 0 in
  let rec go v =
    if v > num_vars then begin
      if Cnf.eval f assignment then incr count
    end
    else begin
      assignment.(v) <- false;
      go (v + 1);
      assignment.(v) <- true;
      go (v + 1)
    end
  in
  go 1;
  !count
