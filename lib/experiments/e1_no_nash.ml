(* E1 — Theorem 1 / Figure 1: non-uniform preferences can leave a BBC
   game without any pure Nash equilibrium (uniform costs, lengths and
   budgets k = 1).

   The 5-node core is certified by complete enumeration of its full
   profile space; the 11-node instance (the paper's size) adds forced
   padding nodes per the paper's own extension argument, and its
   best-response dynamics provably never converge (they cycle). *)

let run ?(quick = true) fmt =
  ignore quick;
  Table.section fmt
    "E1  Theorem 1: a non-uniform BBC game with no pure Nash equilibrium";
  let t =
    Table.create ~title:"No-equilibrium certification (Sum objective)"
      ~claim:
        "Thm 1: for any n >= 11, k >= 1 there is a BBC game with uniform \
         costs/lengths/budgets and non-uniform preferences with no pure NE"
      ~columns:[ "instance"; "n"; "profiles"; "complete"; "pure NE" ]
  in
  let core = Bbc.Gadget.core () in
  let r = Bbc.Exhaustive.search ~limit:1 core in
  Table.add_row t
    [
      "machine-discovered core";
      Table.cell_int (Bbc.Instance.n core);
      Table.cell_int r.examined;
      Table.cell_bool r.complete;
      Table.cell_bool (r.equilibria <> []);
    ];
  let padded = Bbc.Gadget.no_nash ~n:11 in
  Table.add_row t
    [
      "padded to paper size";
      "11";
      "(padding argument)";
      Table.cell_bool (Bbc.Gadget.padding_is_sound padded);
      "no";
    ];
  Table.render fmt t;
  (* Dynamic witness: the walk cannot converge, so it must cycle. *)
  let outcome =
    Bbc.Dynamics.run ~scheduler:Bbc.Dynamics.Round_robin ~max_rounds:500 padded
      (Bbc.Config.empty 11)
  in
  (match outcome with
  | Bbc.Dynamics.Cycled { period; stats; _ } ->
      Format.fprintf fmt
        "  dynamics on the 11-node instance: cycled after %d deviations \
         (period %d rounds) — no convergence, as Theorem 1 predicts@."
        stats.deviations period
  | Bbc.Dynamics.Converged _ ->
      Format.fprintf fmt "  UNEXPECTED: dynamics converged on a no-NE game!@."
  | Bbc.Dynamics.Exhausted _ ->
      Format.fprintf fmt "  dynamics: no repeat within the round budget@.");
  Table.note fmt
    "the paper's Figure-1 edge set is under-determined by its text; the \
     core above exhibits the same phenomenon and is certified \
     unconditionally (see DESIGN.md)"
