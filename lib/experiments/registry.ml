type entry = {
  id : string;
  title : string;
  run : ?quick:bool -> Format.formatter -> unit;
}

let all =
  [
    { id = "e1"; title = "Theorem 1: no pure NE (non-uniform games)"; run = E1_no_nash.run };
    { id = "e2"; title = "Theorem 2: 3SAT reduction"; run = E2_reduction.run };
    { id = "e3"; title = "Theorem 3: fractional games"; run = E3_fractional.run };
    { id = "e4"; title = "Lemma 6 / Fig 3: Forest of Willows"; run = E4_willows.run };
    { id = "e5"; title = "Theorem 4: price of anarchy"; run = E5_anarchy.run };
    { id = "e6"; title = "Lemma 7: stable-graph diameter"; run = E6_diameter.run };
    { id = "e7"; title = "Theorem 5: Cayley instability"; run = E7_cayley.run };
    { id = "e8"; title = "Theorem 6: convergence to strong connectivity"; run = E8_convergence.run };
    { id = "e9"; title = "Figure 4: best-response loop"; run = E9_loop.run };
    { id = "e10"; title = "Section 4.3: walk experiments"; run = E10_walk_experiments.run };
    { id = "e11"; title = "Section 5: BBC-max"; run = E11_bbc_max.run };
    { id = "e12"; title = "Extension: exact small-game analysis"; run = E12_exact_small.run };
    { id = "e13"; title = "Footnote-2 conjecture: non-uniform budgets"; run = E13_budget_conjecture.run };
    { id = "e14"; title = "Extension: equilibrium resilience under churn"; run = E14_churn.run };
    { id = "e15"; title = "Baseline: Fabrikant et al. network creation game"; run = E15_baseline.run };
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> e.id = id) all

let span_prefix = "experiment."

let run_entry ?quick fmt e =
  Bbc_obs.with_span (span_prefix ^ e.id)
    ~attrs:[ ("title", Bbc_obs.Str e.title) ]
    (fun () -> e.run ?quick fmt)

(* One wall-clock row per experiment span recorded so far; printed after
   [run_all] when observability is on, so the bench trajectory gets
   per-experiment timings without parsing the prose output. *)
let pp_timings fmt =
  let rows =
    List.filter_map
      (fun (name, count, total_ns) ->
        if String.starts_with ~prefix:span_prefix name then
          let id = String.sub name (String.length span_prefix)
                     (String.length name - String.length span_prefix) in
          Option.map (fun e -> (e, count, total_ns)) (find id)
        else None)
      (Bbc_obs.span_stats ())
  in
  let num e =
    match int_of_string_opt (String.sub e.id 1 (String.length e.id - 1)) with
    | Some n -> n
    | None -> max_int
  in
  let rows = List.sort (fun (a, _, _) (b, _, _) -> compare (num a) (num b)) rows in
  if rows <> [] then begin
    Format.fprintf fmt "@.experiment timings@.";
    List.iter
      (fun (e, count, total_ns) ->
        Format.fprintf fmt "  %-4s %-52s %2d run(s) %9.3fs@." e.id e.title count
          (float_of_int total_ns /. 1e9))
      rows
  end

let run_all ?quick fmt =
  List.iter (fun e -> run_entry ?quick fmt e) all;
  if Bbc_obs.enabled () then pp_timings fmt
