(** E15 — baseline comparison (paper Section 1.3): the Fabrikant et al.
    alpha-priced network creation game vs BBC's budgeted links — landmark
    equilibria (complete graph, star) and the shapes the budget cap rules
    out. *)

val run : ?quick:bool -> Format.formatter -> unit
(** Print the experiment's tables to the formatter.  [quick] (default
    [true]) selects the fast parameter set; [false] runs the larger
    sweeps reported in EXPERIMENTS.md's full-mode numbers. *)
