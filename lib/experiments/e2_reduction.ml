(* E2 — Theorem 2 / Figure 2: the 3SAT reduction.  For satisfiable
   formulas the encoded profile is a verified pure NE that decodes back
   to a satisfying assignment; for small unsatisfiable formulas the
   reduced profile space is exhaustively certified to contain no NE. *)

module Cnf = Bbc_sat.Cnf
module Solver = Bbc_sat.Solver

let sat_rows rng ~count ~num_vars ~num_clauses =
  List.init count (fun i ->
      let formula, _ = Bbc_sat.Gen.planted_3sat rng ~num_vars ~num_clauses in
      let t = Bbc.Reduction.build formula in
      match Solver.solve formula with
      | Solver.Sat assignment ->
          let config = Bbc.Reduction.encode t assignment in
          let stable = Bbc.Stability.is_stable t.instance config in
          let decoded = Cnf.eval formula (Bbc.Reduction.decode t config) in
          [
            Printf.sprintf "planted-%d" i;
            Table.cell_int num_vars;
            Table.cell_int num_clauses;
            Table.cell_int (Bbc.Instance.n t.instance);
            "yes";
            Table.cell_bool stable;
            Table.cell_bool decoded;
          ]
      | Solver.Unsat -> [ Printf.sprintf "planted-%d" i; "-"; "-"; "-"; "!"; "-"; "-" ])

let unsat_row name formula =
  let t = Bbc.Reduction.build formula in
  let candidates = Bbc.Reduction.candidate_strategies t in
  let has_ne =
    match Bbc.Exhaustive.has_equilibrium ~candidates t.instance with
    | Some b -> Table.cell_bool b
    | None -> "aborted"
  in
  [
    name;
    Table.cell_int (Cnf.num_vars formula);
    Table.cell_int (Cnf.num_clauses formula);
    Table.cell_int (Bbc.Instance.n t.instance);
    "no";
    has_ne;
    "-";
  ]

let run ?(quick = true) fmt =
  Table.section fmt "E2  Theorem 2: 3SAT -> BBC reduction (NP-hardness witness)";
  let t =
    Table.create ~title:"Reduction faithfulness"
      ~claim:
        "Thm 2: the constructed game has a pure NE iff the formula is \
         satisfiable (SAT -> encoded profile stable; UNSAT -> exhaustive \
         no-NE over the reduced space)"
      ~columns:[ "formula"; "vars"; "clauses"; "game n"; "SAT"; "pure NE"; "decodes" ]
  in
  let rng = Bbc_prng.Splitmix.create 2026 in
  Table.add_rows t (sat_rows rng ~count:(if quick then 3 else 6) ~num_vars:3 ~num_clauses:4);
  Table.add_rows t
    (sat_rows rng ~count:(if quick then 2 else 4) ~num_vars:(if quick then 4 else 6)
       ~num_clauses:(if quick then 6 else 10));
  Table.add_row t
    (unsat_row "unsat (x)(~x)" (Cnf.make ~num_vars:1 [ [ 1; 1; 1 ]; [ -1; -1; -1 ] ]));
  Table.add_row t
    (unsat_row "unsat 2-var, 4-clause"
       (Cnf.make ~num_vars:2 [ [ 1; 2; 2 ]; [ 1; -2; -2 ]; [ -1; 2; 2 ]; [ -1; -2; -2 ] ]));
  (* The paper's k >= 2 extension (uniform budgets): anchor cluster plus
     a balanced hub relay tree; see Reduction.build_k. *)
  List.iter
    (fun k ->
      let f = Cnf.make ~num_vars:3 [ [ 1; 2; 3 ]; [ -1; 2; -3 ]; [ 1; -2; 3 ] ] in
      let t2 = Bbc.Reduction.build_k ~k f in
      (match Bbc_sat.Solver.solve f with
      | Bbc_sat.Solver.Sat assignment ->
          let config = Bbc.Reduction.encode t2 assignment in
          Table.add_row t
            [
              Printf.sprintf "sat, uniform k=%d" k;
              "3";
              "3";
              Table.cell_int (Bbc.Instance.n t2.instance);
              "yes";
              Table.cell_bool (Bbc.Stability.is_stable t2.instance config);
              Table.cell_bool (Cnf.eval f (Bbc.Reduction.decode t2 config));
            ]
      | Bbc_sat.Solver.Unsat -> ());
      let u = Cnf.make ~num_vars:1 [ [ 1; 1; 1 ]; [ -1; -1; -1 ] ] in
      let tu = Bbc.Reduction.build_k ~k u in
      let has_ne =
        match
          Bbc.Exhaustive.has_equilibrium
            ~candidates:(Bbc.Reduction.candidate_strategies tu)
            tu.instance
        with
        | Some b -> Table.cell_bool b
        | None -> "aborted"
      in
      Table.add_row t
        [
          Printf.sprintf "unsat (x)(~x), uniform k=%d" k;
          "1";
          "2";
          Table.cell_int (Bbc.Instance.n tu.instance);
          "no";
          has_ne;
          "-";
        ])
    (if quick then [ 2 ] else [ 2; 3 ]);
  Table.render fmt t;
  Table.note fmt
    "UNSAT certification enumerates the reduced profile space (forced \
     nodes pinned to their strictly dominant strategies); every profile \
     is checked against all feasible deviations"
