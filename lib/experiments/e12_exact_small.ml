(* E12 (extension beyond the paper): exact analysis of small uniform
   games.  The paper's PoA/PoS statements are asymptotic and its
   "not a potential game" claim is witnessed at (7,2); with complete
   profile-space enumeration we can report, for small (n,k):

   - the exact social optimum, the number of pure equilibria, and the
     exact PoS / PoA;
   - whether the game has the finite improvement property (FIP), i.e.
     whether an ordinal potential exists at that size. *)

let row ~n ~k ~with_fip =
  let inst = Bbc.Instance.uniform ~n ~k in
  match Bbc.Social_optimum.analyze ~max_profiles:3_000_000 inst with
  | None -> [ Printf.sprintf "(%d,%d)" n k; "-"; "-"; "-"; "-"; "-"; "space too large" ]
  | Some s ->
      let pos = Bbc.Social_optimum.price_of_stability s in
      let poa = Bbc.Social_optimum.price_of_anarchy s in
      let fip =
        if not with_fip then "-"
        else
          match Bbc.Potential.has_finite_improvement_property ~max_profiles:20_000 inst with
          | Some true -> "yes"
          | Some false -> "NO"
          | None -> "-"
      in
      [
        Printf.sprintf "(%d,%d)" n k;
        Table.cell_int s.profiles;
        Table.cell_int s.optimum;
        Table.cell_int s.equilibria;
        (match pos with Some r -> Table.cell_float ~decimals:3 r | None -> "-");
        (match poa with Some r -> Table.cell_float ~decimals:3 r | None -> "-");
        fip;
      ]

let run ?(quick = true) fmt =
  Table.section fmt
    "E12  Extension: exact optima, equilibria, and potentials at small sizes";
  let t =
    Table.create ~title:"Complete enumeration of small uniform games"
      ~claim:
        "extension of Thm 4 (exact PoS/PoA instead of bounds) and of the \
         Fig-4 claim (where does the ordinal potential first fail?)"
      ~columns:[ "(n,k)"; "profiles"; "OPT"; "#NE"; "PoS"; "PoA"; "ordinal potential" ]
  in
  let cases =
    if quick then [ (3, 1, true); (4, 1, true); (4, 2, true); (5, 1, true); (4, 3, true); (5, 2, false) ]
    else [ (3, 1, true); (4, 1, true); (4, 2, true); (5, 1, true); (4, 3, true); (5, 2, false); (5, 3, false); (6, 1, false); (5, 4, true) ]
  in
  List.iter (fun (n, k, with_fip) -> Table.add_row t (row ~n ~k ~with_fip)) cases;
  (* Beyond exhaustive reach: heuristic optimum (local search) as the
     denominator of a conservative PoA estimate, with the max-tail
     willows equilibrium as the worst-NE numerator. *)
  let rng = Bbc_prng.Splitmix.create 12012 in
  List.iter
    (fun (k, h) ->
      let l = max 0 (min 2 (Bbc.Willows.max_tail_for ~k ~h)) in
      let p = Bbc.Willows.{ k; h; l } in
      let instance, config = Bbc.Willows.build p in
      let n = Bbc.Willows.size p in
      if n <= 40 then begin
        let opt_est, _ = Bbc.Social_optimum.local_search ~restarts:2 rng instance in
        let ne_cost = Bbc.Eval.social_cost instance config in
        Table.add_row t
          [
            Printf.sprintf "(%d,%d) willows" n k;
            "heuristic";
            Table.cell_int opt_est;
            "1+";
            "-";
            Table.cell_float ~decimals:3 (float_of_int ne_cost /. float_of_int opt_est);
            "-";
          ]
      end)
    (if quick then [ (2, 2) ] else [ (2, 2); (2, 3); (3, 2) ]);
  Table.render fmt t;
  Table.note fmt
    "PoS = 1 wherever computed: some social optimum is itself stable at \
     these sizes.  'ordinal potential = yes' means the improvement graph \
     over the full profile space is acyclic; the paper's Figure-4 cycle \
     shows it must fail by (7,2)"
