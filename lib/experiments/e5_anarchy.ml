(* E5 — Theorem 4's price-of-anarchy lower bound: willows with long
   tails are equilibria of social cost Omega(n^2 sqrt(n/k)), i.e. a
   cost/LB ratio growing like sqrt(n/k)/log_k n.  We sweep h with l
   pinned to the largest admissible tail and report the measured ratio
   next to the theoretical shape. *)

let theory_shape ~n ~k =
  sqrt (float_of_int n /. float_of_int k)
  /. float_of_int (max 1 (Bbc.Metrics.floor_log ~base:k n))

let row p =
  let open Bbc.Willows in
  let instance, config = build p in
  let n = size p in
  (* Full verification is quadratic in n; beyond ~150 nodes use the
     symmetry-orbit representatives (exactly equivalent; see Willows). *)
  let stable =
    if n <= 150 then Bbc.Stability.is_stable instance config
    else is_stable_sampled p instance config
  in
  let ratio = Bbc.Metrics.anarchy_ratio instance config in
  ( [
      Format.asprintf "%a" pp_params p;
      Table.cell_int n;
      Table.cell_bool stable;
      Table.cell_float ratio;
      Table.cell_float (theory_shape ~n ~k:p.k);
    ],
    ratio )

let run ?(quick = true) fmt =
  Table.section fmt "E5  Theorem 4: price of anarchy Omega(sqrt(n/k)/log_k n)";
  let t =
    Table.create ~title:"Max-tail willows vs the theoretical growth shape"
      ~claim:
        "Thm 4: PoA is Omega(sqrt(n/k)/log_k n) and O(sqrt(n)/log_k n); \
         the witnesses are stable graphs whose cost ratio grows with the \
         predicted shape"
      ~columns:[ "params"; "n"; "stable"; "measured ratio"; "theory shape" ]
  in
  let cases =
    (* (h, tail cap): the largest admissible l grows fast with h, so the
       bigger instances are capped in quick mode. *)
    if quick then [ (1, max_int); (2, max_int); (3, 8) ]
    else [ (1, max_int); (2, max_int); (3, max_int); (4, 24) ]
  in
  let ratios =
    List.map
      (fun (h, cap) ->
        let l = min cap (max 0 (Bbc.Willows.max_tail_for ~k:2 ~h)) in
        let r, ratio = row Bbc.Willows.{ k = 2; h; l } in
        Table.add_row t r;
        ratio)
      cases
  in
  Table.render fmt t;
  let increasing =
    let rec go = function
      | a :: (b :: _ as rest) -> a <= b +. 1e-9 && go rest
      | _ -> true
    in
    go ratios
  in
  Format.fprintf fmt "  measured ratio increases along the family: %b@." increasing;
  Table.note fmt
    "absolute constants differ from the paper's (different lower-bound \
     normalization); the growth shape is the reproduced claim"
