(* E13 (the paper's open conjecture, footnote 2): "we conjecture that
   pure Nash equilibria do exist in all cases where only the budgets are
   non-uniform."

   We test it computationally: games with uniform weights, costs and
   lengths but random non-uniform budgets, (a) exhaustively at small n
   (complete profile spaces), (b) by best-response dynamics at larger n
   (convergence to a verified NE).  A single counterexample would refute
   the conjecture; none has appeared. *)

module SM = Bbc_prng.Splitmix

let random_budget_instance rng ~n ~max_budget =
  let weight = Array.init n (fun u -> Array.init n (fun v -> if u = v then 0 else 1)) in
  let ones = Array.init n (fun _ -> Array.make n 1) in
  let budget = Array.init n (fun _ -> SM.int rng (max_budget + 1)) in
  Bbc.Instance.general ~weight ~cost:ones ~length:ones ~budget ()

let exhaustive_row rng ~objective ~n ~max_budget ~trials =
  let with_ne = ref 0 and without = ref 0 and aborted = ref 0 in
  for _ = 1 to trials do
    let instance = random_budget_instance rng ~n ~max_budget in
    match Bbc.Exhaustive.has_equilibrium ~objective ~max_profiles:2_000_000 instance with
    | Some true -> incr with_ne
    | Some false -> incr without
    | None -> incr aborted
  done;
  [
    Printf.sprintf "exhaustive n=%d b<=%d (%s)" n max_budget
      (Bbc.Objective.to_string objective);
    Table.cell_int trials;
    Table.cell_int !with_ne;
    Table.cell_int !without;
    Table.cell_int !aborted;
  ]

let dynamics_row rng ~objective ~n ~max_budget ~trials =
  let converged = ref 0 and other = ref 0 in
  for _ = 1 to trials do
    let instance = random_budget_instance rng ~n ~max_budget in
    let start = Bbc.Config.empty n in
    match
      Bbc.Dynamics.run ~objective ~scheduler:Bbc.Dynamics.Round_robin
        ~max_rounds:(8 * n) instance start
    with
    | Bbc.Dynamics.Converged (c, _) when Bbc.Stability.is_stable ~objective instance c ->
        incr converged
    | _ -> incr other
  done;
  [
    Printf.sprintf "dynamics n=%d b<=%d (%s)" n max_budget
      (Bbc.Objective.to_string objective);
    Table.cell_int trials;
    Table.cell_int !converged;
    "-";
    Table.cell_int !other;
  ]

let run ?(quick = true) fmt =
  Table.section fmt "E13  Footnote-2 conjecture: budget-only non-uniformity keeps pure NE";
  let t =
    Table.create ~title:"Random games, non-uniform only in budgets"
      ~claim:
        "paper (footnote 2): 'we conjecture that pure NE do exist in all \
         cases where only the budgets are non-uniform'"
      ~columns:[ "workload"; "trials"; "NE found"; "no NE"; "other" ]
  in
  let rng = SM.create 1313 in
  let sum = Bbc.Objective.Sum and max_o = Bbc.Objective.Max in
  Table.add_row t (exhaustive_row rng ~objective:sum ~n:4 ~max_budget:3 ~trials:(if quick then 40 else 150));
  Table.add_row t (exhaustive_row rng ~objective:sum ~n:5 ~max_budget:2 ~trials:(if quick then 10 else 40));
  Table.add_row t (exhaustive_row rng ~objective:max_o ~n:4 ~max_budget:3 ~trials:(if quick then 40 else 150));
  Table.add_row t (dynamics_row rng ~objective:sum ~n:12 ~max_budget:4 ~trials:(if quick then 15 else 50));
  Table.add_row t (dynamics_row rng ~objective:sum ~n:20 ~max_budget:5 ~trials:(if quick then 5 else 20));
  Table.render fmt t;
  Table.note fmt
    "a 'no NE' entry above 0 would refute the conjecture; 'other' counts \
     non-converged dynamics runs (not counterexamples — walks may cycle \
     even when equilibria exist)"
