(** E6 — Lemma 7: diameters and radii of verified stable graphs against the O(sqrt(n log_k n)) and O(sqrt n) bounds. *)

val run : ?quick:bool -> Format.formatter -> unit
(** Print the experiment's tables to the formatter.  [quick] (default
    [true]) selects the fast parameter set; [false] runs the larger
    sweeps reported in EXPERIMENTS.md's full-mode numbers. *)
