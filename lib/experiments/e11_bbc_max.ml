(* E11 — Section 5 (BBC-max): Theorem 7 (no pure NE with non-uniform
   preferences), Theorem 8 (PoA Omega(n/(k log_k n)) via the Figure-6
   construction), Theorem 9 (PoS Theta(1): the l = 0 willows are stable
   under Max too). *)

(* Theorem 7 status.  Unlike the Sum objective — where a 5-node no-NE
   core exists and is certified in E1 — systematic machine search has
   not produced a small BBC-max game without a pure NE (see
   EXPERIMENTS.md for the tally: complete enumeration of every (4,1)
   game with small weights, tens of thousands of exhaustively-checked
   random games at n <= 6, and millions of structured instances at
   n <= 16 with provably-forced relay nodes).  That evidence is
   consistent with the theorem's n >= 16 hypothesis being essential and
   its Figure-5 witness relying on structure the paper's text does not
   pin down.  We therefore report measured equilibrium-existence rates
   instead of a fabricated gadget. *)
let theorem7_rows ~quick =
  let rng = Bbc_prng.Splitmix.create 2468 in
  let sample ~n ~tries =
    let with_ne = ref 0 and without = ref 0 in
    for _ = 1 to tries do
      let weight =
        Array.init n (fun u ->
            Array.init n (fun v ->
                if u = v then 0
                else if Bbc_prng.Splitmix.float rng 1.0 < 0.55 then 0
                else 1 + Bbc_prng.Splitmix.int rng 3))
      in
      let instance = Bbc.Instance.of_weights ~k:1 weight in
      match Bbc.Exhaustive.has_equilibrium ~objective:Bbc.Objective.Max instance with
      | Some true -> incr with_ne
      | Some false -> incr without
      | None -> ()
    done;
    [
      Printf.sprintf "random sparse n=%d (full space)" n;
      Table.cell_int tries;
      Table.cell_int !with_ne;
      Table.cell_int !without;
    ]
  in
  [
    sample ~n:4 ~tries:(if quick then 300 else 2000);
    sample ~n:5 ~tries:(if quick then 100 else 500);
  ]

let theorem8_rows ~quick =
  let cases = if quick then [ (2, 6); (3, 4); (3, 8); (4, 5) ] else [ (2, 6); (2, 12); (3, 4); (3, 8); (3, 12); (4, 5); (4, 8) ] in
  List.map
    (fun (k, l) ->
      match Bbc.Constructions.max_anarchy_equilibrium ~k ~l with
      | Some (instance, config) ->
          let n = Bbc.Instance.n instance in
          let social = Bbc.Eval.social_cost ~objective:Max instance config in
          let lb = Bbc.Metrics.max_social_cost_lower_bound ~n ~k in
          let theory =
            float_of_int n
            /. (float_of_int k *. float_of_int (max 1 (Bbc.Metrics.floor_log ~base:k n)))
          in
          [
            Printf.sprintf "fig-6 (k=%d, l=%d)" k l;
            Table.cell_int n;
            "yes";
            Table.cell_int social;
            Table.cell_int lb;
            Table.cell_float (float_of_int social /. float_of_int lb);
            Table.cell_float theory;
          ]
      | None ->
          [ Printf.sprintf "fig-6 (k=%d, l=%d)" k l; "-"; "no"; "-"; "-"; "-"; "-" ])
    cases

let theorem9_rows ~quick =
  let params =
    if quick then Bbc.Willows.[ { k = 2; h = 2; l = 0 }; { k = 2; h = 3; l = 0 } ]
    else
      Bbc.Willows.[ { k = 2; h = 2; l = 0 }; { k = 2; h = 3; l = 0 }; { k = 3; h = 2; l = 0 }; { k = 2; h = 4; l = 0 } ]
  in
  List.map
    (fun p ->
      let open Bbc.Willows in
      let instance, config = build p in
      let n = size p in
      let stable = Bbc.Stability.is_stable ~objective:Max instance config in
      let social = Bbc.Eval.social_cost ~objective:Max instance config in
      let lb = Bbc.Metrics.max_social_cost_lower_bound ~n ~k:p.k in
      [
        Format.asprintf "%a" pp_params p;
        Table.cell_int n;
        Table.cell_bool stable;
        Table.cell_int social;
        Table.cell_int lb;
        Table.cell_float (float_of_int social /. float_of_int lb);
      ])
    params

let run ?(quick = true) fmt =
  Table.section fmt "E11  Section 5: the BBC-max variant (Theorems 7, 8, 9)";
  let t7 =
    Table.create
      ~title:"Theorem 7: searching for max-objective games without pure NE"
      ~claim:
        "Thm 7: for n >= 16, k >= 1 some non-uniform BBC-max game has no \
         pure NE.  Measured: equilibria exist in every one of millions of \
         small instances searched (see EXPERIMENTS.md) — the max \
         objective resists the phenomenon far more than Sum, where a \
         5-node no-NE core exists (E1)"
      ~columns:[ "workload"; "games"; "with pure NE"; "without" ]
  in
  Table.add_rows t7 (theorem7_rows ~quick);
  Table.render fmt t7;
  Table.note fmt
    "every game above is checked by complete enumeration of its full \
     profile space; 'without' has never been hit";
  let t8 =
    Table.create ~title:"Theorem 8 / Figure 6: high-anarchy Max equilibria"
      ~claim:
        "Thm 8: the PoA of uniform BBC-max games is Omega(n/(k log_k n)); \
         the witness is a verified NE of social max-cost Omega(n^2/k)"
      ~columns:[ "construction"; "n"; "stable"; "social"; "LB"; "ratio"; "theory n/(k log n)" ]
  in
  Table.add_rows t8 (theorem8_rows ~quick);
  Table.render fmt t8;
  let t9 =
    Table.create ~title:"Theorem 9: price of stability Theta(1) under Max"
      ~claim:
        "Thm 9: the l = 0 willows are stable under the max objective and \
         within a constant of the optimum"
      ~columns:[ "params"; "n"; "stable(Max)"; "social"; "LB"; "ratio" ]
  in
  Table.add_rows t9 (theorem9_rows ~quick);
  Table.render fmt t9
