(** E14 — extension: resilience of verified equilibria under churn (random strategy wipes), measuring re-stabilization and cost drift. *)

val run : ?quick:bool -> Format.formatter -> unit
(** Print the experiment's tables to the formatter.  [quick] (default
    [true]) selects the fast parameter set; [false] runs the larger
    sweeps reported in EXPERIMENTS.md's full-mode numbers. *)
