(** E2 — Theorem 2 / Figure 2: execute the 3SAT reduction in both directions (satisfiable -> verified equilibrium that decodes back; unsatisfiable -> exhaustive no-NE), including the uniform-budget k >= 2 extension. *)

val run : ?quick:bool -> Format.formatter -> unit
(** Print the experiment's tables to the formatter.  [quick] (default
    [true]) selects the fast parameter set; [false] runs the larger
    sweeps reported in EXPERIMENTS.md's full-mode numbers. *)
