(** E1 — Theorem 1 / Figure 1: certify that non-uniform preferences can eliminate all pure Nash equilibria (unconditional 5-node core + padding to the paper's n = 11). *)

val run : ?quick:bool -> Format.formatter -> unit
(** Print the experiment's tables to the formatter.  [quick] (default
    [true]) selects the fast parameter set; [false] runs the larger
    sweeps reported in EXPERIMENTS.md's full-mode numbers. *)
