(* E7 — Theorem 5 / Corollary 1 / Lemma 8: no Abelian Cayley graph with
   2 <= k and large enough n is stable.  For each family we report the
   explicit Theorem-5 deviation's exact improvement and (where feasible)
   the full stability verdict for the identity node, plus the
   near-complete regime k > (n-2)/2 where stability returns. *)

module Cayley = Bbc_group.Cayley

let row name c ~expect_stable =
  let n = Bbc_group.Abelian.order c.Cayley.group in
  let k = Cayley.degree c in
  let dev = Bbc.Cayley_game.best_theorem5_deviation c in
  let stable = Bbc.Cayley_game.is_stable c in
  [
    name;
    Table.cell_int n;
    Table.cell_int k;
    (match dev with
    | Some d -> Printf.sprintf "-%d" (d.old_cost - d.new_cost)
    | None -> "none");
    Table.cell_bool stable;
    Table.cell_bool expect_stable;
  ]

let run ?(quick = true) fmt =
  Table.section fmt "E7  Theorem 5: Abelian Cayley graphs are not stable";
  let t =
    Table.create ~title:"Cayley families under the (n,k)-uniform game"
      ~claim:
        "Thm 5: for k >= 2 and n >= c 2^k no Abelian Cayley graph is \
         stable (swap a_i for a_i + a_i); Cor 1: hypercubes unstable for \
         k > 4; Lemma 8: stable again once k > (n-2)/2; k = 1 directed \
         cycle stable"
      ~columns:[ "family"; "n"; "k"; "thm-5 gain"; "stable"; "theory" ]
  in
  let rng = Bbc_prng.Splitmix.create 7 in
  let rows =
    [
      ("directed cycle Z_16", Cayley.circulant ~n:16 ~offsets:[ 1 ], true);
      ("circulant Z_16 {1,2}", Cayley.circulant ~n:16 ~offsets:[ 1; 2 ], false);
      ("circulant Z_24 {1,5}", Cayley.circulant ~n:24 ~offsets:[ 1; 5 ], false);
      ("circulant Z_40 {1,7,19}", Cayley.circulant ~n:40 ~offsets:[ 1; 7; 19 ], false);
      ("random circulant Z_36 k=3", Cayley.random_circulant rng ~n:36 ~k:3, false);
      ("torus 5x5", Cayley.torus 5 5, false);
      ("torus 6x6", Cayley.torus 6 6, false);
      ("hypercube Q4", Cayley.hypercube 4, false);
      ("hypercube Q5", Cayley.hypercube 5, false);
      ("near-complete Z_9 k=4", Cayley.circulant ~n:9 ~offsets:[ 1; 2; 3; 4 ], true);
      ("complete Z_8", Cayley.circulant ~n:8 ~offsets:[ 1; 2; 3; 4; 5; 6; 7 ], true);
      ("small circulant Z_5 {1,2}", Cayley.circulant ~n:5 ~offsets:[ 1; 2 ], true);
    ]
    @
    if quick then []
    else
      [
        ("circulant Z_64 {1,9}", Cayley.circulant ~n:64 ~offsets:[ 1; 9 ], false);
        ("torus 8x8", Cayley.torus 8 8, false);
        ("random circulant Z_60 k=4", Cayley.random_circulant rng ~n:60 ~k:4, false);
      ]
  in
  List.iter (fun (name, c, expect) -> Table.add_row t (row name c ~expect_stable:expect)) rows;
  Table.render fmt t;
  Table.note fmt
    "thm-5 gain = exact cost improvement for the identity node from \
     replacing its a_i-link by a_i+a_i (none for hypercubes, where \
     a+a = 0; Corollary 1 instability there comes from the full best \
     response).  'theory' marks the paper's predicted verdict; small \
     instances below the n >= c 2^k threshold may legitimately be stable"
