(** E10 — Section 4.3: max-cost-first walk experiments, plus the exact-best-response vs first-improvement step-policy ablation. *)

val run : ?quick:bool -> Format.formatter -> unit
(** Print the experiment's tables to the formatter.  [quick] (default
    [true]) selects the fast parameter set; [false] runs the larger
    sweeps reported in EXPERIMENTS.md's full-mode numbers. *)
