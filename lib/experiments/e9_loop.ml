(* E9 — Figure 4: a (7,2)-uniform configuration on which the round-robin
   best-response walk loops, proving uniform BBC games are not ordinal
   potential games.  We print the full trace of one period. *)

let run ?(quick = true) fmt =
  ignore quick;
  Table.section fmt "E9  Figure 4: a best-response loop in the (7,2)-uniform game";
  let inst, config = Bbc.Constructions.best_response_loop () in
  let costs = Bbc.Eval.all_costs inst config in
  Format.fprintf fmt "  initial configuration (node -> links, cost):@.";
  for v = 0 to 6 do
    Format.fprintf fmt "    %d -> [%s]  (%d)@." v
      (String.concat " " (List.map string_of_int (Bbc.Config.targets config v)))
      costs.(v)
  done;
  let t =
    Table.create ~title:"Round-robin walk trace"
      ~claim:
        "Fig 4: after 6 deviations (three nodes moving twice) the walk \
         returns to the starting configuration — uniform BBC games are \
         not ordinal potential games"
      ~columns:[ "step"; "round"; "node"; "rewires to"; "new cost" ]
  in
  let outcome =
    Bbc.Dynamics.run
      ~on_step:(fun s ->
        if s.moved then
          Table.add_row t
            [
              Table.cell_int s.index;
              Table.cell_int s.round;
              Table.cell_int s.node;
              "[" ^ String.concat " " (List.map string_of_int s.strategy) ^ "]";
              Table.cell_int s.cost_after;
            ])
      ~scheduler:Bbc.Dynamics.Round_robin ~max_rounds:20 inst config
  in
  Table.render fmt t;
  match outcome with
  | Bbc.Dynamics.Cycled { period; config = back; _ } ->
      Format.fprintf fmt
        "  cycle detected: period %d rounds; back at the %s configuration@."
        period
        (if Bbc.Config.equal back config then "initial" else "intermediate")
  | o -> Format.fprintf fmt "  UNEXPECTED: %a@." Bbc.Dynamics.pp_outcome o
