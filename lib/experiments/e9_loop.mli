(** E9 — Figure 4: trace the (7,2)-uniform best-response loop (uniform BBC games are not ordinal potential games). *)

val run : ?quick:bool -> Format.formatter -> unit
(** Print the experiment's tables to the formatter.  [quick] (default
    [true]) selects the fast parameter set; [false] runs the larger
    sweeps reported in EXPERIMENTS.md's full-mode numbers. *)
