(** E8 — Theorem 6: steps to strong connectivity from random starts and from the adversarially-scheduled ring+path Omega(n^2) family. *)

val run : ?quick:bool -> Format.formatter -> unit
(** Print the experiment's tables to the formatter.  [quick] (default
    [true]) selects the fast parameter set; [false] runs the larger
    sweeps reported in EXPERIMENTS.md's full-mode numbers. *)
