(* E8 — Theorem 6: round-robin best-response walks reach a strongly
   connected configuration within n^2 steps; the ring+path instance
   under the adversarial schedule needs Omega(n^2) of them. *)

module D = Bbc.Dynamics

let random_start_row rng ~n ~k ~trials =
  let inst = Bbc.Instance.uniform ~n ~k in
  let worst = ref 0 and worst_dev = ref 0 in
  for _ = 1 to trials do
    let g = Bbc_graph.Generators.random_k_out rng ~n ~k in
    match
      D.first_strong_connectivity ~scheduler:D.Round_robin ~max_rounds:(2 * n)
        inst (Bbc.Config.of_graph g)
    with
    | Some (stats, _) ->
        if stats.steps > !worst then worst := stats.steps;
        if stats.deviations > !worst_dev then worst_dev := stats.deviations
    | None -> worst := max_int
  done;
  [
    Printf.sprintf "random (n=%d, k=%d)" n k;
    Table.cell_int trials;
    (if !worst = max_int then "never!" else Table.cell_int !worst);
    Table.cell_int !worst_dev;
    Table.cell_int (n * n);
    Table.cell_bool (!worst <= n * n);
  ]

let adversarial_order ~ring ~path =
  Array.of_list (List.init path (fun j -> ring + j) @ List.init ring Fun.id)

let ring_path_row ~ring ~path =
  let inst, config = Bbc.Constructions.ring_with_path ~ring ~path in
  let n = ring + path in
  match
    D.first_strong_connectivity
      ~scheduler:(D.Fixed_order (adversarial_order ~ring ~path))
      ~max_rounds:(4 * n) inst config
  with
  | Some (stats, _) ->
      [
        Printf.sprintf "ring+path (r=%d, p=%d)" ring path;
        "1";
        Table.cell_int stats.steps;
        Table.cell_int stats.deviations;
        Table.cell_int (n * n);
        Table.cell_bool (stats.steps <= n * n);
      ]
  | None ->
      [ Printf.sprintf "ring+path (r=%d, p=%d)" ring path; "1"; "never!"; "-"; "-"; "no" ]

let run ?(quick = true) fmt =
  Table.section fmt "E8  Theorem 6: strong connectivity within n^2 steps";
  let t =
    Table.create ~title:"Steps until the realized graph is strongly connected"
      ~claim:
        "Thm 6: any round-robin walk is strongly connected within n^2 \
         steps; the ring+path instance under the adversarial order uses \
         Omega(n^2) of them"
      ~columns:[ "workload"; "trials"; "worst steps"; "deviations"; "n^2"; "within" ]
  in
  let rng = Bbc_prng.Splitmix.create 88 in
  let sizes = if quick then [ (10, 1); (14, 1); (12, 2) ] else [ (10, 1); (14, 1); (20, 1); (12, 2); (20, 2); (30, 2) ] in
  List.iter
    (fun (n, k) -> Table.add_row t (random_start_row rng ~n ~k ~trials:(if quick then 5 else 15)))
    sizes;
  List.iter
    (fun (ring, path) -> Table.add_row t (ring_path_row ~ring ~path))
    (if quick then [ (8, 4); (16, 8); (24, 12) ] else [ (8, 4); (16, 8); (24, 12); (32, 16); (48, 24) ]);
  Table.render fmt t;
  Table.note fmt
    "for ring+path the steps-to-connectivity roughly quadruple as n \
     doubles — the Omega(n^2) family (the ring nodes ahead of the join \
     move one per round)"
