(* E14 (extension): resilience of equilibria under churn.

   The paper's P2P motivation implies nodes keep resetting (peers leave,
   rejoin with empty neighbor tables).  Starting from a verified stable
   graph, we wipe random nodes' strategies and measure how many
   best-response rounds the network needs to re-stabilize, and how far
   the re-stabilized network drifts in social cost. *)

module SM = Bbc_prng.Splitmix
module D = Bbc.Dynamics

let wipe rng config ~count =
  let n = Bbc.Config.n config in
  let victims = SM.sample_without_replacement rng count n in
  List.fold_left (fun c v -> Bbc.Config.with_strategy c v []) config victims

let churn_row rng ~name ~instance ~config ~wiped ~trials =
  let original_cost = Bbc.Eval.social_cost instance config in
  let rounds_acc = ref 0 and worst_rounds = ref 0 in
  let drift_acc = ref 0.0 in
  let recovered = ref 0 in
  for _ = 1 to trials do
    let perturbed = wipe rng config ~count:wiped in
    match
      D.run ~scheduler:D.Round_robin
        ~max_rounds:(8 * Bbc.Instance.n instance)
        instance perturbed
    with
    | D.Converged (final, stats) ->
        incr recovered;
        rounds_acc := !rounds_acc + stats.rounds;
        if stats.rounds > !worst_rounds then worst_rounds := stats.rounds;
        let c = Bbc.Eval.social_cost instance final in
        drift_acc := !drift_acc +. (float_of_int c /. float_of_int original_cost)
    | D.Cycled _ | D.Exhausted _ -> ()
  done;
  [
    name;
    Table.cell_int wiped;
    Printf.sprintf "%d/%d" !recovered trials;
    (if !recovered = 0 then "-"
     else Table.cell_float (float_of_int !rounds_acc /. float_of_int !recovered));
    (if !recovered = 0 then "-" else Table.cell_int !worst_rounds);
    (if !recovered = 0 then "-"
     else Table.cell_float ~decimals:3 (!drift_acc /. float_of_int !recovered));
  ]

let run ?(quick = true) fmt =
  Table.section fmt "E14  Extension: equilibrium resilience under churn";
  let t =
    Table.create ~title:"Recovery after wiping random nodes' strategies"
      ~claim:
        "extension of the P2P motivation: stable graphs re-stabilize \
         after node resets; drift measures the re-stabilized social cost \
         relative to the original equilibrium"
      ~columns:[ "equilibrium"; "wiped"; "recovered"; "avg rounds"; "worst"; "cost drift" ]
  in
  let rng = SM.create 77 in
  let willows p =
    let instance, config = Bbc.Willows.build p in
    (Format.asprintf "%a" Bbc.Willows.pp_params p, instance, config)
  in
  let cases =
    if quick then
      [ (willows { k = 2; h = 2; l = 0 }, [ 1; 3 ]); (willows { k = 2; h = 2; l = 1 }, [ 1; 4 ]) ]
    else
      [
        (willows { k = 2; h = 2; l = 0 }, [ 1; 3; 6 ]);
        (willows { k = 2; h = 2; l = 1 }, [ 1; 4; 8 ]);
        (willows { k = 2; h = 3; l = 0 }, [ 1; 5; 10 ]);
        (willows { k = 3; h = 2; l = 0 }, [ 1; 6 ]);
      ]
  in
  let trials = if quick then 5 else 15 in
  List.iter
    (fun ((name, instance, config), wipe_counts) ->
      List.iter
        (fun wiped -> Table.add_row t (churn_row rng ~name ~instance ~config ~wiped ~trials))
        wipe_counts)
    cases;
  (* A ring under churn: the minimal k = 1 equilibrium is fragile in a
     different way — a single wipe disconnects it, but recovery is fast. *)
  let n = 12 in
  let ring_inst = Bbc.Instance.uniform ~n ~k:1 in
  let ring = Bbc.Config.of_graph (Bbc_graph.Generators.directed_ring n) in
  Table.add_row t
    (churn_row rng ~name:"(12,1) directed ring" ~instance:ring_inst ~config:ring
       ~wiped:1 ~trials);
  Table.render fmt t;
  Table.note fmt
    "all walks restart from the wiped profile with round-robin \
     scheduling; 'recovered' counts walks that converged to a pure NE \
     within the round budget.  Non-recovered walks CYCLE: the willows \
     equilibria sit next to the best-response loops of Figure 4, so \
     churned k>=2 networks often never re-stabilize — the k=1 ring, by \
     contrast, recovers in ~3 rounds every time"
