(** E5 — Theorem 4: the price-of-anarchy lower-bound family (max-tail willows), measured cost ratios against the sqrt(n/k)/log_k n shape. *)

val run : ?quick:bool -> Format.formatter -> unit
(** Print the experiment's tables to the formatter.  [quick] (default
    [true]) selects the fast parameter set; [false] runs the larger
    sweeps reported in EXPERIMENTS.md's full-mode numbers. *)
