(** E11 — Section 5: the BBC-max variant — the Theorem-7 no-NE search (negative finding), Theorem-8 high-anarchy equilibria, Theorem-9 PoS. *)

val run : ?quick:bool -> Format.formatter -> unit
(** Print the experiment's tables to the formatter.  [quick] (default
    [true]) selects the fast parameter set; [false] runs the larger
    sweeps reported in EXPERIMENTS.md's full-mode numbers. *)
