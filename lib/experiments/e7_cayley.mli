(** E7 — Theorem 5 / Corollary 1 / Lemma 8: Abelian Cayley instability, with the exact a_i -> a_i + a_i deviation payoff per family. *)

val run : ?quick:bool -> Format.formatter -> unit
(** Print the experiment's tables to the formatter.  [quick] (default
    [true]) selects the fast parameter set; [false] runs the larger
    sweeps reported in EXPERIMENTS.md's full-mode numbers. *)
