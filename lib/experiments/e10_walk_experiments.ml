(* E10 — Section 4.3's experimental observations:
   (a) max-cost-first walks do not always converge from arbitrary starts
       (we exhibit cycling starts), but
   (b) from the empty graph they are observed to converge. *)

module D = Bbc.Dynamics

let from_empty_row ~n ~k =
  let inst = Bbc.Instance.uniform ~n ~k in
  match
    D.run ~scheduler:D.Max_cost_first ~max_rounds:(20 * n * n) inst (Bbc.Config.empty n)
  with
  | D.Converged (c, stats) ->
      [
        Printf.sprintf "(%d,%d) from empty" n k;
        "converged";
        Table.cell_int stats.steps;
        Table.cell_bool (Bbc.Stability.is_stable inst c);
      ]
  | D.Cycled { stats; _ } ->
      [ Printf.sprintf "(%d,%d) from empty" n k; "cycled"; Table.cell_int stats.steps; "-" ]
  | D.Exhausted (_, stats) ->
      [ Printf.sprintf "(%d,%d) from empty" n k; "exhausted"; Table.cell_int stats.steps; "-" ]

let random_start_stats rng ~n ~k ~trials =
  let inst = Bbc.Instance.uniform ~n ~k in
  let converged = ref 0 and cycled = ref 0 and exhausted = ref 0 in
  for _ = 1 to trials do
    let g = Bbc_graph.Generators.random_k_out rng ~n ~k in
    match D.run ~scheduler:D.Max_cost_first ~max_rounds:(20 * n * n) inst (Bbc.Config.of_graph g) with
    | D.Converged _ -> incr converged
    | D.Cycled _ -> incr cycled
    | D.Exhausted _ -> incr exhausted
  done;
  [
    Printf.sprintf "(%d,%d) random starts" n k;
    Printf.sprintf "%d conv / %d cyc / %d exh" !converged !cycled !exhausted;
    Table.cell_int trials;
    "-";
  ]

(* Ablation: exact-best-response vs first-improvement steps. *)
let policy_comparison rng ~n ~k ~trials =
  let inst = Bbc.Instance.uniform ~n ~k in
  let stats policy =
    let conv = ref 0 and rounds = ref 0 in
    let r = Bbc_prng.Splitmix.copy rng in
    for _ = 1 to trials do
      let g = Bbc_graph.Generators.random_k_out r ~n ~k in
      match D.run ~policy ~scheduler:D.Round_robin ~max_rounds:(20 * n) inst (Bbc.Config.of_graph g) with
      | D.Converged (_, s) ->
          incr conv;
          rounds := !rounds + s.rounds
      | _ -> ()
    done;
    (!conv, if !conv = 0 then 0.0 else float_of_int !rounds /. float_of_int !conv)
  in
  let c_exact, r_exact = stats D.Exact_best_response in
  let c_first, r_first = stats D.First_improvement in
  [
    Printf.sprintf "(%d,%d) exact-BR vs first-improvement" n k;
    Printf.sprintf "%d vs %d conv" c_exact c_first;
    Printf.sprintf "%.1f vs %.1f avg rounds" r_exact r_first;
    "-";
  ]

let run ?(quick = true) fmt =
  Table.section fmt "E10  Section 4.3: max-cost-first walk experiments";
  let t =
    Table.create ~title:"Adaptive (max-cost-first) best-response walks"
      ~claim:
        "paper: 'max-cost-first does not always converge ... but starting \
         from an empty graph it does seem to converge'"
      ~columns:[ "workload"; "outcome"; "steps/trials"; "NE verified" ]
  in
  let empty_cases = if quick then [ (6, 1); (8, 1); (7, 2); (10, 2) ] else [ (6, 1); (8, 1); (12, 1); (7, 2); (10, 2); (14, 2); (12, 3) ] in
  List.iter (fun (n, k) -> Table.add_row t (from_empty_row ~n ~k)) empty_cases;
  let rng = Bbc_prng.Splitmix.create 404 in
  let rand_cases = if quick then [ (7, 2) ] else [ (7, 2); (9, 2); (8, 1) ] in
  List.iter
    (fun (n, k) -> Table.add_row t (random_start_stats rng ~n ~k ~trials:(if quick then 10 else 30)))
    rand_cases;
  let rng2 = Bbc_prng.Splitmix.create 505 in
  List.iter
    (fun (n, k) -> Table.add_row t (policy_comparison rng2 ~n ~k ~trials:(if quick then 8 else 25)))
    (if quick then [ (8, 1); (8, 2) ] else [ (8, 1); (8, 2); (12, 2); (16, 2) ]);
  (* The Figure-4 loop also cycles under max-cost-first? Report it. *)
  let inst, config = Bbc.Constructions.best_response_loop () in
  (match D.run ~scheduler:D.Max_cost_first ~max_rounds:5000 inst config with
  | D.Converged (_, stats) ->
      Table.add_row t [ "fig-4 start, max-cost-first"; "converged"; Table.cell_int stats.steps; "yes" ]
  | D.Cycled { stats; _ } ->
      Table.add_row t [ "fig-4 start, max-cost-first"; "cycled"; Table.cell_int stats.steps; "-" ]
  | D.Exhausted _ -> Table.add_row t [ "fig-4 start, max-cost-first"; "exhausted"; "-"; "-" ]);
  Table.render fmt t
