(* E4 — Theorem 4 / Lemma 6 / Figure 3: Forest-of-Willows graphs are pure
   Nash equilibria across the (k, h, l) spectrum, they are "fair"
   (Lemma 1), and the l = 0 end sits within a constant of the social
   optimum (price of stability Theta(1)). *)

let row p =
  let open Bbc.Willows in
  let instance, config = build p in
  let n = size p in
  let stable = Bbc.Stability.is_stable instance config in
  let ratio = Bbc.Metrics.anarchy_ratio instance config in
  let fairness = Bbc.Metrics.fairness instance config in
  let lemma1 = Bbc.Metrics.lemma1_ratio_bound ~n ~k:p.k in
  [
    Format.asprintf "%a" pp_params p;
    Table.cell_int n;
    Table.cell_bool (satisfies_paper_restriction p);
    Table.cell_bool stable;
    Table.cell_float ratio;
    Table.cell_float fairness.ratio;
    Table.cell_float lemma1;
  ]

let run ?(quick = true) fmt =
  Table.section fmt "E4  Lemma 6 + Figure 3: Forest of Willows stability and fairness";
  let t =
    Table.create ~title:"Stability verification across the spectrum"
      ~claim:
        "Lemma 6: Forest-of-Willows graphs are stable; Lemma 1: in stable \
         graphs all node costs are within ~(2 + 1/k) of each other; \
         Thm 4: price of stability Theta(1) (the l = 0 graphs)"
      ~columns:
        [ "params"; "n"; "restriction"; "stable"; "cost/LB"; "fairness"; "lemma-1 bound" ]
  in
  let params =
    if quick then
      Bbc.Willows.
        [
          { k = 2; h = 1; l = 0 };
          { k = 2; h = 2; l = 0 };
          { k = 2; h = 2; l = 1 };
          { k = 2; h = 3; l = 0 };
          { k = 2; h = 3; l = 1 };
          { k = 2; h = 3; l = 2 };
          { k = 3; h = 2; l = 0 };
        ]
    else
      Bbc.Willows.
        [
          { k = 2; h = 1; l = 0 };
          { k = 2; h = 2; l = 0 };
          { k = 2; h = 2; l = 1 };
          { k = 2; h = 3; l = 0 };
          { k = 2; h = 3; l = 1 };
          { k = 2; h = 3; l = 2 };
          { k = 2; h = 3; l = 3 };
          { k = 2; h = 4; l = 0 };
          { k = 2; h = 4; l = 2 };
          { k = 3; h = 2; l = 0 };
          { k = 3; h = 2; l = 1 };
          { k = 4; h = 2; l = 0 };
        ]
  in
  List.iter (fun p -> Table.add_row t (row p)) params;
  Table.render fmt t;
  Table.note fmt
    "cost/LB compares social cost against the degree-k lower bound; at \
     l = 0 it stays Theta(1) (price of stability); fairness = max node \
     cost / min node cost, to compare against the Lemma-1 bound"
