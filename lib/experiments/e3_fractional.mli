(** E3 — Theorem 3: fractional games reach (approximate) equilibria by better-response descent, including on the fractionalized no-NE core. *)

val run : ?quick:bool -> Format.formatter -> unit
(** Print the experiment's tables to the formatter.  [quick] (default
    [true]) selects the fast parameter set; [false] runs the larger
    sweeps reported in EXPERIMENTS.md's full-mode numbers. *)
