(* E3 — Theorem 3: fractional BBC games always have a pure NE.  The
   computational witness: better-response descent reaches a profile whose
   stability gap (best discovered improvement) is ~0, including on the
   fractionalization of the integral no-NE core — the sharpest contrast
   with Theorem 1. *)

let row name instance profile ~max_sweeps =
  let initial_gap = Bbc.Fractional.stability_gap instance profile in
  let final, sweeps = Bbc.Fractional.improve_until ~max_sweeps instance profile in
  let final_gap = Bbc.Fractional.stability_gap instance final in
  [
    name;
    Table.cell_int (Bbc.Instance.n instance);
    Table.cell_float ~decimals:3 initial_gap;
    Table.cell_int sweeps;
    Table.cell_float ~decimals:5 final_gap;
    Table.cell_bool (Bbc.Fractional.feasible instance final);
  ]

let run ?(quick = true) fmt =
  Table.section fmt "E3  Theorem 3: fractional BBC games reach equilibrium";
  let t =
    Table.create ~title:"Better-response descent to eps-equilibria"
      ~claim:
        "Thm 3: every fractional BBC game has a pure NE (existence via \
         quasi-concavity); witnessed here by descent reaching ~zero \
         stability gap"
      ~columns:[ "instance"; "n"; "initial gap"; "sweeps"; "final gap"; "feasible" ]
  in
  let core = Bbc.Gadget.core () in
  Table.add_row t
    (row "no-NE core (fractionalized)" core (Bbc.Fractional.uniform_profile core)
       ~max_sweeps:60);
  let uni = Bbc.Instance.uniform ~n:5 ~k:1 in
  Table.add_row t
    (row "(5,1)-uniform, uniform start" uni (Bbc.Fractional.uniform_profile uni)
       ~max_sweeps:60);
  let rng = Bbc_prng.Splitmix.create 33 in
  let trials = if quick then 2 else 5 in
  for i = 1 to trials do
    let n = 5 in
    let weight =
      Array.init n (fun u ->
          Array.init n (fun v ->
              if u = v then 0 else Bbc_prng.Splitmix.int rng 4))
    in
    let inst = Bbc.Instance.of_weights ~k:1 weight in
    Table.add_row t
      (row
         (Printf.sprintf "random non-uniform #%d" i)
         inst
         (Bbc.Fractional.uniform_profile inst)
         ~max_sweeps:60)
  done;
  Table.render fmt t;
  Table.note fmt
    "gaps are measured against the searched deviation set (pure \
     strategies, uniform spread, pairwise budget transfers)"
