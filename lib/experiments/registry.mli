(** The experiment registry: one entry per reproduced figure/claim (see
    DESIGN.md's per-experiment index). *)

type entry = {
  id : string;  (** "e1" .. "e12". *)
  title : string;
  run : ?quick:bool -> Format.formatter -> unit;
}

val all : entry list

val find : string -> entry option
(** Lookup by id (case-insensitive). *)

val run_entry : ?quick:bool -> Format.formatter -> entry -> unit
(** Run one experiment inside a [Bbc_obs] span named ["experiment.<id>"]
    so its wall-clock time lands in the observability summary and in
    {!pp_timings}. *)

val pp_timings : Format.formatter -> unit
(** Print one timing row per experiment span recorded so far (id, title,
    run count, cumulative seconds).  Prints nothing when no experiment
    has run under observability. *)

val run_all : ?quick:bool -> Format.formatter -> unit
(** Run every experiment via {!run_entry}; when observability is enabled
    the timing rows are appended. *)
