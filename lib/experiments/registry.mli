(** The experiment registry: one entry per reproduced figure/claim (see
    DESIGN.md's per-experiment index). *)

type entry = {
  id : string;  (** "e1" .. "e12". *)
  title : string;
  run : ?quick:bool -> Format.formatter -> unit;
}

val all : entry list

val find : string -> entry option
(** Lookup by id (case-insensitive). *)

val run_all : ?quick:bool -> Format.formatter -> unit
