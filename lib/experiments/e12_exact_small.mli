(** E12 — extension: exact optima, equilibrium counts, exact PoS/PoA and ordinal-potential verdicts for small uniform games by complete enumeration. *)

val run : ?quick:bool -> Format.formatter -> unit
(** Print the experiment's tables to the formatter.  [quick] (default
    [true]) selects the fast parameter set; [false] runs the larger
    sweeps reported in EXPERIMENTS.md's full-mode numbers. *)
