(** E13 — extension: computational test of the paper's footnote-2 conjecture (budget-only non-uniformity preserves pure NE existence). *)

val run : ?quick:bool -> Format.formatter -> unit
(** Print the experiment's tables to the formatter.  [quick] (default
    [true]) selects the fast parameter set; [false] runs the larger
    sweeps reported in EXPERIMENTS.md's full-mode numbers. *)
