(** Plain-text table rendering for the experiment harness.

    Every experiment prints its results as an aligned table with a title
    and a "paper says" header line, so `bench/main.exe` output can be
    diffed against EXPERIMENTS.md. *)

type t

val create : title:string -> claim:string -> columns:string list -> t
(** [claim] is the paper's statement being reproduced (one line). *)

val add_row : t -> string list -> unit
(** Must match the column count. *)

val add_rows : t -> string list list -> unit

val render : Format.formatter -> t -> unit

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string
(** Renders as [yes]/[no]. *)

val section : Format.formatter -> string -> unit
(** Prints an experiment banner. *)

val note : Format.formatter -> string -> unit
