(** E4 — Lemma 6 / Figure 3 / Lemma 1: verify Forest-of-Willows stability across the parameter spectrum, with fairness ratios against the Lemma-1 bound and cost ratios against the degree-k lower bound. *)

val run : ?quick:bool -> Format.formatter -> unit
(** Print the experiment's tables to the formatter.  [quick] (default
    [true]) selects the fast parameter set; [false] runs the larger
    sweeps reported in EXPERIMENTS.md's full-mode numbers. *)
