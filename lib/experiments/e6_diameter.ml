(* E6 — Lemma 7: every stable (n,k)-graph has diameter
   O(sqrt(n log_k n)), and some node reaches everyone within O(sqrt n).
   Measured on the verified-stable willows spectrum. *)

let bound ~n ~k =
  sqrt (float_of_int n *. float_of_int (max 1 (Bbc.Metrics.floor_log ~base:k n)))

let row p =
  let open Bbc.Willows in
  let instance, config = build p in
  let n = size p in
  let g = Bbc.Config.to_graph instance config in
  let diameter = Option.value ~default:(-1) (Bbc_graph.Metrics.diameter g) in
  let radius = Option.value ~default:(-1) (Bbc_graph.Metrics.radius g) in
  [
    Format.asprintf "%a" pp_params p;
    Table.cell_int n;
    Table.cell_int diameter;
    Table.cell_float (bound ~n ~k:p.k);
    Table.cell_int radius;
    Table.cell_float (sqrt (float_of_int n));
  ]

let run ?(quick = true) fmt =
  Table.section fmt "E6  Lemma 7: diameter of stable graphs";
  let t =
    Table.create ~title:"Diameters across the stable willows family"
      ~claim:
        "Lemma 7: a stable (n,k)-graph has diameter O(sqrt(n log_k n)), \
         and some node is within O(sqrt n) of everyone (radius)"
      ~columns:[ "params"; "n"; "diameter"; "sqrt(n log n)"; "radius"; "sqrt(n)" ]
  in
  let params =
    if quick then
      Bbc.Willows.
        [
          { k = 2; h = 2; l = 0 };
          { k = 2; h = 3; l = 0 };
          { k = 2; h = 3; l = 2 };
          { k = 2; h = 3; l = 6 };
          { k = 3; h = 2; l = 1 };
        ]
    else
      Bbc.Willows.
        [
          { k = 2; h = 2; l = 0 };
          { k = 2; h = 3; l = 0 };
          { k = 2; h = 3; l = 2 };
          { k = 2; h = 3; l = 6 };
          { k = 2; h = 3; l = 12 };
          { k = 2; h = 4; l = 4 };
          { k = 3; h = 2; l = 1 };
          { k = 3; h = 3; l = 0 };
        ]
  in
  List.iter (fun p -> Table.add_row t (row p)) params;
  Table.render fmt t;
  Table.note fmt
    "the willows diameter is Theta(h + l), so pushing l toward its \
     admissible maximum approaches the Lemma-7 ceiling without crossing it"
