type t = {
  title : string;
  claim : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~claim ~columns = { title; claim; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row (%s): %d cells, expected %d" t.title
         (List.length row) (List.length t.columns));
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let render fmt t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w c -> max w (String.length c)) acc row)
      (List.map String.length t.columns)
      rows
  in
  let pad width s = s ^ String.make (width - String.length s) ' ' in
  let line row = String.concat "  " (List.map2 pad widths row) in
  Format.fprintf fmt "@.%s@." t.title;
  Format.fprintf fmt "  paper: %s@." t.claim;
  Format.fprintf fmt "  %s@." (line t.columns);
  Format.fprintf fmt "  %s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Format.fprintf fmt "  %s@." (line row)) rows

let cell_int = string_of_int

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_bool b = if b then "yes" else "no"

let section fmt name =
  Format.fprintf fmt "@.%s@.%s@." (String.make 72 '=') name

let note fmt s = Format.fprintf fmt "  note: %s@." s
