(* E15 (baseline comparison, paper Section 1.3): the Fabrikant et al.
   network creation game — undirected links at price alpha, no budget —
   against BBC's directed budgeted links.

   The contrast the BBC paper's introduction draws: pricing models admit
   star-like equilibria and always have pure NE in the landmark regimes,
   while the budget restriction changes both the equilibrium shapes
   (rings/willows, never stars: out-degree is capped) and existence
   itself (Theorem 1). *)

module F = Bbc_related.Fabrikant

let landmark_rows ~n =
  List.concat_map
    (fun alpha ->
      let t = F.create ~n ~alpha () in
      [
        [
          Printf.sprintf "Fabrikant n=%d alpha=%d" n alpha;
          "complete graph";
          Table.cell_bool (F.is_stable t (F.complete t));
          Table.cell_int (F.social_cost t (F.complete t));
        ];
        [
          "";
          "star";
          Table.cell_bool (F.is_stable t (F.star t));
          Table.cell_int (F.social_cost t (F.star t));
        ];
      ])
    [ 0; 1; 2; 5 ]

let dynamics_rows ~n =
  List.filter_map
    (fun alpha ->
      let t = F.create ~n ~alpha () in
      match F.run_dynamics t (F.empty t) with
      | Some (eq, rounds) ->
          Some
            [
              Printf.sprintf "Fabrikant n=%d alpha=%d, from empty" n alpha;
              Printf.sprintf "converged in %d rounds" rounds;
              Table.cell_bool (F.is_stable t eq);
              Table.cell_int (F.social_cost t eq);
            ]
      | None -> None)
    [ 1; 3 ]

let run ?(quick = true) fmt =
  Table.section fmt
    "E15  Baseline (Sec 1.3): the Fabrikant et al. network creation game";
  let t =
    Table.create ~title:"Landmark equilibria of the alpha-priced model"
      ~claim:
        "Fabrikant et al. 2003: complete graph stable for alpha <= 1, \
         star stable for alpha >= 1 — pricing admits hub equilibria and \
         pure NE across regimes, where BBC's budget cap forbids stars \
         (out-degree <= k) and can eliminate equilibria entirely (E1)"
      ~columns:[ "model"; "profile"; "stable"; "social cost" ]
  in
  let n = if quick then 7 else 9 in
  Table.add_rows t (landmark_rows ~n);
  Table.add_rows t (dynamics_rows ~n);
  (* The BBC side of the contrast at the same size. *)
  let inst = Bbc.Instance.uniform ~n ~k:1 in
  let ring = Bbc.Config.of_graph (Bbc_graph.Generators.directed_ring n) in
  Table.add_row t
    [
      Printf.sprintf "BBC (%d,1)-uniform" n;
      "directed ring";
      Table.cell_bool (Bbc.Stability.is_stable inst ring);
      Table.cell_int (Bbc.Eval.social_cost inst ring);
    ];
  let star_like =
    (* A BBC "star attempt": everyone links node 0, node 0 links node 1 —
       unstable, since the budget keeps node 0 from serving everyone. *)
    Bbc.Config.of_lists n
      (Array.init n (fun u -> if u = 0 then [ 1 ] else [ 0 ]))
  in
  Table.add_row t
    [
      "";
      "star attempt";
      Table.cell_bool (Bbc.Stability.is_stable inst star_like);
      Table.cell_int (Bbc.Eval.social_cost inst star_like);
    ];
  Table.render fmt t;
  Table.note fmt
    "same node count on both sides; Fabrikant distances are undirected \
     hops, BBC distances directed, so social costs are comparable in \
     shape, not in value"
