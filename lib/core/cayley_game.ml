module Abelian = Bbc_group.Abelian
module Cayley = Bbc_group.Cayley

type deviation = {
  generator : Abelian.element;
  old_cost : int;
  new_cost : int;
}

let to_game (c : Cayley.t) =
  let n = Abelian.order c.group in
  let k = Cayley.degree c in
  let instance = Instance.uniform ~n ~k in
  (instance, Config.of_graph c.graph)

let identity_node (c : Cayley.t) = Abelian.identity c.group

let theorem5_deviations (c : Cayley.t) =
  let instance, config = to_game c in
  let r = identity_node c in
  let old_cost = Eval.node_cost instance config r in
  List.filter_map
    (fun a ->
      let aa = Abelian.add c.group a a in
      if aa = Abelian.identity c.group || aa = a then None
      else begin
        let targets = List.map (fun b -> if b = a then aa else b) c.generators in
        (* If a+a is already a generator the swap would shrink the set;
           skip (the theorem's deviation assumes a fresh target). *)
        let sorted = List.sort_uniq compare targets in
        if List.length sorted <> List.length targets then None
        else begin
          let config' = Config.with_strategy config r sorted in
          Some { generator = a; old_cost; new_cost = Eval.node_cost instance config' r }
        end
      end)
    c.generators

let best_theorem5_deviation c =
  theorem5_deviations c
  |> List.filter (fun d -> d.new_cost < d.old_cost)
  |> List.fold_left
       (fun best d ->
         match best with
         | Some b when b.old_cost - b.new_cost >= d.old_cost - d.new_cost -> best
         | _ -> Some d)
       None

let unstable_by_theorem5 c = Option.is_some (best_theorem5_deviation c)

let is_stable c =
  let instance, config = to_game c in
  let r = identity_node c in
  Option.is_none (Best_response.improving instance config r)
