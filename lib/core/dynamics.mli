(** Best-response walks on the configuration space (paper, Section 4.3).

    In each {e step}, one node tests its stability and, if unstable,
    rewires to an exact best response.  Schedulers decide who moves:

    - [Round_robin]: fixed order [0 .. n-1] within each round (the
      scheduler of Theorem 6);
    - [Random_order seed]: a fresh uniformly-random permutation each round
      (still "each node once per round", as Theorem 6 permits);
    - [Fixed_order order]: the given permutation, fixed across rounds
      (the adversarial schedules of the paper's Omega(n^2) argument);
    - [Max_cost_first]: each step activates the unstable node with the
      largest current cost (lowest id on ties) — the adaptive walk of the
      paper's experimental remarks.

    Cycle detection compares full configurations at round boundaries
    (the schedulers above are deterministic functions of the
    configuration, except [Random_order], for which cycling is reported
    only if the same configuration recurs — a sound but weaker notion). *)

type scheduler =
  | Round_robin
  | Fixed_order of int array
  | Random_order of int
  | Max_cost_first

type move_policy =
  | Exact_best_response
      (** The paper's step: an unstable node rewires to an exact optimum. *)
  | First_improvement
      (** The node takes the first strictly improving strategy found (in
          DFS order) — the cheaper step many deployed systems use. *)
  | Sampled_best_response of { sample : int; seed : int }
      (** Large-n step: the node optimizes over [sample] candidate
          targets drawn without replacement from one walk-wide generator
          seeded with [seed] ({!Best_response.sampled}), and moves only
          on a strict improvement against its exact current cost —
          adopted deviations are always genuine.  A node may sit still
          even though an improvement exists outside its sample, so
          [Converged] means "no sampled improvement in a full pass", not
          a verified NE; the walk is replayable bit-for-bit from the
          seeds.  Runs without the incremental engine (it targets sizes
          past that engine's sweet spot). *)

type step = {
  index : int;  (** 0-based global step counter (activations). *)
  round : int;  (** 0-based round (= [index] for [Max_cost_first]). *)
  node : int;
  moved : bool;
  strategy : int list;  (** The node's strategy after the step. *)
  cost_after : int;
}

type stats = {
  rounds : int;  (** Completed rounds. *)
  steps : int;  (** Activations performed. *)
  deviations : int;  (** Activations that changed a strategy. *)
}

type outcome =
  | Converged of Config.t * stats
      (** A full pass made no change: the profile is a pure NE. *)
  | Cycled of { config : Config.t; period : int; stats : stats }
      (** The configuration at a round boundary recurred; [period] is the
          number of rounds between occurrences. *)
  | Exhausted of Config.t * stats  (** [max_rounds] reached. *)

val run :
  ?objective:Objective.t ->
  ?policy:move_policy ->
  ?on_step:(step -> unit) ->
  ?incremental:bool ->
  scheduler:scheduler ->
  max_rounds:int ->
  Instance.t ->
  Config.t ->
  outcome
(** [policy] defaults to [Exact_best_response].  [incremental] (default:
    {!Incr.enabled}) selects the evaluation engine: one {!Incr} context
    shared by every activation of the walk, or the from-scratch oracle.
    Both engines produce the same walk, step stream, and outcome. *)

val first_strong_connectivity :
  ?objective:Objective.t ->
  ?policy:move_policy ->
  ?incremental:bool ->
  scheduler:scheduler ->
  max_rounds:int ->
  Instance.t ->
  Config.t ->
  (stats * outcome) option
(** Run the walk and report the statistics at the first moment the
    realized graph becomes strongly connected ([None] if it never does
    within the walk).  Also returns the walk's final outcome.  Theorem 6:
    with round-robin scheduling this happens within [n^2] steps; Lemma 9
    guarantees it persists. *)

val final_config : outcome -> Config.t
val stats : outcome -> stats
val pp_outcome : Format.formatter -> outcome -> unit
