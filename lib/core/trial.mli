(** One Monte-Carlo work unit: a fully-specified best-response walk.

    A trial names everything {!Dynamics.run} needs — an instance
    generator with its size parameters, an initial configuration rule, a
    scheduler, a move policy, an objective, a round budget — plus one
    integer [seed] from which every stream of randomness the walk
    consumes (instance tables, random start, random-order schedules,
    sampled candidates) is derived deterministically.  Two executions of
    the same trial, anywhere, produce bit-identical walks; that is the
    contract the campaign layer ({!Bbc_campaign}) and the server's
    [run_unit] endpoint build on, and the [campaign] fuzz suite checks
    it against a direct {!Dynamics.run}.

    The JSON encoding ([{"type":"bbc-trial","version":1,...}]) is
    canonical: decoding an encoded trial and re-encoding it is the
    identity on the rendered string, which lets checkpoints and specs be
    compared bytewise. *)

(** Instance source.  [Catalog] names a {!Catalog} construction (its
    randomized members consume [seed] directly); [Family] names a
    {!Gen_instance} streaming family realized as a configuration; the
    rest are the {!Gen_instance} random generators, seeded per trial —
    the Monte-Carlo core.  [Sparse.zero_pct] is a percentage so specs
    stay integer-exact in JSON. *)
type generator =
  | Catalog of string
  | Family of string
  | Sparse of { zero_pct : int; max_weight : int }
  | Budgets of { max_budget : int }
  | Costs of { max_cost : int }
  | Metric of { span : int }
  | Perturbed of { flips : int }

(** Initial configuration: the empty profile, the generator's own
    profile ([Seeded] — only [Catalog]/[Family] carry one), or a
    seeded-random feasible profile (each node greedily buys shuffled
    targets while its budget allows). *)
type init = Empty | Seeded | Random_start

type sched = Round_robin | Random_order | Max_cost_first
type policy = Exact | First_improvement | Sampled of int  (** sample size *)

type t = {
  generator : generator;
  n : int;
  k : int;
  h : int;  (** Willows height (catalog constructions only) *)
  l : int;  (** Willows / max-anarchy tail (catalog constructions only) *)
  init : init;
  scheduler : sched;
  policy : policy;
  objective : Objective.t;
  max_rounds : int;
  seed : int;
}

type outcome = Converged | Cycled of int  (** period *) | Exhausted

type summary = {
  outcome : outcome;
  rounds : int;
  steps : int;
  deviations : int;
  social_cost : int;  (** of the final profile, under [objective] *)
  strongly_connected : bool;  (** of the final realized graph *)
}

val validate : t -> (unit, string) result
(** Structural checks that need no instance: sizes positive, sample
    positive, [Seeded] only on generators that carry a profile, known
    catalog / family names. *)

val build : t -> (Instance.t * Config.t, string) result
(** Materialize the instance and the initial configuration.  All
    randomness comes from streams split off [seed] in a fixed order, so
    the result is a pure function of the trial. *)

val scheduler_of : t -> Dynamics.scheduler
(** The exact scheduler value {!run} passes to {!Dynamics.run}
    ([Random_order] carries a sub-seed derived from [seed]). *)

val policy_of : t -> Dynamics.move_policy
(** The exact move policy {!run} passes to {!Dynamics.run} ([Sampled]
    carries a sub-seed derived from [seed]). *)

val run : ?on_step:(Dynamics.step -> unit) -> t -> (summary, string) result
(** [build], then {!Dynamics.run}, then summarize: outcome kind, walk
    statistics, final social cost, final strong connectivity.  [Error]
    only for invalid trials (validation or infeasible generator
    parameters); the walk itself cannot fail. *)

val label : t -> string
(** Aggregation cell key: generator, sizes, init, scheduler, policy and
    objective — everything except [seed] and [max_rounds], so the runs
    of one spec grid point share a label.  E.g.
    ["sparse(zero=55%,w<=3,n=12,k=2)/empty/round-robin/exact/sum"]. *)

(** {1 JSON}

    Canonical encodings (fixed field order; re-encoding a decoded value
    is the identity on the rendered string). *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val summary_to_json : summary -> Json.t
val summary_of_json : Json.t -> (summary, string) result

val generator_to_json : generator -> Json.t
val generator_of_json : Json.t -> (generator, string) result
val policy_to_json : policy -> Json.t
val policy_of_json : Json.t -> (policy, string) result

val sched_name : sched -> string
val sched_of_name : string -> sched option
val init_name : init -> string
val init_of_name : string -> init option
val objective_name : Objective.t -> string
val objective_of_name : string -> Objective.t option
