(** Incremental evaluation contexts: delta-repaired SSSPs + cost caching.

    A {!ctx} mirrors one configuration's realized graph inside
    {!Bbc_graph.Incremental} and keeps a lazily materialized dynamic
    SSSP per source.  A best-response move replaces one player's
    out-edges; {!apply_move} repairs every materialized SSSP in its
    affected region only, and bumps a per-source version counter when
    that source's distances actually changed.  Cached node costs are
    keyed on those counters, so only players whose distances moved are
    re-evaluated.

    Results are bit-identical to the from-scratch {!Eval} /
    {!Best_response} pipeline: the same distances feed the same
    {!Eval.cost_of_distances} fold, and the enumeration order is
    preserved by the callers.  Contexts are single-domain mutable state
    — never share one across {!Bbc_parallel} workers.

    The global {!enabled} switch (default on; [BBC_NO_INCREMENTAL=1] or
    [--no-incremental] turn it off) selects the default engine in
    {!Dynamics} and {!Stability}; the scratch path remains the
    reference oracle. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val resolve : bool option -> bool
(** [resolve incremental] — an explicit argument wins, otherwise the
    global switch. *)

type ctx

val create : Instance.t -> Config.t -> ctx
val instance : ctx -> Instance.t

val config : ctx -> Config.t
(** The configuration the mirror currently realizes. *)

val apply_move : ctx -> int -> int list -> unit
(** [apply_move ctx u targets] rewires player [u] and repairs all
    materialized SSSPs.  Not allowed while masked. *)

val ensure : ctx -> Config.t -> unit
(** Bring the context in sync with [config] by applying per-player
    diffs as moves (no-op when already in sync). *)

val node_cost : ?objective:Objective.t -> ctx -> int -> int
(** Cached cost of a node under the context's configuration; equals
    [Eval.node_cost] on the same configuration. *)

val all_costs : ?objective:Objective.t -> ctx -> int array

val distances_from : ctx -> int -> int array
(** Live full-graph distance row of a source (do not mutate). *)

(** {1 Best-response support (used by {!Best_response})} *)

val functional : ctx -> bool
(** Every node currently buys at most one link (O(1)). *)

val analytic : ctx -> bool
(** Uniform [k = 1] instance on a functional graph: singleton strategy
    costs are closed-form ({!singleton_cost}), no rows needed. *)

val empty_cost : ?objective:Objective.t -> ctx -> int -> int
(** Cost of the empty strategy under a uniform instance. *)

val singleton_cost : ?objective:Objective.t -> ctx -> int -> int -> int
(** [singleton_cost ctx u v] — cost of strategy [{v}] for player [u];
    only valid when {!analytic} holds. *)

val threshold_row : ctx -> u:int -> v:int -> int array
(** [G_{-u}] distance row from [v], derived from the full-graph SSSP
    by the walk-cutoff rule; only valid when {!functional} holds. *)

val threshold_row_into : ctx -> u:int -> v:int -> int array -> unit
(** {!threshold_row} written into a caller-supplied buffer (length [n],
    every entry overwritten) — the zero-allocation variant the
    best-response enumeration feeds with {!Bbc_graph.Workspace} rows. *)

val with_masked : ctx -> int -> (unit -> 'a) -> 'a
(** [with_masked ctx u f] runs [f] with [u]'s out-edges removed from
    the mirror (materialized SSSPs delta-repaired, exact rollback on
    exit): inside [f], {!masked_row} serves [G_{-u}] rows directly. *)

val masked_row : ctx -> int -> int array
(** Live [G_{-u}] distance row of a source; only inside {!with_masked}. *)
