(** Plain-text serialization of instances and configurations, so games
    can be saved, shared, and re-verified (`bbc save` / `bbc load`).

    Format (line-oriented, '#' comments allowed):

    {v
    bbc-instance v1
    n 5
    penalty 40
    uniform 2            # uniform game with budget k = 2, or:
    budgets 1 1 1 1 1
    weights              # then n rows of n integers (general games)
    0 3 0 0 1
    ...
    costs                # n rows
    ...
    lengths              # n rows
    ...
    v}

    and for configurations:

    {v
    bbc-config v1
    n 5
    0: 1 3               # node: sorted targets (omitted lines = empty)
    2: 0
    v} *)

val instance_to_string : Instance.t -> string

val instance_of_string : string -> (Instance.t, string) result

val config_to_string : Config.t -> string

val config_of_string : string -> (Config.t, string) result

val save_instance : string -> Instance.t -> (unit, string) result
val load_instance : string -> (Instance.t, string) result
val save_config : string -> Config.t -> (unit, string) result
val load_config : string -> (Config.t, string) result
