(** Serialization of instances and configurations, so games can be
    saved, shared, and re-verified.  Two interchangeable formats are
    supported: the line-oriented text format below and a JSON encoding
    ({!instance_to_json} & co.) shared by the [bbc serve] wire protocol.
    The CLI exposes them as [bbc save] (write a named construction),
    [bbc load] (read and verify), and [bbc convert] (read either
    format, validate, normalize, re-emit as text or JSON).

    Text format (line-oriented, '#' comments allowed):

    {v
    bbc-instance v1
    n 5
    penalty 40
    uniform 2            # uniform game with budget k = 2, or:
    budgets 1 1 1 1 1
    weights              # then n rows of n integers (general games)
    0 3 0 0 1
    ...
    costs                # n rows
    ...
    lengths              # n rows
    ...
    v}

    and for configurations:

    {v
    bbc-config v1
    n 5
    0: 1 3               # node: sorted targets (omitted lines = empty)
    2: 0
    v}

    The JSON encodings mirror the same data: instances are
    [{"type":"bbc-instance","version":1,"n":..,"penalty":..,
    "uniform_k":k}] (uniform games) or the same header with
    ["budgets"], ["weights"], ["costs"], ["lengths"] tables (general
    games); configurations are [{"type":"bbc-config","version":1,
    "n":..,"strategies":[[..],..]}] with one sorted target list per
    node. *)

val instance_to_string : Instance.t -> string

val instance_of_string : string -> (Instance.t, string) result

val config_to_string : Config.t -> string

val config_of_string : string -> (Config.t, string) result

(** {1 JSON encoding}

    Round-trip exact: decoding an encoded value yields an instance /
    configuration equal to the original (same sizes, tables, penalty,
    uniformity). *)

val instance_to_json : Instance.t -> Json.t
val instance_of_json : Json.t -> (Instance.t, string) result
val config_to_json : Config.t -> Json.t
val config_of_json : Json.t -> (Config.t, string) result

val costs_to_json : objective:Objective.t -> social:int -> int array -> Json.t
(** Cost report ([{"type":"bbc-costs","objective":..,"costs":[..],
    "social":..}]) — the payload of the server's [cost] endpoint and of
    future [--json] flags. *)

val costs_of_json : Json.t -> (Objective.t * int array * int, string) result
(** Decodes {!costs_to_json}: [(objective, per-node costs, social)]. *)

(** {1 Format auto-detection}

    A payload whose first non-blank character is ['{'] is parsed as
    JSON, anything else as the text format — so [bbc convert], the
    server's [load_instance], and file loading accept either. *)

val instance_of_any_string : string -> (Instance.t, string) result
val config_of_any_string : string -> (Config.t, string) result

(** {1 Files} *)

val save_instance : string -> Instance.t -> (unit, string) result

val load_instance : string -> (Instance.t, string) result
(** Auto-detects the format like {!instance_of_any_string}. *)

val save_config : string -> Config.t -> (unit, string) result

val load_config : string -> (Config.t, string) result
(** Auto-detects the format like {!config_of_any_string}. *)
