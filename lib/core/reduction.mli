(** The Theorem-2 reduction: 3SAT formula -> non-uniform BBC game such
    that the game has a pure Nash equilibrium iff the formula is
    satisfiable.

    The construction follows the paper's Figure 2 architecture — variable
    nodes choosing a truth node, intermediate nodes relaying clause
    literals, clause nodes linking a satisfied intermediate or escaping to
    [S] — with two engineering changes (documented in DESIGN.md), both
    forced by making every inequality machine-checkable:

    - the paper's Figure-1 gadget is replaced by this library's verified
      5-node no-NE core ({!Gadget}), coupled to the clause layer through
      one designated core node (the "central" node 4, mirroring the
      paper's central nodes);
    - the escape target is split in two: [S] is a budget-0 {e sink} that
      unsatisfied clause nodes link (its only role is being 1 hop away),
      while a hub [H] links every clause node and is the central node's
      escape route.  Keeping [S] out-degree 0 removes cross-clause
      shortcuts that would otherwise destabilize the intended equilibrium
      (the paper glosses over these paths); keeping [H] unreachable from
      the clause side keeps the two halves independent except through the
      central node's choice.

    The weights on the central node are scaled by [s = max(1, m(m-1))]
    and its per-intermediate preference is [c_I] (= [3m - 1], or 4 when
    [m = 1]) so that exactly one threshold separates "all [m] clauses
    satisfied" (central node strictly prefers [H]: a pure NE exists) from
    "at most [m-1] satisfied" (it strictly prefers re-entering the no-NE
    core: no profile is stable).

    Node ids: variable [i] maps to [X_i = 3i], [X_iT = 3i+1],
    [X_iF = 3i+2]; clause [j] to [K_j] and intermediates [I_j1..I_j3];
    then [S], [H], and the 5 core nodes last.

    Link restriction uses non-uniform {e costs} rather than the paper's
    non-uniform lengths: links absent from the Figure-2 skeleton are
    priced above every budget (Theorem 2 explicitly covers games that are
    non-uniform in costs), so the strategy space is exactly the depicted
    digraph and lengths stay uniform at 1.  This is equivalent for the
    depicted plays but eliminates "long-link escape" strategies whose
    cost sits between real paths and the disconnection penalty — a class
    of deviation the paper's sketch does not account for. *)

type t = {
  instance : Instance.t;
  formula : Bbc_sat.Cnf.t;
  var_node : int -> int;  (** [X_i] (variables are 1-based, as in CNF). *)
  truth_node : int -> bool -> int;  (** [truth_node i true] is [X_iT]. *)
  clause_node : int -> int;  (** [K_j], clauses 0-based. *)
  intermediate : int -> int -> int;  (** [intermediate j k], [k < 3]. *)
  sink : int;  (** [S]. *)
  hub : int;  (** [H]. *)
  core_node : int -> int;  (** The 5 no-NE-core nodes, [0 <= i < 5]. *)
  budget_k : int;  (** The uniform budget (1 for {!build}). *)
  anchors : int list;  (** Budget-absorbing anchor cluster ([] for k = 1). *)
  relays : int list;  (** Hub relay tree interior ([] for k = 1). *)
}

val build : Bbc_sat.Cnf.t -> t
(** Requires a 3SAT formula (every clause exactly 3 literals; duplicate
    literals allowed) with at least one variable and one clause. *)

val build_k : k:int -> Bbc_sat.Cnf.t -> t
(** The paper's "adapted to work where the budget of each node is k, for
    k >= 2, by using additional nodes": {e every} node has budget exactly
    [k].  The additional nodes are

    - an {e anchor cluster} of [k+1] nodes, each preferring the other
      [k]: a forced clique that dead-ends.  Every node whose "real" role
      needs [r < k] links gets [k - r] heavily-weighted anchor
      preferences, so its direct anchor links are strictly dominant and
      exactly one budget slot (or however many the role needs) stays
      meaningful;
    - a balanced [k]-ary {e relay tree} between the hub [H] and the
      clause nodes (padded so every clause sits at the same depth [D]),
      replacing the k=1 hub's budget-[m] fan-out; the central node's
      escape weight [c_I] is recalibrated numerically for the longer
      [D + 2] hub-to-intermediate distance.

    [build_k ~k:1] coincides with {!build}. *)

val encode : t -> bool array -> Config.t
(** The intended profile for an assignment (indexed by variable, index 0
    unused): variables link their assigned truth node, satisfied clauses
    link their highest-preference satisfied intermediate, unsatisfied ones link [S],
    the central core node links [H], and all forced nodes their targets.
    If the assignment satisfies the formula, this profile is a pure NE
    (checked in tests/E2 with {!Stability.is_stable}). *)

val decode : t -> Config.t -> bool array
(** Read the variable assignment off a profile ([X_i -> X_iT] means
    true). *)

val candidate_strategies : t -> int list list array
(** The reduced strategy space used for exhaustive no-NE certification on
    small unsatisfiable formulas: forced nodes get their unique
    (strictly dominant) strategy, variable nodes their two truth links,
    clause nodes their three intermediates or [S], and the central node
    its in-core links or [H]. *)
