let node_cost_lower_bound ~n ~k =
  if n < 1 || k < 1 then invalid_arg "Metrics.node_cost_lower_bound";
  (* Place the n-1 other nodes as close as possible: k at distance 1,
     k^2 at distance 2, ... *)
  let rec go remaining dist level_cap acc =
    if remaining <= 0 then acc
    else
      let here = min remaining level_cap in
      (* Cap the level size to avoid overflow once k^i exceeds n. *)
      let next_cap = if level_cap >= n then level_cap else level_cap * k in
      go (remaining - here) (dist + 1) next_cap (acc + (dist * here))
  in
  go (n - 1) 1 k 0

let social_cost_lower_bound ~n ~k = n * node_cost_lower_bound ~n ~k

let eccentricity_lower_bound ~n ~k =
  if n < 2 then 0
  else begin
    let rec go covered level_cap h =
      if covered >= n - 1 then h
      else
        let next_cap = if level_cap >= n then level_cap else level_cap * k in
        go (covered + level_cap) next_cap (h + 1)
    in
    go 0 k 0
  end

let max_social_cost_lower_bound ~n ~k = n * eccentricity_lower_bound ~n ~k

type fairness = { min_cost : int; max_cost : int; ratio : float; spread : int }

let fairness ?objective instance config =
  let costs = Eval.all_costs ?objective instance config in
  let min_cost = Array.fold_left min max_int costs in
  let max_cost = Array.fold_left max min_int costs in
  {
    min_cost;
    max_cost;
    ratio = float_of_int max_cost /. float_of_int (max min_cost 1);
    spread = max_cost - min_cost;
  }

let floor_log ~base x =
  if base < 2 || x < 1 then invalid_arg "Metrics.floor_log";
  let rec go acc p = if p > x / base then acc else go (acc + 1) (p * base) in
  go 0 1

let lemma1_spread_bound ~n ~k = n + (n * floor_log ~base:k n)

let lemma1_ratio_bound ~n ~k =
  (* Lemma 1's proof: any node's cost is within C* + n + n*floor(log_k n)
     of the minimum C*, and C* >= (n - n/k) * floor(log_k n).  The
     resulting concrete ratio bound tends to 2 + 1/k as n grows. *)
  let log_term = floor_log ~base:k n in
  let c_star = max 1 ((n - (n / k)) * log_term) in
  1.0 +. (float_of_int (lemma1_spread_bound ~n ~k) /. float_of_int c_star)

let anarchy_ratio ?objective instance config =
  let n = Instance.n instance in
  let k =
    match Instance.uniform_k instance with
    | Some k -> k
    | None -> invalid_arg "Metrics.anarchy_ratio: uniform instances only"
  in
  let lb =
    match objective with
    | Some Objective.Max -> max_social_cost_lower_bound ~n ~k
    | Some Objective.Sum | None -> social_cost_lower_bound ~n ~k
  in
  float_of_int (Eval.social_cost ?objective instance config) /. float_of_int (max lb 1)
