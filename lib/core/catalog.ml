type params = { n : int; k : int; h : int; l : int; seed : int }

let default_params = { n = 12; k = 2; h = 2; l = 3; seed = 1 }

let names =
  [
    "willows";
    "ring";
    "ring-path";
    "loop7";
    "max-anarchy";
    "circulant";
    "hypercube";
    "random";
    "empty";
  ]

let build name { n; k; h; l; seed } =
  try
    match name with
    | "willows" ->
        let p = Willows.{ k; h; l } in
        Ok (Willows.build p)
    | "ring" ->
        let inst = Instance.uniform ~n ~k:1 in
        Ok (inst, Config.of_graph (Bbc_graph.Generators.directed_ring n))
    | "ring-path" ->
        Ok (Constructions.ring_with_path ~ring:(n / 2 * 2 / 3 * 2) ~path:(max 1 (n / 3)))
    | "loop7" -> Ok (Constructions.best_response_loop ())
    | "max-anarchy" ->
        if k = 2 then Ok (Constructions.max_anarchy_seed_k2 ~l)
        else Ok (Constructions.max_anarchy ~k ~l)
    | "circulant" ->
        let c = Bbc_group.Cayley.random_circulant (Bbc_prng.Splitmix.create seed) ~n ~k in
        Ok (Cayley_game.to_game c)
    | "hypercube" ->
        let c = Bbc_group.Cayley.hypercube k in
        Ok (Cayley_game.to_game c)
    | "random" ->
        let inst = Instance.uniform ~n ~k in
        let g = Bbc_graph.Generators.random_k_out (Bbc_prng.Splitmix.create seed) ~n ~k in
        Ok (inst, Config.of_graph g)
    | "empty" -> Ok (Instance.uniform ~n ~k, Config.empty n)
    | other -> Error (Printf.sprintf "unknown construction %S" other)
  with Invalid_argument m -> Error m

let streaming_names = List.map fst Gen_instance.family_names

let with_family name params f =
  match Gen_instance.family_of_name name with
  | None -> Error (Printf.sprintf "unknown streaming family %S" name)
  | Some fam -> ( try Ok (f fam params) with Invalid_argument m -> Error m)

let build_streaming name params =
  with_family name params (fun fam { n; k; seed; _ } ->
      Gen_instance.streaming fam ~n ~k ~seed)

let build_streaming_reference name params =
  with_family name params (fun fam { n; k; seed; _ } ->
      Gen_instance.streaming_reference fam ~n ~k ~seed)
