module Cnf = Bbc_sat.Cnf

type t = {
  instance : Instance.t;
  formula : Cnf.t;
  var_node : int -> int;
  truth_node : int -> bool -> int;
  clause_node : int -> int;
  intermediate : int -> int -> int;
  sink : int;
  hub : int;
  core_node : int -> int;
  budget_k : int;
  anchors : int list;
  relays : int list;
}

let central = 4 (* index of the core node carrying the escape coupling *)

let clause_literals formula j =
  match List.nth_opt (Cnf.clauses formula) j with
  | Some [ a; b; c ] -> [| a; b; c |]
  | Some _ -> invalid_arg "Reduction: clause is not exactly 3 literals"
  | None -> invalid_arg "Reduction: clause index out of range"

let build formula =
  let num_vars = Cnf.num_vars formula in
  let m = Cnf.num_clauses formula in
  if num_vars < 1 || m < 1 then invalid_arg "Reduction.build: empty formula";
  List.iter
    (fun c -> if List.length c <> 3 then invalid_arg "Reduction.build: need exact 3SAT")
    (Cnf.clauses formula);
  (* Layout: variables first, then clauses, then S, H, core. *)
  let var_node i = 3 * (i - 1) in
  let truth_node i positive = (3 * (i - 1)) + if positive then 1 else 2 in
  let clause_base = 3 * num_vars in
  let clause_node j = clause_base + (4 * j) in
  let intermediate j k = clause_base + (4 * j) + 1 + k in
  let sink = clause_base + (4 * m) in
  let hub = sink + 1 in
  let core_node i = hub + 1 + i in
  let n = hub + 1 + Gadget.core_size in
  (* Non-depicted links are priced out of every budget (the theorem allows
     non-uniform costs); lengths stay uniform at 1. *)
  let unaffordable = m + 2 in
  (* Escape calibration (see the .mli): one clause's worth of reachable
     intermediates must flip the central node's preference between H and
     re-entering the core. *)
  let s = max 1 (m * (m - 1)) in
  let c_i = if m = 1 then 4 else (3 * m) - 1 in
  let weight = Array.init n (fun _ -> Array.make n 0) in
  let length = Array.init n (fun _ -> Array.make n 1) in
  let cost = Array.init n (fun _ -> Array.make n unaffordable) in
  let budget = Array.make n 0 in
  let depict u v = cost.(u).(v) <- 1 in
  (* Variable layer. *)
  for i = 1 to num_vars do
    budget.(var_node i) <- 1;
    List.iter
      (fun b ->
        weight.(var_node i).(truth_node i b) <- 1;
        depict (var_node i) (truth_node i b))
      [ true; false ]
  done;
  (* Clause layer. *)
  for j = 0 to m - 1 do
    let lits = clause_literals formula j in
    budget.(clause_node j) <- 1;
    weight.(clause_node j).(sink) <- 1;
    depict (clause_node j) sink;
    for k = 0 to 2 do
      let lit = lits.(k) in
      let v = Cnf.var lit in
      budget.(intermediate j k) <- 1;
      weight.(intermediate j k).(var_node v) <- 1;
      weight.(intermediate j k).(truth_node v (lit > 0)) <- 1;
      depict (intermediate j k) (var_node v);
      weight.(clause_node j).(truth_node v (lit > 0)) <-
        weight.(clause_node j).(truth_node v (lit > 0)) + 2;
      depict (clause_node j) (intermediate j k)
    done
  done;
  (* S: a sink.  H: the hub, forced to link every clause node. *)
  budget.(sink) <- 0;
  budget.(hub) <- m;
  for j = 0 to m - 1 do
    weight.(hub).(clause_node j) <- 1;
    depict hub (clause_node j)
  done;
  (* Core: the verified no-NE game, complete length-1 interior; the
     central node's weights are scaled by s and extended with the escape
     preferences. *)
  let core = Gadget.core () in
  for a = 0 to Gadget.core_size - 1 do
    budget.(core_node a) <- 1;
    for b = 0 to Gadget.core_size - 1 do
      if a <> b then begin
        depict (core_node a) (core_node b);
        let w = Instance.weight core a b in
        weight.(core_node a).(core_node b) <- (if a = central then s * w else w)
      end
    done
  done;
  depict (core_node central) hub;
  for j = 0 to m - 1 do
    for k = 0 to 2 do
      weight.(core_node central).(intermediate j k) <- c_i
    done
  done;
  let instance = Instance.general ~weight ~cost ~length ~budget () in
  {
    instance;
    formula;
    var_node;
    truth_node;
    clause_node;
    intermediate;
    sink;
    hub;
    core_node;
    budget_k = 1;
    anchors = [];
    relays = [];
  }

(* Forced suffix of a node's strategy under build_k (empty for k = 1):
   its assigned anchors, plus tree children for the hub and relays —
   everything except the one meaningful slot. *)
let forced_links t u =
  let instance = t.instance in
  let n = Instance.n instance in
  if t.budget_k = 1 then []
  else
    List.filter
      (fun v ->
        v <> u
        && Instance.cost instance u v = 1
        && (List.mem v t.anchors
           || (List.mem u (t.hub :: t.relays) && Instance.weight instance u v > 0)))
      (List.init n Fun.id)

(* The satisfied literal the clause node links: the one whose truth node
   carries the largest preference (duplicate literals in a clause stack
   their weight on one truth node, which makes that link the unique best
   response). *)
let best_satisfied_literal t j assignment =
  let lits = clause_literals t.formula j in
  let best = ref None in
  for k = 0 to 2 do
    let lit = lits.(k) in
    let v = Cnf.var lit in
    if assignment.(v) = (lit > 0) then begin
      let w =
        Instance.weight t.instance (t.clause_node j) (t.truth_node v (lit > 0))
      in
      match !best with
      | Some (_, w') when w' >= w -> ()
      | _ -> best := Some (k, w)
    end
  done;
  Option.map fst !best

let encode t assignment =
  let n = Instance.n t.instance in
  let num_vars = Cnf.num_vars t.formula in
  let m = Cnf.num_clauses t.formula in
  let strategies = Array.make n [] in
  (* Forced parts first (no-ops for k = 1): anchors, relays, hub
     children, truth-node and sink padding. *)
  if t.budget_k > 1 then begin
    for u = 0 to n - 1 do
      strategies.(u) <- forced_links t u
    done;
    List.iter
      (fun z -> strategies.(z) <- List.filter (( <> ) z) t.anchors)
      t.anchors
  end;
  let set_real u v = strategies.(u) <- v :: strategies.(u) in
  for i = 1 to num_vars do
    set_real (t.var_node i) (t.truth_node i assignment.(i))
  done;
  for j = 0 to m - 1 do
    for k = 0 to 2 do
      let lit = (clause_literals t.formula j).(k) in
      set_real (t.intermediate j k) (t.var_node (Cnf.var lit))
    done;
    set_real (t.clause_node j)
      (match best_satisfied_literal t j assignment with
      | Some k -> t.intermediate j k
      | None -> t.sink)
  done;
  if t.budget_k = 1 then strategies.(t.hub) <- List.init m t.clause_node;
  (* Forced residual core shape (see gadget.ml: 0 -> 3, 2 -> 3, 1 -> 4,
     3 -> 4) plus the central escape. *)
  set_real (t.core_node 0) (t.core_node 3);
  set_real (t.core_node 1) (t.core_node central);
  set_real (t.core_node 2) (t.core_node 3);
  set_real (t.core_node 3) (t.core_node central);
  set_real (t.core_node central) t.hub;
  Config.of_lists n strategies

let decode t config =
  let num_vars = Cnf.num_vars t.formula in
  Array.init (num_vars + 1) (fun i ->
      i > 0 && List.mem (t.truth_node i true) (Config.targets config (t.var_node i)))

let candidate_strategies t =
  let n = Instance.n t.instance in
  let num_vars = Cnf.num_vars t.formula in
  let m = Cnf.num_clauses t.formula in
  let forced u = forced_links t u in
  (* Default: forced part only (truths, sink, relays, hub for k >= 2). *)
  let candidates = Array.init n (fun u -> [ forced u ]) in
  if t.budget_k > 1 then
    List.iter
      (fun z -> candidates.(z) <- [ List.filter (( <> ) z) t.anchors ])
      t.anchors;
  for i = 1 to num_vars do
    candidates.(t.var_node i) <-
      [
        t.truth_node i true :: forced (t.var_node i);
        t.truth_node i false :: forced (t.var_node i);
      ]
  done;
  for j = 0 to m - 1 do
    candidates.(t.clause_node j) <-
      List.map
        (fun real -> real :: forced (t.clause_node j))
        (t.sink :: List.init 3 (t.intermediate j));
    for k = 0 to 2 do
      let lit = (clause_literals t.formula j).(k) in
      candidates.(t.intermediate j k) <-
        [ t.var_node (Cnf.var lit) :: forced (t.intermediate j k) ]
    done
  done;
  if t.budget_k = 1 then candidates.(t.hub) <- [ List.init m t.clause_node ];
  let core_cand i reals =
    candidates.(t.core_node i) <-
      List.map (fun r -> r :: forced (t.core_node i)) reals
  in
  core_cand 0 [ t.core_node 3 ];
  core_cand 1 [ t.core_node central ];
  core_cand 2 [ t.core_node 3; t.core_node 1 ];
  core_cand 3 [ t.core_node central ];
  core_cand central
    (t.hub
    :: List.filter_map
         (fun b -> if b = central then None else Some (t.core_node b))
         (List.init Gadget.core_size Fun.id));
  candidates

(* ------------------------------------------------------------------ *)
(* Uniform budget k >= 2 (the paper's "easily adapted ... by using
   additional nodes").  See the .mli for the construction. *)

(* Balanced k-ary relay tree: every clause node sits at depth [depth];
   [relay_counts.(d)] relays at depth d (1 <= d < depth); the parent of
   the i-th node at depth d+1 is the (i / k)-th node at depth d. *)
let relay_plan ~k ~m =
  let rec depth_for d cap = if cap >= m then d else depth_for (d + 1) (cap * k) in
  let depth = depth_for 1 k in
  let counts = Array.make depth 0 in
  (* counts.(d) for d in [1, depth): ceil (m / k^(depth - d)). *)
  for d = 1 to depth - 1 do
    let pow = int_of_float (float_of_int k ** float_of_int (depth - d)) in
    counts.(d) <- (m + pow - 1) / pow
  done;
  (depth, counts)

let build_k ~k formula =
  if k < 1 then invalid_arg "Reduction.build_k: k must be >= 1";
  if k = 1 then build formula
  else begin
    let num_vars = Cnf.num_vars formula in
    let m = Cnf.num_clauses formula in
    if num_vars < 1 || m < 1 then invalid_arg "Reduction.build_k: empty formula";
    List.iter
      (fun c -> if List.length c <> 3 then invalid_arg "Reduction.build_k: need exact 3SAT")
      (Cnf.clauses formula);
    let var_node i = 3 * (i - 1) in
    let truth_node i positive = (3 * (i - 1)) + if positive then 1 else 2 in
    let clause_base = 3 * num_vars in
    let clause_node j = clause_base + (4 * j) in
    let intermediate j kk = clause_base + (4 * j) + 1 + kk in
    let sink = clause_base + (4 * m) in
    let depth, relay_counts = relay_plan ~k ~m in
    let relay_total = Array.fold_left ( + ) 0 relay_counts in
    let relay_base = sink + 1 in
    (* relay (d, i): the i-th relay at depth d, 1 <= d < depth. *)
    let relay d i =
      let offset = ref 0 in
      for d' = 1 to d - 1 do
        offset := !offset + relay_counts.(d')
      done;
      relay_base + !offset + i
    in
    let hub = relay_base + relay_total in
    let core_node i = hub + 1 + i in
    let anchor z = hub + 1 + Gadget.core_size + z in
    let n = hub + 1 + Gadget.core_size + k + 1 in
    let unaffordable = k + 1 in
    let weight = Array.init n (fun _ -> Array.make n 0) in
    let length = Array.init n (fun _ -> Array.make n 1) in
    let cost = Array.init n (fun _ -> Array.make n unaffordable) in
    let budget = Array.make n k in
    let depict u v = cost.(u).(v) <- 1 in
    (* --- real preference structure (same skeleton as build) --- *)
    for i = 1 to num_vars do
      List.iter
        (fun b ->
          weight.(var_node i).(truth_node i b) <- 1;
          depict (var_node i) (truth_node i b))
        [ true; false ]
    done;
    for j = 0 to m - 1 do
      let lits = clause_literals formula j in
      weight.(clause_node j).(sink) <- 1;
      depict (clause_node j) sink;
      for kk = 0 to 2 do
        let lit = lits.(kk) in
        let v = Cnf.var lit in
        weight.(intermediate j kk).(var_node v) <- 1;
        weight.(intermediate j kk).(truth_node v (lit > 0)) <- 1;
        depict (intermediate j kk) (var_node v);
        weight.(clause_node j).(truth_node v (lit > 0)) <-
          weight.(clause_node j).(truth_node v (lit > 0)) + 2;
        depict (clause_node j) (intermediate j kk)
      done
    done;
    (* Relay tree: the children of depth-d node i live at depth d+1 (or
       are clause nodes when d = depth - 1). *)
    let node_at d i = if d = 0 then hub else if d = depth then clause_node i else relay d i in
    let count_at d = if d = 0 then 1 else if d = depth then m else relay_counts.(d) in
    let children = Array.make n [] in
    for d = 0 to depth - 1 do
      for i = 0 to count_at (d + 1) - 1 do
        let parent = node_at d (i / k) in
        let child = node_at (d + 1) i in
        children.(parent) <- child :: children.(parent);
        weight.(parent).(child) <- 1;
        depict parent child
      done
    done;
    (* Core with the recalibrated escape. *)
    let s = max 1 (m * (m - 1)) in
    let penalty = (2 * n) + 1 in
    let hub_to_intermediate = depth + 2 in
    let c_i =
      (* smallest integer strictly above 3 s (M-1) / (m (M - (D+2))) *)
      let num = 3 * s * (penalty - 1) in
      let den = m * (penalty - hub_to_intermediate) in
      (num / den) + 1
    in
    if m > 1 then
      assert (c_i * (m - 1) * (penalty - hub_to_intermediate) < 3 * s * (penalty - 1));
    let core = Gadget.core () in
    for a = 0 to Gadget.core_size - 1 do
      for b = 0 to Gadget.core_size - 1 do
        if a <> b then begin
          depict (core_node a) (core_node b);
          let w = Instance.weight core a b in
          weight.(core_node a).(core_node b) <- (if a = central then s * w else w)
        end
      done
    done;
    depict (core_node central) hub;
    for j = 0 to m - 1 do
      for kk = 0 to 2 do
        weight.(core_node central).(intermediate j kk) <- c_i
      done
    done;
    (* Anchor cluster: each anchor prefers the other k. *)
    for z = 0 to k do
      for z' = 0 to k do
        if z <> z' then begin
          weight.(anchor z).(anchor z') <- 1;
          depict (anchor z) (anchor z')
        end
      done
    done;
    (* Budget absorption: every non-anchor node with real need r < k gets
       k - r anchor preferences, weighted to strictly dominate anything
       its freed budget could buy. *)
    let real_need u =
      if u < clause_base then if u mod 3 = 0 then 1 else 0 (* X_i vs truths *)
      else if u < sink then
        if (u - clause_base) mod 4 = 0 then 1 (* clause node *) else 1 (* intermediate *)
      else if u = sink then 0
      else if u < hub then List.length children.(u) (* relay *)
      else if u = hub then List.length children.(u)
      else if u < anchor 0 then 1 (* core *)
      else k (* anchors, already saturated *)
    in
    for u = 0 to anchor 0 - 1 do
      let r = real_need u in
      if r < k then begin
        let total_real = Array.fold_left ( + ) 0 weight.(u) in
        let w_big = (penalty * max 1 total_real) + 1 in
        for z = 0 to k - r - 1 do
          weight.(u).(anchor z) <- w_big;
          depict u (anchor z)
        done
      end
    done;
    let instance = Instance.general ~penalty ~weight ~cost ~length ~budget () in
    {
      instance;
      formula;
      var_node;
      truth_node;
      clause_node;
      intermediate;
      sink;
      hub;
      core_node;
      budget_k = k;
      anchors = List.init (k + 1) anchor;
      relays = List.init relay_total (fun i -> relay_base + i);
    }
  end
