type t = int array array
(* strategies.(u) = sorted array of distinct targets, none equal to u *)

let n t = Array.length t

let empty size = Array.make size [||]

let validate_strategy size u targets =
  let sorted = List.sort_uniq compare targets in
  if List.length sorted <> List.length targets then
    invalid_arg "Config: duplicate target in strategy";
  List.iter
    (fun v ->
      if v < 0 || v >= size then invalid_arg "Config: target out of range";
      if v = u then invalid_arg "Config: self-link")
    sorted;
  Array.of_list sorted

let of_lists size strategies =
  if Array.length strategies <> size then invalid_arg "Config.of_lists: length mismatch";
  Array.mapi (validate_strategy size) strategies

let of_graph g =
  Array.init (Bbc_graph.Digraph.n g) (fun u ->
      Bbc_graph.Digraph.out_edges g u |> List.map fst |> List.sort compare
      |> Array.of_list)

let targets t u = Array.to_list t.(u)

let strategy_size t u = Array.length t.(u)

let with_strategy t u targets =
  let t' = Array.copy t in
  t'.(u) <- validate_strategy (Array.length t) u targets;
  t'

let spend instance t u =
  Array.fold_left (fun acc v -> acc + Instance.cost instance u v) 0 t.(u)

let feasible instance t =
  let ok = ref true in
  for u = 0 to Array.length t - 1 do
    if spend instance t u > Instance.budget instance u then ok := false
  done;
  !ok

let to_graph instance t =
  let size = Array.length t in
  let g = Bbc_graph.Digraph.create size in
  for u = 0 to size - 1 do
    Array.iter (fun v -> Bbc_graph.Digraph.add_edge g u v (Instance.length instance u v)) t.(u)
  done;
  g

let edge_count t = Array.fold_left (fun acc s -> acc + Array.length s) 0 t

let to_csr ?skip instance t =
  let size = Array.length t in
  let sk = match skip with Some u -> u | None -> -1 in
  let m = edge_count t - (if sk >= 0 then Array.length t.(sk) else 0) in
  let b = Bbc_graph.Csr.builder ~n:size ~m in
  for u = 0 to size - 1 do
    if u <> sk then
      Array.iter (fun v -> Bbc_graph.Csr.add b u v (Instance.length instance u v)) t.(u)
  done;
  Bbc_graph.Csr.finish b

let validated_strategy = validate_strategy

let unsafe_of_arrays (strategies : int array array) : t = strategies

let snapshot t = Array.map Array.copy t

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let hash t =
  (* FNV-style polynomial hash over the flattened profile. *)
  let h = ref 0x811c9dc5 in
  let mix x = h := (!h lxor x) * 0x01000193 land max_int in
  Array.iter
    (fun s ->
      mix (-1);
      Array.iter mix s)
    t;
  !h

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun u s ->
      Format.fprintf fmt "%d -> [%a]@," u
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ") Format.pp_print_int)
        (Array.to_list s))
    t;
  Format.fprintf fmt "@]"
