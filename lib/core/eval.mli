(** Exact cost evaluation.

    The cost of node [u] in the network [G(S)] is the aggregate (per the
    objective) over all [v <> u] of [w(u,v) * d(u,v)], where [d(u,v)] is
    the shortest-path distance and unreachable targets count as the
    instance's penalty [M].  (Note: following the paper, a target with
    [w(u,v) = 0] contributes nothing even when unreachable.) *)

val node_cost :
  ?objective:Objective.t ->
  ?graph:Bbc_graph.Digraph.t ->
  Instance.t ->
  Config.t ->
  int ->
  int
(** [node_cost instance config u] is [u]'s cost.  Pass [graph] (the
    realization of [config]) to avoid rebuilding it across calls; it is
    trusted to equal [Config.to_graph instance config]. *)

val all_costs :
  ?objective:Objective.t -> ?jobs:int -> Instance.t -> Config.t -> int array
(** Cost of every node (one shortest-path computation per node).  On
    unit-length realizations the sweeps run [Csr.batch_width] sources at
    a time through the bit-parallel MS-BFS kernel, and each pool pull
    claims one such window.  The per-source computations are independent
    — workers share the realized graph {e read-only} and own their
    pooled distance rows — so they are fanned out over the
    {!Bbc_parallel} domain pool.  [jobs] defaults to
    {!Bbc_parallel.default_jobs} for n >= 64 and to 1 below that; the
    result is identical for every job count. *)

val social_cost : ?objective:Objective.t -> ?jobs:int -> Instance.t -> Config.t -> int
(** Sum over nodes of {!node_cost} — the paper's total social cost.
    Parallelized like {!all_costs} (integer addition is associative, so
    the chunked reduction is exact). *)

val cost_of_distances :
  ?objective:Objective.t -> Instance.t -> int -> int array -> int
(** [cost_of_distances instance u dist] folds a precomputed distance array
    (with {!Bbc_graph.Paths.unreachable} marking no-path) into [u]'s cost.
    Exposed for the best-response enumerator. *)

val cost_of_distances32 :
  ?objective:Objective.t -> Instance.t -> int -> Bbc_graph.Csr.dist32 -> int
(** {!cost_of_distances} over a compact int32 row
    ({!Bbc_graph.Csr.unreachable32} marking no-path) — the fold used by
    the large-n landmark estimator. *)

val csr_node_cost : ?objective:Objective.t -> Instance.t -> Bbc_graph.Csr.t -> int -> int
(** [csr_node_cost instance csr u] is [u]'s cost under a prebuilt CSR
    snapshot of the realized graph (trusted to equal
    [Config.to_csr instance config]): one pooled allocation-free sweep
    plus the cost fold.  The snapshot-reusing counterpart of
    {!node_cost} for callers that evaluate many nodes against one
    profile. *)
