(** Named constructions, shared by the CLI subcommands ([verify],
    [dynamics], [search], [dot], [save]) and the server's [gen]
    endpoint, so "build me instance X" has exactly one implementation
    and one parameter vocabulary. *)

type params = {
  n : int;  (** node count (where the construction is size-driven) *)
  k : int;  (** budget / out-degree *)
  h : int;  (** Willows tree height *)
  l : int;  (** Willows / max-anarchy tail length *)
  seed : int;  (** PRNG seed for the randomized constructions *)
}

val default_params : params
(** [n = 12, k = 2, h = 2, l = 3, seed = 1] — the CLI defaults. *)

val names : string list
(** Every recognized construction name. *)

val build : string -> params -> (Instance.t * Config.t, string) result
(** Build a named construction; [Error] names the unknown construction
    or reports an invalid parameter combination. *)

val streaming_names : string list
(** The large-n streaming families ({!Gen_instance.family_names}):
    ring, tree, willows, circulant, random.  [h] and [l] are ignored by
    these (the willows solve their own tail length from [n]). *)

val build_streaming : string -> params -> (Instance.t * Bbc_graph.Csr.t, string) result
(** Build a streaming family straight into a CSR snapshot
    ({!Gen_instance.streaming}). *)

val build_streaming_reference : string -> params -> (Instance.t * Config.t, string) result
(** The same family materialized as a configuration — the small-n
    differential oracle ({!Gen_instance.streaming_reference}). *)
