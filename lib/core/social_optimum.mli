(** Exact social optima and exact price of anarchy / stability on small
    games.

    The paper's PoA/PoS statements are asymptotic; on instances whose
    profile space fits in memory we can compute the quantities exactly:
    the socially optimal profile, the best and worst pure equilibria, and
    the exact ratios.  Used by the E12 extension experiment and to
    sanity-check the lower-bound-based estimators of {!Metrics}. *)

type summary = {
  optimum : int;  (** Minimum social cost over all profiles. *)
  optimal_profile : Config.t;
  best_equilibrium : (int * Config.t) option;  (** None if no pure NE. *)
  worst_equilibrium : (int * Config.t) option;
  equilibria : int;  (** Number of pure equilibria. *)
  profiles : int;  (** Profiles examined. *)
}

val analyze :
  ?objective:Objective.t ->
  ?candidates:int list list array ->
  ?max_profiles:int ->
  Instance.t ->
  summary option
(** Exhaustive analysis of the profile space (default: all feasible
    strategies of every node; [max_profiles] defaults to [2_000_000]).
    [None] if the space is larger than [max_profiles].

    Note: with a restricted candidate space, [optimum] is exact for that
    space and every reported equilibrium is a true NE (full-deviation
    check), but equilibria outside the space are not seen. *)

val price_of_stability : summary -> float option
(** [best NE cost / optimum]; [None] if no pure NE exists. *)

val price_of_anarchy : summary -> float option
(** [worst NE cost / optimum]. *)

val local_search :
  ?objective:Objective.t ->
  ?restarts:int ->
  ?max_sweeps:int ->
  Bbc_prng.Splitmix.t ->
  Instance.t ->
  int * Config.t
(** Heuristic optimum for instances whose profile space is too large for
    {!analyze}: hill-climbing on the social cost (each step replaces one
    node's strategy with its socially-best alternative), restarted from
    [restarts] (default 3) random maximal-strategy profiles; returns the
    best (cost, profile) found.  An upper bound on the true optimum —
    useful as the denominator of a conservative PoA estimate. *)
