module Paths = Bbc_graph.Paths

(* The representation and objective dispatch is hoisted out of the
   per-node loop: this fold runs once per SSSP across every evaluation
   path, and the generic [Objective.fold]-per-element version costs a
   non-inlined call (plus a weight lookup dispatch) per node. *)
let cost_of_distances ?(objective = Objective.Sum) instance u dist =
  let n = Instance.n instance in
  let m = Instance.penalty instance in
  match objective with
  | Objective.Sum -> (
      match Instance.weight_row instance u with
      | None ->
          let acc = ref 0 in
          for v = 0 to n - 1 do
            if v <> u then begin
              let d = dist.(v) in
              acc := !acc + (if d = Paths.unreachable then m else d)
            end
          done;
          !acc
      | Some wrow ->
          let acc = ref 0 in
          for v = 0 to n - 1 do
            if v <> u then begin
              let w = wrow.(v) in
              if w > 0 then begin
                let d = dist.(v) in
                acc := !acc + (w * if d = Paths.unreachable then m else d)
              end
            end
          done;
          !acc)
  | Objective.Max ->
      let acc = ref 0 in
      for v = 0 to n - 1 do
        if v <> u then begin
          let w = Instance.weight instance u v in
          if w > 0 then begin
            let d = dist.(v) in
            let d = if d = Paths.unreachable then m else d in
            if w * d > !acc then acc := w * d
          end
        end
      done;
      !acc

(* The same fold over a compact int32 row (see csr.mli): the large-n
   estimator keeps distances 4 bytes wide, so the per-landmark cost fold
   reads the Bigarray directly instead of widening the whole row. *)
let cost_of_distances32 ?(objective = Objective.Sum) instance u
    (dist : Bbc_graph.Csr.dist32) =
  let n = Instance.n instance in
  let m = Instance.penalty instance in
  let inf = Bbc_graph.Csr.unreachable32 in
  match objective with
  | Objective.Sum -> (
      match Instance.weight_row instance u with
      | None ->
          let acc = ref 0 in
          for v = 0 to n - 1 do
            if v <> u then begin
              let d = Bigarray.Array1.unsafe_get dist v in
              acc := !acc + (if d = inf then m else Int32.to_int d)
            end
          done;
          !acc
      | Some wrow ->
          let acc = ref 0 in
          for v = 0 to n - 1 do
            if v <> u then begin
              let w = wrow.(v) in
              if w > 0 then begin
                let d = Bigarray.Array1.unsafe_get dist v in
                acc := !acc + (w * if d = inf then m else Int32.to_int d)
              end
            end
          done;
          !acc)
  | Objective.Max ->
      let acc = ref 0 in
      for v = 0 to n - 1 do
        if v <> u then begin
          let w = Instance.weight instance u v in
          if w > 0 then begin
            let d = Bigarray.Array1.unsafe_get dist v in
            let d = if d = inf then m else Int32.to_int d in
            if w * d > !acc then acc := w * d
          end
        end
      done;
      !acc

let node_cost ?objective ?graph instance config u =
  let g = match graph with Some g -> g | None -> Config.to_graph instance config in
  cost_of_distances ?objective instance u (Paths.shortest g u)

(* One SSSP per source: below this node count the pool fan-out costs
   more than the row of BFS/Dijkstra runs it saves. *)
let parallel_threshold = 64

(* [eval.sssp] counts single-source runs; the incr sits inside the pool
   workers, exercising Bbc_obs's per-domain shards. *)
let obs_sssp = Bbc_obs.counter "eval.sssp"

(* One contiguous source range per domain: [chunk = ceil (n / jobs)],
   so a domain's sweeps walk adjacent rows of the shared CSR snapshot
   instead of interleaving with the other domains' ranges. *)
let contiguous_chunk ~jobs n = if jobs > 1 then max 1 ((n + jobs - 1) / jobs) else n

(* Cost of one source under the shared CSR snapshot, allocation-free:
   sweep into this domain's pooled row, fold the distances, then undo
   the sweep with the O(visited) dirty-list reset. *)
let csr_node_cost ?objective instance csr u =
  let ws = Bbc_graph.Workspace.get () in
  let scratch = Bbc_graph.Workspace.scratch ws in
  let row = Bbc_graph.Workspace.acquire ws (Instance.n instance) in
  Bbc_graph.Csr.sssp csr scratch ~src:u ~dist:row;
  let c = cost_of_distances ?objective instance u row in
  Bbc_graph.Csr.reset scratch row;
  Bbc_graph.Workspace.release_clean ws row;
  c

(* Costs of sources [lo, hi) under the shared snapshot into [out].
   Workers share the flat CSR read-only; each chunk acquires one pooled
   row and one scratch, sweeps its whole source range through them, and
   releases once — so per-sweep overhead (pool bookkeeping, the obs
   counter) is paid per chunk, not per node, and parallel domains never
   meet on the allocator. *)
let chunk_costs ?objective instance csr out lo hi =
  let ws = Bbc_graph.Workspace.get () in
  let scratch = Bbc_graph.Workspace.scratch ws in
  let row = Bbc_graph.Workspace.acquire ws (Instance.n instance) in
  for u = lo to hi - 1 do
    Bbc_graph.Csr.sssp csr scratch ~src:u ~dist:row;
    out.(u) <- cost_of_distances ?objective instance u row;
    Bbc_graph.Csr.reset scratch row
  done;
  Bbc_graph.Workspace.release_clean ws row;
  Bbc_obs.add obs_sssp (hi - lo)

let all_costs ?objective ?jobs instance config =
  let n = Instance.n instance in
  let jobs = Bbc_parallel.jobs_for ?jobs ~threshold:parallel_threshold n in
  Bbc_obs.with_span "eval.all_costs"
    ~attrs:[ ("n", Bbc_obs.Int n); ("jobs", Bbc_obs.Int jobs) ] (fun () ->
      let csr = Config.to_csr instance config in
      let out = Array.make n 0 in
      Bbc_parallel.parallel_for_chunks ~jobs ~chunk:(contiguous_chunk ~jobs n) 0 n
        (chunk_costs ?objective instance csr out);
      out)

let social_cost ?objective ?jobs instance config =
  let n = Instance.n instance in
  let jobs = Bbc_parallel.jobs_for ?jobs ~threshold:parallel_threshold n in
  Bbc_obs.with_span "eval.social_cost"
    ~attrs:[ ("n", Bbc_obs.Int n); ("jobs", Bbc_obs.Int jobs) ] (fun () ->
      let csr = Config.to_csr instance config in
      (* Chunk-indexed partial sums folded in order: same total as the
         sequential fold, whatever the scheduling. *)
      let chunk = contiguous_chunk ~jobs n in
      let nchunks = if n = 0 then 0 else 1 + ((n - 1) / chunk) in
      let partial = Array.make (max nchunks 1) 0 in
      Bbc_parallel.parallel_for_chunks ~jobs ~chunk 0 n (fun lo hi ->
          let ws = Bbc_graph.Workspace.get () in
          let scratch = Bbc_graph.Workspace.scratch ws in
          let row = Bbc_graph.Workspace.acquire ws n in
          let acc = ref 0 in
          for u = lo to hi - 1 do
            Bbc_graph.Csr.sssp csr scratch ~src:u ~dist:row;
            acc := !acc + cost_of_distances ?objective instance u row;
            Bbc_graph.Csr.reset scratch row
          done;
          Bbc_graph.Workspace.release_clean ws row;
          Bbc_obs.add obs_sssp (hi - lo);
          partial.(lo / chunk) <- !acc);
      Array.fold_left ( + ) 0 partial)
