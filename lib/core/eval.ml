module Paths = Bbc_graph.Paths

let cost_of_distances ?(objective = Objective.Sum) instance u dist =
  let n = Instance.n instance in
  let m = Instance.penalty instance in
  let acc = ref (Objective.identity objective) in
  for v = 0 to n - 1 do
    if v <> u then begin
      let w = Instance.weight instance u v in
      if w > 0 then begin
        let d = dist.(v) in
        let d = if d = Paths.unreachable then m else d in
        acc := Objective.fold objective !acc (w * d)
      end
    end
  done;
  !acc

let node_cost ?objective ?graph instance config u =
  let g = match graph with Some g -> g | None -> Config.to_graph instance config in
  cost_of_distances ?objective instance u (Paths.shortest g u)

(* One SSSP per source: below this node count the pool fan-out costs
   more than the row of BFS/Dijkstra runs it saves. *)
let parallel_threshold = 64

(* [eval.sssp] counts single-source runs; the incr sits inside the pool
   workers, exercising Bbc_obs's per-domain shards. *)
let obs_sssp = Bbc_obs.counter "eval.sssp"

let all_costs ?objective ?jobs instance config =
  let g = Config.to_graph instance config in
  let n = Instance.n instance in
  let jobs = Bbc_parallel.jobs_for ?jobs ~threshold:parallel_threshold n in
  Bbc_obs.with_span "eval.all_costs"
    ~attrs:[ ("n", Bbc_obs.Int n); ("jobs", Bbc_obs.Int jobs) ] (fun () ->
      (* Workers share the realized graph read-only; each SSSP allocates its
         own distance array, so per-node evaluations are independent. *)
      Bbc_parallel.parallel_init ~jobs n (fun u ->
          Bbc_obs.incr obs_sssp;
          node_cost ?objective ~graph:g instance config u))

let social_cost ?objective ?jobs instance config =
  let g = Config.to_graph instance config in
  let n = Instance.n instance in
  let jobs = Bbc_parallel.jobs_for ?jobs ~threshold:parallel_threshold n in
  Bbc_obs.with_span "eval.social_cost"
    ~attrs:[ ("n", Bbc_obs.Int n); ("jobs", Bbc_obs.Int jobs) ] (fun () ->
      Bbc_parallel.parallel_reduce ~jobs ~neutral:0 ~combine:( + ) 0 n (fun u ->
          Bbc_obs.incr obs_sssp;
          node_cost ?objective ~graph:g instance config u))
