module Paths = Bbc_graph.Paths

(* The representation and objective dispatch is hoisted out of the
   per-node loop: this fold runs once per SSSP across every evaluation
   path, and the generic [Objective.fold]-per-element version costs a
   non-inlined call (plus a weight lookup dispatch) per node. *)
let cost_of_distances ?(objective = Objective.Sum) instance u dist =
  let n = Instance.n instance in
  let m = Instance.penalty instance in
  match objective with
  | Objective.Sum -> (
      match Instance.weight_row instance u with
      | None ->
          let acc = ref 0 in
          for v = 0 to n - 1 do
            if v <> u then begin
              let d = dist.(v) in
              acc := !acc + (if d = Paths.unreachable then m else d)
            end
          done;
          !acc
      | Some wrow ->
          let acc = ref 0 in
          for v = 0 to n - 1 do
            if v <> u then begin
              let w = wrow.(v) in
              if w > 0 then begin
                let d = dist.(v) in
                acc := !acc + (w * if d = Paths.unreachable then m else d)
              end
            end
          done;
          !acc)
  | Objective.Max ->
      let acc = ref 0 in
      for v = 0 to n - 1 do
        if v <> u then begin
          let w = Instance.weight instance u v in
          if w > 0 then begin
            let d = dist.(v) in
            let d = if d = Paths.unreachable then m else d in
            if w * d > !acc then acc := w * d
          end
        end
      done;
      !acc

(* The same fold over a compact int32 row (see csr.mli): the large-n
   estimator keeps distances 4 bytes wide, so the per-landmark cost fold
   reads the Bigarray directly instead of widening the whole row. *)
let cost_of_distances32 ?(objective = Objective.Sum) instance u
    (dist : Bbc_graph.Csr.dist32) =
  let n = Instance.n instance in
  let m = Instance.penalty instance in
  let inf = Bbc_graph.Csr.unreachable32 in
  match objective with
  | Objective.Sum -> (
      match Instance.weight_row instance u with
      | None ->
          let acc = ref 0 in
          for v = 0 to n - 1 do
            if v <> u then begin
              let d = Bigarray.Array1.unsafe_get dist v in
              acc := !acc + (if d = inf then m else Int32.to_int d)
            end
          done;
          !acc
      | Some wrow ->
          let acc = ref 0 in
          for v = 0 to n - 1 do
            if v <> u then begin
              let w = wrow.(v) in
              if w > 0 then begin
                let d = Bigarray.Array1.unsafe_get dist v in
                acc := !acc + (w * if d = inf then m else Int32.to_int d)
              end
            end
          done;
          !acc)
  | Objective.Max ->
      let acc = ref 0 in
      for v = 0 to n - 1 do
        if v <> u then begin
          let w = Instance.weight instance u v in
          if w > 0 then begin
            let d = Bigarray.Array1.unsafe_get dist v in
            let d = if d = inf then m else Int32.to_int d in
            if w * d > !acc then acc := w * d
          end
        end
      done;
      !acc

let node_cost ?objective ?graph instance config u =
  let g = match graph with Some g -> g | None -> Config.to_graph instance config in
  cost_of_distances ?objective instance u (Paths.shortest g u)

(* One SSSP per source: below this node count the pool fan-out costs
   more than the row of BFS/Dijkstra runs it saves. *)
let parallel_threshold = 64

(* [eval.sssp] counts single-source runs; the incr sits inside the pool
   workers, exercising Bbc_obs's per-domain shards. *)
let obs_sssp = Bbc_obs.counter "eval.sssp"

(* Cost of one source under the shared CSR snapshot, allocation-free:
   sweep into this domain's pooled row, fold the distances, then undo
   the sweep with the O(visited) dirty-list reset. *)
let csr_node_cost ?objective instance csr u =
  let ws = Bbc_graph.Workspace.get () in
  let scratch = Bbc_graph.Workspace.scratch ws in
  let row = Bbc_graph.Workspace.acquire ws (Instance.n instance) in
  Bbc_graph.Csr.sssp csr scratch ~src:u ~dist:row;
  let c = cost_of_distances ?objective instance u row in
  Bbc_graph.Csr.reset scratch row;
  Bbc_graph.Workspace.release_clean ws row;
  c

(* Costs of sources [lo, hi) under the shared snapshot, fed to [emit].
   Unit-length snapshots sweep up to [Csr.batch_width] sources per
   bit-parallel window into pooled rows, fold each row, and restore the
   whole window through the dirty list; weighted snapshots keep the
   scalar one-row loop (Dijkstra has no batched path, and one live row
   keeps the O(visited) per-sweep reset).  Workers share the flat CSR
   read-only and rows never escape the chunk, so parallel domains never
   meet on the allocator. *)
let batched_costs ?objective instance csr ~emit lo hi =
  let n = Instance.n instance in
  let ws = Bbc_graph.Workspace.get () in
  let scratch = Bbc_graph.Workspace.scratch ws in
  if Bbc_graph.Csr.unit_lengths csr then begin
    let width = min Bbc_graph.Csr.batch_width (hi - lo) in
    let rows = Bbc_graph.Workspace.acquire_many ws n width in
    let pos = ref lo in
    while !pos < hi do
      let base = !pos in
      let k = min width (hi - base) in
      let srcs = Array.init k (fun i -> base + i) in
      let rows_k = if k = width then rows else Array.sub rows 0 k in
      Bbc_graph.Csr.sssp_batch csr scratch ~srcs ~rows:rows_k;
      for i = 0 to k - 1 do
        emit (base + i) (cost_of_distances ?objective instance (base + i) rows.(i))
      done;
      Bbc_graph.Csr.reset_rows scratch ~rows:rows_k;
      pos := base + k
    done;
    Bbc_graph.Workspace.release_clean_many ws rows
  end
  else begin
    let row = Bbc_graph.Workspace.acquire ws n in
    for u = lo to hi - 1 do
      Bbc_graph.Csr.sssp csr scratch ~src:u ~dist:row;
      emit u (cost_of_distances ?objective instance u row);
      Bbc_graph.Csr.reset scratch row
    done;
    Bbc_graph.Workspace.release_clean ws row
  end;
  Bbc_obs.add obs_sssp (hi - lo)

(* One bit-parallel window per pool pull: coarse enough for jobs >= 2
   to pay for real source counts, fine enough to balance across
   domains.  jobs = 1 receives the whole range as a single chunk and
   [batched_costs] windows it internally over one reused row set. *)
let eval_chunk = Bbc_graph.Csr.batch_width

let all_costs ?objective ?jobs instance config =
  let n = Instance.n instance in
  let jobs = Bbc_parallel.jobs_for ?jobs ~threshold:parallel_threshold n in
  Bbc_obs.with_span "eval.all_costs"
    ~attrs:[ ("n", Bbc_obs.Int n); ("jobs", Bbc_obs.Int jobs) ] (fun () ->
      let csr = Config.to_csr instance config in
      let out = Array.make n 0 in
      Bbc_parallel.parallel_for_chunks ~jobs ~chunk:eval_chunk 0 n
        (batched_costs ?objective instance csr ~emit:(fun u c -> out.(u) <- c));
      out)

let social_cost ?objective ?jobs instance config =
  let n = Instance.n instance in
  let jobs = Bbc_parallel.jobs_for ?jobs ~threshold:parallel_threshold n in
  Bbc_obs.with_span "eval.social_cost"
    ~attrs:[ ("n", Bbc_obs.Int n); ("jobs", Bbc_obs.Int jobs) ] (fun () ->
      let csr = Config.to_csr instance config in
      (* Chunk-indexed partial sums folded in order: same total as the
         sequential fold, whatever the scheduling. *)
      let nchunks = if n = 0 then 0 else 1 + ((n - 1) / eval_chunk) in
      let partial = Array.make (max nchunks 1) 0 in
      Bbc_parallel.parallel_for_chunks ~jobs ~chunk:eval_chunk 0 n (fun lo hi ->
          let acc = ref 0 in
          batched_costs ?objective instance csr ~emit:(fun _ c -> acc := !acc + c) lo hi;
          partial.(lo / eval_chunk) <- !acc);
      Array.fold_left ( + ) 0 partial)
