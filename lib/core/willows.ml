type params = { k : int; h : int; l : int }

let validate { k; h; l } =
  if k < 2 then invalid_arg "Willows: k must be >= 2";
  if h < 1 then invalid_arg "Willows: h must be >= 1";
  if l < 0 then invalid_arg "Willows: l must be >= 0"

let pow k e =
  let rec go acc e = if e = 0 then acc else go (acc * k) (e - 1) in
  go 1 e

let tree_size { k; h; _ } = (pow k (h + 1) - 1) / (k - 1)

let leaves_per_tree { k; h; _ } = pow k h

let section_size p = tree_size p + (leaves_per_tree p * p.l)

let size p = p.k * section_size p

(* (h+l)^2/4 + h + 2l + 1 < n/k, exactly: multiply through by 4.
   n/k = section_size is an integer. *)
let satisfies_paper_restriction p =
  validate p;
  let lhs = ((p.h + p.l) * (p.h + p.l)) + (4 * p.h) + (8 * p.l) + 4 in
  lhs < 4 * section_size p

let max_tail_for ~k ~h =
  let rec go l best =
    if l > 1_000_000 then best
    else if satisfies_paper_restriction { k; h; l } then go (l + 1) l
    else best
  in
  go 0 (-1)

let root p i = i * section_size p

let roots p = List.init p.k (root p)

let section_of p v = v / section_size p

(* Node ids within section [i] (base = i * section_size):
   - tree nodes occupy local ids [0, tree_size) in BFS order
     (children of local [t] are [k*t + 1 .. k*t + k]);
   - the tail under the [j]-th leaf occupies local ids
     [tree_size + j*l .. tree_size + j*l + l - 1], top to bottom. *)
let build p =
  validate p;
  let n = size p in
  let k = p.k in
  let instance = Instance.uniform ~n ~k in
  let t_size = tree_size p in
  let internal = (t_size - 1) / k in
  (* internal node count: nodes with k children = (k^h - 1)/(k - 1) *)
  let strategies = Array.make n [] in
  for i = 0 to k - 1 do
    let base = i * section_size p in
    (* Tree edges. *)
    for t = 0 to internal - 1 do
      strategies.(base + t) <- List.init k (fun c -> base + (k * t) + c + 1)
    done;
    (* Chains: leaf + tail below it. *)
    let own_root = root p i in
    let all_roots = roots p in
    let pattern_a = List.filter (fun r -> r <> own_root) all_roots in
    let excluded_b = root p ((i + 1) mod k) in
    let pattern_b = List.filter (fun r -> r <> excluded_b) all_roots in
    for j = 0 to leaves_per_tree p - 1 do
      let chain d =
        (* d = 0 is the leaf; d in [1, l] are tail nodes. *)
        if d = 0 then base + internal + j
        else base + t_size + (j * p.l) + (d - 1)
      in
      for d = 0 to p.l do
        let v = chain d in
        if d = p.l then strategies.(v) <- all_roots
        else begin
          let pat = if (p.l - 1 - d) mod 2 = 0 then pattern_a else pattern_b in
          strategies.(v) <- chain (d + 1) :: pat
        end
      done
    done
  done;
  (instance, Config.of_lists n strategies)

let pp_params fmt p =
  Format.fprintf fmt "willows(k=%d, h=%d, l=%d, n=%d)" p.k p.h p.l (size p)

let representative_nodes p =
  validate p;
  (* Section 0's base is 0.  Tree levels: the first node of each level in
     BFS order; level d starts at index (k^d - 1)/(k - 1).  Tail depths:
     the first chain of the section (under leaf 0). *)
  let level_start d = (pow p.k d - 1) / (p.k - 1) in
  let tree = List.init (p.h + 1) level_start in
  let tails = List.init p.l (fun d -> tree_size p + d) in
  tree @ tails

let is_stable_sampled p instance config =
  Stability.nodes_stable instance config (representative_nodes p)
