type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* Keep a fractional marker so the value re-parses as a float. *)
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_nan f || Float.is_integer (f /. 0.0) then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_to_string f)
  | Str s -> escape_to buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          render buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          render buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  render buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the raw string.                     *)

exception Parse_error of int * string

(* Bounds parser recursion: pathological inputs like "[[[[…" must fail
   with a Parse_error instead of a Stack_overflow, which would escape
   the [try] below and kill a long-running server. *)
let max_depth = 512

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= len && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= len then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > len then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* Encode the code point as UTF-8 (surrogates are kept
                      as-is in their raw form; the laboratory's payloads
                      are ASCII). *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      while !pos < len && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "malformed number";
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "malformed number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "malformed number")
  in
  let rec parse_value depth =
    skip_ws ();
    if depth > max_depth then fail (Printf.sprintf "nesting deeper than %d" max_depth);
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> len then Error (Printf.sprintf "offset %d: trailing input" !pos)
    else Ok v
  with
  | Parse_error (p, msg) -> Error (Printf.sprintf "offset %d: %s" p msg)
  | Stack_overflow -> Error "nesting too deep"

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 2.0 ** 52.0 ->
      Some (int_of_float f)
  | _ -> None

let to_float = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None

let int_list v =
  match v with
  | List l ->
      let ints = List.map to_int l in
      if List.exists Option.is_none ints then None
      else Some (List.map Option.get ints)
  | _ -> None
