(** The "Forest of Willows" stable graphs (paper, Definition 1, Figure 3).

    For parameters [(k, h, l)] the graph has [k] sections.  Section [i]
    consists of a complete directed [k]-ary tree of height [h] rooted at
    [r_i], and, beneath each of its [k^h] leaves, a directed tail of [l]
    extra nodes.  Non-essential edges (the budget left over after the
    tree/tail edges) point at roots:

    - the last node of each tail links to all [k] roots;
    - the second-to-last links to every root except its own ("pattern A");
    - going up the tail (and ending at the leaf), nodes alternate between
      pattern A and "pattern B" = every root except one fixed non-own root
      (so pattern B includes the own root);
    - with [l = 0] the leaf itself is the "last node": it links to all
      [k] roots (the family then degenerates to [k] complete [k]-ary
      trees with leaf-to-root edges, the minimum-social-cost end of the
      spectrum).

    Lemma 6 proves these are pure Nash equilibria of the [(n,k)]-uniform
    game whenever [(h+l)^2/4 + h + 2l + 1 < n/k]; we verify stability
    computationally in the E4 experiment. *)

type params = { k : int; h : int; l : int }

val size : params -> int
(** Total node count [n = k * (tree_size + k^h * l)]. *)

val tree_size : params -> int
(** Nodes of one complete [k]-ary tree of height [h]. *)

val section_size : params -> int

val satisfies_paper_restriction : params -> bool
(** The Definition-1 side condition
    [(h+l)^2/4 + h + 2l + 1 < n/k] (evaluated exactly, in integers scaled
    by 4). *)

val max_tail_for : k:int -> h:int -> int
(** Largest [l >= 0] satisfying the restriction for the given [k, h]
    ([-1] if even [l = 0] fails). *)

val build : params -> Instance.t * Config.t
(** The [(n,k)]-uniform instance together with the initial configuration
    of Definition 1.  Requires [k >= 2], [h >= 1], [l >= 0]. *)

val root : params -> int -> int
(** [root p i] is the node id of [r_i], [0 <= i < k]. *)

val roots : params -> int list

val section_of : params -> int -> int
(** Which section a node id belongs to. *)

val representative_nodes : params -> int list
(** One node per symmetry orbit of the initial configuration: the
    construction is invariant under relabeling sections (composed with a
    rotation of the root set) and under permuting the subtrees within a
    section, so node orbits are exactly "tree level d" (0 <= d <= h) and
    "tail depth d" (1 <= d <= l).  Verifying stability of these
    representatives therefore verifies it for all nodes; tests
    cross-check the sampled verdict against the full one on small
    instances. *)

val is_stable_sampled : params -> Instance.t -> Config.t -> bool
(** [Stability.nodes_stable] over {!representative_nodes}. *)

val pp_params : Format.formatter -> params -> unit
