(** Ordinal-potential analysis (paper, Section 4.3).

    A finite game admits an ordinal potential iff it has the finite
    improvement property (FIP): every path of strictly-improving
    unilateral deviations terminates — equivalently, the {e improvement
    graph} over profiles (one arc per strictly improving deviation) is
    acyclic (Monderer & Shapley 1996).

    The paper proves uniform BBC games are {e not} ordinal potential
    games by exhibiting a best-response cycle (Figure 4, at n = 7).
    This module makes the claim checkable at two scales:

    - for games whose profile space fits in memory, {!improvement_graph}
      materializes the full graph and {!has_finite_improvement_property}
      decides FIP exactly (acyclicity via the library's own SCC);
    - for larger games, a best-response cycle found by {!Dynamics} is a
      direct witness of "no ordinal potential" (see E9).

    One can also ask for best-response-only dynamics (the [best_only]
    flag keeps only deviations to exact best responses), giving the FBRP
    (finite best-reply property) — a strictly weaker requirement. *)

type space = {
  profiles : Config.t array;  (** All profiles of the candidate space. *)
  index : Config.t -> int;  (** Position of a profile in [profiles]. *)
  candidates : int list list array;  (** Per-node strategy lists. *)
}

val enumerate_space :
  ?candidates:int list list array -> ?max_profiles:int -> Instance.t -> space option
(** Materialize the profile space (product of per-node candidate
    strategy lists, by default all feasible strategies).  [None] if it
    exceeds [max_profiles] (default [200_000]). *)

val improvement_graph :
  ?objective:Objective.t ->
  ?best_only:bool ->
  Instance.t ->
  space ->
  Bbc_graph.Digraph.t
(** Arc [p -> p'] when [p'] differs from [p] in one node's strategy and
    that node's cost strictly decreases.  Both endpoints must lie in the
    space (deviations leaving a restricted space are skipped; with the
    default full space every deviation is represented).  With
    [best_only] (default false) only deviations to exact best responses
    are kept. *)

val has_finite_improvement_property :
  ?objective:Objective.t ->
  ?best_only:bool ->
  ?candidates:int list list array ->
  ?max_profiles:int ->
  Instance.t ->
  bool option
(** Whether the improvement graph is acyclic.  [None] if the space is
    too large to materialize.  [Some false] proves the game admits no
    ordinal potential. *)

val sinks_are_equilibria :
  ?objective:Objective.t -> Instance.t -> space -> Bbc_graph.Digraph.t -> bool
(** Sanity invariant used in tests: a profile with no outgoing
    improvement arc (over the {e full} space) is exactly a pure NE. *)
