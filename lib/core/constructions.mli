(** Explicit configurations from the paper, other than Forest of Willows.

    - {!ring_with_path}: the Omega(n^2)-step instance following Theorem 6
      (a directed ring over [r >= n/2] nodes plus a directed path of
      [p = n - r] nodes feeding into the ring, [k = 1]).
    - {!best_response_loop}: a [(7,2)]-uniform configuration whose
      round-robin best-response walk cycles (Figure 4 demonstrates such a
      loop; the paper's figure gives only node costs, so the concrete
      edge set here was found by seeded search with this library and is
      verified to cycle by the E9 experiment).
    - {!max_anarchy}: the high-cost BBC-max Nash equilibrium of
      Theorem 8 / Figure 6 ([2k-1] tails of length [l] plus a root). *)

val ring_with_path : ring:int -> path:int -> Instance.t * Config.t
(** [(n,1)]-uniform instance, [n = ring + path]: nodes [0..ring-1] form a
    directed ring; nodes [ring..n-1] a directed path whose last node
    links to ring node 0.  The path's first node (the "tail" [T]) reaches
    every node.  Requires [ring >= 2], [path >= 1]. *)

val ring_with_path_tail : ring:int -> int
(** Node id of the path's first node [T]. *)

val best_response_loop : unit -> Instance.t * Config.t
(** A [(7,2)]-uniform starting configuration on which the round-robin
    walk (order 0,1,...,6) provably cycles, witnessing that uniform BBC
    games are not ordinal potential games (paper, Figure 4). *)

val max_anarchy : k:int -> l:int -> Instance.t * Config.t
(** Theorem 8's construction on [n = 1 + (2k-1) * l] nodes (uniform
    game, intended for the [Max] objective).  Node 0 is the root; tail
    [i] (of [2k-1]) occupies ids [1 + i*l .. 1 + i*l + l - 1] top to
    bottom.  Requires [k >= 3] and [l >= 3]; for [k = 2] use
    {!max_anarchy_seed_k2} / {!max_anarchy_equilibrium}. *)

val max_anarchy_heads : k:int -> l:int -> int list
(** The segment heads: the root and the tops of tails [k .. 2k-2]. *)

val max_anarchy_seed_k2 : l:int -> Instance.t * Config.t
(** The paper's "small adjustment" of the Theorem-8 construction for
    [k = 2] (three paths plus an extra node).  The paper under-determines
    the interior wiring, so this seed is not itself a Nash equilibrium;
    it relaxes to one in a few best-response rounds. *)

val max_anarchy_equilibrium : k:int -> l:int -> (Instance.t * Config.t) option
(** A {e verified} BBC-max Nash equilibrium of Theorem-8 shape: for
    [k >= 3] the construction itself (checked), for [k = 2] the
    best-response relaxation of {!max_anarchy_seed_k2}.  [None] if
    verification or convergence fails. *)
