type data =
  | Uniform of { k : int }
  | General of {
      weight : int array array;
      cost : int array array;
      length : int array array;
      budget : int array;
    }

type t = { size : int; data : data; penalty : int }

let uniform ~n ~k =
  if n < 2 then invalid_arg "Instance.uniform: n must be >= 2";
  if k < 1 || k > n - 1 then invalid_arg "Instance.uniform: need 1 <= k <= n - 1";
  { size = n; data = Uniform { k }; penalty = 4 * n }

let check_table name n table =
  if Array.length table <> n then
    invalid_arg (Printf.sprintf "Instance.general: %s has %d rows, expected %d" name (Array.length table) n);
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg (Printf.sprintf "Instance.general: ragged %s table" name))
    table

let general ?penalty ~weight ~cost ~length ~budget () =
  let n = Array.length weight in
  if n < 2 then invalid_arg "Instance.general: need at least 2 nodes";
  check_table "weight" n weight;
  check_table "cost" n cost;
  check_table "length" n length;
  if Array.length budget <> n then invalid_arg "Instance.general: budget length mismatch";
  let max_len = ref 1 in
  for u = 0 to n - 1 do
    if budget.(u) < 0 then invalid_arg "Instance.general: negative budget";
    for v = 0 to n - 1 do
      if u <> v then begin
        if weight.(u).(v) < 0 then invalid_arg "Instance.general: negative weight";
        if cost.(u).(v) < 0 then invalid_arg "Instance.general: negative cost";
        if length.(u).(v) < 1 then invalid_arg "Instance.general: length must be >= 1";
        if length.(u).(v) > !max_len then max_len := length.(u).(v)
      end
    done
  done;
  let penalty =
    match penalty with Some m -> m | None -> (2 * n * !max_len) + 1
  in
  if penalty <= n * !max_len then
    invalid_arg "Instance.general: penalty must exceed n * max length";
  { size = n; data = General { weight; cost; length; budget }; penalty }

let of_weights ?penalty ~k weight =
  let n = Array.length weight in
  let ones () = Array.init n (fun _ -> Array.make n 1) in
  general ?penalty ~weight ~cost:(ones ()) ~length:(ones ())
    ~budget:(Array.make n k) ()

let n t = t.size

let weight t u v =
  match t.data with Uniform _ -> 1 | General g -> g.weight.(u).(v)

let weight_row t u =
  match t.data with Uniform _ -> None | General g -> Some g.weight.(u)

let cost t u v = match t.data with Uniform _ -> 1 | General g -> g.cost.(u).(v)

let length t u v =
  match t.data with Uniform _ -> 1 | General g -> g.length.(u).(v)

let budget t u = match t.data with Uniform { k } -> k | General g -> g.budget.(u)

let penalty t = t.penalty

let is_uniform t = match t.data with Uniform _ -> true | General _ -> false

let uniform_k t = match t.data with Uniform { k } -> Some k | General _ -> None

let max_length t =
  match t.data with
  | Uniform _ -> 1
  | General g ->
      let m = ref 1 in
      for u = 0 to t.size - 1 do
        for v = 0 to t.size - 1 do
          if u <> v && g.length.(u).(v) > !m then m := g.length.(u).(v)
        done
      done;
      !m

let with_penalty t penalty =
  if penalty <= t.size * max_length t then
    invalid_arg "Instance.with_penalty: penalty must exceed n * max length";
  { t with penalty }

let pp fmt t =
  match t.data with
  | Uniform { k } -> Format.fprintf fmt "uniform(n=%d, k=%d, M=%d)" t.size k t.penalty
  | General _ -> Format.fprintf fmt "general(n=%d, M=%d)" t.size t.penalty
