module SM = Bbc_prng.Splitmix

let ones n = Array.init n (fun _ -> Array.make n 1)

let sparse_weights rng ~n ~k ?(zero_probability = 0.55) ?(max_weight = 3) () =
  let weight =
    Array.init n (fun u ->
        Array.init n (fun v ->
            if u = v then 0
            else if SM.float rng 1.0 < zero_probability then 0
            else 1 + SM.int rng max_weight))
  in
  Instance.of_weights ~k weight

let random_budgets rng ~n ~max_budget =
  let weight = Array.init n (fun u -> Array.init n (fun v -> if u = v then 0 else 1)) in
  let budget = Array.init n (fun _ -> SM.int rng (max_budget + 1)) in
  Instance.general ~weight ~cost:(ones n) ~length:(ones n) ~budget ()

let random_costs rng ~n ~k ?max_cost () =
  let max_cost = Option.value ~default:k max_cost in
  let weight = Array.init n (fun u -> Array.init n (fun v -> if u = v then 0 else 1)) in
  let cost =
    Array.init n (fun u ->
        Array.init n (fun v -> if u = v then 0 else 1 + SM.int rng max_cost))
  in
  Instance.general ~weight ~cost ~length:(ones n) ~budget:(Array.make n k) ()

let metric_lengths rng ~n ~k ?span () =
  let span = Option.value ~default:(4 * n) span in
  let point = Array.init n (fun _ -> SM.int rng (span + 1)) in
  let weight = Array.init n (fun u -> Array.init n (fun v -> if u = v then 0 else 1)) in
  let length =
    Array.init n (fun u ->
        Array.init n (fun v ->
            if u = v then 1 else max 1 (abs (point.(u) - point.(v)))))
  in
  Instance.general ~weight ~cost:(ones n) ~length ~budget:(Array.make n k) ()

(* ------------------------------------------------------------------ *)
(* Streaming paper families.

   Each family enumerates its strategy rows in ascending source order
   with ascending targets, which is exactly the order [Config.to_csr]
   emits (configs store sorted strategies) — so the rows can be fed
   straight into the ascending-source [Csr.builder] without ever
   materializing the list-based [Digraph].  The same enumerator also
   drives the small-n reference paths ([streaming_reference*]), so
   streaming and reference construction consume identical randomness
   and must agree bit for bit. *)

type family = Ring | Tree | Willows_family | Circulant | Random_k

let family_names =
  [
    ("ring", Ring);
    ("tree", Tree);
    ("willows", Willows_family);
    ("circulant", Circulant);
    ("random", Random_k);
  ]

let family_of_name name = List.assoc_opt name family_names

(* A resolved family: exact node/edge counts (the builder preallocates),
   the uniform budget, and the row enumerator.  [plan] is cheap; the
   enumerator re-derives its randomness from [seed] on every call, so
   invoking it several times (stream once, reference once) yields the
   same rows. *)
type plan = {
  p_n : int;
  p_m : int;
  p_k : int;
  p_iter : (int -> int list -> unit) -> unit;
}

let willows_plan ~n ~k =
  (* Fixed height 2, budget k' = max 2 k; the tail length l is solved so
     the willows fit in n nodes (every node has out-degree exactly k'). *)
  let wk = max 2 k in
  let h = 2 in
  let t_size = Willows.tree_size { Willows.k = wk; h; l = 0 } in
  let leaves = wk * wk in
  let internal = (t_size - 1) / wk in
  if n / wk < t_size then
    invalid_arg
      (Printf.sprintf "Gen_instance: willows(k=%d, h=%d) needs n >= %d" wk h (wk * t_size));
  let l = ((n / wk) - t_size) / leaves in
  let p = { Willows.k = wk; h; l } in
  let section = Willows.section_size p in
  let size = Willows.size p in
  let iter f =
    let all_roots = Willows.roots p in
    for i = 0 to wk - 1 do
      let base = i * section in
      let rows = Array.make section [] in
      for t = 0 to internal - 1 do
        rows.(t) <- List.init wk (fun c -> base + (wk * t) + c + 1)
      done;
      let own_root = Willows.root p i in
      let pattern_a = List.filter (fun r -> r <> own_root) all_roots in
      let excluded_b = Willows.root p ((i + 1) mod wk) in
      let pattern_b = List.filter (fun r -> r <> excluded_b) all_roots in
      for j = 0 to leaves - 1 do
        let chain d =
          if d = 0 then base + internal + j else base + t_size + (j * l) + (d - 1)
        in
        for d = 0 to l do
          let local = chain d - base in
          if d = l then rows.(local) <- all_roots
          else begin
            let pat = if (l - 1 - d) mod 2 = 0 then pattern_a else pattern_b in
            rows.(local) <- chain (d + 1) :: pat
          end
        done
      done;
      Array.iteri (fun local row -> f (base + local) (List.sort_uniq compare row)) rows
    done
  in
  { p_n = size; p_m = size * wk; p_k = wk; p_iter = iter }

let plan family ~n ~k ~seed =
  if n < 2 then invalid_arg "Gen_instance: streaming families need n >= 2";
  if k < 1 then invalid_arg "Gen_instance: streaming families need k >= 1";
  match family with
  | Ring ->
      {
        p_n = n;
        p_m = n;
        p_k = 1;
        p_iter =
          (fun f ->
            for u = 0 to n - 1 do
              f u [ (u + 1) mod n ]
            done);
      }
  | Tree ->
      (* k-ary BFS-order tree: children of [u] are [k*u + 1 .. k*u + k]. *)
      {
        p_n = n;
        p_m = n - 1;
        p_k = k;
        p_iter =
          (fun f ->
            for u = 0 to n - 1 do
              let lo = (k * u) + 1 in
              let row = if lo >= n then [] else List.init (min k (n - lo)) (fun c -> lo + c) in
              f u row
            done);
      }
  | Willows_family -> willows_plan ~n ~k
  | Circulant ->
      if k > n - 1 then invalid_arg "Gen_instance: circulant needs k <= n - 1";
      (* Same offset distribution as [Cayley.random_circulant]. *)
      let offsets =
        SM.sample_without_replacement (SM.create seed) k (n - 1) |> List.map (fun o -> o + 1)
      in
      {
        p_n = n;
        p_m = n * k;
        p_k = k;
        p_iter =
          (fun f ->
            for u = 0 to n - 1 do
              f u (List.sort compare (List.map (fun o -> (u + o) mod n) offsets))
            done);
      }
  | Random_k ->
      if k > n - 1 then invalid_arg "Gen_instance: random needs k <= n - 1";
      (* Same per-node draw as [Generators.random_k_out]: k distinct
         targets from [0, n-1), shifted to skip u. *)
      {
        p_n = n;
        p_m = n * k;
        p_k = k;
        p_iter =
          (fun f ->
            let rng = SM.create seed in
            for u = 0 to n - 1 do
              let row =
                SM.sample_without_replacement rng k (n - 1)
                |> List.map (fun t -> if t >= u then t + 1 else t)
              in
              f u (List.sort compare row)
            done);
      }

let streaming family ~n ~k ~seed =
  let p = plan family ~n ~k ~seed in
  let inst = Instance.uniform ~n:p.p_n ~k:p.p_k in
  let b = Bbc_graph.Csr.builder ~n:p.p_n ~m:p.p_m in
  p.p_iter (fun u row -> List.iter (fun v -> Bbc_graph.Csr.add b u v 1) row);
  (inst, Bbc_graph.Csr.finish b)

let streaming_reference family ~n ~k ~seed =
  let p = plan family ~n ~k ~seed in
  let inst = Instance.uniform ~n:p.p_n ~k:p.p_k in
  let strategies = Array.make p.p_n [] in
  p.p_iter (fun u row -> strategies.(u) <- row);
  (inst, Config.of_lists p.p_n strategies)

let streaming_reference_csr family ~n ~k ~seed =
  let p = plan family ~n ~k ~seed in
  let g = Bbc_graph.Digraph.create p.p_n in
  p.p_iter (fun u row ->
      (* Adjacency lists prepend, so insert reversed: [iter_out] (hence
         [Csr.of_digraph]) then yields the row in emission order. *)
      List.iter (fun v -> Bbc_graph.Digraph.add_edge g u v 1) (List.rev row));
  Bbc_graph.Csr.of_digraph g

let perturbed_uniform rng ~n ~k ~flips =
  let weight = Array.init n (fun u -> Array.init n (fun v -> if u = v then 0 else 1)) in
  for _ = 1 to flips do
    let u = SM.int rng n in
    let v = SM.int rng n in
    if u <> v then weight.(u).(v) <- 2
  done;
  Instance.of_weights ~k weight
