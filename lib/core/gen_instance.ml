module SM = Bbc_prng.Splitmix

let ones n = Array.init n (fun _ -> Array.make n 1)

let sparse_weights rng ~n ~k ?(zero_probability = 0.55) ?(max_weight = 3) () =
  let weight =
    Array.init n (fun u ->
        Array.init n (fun v ->
            if u = v then 0
            else if SM.float rng 1.0 < zero_probability then 0
            else 1 + SM.int rng max_weight))
  in
  Instance.of_weights ~k weight

let random_budgets rng ~n ~max_budget =
  let weight = Array.init n (fun u -> Array.init n (fun v -> if u = v then 0 else 1)) in
  let budget = Array.init n (fun _ -> SM.int rng (max_budget + 1)) in
  Instance.general ~weight ~cost:(ones n) ~length:(ones n) ~budget ()

let random_costs rng ~n ~k ?max_cost () =
  let max_cost = Option.value ~default:k max_cost in
  let weight = Array.init n (fun u -> Array.init n (fun v -> if u = v then 0 else 1)) in
  let cost =
    Array.init n (fun u ->
        Array.init n (fun v -> if u = v then 0 else 1 + SM.int rng max_cost))
  in
  Instance.general ~weight ~cost ~length:(ones n) ~budget:(Array.make n k) ()

let metric_lengths rng ~n ~k ?span () =
  let span = Option.value ~default:(4 * n) span in
  let point = Array.init n (fun _ -> SM.int rng (span + 1)) in
  let weight = Array.init n (fun u -> Array.init n (fun v -> if u = v then 0 else 1)) in
  let length =
    Array.init n (fun u ->
        Array.init n (fun v ->
            if u = v then 1 else max 1 (abs (point.(u) - point.(v)))))
  in
  Instance.general ~weight ~cost:(ones n) ~length ~budget:(Array.make n k) ()

let perturbed_uniform rng ~n ~k ~flips =
  let weight = Array.init n (fun u -> Array.init n (fun v -> if u = v then 0 else 1)) in
  for _ = 1 to flips do
    let u = SM.int rng n in
    let v = SM.int rng n in
    if u <> v then weight.(u).(v) <- 2
  done;
  Instance.of_weights ~k weight
