module Digraph = Bbc_graph.Digraph

type space = {
  profiles : Config.t array;
  index : Config.t -> int;
  candidates : int list list array;
}

let enumerate_space ?candidates ?(max_profiles = 200_000) instance =
  let n = Instance.n instance in
  let candidates =
    match candidates with
    | Some c -> c
    | None -> Array.init n (Exhaustive.all_strategies instance)
  in
  if Exhaustive.space_size candidates > float_of_int max_profiles then None
  else begin
    let acc = ref [] in
    let profile = Array.make n [] in
    let rec assign u =
      if u = n then acc := Config.of_lists n (Array.copy profile) :: !acc
      else
        List.iter
          (fun s ->
            profile.(u) <- s;
            assign (u + 1))
          candidates.(u)
    in
    assign 0;
    let profiles = Array.of_list (List.rev !acc) in
    (* Index by hash with exact-equality buckets. *)
    let table = Hashtbl.create (2 * Array.length profiles) in
    Array.iteri
      (fun i c ->
        let h = Config.hash c in
        let bucket = Option.value ~default:[] (Hashtbl.find_opt table h) in
        Hashtbl.replace table h ((c, i) :: bucket))
      profiles;
    let index c =
      match Hashtbl.find_opt table (Config.hash c) with
      | None -> raise Not_found
      | Some bucket -> (
          match List.find_opt (fun (c', _) -> Config.equal c c') bucket with
          | Some (_, i) -> i
          | None -> raise Not_found)
    in
    Some { profiles; index; candidates }
  end

let improvement_graph ?objective ?(best_only = false) instance space =
  let n = Instance.n instance in
  let g = Digraph.create (Array.length space.profiles) in
  Array.iteri
    (fun i config ->
      let costs = Eval.all_costs ?objective instance config in
      for u = 0 to n - 1 do
        if best_only then begin
          let best = Best_response.exact ?objective instance config u in
          if best.cost < costs.(u) then
            match space.index (Config.with_strategy config u best.strategy) with
            | j -> if not (Digraph.mem_edge g i j) then Digraph.add_edge g i j 1
            | exception Not_found -> ()
        end
        else
          (* Every strictly improving unilateral move inside the space:
             iterate u's candidate strategies directly. *)
          List.iter
            (fun s ->
              if s <> Config.targets config u then begin
                let config' = Config.with_strategy config u s in
                let c' = Eval.node_cost ?objective instance config' u in
                if c' < costs.(u) then
                  match space.index config' with
                  | j -> if not (Digraph.mem_edge g i j) then Digraph.add_edge g i j 1
                  | exception Not_found -> ()
              end)
            space.candidates.(u)
      done)
    space.profiles;
  g

let has_finite_improvement_property ?objective ?best_only ?candidates ?max_profiles
    instance =
  match enumerate_space ?candidates ?max_profiles instance with
  | None -> None
  | Some space ->
      let g = improvement_graph ?objective ?best_only instance space in
      (* Acyclic iff every SCC is a singleton and no self-loops (we never
         add self-loops, and strict improvement forbids them anyway). *)
      let scc = Bbc_graph.Scc.compute g in
      Some (scc.count = Digraph.n g)

let sinks_are_equilibria ?objective instance space g =
  let ok = ref true in
  Array.iteri
    (fun i config ->
      let is_sink = Digraph.out_degree g i = 0 in
      let is_ne = Stability.is_stable ?objective instance config in
      if is_sink <> is_ne then ok := false)
    space.profiles;
  !ok
