(** BBC game specification [<V, w, c, l, b>] plus the disconnection
    penalty [M] (paper, Section 2).

    For nodes [u, v]:
    - [weight t u v] is [u]'s preference for communicating with [v];
    - [cost t u v] is the price [u] pays to establish the link [u -> v];
    - [length t u v] is the length of that link if established;
    - [budget t u] bounds the total cost of [u]'s links;
    - [penalty t] is the distance charged for unreachable targets
      (the paper's [M >> n * max length]).

    Uniform games ([w = c = l = 1], [b = k]) get a dedicated compact
    representation: they are the main object of Sections 4–5 and are
    instantiated at sizes where materializing [n x n] matrices would be
    wasteful. *)

type t

val uniform : n:int -> k:int -> t
(** The [(n, k)]-uniform game.  Requires [n >= 2] and [1 <= k <= n - 1].
    Penalty defaults to [4 * n]. *)

val general :
  ?penalty:int ->
  weight:int array array ->
  cost:int array array ->
  length:int array array ->
  budget:int array ->
  unit ->
  t
(** A general (possibly non-uniform) game.  All four tables must be
    [n x n] (resp. length [n]); diagonal entries are ignored.  Weights,
    costs and budgets must be non-negative; lengths positive.  [penalty]
    defaults to [2 * n * max_length + 1], satisfying [M > n * max l]. *)

val of_weights : ?penalty:int -> k:int -> int array array -> t
(** Common non-uniform shape: unit costs and lengths, uniform budget [k],
    explicit preference matrix. *)

val n : t -> int

val weight : t -> int -> int -> int

val weight_row : t -> int -> int array option
(** [Some] of node [u]'s preference row for explicit-matrix instances,
    [None] for uniform ones (every weight is 1).  Lets evaluation hot
    loops hoist the representation dispatch out of their per-node
    iteration; treat the row as read-only. *)

val cost : t -> int -> int -> int
val length : t -> int -> int -> int
val budget : t -> int -> int
val penalty : t -> int

val is_uniform : t -> bool

val uniform_k : t -> int option
(** [Some k] when the instance was built with {!uniform}. *)

val max_length : t -> int

val with_penalty : t -> int -> t

val pp : Format.formatter -> t -> unit
