(** Social-cost baselines, fairness ratios, and price-of-anarchy /
    price-of-stability estimators for uniform games (paper, Section 4).

    Exact social optima are intractable in general, so ratios are taken
    against the degree-[k] information-theoretic lower bound: a node with
    out-degree at most [k] reaches at most [k^i] nodes at distance [i],
    so its cost is at least [sum_i i * min(k^i, remaining)].  The paper
    uses the same bound ("in any graph with max degree k, every node must
    have cost at least Omega(n log_k n)"). *)

val node_cost_lower_bound : n:int -> k:int -> int
(** Minimum possible sum-of-distances cost of a node in any out-degree-[k]
    graph on [n] nodes. *)

val social_cost_lower_bound : n:int -> k:int -> int
(** [n * node_cost_lower_bound]. *)

val eccentricity_lower_bound : n:int -> k:int -> int
(** Minimum possible max-distance (BBC-max node cost): the smallest [h]
    with [k + k^2 + ... + k^h >= n - 1]. *)

val max_social_cost_lower_bound : n:int -> k:int -> int
(** Lower bound on the total BBC-max social cost: every node's max
    distance is at least {!eccentricity_lower_bound}... times [n]. *)

type fairness = {
  min_cost : int;
  max_cost : int;
  ratio : float;  (** [max / min]. *)
  spread : int;  (** [max - min]; Lemma 1 bounds it by [n + n*floor(log_k n)]. *)
}

val fairness : ?objective:Objective.t -> Instance.t -> Config.t -> fairness

val lemma1_ratio_bound : n:int -> k:int -> float
(** The multiplicative fairness bound implied by Lemma 1's proof:
    [1 + (n + n * floor(log_k n)) / C*] with
    [C* = (n - n/k) * floor(log_k n)], which tends to [2 + 1/(k-1) + o(1)]
    — the paper states it as [2 + 1/k + o(1)].  Any stable graph's
    fairness ratio must be below this bound. *)

val lemma1_spread_bound : n:int -> k:int -> int
(** The additive fairness bound of Lemma 1: [n + n * floor(log_k n)]. *)

val floor_log : base:int -> int -> int
(** [floor_log ~base x] for [x >= 1, base >= 2]. *)

val anarchy_ratio : ?objective:Objective.t -> Instance.t -> Config.t -> float
(** Social cost of the given (presumed stable) profile over the social
    lower bound — a lower bound on the price of anarchy when the profile
    is a verified NE. *)
