(** Uniform BBC games played on Abelian Cayley graphs (paper, Section 4.2).

    A Cayley graph [G(H, S)] with [|S| = k] generators is a configuration
    of the [(|H|, k)]-uniform game in which every node buys the same
    offsets.  Theorem 5 shows no such graph is stable once [n >= c 2^k]:
    replacing the root's [a_i]-edge by an edge to [a_i * a_i] strictly
    improves the root for some [i].  By vertex-transitivity it suffices to
    examine the identity node. *)

type deviation = {
  generator : Bbc_group.Abelian.element;
  old_cost : int;  (** Identity node's cost in the Cayley configuration. *)
  new_cost : int;  (** Its cost after the [a_i -> a_i * a_i] replacement. *)
}

val to_game : Bbc_group.Cayley.t -> Instance.t * Config.t
(** The [(n, k)]-uniform instance and the Cayley configuration.  Requires
    [n >= 2] and [1 <= k <= n - 1]. *)

val theorem5_deviations : Bbc_group.Cayley.t -> deviation list
(** For each generator [a] with [a + a] distinct from [a] and [0], the
    exact effect on the identity node of swapping its [a]-link for an
    [a+a]-link.  (Exact costs, not the paper's bounds.) *)

val best_theorem5_deviation : Bbc_group.Cayley.t -> deviation option
(** The most improving of {!theorem5_deviations} (largest
    [old_cost - new_cost]), if any improves strictly. *)

val unstable_by_theorem5 : Bbc_group.Cayley.t -> bool
(** Whether the explicit Theorem-5 deviation already certifies
    instability.  [false] does {e not} imply stability (some other
    deviation may improve); use {!is_stable} for the full check. *)

val is_stable : Bbc_group.Cayley.t -> bool
(** Full stability check of the Cayley configuration (exact best response
    for the identity node only — vertex-transitivity makes all nodes
    equivalent). *)
