module Incremental = Bbc_graph.Incremental
module Paths = Bbc_graph.Paths

(* ------------------------------------------------------------------ *)
(* Global switch.                                                      *)

let enabled_flag =
  ref
    (match Sys.getenv_opt "BBC_NO_INCREMENTAL" with
    | Some ("1" | "true" | "yes") -> false
    | _ -> true)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let resolve = function Some b -> b | None -> !enabled_flag

(* ------------------------------------------------------------------ *)
(* Context.                                                            *)

type mask = {
  m_u : int;
  m_old : (int * int) list;
  m_undos : (Incremental.t * Incremental.undo) list;
  mutable m_fresh : int list; (* sources first materialized while masked *)
}

type ctx = {
  instance : Instance.t;
  graph : Incremental.graph; (* mutable mirror of [config]'s realized graph *)
  mutable config : Config.t;
  sssp : Incremental.t option array; (* full-graph SSSP per source, lazy *)
  dist_ver : int array; (* bumped when a source's distances change *)
  cost_val : int array;
  cost_ver : int array; (* dist_ver at cache time; -1 = empty *)
  cost_obj : Objective.t array;
  mutable masked : mask option;
}

let obs_contexts = Bbc_obs.counter "incr.contexts"
let obs_hits = Bbc_obs.counter "incr.cost_cache_hits"
let obs_misses = Bbc_obs.counter "incr.cost_cache_misses"
let obs_masks = Bbc_obs.counter "incr.masks"
let obs_threshold_rows = Bbc_obs.counter "incr.threshold_rows"
let obs_analytic = Bbc_obs.counter "incr.analytic_costs"
let obs_moves = Bbc_obs.counter "incr.moves"

let create instance config =
  let n = Instance.n instance in
  Bbc_obs.incr obs_contexts;
  {
    instance;
    graph = Incremental.of_digraph (Config.to_graph instance config);
    config;
    sssp = Array.make n None;
    dist_ver = Array.make n 0;
    cost_val = Array.make n 0;
    cost_ver = Array.make n (-1);
    cost_obj = Array.make n Objective.Sum;
    masked = None;
  }

let instance ctx = ctx.instance
let config ctx = ctx.config

let unmasked_or_fail ctx name =
  if ctx.masked <> None then invalid_arg ("Incr." ^ name ^ ": context is masked")

let sssp ctx v =
  match ctx.sssp.(v) with
  | Some s -> s
  | None ->
      let s = Incremental.create ctx.graph v in
      ctx.sssp.(v) <- Some s;
      (match ctx.masked with Some m -> m.m_fresh <- v :: m.m_fresh | None -> ());
      s

let distances_from ctx v =
  unmasked_or_fail ctx "distances_from";
  Incremental.distances (sssp ctx v)

(* ------------------------------------------------------------------ *)
(* Moves.                                                              *)

let apply_move ctx u targets =
  unmasked_or_fail ctx "apply_move";
  Bbc_obs.incr obs_moves;
  let es = List.map (fun v -> (v, Instance.length ctx.instance u v)) targets in
  let old = Incremental.replace_out ctx.graph u es in
  let removed = List.filter (fun e -> not (List.mem e es)) old in
  let added = List.filter (fun e -> not (List.mem e old)) es in
  if removed <> [] || added <> [] then
    Array.iteri
      (fun src s ->
        match s with
        | None -> ()
        | Some s ->
            let changed, _undo = Incremental.repair s ~u ~removed ~added in
            if changed > 0 then ctx.dist_ver.(src) <- ctx.dist_ver.(src) + 1)
      ctx.sssp;
  ctx.config <- Config.with_strategy ctx.config u targets

let ensure ctx config =
  if not (Config.equal ctx.config config) then begin
    unmasked_or_fail ctx "ensure";
    for u = 0 to Instance.n ctx.instance - 1 do
      let t = Config.targets config u in
      if t <> Config.targets ctx.config u then apply_move ctx u t
    done
  end

(* ------------------------------------------------------------------ *)
(* Cached node costs.                                                  *)

let node_cost ?(objective = Objective.Sum) ctx u =
  unmasked_or_fail ctx "node_cost";
  let s = sssp ctx u in
  if ctx.cost_ver.(u) = ctx.dist_ver.(u) && ctx.cost_obj.(u) = objective then begin
    Bbc_obs.incr obs_hits;
    ctx.cost_val.(u)
  end
  else begin
    Bbc_obs.incr obs_misses;
    let c = Eval.cost_of_distances ~objective ctx.instance u (Incremental.distances s) in
    ctx.cost_val.(u) <- c;
    ctx.cost_ver.(u) <- ctx.dist_ver.(u);
    ctx.cost_obj.(u) <- objective;
    c
  end

let all_costs ?objective ctx =
  Array.init (Instance.n ctx.instance) (fun u -> node_cost ?objective ctx u)

(* ------------------------------------------------------------------ *)
(* Best-response support.                                              *)

let functional ctx = Incremental.functional ctx.graph

(* Uniform k = 1 on a functional realized graph: every reachable set is a
   simple walk with unit steps, so singleton strategies have closed-form
   costs (see DESIGN section 9). *)
let analytic ctx = Instance.uniform_k ctx.instance = Some 1 && functional ctx

let empty_cost ?(objective = Objective.Sum) ctx u =
  ignore u;
  let n = Instance.n ctx.instance and m = Instance.penalty ctx.instance in
  match objective with
  | Objective.Sum -> (n - 1) * m
  | Objective.Max -> if n <= 1 then 0 else m

(* Cost of the singleton strategy {v} for player [u]: the surviving walk
   from [v] in G_{-u} has T vertices at distances 1..T from [u], where
   T = dist_v(u) when the walk hits [u] and the full reach of [v]
   otherwise; everything else pays the penalty. *)
let singleton_cost ?(objective = Objective.Sum) ctx u v =
  Bbc_obs.incr obs_analytic;
  let n = Instance.n ctx.instance and m = Instance.penalty ctx.instance in
  let s = sssp ctx v in
  let dv = Incremental.distances s in
  let t =
    if dv.(u) = Paths.unreachable then Incremental.reachable_count s else dv.(u)
  in
  match objective with
  | Objective.Sum -> (t * (t + 1) / 2) + ((n - 1 - t) * m)
  | Objective.Max -> if t = n - 1 then t else m

(* On a functional graph, G_{-u} distances from [v] follow from the
   full-graph SSSP: the unique walk from [v] survives exactly up to [u]
   (strictly increasing distances), so a distance is kept iff it does not
   exceed dist_v(u). *)
let threshold_row_into ctx ~u ~v dst =
  unmasked_or_fail ctx "threshold_row";
  Bbc_obs.incr obs_threshold_rows;
  let dv = Incremental.distances (sssp ctx v) in
  let t = dv.(u) in
  for i = 0 to Array.length dv - 1 do
    let d = dv.(i) in
    dst.(i) <- (if d <= t then d else Paths.unreachable)
  done

let threshold_row ctx ~u ~v =
  let dst = Array.make (Instance.n ctx.instance) Paths.unreachable in
  threshold_row_into ctx ~u ~v dst;
  dst

let mask ctx u =
  unmasked_or_fail ctx "mask";
  Bbc_obs.incr obs_masks;
  let old = Incremental.replace_out ctx.graph u [] in
  let undos = ref [] in
  Array.iter
    (function
      | None -> ()
      | Some s ->
          let _changed, undo = Incremental.repair s ~u ~removed:old ~added:[] in
          undos := (s, undo) :: !undos)
    ctx.sssp;
  ctx.masked <- Some { m_u = u; m_old = old; m_undos = !undos; m_fresh = [] }

let unmask ctx =
  match ctx.masked with
  | None -> invalid_arg "Incr.unmask: not masked"
  | Some m ->
      ignore (Incremental.replace_out ctx.graph m.m_u m.m_old);
      ctx.masked <- None;
      (* Pre-existing SSSPs: exact rollback, so caches keyed on their
         versions stay valid.  Fresh ones were built against G_{-u} and
         roll forward by re-relaxing the restored edges (decrease-only). *)
      List.iter (fun (s, undo) -> Incremental.undo s undo) m.m_undos;
      List.iter
        (fun v ->
          match ctx.sssp.(v) with
          | None -> ()
          | Some s ->
              ignore (Incremental.repair s ~u:m.m_u ~removed:[] ~added:m.m_old))
        m.m_fresh

let with_masked ctx u f =
  mask ctx u;
  Fun.protect ~finally:(fun () -> unmask ctx) f

let masked_row ctx v =
  if ctx.masked = None then invalid_arg "Incr.masked_row: not masked";
  Incremental.distances (sssp ctx v)
