(** Nash-equilibrium verification (polynomial in the instance size).

    A profile is stable (a pure Nash equilibrium) when no node has a
    feasible strategy with strictly smaller cost, all other strategies
    fixed.  Verification runs one exact best-response computation per
    node; [is_stable] short-circuits on the first unstable node.

    {b Engines.}  With [incremental] (default: {!Incr.enabled}) each call
    builds one {!Incr} context and scans nodes sequentially against its
    delta-repaired SSSPs.  With [~incremental:false] the per-node checks
    are independent from-scratch computations fanned over the
    {!Bbc_parallel} domain pool ([?jobs], early abort).  Both engines
    return identical results — verdicts, nodes, and costs.

    {b Context reuse.}  Every entry point also accepts [?ctx], a
    caller-owned {!Incr} context (a server session, a long dynamics
    walk).  Passing one forces the incremental engine, re-syncs the
    context to [config] via {!Incr.ensure} (a no-op when already in
    sync), and reuses its version-counter caches — repeated stability
    queries against a slowly-mutating configuration then only pay for
    what actually changed.  The context must have been created for the
    same instance.

    {b Parallelism.}  From-scratch per-node checks only read the shared
    instance and profile (both immutable) and build their own [G_{-u}]
    scratch graphs, honouring the read-only-graph contract of
    {!Bbc_graph.Digraph}.  The [?jobs] parameter (default:
    {!Bbc_parallel.default_jobs} for n >= 64, sequential below) applies
    to the from-scratch engine; the incremental engine is sequential by
    construction (contexts are single-domain state). *)

type deviation = {
  node : int;
  current_cost : int;
  better : Best_response.result;  (** A strictly improving strategy. *)
}

val is_stable :
  ?objective:Objective.t ->
  ?jobs:int ->
  ?ctx:Incr.ctx ->
  ?incremental:bool ->
  Instance.t ->
  Config.t ->
  bool

val nodes_stable :
  ?objective:Objective.t ->
  ?ctx:Incr.ctx ->
  ?incremental:bool ->
  Instance.t ->
  Config.t ->
  int list ->
  bool
(** Stability restricted to the given nodes (no improving deviation for
    any of them).  Used with symmetry arguments: verifying one
    representative per orbit of a vertex-symmetric configuration is
    equivalent to verifying every node. *)

val is_stable_parallel :
  ?objective:Objective.t -> ?domains:int -> Instance.t -> Config.t -> bool
(** [is_stable ~jobs:domains ~incremental:false] — kept for
    compatibility; [domains] defaults to {!Bbc_parallel.default_jobs}
    (no size threshold, so this always engages the pool).  Exact same
    verdict as {!is_stable}. *)

val find_deviation :
  ?objective:Objective.t ->
  ?jobs:int ->
  ?ctx:Incr.ctx ->
  ?incremental:bool ->
  Instance.t ->
  Config.t ->
  deviation option
(** First improving deviation in node order, if any.  The parallel scan
    still reports the {e lowest} unstable node, exactly like the
    sequential one. *)

val unstable_nodes :
  ?objective:Objective.t ->
  ?jobs:int ->
  ?ctx:Incr.ctx ->
  ?incremental:bool ->
  Instance.t ->
  Config.t ->
  int list
(** All nodes that currently have an improving deviation. *)

val stability_gap :
  ?objective:Objective.t ->
  ?jobs:int ->
  ?ctx:Incr.ctx ->
  ?incremental:bool ->
  Instance.t ->
  Config.t ->
  int
(** Max over nodes of [current_cost - best_response_cost]; 0 iff stable.
    (The additive analogue of epsilon-equilibrium.) *)

val pp_deviation : Format.formatter -> deviation -> unit
