(** Nash-equilibrium verification (polynomial in the instance size).

    A profile is stable (a pure Nash equilibrium) when no node has a
    feasible strategy with strictly smaller cost, all other strategies
    fixed.  Verification runs one exact best-response computation per
    node; [is_stable] short-circuits on the first unstable node. *)

type deviation = {
  node : int;
  current_cost : int;
  better : Best_response.result;  (** A strictly improving strategy. *)
}

val is_stable : ?objective:Objective.t -> Instance.t -> Config.t -> bool

val nodes_stable :
  ?objective:Objective.t -> Instance.t -> Config.t -> int list -> bool
(** Stability restricted to the given nodes (no improving deviation for
    any of them).  Used with symmetry arguments: verifying one
    representative per orbit of a vertex-symmetric configuration is
    equivalent to verifying every node. *)

val is_stable_parallel :
  ?objective:Objective.t -> ?domains:int -> Instance.t -> Config.t -> bool
(** {!is_stable} with the per-node best-response checks fanned out over
    OCaml 5 domains ([domains] defaults to
    [min 4 (Domain.recommended_domain_count () - 1)], floored at 1 — so
    on a single-core machine this transparently degrades to the
    sequential path).  Exact same verdict as {!is_stable}; each node's
    check is independent (it only reads the shared instance and
    profile), so on real multicore hardware the speedup is near-linear
    up to GC contention; with fewer cores than domains it is pure
    overhead. *)

val find_deviation :
  ?objective:Objective.t -> Instance.t -> Config.t -> deviation option
(** First improving deviation in node order, if any. *)

val unstable_nodes : ?objective:Objective.t -> Instance.t -> Config.t -> int list
(** All nodes that currently have an improving deviation. *)

val stability_gap : ?objective:Objective.t -> Instance.t -> Config.t -> int
(** Max over nodes of [current_cost - best_response_cost]; 0 iff stable.
    (The additive analogue of epsilon-equilibrium.) *)

val pp_deviation : Format.formatter -> deviation -> unit
