(** Minimal JSON values (stdlib-only), shared by the {!Codec} JSON
    encoders, the [bbc serve] wire protocol, and the [--json] flags.

    The representation distinguishes [Int] from [Float] so graph sizes,
    costs, and distances round-trip exactly; a number literal parses as
    [Int] iff it has no fraction, exponent, or overflow.  Object keys
    keep their textual order on both encode and decode, which makes the
    compact printer deterministic — the wire protocol and the cram tests
    rely on that. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace), keys in order.
    Strings are escaped per RFC 8259; non-finite floats render as
    [null]. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error.  Errors
    carry a character offset.  Nesting deeper than 512 levels is
    rejected as a parse error (never a [Stack_overflow]), so untrusted
    wire input cannot blow the stack. *)

(** {1 Accessors}

    Total functions used by decoders: they return [None] on a kind
    mismatch instead of raising. *)

val member : string -> t -> t option
(** Field lookup; [None] when absent or not an object. *)

val to_int : t -> int option
(** [Int n] and integral [Float]s. *)

val to_float : t -> float option
(** Any number. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val int_list : t -> int list option
(** A [List] whose elements are all integers. *)
