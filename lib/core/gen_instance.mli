(** Random instance generators for experiments and property tests.

    Each generator perturbs exactly one dimension away from uniformity,
    matching the paper's taxonomy of non-uniform games (weights, costs,
    lengths, budgets); {!metric_lengths} additionally produces length
    tables satisfying the triangle inequality (the regime of the related
    work the paper cites, e.g. Moscibroda et al.'s stretch games). *)

val sparse_weights :
  Bbc_prng.Splitmix.t ->
  n:int ->
  k:int ->
  ?zero_probability:float ->
  ?max_weight:int ->
  unit ->
  Instance.t
(** Uniform costs/lengths/budget [k]; each off-diagonal preference is 0
    with [zero_probability] (default 0.55), else uniform in
    [1..max_weight] (default 3). *)

val random_budgets :
  Bbc_prng.Splitmix.t -> n:int -> max_budget:int -> Instance.t
(** Uniform in everything except budgets, drawn uniformly from
    [0..max_budget] (the class of the paper's footnote-2 conjecture). *)

val random_costs :
  Bbc_prng.Splitmix.t -> n:int -> k:int -> ?max_cost:int -> unit -> Instance.t
(** Uniform weights/lengths, budget [k]; link costs uniform in
    [1..max_cost] (default [k]), so some links consume the whole budget. *)

val metric_lengths :
  Bbc_prng.Splitmix.t -> n:int -> k:int -> ?span:int -> unit -> Instance.t
(** Uniform weights/costs/budget [k]; lengths are shortest-path distances
    between random integer points on a line segment of length [span]
    (default [4 * n]), hence symmetric and triangle-inequality-satisfying
    with values in [1..span]. *)

val perturbed_uniform :
  Bbc_prng.Splitmix.t -> n:int -> k:int -> flips:int -> Instance.t
(** The uniform game with [flips] random preference entries doubled —
    the smallest step off the uniform island, used to probe how quickly
    equilibrium existence degrades. *)
