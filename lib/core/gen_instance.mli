(** Random instance generators for experiments and property tests.

    Each generator perturbs exactly one dimension away from uniformity,
    matching the paper's taxonomy of non-uniform games (weights, costs,
    lengths, budgets); {!metric_lengths} additionally produces length
    tables satisfying the triangle inequality (the regime of the related
    work the paper cites, e.g. Moscibroda et al.'s stretch games). *)

val sparse_weights :
  Bbc_prng.Splitmix.t ->
  n:int ->
  k:int ->
  ?zero_probability:float ->
  ?max_weight:int ->
  unit ->
  Instance.t
(** Uniform costs/lengths/budget [k]; each off-diagonal preference is 0
    with [zero_probability] (default 0.55), else uniform in
    [1..max_weight] (default 3). *)

val random_budgets :
  Bbc_prng.Splitmix.t -> n:int -> max_budget:int -> Instance.t
(** Uniform in everything except budgets, drawn uniformly from
    [0..max_budget] (the class of the paper's footnote-2 conjecture). *)

val random_costs :
  Bbc_prng.Splitmix.t -> n:int -> k:int -> ?max_cost:int -> unit -> Instance.t
(** Uniform weights/lengths, budget [k]; link costs uniform in
    [1..max_cost] (default [k]), so some links consume the whole budget. *)

val metric_lengths :
  Bbc_prng.Splitmix.t -> n:int -> k:int -> ?span:int -> unit -> Instance.t
(** Uniform weights/costs/budget [k]; lengths are shortest-path distances
    between random integer points on a line segment of length [span]
    (default [4 * n]), hence symmetric and triangle-inequality-satisfying
    with values in [1..span]. *)

val perturbed_uniform :
  Bbc_prng.Splitmix.t -> n:int -> k:int -> flips:int -> Instance.t
(** The uniform game with [flips] random preference entries doubled —
    the smallest step off the uniform island, used to probe how quickly
    equilibrium existence degrades. *)

(** {1 Streaming paper families}

    Large-n constructions of the paper's structural families — uniform
    instances with a deterministic (or seeded) strategy profile — built
    {e directly} into a flat {!Bbc_graph.Csr.t} via the ascending-source
    builder, never materializing the list-based [Digraph] or an
    [n * n] matrix.  Every family emits rows in ascending source order
    with ascending targets, the exact order [Config.to_csr] uses, so
    {!streaming} is bit-identical to realizing {!streaming_reference}
    (and to [Csr.of_digraph] of the same rows: {!streaming_reference_csr}).

    Families ([n] is a size {e budget}; the willows round down to the
    nearest complete shape):
    - [Ring]: the directed n-cycle, budget 1 (Proposition "ring is the
      cheap NE" family).
    - [Tree]: the k-ary BFS-order tree on n nodes (children of [u] are
      [k*u + 1 .. k*u + k]).
    - [Willows_family]: the paper's Forest-of-Willows with height 2,
      budget [max 2 k], tail length solved so the construction fits in
      [n] nodes.  A topology generator, not an equilibrium certificate:
      like {!Willows.build} at height 2, the profile is only a Nash
      equilibrium for short tails (small [n]) — at scale it makes a
      structured workload with genuine improving deviations for the
      sampled dynamics to find.
    - [Circulant]: the Cayley graph of Z_n with [k] seeded random
      offsets (same offset distribution as [Cayley.random_circulant]).
    - [Random_k]: each node links to [k] seeded-random distinct targets
      (same per-node draw as [Generators.random_k_out]). *)

type family = Ring | Tree | Willows_family | Circulant | Random_k

val family_names : (string * family) list
(** CLI-facing names: ring, tree, willows, circulant, random. *)

val family_of_name : string -> family option

val streaming :
  family -> n:int -> k:int -> seed:int -> Instance.t * Bbc_graph.Csr.t
(** The large-n path: instance plus realized CSR snapshot, streamed.
    Raises [Invalid_argument] on infeasible parameters (n < 2, k < 1,
    degree over n - 1, willows that don't fit). *)

val streaming_reference :
  family -> n:int -> k:int -> seed:int -> Instance.t * Config.t
(** Small-n oracle: the same rows materialized as a [Config.t] (usable
    with every exact engine).  [Config.to_csr] of it equals {!streaming}'s
    snapshot bit for bit. *)

val streaming_reference_csr : family -> n:int -> k:int -> seed:int -> Bbc_graph.Csr.t
(** Small-n oracle for the builder itself: the same rows pushed through
    [Digraph] + [Csr.of_digraph] — the equivalence gate's reference. *)
