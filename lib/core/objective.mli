(** The two node-cost aggregations studied in the paper.

    [Sum] is the standard BBC cost, the preference-weighted sum of
    distances (Section 2); [Max] is the BBC-max cost, the maximum
    preference-weighted distance (Section 5).  A node's utility is the
    negative of its cost; we work with costs throughout and minimize. *)

type t = Sum | Max

val fold : t -> int -> int -> int
(** [fold obj acc term] combines one weighted-distance term into the
    running aggregate ([acc + term] or [max acc term]). *)

val identity : t -> int
(** Neutral aggregate start value (0 for both objectives, since all terms
    are non-negative). *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
