let ring_with_path ~ring ~path =
  if ring < 2 then invalid_arg "Constructions.ring_with_path: ring >= 2";
  if path < 1 then invalid_arg "Constructions.ring_with_path: path >= 1";
  let n = ring + path in
  let instance = Instance.uniform ~n ~k:1 in
  let strategies =
    Array.init n (fun v ->
        if v < ring then [ (v + 1) mod ring ]
        else if v < n - 1 then [ v + 1 ]
        else [ 0 ])
  in
  (instance, Config.of_lists n strategies)

let ring_with_path_tail ~ring = ring

(* Found by seeded search over (7,2)-uniform configurations (the paper's
   Figure 4 gives only node costs, not the edge set).  The round-robin
   walk 0,1,...,6 on this configuration cycles with period 2 rounds and 6
   deviations per period (nodes 0, 1, 3, 0, 1, 3), matching the shape of
   the paper's loop (6 deviations by 3 nodes, node costs in 10..12). *)
let best_response_loop_strategies () =
  [| [ 3; 4 ]; [ 0; 6 ]; [ 0; 3 ]; [ 1; 4 ]; [ 2; 5 ]; [ 0; 1 ]; [ 2; 5 ] |]

let best_response_loop () =
  let n = 7 in
  let instance = Instance.uniform ~n ~k:2 in
  (instance, Config.of_lists n (best_response_loop_strategies ()))

let max_anarchy_heads ~k ~l =
  0 :: List.init (k - 1) (fun i -> 1 + ((k + i) * l))

(* The paper's "small adjustment" for k = 2 (Theorem 8): three paths of l
   nodes plus an extra node 0 pointing at the heads of the first two.
   The text under-determines the interior wiring; this seed follows the
   closest reading and is one short best-response relaxation away from a
   verified high-cost Max-equilibrium (see max_anarchy_equilibrium). *)
let max_anarchy_seed_k2 ~l =
  if l < 3 then invalid_arg "Constructions.max_anarchy_seed_k2: l >= 3";
  let n = 1 + (3 * l) in
  let top i = 1 + (i * l) in
  let last i = top i + l - 1 in
  let strategies = Array.make n [] in
  strategies.(0) <- [ top 0; top 1 ];
  for i = 0 to 2 do
    for d = 0 to l - 1 do
      let v = top i + d in
      if d = l - 1 then strategies.(v) <- List.sort_uniq compare [ top 2; 0 ]
      else if d = l - 2 && i < 2 then
        strategies.(v) <- List.sort_uniq compare [ v + 1; 0 ]
      else strategies.(v) <- List.sort_uniq compare [ v + 1; last i ]
    done
  done;
  (Instance.uniform ~n ~k:2, Config.of_lists n strategies)

let max_anarchy ~k ~l =
  if k < 3 then invalid_arg "Constructions.max_anarchy: k >= 3 (use max_anarchy_seed_k2)";
  if l < 3 then invalid_arg "Constructions.max_anarchy: l >= 3";
  let tails = (2 * k) - 1 in
  let n = 1 + (tails * l) in
  let instance = Instance.uniform ~n ~k in
  let top i = 1 + (i * l) in
  let last i = top i + l - 1 in
  let heads = max_anarchy_heads ~k ~l in
  let strategies = Array.make n [] in
  (* Root points to the tops of the first k tails. *)
  strategies.(0) <- List.init k top;
  for i = 0 to tails - 1 do
    for d = 0 to l - 1 do
      let v = top i + d in
      if d = l - 1 then
        (* Last node of each tail: one link per segment head. *)
        strategies.(v) <- heads
      else begin
        (* Chain link down the tail, plus root, plus the last node of the
           own tail; any remaining budget goes to further segment heads
           ("the location of the rest of the edges don't matter"). *)
        let base = [ v + 1; 0; last i ] in
        let base = List.sort_uniq compare base in
        let filler =
          List.filter (fun h -> not (List.mem h base) && h <> v) heads
        in
        let rec take xs m =
          if m <= 0 then []
          else match xs with [] -> [] | x :: tl -> x :: take tl (m - 1)
        in
        strategies.(v) <- base @ take filler (k - List.length base)
      end
    done
  done;
  (instance, Config.of_lists n strategies)

let max_anarchy_equilibrium ~k ~l =
  if k = 2 then begin
    (* Relax the k=2 seed to a nearby equilibrium by best-response
       dynamics (converges within a few rounds in practice). *)
    let instance, seed = max_anarchy_seed_k2 ~l in
    match
      Dynamics.run ~objective:Objective.Max ~scheduler:Dynamics.Round_robin
        ~max_rounds:(4 * Instance.n instance) instance seed
    with
    | Dynamics.Converged (config, _) -> Some (instance, config)
    | Dynamics.Cycled _ | Dynamics.Exhausted _ -> None
  end
  else
    let instance, config = max_anarchy ~k ~l in
    if Stability.is_stable ~objective:Objective.Max instance config then
      Some (instance, config)
    else None
