module Network = Bbc_flow.Network
module Mincost = Bbc_flow.Mincost

type strategy = float array
type profile = strategy array

let tolerance = 1e-7

let uniform_profile instance =
  let n = Instance.n instance in
  Array.init n (fun u ->
      (* Spend the budget equally across the n-1 potential links. *)
      let b = float_of_int (Instance.budget instance u) in
      Array.init n (fun v ->
          if v = u then 0.
          else b /. float_of_int (n - 1) /. float_of_int (Instance.cost instance u v)))

let integral_profile instance config =
  let n = Instance.n instance in
  Array.init n (fun u ->
      let s = Array.make n 0. in
      List.iter (fun v -> s.(v) <- 1.) (Config.targets config u);
      s)

let spend instance profile u =
  let total = ref 0. in
  Array.iteri
    (fun v a -> if v <> u then total := !total +. (a *. float_of_int (Instance.cost instance u v)))
    profile.(u);
  !total

let feasible instance profile =
  let ok = ref true in
  Array.iteri
    (fun u s ->
      if s.(u) <> 0. then ok := false;
      Array.iter (fun a -> if a < -.tolerance then ok := false) s;
      if spend instance profile u > float_of_int (Instance.budget instance u) +. tolerance
      then ok := false)
    profile;
  !ok

(* The paper's flow network: for every ordered pair (x, y), an arc of
   capacity a_x(y) and cost l(x,y), plus an infinite-capacity arc of cost
   M guaranteeing feasibility of every unit flow. *)
let network_of_profile instance profile =
  let n = Instance.n instance in
  let net = Network.create n in
  let m = float_of_int (Instance.penalty instance) in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      if x <> y then begin
        if profile.(x).(y) > tolerance then
          ignore
            (Network.add_arc net ~src:x ~dst:y ~capacity:profile.(x).(y)
               ~cost:(float_of_int (Instance.length instance x y)));
        ignore (Network.add_arc net ~src:x ~dst:y ~capacity:infinity ~cost:m)
      end
    done
  done;
  net

let pair_cost instance profile u v =
  if u = v then 0.
  else
    let net = network_of_profile instance profile in
    match Mincost.min_cost_unit_flow net ~source:u ~sink:v with
    | Some c -> c
    | None -> assert false (* the infinite arcs guarantee feasibility *)

let node_cost_on_network ?(objective = Objective.Sum) instance net u =
  let n = Instance.n instance in
  let acc = ref 0. in
  for v = 0 to n - 1 do
    if v <> u then begin
      let w = Instance.weight instance u v in
      if w > 0 then begin
        let c =
          match Mincost.min_cost_unit_flow net ~source:u ~sink:v with
          | Some c -> c
          | None -> assert false
        in
        let term = float_of_int w *. c in
        match objective with
        | Objective.Sum -> acc := !acc +. term
        | Objective.Max -> acc := Float.max !acc term
      end
    end
  done;
  !acc

let node_cost ?objective instance profile u =
  node_cost_on_network ?objective instance (network_of_profile instance profile) u

let social_cost ?objective instance profile =
  let n = Instance.n instance in
  let total = ref 0. in
  for u = 0 to n - 1 do
    total := !total +. node_cost ?objective instance profile u
  done;
  !total

let default_steps = [ 0.5; 0.25; 0.1 ]

(* Candidate deviations for node u: every pure single-link strategy, the
   uniform spread, and all pairwise budget transfers at the given step
   sizes from the current strategy. *)
let candidates instance profile u ~step_sizes =
  let n = Instance.n instance in
  let b = float_of_int (Instance.budget instance u) in
  let cost v = float_of_int (Instance.cost instance u v) in
  let pure =
    List.filter_map
      (fun v -> if v = u then None
        else begin
          let s = Array.make n 0. in
          s.(v) <- b /. cost v;
          Some s
        end)
      (List.init n Fun.id)
  in
  let spread =
    let s = Array.make n 0. in
    for v = 0 to n - 1 do
      if v <> u then s.(v) <- b /. float_of_int (n - 1) /. cost v
    done;
    [ s ]
  in
  let transfers =
    List.concat_map
      (fun delta ->
        let acc = ref [] in
        for v1 = 0 to n - 1 do
          for v2 = 0 to n - 1 do
            if v1 <> v2 && v1 <> u && v2 <> u then begin
              let available = profile.(u).(v1) *. cost v1 in
              let d = Float.min delta available in
              if d > tolerance then begin
                let s = Array.copy profile.(u) in
                s.(v1) <- s.(v1) -. (d /. cost v1);
                s.(v2) <- s.(v2) +. (d /. cost v2);
                acc := s :: !acc
              end
            end
          done
        done;
        !acc)
      step_sizes
  in
  pure @ spread @ transfers

let best_response_step ?objective ?(step_sizes = default_steps) instance profile u =
  let current = node_cost ?objective instance profile u in
  let try_strategy best s =
    let profile' = Array.copy profile in
    profile'.(u) <- s;
    let c = node_cost ?objective instance profile' u in
    match best with Some (_, c') when c' <= c -> best | _ -> Some (s, c)
  in
  let best =
    List.fold_left try_strategy None (candidates instance profile u ~step_sizes)
  in
  match best with
  | Some (_, c) as r when c < current -. tolerance -> r
  | _ -> None

let improve_until ?objective ?step_sizes ?(max_sweeps = 100) instance profile =
  let n = Instance.n instance in
  let profile = Array.map Array.copy profile in
  let rec sweep i =
    if i >= max_sweeps then (profile, i)
    else begin
      let improved = ref false in
      for u = 0 to n - 1 do
        match best_response_step ?objective ?step_sizes instance profile u with
        | Some (s, _) ->
            profile.(u) <- s;
            improved := true
        | None -> ()
      done;
      if !improved then sweep (i + 1) else (profile, i + 1)
    end
  in
  sweep 0

let stability_gap ?objective ?step_sizes instance profile =
  let n = Instance.n instance in
  let gap = ref 0. in
  for u = 0 to n - 1 do
    match best_response_step ?objective ?step_sizes instance profile u with
    | Some (_, c) ->
        let current = node_cost ?objective instance profile u in
        if current -. c > !gap then gap := current -. c
    | None -> ()
  done;
  !gap
