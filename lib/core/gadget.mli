(** The Theorem-1 witness: a BBC game with uniform link costs, uniform
    link lengths and uniform budget [k = 1], whose {e non-uniform
    preferences} leave it without a pure Nash equilibrium.

    The paper proves this with an 11-node "matching pennies" gadget
    (Figure 1), but the figure's exact edge set is not recoverable from
    the text.  Following DESIGN.md, we instead use

    + a {e core}: a 5-node preference matrix discovered by seeded search
      with this library and certified by {e unconditional} exhaustive
      enumeration of all [6^5] profiles ({!Exhaustive.search} with the
      full strategy space) — the same game-theoretic phenomenon at a size
      where complete verification is possible;
    + the paper's own padding argument ("the result easily extends to
      [n > 11] ... by forcing the remaining links"): extra nodes are
      arranged in a directed preference cycle among themselves, making
      each padded node's unique best response its cycle successor
      {e regardless of every other strategy}, and making any core node's
      link into the padding strictly dominated.  Hence every pure NE of
      the padded game restricts to a pure NE of the core — of which
      there are none.  {!padding_is_sound} re-checks the two structural
      facts this argument needs.

    No analogous core ships for the BBC-max objective (Theorem 7):
    complete enumeration of every (4,1) max game with small weights and
    millions of larger structured searches found {e no} max game without
    a pure NE — see EXPERIMENTS.md (E11).  The max phenomenon, if the
    gadget of Figure 5 realizes it, lives at sizes beyond exhaustive
    certification. *)

val core_size : int
(** Number of nodes of the discovered core (5). *)

val core : unit -> Instance.t
(** The verified no-NE core: uniform costs, uniform lengths, budget 1,
    non-uniform preferences, Sum objective. *)

val no_nash : n:int -> Instance.t
(** The core padded to [n >= core_size + 2] nodes (so the padding cycle
    has at least two nodes; use [n = 11] for the paper's statement).
    Padded nodes [core_size .. n-1] form a preference cycle. *)

val padding_is_sound : Instance.t -> bool
(** Structural check backing the padding argument, for instances built by
    {!no_nash}: every padded node has exactly one positive preference
    (its cycle successor) and every core node has zero preference for
    every padded node. *)

val verify_core_has_no_ne : unit -> bool
(** Re-run the unconditional exhaustive search over the full profile
    space of {!core} (a few seconds); [true] means no pure NE exists. *)
