let instance_to_string instance =
  let n = Instance.n instance in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "bbc-instance v1\n";
  Buffer.add_string buf (Printf.sprintf "n %d\n" n);
  Buffer.add_string buf (Printf.sprintf "penalty %d\n" (Instance.penalty instance));
  (match Instance.uniform_k instance with
  | Some k -> Buffer.add_string buf (Printf.sprintf "uniform %d\n" k)
  | None ->
      Buffer.add_string buf "budgets";
      for u = 0 to n - 1 do
        Buffer.add_string buf (Printf.sprintf " %d" (Instance.budget instance u))
      done;
      Buffer.add_char buf '\n';
      let table name f =
        Buffer.add_string buf (name ^ "\n");
        for u = 0 to n - 1 do
          for v = 0 to n - 1 do
            if v > 0 then Buffer.add_char buf ' ';
            Buffer.add_string buf (string_of_int (if u = v then 0 else f u v))
          done;
          Buffer.add_char buf '\n'
        done
      in
      table "weights" (Instance.weight instance);
      table "costs" (Instance.cost instance);
      (* Diagonal length entries are never read; emit 1 to satisfy the
         parser's validation. *)
      Buffer.add_string buf "lengths\n";
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if v > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf
            (string_of_int (if u = v then 1 else Instance.length instance u v))
        done;
        Buffer.add_char buf '\n'
      done);
  Buffer.contents buf

type parse_state = {
  mutable lines : string list;
  mutable line_no : int;
}

let next_line st =
  let rec go () =
    match st.lines with
    | [] -> None
    | l :: rest ->
        st.lines <- rest;
        st.line_no <- st.line_no + 1;
        let l = match String.index_opt l '#' with
          | Some i -> String.sub l 0 i
          | None -> l
        in
        let l = String.trim l in
        if l = "" then go () else Some l
  in
  go ()

let fail st msg = Error (Printf.sprintf "line %d: %s" st.line_no msg)

let parse_ints line =
  String.split_on_char ' ' line
  |> List.filter (fun s -> s <> "")
  |> List.map int_of_string_opt
  |> fun l ->
  if List.exists Option.is_none l then None else Some (List.map Option.get l)

let parse_row st n =
  match next_line st with
  | None -> fail st "unexpected end of input"
  | Some line -> (
      match parse_ints line with
      | Some row when List.length row = n -> Ok (Array.of_list row)
      | Some _ -> fail st "wrong row width"
      | None -> fail st "malformed integer row")

let parse_table st n =
  let rows = Array.make n [||] in
  let rec go u =
    if u = n then Ok rows
    else
      match parse_row st n with
      | Error e -> Error e
      | Ok row ->
          rows.(u) <- row;
          go (u + 1)
  in
  go 0

let instance_of_string text =
  let st = { lines = String.split_on_char '\n' text; line_no = 0 } in
  match next_line st with
  | Some "bbc-instance v1" -> (
      let field name =
        match next_line st with
        | Some line -> (
            match String.split_on_char ' ' line |> List.filter (( <> ) "") with
            | [ key; value ] when key = name -> (
                match int_of_string_opt value with
                | Some v -> Ok v
                | None -> fail st (Printf.sprintf "bad %s value" name))
            | _ -> fail st (Printf.sprintf "expected '%s <int>'" name))
        | None -> fail st "unexpected end of input"
      in
      match field "n" with
      | Error e -> Error e
      | Ok n -> (
          match field "penalty" with
          | Error e -> Error e
          | Ok penalty -> (
              match next_line st with
              | Some line -> (
                  match String.split_on_char ' ' line |> List.filter (( <> ) "") with
                  | [ "uniform"; k ] -> (
                      match int_of_string_opt k with
                      | Some k -> (
                          try Ok (Instance.with_penalty (Instance.uniform ~n ~k) penalty)
                          with Invalid_argument m -> fail st m)
                      | None -> fail st "bad uniform budget")
                  | "budgets" :: rest -> (
                      match List.map int_of_string_opt rest with
                      | budgets
                        when List.length budgets = n
                             && List.for_all Option.is_some budgets -> (
                          let budget = Array.of_list (List.map Option.get budgets) in
                          let expect_header name =
                            match next_line st with
                            | Some l when l = name -> Ok ()
                            | Some l -> fail st (Printf.sprintf "expected %S, got %S" name l)
                            | None -> fail st "unexpected end of input"
                          in
                          let ( let* ) = Result.bind in
                          let* () = expect_header "weights" in
                          let* weight = parse_table st n in
                          let* () = expect_header "costs" in
                          let* cost = parse_table st n in
                          let* () = expect_header "lengths" in
                          let* length = parse_table st n in
                          try
                            Ok
                              (Instance.general ~penalty ~weight ~cost ~length
                                 ~budget ())
                          with Invalid_argument m -> fail st m)
                      | _ -> fail st "bad budgets line")
                  | _ -> fail st "expected 'uniform k' or 'budgets ...'")
              | None -> fail st "unexpected end of input")))
  | Some other -> Error (Printf.sprintf "bad header %S" other)
  | None -> Error "empty input"

let config_to_string config =
  let n = Config.n config in
  let buf = Buffer.create 128 in
  Buffer.add_string buf "bbc-config v1\n";
  Buffer.add_string buf (Printf.sprintf "n %d\n" n);
  for u = 0 to n - 1 do
    match Config.targets config u with
    | [] -> ()
    | targets ->
        Buffer.add_string buf
          (Printf.sprintf "%d: %s\n" u
             (String.concat " " (List.map string_of_int targets)))
  done;
  Buffer.contents buf

let config_of_string text =
  let st = { lines = String.split_on_char '\n' text; line_no = 0 } in
  match next_line st with
  | Some "bbc-config v1" -> (
      match next_line st with
      | Some line -> (
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ "n"; v ] -> (
              match int_of_string_opt v with
              | Some n -> (
                  let strategies = Array.make n [] in
                  let rec go () =
                    match next_line st with
                    | None -> (
                        try Ok (Config.of_lists n strategies)
                        with Invalid_argument m -> fail st m)
                    | Some line -> (
                        match String.index_opt line ':' with
                        | None -> fail st "expected 'node: targets'"
                        | Some i -> (
                            let node = String.trim (String.sub line 0 i) in
                            let rest =
                              String.sub line (i + 1) (String.length line - i - 1)
                            in
                            match (int_of_string_opt node, parse_ints rest) with
                            | Some u, Some targets when u >= 0 && u < n ->
                                strategies.(u) <- targets;
                                go ()
                            | _ -> fail st "malformed strategy line"))
                  in
                  go ())
              | None -> fail st "bad n")
          | _ -> fail st "expected 'n <int>'")
      | None -> fail st "unexpected end of input")
  | Some other -> Error (Printf.sprintf "bad header %S" other)
  | None -> Error "empty input"

let write_file path contents =
  try
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents);
    Ok ()
  with Sys_error m -> Error m

let read_file path =
  try Ok (In_channel.with_open_text path In_channel.input_all)
  with Sys_error m -> Error m

let save_instance path instance = write_file path (instance_to_string instance)

let load_instance path = Result.bind (read_file path) instance_of_string

let save_config path config = write_file path (config_to_string config)

let load_config path = Result.bind (read_file path) config_of_string
