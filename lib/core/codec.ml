let instance_to_string instance =
  let n = Instance.n instance in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "bbc-instance v1\n";
  Buffer.add_string buf (Printf.sprintf "n %d\n" n);
  Buffer.add_string buf (Printf.sprintf "penalty %d\n" (Instance.penalty instance));
  (match Instance.uniform_k instance with
  | Some k -> Buffer.add_string buf (Printf.sprintf "uniform %d\n" k)
  | None ->
      Buffer.add_string buf "budgets";
      for u = 0 to n - 1 do
        Buffer.add_string buf (Printf.sprintf " %d" (Instance.budget instance u))
      done;
      Buffer.add_char buf '\n';
      let table name f =
        Buffer.add_string buf (name ^ "\n");
        for u = 0 to n - 1 do
          for v = 0 to n - 1 do
            if v > 0 then Buffer.add_char buf ' ';
            Buffer.add_string buf (string_of_int (if u = v then 0 else f u v))
          done;
          Buffer.add_char buf '\n'
        done
      in
      table "weights" (Instance.weight instance);
      table "costs" (Instance.cost instance);
      (* Diagonal length entries are never read; emit 1 to satisfy the
         parser's validation. *)
      Buffer.add_string buf "lengths\n";
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if v > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf
            (string_of_int (if u = v then 1 else Instance.length instance u v))
        done;
        Buffer.add_char buf '\n'
      done);
  Buffer.contents buf

type parse_state = {
  mutable lines : string list;
  mutable line_no : int;
}

let next_line st =
  let rec go () =
    match st.lines with
    | [] -> None
    | l :: rest ->
        st.lines <- rest;
        st.line_no <- st.line_no + 1;
        let l = match String.index_opt l '#' with
          | Some i -> String.sub l 0 i
          | None -> l
        in
        let l = String.trim l in
        if l = "" then go () else Some l
  in
  go ()

let fail st msg = Error (Printf.sprintf "line %d: %s" st.line_no msg)

let parse_ints line =
  String.split_on_char ' ' line
  |> List.filter (fun s -> s <> "")
  |> List.map int_of_string_opt
  |> fun l ->
  if List.exists Option.is_none l then None else Some (List.map Option.get l)

let parse_row st n =
  match next_line st with
  | None -> fail st "unexpected end of input"
  | Some line -> (
      match parse_ints line with
      | Some row when List.length row = n -> Ok (Array.of_list row)
      | Some _ -> fail st "wrong row width"
      | None -> fail st "malformed integer row")

let parse_table st n =
  let rows = Array.make n [||] in
  let rec go u =
    if u = n then Ok rows
    else
      match parse_row st n with
      | Error e -> Error e
      | Ok row ->
          rows.(u) <- row;
          go (u + 1)
  in
  go 0

let instance_of_string text =
  let st = { lines = String.split_on_char '\n' text; line_no = 0 } in
  match next_line st with
  | Some "bbc-instance v1" -> (
      let field name =
        match next_line st with
        | Some line -> (
            match String.split_on_char ' ' line |> List.filter (( <> ) "") with
            | [ key; value ] when key = name -> (
                match int_of_string_opt value with
                | Some v -> Ok v
                | None -> fail st (Printf.sprintf "bad %s value" name))
            | _ -> fail st (Printf.sprintf "expected '%s <int>'" name))
        | None -> fail st "unexpected end of input"
      in
      match field "n" with
      | Error e -> Error e
      | Ok n -> (
          match field "penalty" with
          | Error e -> Error e
          | Ok penalty -> (
              match next_line st with
              | Some line -> (
                  match String.split_on_char ' ' line |> List.filter (( <> ) "") with
                  | [ "uniform"; k ] -> (
                      match int_of_string_opt k with
                      | Some k -> (
                          try Ok (Instance.with_penalty (Instance.uniform ~n ~k) penalty)
                          with Invalid_argument m -> fail st m)
                      | None -> fail st "bad uniform budget")
                  | "budgets" :: rest -> (
                      match List.map int_of_string_opt rest with
                      | budgets
                        when List.length budgets = n
                             && List.for_all Option.is_some budgets -> (
                          let budget = Array.of_list (List.map Option.get budgets) in
                          let expect_header name =
                            match next_line st with
                            | Some l when l = name -> Ok ()
                            | Some l -> fail st (Printf.sprintf "expected %S, got %S" name l)
                            | None -> fail st "unexpected end of input"
                          in
                          let ( let* ) = Result.bind in
                          let* () = expect_header "weights" in
                          let* weight = parse_table st n in
                          let* () = expect_header "costs" in
                          let* cost = parse_table st n in
                          let* () = expect_header "lengths" in
                          let* length = parse_table st n in
                          try
                            Ok
                              (Instance.general ~penalty ~weight ~cost ~length
                                 ~budget ())
                          with Invalid_argument m -> fail st m)
                      | _ -> fail st "bad budgets line")
                  | _ -> fail st "expected 'uniform k' or 'budgets ...'")
              | None -> fail st "unexpected end of input")))
  | Some other -> Error (Printf.sprintf "bad header %S" other)
  | None -> Error "empty input"

let config_to_string config =
  let n = Config.n config in
  let buf = Buffer.create 128 in
  Buffer.add_string buf "bbc-config v1\n";
  Buffer.add_string buf (Printf.sprintf "n %d\n" n);
  for u = 0 to n - 1 do
    match Config.targets config u with
    | [] -> ()
    | targets ->
        Buffer.add_string buf
          (Printf.sprintf "%d: %s\n" u
             (String.concat " " (List.map string_of_int targets)))
  done;
  Buffer.contents buf

let config_of_string text =
  let st = { lines = String.split_on_char '\n' text; line_no = 0 } in
  match next_line st with
  | Some "bbc-config v1" -> (
      match next_line st with
      | Some line -> (
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ "n"; v ] -> (
              match int_of_string_opt v with
              | Some n -> (
                  let strategies = Array.make n [] in
                  let rec go () =
                    match next_line st with
                    | None -> (
                        try Ok (Config.of_lists n strategies)
                        with Invalid_argument m -> fail st m)
                    | Some line -> (
                        match String.index_opt line ':' with
                        | None -> fail st "expected 'node: targets'"
                        | Some i -> (
                            let node = String.trim (String.sub line 0 i) in
                            let rest =
                              String.sub line (i + 1) (String.length line - i - 1)
                            in
                            match (int_of_string_opt node, parse_ints rest) with
                            | Some u, Some targets when u >= 0 && u < n ->
                                strategies.(u) <- targets;
                                go ()
                            | _ -> fail st "malformed strategy line"))
                  in
                  go ())
              | None -> fail st "bad n")
          | _ -> fail st "expected 'n <int>'")
      | None -> fail st "unexpected end of input")
  | Some other -> Error (Printf.sprintf "bad header %S" other)
  | None -> Error "empty input"

(* ------------------------------------------------------------------ *)
(* JSON encoding (shared with the bbc serve wire protocol).            *)

let table_to_json n f =
  Json.List
    (List.init n (fun u ->
         Json.List (List.init n (fun v -> Json.Int (if u = v then 0 else f u v)))))

let instance_to_json instance =
  let n = Instance.n instance in
  let header =
    [
      ("type", Json.Str "bbc-instance");
      ("version", Json.Int 1);
      ("n", Json.Int n);
      ("penalty", Json.Int (Instance.penalty instance));
    ]
  in
  match Instance.uniform_k instance with
  | Some k -> Json.Obj (header @ [ ("uniform_k", Json.Int k) ])
  | None ->
      Json.Obj
        (header
        @ [
            ( "budgets",
              Json.List (List.init n (fun u -> Json.Int (Instance.budget instance u))) );
            ("weights", table_to_json n (Instance.weight instance));
            ("costs", table_to_json n (Instance.cost instance));
            (* Diagonal length entries are never read; emit 1 to satisfy
               the constructor's validation, as the text encoder does. *)
            ( "lengths",
              Json.List
                (List.init n (fun u ->
                     Json.List
                       (List.init n (fun v ->
                            Json.Int (if u = v then 1 else Instance.length instance u v)))))
            );
          ])

let json_field name v =
  match Json.member name v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing field %S" name)

let json_int name v =
  Result.bind (json_field name v) (fun f ->
      match Json.to_int f with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S must be an integer" name))

let json_table name n v =
  Result.bind (json_field name v) (fun f ->
      match Json.to_list f with
      | Some rows when List.length rows = n -> (
          let parsed = List.map Json.int_list rows in
          if List.exists Option.is_none parsed then
            Error (Printf.sprintf "field %S must hold integer rows" name)
          else
            let rows = List.map (fun r -> Array.of_list (Option.get r)) parsed in
            if List.exists (fun r -> Array.length r <> n) rows then
              Error (Printf.sprintf "field %S has a wrong-width row" name)
            else Ok (Array.of_list rows))
      | _ -> Error (Printf.sprintf "field %S must be an %dx%d table" name n n))

let check_type expected v =
  match Json.member "type" v with
  | Some (Json.Str t) when t = expected -> Ok ()
  | Some (Json.Str t) -> Error (Printf.sprintf "expected type %S, got %S" expected t)
  | _ -> Error (Printf.sprintf "missing type field (expected %S)" expected)

let instance_of_json v =
  let ( let* ) = Result.bind in
  let* () = check_type "bbc-instance" v in
  let* n = json_int "n" v in
  let* penalty = json_int "penalty" v in
  match Json.member "uniform_k" v with
  | Some k -> (
      match Json.to_int k with
      | Some k -> (
          try Ok (Instance.with_penalty (Instance.uniform ~n ~k) penalty)
          with Invalid_argument m -> Error m)
      | None -> Error "field \"uniform_k\" must be an integer")
  | None -> (
      let* budgets = json_field "budgets" v in
      let* budget =
        match Json.int_list budgets with
        | Some l when List.length l = n -> Ok (Array.of_list l)
        | _ -> Error (Printf.sprintf "field \"budgets\" must hold %d integers" n)
      in
      let* weight = json_table "weights" n v in
      let* cost = json_table "costs" n v in
      let* length = json_table "lengths" n v in
      try Ok (Instance.general ~penalty ~weight ~cost ~length ~budget ())
      with Invalid_argument m -> Error m)

let config_to_json config =
  let n = Config.n config in
  Json.Obj
    [
      ("type", Json.Str "bbc-config");
      ("version", Json.Int 1);
      ("n", Json.Int n);
      ( "strategies",
        Json.List
          (List.init n (fun u ->
               Json.List (List.map (fun v -> Json.Int v) (Config.targets config u)))) );
    ]

let config_of_json v =
  let ( let* ) = Result.bind in
  let* () = check_type "bbc-config" v in
  let* n = json_int "n" v in
  let* strategies = json_field "strategies" v in
  match Json.to_list strategies with
  | Some rows when List.length rows = n -> (
      let parsed = List.map Json.int_list rows in
      if List.exists Option.is_none parsed then
        Error "field \"strategies\" must hold integer lists"
      else
        try Ok (Config.of_lists n (Array.of_list (List.map Option.get parsed)))
        with Invalid_argument m -> Error m)
  | _ -> Error (Printf.sprintf "field \"strategies\" must hold %d lists" n)

let costs_to_json ~objective ~social costs =
  Json.Obj
    [
      ("type", Json.Str "bbc-costs");
      ("objective", Json.Str (Objective.to_string objective));
      ("costs", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) costs)));
      ("social", Json.Int social);
    ]

let costs_of_json v =
  let ( let* ) = Result.bind in
  let* () = check_type "bbc-costs" v in
  let* objective =
    match Json.member "objective" v with
    | Some (Json.Str "sum") -> Ok Objective.Sum
    | Some (Json.Str "max") -> Ok Objective.Max
    | _ -> Error "field \"objective\" must be \"sum\" or \"max\""
  in
  let* costs = json_field "costs" v in
  let* costs =
    match Json.int_list costs with
    | Some l -> Ok (Array.of_list l)
    | None -> Error "field \"costs\" must hold integers"
  in
  let* social = json_int "social" v in
  Ok (objective, costs, social)

(* ------------------------------------------------------------------ *)
(* Format auto-detection: JSON payloads start with '{'.                *)

let looks_like_json text =
  let rec first i =
    if i >= String.length text then None
    else
      match text.[i] with
      | ' ' | '\t' | '\n' | '\r' -> first (i + 1)
      | c -> Some c
  in
  first 0 = Some '{'

let of_any_string ~of_json ~of_text text =
  if looks_like_json text then Result.bind (Json.of_string text) of_json
  else of_text text

let instance_of_any_string text =
  of_any_string ~of_json:instance_of_json ~of_text:instance_of_string text

let config_of_any_string text =
  of_any_string ~of_json:config_of_json ~of_text:config_of_string text

let write_file path contents =
  try
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents);
    Ok ()
  with Sys_error m -> Error m

let read_file path =
  try Ok (In_channel.with_open_text path In_channel.input_all)
  with Sys_error m -> Error m

let save_instance path instance = write_file path (instance_to_string instance)

let load_instance path = Result.bind (read_file path) instance_of_any_string

let save_config path config = write_file path (config_to_string config)

let load_config path = Result.bind (read_file path) config_of_any_string
