type summary = {
  optimum : int;
  optimal_profile : Config.t;
  best_equilibrium : (int * Config.t) option;
  worst_equilibrium : (int * Config.t) option;
  equilibria : int;
  profiles : int;
}

let analyze ?objective ?candidates ?(max_profiles = 2_000_000) instance =
  let n = Instance.n instance in
  let candidates =
    match candidates with
    | Some c -> c
    | None -> Array.init n (Exhaustive.all_strategies instance)
  in
  if Exhaustive.space_size candidates > float_of_int max_profiles then None
  else begin
    let optimum = ref max_int and optimal_profile = ref None in
    let best_ne = ref None and worst_ne = ref None in
    let equilibria = ref 0 and profiles = ref 0 in
    let profile = Array.make n [] in
    let rec assign u =
      if u = n then begin
        incr profiles;
        let config = Config.of_lists n (Array.copy profile) in
        let cost = Eval.social_cost ?objective instance config in
        if cost < !optimum then begin
          optimum := cost;
          optimal_profile := Some config
        end;
        if Stability.is_stable ?objective instance config then begin
          incr equilibria;
          (match !best_ne with
          | Some (c, _) when c <= cost -> ()
          | _ -> best_ne := Some (cost, config));
          match !worst_ne with
          | Some (c, _) when c >= cost -> ()
          | _ -> worst_ne := Some (cost, config)
        end
      end
      else
        List.iter
          (fun s ->
            profile.(u) <- s;
            assign (u + 1))
          candidates.(u)
    in
    assign 0;
    match !optimal_profile with
    | None -> None (* empty candidate space *)
    | Some c ->
        Some
          {
            optimum = !optimum;
            optimal_profile = c;
            best_equilibrium = !best_ne;
            worst_equilibrium = !worst_ne;
            equilibria = !equilibria;
            profiles = !profiles;
          }
  end

let ratio_of value summary =
  Option.map
    (fun (cost, _) -> float_of_int cost /. float_of_int (max summary.optimum 1))
    value

let price_of_stability summary = ratio_of summary.best_equilibrium summary

let price_of_anarchy summary = ratio_of summary.worst_equilibrium summary

let local_search ?objective ?(restarts = 3) ?(max_sweeps = 50) rng instance =
  let n = Instance.n instance in
  let random_start () =
    let strategies =
      Array.init n (fun u ->
          let choices = Array.of_list (Exhaustive.maximal_strategies instance u) in
          if Array.length choices = 0 then []
          else Bbc_prng.Splitmix.choose rng choices)
    in
    Config.of_lists n strategies
  in
  let improve_once config cost =
    (* Best single-node replacement by social cost. *)
    let best = ref None in
    for u = 0 to n - 1 do
      List.iter
        (fun s ->
          if s <> Config.targets config u then begin
            let config' = Config.with_strategy config u s in
            let c = Eval.social_cost ?objective instance config' in
            match !best with
            | Some (_, c') when c' <= c -> ()
            | _ -> if c < cost then best := Some (config', c)
          end)
        (Exhaustive.all_strategies instance u)
    done;
    !best
  in
  let run_from config =
    let rec go config cost sweeps =
      if sweeps >= max_sweeps then (cost, config)
      else
        match improve_once config cost with
        | Some (config', cost') -> go config' cost' (sweeps + 1)
        | None -> (cost, config)
    in
    go config (Eval.social_cost ?objective instance config) 0
  in
  let best = ref (run_from (random_start ())) in
  for _ = 2 to max 1 restarts do
    let candidate = run_from (random_start ()) in
    if fst candidate < fst !best then best := candidate
  done;
  !best
