(** Exact best responses.

    The enumeration exploits a structural fact: a shortest path from [u]
    leaves [u] exactly once (shortest paths never revisit a vertex), so
    with [G_{-u}] denoting the realized graph with [u]'s out-edges
    removed,

    {v d_S(u, x) = min over (u,v) in S of  l(u,v) + d_{G_{-u}}(v, x) v}

    Distances [d_{G_{-u}}(v, .)] do not depend on [u]'s strategy, so they
    are computed once per candidate target ("rows") and every candidate
    strategy is then scored in O(n).  Strategies are enumerated by DFS
    over affordable target subsets.

    Every function takes an optional incremental context ([?ctx]).  With
    a context, rows come from delta-repaired SSSPs ({!Incr}) instead of
    per-candidate from-scratch searches; results are bit-identical (same
    costs, same DFS visiting order, same tie-breaking), only faster.
    Contexts are mutable single-domain state — do not share one across
    {!Bbc_parallel} workers.

    Every function also takes an optional shared snapshot ([?csr]),
    trusted to equal [Config.to_csr instance config] — the {e full}
    current profile, nothing skipped.  With it, the [G_{-u}] rows come
    from [~ban:u] sweeps of that one immutable snapshot instead of
    building a per-node [G_{-u}] CSR, and the node's current cost is
    evaluated against it too.  Results are bit-identical; the point is
    that parallel fan-outs (stability scans, dynamics improving scans)
    share one read-only snapshot and stop contending on allocation.
    [csr] is only consulted when no [ctx] is given (a context carries
    its own distance engines). *)

type result = {
  strategy : int list;  (** An optimal link set (sorted). *)
  cost : int;  (** Its cost — the optimum over all feasible strategies. *)
}

val candidate_targets : Instance.t -> int -> int list
(** Targets [v <> u] with [cost(u,v) <= budget(u)], increasing. *)

val exact :
  ?objective:Objective.t ->
  ?ctx:Incr.ctx ->
  ?csr:Bbc_graph.Csr.t ->
  Instance.t ->
  Config.t ->
  int ->
  result
(** Optimal strategy for [u], all other strategies fixed.  Deterministic:
    among optima, the first in the DFS order over increasing targets
    (subset-minimal first). *)

val best_cost :
  ?objective:Objective.t ->
  ?ctx:Incr.ctx ->
  ?csr:Bbc_graph.Csr.t ->
  Instance.t ->
  Config.t ->
  int ->
  int
(** Cost of {!exact} without materializing the strategy. *)

val all_best :
  ?objective:Objective.t ->
  ?ctx:Incr.ctx ->
  ?csr:Bbc_graph.Csr.t ->
  Instance.t ->
  Config.t ->
  int ->
  result list
(** Every optimal strategy (all achieve the same [cost]), in DFS order.
    Used when enumerating equilibrium multiplicity; can be exponentially
    many for large budgets. *)

val improving :
  ?objective:Objective.t ->
  ?ctx:Incr.ctx ->
  ?csr:Bbc_graph.Csr.t ->
  Instance.t ->
  Config.t ->
  int ->
  result option
(** [Some r] with [r.cost] strictly below [u]'s current cost if a strictly
    improving deviation exists, else [None].  Unlike {!exact}, exits as
    soon as any improvement is found (the returned deviation is improving
    but not necessarily optimal). *)

val sampled :
  ?objective:Objective.t ->
  ?csr:Bbc_graph.Csr.t ->
  rng:Bbc_prng.Splitmix.t ->
  sample:int ->
  Instance.t ->
  Config.t ->
  int ->
  result option
(** Sampled best response for large instances: the exact DFS restricted
    to [sample] candidate targets drawn uniformly without replacement
    (deterministic given [rng]'s state).  Scoring is exact, so the
    result is trustworthy where it looks: [Some r] only when [r.cost]
    is {e strictly} below [u]'s exact current cost — a returned
    deviation is always genuinely improving — and [None] means no
    improvement exists {e within the sampled pool} (a full improving
    deviation may still exist outside it).  With [sample] at least the
    candidate count, identical to {!exact} filtered to improvements. *)

val greedy :
  ?objective:Objective.t ->
  ?ctx:Incr.ctx ->
  ?csr:Bbc_graph.Csr.t ->
  Instance.t ->
  Config.t ->
  int ->
  result
(** Heuristic for large instances: repeatedly add the affordable link with
    the largest cost reduction.  Not guaranteed optimal. *)
