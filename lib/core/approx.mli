(** Landmark-approximate social cost for large instances.

    The exact social cost is one SSSP per node — O(n (n + m)) — which is
    the wall that keeps the exact engines below a few thousand nodes.
    This estimator samples [landmarks] source nodes uniformly without
    replacement, runs one pooled compact-row sweep per landmark against
    a shared {!Bbc_graph.Csr.t} snapshot, and scales the sampled mean
    node cost by [n].

    The sample mean is an unbiased estimator of the mean node cost, so
    [value] is unbiased for the social cost.  [bound] is six standard
    errors of the scaled total, using the sample variance with the
    finite-population correction for sampling without replacement
    ([n * sqrt(s^2/L * (1 - L/n))]).  Under the normal approximation
    four standard errors already cover well above 99.99%; the extra
    margin absorbs the small-sample regime where a skewed cost
    population can hide its outliers from the sample and deflate the
    variance estimate.  It is a statistical bound, not a worst-case
    one — that is the price of touching L rows instead of n.

    Determinism: the landmark set is drawn from a {!Bbc_prng.Splitmix}
    generator seeded with [seed], and [value] is an exactly-summed
    integer scaled once, so repeated runs agree bit for bit for a fixed
    job count (only [bound]'s float accumulation can wiggle in the last
    bits across different [jobs]). *)

type estimate = {
  value : float;  (** Estimated social cost (exact total when [exact]). *)
  bound : float;  (** 6 standard errors of the total; 0 when [exact]. *)
  landmarks : int;  (** Sources actually swept ([min landmarks n]). *)
  exact : bool;  (** [landmarks >= n]: every node swept, no sampling. *)
}

val social_cost :
  ?objective:Objective.t ->
  ?jobs:int ->
  landmarks:int ->
  seed:int ->
  Instance.t ->
  Bbc_graph.Csr.t ->
  estimate
(** [social_cost ~landmarks ~seed instance csr] with [csr] the realized
    snapshot of the profile (e.g. from {!Gen_instance.streaming} or
    [Config.to_csr]).  With [landmarks >= n] the estimator degenerates
    to the exact social cost ([bound = 0]) — the differential tests pin
    it to {!Eval.social_cost} there.  Sweeps use the {!Bbc_graph.Workspace}
    int32 row pool and fan out over the domain pool ([jobs] as in
    {!Eval.all_costs}).  Raises [Invalid_argument] if [landmarks < 2] or
    the snapshot size disagrees with the instance. *)
