(* One Monte-Carlo work unit; see trial.mli for the determinism
   contract.  Everything here is a pure function of the trial record:
   the four randomness consumers (instance tables, random start,
   random-order schedules, sampled candidates) each get an independent
   stream split off [seed] in a fixed order, so adding one consumer
   never perturbs the others. *)

module Splitmix = Bbc_prng.Splitmix

type generator =
  | Catalog of string
  | Family of string
  | Sparse of { zero_pct : int; max_weight : int }
  | Budgets of { max_budget : int }
  | Costs of { max_cost : int }
  | Metric of { span : int }
  | Perturbed of { flips : int }

type init = Empty | Seeded | Random_start
type sched = Round_robin | Random_order | Max_cost_first
type policy = Exact | First_improvement | Sampled of int

type t = {
  generator : generator;
  n : int;
  k : int;
  h : int;
  l : int;
  init : init;
  scheduler : sched;
  policy : policy;
  objective : Objective.t;
  max_rounds : int;
  seed : int;
}

type outcome = Converged | Cycled of int | Exhausted

type summary = {
  outcome : outcome;
  rounds : int;
  steps : int;
  deviations : int;
  social_cost : int;
  strongly_connected : bool;
}

(* ---------------------------------------------------------------- *)
(* Names                                                             *)

let sched_name = function
  | Round_robin -> "round-robin"
  | Random_order -> "random-order"
  | Max_cost_first -> "max-cost"

let sched_of_name = function
  | "round-robin" -> Some Round_robin
  | "random-order" -> Some Random_order
  | "max-cost" -> Some Max_cost_first
  | _ -> None

let init_name = function
  | Empty -> "empty"
  | Seeded -> "seeded"
  | Random_start -> "random"

let init_of_name = function
  | "empty" -> Some Empty
  | "seeded" -> Some Seeded
  | "random" -> Some Random_start
  | _ -> None

let objective_name = Objective.to_string

let objective_of_name = function
  | "sum" -> Some Objective.Sum
  | "max" -> Some Objective.Max
  | _ -> None

let policy_label = function
  | Exact -> "exact"
  | First_improvement -> "first-improvement"
  | Sampled s -> Printf.sprintf "sampled:%d" s

let gen_label t =
  match t.generator with
  | Catalog name -> Printf.sprintf "catalog:%s(n=%d,k=%d,h=%d,l=%d)" name t.n t.k t.h t.l
  | Family name -> Printf.sprintf "family:%s(n=%d,k=%d)" name t.n t.k
  | Sparse { zero_pct; max_weight } ->
      Printf.sprintf "sparse(zero=%d%%,w<=%d,n=%d,k=%d)" zero_pct max_weight t.n t.k
  | Budgets { max_budget } -> Printf.sprintf "budgets(b<=%d,n=%d)" max_budget t.n
  | Costs { max_cost } -> Printf.sprintf "costs(c<=%d,n=%d,k=%d)" max_cost t.n t.k
  | Metric { span } -> Printf.sprintf "metric(span=%d,n=%d,k=%d)" span t.n t.k
  | Perturbed { flips } -> Printf.sprintf "perturbed(flips=%d,n=%d,k=%d)" flips t.n t.k

let label t =
  String.concat "/"
    [
      gen_label t;
      init_name t.init;
      sched_name t.scheduler;
      policy_label t.policy;
      objective_name t.objective;
    ]

(* ---------------------------------------------------------------- *)
(* Validation                                                        *)

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.n < 2 then err "trial: n must be >= 2 (got %d)" t.n
  else if t.k < 1 then err "trial: k must be >= 1 (got %d)" t.k
  else if t.max_rounds < 1 then err "trial: max_rounds must be >= 1 (got %d)" t.max_rounds
  else
    match t.policy with
    | Sampled s when s < 1 -> err "trial: sampled policy needs sample >= 1 (got %d)" s
    | _ -> (
        let carries_profile =
          match t.generator with Catalog _ | Family _ -> true | _ -> false
        in
        if t.init = Seeded && not carries_profile then
          Error "trial: init \"seeded\" needs a catalog or family generator"
        else
          match t.generator with
          | Catalog name ->
              if List.mem name Catalog.names then Ok ()
              else err "trial: unknown catalog construction %S" name
          | Family name ->
              if List.mem name Catalog.streaming_names then Ok ()
              else err "trial: unknown streaming family %S" name
          | Sparse { zero_pct; max_weight } ->
              if zero_pct < 0 || zero_pct > 100 then
                err "trial: zero_pct must be in [0,100] (got %d)" zero_pct
              else if max_weight < 1 then
                err "trial: max_weight must be >= 1 (got %d)" max_weight
              else Ok ()
          | Budgets { max_budget } ->
              if max_budget < 0 then err "trial: max_budget must be >= 0" else Ok ()
          | Costs { max_cost } ->
              if max_cost < 1 then err "trial: max_cost must be >= 1" else Ok ()
          | Metric { span } ->
              if span < 1 then err "trial: span must be >= 1" else Ok ()
          | Perturbed { flips } ->
              if flips < 0 then err "trial: flips must be >= 0" else Ok ())

(* ---------------------------------------------------------------- *)
(* Derived randomness: fixed split order off the one trial seed.      *)

let streams t =
  let g = Splitmix.create t.seed in
  let inst_rng = Splitmix.split g in
  let init_rng = Splitmix.split g in
  let sched_seed = Int64.to_int (Splitmix.next_int64 g) land max_int in
  let policy_seed = Int64.to_int (Splitmix.next_int64 g) land max_int in
  (inst_rng, init_rng, sched_seed, policy_seed)

let scheduler_of t =
  match t.scheduler with
  | Round_robin -> Dynamics.Round_robin
  | Max_cost_first -> Dynamics.Max_cost_first
  | Random_order ->
      let _, _, sched_seed, _ = streams t in
      Dynamics.Random_order sched_seed

let policy_of t =
  match t.policy with
  | Exact -> Dynamics.Exact_best_response
  | First_improvement -> Dynamics.First_improvement
  | Sampled sample ->
      let _, _, _, policy_seed = streams t in
      Dynamics.Sampled_best_response { sample; seed = policy_seed }

(* Seeded-random feasible profile: each node shuffles the other nodes
   and greedily buys links while its budget allows.  On uniform
   instances this is a uniform k-out draw; on non-uniform costs or
   budgets it saturates each node's budget in shuffle order. *)
let random_feasible rng inst =
  let n = Instance.n inst in
  let rows =
    Array.init n (fun u ->
        let cands = Array.init (n - 1) (fun i -> if i < u then i else i + 1) in
        Splitmix.shuffle rng cands;
        let budget = Instance.budget inst u in
        let spend = ref 0 in
        let chosen = ref [] in
        Array.iter
          (fun v ->
            let c = Instance.cost inst u v in
            if !spend + c <= budget then begin
              spend := !spend + c;
              chosen := v :: !chosen
            end)
          cands;
        List.sort compare !chosen)
  in
  Config.of_lists n rows

let build t =
  match validate t with
  | Error _ as e -> e
  | Ok () -> (
      let inst_rng, init_rng, _, _ = streams t in
      let params = { Catalog.n = t.n; k = t.k; h = t.h; l = t.l; seed = t.seed } in
      let generated =
        match t.generator with
        | Catalog name -> Catalog.build name params
        | Family name -> Catalog.build_streaming_reference name params
        | Sparse { zero_pct; max_weight } -> (
            try
              let inst =
                Gen_instance.sparse_weights inst_rng ~n:t.n ~k:t.k
                  ~zero_probability:(float_of_int zero_pct /. 100.0)
                  ~max_weight ()
              in
              Ok (inst, Config.empty t.n)
            with Invalid_argument m -> Error m)
        | Budgets { max_budget } -> (
            try Ok (Gen_instance.random_budgets inst_rng ~n:t.n ~max_budget, Config.empty t.n)
            with Invalid_argument m -> Error m)
        | Costs { max_cost } -> (
            try
              Ok
                ( Gen_instance.random_costs inst_rng ~n:t.n ~k:t.k ~max_cost (),
                  Config.empty t.n )
            with Invalid_argument m -> Error m)
        | Metric { span } -> (
            try
              Ok
                ( Gen_instance.metric_lengths inst_rng ~n:t.n ~k:t.k ~span (),
                  Config.empty t.n )
            with Invalid_argument m -> Error m)
        | Perturbed { flips } -> (
            try
              Ok
                ( Gen_instance.perturbed_uniform inst_rng ~n:t.n ~k:t.k ~flips,
                  Config.empty t.n )
            with Invalid_argument m -> Error m)
      in
      match generated with
      | Error _ as e -> e
      | Ok (inst, seeded_cfg) -> (
          match t.init with
          | Empty -> Ok (inst, Config.empty (Instance.n inst))
          | Seeded -> Ok (inst, seeded_cfg)
          | Random_start -> Ok (inst, random_feasible init_rng inst)))

let run ?on_step t =
  match build t with
  | Error _ as e -> e
  | Ok (inst, cfg) ->
      let outcome =
        Dynamics.run ~objective:t.objective ~policy:(policy_of t) ?on_step
          ~scheduler:(scheduler_of t) ~max_rounds:t.max_rounds inst cfg
      in
      let kind, (stats : Dynamics.stats), final =
        match outcome with
        | Dynamics.Converged (c, s) -> (Converged, s, c)
        | Dynamics.Cycled { config; period; stats } -> (Cycled period, stats, config)
        | Dynamics.Exhausted (c, s) -> (Exhausted, s, c)
      in
      Ok
        {
          outcome = kind;
          rounds = stats.Dynamics.rounds;
          steps = stats.Dynamics.steps;
          deviations = stats.Dynamics.deviations;
          social_cost = Eval.social_cost ~objective:t.objective inst final;
          strongly_connected =
            Bbc_graph.Scc.is_strongly_connected (Config.to_graph inst final);
        }

(* ---------------------------------------------------------------- *)
(* JSON — canonical field order on encode; decode accepts exactly the
   encoded shape (round-trips are the fuzz suite's property).          *)

let generator_to_json = function
  | Catalog name -> Json.Obj [ ("kind", Json.Str "catalog"); ("name", Json.Str name) ]
  | Family name -> Json.Obj [ ("kind", Json.Str "family"); ("name", Json.Str name) ]
  | Sparse { zero_pct; max_weight } ->
      Json.Obj
        [
          ("kind", Json.Str "sparse");
          ("zero_pct", Json.Int zero_pct);
          ("max_weight", Json.Int max_weight);
        ]
  | Budgets { max_budget } ->
      Json.Obj [ ("kind", Json.Str "budgets"); ("max_budget", Json.Int max_budget) ]
  | Costs { max_cost } ->
      Json.Obj [ ("kind", Json.Str "costs"); ("max_cost", Json.Int max_cost) ]
  | Metric { span } -> Json.Obj [ ("kind", Json.Str "metric"); ("span", Json.Int span) ]
  | Perturbed { flips } ->
      Json.Obj [ ("kind", Json.Str "perturbed"); ("flips", Json.Int flips) ]

let field name v =
  match Json.member name v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "trial: missing field %S" name)

let int_field name v =
  match field name v with
  | Error _ as e -> e
  | Ok x -> (
      match Json.to_int x with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "trial: field %S must be an integer" name))

let str_field name v =
  match field name v with
  | Error _ as e -> e
  | Ok (Json.Str s) -> Ok s
  | Ok _ -> Error (Printf.sprintf "trial: field %S must be a string" name)

let ( let* ) = Result.bind

let generator_of_json v =
  let* kind = str_field "kind" v in
  match kind with
  | "catalog" ->
      let* name = str_field "name" v in
      Ok (Catalog name)
  | "family" ->
      let* name = str_field "name" v in
      Ok (Family name)
  | "sparse" ->
      let* zero_pct = int_field "zero_pct" v in
      let* max_weight = int_field "max_weight" v in
      Ok (Sparse { zero_pct; max_weight })
  | "budgets" ->
      let* max_budget = int_field "max_budget" v in
      Ok (Budgets { max_budget })
  | "costs" ->
      let* max_cost = int_field "max_cost" v in
      Ok (Costs { max_cost })
  | "metric" ->
      let* span = int_field "span" v in
      Ok (Metric { span })
  | "perturbed" ->
      let* flips = int_field "flips" v in
      Ok (Perturbed { flips })
  | k -> Error (Printf.sprintf "trial: unknown generator kind %S" k)

let policy_to_json = function
  | Exact -> Json.Str "exact"
  | First_improvement -> Json.Str "first-improvement"
  | Sampled s -> Json.Obj [ ("sampled", Json.Int s) ]

let policy_of_json = function
  | Json.Str "exact" -> Ok Exact
  | Json.Str "first-improvement" -> Ok First_improvement
  | Json.Obj _ as v -> (
      match Json.member "sampled" v with
      | Some s -> (
          match Json.to_int s with
          | Some i -> Ok (Sampled i)
          | None -> Error "trial: \"sampled\" must be an integer")
      | None -> Error "trial: policy object must have a \"sampled\" field")
  | Json.Str s -> Error (Printf.sprintf "trial: unknown policy %S" s)
  | _ -> Error "trial: policy must be a string or {\"sampled\":N}"

let to_json t =
  Json.Obj
    [
      ("type", Json.Str "bbc-trial");
      ("version", Json.Int 1);
      ("generator", generator_to_json t.generator);
      ("n", Json.Int t.n);
      ("k", Json.Int t.k);
      ("h", Json.Int t.h);
      ("l", Json.Int t.l);
      ("init", Json.Str (init_name t.init));
      ("scheduler", Json.Str (sched_name t.scheduler));
      ("policy", policy_to_json t.policy);
      ("objective", Json.Str (objective_name t.objective));
      ("max_rounds", Json.Int t.max_rounds);
      ("seed", Json.Int t.seed);
    ]

let of_json v =
  (match Json.member "type" v with
  | Some (Json.Str "bbc-trial") -> Ok ()
  | _ -> Error "trial: expected \"type\":\"bbc-trial\"")
  |> fun typ ->
  let* () = typ in
  let* version = int_field "version" v in
  if version <> 1 then Error (Printf.sprintf "trial: unsupported version %d" version)
  else
    let* gv = field "generator" v in
    let* generator = generator_of_json gv in
    let* n = int_field "n" v in
    let* k = int_field "k" v in
    let* h = int_field "h" v in
    let* l = int_field "l" v in
    let* init_s = str_field "init" v in
    let* init =
      match init_of_name init_s with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "trial: unknown init %S" init_s)
    in
    let* sched_s = str_field "scheduler" v in
    let* scheduler =
      match sched_of_name sched_s with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "trial: unknown scheduler %S" sched_s)
    in
    let* pv = field "policy" v in
    let* policy = policy_of_json pv in
    let* obj_s = str_field "objective" v in
    let* objective =
      match objective_of_name obj_s with
      | Some o -> Ok o
      | None -> Error (Printf.sprintf "trial: unknown objective %S" obj_s)
    in
    let* max_rounds = int_field "max_rounds" v in
    let* seed = int_field "seed" v in
    Ok { generator; n; k; h; l; init; scheduler; policy; objective; max_rounds; seed }

let outcome_name = function
  | Converged -> "converged"
  | Cycled _ -> "cycled"
  | Exhausted -> "exhausted"

let summary_to_json r =
  Json.Obj
    [
      ("outcome", Json.Str (outcome_name r.outcome));
      ("period", Json.Int (match r.outcome with Cycled p -> p | _ -> 0));
      ("rounds", Json.Int r.rounds);
      ("steps", Json.Int r.steps);
      ("deviations", Json.Int r.deviations);
      ("social_cost", Json.Int r.social_cost);
      ("strongly_connected", Json.Bool r.strongly_connected);
    ]

let summary_of_json v =
  let* outcome_s = str_field "outcome" v in
  let* period = int_field "period" v in
  let* outcome =
    match outcome_s with
    | "converged" -> Ok Converged
    | "cycled" -> Ok (Cycled period)
    | "exhausted" -> Ok Exhausted
    | s -> Error (Printf.sprintf "trial: unknown outcome %S" s)
  in
  let* rounds = int_field "rounds" v in
  let* steps = int_field "steps" v in
  let* deviations = int_field "deviations" v in
  let* social_cost = int_field "social_cost" v in
  let* sc = field "strongly_connected" v in
  match Json.to_bool sc with
  | None -> Error "trial: field \"strongly_connected\" must be a boolean"
  | Some strongly_connected ->
      Ok { outcome; rounds; steps; deviations; social_cost; strongly_connected }
