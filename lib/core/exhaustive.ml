type result = { equilibria : Config.t list; examined : int; complete : bool }

let all_strategies instance u =
  let acc = ref [] in
  let rec go chosen budget = function
    | [] -> acc := List.rev chosen :: !acc
    | v :: rest ->
        let c = Instance.cost instance u v in
        if c <= budget then go (v :: chosen) (budget - c) rest;
        go chosen budget rest
  in
  go [] (Instance.budget instance u) (Best_response.candidate_targets instance u);
  !acc

let maximal_strategies instance u =
  (* A feasible strategy is maximal when no remaining candidate fits the
     leftover budget. *)
  let candidates = Best_response.candidate_targets instance u in
  let budget = Instance.budget instance u in
  List.filter
    (fun s ->
      let spent = List.fold_left (fun acc v -> acc + Instance.cost instance u v) 0 s in
      not
        (List.exists
           (fun v -> (not (List.mem v s)) && Instance.cost instance u v <= budget - spent)
           candidates))
    (all_strategies instance u)

let space_size candidates =
  Array.fold_left (fun acc l -> acc *. float_of_int (List.length l)) 1.0 candidates

let default_candidates instance =
  Array.init (Instance.n instance) (all_strategies instance)

(* The profile space is partitioned by the strategies of the first
   [depth] nodes (the "prefix"): every prefix subtree is enumerated
   independently on the domain pool, and prefixes are indexed so that
   ascending index = the sequential DFS order.  Early abort propagates
   two ways: a global profile budget ([max_profiles]) and a per-prefix
   rule — a subtree may stop as soon as the prefixes strictly before it
   have already found [limit] equilibria, because all of those precede
   anything it could still find in enumeration order.  Together this
   keeps the reported equilibria identical to the sequential search for
   every job count. *)

let prefix_partition candidate_arrays ~n ~jobs =
  if jobs = 1 then (0, 1)
  else begin
    let target = jobs * 8 and cap = 8192 in
    let depth = ref 0 and count = ref 1 in
    while
      !depth < n && !count < target
      && !count * max 1 (Array.length candidate_arrays.(!depth)) <= cap
    do
      count := !count * Array.length candidate_arrays.(!depth);
      incr depth
    done;
    (!depth, !count)
  end

(* Mixed-radix decode of prefix index [p] (level 0 most significant, so
   lexicographic prefix order matches ascending [p]). *)
let decode_prefix candidate_arrays ~depth p profile =
  let rec go level p =
    if level >= 0 then begin
      let arr = candidate_arrays.(level) in
      let len = Array.length arr in
      profile.(level) <- arr.(p mod len);
      go (level - 1) (p / len)
    end
  in
  go (depth - 1) p

(* DFS over the suffix levels [level .. n-1]; [on_profile] sees every
   complete assignment and returns [true] to abort this subtree. *)
let enumerate_suffix candidate_arrays profile level ~on_profile =
  let n = Array.length candidate_arrays in
  let exception Stop in
  let rec assign u =
    if u = n then begin
      if on_profile () then raise Stop
    end
    else
      Array.iter
        (fun s ->
          profile.(u) <- s;
          assign (u + 1))
        candidate_arrays.(u)
  in
  try assign level with Stop -> ()

(* Search-shape telemetry: profiles actually evaluated, prefix subtrees
   pruned by the cross-prefix limit rule, and aborts on the global
   profile budget. *)
let obs_profiles = Bbc_obs.counter "exhaustive.profiles"
let obs_pruned = Bbc_obs.counter "exhaustive.pruned_prefixes"
let obs_aborted = Bbc_obs.counter "exhaustive.aborted"

let search ?objective ?candidates ?(limit = 1) ?(max_profiles = 100_000_000) ?jobs instance =
  let n = Instance.n instance in
  let candidates = match candidates with Some c -> c | None -> default_candidates instance in
  if Array.length candidates <> n then invalid_arg "Exhaustive.search: candidates length mismatch";
  (* Validate every candidate strategy once, up front.  The canonical
     rows this produces satisfy the profile representation invariant, so
     the enumeration below may assemble profiles out of them with
     {!Config.unsafe_of_arrays} — no per-profile validation pass. *)
  let candidate_arrays =
    Array.mapi
      (fun u l -> Array.of_list (List.map (Config.validated_strategy n u) l))
      candidates
  in
  let jobs = Bbc_parallel.jobs_for ?jobs ~threshold:0 n in
  Bbc_obs.with_span "exhaustive.search"
    ~attrs:[ ("n", Bbc_obs.Int n); ("limit", Bbc_obs.Int limit); ("jobs", Bbc_obs.Int jobs) ]
  @@ fun () ->
  let depth, nprefixes = prefix_partition candidate_arrays ~n ~jobs in
  let found = Array.init nprefixes (fun _ -> Atomic.make 0) in
  let total_found = Atomic.make 0 in
  let examined_total = Atomic.make 0 in
  let over_budget = Atomic.make false in
  let per_equilibria = Array.make nprefixes [] in
  let per_examined = Array.make nprefixes 0 in
  (* Have the prefixes strictly before [p] already found [limit]
     equilibria?  Cheap pre-check on the global count first. *)
  let limit_reached_before p =
    Atomic.get total_found >= limit
    &&
    let acc = ref 0 and q = ref 0 in
    while !acc < limit && !q < p do
      acc := !acc + Atomic.get found.(!q);
      incr q
    done;
    !acc >= limit
  in
  let use_incr = Incr.enabled () in
  let run_prefix p =
    if Atomic.get over_budget || limit_reached_before p then Bbc_obs.incr obs_pruned
    else begin
      (* One mutable profile buffer per subtree, wrapped once as a
         profile view: the DFS rebinds rows in place and the view tracks
         it, so examining a profile allocates nothing.  Equilibria are
         detached from the buffer with a deep {!Config.snapshot}. *)
      let profile = Array.make n [||] in
      let view = Config.unsafe_of_arrays profile in
      decode_prefix candidate_arrays ~depth p profile;
      (* One incremental context per subtree, created against the first
         complete profile (deep-copied — [Incr.ensure] diffs against the
         live view, so the context must not alias it).  Consecutive
         profiles differ only in trailing suffix levels, so re-syncing
         applies a handful of moves instead of rebuilding the mirror. *)
      let ctx = lazy (Incr.create instance (Config.snapshot view)) in
      let equilibria = ref [] and mine = ref 0 and examined = ref 0 in
      let on_profile () =
        if Atomic.fetch_and_add examined_total 1 >= max_profiles then begin
          if not (Atomic.exchange over_budget true) then Bbc_obs.incr obs_aborted;
          true
        end
        else begin
          incr examined;
          let stable =
            if use_incr then
              Stability.is_stable ?objective ~ctx:(Lazy.force ctx) instance view
            else Stability.is_stable ?objective ~incremental:false instance view
          in
          if stable then begin
            equilibria := Config.snapshot view :: !equilibria;
            incr mine;
            Atomic.incr found.(p);
            Atomic.incr total_found
          end;
          !mine >= limit
          || Atomic.get over_budget
          || (!examined land 63 = 0 && limit_reached_before p)
        end
      in
      enumerate_suffix candidate_arrays profile depth ~on_profile;
      per_equilibria.(p) <- List.rev !equilibria;
      per_examined.(p) <- !examined;
      Bbc_obs.add obs_profiles !examined
    end
  in
  Bbc_parallel.parallel_for ~jobs ~chunk:1 0 nprefixes run_prefix;
  let all = List.concat (Array.to_list per_equilibria) in
  let total = List.length all in
  let equilibria = List.filteri (fun i _ -> i < limit) all in
  {
    equilibria;
    examined = Array.fold_left ( + ) 0 per_examined;
    complete = (not (Atomic.get over_budget)) && total < limit;
  }

let has_equilibrium ?objective ?candidates ?max_profiles ?jobs instance =
  let r = search ?objective ?candidates ~limit:1 ?max_profiles ?jobs instance in
  if r.equilibria <> [] then Some true else if r.complete then Some false else None

let count_equilibria ?objective ?candidates ?max_profiles ?jobs instance =
  let r = search ?objective ?candidates ~limit:max_int ?max_profiles ?jobs instance in
  if r.complete then Some (List.length r.equilibria) else None
