type result = { equilibria : Config.t list; examined : int; complete : bool }

let all_strategies instance u =
  let acc = ref [] in
  let rec go chosen budget = function
    | [] -> acc := List.rev chosen :: !acc
    | v :: rest ->
        let c = Instance.cost instance u v in
        if c <= budget then go (v :: chosen) (budget - c) rest;
        go chosen budget rest
  in
  go [] (Instance.budget instance u) (Best_response.candidate_targets instance u);
  !acc

let maximal_strategies instance u =
  (* A feasible strategy is maximal when no remaining candidate fits the
     leftover budget. *)
  let candidates = Best_response.candidate_targets instance u in
  let budget = Instance.budget instance u in
  List.filter
    (fun s ->
      let spent = List.fold_left (fun acc v -> acc + Instance.cost instance u v) 0 s in
      not
        (List.exists
           (fun v -> (not (List.mem v s)) && Instance.cost instance u v <= budget - spent)
           candidates))
    (all_strategies instance u)

let space_size candidates =
  Array.fold_left (fun acc l -> acc *. float_of_int (List.length l)) 1.0 candidates

let default_candidates instance =
  Array.init (Instance.n instance) (all_strategies instance)

let search ?objective ?candidates ?(limit = 1) ?(max_profiles = 100_000_000) instance =
  let n = Instance.n instance in
  let candidates = match candidates with Some c -> c | None -> default_candidates instance in
  if Array.length candidates <> n then invalid_arg "Exhaustive.search: candidates length mismatch";
  let candidate_arrays =
    Array.map (fun l -> Array.of_list (List.map Array.of_list l)) candidates
  in
  let examined = ref 0 in
  let equilibria = ref [] and found = ref 0 in
  let complete = ref true in
  let profile = Array.make n [||] in
  let exception Stop in
  let rec assign u =
    if u = n then begin
      if !examined >= max_profiles then begin
        complete := false;
        raise Stop
      end;
      incr examined;
      let config = Config.of_lists n (Array.map Array.to_list profile) in
      if Stability.is_stable ?objective instance config then begin
        equilibria := config :: !equilibria;
        incr found;
        if !found >= limit then begin
          complete := false;
          raise Stop
        end
      end
    end
    else
      Array.iter
        (fun s ->
          profile.(u) <- s;
          assign (u + 1))
        candidate_arrays.(u)
  in
  (try assign 0 with Stop -> ());
  { equilibria = List.rev !equilibria; examined = !examined; complete = !complete }

let has_equilibrium ?objective ?candidates ?max_profiles instance =
  let r = search ?objective ?candidates ~limit:1 ?max_profiles instance in
  if r.equilibria <> [] then Some true else if r.complete then Some false else None

let count_equilibria ?objective ?candidates ?max_profiles instance =
  let r = search ?objective ?candidates ~limit:max_int ?max_profiles instance in
  if r.complete then Some (List.length r.equilibria) else None
