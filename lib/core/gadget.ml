let core_size = 5

(* Discovered by seeded random search (seed 123, sparse weights in 0..3)
   over 5-node budget-1 games, then certified by full exhaustive
   enumeration: no profile of the 6^5 is a pure NE.  The preference
   structure is a "matching pennies"-like dependency cycle: 4 wants
   0, 1, 2; 2 wants 1 and 3; 0 and 2 want 3; 1 and 3 want 4. *)
let core_weights () =
  [|
    [| 0; 0; 0; 3; 0 |];
    [| 0; 0; 0; 0; 1 |];
    [| 0; 1; 0; 3; 0 |];
    [| 0; 0; 0; 0; 1 |];
    [| 3; 2; 2; 0; 0 |];
  |]

let core () = Instance.of_weights ~k:1 (core_weights ())

let no_nash ~n =
  if n < core_size + 2 then
    invalid_arg
      (Printf.sprintf "Gadget.no_nash: n must be >= %d (got %d)" (core_size + 2) n);
  let core = core_weights () in
  let weight =
    Array.init n (fun u ->
        Array.init n (fun v ->
            if u < core_size && v < core_size then core.(u).(v)
            else if u >= core_size && v >= core_size then begin
              (* Padding cycle: u's unique positive preference is its
                 successor among the padded nodes. *)
              let next = if u + 1 >= n then core_size else u + 1 in
              if v = next && v <> u then 1 else 0
            end
            else 0))
  in
  Instance.of_weights ~k:1 weight

let padding_is_sound instance =
  let n = Instance.n instance in
  if n < core_size + 2 then false
  else begin
    let ok = ref true in
    for u = 0 to n - 1 do
      if u >= core_size then begin
        (* Exactly one positive preference, pointing at a padded node. *)
        let positives = ref [] in
        for v = 0 to n - 1 do
          if v <> u && Instance.weight instance u v > 0 then positives := v :: !positives
        done;
        match !positives with
        | [ v ] when v >= core_size -> ()
        | _ -> ok := false
      end
      else
        for v = core_size to n - 1 do
          if Instance.weight instance u v <> 0 then ok := false
        done
    done;
    !ok
  end

let verify_core_has_no_ne () =
  match Exhaustive.has_equilibrium (core ()) with
  | Some b -> not b
  | None -> false
