type deviation = {
  node : int;
  current_cost : int;
  better : Best_response.result;
}

let find_deviation ?objective instance config =
  let n = Instance.n instance in
  let rec go u =
    if u >= n then None
    else
      match Best_response.improving ?objective instance config u with
      | Some better ->
          Some
            {
              node = u;
              current_cost = Eval.node_cost ?objective instance config u;
              better;
            }
      | None -> go (u + 1)
  in
  go 0

let is_stable ?objective instance config =
  Config.feasible instance config
  && Option.is_none (find_deviation ?objective instance config)

let nodes_stable ?objective instance config nodes =
  Config.feasible instance config
  && List.for_all
       (fun u -> Option.is_none (Best_response.improving ?objective instance config u))
       nodes

let is_stable_parallel ?objective ?domains instance config =
  let n = Instance.n instance in
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (min 4 (Domain.recommended_domain_count () - 1))
  in
  if not (Config.feasible instance config) then false
  else if domains = 1 || n < 2 * domains then
    Option.is_none (find_deviation ?objective instance config)
  else begin
    (* Round-robin node assignment; a shared flag lets every domain stop
       as soon as any of them finds an improving deviation. *)
    let unstable = Atomic.make false in
    let worker d () =
      let u = ref d in
      while (not (Atomic.get unstable)) && !u < n do
        if Option.is_some (Best_response.improving ?objective instance config !u)
        then Atomic.set unstable true;
        u := !u + domains
      done
    in
    let handles = List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1))) in
    worker 0 ();
    List.iter Domain.join handles;
    not (Atomic.get unstable)
  end

let unstable_nodes ?objective instance config =
  let n = Instance.n instance in
  List.filter
    (fun u -> Option.is_some (Best_response.improving ?objective instance config u))
    (List.init n Fun.id)

let stability_gap ?objective instance config =
  let costs = Eval.all_costs ?objective instance config in
  let gap = ref 0 in
  for u = 0 to Instance.n instance - 1 do
    let best = Best_response.best_cost ?objective instance config u in
    if costs.(u) - best > !gap then gap := costs.(u) - best
  done;
  !gap

let pp_deviation fmt d =
  Format.fprintf fmt "node %d: cost %d -> %d via [%a]" d.node d.current_cost
    d.better.cost
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ") Format.pp_print_int)
    d.better.strategy
