type deviation = {
  node : int;
  current_cost : int;
  better : Best_response.result;
}

(* Per-node best-response checks only read the shared instance and
   profile (and build their own G_{-u} copies), so they fan out over the
   domain pool.  Below this node count the checks run sequentially. *)
let parallel_threshold = 64

let resolve_jobs ?jobs n = Bbc_parallel.jobs_for ?jobs ~threshold:parallel_threshold n

(* One node per chunk pull.  A best-response check runs a full DFS over
   strategy space against the pooled CSR rows, so per-node work is both
   heavy (microseconds to milliseconds) and uneven (it depends on the
   node's budget and candidate set).  The pool's default chunking
   (~range/8 per job) leaves stragglers holding several expensive nodes
   and delays [parallel_find_first]/[parallel_exists] early abort to
   chunk granularity; one-node chunks cost a single fetch-add per node —
   noise next to the check itself — and give node-granular balance and
   abort.  (The distance sweeps inside each check are batched anyway:
   on unit-length snapshots [Best_response] prefetches a node's whole
   candidate row set through one bit-parallel [Csr.sssp_batch ~ban]
   traversal, so coarser chunks would add nothing there.) *)
let br_chunk = 1

let obs_stable_checks = Bbc_obs.counter "stability.is_stable"

(* The incremental engine replaces the parallel from-scratch scan with a
   sequential pass over one shared {!Incr} context (contexts are
   single-domain state).  Verdicts and reported nodes are identical:
   the parallel scans already commit to the lowest-index result. *)

(* A caller-provided context (a server session, a dynamics walk) forces
   the incremental path and reuses its caches; [ensure] re-syncs it in
   case the caller's configuration drifted. *)
let use_ctx ?ctx ?incremental instance config make =
  match ctx with
  | Some c ->
      Incr.ensure c config;
      Some c
  | None -> if Incr.resolve incremental then Some (make instance config) else None

let find_deviation ?objective ?jobs ?ctx ?incremental instance config =
  let n = Instance.n instance in
  let jobs = resolve_jobs ?jobs n in
  Bbc_obs.with_span "stability.find_deviation"
    ~attrs:[ ("n", Bbc_obs.Int n); ("jobs", Bbc_obs.Int jobs) ] (fun () ->
      match use_ctx ?ctx ?incremental instance config Incr.create with
      | Some ctx ->
          let rec scan u =
            if u >= n then None
            else
              match Best_response.improving ?objective ~ctx instance config u with
              | Some better ->
                  Some
                    { node = u; current_cost = Incr.node_cost ?objective ctx u; better }
              | None -> scan (u + 1)
          in
          scan 0
      | None ->
          (* [parallel_find_first] returns the lowest-index hit, so the reported
             deviation is the same node the sequential scan would find.  All
             workers share one immutable full snapshot ([~ban] sweeps give
             each node its G_{-u} rows), so the fan-out builds no per-node
             graphs and the domains stay off the shared allocator. *)
          let csr = Config.to_csr instance config in
          Bbc_parallel.parallel_find_first ~jobs ~chunk:br_chunk 0 n (fun u ->
              match Best_response.improving ?objective ~csr instance config u with
              | Some better ->
                  Some
                    {
                      node = u;
                      current_cost = Eval.csr_node_cost ?objective instance csr u;
                      better;
                    }
              | None -> None))

let is_stable ?objective ?jobs ?ctx ?incremental instance config =
  let n = Instance.n instance in
  let jobs = resolve_jobs ?jobs n in
  Bbc_obs.incr obs_stable_checks;
  Config.feasible instance config
  &&
  match use_ctx ?ctx ?incremental instance config Incr.create with
  | Some ctx ->
      let rec scan u =
        u >= n
        || Option.is_none (Best_response.improving ?objective ~ctx instance config u)
           && scan (u + 1)
      in
      scan 0
  | None ->
      let csr = Config.to_csr instance config in
      not
        (Bbc_parallel.parallel_exists ~jobs ~chunk:br_chunk 0 n (fun u ->
             Option.is_some (Best_response.improving ?objective ~csr instance config u)))

let nodes_stable ?objective ?ctx ?incremental instance config nodes =
  Config.feasible instance config
  &&
  match use_ctx ?ctx ?incremental instance config Incr.create with
  | Some ctx ->
      List.for_all
        (fun u ->
          Option.is_none (Best_response.improving ?objective ~ctx instance config u))
        nodes
  | None ->
      let csr = Config.to_csr instance config in
      List.for_all
        (fun u ->
          Option.is_none (Best_response.improving ?objective ~csr instance config u))
        nodes

let is_stable_parallel ?objective ?domains instance config =
  let jobs =
    match domains with Some d -> max 1 d | None -> Bbc_parallel.default_jobs ()
  in
  (* Compatibility entry point: always the parallel from-scratch scan. *)
  is_stable ?objective ~jobs ~incremental:false instance config

let unstable_nodes ?objective ?jobs ?ctx ?incremental instance config =
  let n = Instance.n instance in
  let jobs = resolve_jobs ?jobs n in
  let unstable =
    match use_ctx ?ctx ?incremental instance config Incr.create with
    | Some ctx ->
        Array.init n (fun u ->
            Option.is_some (Best_response.improving ?objective ~ctx instance config u))
    | None ->
        let csr = Config.to_csr instance config in
        Bbc_parallel.parallel_init ~jobs ~chunk:br_chunk n (fun u ->
            Option.is_some (Best_response.improving ?objective ~csr instance config u))
  in
  List.filter (fun u -> unstable.(u)) (List.init n Fun.id)

let stability_gap ?objective ?jobs ?ctx ?incremental instance config =
  let n = Instance.n instance in
  let jobs = resolve_jobs ?jobs n in
  match use_ctx ?ctx ?incremental instance config Incr.create with
  | Some ctx ->
      let gap = ref 0 in
      for u = 0 to n - 1 do
        let cur = Incr.node_cost ?objective ctx u in
        gap := max !gap (cur - Best_response.best_cost ?objective ~ctx instance config u)
      done;
      !gap
  | None ->
      let csr = Config.to_csr instance config in
      let costs = Eval.all_costs ?objective ~jobs instance config in
      Bbc_parallel.parallel_reduce ~jobs ~chunk:br_chunk ~neutral:0 ~combine:max 0 n
        (fun u ->
          costs.(u) - Best_response.best_cost ?objective ~csr instance config u)

let pp_deviation fmt d =
  Format.fprintf fmt "node %d: cost %d -> %d via [%a]" d.node d.current_cost
    d.better.cost
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ") Format.pp_print_int)
    d.better.strategy
