type deviation = {
  node : int;
  current_cost : int;
  better : Best_response.result;
}

(* Per-node best-response checks only read the shared instance and
   profile (and build their own G_{-u} copies), so they fan out over the
   domain pool.  Below this node count the checks run sequentially. *)
let parallel_threshold = 64

let resolve_jobs ?jobs n = Bbc_parallel.jobs_for ?jobs ~threshold:parallel_threshold n

let obs_stable_checks = Bbc_obs.counter "stability.is_stable"

let find_deviation ?objective ?jobs instance config =
  let n = Instance.n instance in
  let jobs = resolve_jobs ?jobs n in
  Bbc_obs.with_span "stability.find_deviation"
    ~attrs:[ ("n", Bbc_obs.Int n); ("jobs", Bbc_obs.Int jobs) ] (fun () ->
      (* [parallel_find_first] returns the lowest-index hit, so the reported
         deviation is the same node the sequential scan would find. *)
      Bbc_parallel.parallel_find_first ~jobs 0 n (fun u ->
          match Best_response.improving ?objective instance config u with
          | Some better ->
              Some
                {
                  node = u;
                  current_cost = Eval.node_cost ?objective instance config u;
                  better;
                }
          | None -> None))

let is_stable ?objective ?jobs instance config =
  let n = Instance.n instance in
  let jobs = resolve_jobs ?jobs n in
  Bbc_obs.incr obs_stable_checks;
  Config.feasible instance config
  && not
       (Bbc_parallel.parallel_exists ~jobs 0 n (fun u ->
            Option.is_some (Best_response.improving ?objective instance config u)))

let nodes_stable ?objective instance config nodes =
  Config.feasible instance config
  && List.for_all
       (fun u -> Option.is_none (Best_response.improving ?objective instance config u))
       nodes

let is_stable_parallel ?objective ?domains instance config =
  let jobs =
    match domains with Some d -> max 1 d | None -> Bbc_parallel.default_jobs ()
  in
  is_stable ?objective ~jobs instance config

let unstable_nodes ?objective ?jobs instance config =
  let n = Instance.n instance in
  let jobs = resolve_jobs ?jobs n in
  let unstable =
    Bbc_parallel.parallel_init ~jobs n (fun u ->
        Option.is_some (Best_response.improving ?objective instance config u))
  in
  List.filter (fun u -> unstable.(u)) (List.init n Fun.id)

let stability_gap ?objective ?jobs instance config =
  let n = Instance.n instance in
  let jobs = resolve_jobs ?jobs n in
  let costs = Eval.all_costs ?objective ~jobs instance config in
  Bbc_parallel.parallel_reduce ~jobs ~neutral:0 ~combine:max 0 n (fun u ->
      costs.(u) - Best_response.best_cost ?objective instance config u)

let pp_deviation fmt d =
  Format.fprintf fmt "node %d: cost %d -> %d via [%a]" d.node d.current_cost
    d.better.cost
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ") Format.pp_print_int)
    d.better.strategy
