module Splitmix = Bbc_prng.Splitmix

type scheduler =
  | Round_robin
  | Fixed_order of int array
  | Random_order of int
  | Max_cost_first

type move_policy =
  | Exact_best_response
  | First_improvement
  | Sampled_best_response of { sample : int; seed : int }

type step = {
  index : int;
  round : int;
  node : int;
  moved : bool;
  strategy : int list;
  cost_after : int;
}

type stats = { rounds : int; steps : int; deviations : int }

type outcome =
  | Converged of Config.t * stats
  | Cycled of { config : Config.t; period : int; stats : stats }
  | Exhausted of Config.t * stats

let final_config = function
  | Converged (c, _) -> c
  | Cycled { config; _ } -> config
  | Exhausted (c, _) -> c

let stats = function
  | Converged (_, s) -> s
  | Cycled { stats = s; _ } -> s
  | Exhausted (_, s) -> s

let pp_outcome fmt o =
  let pp_stats fmt s =
    Format.fprintf fmt "rounds=%d steps=%d deviations=%d" s.rounds s.steps s.deviations
  in
  match o with
  | Converged (_, s) -> Format.fprintf fmt "converged (%a)" pp_stats s
  | Cycled { period; stats = s; _ } ->
      Format.fprintf fmt "cycled (period %d rounds, %a)" period pp_stats s
  | Exhausted (_, s) -> Format.fprintf fmt "exhausted (%a)" pp_stats s

(* Configurations seen at round boundaries, for cycle detection.  Keyed by
   hash with exact-equality buckets, so collisions cannot cause a false
   cycle report. *)
module Seen = struct
  type t = (int, (Config.t * int) list) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let find (t : t) config =
    match Hashtbl.find_opt t (Config.hash config) with
    | None -> None
    | Some bucket ->
        List.find_opt (fun (c, _) -> Config.equal c config) bucket
        |> Option.map snd

  let add (t : t) config round =
    let h = Config.hash config in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt t h) in
    Hashtbl.replace t h ((config, round) :: bucket)
end

(* One best-response activation of [node]; returns the new configuration
   and whether it moved.  A node moves only on a strict improvement, per
   the paper's best-response step.

   [known_improving] lets a scheduler that already ran the improving
   check (Max_cost_first scans every node per step) pass its result in,
   so the subset enumeration is not repeated here: [Some None] = known
   stable, [Some (Some r)] = known unstable with witness [r].

   Under [Exact_best_response] the optimum is computed with a single DFS
   and adopted iff it strictly beats the current cost — the
   improving-then-exact double enumeration is gone.

   With an incremental context ([?ctx]) the enumerations reuse
   delta-repaired SSSPs and the current cost comes from the version-keyed
   cache; the decisions are identical. *)
let activate ?objective ?ctx ?rng ?known_improving ~policy instance config node =
  match policy with
  | Sampled_best_response { sample; _ } -> (
      match known_improving with
      | Some None -> (config, false)
      | _ -> (
          (* Large-n path: one full snapshot of the current profile, so
             the candidate sweeps and the current-cost check never touch
             the list-based digraph.  [Best_response.sampled] only ever
             returns strict improvements, so the move is adopted as is. *)
          let csr = Config.to_csr instance config in
          let rng = Option.get rng in
          match Best_response.sampled ?objective ~csr ~rng ~sample instance config node with
          | None -> (config, false)
          | Some r -> (Config.with_strategy config node r.strategy, true)))
  | First_improvement -> (
      let improving =
        match known_improving with
        | Some r -> r
        | None -> Best_response.improving ?objective ?ctx instance config node
      in
      match improving with
      | None -> (config, false)
      | Some first -> (Config.with_strategy config node first.strategy, true))
  | Exact_best_response -> (
      match known_improving with
      | Some None -> (config, false)
      | Some (Some _) ->
          (* Known unstable, so the optimum strictly improves. *)
          let best = Best_response.exact ?objective ?ctx instance config node in
          (Config.with_strategy config node best.strategy, true)
      | None ->
          let best = Best_response.exact ?objective ?ctx instance config node in
          let current =
            match ctx with
            | Some c -> Incr.node_cost ?objective c node
            | None -> Eval.node_cost ?objective instance config node
          in
          if best.cost < current then (Config.with_strategy config node best.strategy, true)
          else (config, false))

let obs_activations = Bbc_obs.counter "dynamics.activations"
let obs_deviations = Bbc_obs.counter "dynamics.deviations"

let scheduler_name = function
  | Round_robin -> "round-robin"
  | Fixed_order _ -> "fixed-order"
  | Random_order _ -> "random-order"
  | Max_cost_first -> "max-cost"

(* One [dynamics.activation] trace event per deviation: who moved, the
   cost improvement, and the edge swap (targets added / removed).  The
   extra cost evaluations only run when a trace sink is attached. *)
let trace_activation ?objective instance ~prev ~next ~index ~round ~node =
  if Bbc_obs.tracing () then begin
    let old_s = Config.targets prev node and new_s = Config.targets next node in
    let added = List.filter (fun v -> not (List.mem v old_s)) new_s in
    let removed = List.filter (fun v -> not (List.mem v new_s)) old_s in
    let str l = String.concat " " (List.map string_of_int l) in
    Bbc_obs.event "dynamics.activation"
      ~attrs:
        [
          ("step", Int index);
          ("round", Int round);
          ("node", Int node);
          ("old_cost", Int (Eval.node_cost ?objective instance prev node));
          ("new_cost", Int (Eval.node_cost ?objective instance next node));
          ("strategy", Str (str new_s));
          ("added", Str (str added));
          ("removed", Str (str removed));
        ]
  end

let trace_outcome outcome =
  if Bbc_obs.tracing () then begin
    let s = stats outcome in
    let label, extra =
      match outcome with
      | Converged _ -> ("converged", [])
      | Cycled { period; _ } -> ("cycled", [ ("period", Bbc_obs.Int period) ])
      | Exhausted _ -> ("exhausted", [])
    in
    Bbc_obs.event "dynamics.outcome"
      ~attrs:
        ([
           ("outcome", Bbc_obs.Str label);
           ("converged", Bbc_obs.Bool (match outcome with Converged _ -> true | _ -> false));
           ("rounds", Bbc_obs.Int s.rounds);
           ("steps", Bbc_obs.Int s.steps);
           ("deviations", Bbc_obs.Int s.deviations);
         ]
        @ extra)
  end

let round_order scheduler rng n =
  match scheduler with
  | Round_robin -> Array.init n Fun.id
  | Fixed_order order ->
      if Array.length order <> n then
        invalid_arg "Dynamics: Fixed_order must be a permutation of all nodes";
      order
  | Random_order _ ->
      let order = Array.init n Fun.id in
      Splitmix.shuffle (Option.get rng) order;
      order
  | Max_cost_first -> assert false

let run ?objective ?(policy = Exact_best_response) ?on_step ?incremental ~scheduler
    ~max_rounds instance config0 =
  let n = Instance.n instance in
  Bbc_obs.with_span "dynamics.run"
    ~attrs:
      [
        ("n", Bbc_obs.Int n);
        ("scheduler", Bbc_obs.Str (scheduler_name scheduler));
        ("max_rounds", Bbc_obs.Int max_rounds);
      ]
  @@ fun () ->
  (* One incremental context for the whole walk: every activation's
     enumeration shares the delta-repaired SSSPs.  The context is
     single-domain state, so all ctx paths below are sequential. *)
  let ctx =
    match policy with
    (* The sampled policy exists for instances far past the incremental
       engine's sweet spot; skip the context rather than warm caches that
       the activations never read. *)
    | Sampled_best_response _ -> None
    | _ -> if Incr.resolve incremental then Some (Incr.create instance config0) else None
  in
  let node_cost config node =
    match ctx with
    | Some c ->
        Incr.ensure c config;
        Incr.node_cost ?objective c node
    | None -> Eval.node_cost ?objective instance config node
  in
  let rng = match scheduler with Random_order seed -> Some (Splitmix.create seed) | _ -> None in
  (* One generator for the whole walk's candidate sampling, so a run is
     replayable from (scheduler, policy) seeds alone. *)
  let brng =
    match policy with
    | Sampled_best_response { seed; _ } -> Some (Splitmix.create seed)
    | _ -> None
  in
  let emit ~prev index round node moved config =
    Bbc_obs.incr obs_activations;
    if moved then begin
      Bbc_obs.incr obs_deviations;
      trace_activation ?objective instance ~prev ~next:config ~index ~round ~node
    end;
    match on_step with
    | None -> ()
    | Some f ->
        f
          {
            index;
            round;
            node;
            moved;
            strategy = Config.targets config node;
            cost_after = node_cost config node;
          }
  in
  let outcome =
  match scheduler with
  | Max_cost_first ->
      (* Adaptive: each step activates the unstable node of max cost.  A
         "round" is one step; cycle detection keys on the configuration,
         which fully determines the rest of the walk. *)
      let seen = Seen.create () in
      let max_steps = max_rounds in
      let rec go config step deviations =
        if step >= max_steps then
          Exhausted (config, { rounds = step; steps = step; deviations })
        else
          match Seen.find seen config with
          | Some prev ->
              Cycled
                {
                  config;
                  period = step - prev;
                  stats = { rounds = step; steps = step; deviations };
                }
          | None -> (
              Seen.add seen config step;
              let costs =
                match ctx with
                | Some c ->
                    Incr.ensure c config;
                    Incr.all_costs ?objective c
                | None -> Eval.all_costs ?objective instance config
              in
              (* One improving check per node: with a context the scan
                 runs sequentially against the shared SSSPs; otherwise
                 it fans over the domain pool.  Either way the winner's
                 result is handed to [activate] so the enumeration never
                 runs twice for the same step. *)
              let improving =
                match ctx with
                | Some _ ->
                    Array.init n (fun u ->
                        Best_response.improving ?objective ?ctx instance config u)
                | None ->
                    let csr = Config.to_csr instance config in
                    Bbc_parallel.parallel_init
                      ~jobs:(Bbc_parallel.jobs_for ~threshold:64 n) n
                      (fun u -> Best_response.improving ?objective ~csr instance config u)
              in
              let unstable =
                List.filter (fun u -> Option.is_some improving.(u)) (List.init n Fun.id)
              in
              match unstable with
              | [] -> Converged (config, { rounds = step; steps = step; deviations })
              | us ->
                  let node =
                    List.fold_left
                      (fun best u ->
                        match best with
                        | Some b when costs.(b) >= costs.(u) -> best
                        | _ -> Some u)
                      None us
                    |> Option.get
                  in
                  let config', moved =
                    activate ?objective ?ctx ?rng:brng ~known_improving:improving.(node)
                      ~policy instance config node
                  in
                  emit ~prev:config step step node moved config';
                  go config' (step + 1) (deviations + if moved then 1 else 0))
      in
      go config0 0 0
  | Round_robin | Fixed_order _ | Random_order _ ->
      let seen = Seen.create () in
      let rec go config round steps deviations =
        if round >= max_rounds then
          Exhausted (config, { rounds = round; steps; deviations })
        else
          match Seen.find seen config with
          | Some prev
            when match scheduler with
                 | Round_robin | Fixed_order _ -> true
                 | Random_order _ | Max_cost_first -> false ->
              Cycled
                {
                  config;
                  period = round - prev;
                  stats = { rounds = round; steps; deviations };
                }
          | _ ->
              Seen.add seen config round;
              let order = round_order scheduler rng n in
              let config = ref config and changed = ref 0 and steps = ref steps in
              Array.iter
                (fun node ->
                  let config', moved =
                    activate ?objective ?ctx ?rng:brng ~policy instance !config node
                  in
                  emit ~prev:!config !steps round node moved config';
                  incr steps;
                  if moved then incr changed;
                  config := config')
                order;
              if !changed = 0 then
                Converged (!config, { rounds = round + 1; steps = !steps; deviations })
              else go !config (round + 1) !steps (deviations + !changed)
      in
      go config0 0 0 0
  in
  trace_outcome outcome;
  outcome

let first_strong_connectivity ?objective ?policy ?incremental ~scheduler ~max_rounds
    instance config0 =
  let hit = ref None in
  let check stats config =
    if
      !hit = None
      && Bbc_graph.Scc.is_strongly_connected (Config.to_graph instance config)
    then hit := Some stats
  in
  check { rounds = 0; steps = 0; deviations = 0 } config0;
  (* Track deviations incrementally; connectivity can only change on a
     move, so only moves trigger an SCC computation. *)
  let deviations = ref 0 in
  let current = ref config0 in
  let on_step (s : step) =
    if s.moved then begin
      incr deviations;
      current := Config.with_strategy !current s.node s.strategy;
      check
        { rounds = s.round; steps = s.index + 1; deviations = !deviations }
        !current
    end
  in
  let outcome =
    run ?objective ?policy ?incremental ~on_step ~scheduler ~max_rounds instance config0
  in
  Option.map (fun stats -> (stats, outcome)) !hit
