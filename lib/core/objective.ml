type t = Sum | Max

let fold obj acc term = match obj with Sum -> acc + term | Max -> max acc term

let identity _ = 0

let to_string = function Sum -> "sum" | Max -> "max"

let pp fmt t = Format.pp_print_string fmt (to_string t)
