module Digraph = Bbc_graph.Digraph
module Paths = Bbc_graph.Paths

type result = { strategy : int list; cost : int }

let candidate_targets instance u =
  let n = Instance.n instance in
  let b = Instance.budget instance u in
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if v <> u && Instance.cost instance u v <= b then acc := v :: !acc
  done;
  !acc

(* Distance rows in G_{-u}, fetched lazily per candidate target and
   cached for the duration of one enumeration.  [fetch] is the engine:
   a from-scratch SSSP on a G_{-u} copy, or one of the two incremental
   providers in {!Incr}. *)
type rows = {
  fetch : int -> int array;
  cache : int array option array;
}

let scratch_rows instance config u =
  let g = Config.to_graph instance config in
  Digraph.remove_out_edges g u;
  { fetch = (fun v -> Paths.shortest g v); cache = Array.make (Instance.n instance) None }

let threshold_rows ctx instance u =
  {
    fetch = (fun v -> Incr.threshold_row ctx ~u ~v);
    cache = Array.make (Instance.n instance) None;
  }

let masked_rows ctx instance =
  { fetch = (fun v -> Incr.masked_row ctx v); cache = Array.make (Instance.n instance) None }

let row rows v =
  match rows.cache.(v) with
  | Some d -> d
  | None ->
      let d = rows.fetch v in
      rows.cache.(v) <- Some d;
      d

(* Distance from u to x when u's strategy contains the link (u,v), given
   the current best-known distances [cur]. *)
let merge_row instance u cur r v =
  let luv = Instance.length instance u v in
  let n = Array.length cur in
  let out = Array.copy cur in
  let rv = r v in
  for x = 0 to n - 1 do
    if rv.(x) <> Paths.unreachable then begin
      let d = luv + rv.(x) in
      if d < out.(x) then out.(x) <- d
    end
  done;
  out

(* Subsets explored across all enumerations; accumulated locally and
   published once per call so the DFS hot loop stays untouched. *)
let obs_subsets = Bbc_obs.counter "best_response.subsets"
let obs_enumerations = Bbc_obs.counter "best_response.enumerations"

(* DFS over affordable subsets of candidates.  [on_subset strategy_rev cost]
   is called for every feasible subset (including the empty one); it
   returns [true] to abort the search early. *)
let dfs_enumerate ~objective instance u ~rows ~on_subset =
  let candidates = Array.of_list (candidate_targets instance u) in
  let n = Instance.n instance in
  let base = Array.make n Paths.unreachable in
  base.(u) <- 0;
  let eval cur = Eval.cost_of_distances ~objective instance u cur in
  let stop = ref false in
  let subsets = ref 1 in
  if on_subset [] (eval base) then stop := true;
  let rec dfs i chosen budget cur =
    if not !stop then
      for j = i to Array.length candidates - 1 do
        if not !stop then begin
          let v = candidates.(j) in
          let c = Instance.cost instance u v in
          if c <= budget then begin
            let cur' = merge_row instance u cur (row rows) v in
            let chosen' = v :: chosen in
            incr subsets;
            if on_subset chosen' (eval cur') then stop := true
            else dfs (j + 1) chosen' (budget - c) cur'
          end
        end
      done
  in
  dfs 0 [] (Instance.budget instance u) base;
  Bbc_obs.incr obs_enumerations;
  Bbc_obs.add obs_subsets !subsets

(* Uniform k = 1: the affordable subsets are exactly the empty set and
   the singletons, visited in the same order the DFS would use — but
   with O(1) closed-form costs instead of per-candidate rows. *)
let analytic_enumerate ~objective ctx instance u ~on_subset =
  let stop = ref false in
  let subsets = ref 1 in
  if on_subset [] (Incr.empty_cost ~objective ctx u) then stop := true;
  List.iter
    (fun v ->
      if not !stop then begin
        incr subsets;
        if on_subset [ v ] (Incr.singleton_cost ~objective ctx u v) then stop := true
      end)
    (candidate_targets instance u);
  Bbc_obs.incr obs_enumerations;
  Bbc_obs.add obs_subsets !subsets

let enumerate ?(objective = Objective.Sum) ?ctx instance config u ~on_subset =
  match ctx with
  | Some c ->
      Incr.ensure c config;
      if Incr.analytic c then analytic_enumerate ~objective c instance u ~on_subset
      else if Incr.functional c then
        dfs_enumerate ~objective instance u ~rows:(threshold_rows c instance u) ~on_subset
      else
        Incr.with_masked c u (fun () ->
            dfs_enumerate ~objective instance u ~rows:(masked_rows c instance) ~on_subset)
  | None ->
      dfs_enumerate ~objective instance u ~rows:(scratch_rows instance config u) ~on_subset

let exact ?objective ?ctx instance config u =
  let best = ref { strategy = []; cost = max_int } in
  enumerate ?objective ?ctx instance config u ~on_subset:(fun chosen cost ->
      if cost < !best.cost then best := { strategy = List.rev chosen; cost };
      false);
  { !best with strategy = List.sort compare !best.strategy }

let best_cost ?objective ?ctx instance config u =
  (exact ?objective ?ctx instance config u).cost

let all_best ?objective ?ctx instance config u =
  let best = ref max_int and acc = ref [] in
  enumerate ?objective ?ctx instance config u ~on_subset:(fun chosen cost ->
      if cost < !best then begin
        best := cost;
        acc := [ List.sort compare chosen ]
      end
      else if cost = !best then acc := List.sort compare chosen :: !acc;
      false);
  List.rev_map (fun strategy -> { strategy; cost = !best }) !acc

let improving ?objective ?ctx instance config u =
  let current =
    match ctx with
    | Some c ->
        Incr.ensure c config;
        Incr.node_cost ?objective c u
    | None -> Eval.node_cost ?objective instance config u
  in
  let found = ref None in
  enumerate ?objective ?ctx instance config u ~on_subset:(fun chosen cost ->
      if cost < current then begin
        found := Some { strategy = List.sort compare chosen; cost };
        true
      end
      else false);
  !found

let greedy_rows ~objective instance u ~rows =
  let n = Instance.n instance in
  let base = Array.make n Paths.unreachable in
  base.(u) <- 0;
  let eval cur = Eval.cost_of_distances ~objective instance u cur in
  (* The candidate list only depends on the instance — computed once,
     not rebuilt on every growth step. *)
  let candidates = candidate_targets instance u in
  let rec grow chosen budget cur cost =
    let best = ref None in
    List.iter
      (fun v ->
        if (not (List.mem v chosen)) && Instance.cost instance u v <= budget then begin
          let cur' = merge_row instance u cur (row rows) v in
          let c = eval cur' in
          match !best with
          | Some (_, _, c') when c' <= c -> ()
          | _ -> best := Some (v, cur', c)
        end)
      candidates;
    match !best with
    | Some (v, cur', c) when c < cost ->
        grow (v :: chosen) (budget - Instance.cost instance u v) cur' c
    | _ -> { strategy = List.sort compare chosen; cost }
  in
  grow [] (Instance.budget instance u) base (eval base)

let greedy ?(objective = Objective.Sum) ?ctx instance config u =
  match ctx with
  | Some c ->
      Incr.ensure c config;
      if Incr.functional c then
        greedy_rows ~objective instance u ~rows:(threshold_rows c instance u)
      else
        Incr.with_masked c u (fun () ->
            greedy_rows ~objective instance u ~rows:(masked_rows c instance))
  | None -> greedy_rows ~objective instance u ~rows:(scratch_rows instance config u)
