module Paths = Bbc_graph.Paths
module Csr = Bbc_graph.Csr
module Workspace = Bbc_graph.Workspace

type result = { strategy : int list; cost : int }

let candidate_targets instance u =
  let n = Instance.n instance in
  let b = Instance.budget instance u in
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if v <> u && Instance.cost instance u v <= b then acc := v :: !acc
  done;
  !acc

(* Distance rows in G_{-u}, fetched lazily per candidate target and
   cached for the duration of one enumeration.  [fetch] is the engine:
   a CSR kernel sweep of the G_{-u} snapshot into a pooled workspace
   row, or one of the two incremental providers in {!Incr}.  [owned]
   rows came from the per-domain pool and go back to it when the
   enumeration finishes; the masked engine serves live internal arrays
   that must not be released. *)
type rows = {
  fetch : int -> int array;
  cache : int array option array;
  owned : bool;
}

(* With [?csr] (a shared full snapshot of the {e current} profile,
   trusted to equal [Config.to_csr instance config]), the G_{-u} rows
   come from [~ban:u] sweeps of that shared snapshot — no per-node CSR
   build at all, which is what keeps parallel stability scans off the
   allocator.

   [?prefetch] names the candidate targets the caller is about to
   enumerate: on unit-length snapshots their rows are fetched up front
   with one bit-parallel [Csr.sssp_batch ~ban] traversal instead of one
   scalar sweep each.  An enumeration that runs to completion touches
   every candidate row at DFS depth 1 anyway, so the batch does the
   same work for ~one sweep's worth of graph reads; early-aborting
   callers pay at most one window of extra traversal. *)
let scratch_rows ?csr ?prefetch instance config u =
  let ws = Workspace.get () in
  let n = Instance.n instance in
  let snap, ban =
    match csr with
    | Some full -> (full, u)
    | None -> (Config.to_csr ~skip:u instance config, -1)
  in
  let rows =
    {
      fetch =
        (fun v ->
          let row = Workspace.acquire ws n in
          Csr.sssp ~ban snap (Workspace.scratch ws) ~src:v ~dist:row;
          row);
      cache = Array.make n None;
      owned = true;
    }
  in
  (match prefetch with
  | Some targets when Array.length targets > 1 && Csr.unit_lengths snap ->
      let bufs = Array.map (fun _ -> Workspace.acquire ws n) targets in
      Csr.sssp_batch ~ban snap (Workspace.scratch ws) ~srcs:targets ~rows:bufs;
      Array.iteri (fun i v -> rows.cache.(v) <- Some bufs.(i)) targets
  | _ -> ());
  rows

let threshold_rows ctx instance u =
  let ws = Workspace.get () in
  let n = Instance.n instance in
  {
    fetch =
      (fun v ->
        let row = Workspace.acquire ws n in
        Incr.threshold_row_into ctx ~u ~v row;
        row);
    cache = Array.make n None;
    owned = true;
  }

let masked_rows ctx instance =
  {
    fetch = (fun v -> Incr.masked_row ctx v);
    cache = Array.make (Instance.n instance) None;
    owned = false;
  }

let row rows v =
  match rows.cache.(v) with
  | Some d -> d
  | None ->
      let d = rows.fetch v in
      rows.cache.(v) <- Some d;
      d

let release_rows ws rows =
  if rows.owned then
    Array.iteri
      (fun v r ->
        match r with
        | None -> ()
        | Some r ->
            rows.cache.(v) <- None;
            Workspace.release ws r)
      rows.cache

(* Distance from u to x when u's strategy gains the link (u,v) of length
   [luv], given the current best-known distances [src] and the
   [G_{-u}] row [rv] of [v]: written into [dst] (a pooled row). *)
let merge_into ~src ~dst rv luv =
  let n = Array.length src in
  Array.blit src 0 dst 0 n;
  for x = 0 to n - 1 do
    if rv.(x) <> Paths.unreachable then begin
      let d = luv + rv.(x) in
      if d < dst.(x) then dst.(x) <- d
    end
  done

(* Cost of the strategy extended by the link (u,v), evaluated in a
   single pass over [src] and [rv] — the merged distance row is never
   materialized.  Bit-identical to [merge_into] followed by
   {!Eval.cost_of_distances}; most subsets of an enumeration are leaves
   of the DFS, and this collapses their three O(n) passes
   (copy, merge, fold) into one. *)
let merged_cost ~objective instance u ~src rv luv =
  let n = Array.length src in
  let m = Instance.penalty instance in
  (* Same dispatch hoisting as [Eval.cost_of_distances]: this loop runs
     once per enumerated subset, so per-element call overhead dominates
     the whole enumeration if left in. *)
  match objective with
  | Objective.Sum -> (
      match Instance.weight_row instance u with
      | None ->
          let acc = ref 0 in
          for x = 0 to n - 1 do
            if x <> u then begin
              let rx = rv.(x) in
              let d0 = src.(x) in
              let d =
                if rx <> Paths.unreachable && luv + rx < d0 then luv + rx
                else d0
              in
              acc := !acc + (if d = Paths.unreachable then m else d)
            end
          done;
          !acc
      | Some wrow ->
          let acc = ref 0 in
          for x = 0 to n - 1 do
            if x <> u then begin
              let w = wrow.(x) in
              if w > 0 then begin
                let rx = rv.(x) in
                let d0 = src.(x) in
                let d =
                  if rx <> Paths.unreachable && luv + rx < d0 then luv + rx
                  else d0
                in
                acc := !acc + (w * if d = Paths.unreachable then m else d)
              end
            end
          done;
          !acc)
  | Objective.Max ->
      let acc = ref 0 in
      for x = 0 to n - 1 do
        if x <> u then begin
          let w = Instance.weight instance u x in
          if w > 0 then begin
            let rx = rv.(x) in
            let d0 = src.(x) in
            let d =
              if rx <> Paths.unreachable && luv + rx < d0 then luv + rx else d0
            in
            let d = if d = Paths.unreachable then m else d in
            if w * d > !acc then acc := w * d
          end
        end
      done;
      !acc

(* Subsets explored across all enumerations; accumulated locally and
   published once per call so the DFS hot loop stays untouched. *)
let obs_subsets = Bbc_obs.counter "best_response.subsets"
let obs_enumerations = Bbc_obs.counter "best_response.enumerations"

(* DFS over affordable subsets of candidates.  [on_subset strategy_rev cost]
   is called for every feasible subset (including the empty one); it
   returns [true] to abort the search early. *)
let dfs_enumerate ?candidates ~objective instance u ~rows ~on_subset =
  let ws = Workspace.get () in
  let candidates =
    match candidates with
    | Some c -> c
    | None -> Array.of_list (candidate_targets instance u)
  in
  let ncand = Array.length candidates in
  let costs = Array.map (fun v -> Instance.cost instance u v) candidates in
  (* Cheapest candidate among j..ncand-1: O(1) "is this subset a DFS
     leaf?" checks below. *)
  let min_cost_from = Array.make (ncand + 1) max_int in
  for j = ncand - 1 downto 0 do
    min_cost_from.(j) <- min costs.(j) min_cost_from.(j + 1)
  done;
  let n = Instance.n instance in
  let stop = ref false in
  let subsets = ref 1 in
  let base = Workspace.acquire ws n in
  base.(u) <- 0;
  Fun.protect
    ~finally:(fun () ->
      Workspace.release ws base;
      release_rows ws rows)
    (fun () ->
      if on_subset [] (Eval.cost_of_distances ~objective instance u base) then
        stop := true;
      (* Every subset is costed by the one-pass [merged_cost]; the merged
         row itself is materialized (into a pooled row borrowed for the
         subtree) only when the DFS actually descends — i.e. when some
         further candidate is still affordable.  Leaves, the bulk of the
         enumeration, never touch a buffer. *)
      let rec dfs i chosen budget cur =
        if not !stop then
          for j = i to ncand - 1 do
            if not !stop then begin
              let v = candidates.(j) in
              let c = costs.(j) in
              if c <= budget then begin
                let rv = row rows v in
                let luv = Instance.length instance u v in
                let chosen' = v :: chosen in
                incr subsets;
                if on_subset chosen' (merged_cost ~objective instance u ~src:cur rv luv)
                then stop := true
                else if min_cost_from.(j + 1) <= budget - c then begin
                  let cur' = Workspace.acquire ws n in
                  merge_into ~src:cur ~dst:cur' rv luv;
                  dfs (j + 1) chosen' (budget - c) cur';
                  Workspace.release ws cur'
                end
              end
            end
          done
      in
      dfs 0 [] (Instance.budget instance u) base);
  Bbc_obs.incr obs_enumerations;
  Bbc_obs.add obs_subsets !subsets

(* Uniform k = 1: the affordable subsets are exactly the empty set and
   the singletons, visited in the same order the DFS would use — but
   with O(1) closed-form costs instead of per-candidate rows. *)
let analytic_enumerate ~objective ctx instance u ~on_subset =
  let stop = ref false in
  let subsets = ref 1 in
  if on_subset [] (Incr.empty_cost ~objective ctx u) then stop := true;
  List.iter
    (fun v ->
      if not !stop then begin
        incr subsets;
        if on_subset [ v ] (Incr.singleton_cost ~objective ctx u v) then stop := true
      end)
    (candidate_targets instance u);
  Bbc_obs.incr obs_enumerations;
  Bbc_obs.add obs_subsets !subsets

let enumerate ?(objective = Objective.Sum) ?ctx ?csr instance config u ~on_subset =
  match ctx with
  | Some c ->
      Incr.ensure c config;
      if Incr.analytic c then analytic_enumerate ~objective c instance u ~on_subset
      else if Incr.functional c then
        dfs_enumerate ~objective instance u ~rows:(threshold_rows c instance u) ~on_subset
      else
        Incr.with_masked c u (fun () ->
            dfs_enumerate ~objective instance u ~rows:(masked_rows c instance) ~on_subset)
  | None ->
      let candidates = Array.of_list (candidate_targets instance u) in
      dfs_enumerate ~candidates ~objective instance u
        ~rows:(scratch_rows ?csr ~prefetch:candidates instance config u)
        ~on_subset

let exact ?objective ?ctx ?csr instance config u =
  let best = ref { strategy = []; cost = max_int } in
  enumerate ?objective ?ctx ?csr instance config u ~on_subset:(fun chosen cost ->
      if cost < !best.cost then best := { strategy = List.rev chosen; cost };
      false);
  { !best with strategy = List.sort compare !best.strategy }

let best_cost ?objective ?ctx ?csr instance config u =
  (exact ?objective ?ctx ?csr instance config u).cost

let all_best ?objective ?ctx ?csr instance config u =
  let best = ref max_int and acc = ref [] in
  enumerate ?objective ?ctx ?csr instance config u ~on_subset:(fun chosen cost ->
      if cost < !best then begin
        best := cost;
        acc := [ List.sort compare chosen ]
      end
      else if cost = !best then acc := List.sort compare chosen :: !acc;
      false);
  List.rev_map (fun strategy -> { strategy; cost = !best }) !acc

let current_cost ?objective ?ctx ?csr instance config u =
  match ctx with
  | Some c ->
      Incr.ensure c config;
      Incr.node_cost ?objective c u
  | None -> (
      match csr with
      | Some full -> Eval.csr_node_cost ?objective instance full u
      | None -> Eval.node_cost ?objective instance config u)

let improving ?objective ?ctx ?csr instance config u =
  let current = current_cost ?objective ?ctx ?csr instance config u in
  let found = ref None in
  enumerate ?objective ?ctx ?csr instance config u ~on_subset:(fun chosen cost ->
      if cost < current then begin
        found := Some { strategy = List.sort compare chosen; cost };
        true
      end
      else false);
  !found

(* Sampled best response: the exact DFS restricted to a random subset of
   the candidate targets.  Scoring stays exact (real G_{-u} rows, real
   merged costs), only the candidate pool shrinks — so the returned
   deviation's cost is trustworthy, and the final strict comparison
   against the node's exact current cost guarantees that a returned
   deviation is genuinely improving.  With [sample >= #candidates] this
   is exactly {!exact} filtered to improving results. *)
let sampled ?(objective = Objective.Sum) ?csr ~rng ~sample instance config u =
  let all = Array.of_list (candidate_targets instance u) in
  let candidates =
    if sample >= Array.length all then all
    else
      Bbc_prng.Splitmix.sample_without_replacement rng sample (Array.length all)
      |> List.map (Array.get all)
      |> Array.of_list
  in
  let current = current_cost ~objective ?csr instance config u in
  let best = ref { strategy = []; cost = max_int } in
  dfs_enumerate ~candidates ~objective instance u
    ~rows:(scratch_rows ?csr ~prefetch:candidates instance config u)
    ~on_subset:(fun chosen cost ->
      if cost < !best.cost then best := { strategy = chosen; cost };
      false);
  if !best.cost < current then
    Some { strategy = List.sort compare !best.strategy; cost = !best.cost }
  else None

let greedy_rows ~objective instance u ~rows =
  let ws = Workspace.get () in
  let n = Instance.n instance in
  let eval cur = Eval.cost_of_distances ~objective instance u cur in
  (* The candidate list only depends on the instance — computed once,
     not rebuilt on every growth step. *)
  let candidates = candidate_targets instance u in
  let base = Workspace.acquire ws n in
  base.(u) <- 0;
  Fun.protect
    ~finally:(fun () -> release_rows ws rows)
    (fun () ->
      (* [cur] is always a pooled row owned by this loop.  Candidate
         trials are costed by the one-pass [merged_cost]; only the
         winning link's merged row is ever materialized.  (Cached rows
         outlive the whole enumeration, so holding the winner's [rv]
         across the scan is safe.) *)
      let rec grow chosen budget cur cost =
        let best = ref None in
        List.iter
          (fun v ->
            if (not (List.mem v chosen)) && Instance.cost instance u v <= budget then begin
              let rv = row rows v in
              let luv = Instance.length instance u v in
              let c = merged_cost ~objective instance u ~src:cur rv luv in
              match !best with
              | Some (_, _, _, c') when c' <= c -> ()
              | _ -> best := Some (v, luv, rv, c)
            end)
          candidates;
        match !best with
        | Some (v, luv, rv, c) when c < cost ->
            let cur' = Workspace.acquire ws n in
            merge_into ~src:cur ~dst:cur' rv luv;
            Workspace.release ws cur;
            grow (v :: chosen) (budget - Instance.cost instance u v) cur' c
        | _ ->
            Workspace.release ws cur;
            { strategy = List.sort compare chosen; cost }
      in
      grow [] (Instance.budget instance u) base (eval base))

let greedy ?(objective = Objective.Sum) ?ctx ?csr instance config u =
  match ctx with
  | Some c ->
      Incr.ensure c config;
      if Incr.functional c then
        greedy_rows ~objective instance u ~rows:(threshold_rows c instance u)
      else
        Incr.with_masked c u (fun () ->
            greedy_rows ~objective instance u ~rows:(masked_rows c instance))
  | None ->
      let candidates = Array.of_list (candidate_targets instance u) in
      greedy_rows ~objective instance u
        ~rows:(scratch_rows ?csr ~prefetch:candidates instance config u)
