module Digraph = Bbc_graph.Digraph
module Paths = Bbc_graph.Paths

type result = { strategy : int list; cost : int }

let candidate_targets instance u =
  let n = Instance.n instance in
  let b = Instance.budget instance u in
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if v <> u && Instance.cost instance u v <= b then acc := v :: !acc
  done;
  !acc

(* Distance rows in G_{-u}, computed lazily per candidate target. *)
type rows = {
  graph_minus_u : Digraph.t;
  cache : int array option array;
}

let make_rows instance config u =
  let g = Config.to_graph instance config in
  Digraph.remove_out_edges g u;
  { graph_minus_u = g; cache = Array.make (Instance.n instance) None }

let row rows v =
  match rows.cache.(v) with
  | Some d -> d
  | None ->
      let d = Paths.shortest rows.graph_minus_u v in
      rows.cache.(v) <- Some d;
      d

(* Distance from u to x when u's strategy contains the link (u,v), given
   the current best-known distances [cur]. *)
let merge_row instance u cur r v =
  let luv = Instance.length instance u v in
  let n = Array.length cur in
  let out = Array.copy cur in
  let rv = r v in
  for x = 0 to n - 1 do
    if rv.(x) <> Paths.unreachable then begin
      let d = luv + rv.(x) in
      if d < out.(x) then out.(x) <- d
    end
  done;
  out

(* Subsets explored across all enumerations; accumulated locally and
   published once per call so the DFS hot loop stays untouched. *)
let obs_subsets = Bbc_obs.counter "best_response.subsets"
let obs_enumerations = Bbc_obs.counter "best_response.enumerations"

(* DFS over affordable subsets of candidates.  [on_subset strategy_rev cost]
   is called for every feasible subset (including the empty one); it
   returns [true] to abort the search early. *)
let enumerate ?(objective = Objective.Sum) instance config u ~on_subset =
  let rows = make_rows instance config u in
  let candidates = Array.of_list (candidate_targets instance u) in
  let n = Instance.n instance in
  let base = Array.make n Paths.unreachable in
  base.(u) <- 0;
  let eval cur = Eval.cost_of_distances ~objective instance u cur in
  let stop = ref false in
  let subsets = ref 1 in
  if on_subset [] (eval base) then stop := true;
  let rec dfs i chosen budget cur =
    if not !stop then
      for j = i to Array.length candidates - 1 do
        if not !stop then begin
          let v = candidates.(j) in
          let c = Instance.cost instance u v in
          if c <= budget then begin
            let cur' = merge_row instance u cur (row rows) v in
            let chosen' = v :: chosen in
            incr subsets;
            if on_subset chosen' (eval cur') then stop := true
            else dfs (j + 1) chosen' (budget - c) cur'
          end
        end
      done
  in
  dfs 0 [] (Instance.budget instance u) base;
  Bbc_obs.incr obs_enumerations;
  Bbc_obs.add obs_subsets !subsets

let exact ?objective instance config u =
  let best = ref { strategy = []; cost = max_int } in
  enumerate ?objective instance config u ~on_subset:(fun chosen cost ->
      if cost < !best.cost then best := { strategy = List.rev chosen; cost };
      false);
  { !best with strategy = List.sort compare !best.strategy }

let best_cost ?objective instance config u = (exact ?objective instance config u).cost

let all_best ?objective instance config u =
  let best = ref max_int and acc = ref [] in
  enumerate ?objective instance config u ~on_subset:(fun chosen cost ->
      if cost < !best then begin
        best := cost;
        acc := [ List.sort compare chosen ]
      end
      else if cost = !best then acc := List.sort compare chosen :: !acc;
      false);
  List.rev_map (fun strategy -> { strategy; cost = !best }) !acc

let improving ?objective instance config u =
  let current = Eval.node_cost ?objective instance config u in
  let found = ref None in
  enumerate ?objective instance config u ~on_subset:(fun chosen cost ->
      if cost < current then begin
        found := Some { strategy = List.sort compare chosen; cost };
        true
      end
      else false);
  !found

let greedy ?(objective = Objective.Sum) instance config u =
  let rows = make_rows instance config u in
  let n = Instance.n instance in
  let base = Array.make n Paths.unreachable in
  base.(u) <- 0;
  let eval cur = Eval.cost_of_distances ~objective instance u cur in
  (* The candidate list only depends on the instance — computed once,
     not rebuilt on every growth step. *)
  let candidates = candidate_targets instance u in
  let rec grow chosen budget cur cost =
    let best = ref None in
    List.iter
      (fun v ->
        if (not (List.mem v chosen)) && Instance.cost instance u v <= budget then begin
          let cur' = merge_row instance u cur (row rows) v in
          let c = eval cur' in
          match !best with
          | Some (_, _, c') when c' <= c -> ()
          | _ -> best := Some (v, cur', c)
        end)
      candidates;
    match !best with
    | Some (v, cur', c) when c < cost ->
        grow (v :: chosen) (budget - Instance.cost instance u v) cur' c
    | _ -> { strategy = List.sort compare chosen; cost }
  in
  grow [] (Instance.budget instance u) base (eval base)
