(** Complete enumeration of pure Nash equilibria over a profile space.

    The profile space is the product of per-node candidate strategy lists
    (by default, {e all} feasible strategies of each node).  Regardless of
    any candidate restriction, each enumerated profile is verified with
    the full polynomial stability check of {!Stability} — i.e. against
    {e all} feasible deviations — so every reported equilibrium is a true
    pure NE of the unrestricted game.  A restriction only narrows where
    we look: "no equilibrium found" under a restriction certifies absence
    within the restricted space (used for the Figure-1 gadget, whose full
    space of 11^11 profiles is out of reach; see DESIGN.md). *)

type result = {
  equilibria : Config.t list;  (** In enumeration order, up to [limit]. *)
  examined : int;  (** Profiles actually checked. *)
  complete : bool;
      (** Whether the whole candidate space was examined (false when the
          [limit] on equilibria or [max_profiles] stopped the search). *)
}

val all_strategies : Instance.t -> int -> int list list
(** Every feasible strategy of a node: all subsets of affordable targets
    whose total cost is within budget (including the empty strategy). *)

val maximal_strategies : Instance.t -> int -> int list list
(** Feasible strategies to which no further affordable link can be added.
    In games with non-negative weights, adding a link never increases
    one's own cost, so every node has a maximal best response — a
    sound candidate restriction for {e existence} searches. *)

val space_size : int list list array -> float
(** Product of candidate-list sizes (float to avoid overflow). *)

val search :
  ?objective:Objective.t ->
  ?candidates:int list list array ->
  ?limit:int ->
  ?max_profiles:int ->
  ?jobs:int ->
  Instance.t ->
  result
(** Enumerate and stability-check the profile space.  [limit] (default 1)
    bounds the number of equilibria collected; [max_profiles] (default
    [10^8]) aborts oversized searches with [complete = false].

    [jobs] (default {!Bbc_parallel.default_jobs}) partitions the space
    by a prefix of the first node levels and enumerates the subtrees on
    the domain pool.  Early abort propagates across domains: a subtree
    stops once the prefixes preceding it have found [limit] equilibria
    (everything they found precedes anything it could find) or the
    global [max_profiles] budget is exhausted.  The [equilibria] list
    and [complete] flag are therefore identical for every job count;
    [examined] can differ between job counts only when the search aborts
    early ([limit] hit or budget exhausted). *)

val has_equilibrium :
  ?objective:Objective.t ->
  ?candidates:int list list array ->
  ?max_profiles:int ->
  ?jobs:int ->
  Instance.t ->
  bool option
(** [Some b] if the search completed, [None] if it hit [max_profiles]. *)

val count_equilibria :
  ?objective:Objective.t ->
  ?candidates:int list list array ->
  ?max_profiles:int ->
  ?jobs:int ->
  Instance.t ->
  int option
