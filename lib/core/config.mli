(** Strategy profiles (the paper's [S = {S_u}]): for every node, the set
    of targets of the out-links it buys.

    Target lists are stored sorted and duplicate-free, which gives cheap
    structural equality and hashing — the dynamics layer detects
    best-response cycles by hashing visited profiles. *)

type t

val n : t -> int

val empty : int -> t
(** The profile in which nobody buys anything (the "empty graph" start
    state of Section 4.3). *)

val of_lists : int -> int list array -> t
(** [of_lists n strategies] validates: array length [n], targets in range,
    no self-links, no duplicates.  (Budget feasibility depends on the
    instance; see {!feasible}.) *)

val of_graph : Bbc_graph.Digraph.t -> t
(** Forget lengths: each node's strategy is its out-neighbor set. *)

val targets : t -> int -> int list
(** Sorted targets of a node's strategy. *)

val strategy_size : t -> int -> int

val with_strategy : t -> int -> int list -> t
(** Functional update of one node's strategy (validated as in
    {!of_lists}).  The profile is persistent: the original is unchanged. *)

val spend : Instance.t -> t -> int -> int
(** Total link cost spent by a node under its current strategy. *)

val feasible : Instance.t -> t -> bool
(** Every node's spend is within its budget. *)

val to_graph : Instance.t -> t -> Bbc_graph.Digraph.t
(** Realize the bought links as a digraph with lengths from the
    instance. *)

val to_csr : ?skip:int -> Instance.t -> t -> Bbc_graph.Csr.t
(** Realize the profile directly as a flat CSR snapshot — no
    intermediate adjacency-list graph.  With [~skip:u], node [u]'s links
    are left out: the best-response [G_{-u}] shape, built in one pass. *)

val edge_count : t -> int

(** {2 Trusted construction (hot paths)}

    The exhaustive search enumerates millions of profiles; validating
    and re-sorting each one ({!of_lists}) dominated its budget.  These
    entry points let a caller that {e already} maintains the
    representation invariant (every row sorted, duplicate-free, in
    range, no self-links — e.g. rows produced by {!validated_strategy})
    wrap or copy a profile without a per-profile pass. *)

val validated_strategy : int -> int -> int list -> int array
(** [validated_strategy n u targets] validates one strategy exactly as
    {!of_lists} does and returns its canonical sorted array. *)

val unsafe_of_arrays : int array array -> t
(** Adopt the array as a profile {b without copying or validation}.
    The caller promises every row satisfies the representation
    invariant; the view aliases the array, so later in-place updates of
    the array are visible through it (the exhaustive search exploits
    exactly this for its reusable profile buffer). *)

val snapshot : t -> t
(** Deep copy (rows included) — detaches a profile obtained from
    {!unsafe_of_arrays} from its underlying mutable buffer. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
