(* Landmark-sampled social cost; see approx.mli for the contract. *)

module SM = Bbc_prng.Splitmix
module Csr = Bbc_graph.Csr
module Workspace = Bbc_graph.Workspace

type estimate = {
  value : float;
  bound : float;
  landmarks : int;
  exact : bool;
}

let parallel_threshold = 64

(* Sum of node costs (and sum of their squares) over [sources], via
   pooled int32 sweeps of the shared snapshot — bit-parallel
   [Csr.batch_width]-landmark windows on unit-length snapshots, scalar
   sweeps otherwise (mirrors [Eval.batched_costs]).  Each pool pull
   claims one window; chunk-indexed partial accumulators folded in
   order keep the integer total independent of scheduling and job
   count. *)
let sampled_sums ?objective ~jobs instance csr sources =
  let n = Instance.n instance in
  let l = Array.length sources in
  let chunk = Csr.batch_width in
  let nchunks = if l = 0 then 0 else 1 + ((l - 1) / chunk) in
  let sum = Array.make (max nchunks 1) 0 in
  let sumsq = Array.make (max nchunks 1) 0.0 in
  Bbc_parallel.parallel_for_chunks ~jobs ~chunk 0 l (fun lo hi ->
      let ws = Workspace.get () in
      let scratch = Workspace.scratch ws in
      let s = ref 0 and sq = ref 0.0 in
      let tally u (row : Csr.dist32) =
        let c = Eval.cost_of_distances32 ?objective instance u row in
        s := !s + c;
        sq := !sq +. (float_of_int c *. float_of_int c)
      in
      if Csr.unit_lengths csr then begin
        let width = min Csr.batch_width (hi - lo) in
        let rows = Workspace.acquire_many32 ws n width in
        let pos = ref lo in
        while !pos < hi do
          let base = !pos in
          let k = min width (hi - base) in
          let srcs = Array.sub sources base k in
          let rows_k = if k = width then rows else Array.sub rows 0 k in
          Csr.sssp_batch32 csr scratch ~srcs ~rows:rows_k;
          for i = 0 to k - 1 do
            tally srcs.(i) rows.(i)
          done;
          Csr.reset_rows32 scratch ~rows:rows_k;
          pos := base + k
        done;
        Workspace.release_clean_many32 ws rows
      end
      else begin
        let row = Workspace.acquire32 ws n in
        for i = lo to hi - 1 do
          let u = sources.(i) in
          Csr.sssp32 csr scratch ~src:u ~dist:row;
          tally u row;
          Csr.reset32 scratch row
        done;
        Workspace.release_clean32 ws row
      end;
      sum.(lo / chunk) <- !s;
      sumsq.(lo / chunk) <- !sq);
  (Array.fold_left ( + ) 0 sum, Array.fold_left ( +. ) 0.0 sumsq)

let social_cost ?objective ?jobs ~landmarks ~seed instance csr =
  let n = Instance.n instance in
  if Csr.n csr <> n then
    invalid_arg "Approx.social_cost: snapshot size does not match instance";
  if landmarks < 2 then invalid_arg "Approx.social_cost: landmarks must be >= 2";
  let l = min landmarks n in
  let jobs = Bbc_parallel.jobs_for ?jobs ~threshold:parallel_threshold l in
  Bbc_obs.with_span "approx.social_cost"
    ~attrs:
      [ ("n", Bbc_obs.Int n); ("landmarks", Bbc_obs.Int l); ("jobs", Bbc_obs.Int jobs) ]
    (fun () ->
      if l >= n then begin
        (* Full sweep: the estimator degenerates to the exact total. *)
        let sources = Array.init n Fun.id in
        let sum, _ = sampled_sums ?objective ~jobs instance csr sources in
        { value = float_of_int sum; bound = 0.0; landmarks = n; exact = true }
      end
      else begin
        let sources =
          Array.of_list (SM.sample_without_replacement (SM.create seed) l n)
        in
        let sum, sumsq = sampled_sums ?objective ~jobs instance csr sources in
        let lf = float_of_int l and nf = float_of_int n in
        let mean = float_of_int sum /. lf in
        (* Unbiased sample variance of the node costs. *)
        let var = max 0.0 ((sumsq -. (lf *. mean *. mean)) /. (lf -. 1.0)) in
        (* Standard error of the scaled total under sampling without
           replacement: n * sqrt(s^2 / L * (1 - L/n)) — the classic
           SRSWOR estimator with finite-population correction.  Six
           standard errors rather than the textbook four: with few
           landmarks on a skewed cost population the sample can miss
           every outlier, so s^2 underestimates the true variance and
           a tight normal quantile is overconfident. *)
        let se = nf *. sqrt (var /. lf *. (1.0 -. (lf /. nf))) in
        { value = nf *. mean; bound = 6.0 *. se; landmarks = l; exact = false }
      end)
