(** Fractional BBC games (paper, Section 3.2, Theorem 3).

    A fractional strategy for node [u] assigns a non-negative capacity
    [a_u(v)] to each potential link, with [sum_v a_u(v) * c(u,v) <=
    b(u)].  The cost charged for the pair [(u, v)] is the cost of a
    minimum-cost {e unit} flow from [u] to [v] in the network that has,
    for every ordered pair [(x, y)], an arc of capacity [a_x(y)] and
    per-unit cost [l(x, y)], plus an infinite-capacity arc of per-unit
    cost [M] (the penalty); the latter guarantees a unit flow always
    exists.  A node's cost is the preference-weighted aggregate of its
    pair costs.

    Theorem 3 proves a pure NE always exists (the cost is quasi-convex in
    one's own strategy over a compact convex strategy polytope).  Fixed
    points of a continuous game are not finitely representable, so the
    computational witness is {e epsilon-equilibria}: {!improve_until}
    runs better-response descent (coordinate capacity shifts) and
    {!stability_gap} measures how far each node remains from its best
    discovered response. *)

type strategy = float array
(** [s.(v)] is the capacity bought on link [(u, v)]; [s.(u)] must be 0. *)

type profile = strategy array

val uniform_profile : Instance.t -> profile
(** Every node spreads its budget equally over all other nodes. *)

val integral_profile : Instance.t -> Config.t -> profile
(** The fractional embedding of an integral profile (capacity 1 per
    bought link). *)

val feasible : Instance.t -> profile -> bool

val pair_cost : Instance.t -> profile -> int -> int -> float
(** Min-cost unit-flow cost from [u] to [v] (paper's [cost_uv(a)]). *)

val node_cost : ?objective:Objective.t -> Instance.t -> profile -> int -> float

val social_cost : ?objective:Objective.t -> Instance.t -> profile -> float

val best_response_step :
  ?objective:Objective.t ->
  ?step_sizes:float list ->
  Instance.t ->
  profile ->
  int ->
  (strategy * float) option
(** One better-response improvement for node [u]: try shifting capacity
    between link pairs (and onto unused links) at the given step sizes,
    plus every pure (single-link) strategy; return the best improving
    strategy found with its cost, or [None] if none improves. *)

val improve_until :
  ?objective:Objective.t ->
  ?step_sizes:float list ->
  ?max_sweeps:int ->
  Instance.t ->
  profile ->
  profile * int
(** Round-robin better-response descent until no node improves (or the
    sweep limit is reached).  Returns the final profile and the number of
    sweeps performed. *)

val stability_gap :
  ?objective:Objective.t ->
  ?step_sizes:float list ->
  Instance.t ->
  profile ->
  float
(** Max over nodes of (current cost - best discovered deviation cost);
    a profile with gap [<= eps] is an eps-equilibrium with respect to the
    searched deviation set. *)
