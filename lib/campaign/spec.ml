(* Campaign spec: a cartesian grid over trial axes.  The only subtle
   parts are the fixed axis order (points, inits, schedulers, policies,
   objectives, seeds — seeds innermost, so consecutive unit ids share a
   grid point) and the per-unit seed, a pure mix of campaign seed and
   unit index: resume, re-sharding, and via-server fan-out can execute
   units in any order without perturbing any walk. *)

module Json = Bbc.Json
module Trial = Bbc.Trial
module Splitmix = Bbc_prng.Splitmix

type point = { generator : Trial.generator; n : int; k : int; h : int; l : int }

type t = {
  name : string;
  seed : int;
  seeds_per_point : int;
  max_rounds : int;
  points : point list;
  inits : Trial.init list;
  schedulers : Trial.sched list;
  policies : Trial.policy list;
  objectives : Bbc.Objective.t list;
}

let ( let* ) = Result.bind

(* ---------------------------------------------------------------- *)
(* Grid expansion                                                    *)

let unit_count t =
  List.length t.points * List.length t.inits * List.length t.schedulers
  * List.length t.policies * List.length t.objectives * t.seeds_per_point

let unit_seed base i =
  let g = Splitmix.create base in
  let campaign_bits = Int64.to_int (Splitmix.next_int64 g) in
  let h = Splitmix.create (campaign_bits lxor ((i + 1) * 0x2545F4914F6CDD1D)) in
  Int64.to_int (Splitmix.next_int64 h) land max_int

let unit t i =
  let total = unit_count t in
  if i < 0 || i >= total then
    invalid_arg (Printf.sprintf "Spec.unit: index %d out of range [0,%d)" i total);
  let nth l j = List.nth l j in
  (* The seed index (innermost digit) never selects anything: the
     per-unit seed depends on [i] alone. *)
  let r = i / t.seeds_per_point in
  let n_obj = List.length t.objectives in
  let o_idx = r mod n_obj in
  let r = r / n_obj in
  let n_pol = List.length t.policies in
  let pol_idx = r mod n_pol in
  let r = r / n_pol in
  let n_sch = List.length t.schedulers in
  let sch_idx = r mod n_sch in
  let r = r / n_sch in
  let n_init = List.length t.inits in
  let init_idx = r mod n_init in
  let p_idx = r / n_init in
  let p = nth t.points p_idx in
  {
    Trial.generator = p.generator;
    n = p.n;
    k = p.k;
    h = p.h;
    l = p.l;
    init = nth t.inits init_idx;
    scheduler = nth t.schedulers sch_idx;
    policy = nth t.policies pol_idx;
    objective = nth t.objectives o_idx;
    max_rounds = t.max_rounds;
    seed = unit_seed t.seed i;
  }

(* ---------------------------------------------------------------- *)
(* Validation                                                        *)

let max_units = 1_000_000_000

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.seeds_per_point < 1 then
    err "campaign: seeds_per_point must be >= 1 (got %d)" t.seeds_per_point
  else if t.max_rounds < 1 then
    err "campaign: max_rounds must be >= 1 (got %d)" t.max_rounds
  else if t.points = [] then Error "campaign: points must be non-empty"
  else if t.inits = [] then Error "campaign: inits must be non-empty"
  else if t.schedulers = [] then Error "campaign: schedulers must be non-empty"
  else if t.policies = [] then Error "campaign: policies must be non-empty"
  else if t.objectives = [] then Error "campaign: objectives must be non-empty"
  else if unit_count t > max_units then
    err "campaign: grid expands to %d units (limit %d)" (unit_count t) max_units
  else
    (* Validate every point x init x policy combination structurally;
       schedulers and objectives carry no constraints of their own. *)
    List.fold_left
      (fun acc p ->
        let* () = acc in
        List.fold_left
          (fun acc init ->
            let* () = acc in
            List.fold_left
              (fun acc policy ->
                let* () = acc in
                Trial.validate
                  {
                    Trial.generator = p.generator;
                    n = p.n;
                    k = p.k;
                    h = p.h;
                    l = p.l;
                    init;
                    scheduler = List.hd t.schedulers;
                    policy;
                    objective = List.hd t.objectives;
                    max_rounds = t.max_rounds;
                    seed = 0;
                  })
              (Ok ()) t.policies)
          (Ok ()) t.inits)
      (Ok ()) t.points

(* ---------------------------------------------------------------- *)
(* JSON                                                              *)

let point_to_json p =
  Json.Obj
    [
      ("generator", Trial.generator_to_json p.generator);
      ("n", Json.Int p.n);
      ("k", Json.Int p.k);
      ("h", Json.Int p.h);
      ("l", Json.Int p.l);
    ]

let to_json t =
  Json.Obj
    [
      ("type", Json.Str "bbc-campaign");
      ("version", Json.Int 1);
      ("name", Json.Str t.name);
      ("seed", Json.Int t.seed);
      ("seeds_per_point", Json.Int t.seeds_per_point);
      ("max_rounds", Json.Int t.max_rounds);
      ("points", Json.List (List.map point_to_json t.points));
      ("inits", Json.List (List.map (fun i -> Json.Str (Trial.init_name i)) t.inits));
      ( "schedulers",
        Json.List (List.map (fun s -> Json.Str (Trial.sched_name s)) t.schedulers) );
      ("policies", Json.List (List.map Trial.policy_to_json t.policies));
      ( "objectives",
        Json.List
          (List.map (fun o -> Json.Str (Trial.objective_name o)) t.objectives) );
    ]

let opt_int name ~default v =
  match Json.member name v with
  | None -> Ok default
  | Some x -> (
      match Json.to_int x with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "campaign: field %S must be an integer" name))

let req_int name v =
  match Json.member name v with
  | None -> Error (Printf.sprintf "campaign: missing field %S" name)
  | Some x -> (
      match Json.to_int x with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "campaign: field %S must be an integer" name))

let opt_str name ~default v =
  match Json.member name v with
  | None -> Ok default
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "campaign: field %S must be a string" name)

(* Decode an optional list-valued axis, mapping each element through
   [elt]; absent fields take [default]. *)
let axis name ~default ~elt v =
  match Json.member name v with
  | None -> Ok default
  | Some (Json.List xs) ->
      List.fold_left
        (fun acc x ->
          let* items = acc in
          let* d = elt x in
          Ok (d :: items))
        (Ok []) xs
      |> Result.map List.rev
  | Some _ -> Error (Printf.sprintf "campaign: field %S must be a list" name)

let named_elt what of_name = function
  | Json.Str s -> (
      match of_name s with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "campaign: unknown %s %S" what s))
  | _ -> Error (Printf.sprintf "campaign: %s entries must be strings" what)

let point_of_json v =
  let* gv =
    match Json.member "generator" v with
    | Some g -> Ok g
    | None -> Error "campaign: point missing field \"generator\""
  in
  let* generator = Trial.generator_of_json gv in
  let* n = req_int "n" v in
  let* k = req_int "k" v in
  let* h = opt_int "h" ~default:2 v in
  let* l = opt_int "l" ~default:3 v in
  Ok { generator; n; k; h; l }

let of_json v =
  let* () =
    match Json.member "type" v with
    | Some (Json.Str "bbc-campaign") -> Ok ()
    | _ -> Error "campaign: expected \"type\":\"bbc-campaign\""
  in
  let* version = opt_int "version" ~default:1 v in
  if version <> 1 then
    Error (Printf.sprintf "campaign: unsupported version %d" version)
  else
    let* name = opt_str "name" ~default:"campaign" v in
    let* seed = opt_int "seed" ~default:1 v in
    let* seeds_per_point = req_int "seeds_per_point" v in
    let* max_rounds = opt_int "max_rounds" ~default:200 v in
    let* points =
      match Json.member "points" v with
      | Some (Json.List xs) when xs <> [] ->
          List.fold_left
            (fun acc x ->
              let* items = acc in
              let* p = point_of_json x in
              Ok (p :: items))
            (Ok []) xs
          |> Result.map List.rev
      | Some (Json.List []) -> Error "campaign: points must be non-empty"
      | _ -> Error "campaign: missing or non-list field \"points\""
    in
    let* inits =
      axis "inits" ~default:[ Trial.Empty ]
        ~elt:(named_elt "init" Trial.init_of_name)
        v
    in
    let* schedulers =
      axis "schedulers" ~default:[ Trial.Round_robin ]
        ~elt:(named_elt "scheduler" Trial.sched_of_name)
        v
    in
    let* policies =
      axis "policies" ~default:[ Trial.Exact ] ~elt:Trial.policy_of_json v
    in
    let* objectives =
      axis "objectives"
        ~default:[ Bbc.Objective.Sum ]
        ~elt:(named_elt "objective" Trial.objective_of_name)
        v
    in
    Ok
      {
        name;
        seed;
        seeds_per_point;
        max_rounds;
        points;
        inits;
        schedulers;
        policies;
        objectives;
      }

let of_string s =
  let* v = Json.of_string s in
  let* t = of_json v in
  let* () = validate t in
  Ok t

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> of_string contents
  | exception Sys_error m -> Error m
