(** Campaign execution: expand the spec, skip checkpointed units,
    execute the rest in chunks, checkpoint each chunk atomically, and
    render the aggregate report.

    Determinism contract: the final [report.json] is a pure function of
    the spec — independent of jobs, chunk size, execution mode,
    interruption and resume — because every unit's walk depends only on
    (campaign seed, unit index) and the aggregate is order-independent
    ({!Aggregate}).  A campaign directory is bound to its spec: [run]
    writes the canonical spec rendering on first use and refuses to
    resume over a different one. *)

type mode = In_process | Via_server of string  (** endpoint spec *)

type opts = {
  jobs : int option;  (** [None]: the {!Bbc_parallel} default *)
  checkpoint_every : int;  (** units per chunk; clamped to >= 1 *)
  retries : int;  (** extra attempts before quarantine *)
  backoff_ms : int;  (** base of the exponential backoff *)
  mode : mode;
}

val default_opts : opts
(** In-process, default jobs, checkpoint every 256 units, 2 retries,
    100ms backoff. *)

type outcome = {
  total : int;  (** units in the grid *)
  skipped : int;  (** already checkpointed on entry *)
  executed : int;  (** run this invocation *)
  quarantined : int;  (** cumulative failed units *)
  report_path : string;
}

val run :
  ?on_chunk:(done_units:int -> total:int -> unit) ->
  opts ->
  dir:string ->
  Spec.t ->
  (outcome, string) result
(** Run (or resume) the campaign in [dir].  [on_chunk] fires after each
    checkpointed chunk with cumulative progress. *)

val report : dir:string -> (Bbc.Json.t, string) result
(** Recompute the aggregate report from [dir]'s spec and checkpoints
    without executing anything — byte-identical to the [report.json] a
    completed {!run} writes.  Incomplete campaigns report only their
    completed units. *)
