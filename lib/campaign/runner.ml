module Json = Bbc.Json
module Trial = Bbc.Trial

type mode = In_process | Via_server of string

type opts = {
  jobs : int option;
  checkpoint_every : int;
  retries : int;
  backoff_ms : int;
  mode : mode;
}

let default_opts =
  { jobs = None; checkpoint_every = 256; retries = 2; backoff_ms = 100; mode = In_process }

type outcome = {
  total : int;
  skipped : int;
  executed : int;
  quarantined : int;
  report_path : string;
}

let ( let* ) = Result.bind

let units_completed = Bbc_obs.counter "campaign.units.completed"
let units_skipped = Bbc_obs.counter "campaign.units.skipped"
let units_quarantined = Bbc_obs.counter "campaign.units.quarantined"
let chunks_written = Bbc_obs.counter "campaign.chunks.written"
let unit_retries = Bbc_obs.counter "campaign.unit.retries"

(* In-process execution of one chunk on the domain pool.  Trial
   failures are deterministic (validation / infeasible parameters), so
   only exceptions are retried before quarantine. *)
let exec_unit retries spec id =
  let trial = Spec.unit spec id in
  let rec go k =
    match Trial.run trial with
    | Ok s -> { Checkpoint.unit_id = id; payload = Checkpoint.Done s }
    | Error m -> { Checkpoint.unit_id = id; payload = Checkpoint.Failed m }
    | exception e ->
        if k < retries then begin
          Bbc_obs.incr unit_retries;
          go (k + 1)
        end
        else
          { Checkpoint.unit_id = id; payload = Checkpoint.Failed (Printexc.to_string e) }
  in
  go 0

let exec_chunk opts spec (chunk : int array) =
  match opts.mode with
  | In_process ->
      Array.to_list
        (Bbc_parallel.parallel_map ?jobs:opts.jobs ~chunk:1
           (fun id -> exec_unit opts.retries spec id)
           chunk)
  | Via_server ep -> (
      match Client.endpoint_of_string ep with
      | Error m ->
          (* Unreachable after [run] validated the endpoint; quarantine
             defensively rather than raise inside a chunk. *)
          Array.to_list
            (Array.map
               (fun id -> { Checkpoint.unit_id = id; payload = Checkpoint.Failed m })
               chunk)
      | Ok endpoint ->
          let threads =
            match opts.jobs with
            | Some j -> max 1 j
            | None -> Bbc_parallel.default_jobs ()
          in
          Client.run_units ~endpoint
            ~opts:
              { Client.threads; retries = opts.retries; backoff_ms = opts.backoff_ms }
            ~trial_of:(Spec.unit spec) chunk)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok contents
  | exception Sys_error m -> Error m

(* Bind the directory to the spec: first use writes the canonical
   rendering; later uses must match it bytewise. *)
let bind_spec ~dir spec =
  let canonical = Json.to_string (Spec.to_json spec) ^ "\n" in
  let path = Checkpoint.spec_path dir in
  if Sys.file_exists path then
    let* existing = read_file path in
    if existing = canonical then Ok ()
    else
      Error
        (path
       ^ ": campaign directory was started from a different spec; use a fresh --out")
  else begin
    Checkpoint.write_atomic ~path canonical;
    Ok ()
  end

let label_of spec id = Trial.label (Spec.unit spec id)

(* Fold already-checkpointed units into the aggregate; returns how many
   of them are quarantined. *)
let absorb spec agg tbl =
  let failed = ref 0 in
  Hashtbl.iter
    (fun id payload ->
      let label = label_of spec id in
      match payload with
      | Checkpoint.Done s -> Aggregate.add agg ~label s
      | Checkpoint.Failed _ ->
          incr failed;
          Aggregate.add_failed agg ~label)
    tbl;
  !failed

let write_report ~dir spec agg ~total ~completed ~quarantined =
  let path = Checkpoint.report_path dir in
  let json =
    Aggregate.report_json ~name:spec.Spec.name ~units:total ~completed ~quarantined agg
  in
  Checkpoint.write_atomic ~path (Json.to_string json ^ "\n");
  path

let run ?(on_chunk = fun ~done_units:_ ~total:_ -> ()) opts ~dir spec =
  Bbc_obs.with_span "campaign.run" (fun () ->
      let* () = Spec.validate spec in
      let* () =
        match opts.mode with
        | In_process -> Ok ()
        | Via_server ep -> Result.map (fun _ -> ()) (Client.endpoint_of_string ep)
      in
      let* () = Checkpoint.ensure_dir dir in
      let* () = bind_spec ~dir spec in
      let* tbl, next_chunk = Checkpoint.load ~dir in
      let total = Spec.unit_count spec in
      let agg = Aggregate.create () in
      let prior_failed = absorb spec agg tbl in
      let pending =
        Array.of_list
          (List.filter
             (fun id -> not (Hashtbl.mem tbl id))
             (List.init total (fun i -> i)))
      in
      let skipped = total - Array.length pending in
      Bbc_obs.add units_skipped skipped;
      let chunk_size = max 1 opts.checkpoint_every in
      let chunk_ix = ref next_chunk in
      let executed = ref 0 in
      let quarantined = ref prior_failed in
      let n_pending = Array.length pending in
      let pos = ref 0 in
      while !pos < n_pending do
        let len = min chunk_size (n_pending - !pos) in
        let chunk = Array.sub pending !pos len in
        pos := !pos + len;
        let entries =
          Bbc_obs.with_span "campaign.chunk" (fun () -> exec_chunk opts spec chunk)
        in
        (* Deterministic chunk files: sort by unit id before writing. *)
        let entries =
          List.sort
            (fun a b -> compare a.Checkpoint.unit_id b.Checkpoint.unit_id)
            entries
        in
        ignore (Checkpoint.append_chunk ~dir ~index:!chunk_ix entries);
        incr chunk_ix;
        Bbc_obs.incr chunks_written;
        List.iter
          (fun e ->
            incr executed;
            let label = label_of spec e.Checkpoint.unit_id in
            match e.Checkpoint.payload with
            | Checkpoint.Done s ->
                Bbc_obs.incr units_completed;
                Aggregate.add agg ~label s
            | Checkpoint.Failed _ ->
                Bbc_obs.incr units_quarantined;
                incr quarantined;
                Aggregate.add_failed agg ~label)
          entries;
        on_chunk ~done_units:(skipped + !executed) ~total
      done;
      let report_path =
        write_report ~dir spec agg ~total
          ~completed:(skipped + !executed - !quarantined)
          ~quarantined:!quarantined
      in
      Ok
        {
          total;
          skipped;
          executed = !executed;
          quarantined = !quarantined;
          report_path;
        })

let report ~dir =
  let* contents = read_file (Checkpoint.spec_path dir) in
  let* spec = Spec.of_string contents in
  let* tbl, _ = Checkpoint.load ~dir in
  let total = Spec.unit_count spec in
  let agg = Aggregate.create () in
  let failed = absorb spec agg tbl in
  let completed = Hashtbl.length tbl - failed in
  Ok
    (Aggregate.report_json ~name:spec.Spec.name ~units:total
       ~completed ~quarantined:failed agg)
