(** Streaming, order-independent campaign statistics.

    One mutable cell per trial label ({!Bbc.Trial.label} — everything
    but the seed), updated in O(1) per completed unit; nothing per-run
    is retained.  All state is integer-exact (sums, sums of squares,
    counts, log2 histogram buckets); floats — means, equilibrium rates,
    95% CIs — are derived only at render time from those integers, so
    the JSON report is a pure function of the {e set} of completed
    units, independent of completion order, sharding, or resume.  That
    invariant is what makes crash-resume reports byte-identical. *)

type t

val create : unit -> t
val add : t -> label:string -> Bbc.Trial.summary -> unit
val add_failed : t -> label:string -> unit
(** A quarantined unit: counted per cell but contributes no statistics. *)

val report_json :
  name:string -> units:int -> completed:int -> quarantined:int -> t -> Bbc.Json.t
(** [{"type":"bbc-campaign-report","version":1,...,"cells":[...]}] with
    cells sorted by label.  Per cell: run/outcome counts, equilibrium
    rate, convergence-round mean + log2 histogram, step and deviation
    means, social-cost mean±CI95/min/max, strongly-connected count. *)
