(** Campaign specification: a deterministic cartesian grid of trials.

    A spec is the JSON-codable description of a Monte-Carlo sweep —
    instance-generator {e points} (a generator plus its size
    parameters), initial-configuration rules, schedulers, move policies,
    objectives, and a number of seeds per grid point.  The grid expands
    to [unit_count] work units in a fixed order (points outermost, seeds
    innermost), and {!unit} maps an index to its fully-specified
    {!Bbc.Trial.t} — including a per-unit seed derived from the campaign
    seed and the index alone, so any unit can be (re)executed anywhere,
    in any order, with bit-identical results.

    The JSON encoding is canonical after one decode: [to_json] of a
    decoded spec always renders the same bytes, which is how resume
    detects spec drift (the checkpoint directory stores the canonical
    rendering and compares bytewise). *)

type point = {
  generator : Bbc.Trial.generator;
  n : int;
  k : int;
  h : int;  (** default 2 *)
  l : int;  (** default 3 *)
}

type t = {
  name : string;
  seed : int;
  seeds_per_point : int;
  max_rounds : int;
  points : point list;
  inits : Bbc.Trial.init list;
  schedulers : Bbc.Trial.sched list;
  policies : Bbc.Trial.policy list;
  objectives : Bbc.Objective.t list;
}

val validate : t -> (unit, string) result
(** Non-empty axes, positive seeds-per-point and round budget, and every
    point x init x policy combination structurally valid
    ({!Bbc.Trial.validate} on a representative trial). *)

val unit_count : t -> int
(** [|points| * |inits| * |schedulers| * |policies| * |objectives| *
    seeds_per_point]. *)

val unit : t -> int -> Bbc.Trial.t
(** The [i]-th unit of the grid ([0 <= i < unit_count]).  Pure: depends
    only on the spec and [i].  Raises [Invalid_argument] out of range. *)

val unit_seed : int -> int -> int
(** [unit_seed campaign_seed i] — the derived per-unit seed (exposed for
    tests; {!unit} applies it). *)

val to_json : t -> Bbc.Json.t
val of_json : Bbc.Json.t -> (t, string) result
(** Decoding applies defaults: [name] "campaign", [seed] 1,
    [max_rounds] 200, [h] 2 / [l] 3 per point, [inits] [[empty]],
    [schedulers] [[round-robin]], [policies] [[exact]], [objectives]
    [[sum]].  [seeds_per_point] and [points] are required. *)

val of_string : string -> (t, string) result
(** Parse + decode + {!validate}. *)

val load : string -> (t, string) result
(** {!of_string} on a file's contents. *)
