module Json = Bbc.Json
module Net = Bbc_server.Net

type opts = { threads : int; retries : int; backoff_ms : int }

let retries_total = Bbc_obs.counter "campaign.server.retries"
let reconnects_total = Bbc_obs.counter "campaign.server.reconnects"

let endpoint_of_string s =
  match String.index_opt s ':' with
  | None -> (
      (* No colon: a bare port number or a socket path. *)
      match int_of_string_opt s with
      | Some port -> Ok (Net.Tcp ("127.0.0.1", port))
      | None -> Ok (Net.Unix_path s))
  | Some _ when String.length s > 5 && String.sub s 0 5 = "unix:" ->
      Ok (Net.Unix_path (String.sub s 5 (String.length s - 5)))
  | Some _ ->
      let spec =
        if String.length s > 4 && String.sub s 0 4 = "tcp:" then
          String.sub s 4 (String.length s - 4)
        else s
      in
      Result.map (fun (host, port) -> Net.Tcp (host, port)) (Net.parse_tcp spec)

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect endpoint =
  match Net.connect endpoint with
  | Error _ as e -> e
  | Ok fd ->
      Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

type attempt =
  | Success of Bbc.Trial.summary
  | Fatal of string  (** non-retryable: quarantine now *)
  | Transient of string  (** backpressure / transport: retry *)

let request_line id trial =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Int id);
         ("method", Json.Str "run_unit");
         ( "params",
           Json.Obj
             [
               ("session", Json.Str (Printf.sprintf "campaign-u%d" id));
               ("trial", Bbc.Trial.to_json trial);
             ] );
       ])

let retryable_code = function
  | "overloaded" | "timeout" | "shutting_down" -> true
  | _ -> false

let attempt conn id trial =
  match
    output_string conn.oc (request_line id trial);
    output_char conn.oc '\n';
    flush conn.oc;
    input_line conn.ic
  with
  | exception End_of_file -> Transient "connection closed by server"
  | exception Sys_error m -> Transient m
  | exception Unix.Unix_error (e, _, _) -> Transient (Unix.error_message e)
  | line -> (
      match Json.of_string line with
      | Error m -> Fatal (Printf.sprintf "unparseable response: %s" m)
      | Ok v -> (
          match Json.member "ok" v with
          | Some body -> (
              match Bbc.Trial.summary_of_json body with
              | Ok s -> Success s
              | Error m -> Fatal (Printf.sprintf "bad run_unit result: %s" m))
          | None -> (
              let code, msg =
                match Json.member "error" v with
                | Some e ->
                    ( (match Json.member "code" e with
                      | Some (Json.Str c) -> c
                      | _ -> "internal"),
                      match Json.member "message" e with
                      | Some (Json.Str m) -> m
                      | _ -> "unknown error" )
                | None -> ("internal", "response has neither ok nor error")
              in
              if retryable_code code then Transient (code ^ ": " ^ msg)
              else Fatal (code ^ ": " ^ msg))))

(* One worker thread: pull unit ids off the shared cursor, keep a
   private connection, retry transients with exponential backoff. *)
let worker ~endpoint ~opts ~trial_of ~units ~cursor ~lock ~results () =
  let conn = ref None in
  let get_conn () =
    match !conn with
    | Some c -> Ok c
    | None -> (
        match connect endpoint with
        | Ok c ->
            conn := Some c;
            Ok c
        | Error _ as e -> e)
  in
  let drop_conn () =
    (match !conn with Some c -> close c | None -> ());
    conn := None;
    Bbc_obs.incr reconnects_total
  in
  let backoff k =
    let ms = opts.backoff_ms * (1 lsl min k 6) in
    Thread.delay (float_of_int (min ms 2000) /. 1000.0)
  in
  let run_one id =
    let trial = trial_of id in
    let rec go k last_err =
      if k > opts.retries then
        { Checkpoint.unit_id = id; payload = Checkpoint.Failed last_err }
      else begin
        if k > 0 then begin
          Bbc_obs.incr retries_total;
          backoff (k - 1)
        end;
        match get_conn () with
        | Error m ->
            drop_conn ();
            go (k + 1) ("connect: " ^ m)
        | Ok c -> (
            match attempt c id trial with
            | Success s -> { Checkpoint.unit_id = id; payload = Checkpoint.Done s }
            | Fatal m -> { Checkpoint.unit_id = id; payload = Checkpoint.Failed m }
            | Transient m ->
                drop_conn ();
                go (k + 1) m)
      end
    in
    go 0 "unreachable"
  in
  let rec loop () =
    Mutex.lock lock;
    let i = !cursor in
    if i >= Array.length units then Mutex.unlock lock
    else begin
      cursor := i + 1;
      Mutex.unlock lock;
      let entry = run_one units.(i) in
      Mutex.lock lock;
      results := entry :: !results;
      Mutex.unlock lock;
      loop ()
    end
  in
  loop ();
  match !conn with Some c -> close c | None -> ()

let run_units ~endpoint ~opts ~trial_of units =
  let lock = Mutex.create () in
  let cursor = ref 0 in
  let results = ref [] in
  let n = max 1 (min opts.threads (max 1 (Array.length units))) in
  let threads =
    List.init n (fun _ ->
        Thread.create (worker ~endpoint ~opts ~trial_of ~units ~cursor ~lock ~results) ())
  in
  List.iter Thread.join threads;
  !results
