module Json = Bbc.Json
module Trial = Bbc.Trial

(* log2 histogram over rounds-to-convergence: bucket b counts walks
   with floor(log2 rounds) = b (rounds <= 1 in bucket 0).  63 buckets
   cover every OCaml int. *)
let buckets = 63

let log2_bucket v =
  let rec go b v = if v <= 1 then b else go (b + 1) (v / 2) in
  go 0 (max v 1)

type cell = {
  mutable runs : int;
  mutable failed : int;
  mutable converged : int;
  mutable cycled : int;
  mutable exhausted : int;
  mutable connected : int;
  mutable rounds_sum : int;
  rounds_hist : int array;  (* converged walks only *)
  mutable steps_sum : int;
  mutable deviations_sum : int;
  mutable sc_sum : int;
  mutable sc_sumsq : int;
  mutable sc_min : int;
  mutable sc_max : int;
}

type t = (string, cell) Hashtbl.t

let create () : t = Hashtbl.create 64

let cell t label =
  match Hashtbl.find_opt t label with
  | Some c -> c
  | None ->
      let c =
        {
          runs = 0;
          failed = 0;
          converged = 0;
          cycled = 0;
          exhausted = 0;
          connected = 0;
          rounds_sum = 0;
          rounds_hist = Array.make buckets 0;
          steps_sum = 0;
          deviations_sum = 0;
          sc_sum = 0;
          sc_sumsq = 0;
          sc_min = max_int;
          sc_max = min_int;
        }
      in
      Hashtbl.replace t label c;
      c

let add t ~label (s : Trial.summary) =
  let c = cell t label in
  c.runs <- c.runs + 1;
  (match s.outcome with
  | Trial.Converged ->
      c.converged <- c.converged + 1;
      let b = log2_bucket s.rounds in
      c.rounds_hist.(b) <- c.rounds_hist.(b) + 1
  | Trial.Cycled _ -> c.cycled <- c.cycled + 1
  | Trial.Exhausted -> c.exhausted <- c.exhausted + 1);
  if s.strongly_connected then c.connected <- c.connected + 1;
  c.rounds_sum <- c.rounds_sum + s.rounds;
  c.steps_sum <- c.steps_sum + s.steps;
  c.deviations_sum <- c.deviations_sum + s.deviations;
  c.sc_sum <- c.sc_sum + s.social_cost;
  c.sc_sumsq <- c.sc_sumsq + (s.social_cost * s.social_cost);
  if s.social_cost < c.sc_min then c.sc_min <- s.social_cost;
  if s.social_cost > c.sc_max then c.sc_max <- s.social_cost

let add_failed t ~label =
  let c = cell t label in
  c.failed <- c.failed + 1

(* Floats appear only below — derived from the integer state, so the
   rendering is independent of accumulation order. *)

let mean_of sum n = if n = 0 then 0.0 else float_of_int sum /. float_of_int n

let ci95 c =
  if c.runs < 2 then 0.0
  else
    let n = float_of_int c.runs in
    let mean = float_of_int c.sc_sum /. n in
    let var =
      (float_of_int c.sc_sumsq -. (n *. mean *. mean)) /. (n -. 1.0)
    in
    1.96 *. sqrt (Float.max var 0.0 /. n)

let hist_json h =
  let last = ref (-1) in
  Array.iteri (fun i v -> if v > 0 then last := i) h;
  Json.List (List.init (!last + 1) (fun i -> Json.Int h.(i)))

let cell_json label c =
  Json.Obj
    [
      ("label", Json.Str label);
      ("runs", Json.Int c.runs);
      ("failed", Json.Int c.failed);
      ("converged", Json.Int c.converged);
      ("cycled", Json.Int c.cycled);
      ("exhausted", Json.Int c.exhausted);
      ("equilibrium_rate", Json.Float (mean_of c.converged c.runs));
      ("strongly_connected", Json.Int c.connected);
      ("rounds_mean", Json.Float (mean_of c.rounds_sum c.runs));
      ("rounds_log2_hist", hist_json c.rounds_hist);
      ("steps_mean", Json.Float (mean_of c.steps_sum c.runs));
      ("deviations_mean", Json.Float (mean_of c.deviations_sum c.runs));
      ( "social_cost",
        Json.Obj
          [
            ("mean", Json.Float (mean_of c.sc_sum c.runs));
            ("ci95", Json.Float (ci95 c));
            ("min", Json.Int (if c.runs = 0 then 0 else c.sc_min));
            ("max", Json.Int (if c.runs = 0 then 0 else c.sc_max));
          ] );
    ]

let report_json ~name ~units ~completed ~quarantined t =
  let cells =
    Hashtbl.fold (fun label c acc -> (label, c) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (label, c) -> cell_json label c)
  in
  Json.Obj
    [
      ("type", Json.Str "bbc-campaign-report");
      ("version", Json.Int 1);
      ("name", Json.Str name);
      ("units", Json.Int units);
      ("completed", Json.Int completed);
      ("quarantined", Json.Int quarantined);
      ("cells", Json.List cells);
    ]
