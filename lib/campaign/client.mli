(** Via-server execution: fan campaign units out over [bbc serve].

    Each of [threads] worker threads holds one connection to the
    endpoint and drives synchronous [run_unit] RPCs; the [session]
    param ["campaign-u<id>"] exists purely so a sharded front tier
    spreads units across its workers.  Transport failures and
    backpressure errors ([overloaded]/[timeout]/[shutting_down]) are
    retried with exponential backoff on a fresh connection; after
    [retries] extra attempts — or on any non-retryable server error —
    the unit is quarantined as {!Checkpoint.Failed}.  Because trials
    are deterministic, the entries returned are identical to in-process
    execution whenever the server is healthy. *)

type opts = { threads : int; retries : int; backoff_ms : int }

val endpoint_of_string : string -> (Bbc_server.Net.endpoint, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], a bare ["HOST:PORT"], or a bare
    socket path. *)

val run_units :
  endpoint:Bbc_server.Net.endpoint ->
  opts:opts ->
  trial_of:(int -> Bbc.Trial.t) ->
  int array ->
  Checkpoint.entry list
(** Execute the given unit ids; one entry per id, in unspecified
    order.  Never raises on server/transport trouble — failed units
    come back quarantined. *)
