(** Crash-safe campaign state on disk.

    A campaign directory holds [spec.json] (the canonical spec
    rendering, written once), numbered result chunks
    [chunk-00000000.jsonl ...] (one JSON line per completed unit), and
    [report.json] (the aggregate, rewritten after every chunk).  Every
    file is written atomically — contents go to a dot-prefixed temp file
    in the same directory, fsynced, then renamed — so a SIGKILL at any
    instant leaves either the previous state or the next, never a torn
    file.  [load] ignores temp files and keeps the first entry per unit
    id, making replayed chunks harmless. *)

type payload =
  | Done of Bbc.Trial.summary
  | Failed of string  (** quarantined after retries; the last error *)

type entry = { unit_id : int; payload : payload }

val entry_to_line : entry -> string
(** One JSON line, no trailing newline:
    [{"unit":N,"result":{...}}] or [{"unit":N,"error":"..."}]. *)

val entry_of_line : string -> (entry, string) result

val spec_path : string -> string
val report_path : string -> string

val ensure_dir : string -> (unit, string) result
(** Create the campaign directory (and parents) if needed. *)

val write_atomic : path:string -> string -> unit
(** Temp file + fsync + rename.  Raises [Sys_error]/[Unix.Unix_error]
    on I/O failure. *)

val append_chunk : dir:string -> index:int -> entry list -> string
(** Write [chunk-<index padded to 8>.jsonl] atomically; returns its
    path. *)

val load : dir:string -> ((int, payload) Hashtbl.t * int, string) result
(** Scan the directory's chunks in name order.  Returns the completed
    units (first occurrence per id wins) and the next free chunk index.
    A malformed chunk line is an error — checkpoints are ours, so
    corruption should stop the campaign, not skew it. *)
