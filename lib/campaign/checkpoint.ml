module Json = Bbc.Json

type payload = Done of Bbc.Trial.summary | Failed of string
type entry = { unit_id : int; payload : payload }

let ( let* ) = Result.bind

let entry_to_line e =
  let fields =
    match e.payload with
    | Done s -> [ ("unit", Json.Int e.unit_id); ("result", Bbc.Trial.summary_to_json s) ]
    | Failed msg -> [ ("unit", Json.Int e.unit_id); ("error", Json.Str msg) ]
  in
  Json.to_string (Json.Obj fields)

let entry_of_line line =
  let* v = Json.of_string line in
  let* unit_id =
    match Json.member "unit" v with
    | Some u -> (
        match Json.to_int u with
        | Some i -> Ok i
        | None -> Error "checkpoint: \"unit\" must be an integer")
    | None -> Error "checkpoint: missing field \"unit\""
  in
  match (Json.member "result" v, Json.member "error" v) with
  | Some r, None ->
      let* s = Bbc.Trial.summary_of_json r in
      Ok { unit_id; payload = Done s }
  | None, Some (Json.Str msg) -> Ok { unit_id; payload = Failed msg }
  | None, Some _ -> Error "checkpoint: \"error\" must be a string"
  | _ -> Error "checkpoint: entry needs exactly one of \"result\" / \"error\""

let spec_path dir = Filename.concat dir "spec.json"
let report_path dir = Filename.concat dir "report.json"

let rec ensure_dir dir =
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok ()
    else Error (dir ^ ": exists and is not a directory")
  else
    let* () =
      let parent = Filename.dirname dir in
      if parent = dir then Ok () else ensure_dir parent
    in
    match Unix.mkdir dir 0o755 with
    | () -> Ok ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
        Error (dir ^ ": " ^ Unix.error_message e)

let tmp_prefix = ".tmp-"

let write_atomic ~path contents =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf "%s%s-%d" tmp_prefix (Filename.basename path)
         (Unix.getpid ()))
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let oc = Unix.out_channel_of_descr fd in
      output_string oc contents;
      flush oc;
      Unix.fsync fd);
  Sys.rename tmp path;
  (* Best-effort directory fsync so the rename itself is durable. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | dfd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let chunk_name index = Printf.sprintf "chunk-%08d.jsonl" index

let chunk_index name =
  match Scanf.sscanf name "chunk-%8d.jsonl%!" (fun i -> i) with
  | i -> Some i
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None

let append_chunk ~dir ~index entries =
  let path = Filename.concat dir (chunk_name index) in
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (entry_to_line e);
      Buffer.add_char buf '\n')
    entries;
  write_atomic ~path (Buffer.contents buf);
  path

let load ~dir =
  let names =
    match Sys.readdir dir with
    | names -> Array.to_list names
    | exception Sys_error _ -> []
  in
  let chunks =
    List.filter_map (fun n -> Option.map (fun i -> (i, n)) (chunk_index n)) names
    |> List.sort compare
  in
  let tbl = Hashtbl.create 1024 in
  let next = ref 0 in
  let rec load_chunks = function
    | [] -> Ok ()
    | (index, name) :: rest ->
        let path = Filename.concat dir name in
        let* () =
          match In_channel.with_open_bin path In_channel.input_all with
          | contents ->
              String.split_on_char '\n' contents
              |> List.fold_left
                   (fun acc line ->
                     let* () = acc in
                     if String.trim line = "" then Ok ()
                     else
                       let* e = entry_of_line line in
                       if not (Hashtbl.mem tbl e.unit_id) then
                         Hashtbl.replace tbl e.unit_id e.payload;
                       Ok ())
                   (Ok ())
              |> Result.map_error (fun m -> path ^ ": " ^ m)
          | exception Sys_error m -> Error m
        in
        next := max !next (index + 1);
        load_chunks rest
  in
  let* () = load_chunks chunks in
  Ok (tbl, !next)
