(** The network creation game of Fabrikant, Luthra, Maneva, Papadimitriou
    and Shenker (PODC 2003) — the main model the BBC paper positions
    itself against (Section 1.3).

    Differences from BBC: links are {e undirected} (either endpoint's
    purchase serves both), there is {e no budget} — instead every link
    costs a uniform price [alpha] — and player [u] minimizes

    {v cost(u) = alpha * |S_u| + sum_v d(u, v) v}

    with [d] the hop distance in the undirected union of all bought
    links.  Known landmarks reproduced in tests and E15: the complete
    graph is an equilibrium for [alpha <= 1]; the star is an equilibrium
    for [alpha >= 1]; equilibria always exist (in stark contrast to
    Theorem 1's no-NE BBC games).

    Strategies reuse {!Bbc.Config} (the directed representation records
    who pays for each link); distances ignore direction.  Exact best
    responses enumerate all [2^(n-1)] link subsets, so keep [n] below
    ~14. *)

type t = private { n : int; alpha : int; penalty : int }

val create : ?penalty:int -> n:int -> alpha:int -> unit -> t
(** [alpha >= 0]; [penalty] (for disconnected pairs) defaults to
    [4 * n * (alpha + 1)]. *)

val node_cost : t -> Bbc.Config.t -> int -> int
(** [alpha * |S_u| + sum of undirected distances]. *)

val social_cost : t -> Bbc.Config.t -> int

val best_response : t -> Bbc.Config.t -> int -> int list * int
(** Exact optimum over all [2^(n-1)] subsets (first minimum in subset
    order).  Exponential — small [n] only. *)

val is_stable : t -> Bbc.Config.t -> bool

val star : t -> Bbc.Config.t
(** Node 0 buys a link to everyone. *)

val complete : t -> Bbc.Config.t
(** Every pair linked, bought by the lower-numbered endpoint. *)

val empty : t -> Bbc.Config.t

val run_dynamics :
  ?max_rounds:int -> t -> Bbc.Config.t -> (Bbc.Config.t * int) option
(** Round-robin exact-best-response dynamics; [Some (equilibrium,
    rounds)] on convergence, [None] if the round budget runs out. *)
