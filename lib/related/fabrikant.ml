module Config = Bbc.Config
module Digraph = Bbc_graph.Digraph
module Paths = Bbc_graph.Paths

type t = { n : int; alpha : int; penalty : int }

let create ?penalty ~n ~alpha () =
  if n < 2 then invalid_arg "Fabrikant.create: n must be >= 2";
  if alpha < 0 then invalid_arg "Fabrikant.create: alpha must be >= 0";
  let penalty = Option.value ~default:(4 * n * (alpha + 1)) penalty in
  { n; alpha; penalty }

(* The undirected realization: both directions for every bought link. *)
let undirected_graph t config =
  let g = Digraph.create t.n in
  for u = 0 to t.n - 1 do
    List.iter
      (fun v ->
        Digraph.add_edge g u v 1;
        Digraph.add_edge g v u 1)
      (Config.targets config u)
  done;
  g

let node_cost_on t config graph u =
  let dist = Paths.bfs graph u in
  let total = ref (t.alpha * Config.strategy_size config u) in
  for v = 0 to t.n - 1 do
    if v <> u then
      total := !total + (if dist.(v) = Paths.unreachable then t.penalty else dist.(v))
  done;
  !total

let node_cost t config u = node_cost_on t config (undirected_graph t config) u

let social_cost t config =
  let g = undirected_graph t config in
  let total = ref 0 in
  for u = 0 to t.n - 1 do
    total := !total + node_cost_on t config g u
  done;
  !total

(* All subsets of [0, n) \ {u}, in increasing bitmask order. *)
let best_response t config u =
  let others =
    List.filter (( <> ) u) (List.init t.n Fun.id) |> Array.of_list
  in
  let best_set = ref [] and best_cost = ref max_int in
  let subsets = 1 lsl Array.length others in
  for mask = 0 to subsets - 1 do
    let s = ref [] in
    Array.iteri (fun i v -> if mask land (1 lsl i) <> 0 then s := v :: !s) others;
    let config' = Config.with_strategy config u !s in
    let c = node_cost t config' u in
    if c < !best_cost then begin
      best_cost := c;
      best_set := List.sort compare !s
    end
  done;
  (!best_set, !best_cost)

let is_stable t config =
  let g = undirected_graph t config in
  let rec go u =
    if u >= t.n then true
    else begin
      let current = node_cost_on t config g u in
      let _, best = best_response t config u in
      best >= current && go (u + 1)
    end
  in
  go 0

let star t = Config.of_lists t.n (Array.init t.n (fun u -> if u = 0 then List.init (t.n - 1) (fun v -> v + 1) else []))

let complete t =
  Config.of_lists t.n
    (Array.init t.n (fun u -> List.filteri (fun _ v -> v > u) (List.init t.n Fun.id)))

let empty t = Config.empty t.n

let run_dynamics ?(max_rounds = 100) t config0 =
  let rec round config r =
    if r >= max_rounds then None
    else begin
      let changed = ref false in
      let config = ref config in
      for u = 0 to t.n - 1 do
        let current = node_cost t !config u in
        let s, best = best_response t !config u in
        if best < current then begin
          config := Config.with_strategy !config u s;
          changed := true
        end
      done;
      if !changed then round !config (r + 1) else Some (!config, r + 1)
    end
  in
  round config0 0
