(** Residual flow networks with fractional (float) capacities.

    Shared substrate for {!Maxflow} and {!Mincost}.  Arcs are stored in
    forward/backward pairs: pushing flow along an arc increases the residual
    capacity of its twin.  Capacities may be [infinity] (used by the
    fractional BBC model for the penalty arcs that guarantee feasibility). *)

type t

val eps : float
(** Numerical tolerance ([1e-9]): residual capacities below [eps] are
    treated as zero. *)

val create : int -> t
(** [create n] is an empty network on nodes [0 .. n-1]. *)

val n : t -> int

val add_arc : t -> src:int -> dst:int -> capacity:float -> cost:float -> int
(** Adds a forward arc (and its zero-capacity reverse twin); returns the
    forward arc's index.  Capacity must be non-negative (may be
    [infinity]); cost must be finite. *)

val arc_count : t -> int
(** Total number of stored arcs (forward + reverse). *)

val src : t -> int -> int
val dst : t -> int -> int
val cost : t -> int -> float
val residual : t -> int -> float
val twin : t -> int -> int

val is_forward : t -> int -> bool
(** Whether an arc index denotes an original (forward) arc. *)

val flow : t -> int -> float
(** Flow currently pushed through a forward arc. *)

val push : t -> int -> float -> unit
(** [push net a amount] sends [amount] along arc [a]: decreases its
    residual, increases its twin's. *)

val out_arcs : t -> int -> int list
(** Indices of arcs (forward and reverse) leaving a node. *)

val reset : t -> unit
(** Zero all flows (restore original capacities). *)
