(** Maximum flow (Edmonds–Karp: BFS augmenting paths on the residual
    network).  Used for connectivity certificates in tests and for
    cross-checking the min-cost solver's feasibility answers. *)

val solve : Network.t -> source:int -> sink:int -> float
(** Maximum flow value from [source] to [sink].  The network's flows are
    left in the final state. *)
