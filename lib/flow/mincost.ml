type result = { sent : float; cost : float }

(* SPFA: shortest path from [source] to every node in the residual graph
   using arc costs.  Returns (dist, pred_arc). *)
let spfa net source =
  let n = Network.n net in
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  let in_queue = Array.make n false in
  let queue = Queue.create () in
  dist.(source) <- 0.;
  Queue.add source queue;
  in_queue.(source) <- true;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    in_queue.(u) <- false;
    let du = dist.(u) in
    List.iter
      (fun a ->
        if Network.residual net a > Network.eps then begin
          let v = Network.dst net a in
          let nd = du +. Network.cost net a in
          if nd < dist.(v) -. Network.eps then begin
            dist.(v) <- nd;
            pred.(v) <- a;
            if not in_queue.(v) then begin
              Queue.add v queue;
              in_queue.(v) <- true
            end
          end
        end)
      (Network.out_arcs net u)
  done;
  (dist, pred)

let solve net ~source ~sink ~amount =
  if amount < 0. then invalid_arg "Mincost.solve: negative amount";
  if source = sink then invalid_arg "Mincost.solve: source = sink";
  let sent = ref 0. and total_cost = ref 0. in
  let continue = ref true in
  while !continue && amount -. !sent > Network.eps do
    let dist, pred = spfa net source in
    if dist.(sink) = infinity then continue := false
    else begin
      (* Bottleneck along the predecessor path. *)
      let rec bottleneck v acc =
        if v = source then acc
        else
          let a = pred.(v) in
          bottleneck (Network.src net a) (Float.min acc (Network.residual net a))
      in
      let push_amount = bottleneck sink (amount -. !sent) in
      let rec apply v =
        if v <> source then begin
          let a = pred.(v) in
          Network.push net a push_amount;
          apply (Network.src net a)
        end
      in
      apply sink;
      sent := !sent +. push_amount;
      total_cost := !total_cost +. (push_amount *. dist.(sink))
    end
  done;
  { sent = !sent; cost = !total_cost }

let min_cost_unit_flow net ~source ~sink =
  Network.reset net;
  let r = solve net ~source ~sink ~amount:1.0 in
  Network.reset net;
  if 1.0 -. r.sent > Network.eps then None else Some r.cost
