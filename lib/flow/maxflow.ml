let solve net ~source ~sink =
  if source = sink then invalid_arg "Maxflow.solve: source = sink";
  let n = Network.n net in
  let total = ref 0. in
  let continue = ref true in
  while !continue do
    (* BFS for an augmenting path in the residual network. *)
    let pred = Array.make n (-1) in
    let seen = Array.make n false in
    let queue = Queue.create () in
    seen.(source) <- true;
    Queue.add source queue;
    while (not (Queue.is_empty queue)) && not seen.(sink) do
      let u = Queue.take queue in
      List.iter
        (fun a ->
          let v = Network.dst net a in
          if (not seen.(v)) && Network.residual net a > Network.eps then begin
            seen.(v) <- true;
            pred.(v) <- a;
            Queue.add v queue
          end)
        (Network.out_arcs net u)
    done;
    if not seen.(sink) then continue := false
    else begin
      let rec bottleneck v acc =
        if v = source then acc
        else
          let a = pred.(v) in
          bottleneck (Network.src net a) (Float.min acc (Network.residual net a))
      in
      let amount = bottleneck sink infinity in
      let rec apply v =
        if v <> source then begin
          let a = pred.(v) in
          Network.push net a amount;
          apply (Network.src net a)
        end
      in
      apply sink;
      total := !total +. amount
    end
  done;
  !total
