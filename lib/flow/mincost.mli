(** Minimum-cost flow by successive shortest paths.

    Costs may be negative on residual arcs, so path-finding uses SPFA
    (queue-based Bellman–Ford).  Networks in this project are small (one
    per node pair of a fractional BBC game), so the simplicity of SPFA is
    preferred over Dijkstra-with-potentials.

    The fractional BBC model (paper, Section 3.2) evaluates, for every
    ordered pair [(u, v)], the cost of a minimum-cost {e unit} flow from
    [u] to [v] in a network whose arcs are the fractional links bought by
    the nodes plus an infinite-capacity arc of cost [M] per pair; the
    latter guarantees a unit flow always exists. *)

type result = {
  sent : float;  (** Amount of flow actually routed (= requested amount if feasible). *)
  cost : float;  (** Total cost of the routed flow. *)
}

val solve : Network.t -> source:int -> sink:int -> amount:float -> result
(** Route up to [amount] units of flow at minimum cost.  The network's
    flows are left in the final state (use {!Network.reset} to reuse).
    Raises [Invalid_argument] if [amount < 0] or [source = sink]. *)

val min_cost_unit_flow : Network.t -> source:int -> sink:int -> float option
(** Cost of a minimum-cost unit flow, or [None] if a full unit cannot be
    routed.  Resets the network before and after solving. *)
