type t = {
  size : int;
  mutable srcs : int array;
  mutable dsts : int array;
  mutable caps : float array; (* original capacity *)
  mutable res : float array; (* residual capacity *)
  mutable costs : float array;
  mutable count : int;
  out : int list array; (* arc indices leaving each node, reverse order *)
}

let eps = 1e-9

let create n =
  if n < 0 then invalid_arg "Network.create";
  {
    size = n;
    srcs = Array.make 16 0;
    dsts = Array.make 16 0;
    caps = Array.make 16 0.;
    res = Array.make 16 0.;
    costs = Array.make 16 0.;
    count = 0;
    out = Array.make n [];
  }

let n net = net.size

let grow net =
  let cap = Array.length net.srcs in
  let extend a fill =
    let b = Array.make (2 * cap) fill in
    Array.blit a 0 b 0 net.count;
    b
  in
  net.srcs <- extend net.srcs 0;
  net.dsts <- extend net.dsts 0;
  net.caps <- extend net.caps 0.;
  net.res <- extend net.res 0.;
  net.costs <- extend net.costs 0.

let push_raw net ~src ~dst ~capacity ~cost =
  if net.count = Array.length net.srcs then grow net;
  let a = net.count in
  net.srcs.(a) <- src;
  net.dsts.(a) <- dst;
  net.caps.(a) <- capacity;
  net.res.(a) <- capacity;
  net.costs.(a) <- cost;
  net.count <- net.count + 1;
  net.out.(src) <- a :: net.out.(src);
  a

let add_arc net ~src ~dst ~capacity ~cost =
  if src < 0 || src >= net.size || dst < 0 || dst >= net.size then
    invalid_arg "Network.add_arc: node out of range";
  if capacity < 0. then invalid_arg "Network.add_arc: negative capacity";
  if not (Float.is_finite cost) then invalid_arg "Network.add_arc: non-finite cost";
  let fwd = push_raw net ~src ~dst ~capacity ~cost in
  let _bwd = push_raw net ~src:dst ~dst:src ~capacity:0. ~cost:(-.cost) in
  fwd

let arc_count net = net.count

let src net a = net.srcs.(a)
let dst net a = net.dsts.(a)
let cost net a = net.costs.(a)
let residual net a = net.res.(a)
let twin _net a = a lxor 1
let is_forward _net a = a land 1 = 0

let flow net a =
  if a land 1 <> 0 then invalid_arg "Network.flow: not a forward arc";
  (* Residual of the twin equals the flow pushed forward. *)
  net.res.(a lxor 1)

let push net a amount =
  net.res.(a) <- net.res.(a) -. amount;
  let b = a lxor 1 in
  net.res.(b) <- net.res.(b) +. amount

let out_arcs net u = net.out.(u)

let reset net =
  for a = 0 to net.count - 1 do
    net.res.(a) <- net.caps.(a)
  done
