(** Composable random generators with integrated shrinking.

    A generator produces a {e shrink tree}: the generated value at the
    root, and a lazy sequence of smaller candidate trees below it.
    Shrinking is therefore not a separate value-to-values function bolted
    on after the fact (the qcheck style that cannot see through [bind]):
    every combinator composes the trees, so a counterexample built from
    nested generators shrinks each layer coherently — drop list elements
    first, then shrink the survivors, then the scalars they contain.

    Generators are deterministic functions of a {!Bbc_prng.Splitmix}
    state: the same seed replays the same tree, including every shrink
    candidate (composite generators hand [Splitmix.split] streams to
    their parts, and shrink branches re-run continuations on
    [Splitmix.copy]-protected states).  This is what makes a fuzz failure
    replayable from [--seed] alone.

    Conventions: integers shrink toward the low end of their range
    ([int_range lo hi] toward [lo]) by binary halving; booleans toward
    [false]; lists by removing elements (never by regenerating), then
    pointwise.  [oneof]/[frequency] shrink within the chosen branch. *)

type 'a tree = Tree of 'a * 'a tree Seq.t

val root : 'a tree -> 'a
val children : 'a tree -> 'a tree Seq.t

type 'a t = Bbc_prng.Splitmix.t -> 'a tree
(** A generator: advances the given state arbitrarily and returns the
    value's shrink tree. *)

val generate : seed:int -> 'a t -> 'a tree
(** Run a generator on a fresh state seeded with [seed]. *)

exception Discard
(** Raised by {!such_that} when no acceptable value is found; fuzz
    runners count the case as discarded rather than failed. *)

(** {1 Primitives} *)

val return : 'a -> 'a t
(** Constant value, no shrinks. *)

val int_range : int -> int -> int t
(** [int_range lo hi] — uniform in [\[lo, hi\]], shrinking toward [lo]
    by halving the distance.  Requires [lo <= hi]. *)

val int_bound : int -> int t
(** [int_bound n] = [int_range 0 n]. *)

val bool : bool t
(** Uniform; [true] shrinks to [false]. *)

(** {1 Combinators} *)

val map : ('a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t

val bind : 'a t -> ('a -> 'b t) -> 'b t
(** Monadic composition with integrated shrinking: shrink candidates
    first re-run the continuation on shrunk ['a]s (on a copy of the
    state the original continuation consumed, so regeneration is
    deterministic), then shrink the ['b] itself. *)

val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
(** [bind]. *)

val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
(** [map], flipped. *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val oneof : 'a t list -> 'a t
(** Uniform choice among generators; shrinks within the chosen one. *)

val oneofl : 'a list -> 'a t
(** Uniform choice among constants; shrinks toward earlier elements. *)

val frequency : (int * 'a t) list -> 'a t
(** Weighted choice (weights must be positive). *)

val list_of_size : int t -> 'a t -> 'a list t
(** Generate a length, then that many elements.  Shrinks by {e removing}
    elements (whole list, halves, single drops) and then pointwise — the
    length generator's own shrinks are deliberately not replayed, so
    shrinking never regenerates fresh elements. *)

val list : ?max_len:int -> 'a t -> 'a list t
(** [list_of_size (int_bound max_len)] ([max_len] defaults to 10). *)

val tuple_list : 'a t list -> 'a list t
(** Fixed-shape list (one generator per position): shrinks pointwise
    only, never by removal.  The building block for the n x n instance
    tables, whose shape must survive shrinking. *)

val sized : ?limit:int -> (int -> 'a t) -> 'a t
(** [sized f] draws a size in [\[0, limit\]] (default 30) and runs
    [f size]; the size shrinks like [int_bound], re-running [f]. *)

val such_that : ?max_tries:int -> ('a -> bool) -> 'a t -> 'a t
(** Retry (fresh split states, up to [max_tries], default 100) until the
    predicate holds; raises {!Discard} otherwise.  The shrink tree is
    filtered, so shrinking never leaves the predicate. *)

val no_shrink : 'a t -> 'a t
(** Drop all shrink candidates (for values whose shrinking is
    meaningless, e.g. seeds). *)
