(** Differential suites: every engine pair under one generated input.

    Each suite is a list of named properties over {!Domain_gen}
    generators, executed by {!Runner.run}; a mismatch is shrunk to a
    minimal instance and reported with the shrunk counterexample's
    instance/configuration (printable as [bbc convert]-loadable JSON).

    Engine pairs covered:
    - [csr] — list-graph reference ([Paths], [Apsp.floyd_warshall])
      vs flat CSR kernels, including [~ban:u] vs [~skip:u] snapshots
      and int32 vs int rows;
    - [msbfs] — bit-parallel [Csr.sssp_batch]/[sssp_batch32] vs
      per-source sweeps on instances crossing the [Csr.batch_width]
      window boundary (ragged tails, [~ban], shuffled/duplicated
      source subsets, scratch reuse with [reset_rows]);
    - [incr] — scratch [Eval] vs {!Bbc.Incr} contexts under generated
      move sequences, with [with_masked] exact-undo round-trips and
      incremental-vs-parallel [Stability];
    - [br] — [Best_response.exact] (and its [?csr]/[?ctx] variants)
      vs exhaustive strategy enumeration on tiny instances;
    - [server] — in-process [Bbc_server.Engine] request streams vs
      direct scratch-engine calls on a mirrored session;
    - [campaign] — {!Bbc_campaign.Spec} / {!Bbc.Trial} JSON codecs
      round-trip canonically, and a 1-unit campaign's activation trace
      is bit-identical to a direct [Dynamics.run] on the same
      materialized inputs;
    - [selfcheck] — a deliberately broken test-only oracle (social
      cost computed skipping node 0).  Expected to FAIL: it exists to
      prove the harness finds planted bugs and shrinks them
      ([scripts/check_fuzz.sh] asserts the shrunk instance has
      [n <= 8]). *)

type options = {
  seed : int;
  count : int;  (** cases per property *)
  max_shrink_steps : int;
}

type failure_report = {
  prop : string;
  case : int;  (** 0-based failing case index *)
  steps_used : int;  (** shrink budget consumed *)
  message : string;  (** the shrunk counterexample's mismatch *)
  instance : Bbc.Instance.t;  (** shrunk *)
  config : Bbc.Config.t option;  (** shrunk, when the input carries one *)
  detail : string;  (** extra shrunk input (moves / request program) *)
}

type prop_report = {
  suite : string;
  name : string;
  prop_seed : int;  (** the derived seed this property ran under *)
  stats : Runner.stats;
  failure : failure_report option;
}

val suite_names : string list
(** [csr; msbfs; incr; br; server; campaign; selfcheck]. *)

val expand_suites : string -> (string list, string) result
(** Resolve a [--suite] argument: a name from {!suite_names}, or [all]
    (every suite except [selfcheck], which is expected to fail). *)

val run_suite : options -> string -> (prop_report list, string) result
(** Run every property of one suite.  [Error] only for an unknown suite
    name or a generator discard overflow. *)
