(* Generators with integrated shrink trees; see gen.mli for the model. *)

module SM = Bbc_prng.Splitmix

type 'a tree = Tree of 'a * 'a tree Seq.t

let root (Tree (x, _)) = x
let children (Tree (_, cs)) = cs

type 'a t = SM.t -> 'a tree

exception Discard

let generate ~seed g = g (SM.create seed)
let return x _rng = Tree (x, Seq.empty)

let rec map_tree f (Tree (x, cs)) =
  Tree (f x, Seq.map (map_tree f) cs)

let map f g rng = map_tree f (g rng)

(* Shrinks of the composed value: first the left component (re-running
   the continuation deterministically on a copy of the state it
   originally consumed), then the right.  This ordering is what makes
   instance-level shrinks (smaller n) win before value-level ones. *)
let bind g f rng =
  let rng_a = SM.split rng in
  let rng_f = SM.split rng in
  let rec go (Tree (a, ashr)) =
    let (Tree (b, bshr)) = f a (SM.copy rng_f) in
    Tree (b, Seq.append (Seq.map go ashr) bshr)
  in
  go (g rng_a)

let ( let* ) = bind
let ( let+ ) g f = map f g

let map2 f ga gb =
  let* a = ga in
  let+ b = gb in
  f a b

let pair ga gb = map2 (fun a b -> (a, b)) ga gb

let triple ga gb gc =
  let* a = ga in
  map2 (fun b c -> (a, b, c)) gb gc

(* Binary-halving shrink toward [lo]: candidates lo, then x - d for
   d = (x - lo) / 2, / 4, ... — classic qcheck/hedgehog order (most
   aggressive first). *)
let rec int_tree ~lo x =
  let rec halves d () =
    if d <= 0 then Seq.Nil
    else Seq.Cons (int_tree ~lo (x - d), halves (d / 2))
  in
  Tree (x, halves (x - lo))

let int_range lo hi rng =
  if lo > hi then invalid_arg "Gen.int_range: lo > hi";
  int_tree ~lo (SM.int_in_range rng ~lo ~hi)

let int_bound n = int_range 0 n

let bool rng =
  if SM.bool rng then Tree (true, Seq.return (Tree (false, Seq.empty)))
  else Tree (false, Seq.empty)

let oneof gens rng =
  match gens with
  | [] -> invalid_arg "Gen.oneof: empty list"
  | _ ->
      let i = SM.int rng (List.length gens) in
      List.nth gens i (SM.split rng)

let oneofl xs rng =
  match xs with
  | [] -> invalid_arg "Gen.oneofl: empty list"
  | _ ->
      let arr = Array.of_list xs in
      (* Index shrinks toward 0, so earlier constants are "smaller". *)
      map_tree (Array.get arr) (int_tree ~lo:0 (SM.int rng (Array.length arr)))

let frequency weighted rng =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Gen.frequency: weights must be positive";
  let x = SM.int rng total in
  let rec pick acc = function
    | [] -> invalid_arg "Gen.frequency: empty list"
    | (w, g) :: rest -> if x < acc + w then g else pick (acc + w) rest
  in
  pick 0 weighted (SM.split rng)

(* ------------------------------------------------------------------ *)
(* Lists.                                                              *)

(* All ways to remove an aligned block of [k] consecutive elements. *)
let block_removals k ts =
  let n = List.length ts in
  let rec go start () =
    if start + k > n then Seq.Nil
    else
      Seq.Cons
        ( List.filteri (fun i _ -> i < start || i >= start + k) ts,
          go (start + k) )
  in
  go 0

(* Shrink a list of element trees: drop blocks (largest first: the whole
   list, then halves, quarters, ..., single elements), then shrink
   elements pointwise, left to right. *)
let rec list_tree (ts : 'a tree list) : 'a list tree =
  let n = List.length ts in
  let removals () =
    let rec blocks k () =
      if k <= 0 then Seq.Nil
      else
        Seq.Cons
          (Seq.map list_tree (block_removals k ts), blocks (if k = 1 then 0 else k / 2))
    in
    Seq.concat (blocks n) ()
  in
  let pointwise () =
    let rec go prefix = function
      | [] -> Seq.empty
      | t :: rest ->
          let here =
            Seq.map
              (fun t' -> list_tree (List.rev_append prefix (t' :: rest)))
              (children t)
          in
          Seq.append here (fun () -> go (t :: prefix) rest ())
    in
    go [] ts ()
  in
  Tree (List.map root ts, fun () -> Seq.append removals pointwise ())

let list_of_size size_g elem_g rng =
  let n = root (size_g (SM.split rng)) in
  let erng = SM.split rng in
  let ts = ref [] in
  for _ = 1 to n do
    ts := elem_g (SM.split erng) :: !ts
  done;
  list_tree (List.rev !ts)

let list ?(max_len = 10) elem_g = list_of_size (int_bound max_len) elem_g

let tuple_list gens rng =
  (* Fixed shape: generate one tree per position, shrink pointwise only. *)
  let ts = List.map (fun g -> g (SM.split rng)) gens in
  let rec fixed ts =
    let pointwise () =
      let rec go prefix = function
        | [] -> Seq.empty
        | t :: rest ->
            let here =
              Seq.map
                (fun t' -> fixed (List.rev_append prefix (t' :: rest)))
                (children t)
            in
            Seq.append here (fun () -> go (t :: prefix) rest ())
      in
      go [] ts ()
    in
    Tree (List.map root ts, pointwise)
  in
  fixed ts

let sized ?(limit = 30) f = bind (int_bound limit) f

let rec filter_tree pred (Tree (x, cs)) =
  Tree
    ( x,
      Seq.filter_map
        (fun t -> if pred (root t) then Some (filter_tree pred t) else None)
        cs )

let such_that ?(max_tries = 100) pred g rng =
  let rec attempt tries =
    if tries = 0 then raise Discard
    else
      let t = g (SM.split rng) in
      if pred (root t) then filter_tree pred t else attempt (tries - 1)
  in
  attempt max_tries

let no_shrink g rng = Tree (root (g rng), Seq.empty)
