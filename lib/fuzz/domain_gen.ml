(* BBC-domain generators; see domain_gen.mli for the distributions. *)

module I = Bbc.Instance
module C = Bbc.Config
module GI = Bbc.Gen_instance
module SM = Bbc_prng.Splitmix
open Gen

(* ------------------------------------------------------------------ *)
(* Instances.                                                          *)

let seed_gen = int_bound 0xFFFF

let matrix n cell =
  let cells = List.init (n * n) (fun _ -> cell) in
  let+ flat = tuple_list cells in
  let arr = Array.of_list flat in
  Array.init n (fun i -> Array.sub arr (i * n) n)

let uniform_instance ~min_n ~max_n ~max_k =
  let* n = int_range min_n max_n in
  let+ k = int_range 1 (min max_k (n - 1)) in
  I.uniform ~n ~k

(* Fully general tables: preferences may be 0 (including whole zero
   rows), costs may exceed budgets, lengths are short so the penalty
   regime is reachable at tiny n. *)
let general_instance ~min_n ~max_n =
  let* n = int_range min_n max_n in
  let* weight = matrix n (int_bound 3) in
  let* cost = matrix n (int_range 0 2) in
  let* length = matrix n (int_range 1 3) in
  let+ budget =
    let+ bs = tuple_list (List.init n (fun _ -> int_bound 3)) in
    Array.of_list bs
  in
  I.general ~weight ~cost ~length ~budget ()

(* Non-uniform preferences over unit costs/lengths — the [of_weights]
   shape the paper's Section 3 hardness instances live in. *)
let weighted_instance ~min_n ~max_n ~max_k =
  let* n = int_range min_n max_n in
  let* k = int_range 1 (min max_k (n - 1)) in
  let+ weight = matrix n (int_bound 3) in
  I.of_weights ~k weight

(* Paper families realized small; infeasible corners (willows that do
   not fit, etc.) fall back to the uniform game on the same (n, k). *)
let family_instance ~min_n ~max_n ~max_k =
  let* fam =
    oneofl [ GI.Ring; GI.Tree; GI.Circulant; GI.Random_k; GI.Willows_family ]
  in
  let* n = int_range min_n max_n in
  let* k = int_range 1 (min max_k (n - 1)) in
  let+ seed = seed_gen in
  match GI.streaming_reference fam ~n ~k ~seed with
  | inst, _ -> inst
  | exception Invalid_argument _ -> I.uniform ~n ~k

let instance ?(min_n = 2) ?(max_n = 10) ?(max_k = 3) () =
  if min_n < 2 then invalid_arg "Domain_gen.instance: min_n < 2";
  frequency
    [
      (3, uniform_instance ~min_n ~max_n ~max_k);
      (3, general_instance ~min_n ~max_n);
      (2, weighted_instance ~min_n ~max_n ~max_k);
      (2, family_instance ~min_n ~max_n ~max_k);
    ]

(* ------------------------------------------------------------------ *)
(* Feasible strategies.                                                *)

(* Normalize a raw pick list into a feasible strategy for [u]: map each
   pick into [0, n-1] \ {u}, drop duplicates, then keep greedily while
   the running spend stays within budget.  Removing picks (the list
   shrink) or lowering one (the pointwise shrink) re-normalizes to
   another feasible strategy, so shrinking never leaves the invariant. *)
let normalize inst u picks =
  let b = I.budget inst u in
  let seen = Hashtbl.create 8 in
  let spend = ref 0 in
  let keep =
    List.filter_map
      (fun p ->
        let v = if p >= u then p + 1 else p in
        if Hashtbl.mem seen v then None
        else begin
          Hashtbl.add seen v ();
          let c = I.cost inst u v in
          if !spend + c <= b then begin
            spend := !spend + c;
            Some v
          end
          else None
        end)
      picks
  in
  List.sort_uniq compare keep

let strategy_for inst u =
  let n = I.n inst in
  let max_picks = min 8 (n - 1) in
  let+ picks = list ~max_len:max_picks (int_bound (n - 2)) in
  normalize inst u picks

let config_for inst =
  let n = I.n inst in
  let gens = List.init n (fun u -> strategy_for inst u) in
  let+ rows = tuple_list gens in
  C.of_lists n (Array.of_list rows)

let instance_config ?min_n ?max_n ?max_k () =
  let* inst = instance ?min_n ?max_n ?max_k () in
  let+ cfg = config_for inst in
  (inst, cfg)

let node_of inst = int_bound (I.n inst - 1)

let moves ?(max_moves = 8) inst =
  let move =
    let* u = node_of inst in
    let+ s = strategy_for inst u in
    (u, s)
  in
  list ~max_len:max_moves move

(* ------------------------------------------------------------------ *)
(* Graphs.                                                             *)

let graph ?(min_n = 2) ?(max_n = 12) ?(max_k = 3) () =
  let* n = int_range min_n max_n in
  oneof
    [
      (let* k = int_range 1 (min max_k (n - 1)) in
       let+ seed = seed_gen in
       Bbc_graph.Generators.random_k_out (SM.create seed) ~n ~k);
      (let* pct = int_bound 40 in
       let+ seed = seed_gen in
       Bbc_graph.Generators.gnp (SM.create seed) ~n ~p:(float_of_int pct /. 100.));
    ]

(* ------------------------------------------------------------------ *)
(* Server request programs.                                            *)

type op =
  | Cost_all
  | Cost_node of int
  | Best_response_of of int
  | Stable
  | Apply_move of int * int list
  | Step_dynamics of int

let op_to_string = function
  | Cost_all -> "cost"
  | Cost_node u -> Printf.sprintf "cost(%d)" u
  | Best_response_of u -> Printf.sprintf "best_response(%d)" u
  | Stable -> "stable"
  | Apply_move (u, s) ->
      Printf.sprintf "apply_move(%d,[%s])" u
        (String.concat ";" (List.map string_of_int s))
  | Step_dynamics r -> Printf.sprintf "step_dynamics(%d)" r

let ops_to_string ops = String.concat " " (List.map op_to_string ops)

let op_gen inst =
  frequency
    [
      (1, return Cost_all);
      (2, map (fun u -> Cost_node u) (node_of inst));
      (3, map (fun u -> Best_response_of u) (node_of inst));
      (2, return Stable);
      ( 3,
        let* u = node_of inst in
        let+ s = strategy_for inst u in
        Apply_move (u, s) );
      (2, map (fun r -> Step_dynamics r) (int_range 1 4));
    ]

let program ?(max_ops = 10) inst = list ~max_len:max_ops (op_gen inst)
