(* Generate / test / shrink loop; see runner.mli. *)

module SM = Bbc_prng.Splitmix

type stats = { cases : int; discards : int; shrink_steps : int }

type 'a failure = {
  case : int;
  original : 'a;
  original_error : string;
  shrunk : 'a;
  shrunk_error : string;
  steps_used : int;
}

let c_cases = Bbc_obs.counter "fuzz.cases"
let c_discards = Bbc_obs.counter "fuzz.discards"
let c_shrink_steps = Bbc_obs.counter "fuzz.shrink_steps"

(* Evaluate the property, folding exceptions into [Error].  [Discard]
   propagates: a value that stops satisfying a precondition mid-property
   counts as a discard, never as a failure. *)
let eval prop x =
  match prop x with
  | r -> r
  | exception Gen.Discard -> raise Gen.Discard
  | exception e -> Error (Printexc.to_string e)

(* Greedy descent: take the first child that still fails and restart
   from it.  Every property evaluation (including on children that turn
   out to pass or discard) consumes one step of the budget. *)
let shrink ~max_steps prop tree err0 =
  let steps = ref 0 in
  let rec go tree err =
    let rec scan cs =
      if !steps >= max_steps then (Gen.root tree, err)
      else
        match cs () with
        | Seq.Nil -> (Gen.root tree, err)
        | Seq.Cons (c, rest) -> (
            incr steps;
            Bbc_obs.incr c_shrink_steps;
            match eval prop (Gen.root c) with
            | Error e -> go c e
            | Ok () -> scan rest
            | exception Gen.Discard -> scan rest)
    in
    scan (Gen.children tree)
  in
  let shrunk, shrunk_error = go tree err0 in
  (shrunk, shrunk_error, !steps)

let run ?(count = 100) ?(max_shrink_steps = 1000) ?max_discards ~seed gen prop =
  let max_discards =
    match max_discards with Some d -> d | None -> 10 * count
  in
  let rng = SM.create seed in
  let cases = ref 0 and discards = ref 0 in
  let rec loop () =
    if !cases >= count then
      Ok (None, { cases = !cases; discards = !discards; shrink_steps = 0 })
    else if !discards > max_discards then
      Error
        (Printf.sprintf "gave up: %d discards over %d cases (seed %d)"
           !discards !cases seed)
    else
      (* One split per case: case [i] depends only on (seed, i), not on
         how much state earlier cases consumed. *)
      let case_rng = SM.split rng in
      match
        let tree = gen case_rng in
        (tree, eval prop (Gen.root tree))
      with
      | exception Gen.Discard ->
          incr discards;
          Bbc_obs.incr c_discards;
          loop ()
      | _, Ok () ->
          incr cases;
          Bbc_obs.incr c_cases;
          loop ()
      | tree, Error err ->
          let case = !cases in
          incr cases;
          Bbc_obs.incr c_cases;
          let shrunk, shrunk_error, steps_used =
            shrink ~max_steps:max_shrink_steps prop tree err
          in
          Ok
            ( Some
                {
                  case;
                  original = Gen.root tree;
                  original_error = err;
                  shrunk;
                  shrunk_error;
                  steps_used;
                },
              {
                cases = !cases;
                discards = !discards;
                shrink_steps = steps_used;
              } )
  in
  loop ()
