(* Differential suites; see diff.mli for the engine-pair matrix. *)

module I = Bbc.Instance
module C = Bbc.Config
module E = Bbc.Eval
module BR = Bbc.Best_response
module Json = Bbc.Json
module Csr = Bbc_graph.Csr
module P = Bbc_graph.Paths
module Apsp = Bbc_graph.Apsp

type options = { seed : int; count : int; max_shrink_steps : int }

type failure_report = {
  prop : string;
  case : int;
  steps_used : int;
  message : string;
  instance : I.t;
  config : C.t option;
  detail : string;
}

type prop_report = {
  suite : string;
  name : string;
  prop_seed : int;
  stats : Runner.stats;
  failure : failure_report option;
}

(* A property packed with its generator and a renderer that extracts
   the (instance, config, extra-detail) view of a counterexample. *)
type packed =
  | Packed : {
      name : string;
      gen : 'a Gen.t;
      prop : 'a -> (unit, string) result;
      render : 'a -> I.t * C.t option * string;
    }
      -> packed

let ok = Ok ()
let failf fmt = Printf.ksprintf (fun s -> Error s) fmt

let rec check_all f = function
  | [] -> ok
  | x :: rest -> ( match f x with Ok () -> check_all f rest | e -> e)

let nodes inst = List.init (I.n inst) Fun.id

let array_mismatch a b =
  if Array.length a <> Array.length b then Some (-1)
  else
    let rec go i =
      if i >= Array.length a then None
      else if a.(i) <> b.(i) then Some i
      else go (i + 1)
    in
    go 0

let moves_to_string ms =
  String.concat " "
    (List.map
       (fun (u, s) ->
         Printf.sprintf "%d<-[%s]" u (String.concat ";" (List.map string_of_int s)))
       ms)

(* ---------------------------------------------------------------- *)
(* Suite csr: list-graph reference vs flat CSR kernels.              *)

let ic_csr = Domain_gen.instance_config ~max_n:10 ()

let prop_paths_vs_csr (inst, cfg) =
  let g = C.to_graph inst cfg in
  let csr = C.to_csr inst cfg in
  check_all
    (fun src ->
      let ref_row = P.shortest g src in
      let csr_row = P.shortest_csr csr src in
      match array_mismatch ref_row csr_row with
      | None -> ok
      | Some v ->
          failf "src %d: Paths.shortest and CSR sweep disagree at node %d" src v)
    (nodes inst)

let prop_apsp_vs_floyd (inst, cfg) =
  let g = C.to_graph inst cfg in
  let fast = Apsp.compute g in
  let oracle = Apsp.floyd_warshall g in
  check_all
    (fun u ->
      check_all
        (fun v ->
          if Apsp.distance fast u v = Apsp.distance oracle u v then ok
          else failf "apsp (%d, %d): compute <> floyd_warshall" u v)
        (nodes inst))
    (nodes inst)

let prop_ban_vs_skip (inst, cfg) =
  let n = I.n inst in
  let full = C.to_csr inst cfg in
  let scratch = Csr.create_scratch () in
  let dist = Array.make n Csr.unreachable in
  check_all
    (fun u ->
      let skipped = C.to_csr ~skip:u inst cfg in
      check_all
        (fun src ->
          Csr.sssp ~ban:u full scratch ~src ~dist;
          let banned = Array.copy dist in
          Csr.reset scratch dist;
          let reference = P.shortest_csr skipped src in
          match array_mismatch banned reference with
          | None -> ok
          | Some v ->
              failf "ban:%d src %d: ~ban sweep and ~skip snapshot disagree at %d"
                u src v)
        (nodes inst))
    (nodes inst)

let prop_int32_rows (inst, cfg) =
  let n = I.n inst in
  let csr = C.to_csr inst cfg in
  let scratch = Csr.create_scratch () in
  let dist32 = Csr.create_dist32 n in
  check_all
    (fun src ->
      let reference = P.shortest_csr csr src in
      Csr.sssp32 csr scratch ~src ~dist:dist32 ;
      let r =
        check_all
          (fun v ->
            let d32 = Bigarray.Array1.get dist32 v in
            let widened =
              if Int32.equal d32 Csr.unreachable32 then Csr.unreachable
              else Int32.to_int d32
            in
            if widened = reference.(v) then ok
            else failf "src %d: int32 row disagrees with int row at %d" src v)
          (nodes inst)
      in
      Csr.reset32 scratch dist32;
      r)
    (nodes inst)

let csr_suite =
  let render (inst, cfg) = (inst, Some cfg, "") in
  [
    Packed { name = "paths_vs_csr"; gen = ic_csr; prop = prop_paths_vs_csr; render };
    Packed { name = "apsp_vs_floyd"; gen = ic_csr; prop = prop_apsp_vs_floyd; render };
    Packed { name = "ban_vs_skip"; gen = ic_csr; prop = prop_ban_vs_skip; render };
    Packed { name = "int32_rows"; gen = ic_csr; prop = prop_int32_rows; render };
  ]

(* ---------------------------------------------------------------- *)
(* Suite msbfs: bit-parallel multi-source BFS vs per-source sweeps.
   Instances up to n = 70 cross the batch_width = 62 window boundary,
   so ragged tails and multi-window batches are generated, not just
   hand-picked; general (weighted) instances exercise the scalar
   dispatch leg of [sssp_batch] through the same properties.          *)

let ic_msbfs = Domain_gen.instance_config ~max_n:70 ()

let scalar_reference csr srcs =
  Array.map (fun src -> P.shortest_csr csr src) srcs

let check_rows ~what srcs reference rows =
  let r = ref ok in
  Array.iteri
    (fun i src ->
      if !r = ok then
        match array_mismatch reference.(i) rows.(i) with
        | None -> ()
        | Some v -> r := failf "%s: src %d (row %d) disagrees at node %d" what src i v)
    srcs;
  !r

let prop_batch_vs_scalar (inst, cfg) =
  let n = I.n inst in
  let csr = C.to_csr inst cfg in
  let srcs = Array.init n Fun.id in
  let rows = Array.init n (fun _ -> Array.make n Csr.unreachable) in
  Csr.sssp_batch csr (Csr.create_scratch ()) ~srcs ~rows;
  check_rows ~what:"sssp_batch" srcs (scalar_reference csr srcs) rows

let prop_batch_ban_vs_scalar (inst, cfg) =
  let n = I.n inst in
  let csr = C.to_csr inst cfg in
  let srcs = Array.init n Fun.id in
  let scratch = Csr.create_scratch () in
  let dist = Array.make n Csr.unreachable in
  check_all
    (fun ban ->
      let rows = Array.init n (fun _ -> Array.make n Csr.unreachable) in
      Csr.sssp_batch ~ban csr (Csr.create_scratch ()) ~srcs ~rows;
      let reference =
        Array.map
          (fun src ->
            Csr.sssp ~ban csr scratch ~src ~dist;
            let r = Array.copy dist in
            Csr.reset scratch dist;
            r)
          srcs
      in
      check_rows ~what:(Printf.sprintf "sssp_batch ~ban:%d" ban) srcs reference rows)
    (List.sort_uniq compare [ 0; n / 2; n - 1 ])

let prop_batch32_vs_batch (inst, cfg) =
  let n = I.n inst in
  let csr = C.to_csr inst cfg in
  let srcs = Array.init n Fun.id in
  let rows32 = Array.init n (fun _ -> Csr.create_dist32 n) in
  Csr.sssp_batch32 csr (Csr.create_scratch ()) ~srcs ~rows:rows32;
  let reference = scalar_reference csr srcs in
  check_all
    (fun src ->
      check_all
        (fun v ->
          let d32 = Bigarray.Array1.get rows32.(src) v in
          let widened =
            if Int32.equal d32 Csr.unreachable32 then Csr.unreachable
            else Int32.to_int d32
          in
          if widened = reference.(src).(v) then ok
          else failf "sssp_batch32: src %d disagrees at node %d" src v)
        (nodes inst))
    (nodes inst)

let prop_batch_source_subset (inst, cfg) =
  (* Non-contiguous, shuffled, duplicated sources: every row must still
     equal its own independent sweep. *)
  let n = I.n inst in
  let csr = C.to_csr inst cfg in
  let k = n + (n / 2) in
  let srcs = Array.init k (fun i -> ((i * 13) + 5) mod n) in
  let rows = Array.init k (fun _ -> Array.make n Csr.unreachable) in
  Csr.sssp_batch csr (Csr.create_scratch ()) ~srcs ~rows;
  check_rows ~what:"sssp_batch subset" srcs (scalar_reference csr srcs) rows

let prop_batch_reuse_reset (inst, cfg) =
  (* One scratch across a plain batch and a banned batch, rows restored
     with [reset_rows] in between: the second batch must be exact and
     the restore must leave every entry clean (the self-cleaning bitmap
     and dirty-list-handoff invariants). *)
  let n = I.n inst in
  let csr = C.to_csr inst cfg in
  let scratch = Csr.create_scratch () in
  let srcs = Array.init n Fun.id in
  let rows = Array.init n (fun _ -> Array.make n Csr.unreachable) in
  Csr.sssp_batch csr scratch ~srcs ~rows;
  Csr.reset_rows scratch ~rows;
  let dirty = ref ok in
  Array.iteri
    (fun i row ->
      if !dirty = ok then
        Array.iteri
          (fun v d ->
            if !dirty = ok && d <> Csr.unreachable then
              dirty := failf "reset_rows left row %d entry %d dirty" i v)
          row)
    rows;
  match !dirty with
  | Error _ as e -> e
  | Ok () ->
      let ban = n / 2 in
      Csr.sssp_batch ~ban csr scratch ~srcs ~rows;
      let scratch2 = Csr.create_scratch () in
      let dist = Array.make n Csr.unreachable in
      let reference =
        Array.map
          (fun src ->
            Csr.sssp ~ban csr scratch2 ~src ~dist;
            let r = Array.copy dist in
            Csr.reset scratch2 dist;
            r)
          srcs
      in
      check_rows ~what:"reused-scratch banned batch" srcs reference rows

let msbfs_suite =
  let render (inst, cfg) = (inst, Some cfg, "") in
  [
    Packed
      { name = "batch_vs_scalar"; gen = ic_msbfs; prop = prop_batch_vs_scalar; render };
    Packed
      {
        name = "batch_ban_vs_scalar";
        gen = ic_msbfs;
        prop = prop_batch_ban_vs_scalar;
        render;
      };
    Packed
      { name = "batch32_vs_batch"; gen = ic_msbfs; prop = prop_batch32_vs_batch; render };
    Packed
      {
        name = "batch_source_subset";
        gen = ic_msbfs;
        prop = prop_batch_source_subset;
        render;
      };
    Packed
      {
        name = "batch_reuse_reset";
        gen = ic_msbfs;
        prop = prop_batch_reuse_reset;
        render;
      };
  ]

(* ---------------------------------------------------------------- *)
(* Suite incr: scratch Eval vs incremental contexts under deltas.    *)

let icm =
  let open Gen in
  let* inst, cfg = Domain_gen.instance_config ~max_n:8 () in
  let+ ms = Domain_gen.moves inst in
  (inst, cfg, ms)

let costs_agree ~what inst cfg ctx =
  let incr_costs = Bbc.Incr.all_costs ctx in
  let scratch = E.all_costs ~jobs:1 inst cfg in
  match array_mismatch incr_costs scratch with
  | None -> ok
  | Some v -> failf "%s: Incr and Eval costs disagree at node %d" what v

let prop_incr_vs_scratch (inst, cfg0, ms) =
  let ctx = Bbc.Incr.create inst cfg0 in
  match costs_agree ~what:"initial" inst cfg0 ctx with
  | Error _ as e -> e
  | Ok () ->
      let cfg = ref cfg0 in
      let step = ref 0 in
      check_all
        (fun (u, s) ->
          Bbc.Incr.apply_move ctx u s;
          cfg := C.with_strategy !cfg u s;
          incr step;
          costs_agree ~what:(Printf.sprintf "after move %d" !step) inst !cfg ctx)
        ms

let prop_masked_roundtrip (inst, cfg0, ms) =
  let ctx = Bbc.Incr.create inst cfg0 in
  let cfg = ref cfg0 in
  List.iter
    (fun (u, s) ->
      Bbc.Incr.apply_move ctx u s;
      cfg := C.with_strategy !cfg u s)
    ms;
  check_all
    (fun u ->
      let before = Bbc.Incr.all_costs ctx in
      let inside =
        Bbc.Incr.with_masked ctx u (fun () ->
            let skipped = C.to_csr ~skip:u inst !cfg in
            check_all
              (fun src ->
                let masked = Bbc.Incr.masked_row ctx src in
                let reference = P.shortest_csr skipped src in
                match array_mismatch masked reference with
                | None -> ok
                | Some v ->
                    failf "mask %d src %d: masked_row and ~skip disagree at %d"
                      u src v)
              (nodes inst))
      in
      match inside with
      | Error _ as e -> e
      | Ok () -> (
          let after = Bbc.Incr.all_costs ctx in
          match array_mismatch before after with
          | None -> ok
          | Some v -> failf "mask %d: undo changed node %d's cost" u v))
    (nodes inst)

let deviation_to_string = function
  | None -> "stable"
  | Some (d : Bbc.Stability.deviation) ->
      Printf.sprintf "node %d: %d -> %d via [%s]" d.node d.current_cost
        d.better.BR.cost
        (String.concat ";" (List.map string_of_int d.better.BR.strategy))

let prop_stability_engines (inst, cfg0, ms) =
  let cfg = List.fold_left (fun c (u, s) -> C.with_strategy c u s) cfg0 ms in
  let inc = Bbc.Stability.find_deviation ~incremental:true inst cfg in
  let scr = Bbc.Stability.find_deviation ~incremental:false ~jobs:1 inst cfg in
  let same =
    match (inc, scr) with
    | None, None -> true
    | Some a, Some b ->
        a.Bbc.Stability.node = b.Bbc.Stability.node
        && a.current_cost = b.current_cost
        && a.better.BR.cost = b.better.BR.cost
        && a.better.BR.strategy = b.better.BR.strategy
    | _ -> false
  in
  if same then ok
  else
    failf "find_deviation: incremental says %S, from-scratch says %S"
      (deviation_to_string inc) (deviation_to_string scr)

let incr_suite =
  let render (inst, cfg, ms) = (inst, Some cfg, moves_to_string ms) in
  [
    Packed { name = "incr_vs_scratch"; gen = icm; prop = prop_incr_vs_scratch; render };
    Packed
      { name = "masked_roundtrip"; gen = icm; prop = prop_masked_roundtrip; render };
    Packed
      { name = "stability_engines"; gen = icm; prop = prop_stability_engines; render };
  ]

(* ---------------------------------------------------------------- *)
(* Suite br: exact best response vs exhaustive enumeration.          *)

let ic_tiny = Domain_gen.instance_config ~max_n:6 ()

let prop_br_vs_exhaustive (inst, cfg) =
  check_all
    (fun u ->
      let r = BR.exact inst cfg u in
      let brute =
        List.fold_left
          (fun acc s ->
            min acc (E.node_cost inst (C.with_strategy cfg u s) u))
          max_int
          (Bbc.Exhaustive.all_strategies inst u)
      in
      if r.BR.cost <> brute then
        failf "node %d: exact says %d, exhaustive says %d" u r.BR.cost brute
      else
        let realized = E.node_cost inst (C.with_strategy cfg u r.BR.strategy) u in
        if realized <> r.BR.cost then
          failf "node %d: reported strategy realizes %d, not %d" u realized
            r.BR.cost
        else ok)
    (nodes inst)

let prop_br_variants (inst, cfg) =
  let csr = C.to_csr inst cfg in
  let ctx = Bbc.Incr.create inst cfg in
  check_all
    (fun u ->
      let plain = BR.exact inst cfg u in
      let with_csr = BR.exact ~csr inst cfg u in
      let with_ctx = BR.exact ~ctx inst cfg u in
      if
        plain.BR.cost = with_csr.BR.cost
        && plain.BR.strategy = with_csr.BR.strategy
        && plain.BR.cost = with_ctx.BR.cost
        && plain.BR.strategy = with_ctx.BR.strategy
      then ok
      else
        failf "node %d: exact/?csr/?ctx disagree (%d, %d, %d)" u plain.BR.cost
          with_csr.BR.cost with_ctx.BR.cost)
    (nodes inst)

let prop_improving_iff (inst, cfg) =
  check_all
    (fun u ->
      let current = E.node_cost inst cfg u in
      let brute_best =
        List.fold_left
          (fun acc s ->
            min acc (E.node_cost inst (C.with_strategy cfg u s) u))
          max_int
          (Bbc.Exhaustive.all_strategies inst u)
      in
      match BR.improving inst cfg u with
      | Some r ->
          if r.BR.cost >= current then
            failf "node %d: 'improving' result %d not below current %d" u
              r.BR.cost current
          else if brute_best >= current then
            failf "node %d: improving found but exhaustive optimum %d >= %d" u
              brute_best current
          else ok
      | None ->
          if brute_best < current then
            failf "node %d: improvement %d < %d exists but improving = None" u
              brute_best current
          else ok)
    (nodes inst)

let br_suite =
  let render (inst, cfg) = (inst, Some cfg, "") in
  [
    Packed
      { name = "br_vs_exhaustive"; gen = ic_tiny; prop = prop_br_vs_exhaustive; render };
    Packed { name = "br_variants"; gen = ic_tiny; prop = prop_br_variants; render };
    Packed
      { name = "improving_iff"; gen = ic_tiny; prop = prop_improving_iff; render };
  ]

(* ---------------------------------------------------------------- *)
(* Suite server: in-process engine vs direct scratch-engine calls.   *)

let icp =
  let open Gen in
  let* inst, cfg = Domain_gen.instance_config ~max_n:7 () in
  let+ ops = Domain_gen.program inst in
  (inst, cfg, ops)

(* The mirror replicates a session's walk counters with from-scratch
   engines only; the server side runs its incremental context, so every
   comparison crosses the engine boundary too. *)
type mirror = {
  inst : I.t;
  mutable cfg : C.t;
  mutable walk_index : int;
  mutable walk_quiet : int;
  mutable walk_deviations : int;
}

let mirror_node_cost m u = E.node_cost m.inst m.cfg u

let mirror_walk_step m =
  let n = I.n m.inst in
  let node = m.walk_index mod n in
  let current = mirror_node_cost m node in
  let best = BR.exact m.inst m.cfg node in
  let moved = best.BR.cost < current in
  if moved then begin
    m.cfg <- C.with_strategy m.cfg node best.BR.strategy;
    m.walk_deviations <- m.walk_deviations + 1;
    m.walk_quiet <- 0
  end
  else m.walk_quiet <- m.walk_quiet + 1;
  m.walk_index <- m.walk_index + 1

let mirror_walk_converged m =
  let n = I.n m.inst in
  m.walk_index mod n = 0 && m.walk_quiet >= n

(* Expected "ok" payload of one operation, built with the same field
   order as Handlers so the comparison can be on rendered JSON. *)
let mirror_expected m (op : Domain_gen.op) =
  match op with
  | Domain_gen.Cost_all ->
      let costs = E.all_costs ~jobs:1 m.inst m.cfg in
      let social = Array.fold_left ( + ) 0 costs in
      Bbc.Codec.costs_to_json ~objective:Bbc.Objective.Sum ~social costs
  | Domain_gen.Cost_node u ->
      Json.Obj [ ("node", Json.Int u); ("cost", Json.Int (mirror_node_cost m u)) ]
  | Domain_gen.Best_response_of u ->
      let r = BR.exact m.inst m.cfg u in
      let current = mirror_node_cost m u in
      Json.Obj
        [
          ("node", Json.Int u);
          ("strategy", Json.List (List.map (fun v -> Json.Int v) r.BR.strategy));
          ("cost", Json.Int r.BR.cost);
          ("current", Json.Int current);
          ("improving", Json.Bool (r.BR.cost < current));
        ]
  | Domain_gen.Stable -> (
      match
        Bbc.Stability.find_deviation ~incremental:false ~jobs:1 m.inst m.cfg
      with
      | None ->
          Json.Obj [ ("stable", Json.Bool true); ("feasible", Json.Bool true) ]
      | Some d ->
          Json.Obj
            [
              ("stable", Json.Bool false);
              ("feasible", Json.Bool true);
              ( "deviation",
                Json.Obj
                  [
                    ("node", Json.Int d.Bbc.Stability.node);
                    ("current", Json.Int d.current_cost);
                    ("cost", Json.Int d.better.BR.cost);
                    ( "strategy",
                      Json.List
                        (List.map (fun v -> Json.Int v) d.better.BR.strategy) );
                  ] );
            ])
  | Domain_gen.Apply_move (u, targets) ->
      m.cfg <- C.with_strategy m.cfg u targets;
      m.walk_quiet <- 0;
      Json.Obj
        [ ("applied", Json.Bool true); ("cost", Json.Int (mirror_node_cost m u)) ]
  | Domain_gen.Step_dynamics steps ->
      let executed = ref 0 in
      while !executed < steps && not (mirror_walk_converged m) do
        mirror_walk_step m;
        incr executed
      done;
      let n = I.n m.inst in
      Json.Obj
        [
          ("steps", Json.Int !executed);
          ("index", Json.Int m.walk_index);
          ("round", Json.Int (m.walk_index / n));
          ("deviations", Json.Int m.walk_deviations);
          ("converged", Json.Bool (mirror_walk_converged m));
        ]

let op_params session (op : Domain_gen.op) =
  let s = ("session", Json.Str session) in
  match op with
  | Domain_gen.Cost_all -> ("cost", [ s ])
  | Domain_gen.Cost_node u -> ("cost", [ s; ("node", Json.Int u) ])
  | Domain_gen.Best_response_of u ->
      ("best_response", [ s; ("node", Json.Int u) ])
  | Domain_gen.Stable -> ("stable", [ s ])
  | Domain_gen.Apply_move (u, targets) ->
      ( "apply_move",
        [
          s;
          ("node", Json.Int u);
          ("targets", Json.List (List.map (fun v -> Json.Int v) targets));
        ] )
  | Domain_gen.Step_dynamics steps ->
      ("step_dynamics", [ s; ("steps", Json.Int steps) ])

(* One request through the engine's full submit/run_batch path (jobs=1,
   so batches execute deterministically); returns the "ok" payload. *)
let roundtrip engine ~id meth params =
  let line =
    Json.to_string
      (Json.Obj
         [ ("id", Json.Int id); ("method", Json.Str meth); ("params", Json.Obj params) ])
  in
  match Bbc_server.Engine.submit engine ~client:0 line with
  | `Reply r -> failf "request %d rejected at admission: %s" id r
  | `Queued -> (
      match Bbc_server.Engine.run_batch engine with
      | [ (_, response) ] -> (
          match Json.of_string response with
          | Error e -> failf "request %d: unparsable response (%s)" id e
          | Ok payload -> (
              match Json.member "ok" payload with
              | Some v -> Ok v
              | None -> failf "request %d: server error %s" id response))
      | other -> failf "request %d: expected 1 response, got %d" id (List.length other))

let prop_server_vs_direct (inst, cfg, ops) =
  let config =
    { (Bbc_server.Engine.default_config ()) with jobs = Some 1 }
  in
  let engine = Bbc_server.Engine.create config in
  let load =
    let params =
      [
        ("instance", Bbc.Codec.instance_to_json inst);
        ("config", Bbc.Codec.config_to_json cfg);
      ]
    in
    match roundtrip engine ~id:0 "load_instance" params with
    | Error _ as e -> e
    | Ok summary -> (
        match Json.member "session" summary with
        | Some (Json.Str id) -> Ok id
        | _ -> failf "load_instance: no session id in %s" (Json.to_string summary))
  in
  match load with
  | Error e -> Error e
  | Ok session ->
      let m =
        { inst; cfg; walk_index = 0; walk_quiet = 0; walk_deviations = 0 }
      in
      let id = ref 0 in
      check_all
        (fun op ->
          incr id;
          let meth, params = op_params session op in
          match roundtrip engine ~id:!id meth params with
          | Error _ as e -> e
          | Ok got ->
              let expected = mirror_expected m op in
              let got_s = Json.to_string got in
              let expected_s = Json.to_string expected in
              if String.equal got_s expected_s then ok
              else
                failf "op %d (%s): server %s, direct %s" !id
                  (Domain_gen.ops_to_string [ op ])
                  got_s expected_s)
        ops

let server_suite =
  let render (inst, cfg, ops) = (inst, Some cfg, Domain_gen.ops_to_string ops) in
  [
    Packed
      { name = "server_vs_direct"; gen = icp; prop = prop_server_vs_direct; render };
  ]

(* ---------------------------------------------------------------- *)
(* Suite selfcheck: a planted off-by-one the harness must catch.     *)

(* Deliberately wrong oracle: social cost summed from node 1, skipping
   node 0 — every instance where node 0 has positive cost refutes it.
   check_fuzz.sh asserts this suite FAILS and that the counterexample
   shrinks to n <= 8. *)
let broken_social_cost inst cfg =
  let total = ref 0 in
  for u = 1 to I.n inst - 1 do
    total := !total + E.node_cost inst cfg u
  done;
  !total

let prop_planted_bug (inst, cfg) =
  let reference = E.social_cost ~jobs:1 inst cfg in
  let broken = broken_social_cost inst cfg in
  if reference = broken then ok
  else failf "social cost: reference %d, test oracle %d" reference broken

let selfcheck_suite =
  let render (inst, cfg) = (inst, Some cfg, "") in
  [
    Packed
      {
        name = "planted_social_cost";
        gen = Domain_gen.instance_config ~max_n:10 ();
        prop = prop_planted_bug;
        render;
      };
  ]

(* ---------------------------------------------------------------- *)
(* Suite campaign: spec/trial codecs round-trip, and a campaign unit
   replays the exact walk a direct Dynamics.run produces.             *)

module Trial = Bbc.Trial
module Spec = Bbc_campaign.Spec

(* Random-generator trials only (no catalog/family constructions):
   every draw is valid by construction, so codec and trace properties
   never trip over a deliberate validation error. *)
let trial_gen : Trial.t Gen.t =
  let open Gen in
  let* n = int_range 2 10 in
  let* k = int_range 1 (min 3 (n - 1)) in
  let* generator =
    oneof
      [
        (let* zero_pct = int_range 0 90 in
         let+ max_weight = int_range 1 5 in
         Trial.Sparse { zero_pct; max_weight });
        (let+ max_budget = int_range 0 4 in
         Trial.Budgets { max_budget });
        (let+ max_cost = int_range 1 5 in
         Trial.Costs { max_cost });
        (let+ span = int_range 1 5 in
         Trial.Metric { span });
        (let+ flips = int_range 0 5 in
         Trial.Perturbed { flips });
      ]
  in
  let* init = oneofl [ Trial.Empty; Trial.Random_start ] in
  let* scheduler = oneofl [ Trial.Round_robin; Trial.Random_order; Trial.Max_cost_first ] in
  let* policy =
    oneof
      [
        return Trial.Exact;
        return Trial.First_improvement;
        (let+ s = int_range 1 4 in
         Trial.Sampled s);
      ]
  in
  let* objective = oneofl [ Bbc.Objective.Sum; Bbc.Objective.Max ] in
  let* max_rounds = int_range 1 30 in
  let+ seed = int_bound 10_000 in
  {
    Trial.generator = generator;
    n;
    k;
    h = 2;
    l = 3;
    init;
    scheduler;
    policy;
    objective;
    max_rounds;
    seed;
  }

let spec_gen : Spec.t Gen.t =
  let open Gen in
  let point_gen =
    let* t = trial_gen in
    return { Spec.generator = t.Trial.generator; n = t.Trial.n; k = t.Trial.k; h = 2; l = 3 }
  in
  let* points = list_of_size (int_range 1 3) point_gen in
  let* seeds_per_point = int_range 1 3 in
  let* inits = oneofl [ [ Trial.Empty ]; [ Trial.Random_start ]; [ Trial.Empty; Trial.Random_start ] ] in
  let* schedulers =
    oneofl [ [ Trial.Round_robin ]; [ Trial.Max_cost_first ]; [ Trial.Round_robin; Trial.Random_order ] ]
  in
  let* policies = oneofl [ [ Trial.Exact ]; [ Trial.First_improvement; Trial.Sampled 2 ] ] in
  let* objectives = oneofl [ [ Bbc.Objective.Sum ]; [ Bbc.Objective.Sum; Bbc.Objective.Max ] ] in
  let* max_rounds = int_range 1 20 in
  let+ seed = int_bound 10_000 in
  { Spec.name = "fuzz"; seed; seeds_per_point; max_rounds; points; inits; schedulers; policies; objectives }

let prop_trial_roundtrip t =
  let rendered = Json.to_string (Trial.to_json t) in
  match Trial.of_json (Trial.to_json t) with
  | Error e -> failf "trial decode failed: %s" e
  | Ok t' ->
      if t' <> t then failf "trial decode changed the value (%s)" rendered
      else
        let re = Json.to_string (Trial.to_json t') in
        if re <> rendered then failf "trial rendering not canonical: %s vs %s" rendered re
        else ok

let prop_spec_roundtrip s =
  let rendered = Json.to_string (Spec.to_json s) in
  match Spec.of_json (Spec.to_json s) with
  | Error e -> failf "spec decode failed: %s" e
  | Ok s' ->
      if s' <> s then failf "spec decode changed the value (%s)" rendered
      else
        let re = Json.to_string (Spec.to_json s') in
        if re <> rendered then failf "spec rendering not canonical: %s vs %s" rendered re
        else
          (* The string path (parse + decode + validate) agrees too. *)
          (match Spec.of_string rendered with
          | Ok s'' when s'' = s -> ok
          | Ok _ -> failf "of_string changed the value"
          | Error e -> failf "of_string rejected a rendered spec: %s" e)

(* A 1-unit campaign executes Spec.unit 0 through Trial.run — its
   activation trace must be bit-identical to a direct Dynamics.run on
   the same materialized inputs. *)
let prop_unit_trace_vs_dynamics t =
  let spec =
    {
      Spec.name = "fuzz";
      seed = t.Trial.seed;
      seeds_per_point = 1;
      max_rounds = t.Trial.max_rounds;
      points =
        [ { Spec.generator = t.Trial.generator; n = t.Trial.n; k = t.Trial.k; h = 2; l = 3 } ];
      inits = [ t.Trial.init ];
      schedulers = [ t.Trial.scheduler ];
      policies = [ t.Trial.policy ];
      objectives = [ t.Trial.objective ];
    }
  in
  let u = Spec.unit spec 0 in
  let trace run_fn =
    let steps = ref [] in
    let on_step (s : Bbc.Dynamics.step) =
      steps := (s.index, s.round, s.node, s.moved, s.strategy, s.cost_after) :: !steps
    in
    let r = run_fn ~on_step in
    (r, List.rev !steps)
  in
  match Trial.build u with
  | Error e -> failf "unit build failed: %s" e
  | Ok (inst, cfg) ->
      let direct, direct_trace =
        trace (fun ~on_step ->
            Bbc.Dynamics.run ~objective:u.Trial.objective ~policy:(Trial.policy_of u)
              ~on_step ~scheduler:(Trial.scheduler_of u)
              ~max_rounds:u.Trial.max_rounds inst cfg)
      in
      let via_trial, trial_trace =
        trace (fun ~on_step ->
            match Trial.run ~on_step u with
            | Ok s -> s
            | Error e -> failwith ("trial run failed: " ^ e))
      in
      if trial_trace <> direct_trace then
        failf "traces differ after %d vs %d steps"
          (List.length trial_trace) (List.length direct_trace)
      else
        let direct_summary =
          let kind, (stats : Bbc.Dynamics.stats), final =
            match direct with
            | Bbc.Dynamics.Converged (c, s) -> (Trial.Converged, s, c)
            | Bbc.Dynamics.Cycled { config; period; stats } ->
                (Trial.Cycled period, stats, config)
            | Bbc.Dynamics.Exhausted (c, s) -> (Trial.Exhausted, s, c)
          in
          {
            Trial.outcome = kind;
            rounds = stats.Bbc.Dynamics.rounds;
            steps = stats.Bbc.Dynamics.steps;
            deviations = stats.Bbc.Dynamics.deviations;
            social_cost = E.social_cost ~objective:u.Trial.objective inst final;
            strongly_connected =
              Bbc_graph.Scc.is_strongly_connected (C.to_graph inst final);
          }
        in
        if via_trial <> direct_summary then failf "summaries differ" else ok

let trial_render t =
  match Trial.build t with
  | Ok (inst, cfg) -> (inst, Some cfg, Json.to_string (Trial.to_json t))
  | Error _ -> (I.uniform ~n:2 ~k:1, None, Json.to_string (Trial.to_json t))

let campaign_suite =
  let spec_render s =
    trial_render (Spec.unit s 0)
    |> fun (inst, cfg, _) -> (inst, cfg, Json.to_string (Spec.to_json s))
  in
  [
    Packed
      {
        name = "trial_json_roundtrip";
        gen = trial_gen;
        prop = prop_trial_roundtrip;
        render = trial_render;
      };
    Packed
      {
        name = "spec_json_roundtrip";
        gen = spec_gen;
        prop = prop_spec_roundtrip;
        render = spec_render;
      };
    Packed
      {
        name = "unit_vs_dynamics";
        gen = trial_gen;
        prop = prop_unit_trace_vs_dynamics;
        render = trial_render;
      };
  ]

(* ---------------------------------------------------------------- *)
(* Registry and driver.                                              *)

let suites =
  [
    ("csr", csr_suite);
    ("msbfs", msbfs_suite);
    ("incr", incr_suite);
    ("br", br_suite);
    ("server", server_suite);
    ("campaign", campaign_suite);
    ("selfcheck", selfcheck_suite);
  ]

let suite_names = List.map fst suites

let expand_suites = function
  | "all" -> Ok [ "csr"; "msbfs"; "incr"; "br"; "server"; "campaign" ]
  | name when List.mem_assoc name suites -> Ok [ name ]
  | name ->
      Error
        (Printf.sprintf "unknown suite %S (expected all, %s)" name
           (String.concat ", " suite_names))

(* Independent deterministic seed per property: mixing the suite and
   property names keeps a property's stream stable when its neighbours
   are added or removed. *)
let derive_seed base suite name = base lxor Hashtbl.hash (suite, name)

let run_packed opts suite (Packed p) =
  let prop_seed = derive_seed opts.seed suite p.name in
  match
    Runner.run ~count:opts.count ~max_shrink_steps:opts.max_shrink_steps
      ~seed:prop_seed p.gen p.prop
  with
  | Error e -> Error (Printf.sprintf "%s/%s: %s" suite p.name e)
  | Ok (failure, stats) ->
      let failure =
        Option.map
          (fun (f : _ Runner.failure) ->
            let instance, config, detail = p.render f.shrunk in
            {
              prop = p.name;
              case = f.case;
              steps_used = f.steps_used;
              message = f.shrunk_error;
              instance;
              config;
              detail;
            })
          failure
      in
      Ok { suite; name = p.name; prop_seed; stats; failure }

let run_suite opts name =
  match List.assoc_opt name suites with
  | None ->
      Error
        (Printf.sprintf "unknown suite %S (expected %s)" name
           (String.concat ", " suite_names))
  | Some packed ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
            match run_packed opts name p with
            | Error _ as e -> e
            | Ok r -> go (r :: acc) rest)
      in
      go [] packed
