(** BBC-domain generators built on {!Gen}: instances, feasible strategy
    profiles, move sequences for the incremental engine, and server
    request programs.

    Distributions mix the paper's structured families (rings, trees,
    Forest-of-Willows, circulant Cayley graphs, random k-out) with
    uniform and table-perturbed general games — equilibrium-relevant
    structure rather than uniform noise — while shrinking pulls every
    dimension toward the minimal instance: fewer nodes, smaller budgets,
    smaller tables, fewer links, fewer moves. *)

val instance : ?min_n:int -> ?max_n:int -> ?max_k:int -> unit -> Bbc.Instance.t Gen.t
(** A game instance: uniform [(n, k)], a general game with generated
    weight/cost/length/budget tables, or a small paper family.
    [min_n >= 2] (default 2), [max_n] default 10, [max_k] default 3. *)

val config_for : Bbc.Instance.t -> Bbc.Config.t Gen.t
(** A feasible strategy profile for the instance.  Shrinks by dropping
    links (never by regenerating), so feasibility is preserved along
    every shrink path. *)

val instance_config :
  ?min_n:int -> ?max_n:int -> ?max_k:int -> unit ->
  (Bbc.Instance.t * Bbc.Config.t) Gen.t
(** An instance together with a feasible profile on it. *)

val node_of : Bbc.Instance.t -> int Gen.t
(** A node id of the instance (shrinks toward 0). *)

val strategy_for : Bbc.Instance.t -> int -> int list Gen.t
(** A feasible strategy for the given node (sorted, within budget);
    shrinks by dropping links. *)

val moves : ?max_moves:int -> Bbc.Instance.t -> (int * int list) list Gen.t
(** A sequence of feasible rewires [(node, new strategy)] — the delta
    stream fed to the incremental engine.  Shrinks by dropping moves,
    then links inside a move. *)

val graph : ?min_n:int -> ?max_n:int -> ?max_k:int -> unit -> Bbc_graph.Digraph.t Gen.t
(** A unit-length digraph ([random_k_out] or [gnp]); [n], [k] and the
    seed all shrink. *)

(** {1 Server request programs}

    A [program] is an operation list executed against one session; the
    differential harness renders it to wire requests for the in-process
    engine and mirrors it with direct library calls. *)

type op =
  | Cost_all
  | Cost_node of int
  | Best_response_of of int
  | Stable
  | Apply_move of int * int list
  | Step_dynamics of int

val ops_to_string : op list -> string
(** Compact rendering for counterexample reports. *)

val program :
  ?max_ops:int -> Bbc.Instance.t -> op list Gen.t
(** Operations valid for the instance (nodes in range, feasible
    strategies, bounded step counts); shrinks by dropping operations. *)
