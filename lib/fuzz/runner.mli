(** Property runner: generate, test, and shrink.

    A property maps a generated value to [Ok ()] or [Error reason]; an
    exception escaping the property is treated as [Error] with the
    exception text, and {!Gen.Discard} (from generation or the property
    itself) skips the case.  On failure the runner walks the shrink
    tree greedily — first child whose root still fails, recursively —
    bounded by [max_shrink_steps] property evaluations, and reports both
    the original and the minimal counterexample.

    Runs are deterministic in [seed]: case [i] is generated from the
    [i]-th split of the seeded state, so a failure replays from
    [(seed, case)] alone.  Cases, discards and shrink steps are also
    mirrored into {!Bbc_obs} counters ([fuzz.cases], [fuzz.discards],
    [fuzz.shrink_steps]) when observability is enabled. *)

type stats = {
  cases : int;  (** properties evaluated at generated (unshrunk) roots *)
  discards : int;  (** cases skipped via {!Gen.Discard} *)
  shrink_steps : int;  (** property evaluations spent shrinking *)
}

type 'a failure = {
  case : int;  (** 0-based index of the failing case *)
  original : 'a;  (** the value as generated *)
  original_error : string;
  shrunk : 'a;  (** the minimal value still failing *)
  shrunk_error : string;
  steps_used : int;  (** shrink-step budget consumed *)
}

val run :
  ?count:int ->
  ?max_shrink_steps:int ->
  ?max_discards:int ->
  seed:int ->
  'a Gen.t ->
  ('a -> (unit, string) result) ->
  ('a failure option * stats, string) result
(** [run ~seed gen prop] evaluates [prop] on up to [count] (default 100)
    generated values.  Returns [Ok (None, stats)] if every case passed,
    [Ok (Some failure, stats)] on the first failure (shrunk within
    [max_shrink_steps], default 1000), and [Error _] only if more than
    [max_discards] (default [10 * count]) cases were discarded. *)
