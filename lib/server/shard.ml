(* FNV-1a, the 64-bit variant: simple, fast, and empirically uniform
   enough on short "s<N>" ids (test_shard checks the spread over 1k
   ids).  Int64 arithmetic wraps, which is exactly what FNV wants. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let of_session ~workers id =
  if workers < 1 then invalid_arg "Shard.of_session: workers must be >= 1";
  (* Clear the sign bit before the mod so the result is non-negative. *)
  let h = Int64.to_int (Int64.logand (fnv1a64 id) 0x3FFFFFFFFFFFFFFFL) in
  h mod workers

let mint counter = Printf.sprintf "s%d" counter
