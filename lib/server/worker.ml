type t = { w_pid : int; w_fd : Unix.file_descr }

let chunk = Bytes.create 65536

(* Write everything, blocking: only used at drain time, when the loop
   is done and losing answers matters more than latency. *)
let write_all fd data =
  let len = String.length data in
  let off = ref 0 in
  (try Unix.clear_nonblock fd with Unix.Unix_error (_, _, _) -> ());
  try
    while !off < len do
      let n = Unix.write_substring fd data !off (len - !off) in
      if n <= 0 then raise Exit;
      off := !off + n
    done
  with
  | Exit -> ()
  | Unix.Unix_error (_, _, _) -> ()

let drain_and_exit engine fd outbuf =
  Engine.begin_shutdown engine;
  List.iter
    (fun (token, reply) ->
      Buffer.add_string outbuf (Frame.encode (Frame.Answer (token, reply))))
    (Engine.drain engine);
  write_all fd (Buffer.contents outbuf);
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
  (* _exit, not exit: at_exit callbacks and channel flushers inherited
     from the parent must not run twice. *)
  Unix._exit 0

let run ~engine fd =
  let engine = Engine.create engine in
  let inbuf = Buffer.create 4096 in
  let outbuf = Buffer.create 4096 in
  Unix.set_nonblock fd;
  let fds = [| fd |] in
  let events = [| 0 |] in
  let revents = [| 0 |] in
  let handle_line line =
    if line <> "" then
      match Frame.decode line with
      | Ok (Frame.Query (token, payload)) -> (
          match Engine.submit engine ~client:token payload with
          | `Queued -> ()
          | `Reply r -> Buffer.add_string outbuf (Frame.encode (Frame.Answer (token, r))))
      | Ok Frame.Stop -> drain_and_exit engine fd outbuf
      | Ok (Frame.Answer _) | Error _ ->
          (* A malformed frame means the pipe is corrupt; continuing
             would misroute answers.  Drain what we have and exit. *)
          drain_and_exit engine fd outbuf
  in
  let split_lines () =
    let data = Buffer.contents inbuf in
    let len = String.length data in
    let start = ref 0 in
    (try
       while true do
         let nl = String.index_from data !start '\n' in
         let line = String.sub data !start (nl - !start) in
         start := nl + 1;
         handle_line line
       done
     with Not_found -> ());
    if !start > 0 then begin
      let rest = String.sub data !start (len - !start) in
      Buffer.clear inbuf;
      Buffer.add_string inbuf rest
    end
  in
  let flush_some () =
    let data = Buffer.contents outbuf in
    let len = String.length data in
    if len > 0 then
      match Unix.write_substring fd data 0 len with
      | written ->
          if written = len then Buffer.clear outbuf
          else if written > 0 then begin
            let rest = String.sub data written (len - written) in
            Buffer.clear outbuf;
            Buffer.add_string outbuf rest
          end
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> drain_and_exit engine fd outbuf
  in
  let rec loop () =
    events.(0) <-
      (Poll.pollin lor if Buffer.length outbuf > 0 then Poll.pollout else 0);
    let timeout_ms = if Engine.pending engine > 0 then 0 else 50 in
    ignore (Poll.poll ~fds ~events ~revents ~n:1 ~timeout_ms);
    if revents.(0) land Poll.pollin <> 0 then begin
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> drain_and_exit engine fd outbuf (* front went away *)
      | n ->
          Buffer.add_subbytes inbuf chunk 0 n;
          split_lines ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> drain_and_exit engine fd outbuf
    end
    else if revents.(0) land Poll.pollerr <> 0 then drain_and_exit engine fd outbuf;
    List.iter
      (fun (token, reply) ->
        Buffer.add_string outbuf (Frame.encode (Frame.Answer (token, reply))))
      (Engine.run_batch engine);
    flush_some ();
    loop ()
  in
  (* Group signals (Ctrl-C on a terminal) must not kill workers before
     the front has drained them; shutdown arrives over the pipe. *)
  (try Sys.set_signal Sys.sigint Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigterm Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  loop ()

let spawn ?(close_in_child = []) ~engine () =
  let parent_fd, child_fd = Unix.socketpair ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  (* Anything buffered in this process would otherwise be flushed twice
     (once per process) when both sides exit. *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (try Unix.close parent_fd with Unix.Unix_error (_, _, _) -> ());
      (* Listener and client fds inherited across the fork would keep
         connections half-alive if the front dies; a worker owns only
         its pipe. *)
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
        close_in_child;
      run ~engine child_fd
  | pid ->
      (try Unix.close child_fd with Unix.Unix_error (_, _, _) -> ());
      Unix.set_nonblock parent_fd;
      { w_pid = pid; w_fd = parent_fd }
