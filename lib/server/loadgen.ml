module Json = Bbc.Json

type method_stats = {
  meth : string;
  count : int;
  m_p50_ms : float;
  m_p99_ms : float;
}

type summary = {
  clients : int;
  requests : int;
  errors : int;
  protocol_errors : int;
  elapsed_s : float;
  req_per_s : float;
  p50_ms : float;
  p99_ms : float;
  by_method : method_stats list;
  consistent : bool;
}

let summary_to_json s =
  Json.Obj
    [
      ("clients", Json.Int s.clients);
      ("requests", Json.Int s.requests);
      ("errors", Json.Int s.errors);
      ("protocol_errors", Json.Int s.protocol_errors);
      ("elapsed_s", Json.Float s.elapsed_s);
      ("req_per_s", Json.Float s.req_per_s);
      ("p50_ms", Json.Float s.p50_ms);
      ("p99_ms", Json.Float s.p99_ms);
      ( "by_method",
        Json.Obj
          (List.map
             (fun m ->
               ( m.meth,
                 Json.Obj
                   [
                     ("count", Json.Int m.count);
                     ("p50_ms", Json.Float m.m_p50_ms);
                     ("p99_ms", Json.Float m.m_p99_ms);
                   ] ))
             s.by_method) );
      ("consistent", Json.Bool s.consistent);
    ]

(* ---------------------------------------------------------------- *)
(* Wire helpers                                                      *)

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  match Unix.connect fd (ADDR_UNIX path) with
  | () -> Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      Error (Printf.sprintf "connect %s: %s" path (Unix.error_message e))

let disconnect c =
  (try flush c.oc with Sys_error _ -> ());
  try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()

let rpc c req =
  match
    output_string c.oc (Json.to_string req);
    output_char c.oc '\n';
    flush c.oc;
    input_line c.ic
  with
  | line -> Ok line
  | exception (End_of_file | Sys_error _) -> Error "connection closed by server"

(* A response is sound when it parses, carries the id we sent, and has
   exactly one of "ok"/"error".  Returns the normalized payload used by
   the consistency cross-check. *)
let classify ~id line =
  match Json.of_string line with
  | Error e -> `Protocol ("unparseable response: " ^ e)
  | Ok json -> (
      match Json.member "id" json with
      | Some (Json.Str rid) when rid = id -> (
          match (Json.member "ok" json, Json.member "error" json) with
          | Some ok, None -> `Ok (Json.to_string ok)
          | None, Some err -> `Err (Json.to_string err)
          | _ -> `Protocol "response has neither ok nor error")
      | _ -> `Protocol "response id does not match request id")

(* ---------------------------------------------------------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let mix = [| "cost"; "best_response"; "stable" |]

let query ~session ~deadline_ms ~n ~id i =
  let meth = mix.(i mod Array.length mix) in
  let base =
    match meth with
    | "stable" -> [ ("session", Json.Str session) ]
    | _ -> [ ("session", Json.Str session); ("node", Json.Int (i mod n)) ]
  in
  let fields =
    [
      ("id", Json.Str id);
      ("method", Json.Str meth);
      ("params", Json.Obj base);
    ]
    @
    match deadline_ms with
    | Some ms -> [ ("deadline_ms", Json.Int ms) ]
    | None -> []
  in
  (meth, Json.Obj fields)

(* Consistency key: read-only queries over an unmutated shared session
   must answer identically no matter which client asked or when. *)
let query_key ~n meth i =
  match meth with "stable" -> meth | _ -> Printf.sprintf "%s/%d" meth (i mod n)

type shared = {
  mutex : Mutex.t;
  latencies : (string, float list ref) Hashtbl.t;  (** method -> ms samples *)
  answers : (string, string) Hashtbl.t;  (** query key -> normalized payload *)
  mutable total : int;
  mutable errs : int;
  mutable proto_errs : int;
  mutable inconsistent : bool;
}

let record sh ~meth ~key ~elapsed_ms outcome =
  Mutex.lock sh.mutex;
  sh.total <- sh.total + 1;
  (match Hashtbl.find_opt sh.latencies meth with
  | Some l -> l := elapsed_ms :: !l
  | None -> Hashtbl.replace sh.latencies meth (ref [ elapsed_ms ]));
  (match outcome with
  | `Ok payload -> (
      match Hashtbl.find_opt sh.answers key with
      | None -> Hashtbl.replace sh.answers key payload
      | Some seen -> if seen <> payload then sh.inconsistent <- true)
  | `Err _ -> sh.errs <- sh.errs + 1
  | `Protocol _ -> sh.proto_errs <- sh.proto_errs + 1);
  Mutex.unlock sh.mutex

let client_loop sh ~socket ~session ~requests ~n ~deadline_ms cid =
  match connect socket with
  | Error _ ->
      Mutex.lock sh.mutex;
      sh.proto_errs <- sh.proto_errs + requests;
      Mutex.unlock sh.mutex
  | Ok conn ->
      for i = 0 to requests - 1 do
        let id = Printf.sprintf "c%d-%d" cid i in
        let meth, req = query ~session ~deadline_ms ~n ~id i in
        let key = query_key ~n meth i in
        let t0 = Bbc_obs.now_ns () in
        let outcome =
          match rpc conn req with
          | Ok line -> classify ~id line
          | Error e -> `Protocol e
        in
        let elapsed_ms = float_of_int (Bbc_obs.now_ns () - t0) /. 1e6 in
        record sh ~meth ~key ~elapsed_ms outcome
      done;
      disconnect conn

let setup_session ~socket ~name ~n =
  match connect socket with
  | Error e -> Error e
  | Ok conn ->
      let req =
        Json.Obj
          [
            ("id", Json.Str "setup");
            ("method", Json.Str "gen");
            ( "params",
              Json.Obj [ ("name", Json.Str name); ("n", Json.Int n) ] );
          ]
      in
      let result =
        match rpc conn req with
        | Error e -> Error e
        | Ok line -> (
            match classify ~id:"setup" line with
            | `Ok payload -> (
                match Json.of_string payload with
                | Ok p -> (
                    match Json.member "session" p with
                    | Some (Json.Str sid) -> Ok sid
                    | _ -> Error "gen response lacks a session id")
                | Error e -> Error e)
            | `Err e -> Error ("gen failed: " ^ e)
            | `Protocol e -> Error ("gen failed: " ^ e))
      in
      disconnect conn;
      result

let run ~socket ~clients ~requests ?(name = "ring") ?(n = 12) ?deadline_ms () =
  if clients < 1 then Error "clients must be >= 1"
  else if requests < 1 then Error "requests must be >= 1"
  else
    match setup_session ~socket ~name ~n with
    | Error e -> Error e
    | Ok session ->
        let sh =
          {
            mutex = Mutex.create ();
            latencies = Hashtbl.create 8;
            answers = Hashtbl.create 64;
            total = 0;
            errs = 0;
            proto_errs = 0;
            inconsistent = false;
          }
        in
        let t0 = Unix.gettimeofday () in
        let threads =
          List.init clients (fun cid ->
              Thread.create
                (client_loop sh ~socket ~session ~requests ~n ~deadline_ms)
                cid)
        in
        List.iter Thread.join threads;
        let elapsed_s = Unix.gettimeofday () -. t0 in
        let all = ref [] in
        let by_method =
          Hashtbl.fold
            (fun meth samples acc ->
              all := List.rev_append !samples !all;
              let sorted = Array.of_list !samples in
              Array.sort compare sorted;
              {
                meth;
                count = Array.length sorted;
                m_p50_ms = percentile sorted 50.0;
                m_p99_ms = percentile sorted 99.0;
              }
              :: acc)
            sh.latencies []
          |> List.sort (fun a b -> compare a.meth b.meth)
        in
        let sorted = Array.of_list !all in
        Array.sort compare sorted;
        Ok
          {
            clients;
            requests = sh.total;
            errors = sh.errs;
            protocol_errors = sh.proto_errs + (if sh.inconsistent then 1 else 0);
            elapsed_s;
            req_per_s =
              (if elapsed_s > 0.0 then float_of_int sh.total /. elapsed_s else 0.0);
            p50_ms = percentile sorted 50.0;
            p99_ms = percentile sorted 99.0;
            by_method;
            consistent = not sh.inconsistent;
          }

let request_shutdown ~socket =
  match connect socket with
  | Error e -> Error e
  | Ok conn ->
      let req =
        Json.Obj
          [
            ("id", Json.Str "shutdown");
            ("method", Json.Str "shutdown");
            ("params", Json.Obj []);
          ]
      in
      let result =
        match rpc conn req with
        | Error e -> Error e
        | Ok line -> (
            match classify ~id:"shutdown" line with
            | `Ok _ -> Ok ()
            | `Err e -> Error e
            | `Protocol e -> Error e)
      in
      disconnect conn;
      result
