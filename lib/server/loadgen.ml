module Json = Bbc.Json

type method_stats = {
  meth : string;
  count : int;
  m_p50_ms : float;
  m_p99_ms : float;
}

type summary = {
  conns : int;
  sessions : int;
  requests : int;
  errors : int;
  protocol_errors : int;
  elapsed_s : float;
  req_per_s : float;
  p50_ms : float;
  p99_ms : float;
  by_method : method_stats list;
  consistent : bool;
}

let summary_to_json s =
  Json.Obj
    [
      ("conns", Json.Int s.conns);
      ("sessions", Json.Int s.sessions);
      ("requests", Json.Int s.requests);
      ("errors", Json.Int s.errors);
      ("protocol_errors", Json.Int s.protocol_errors);
      ("elapsed_s", Json.Float s.elapsed_s);
      ("req_per_s", Json.Float s.req_per_s);
      ("p50_ms", Json.Float s.p50_ms);
      ("p99_ms", Json.Float s.p99_ms);
      ( "by_method",
        Json.Obj
          (List.map
             (fun m ->
               ( m.meth,
                 Json.Obj
                   [
                     ("count", Json.Int m.count);
                     ("p50_ms", Json.Float m.m_p50_ms);
                     ("p99_ms", Json.Float m.m_p99_ms);
                   ] ))
             s.by_method) );
      ("consistent", Json.Bool s.consistent);
    ]

(* ---------------------------------------------------------------- *)
(* Blocking wire helpers (setup and shutdown use one ordinary
   channel-based connection; only the load phase is an event loop).    *)

type bconn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let bconnect endpoint =
  match Net.connect endpoint with
  | Error e -> Error e
  | Ok fd ->
      Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let bdisconnect c =
  (try flush c.oc with Sys_error _ -> ());
  try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()

let rpc c req =
  match
    output_string c.oc (Json.to_string req);
    output_char c.oc '\n';
    flush c.oc;
    input_line c.ic
  with
  | line -> Ok line
  | exception (End_of_file | Sys_error _) -> Error "connection closed by server"

(* A response is sound when it parses, carries the id we sent, and has
   exactly one of "ok"/"error".  Returns the normalized payload used by
   the consistency cross-check. *)
let classify ~id line =
  match Json.of_string line with
  | Error e -> `Protocol ("unparseable response: " ^ e)
  | Ok json -> (
      match Json.member "id" json with
      | Some (Json.Str rid) when rid = id -> (
          match (Json.member "ok" json, Json.member "error" json) with
          | Some ok, None -> `Ok (Json.to_string ok)
          | None, Some err -> `Err (Json.to_string err)
          | _ -> `Protocol "response has neither ok nor error")
      | _ -> `Protocol "response id does not match request id")

(* ---------------------------------------------------------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let mix = [| "cost"; "best_response"; "stable" |]

let query ~session ~deadline_ms ~n ~id i =
  let meth = mix.(i mod Array.length mix) in
  let base =
    match meth with
    | "stable" -> [ ("session", Json.Str session) ]
    | _ -> [ ("session", Json.Str session); ("node", Json.Int (i mod n)) ]
  in
  let fields =
    [
      ("id", Json.Str id);
      ("method", Json.Str meth);
      ("params", Json.Obj base);
    ]
    @
    match deadline_ms with
    | Some ms -> [ ("deadline_ms", Json.Int ms) ]
    | None -> []
  in
  (meth, Json.Obj fields)

(* Consistency key: read-only queries over unmutated sessions that were
   all generated identically must answer identically — across clients,
   across interleavings and, on a sharded server, across worker
   processes.  The key deliberately omits the session id so the
   cross-check spans shards. *)
let query_key ~n meth i =
  match meth with "stable" -> meth | _ -> Printf.sprintf "%s/%d" meth (i mod n)

type shared = {
  latencies : (string, float list ref) Hashtbl.t;  (** method -> ms samples *)
  answers : (string, string) Hashtbl.t;  (** query key -> normalized payload *)
  mutable total : int;
  mutable errs : int;
  mutable proto_errs : int;
  mutable inconsistent : bool;
}

let record sh ~meth ~key ~elapsed_ms outcome =
  sh.total <- sh.total + 1;
  (match Hashtbl.find_opt sh.latencies meth with
  | Some l -> l := elapsed_ms :: !l
  | None -> Hashtbl.replace sh.latencies meth (ref [ elapsed_ms ]));
  match outcome with
  | `Ok payload -> (
      match Hashtbl.find_opt sh.answers key with
      | None -> Hashtbl.replace sh.answers key payload
      | Some seen -> if seen <> payload then sh.inconsistent <- true)
  | `Err _ -> sh.errs <- sh.errs + 1
  | `Protocol _ -> sh.proto_errs <- sh.proto_errs + 1

(* ---------------------------------------------------------------- *)
(* Event-loop load phase                                             *)

(* One closed-loop connection: at most one request in flight, the next
   one issued as soon as the response line lands.  All connections are
   driven by a single poll(2) loop — one OS thread total, which is what
   lets the generator hold thousands of connections open. *)
type cstate = {
  c_fd : Unix.file_descr;
  c_inb : Buffer.t;
  c_outb : Buffer.t;
  c_session : string;
  c_cid : int;
  mutable c_idx : int;  (** per-connection request counter (drives the mix) *)
  mutable c_sent_ns : int;
  mutable c_meth : string;
  mutable c_key : string;
  mutable c_id : string;
  mutable c_inflight : bool;
  mutable c_done : bool;
}

type driver = {
  sh : shared;
  mutable issued : int;
  total : int;
  until : float;  (** wall-clock stop line for duration-bounded runs *)
  n : int;
  deadline_ms : int option;
}

let fail_conn d c reason =
  if not c.c_done then begin
    if c.c_inflight then begin
      record d.sh ~meth:c.c_meth ~key:c.c_key
        ~elapsed_ms:(float_of_int (Bbc_obs.now_ns () - c.c_sent_ns) /. 1e6)
        (`Protocol reason);
      c.c_inflight <- false
    end;
    c.c_done <- true;
    try Unix.close c.c_fd with Unix.Unix_error (_, _, _) -> ()
  end

let issue_next d c =
  if
    (not c.c_inflight) && (not c.c_done)
    && d.issued < d.total
    && Unix.gettimeofday () < d.until
  then begin
    let i = c.c_idx in
    c.c_idx <- i + 1;
    d.issued <- d.issued + 1;
    let id = Printf.sprintf "c%d-%d" c.c_cid i in
    let meth, req = query ~session:c.c_session ~deadline_ms:d.deadline_ms ~n:d.n ~id i in
    c.c_meth <- meth;
    c.c_key <- query_key ~n:d.n meth i;
    c.c_id <- id;
    c.c_inflight <- true;
    c.c_sent_ns <- Bbc_obs.now_ns ();
    Buffer.add_string c.c_outb (Json.to_string req);
    Buffer.add_char c.c_outb '\n'
  end
  else if (not c.c_inflight) && not c.c_done then begin
    (* Nothing left to issue and nothing outstanding: retire. *)
    c.c_done <- true;
    try Unix.close c.c_fd with Unix.Unix_error (_, _, _) -> ()
  end

let on_line d c line =
  if c.c_inflight then begin
    let elapsed_ms = float_of_int (Bbc_obs.now_ns () - c.c_sent_ns) /. 1e6 in
    record d.sh ~meth:c.c_meth ~key:c.c_key ~elapsed_ms (classify ~id:c.c_id line);
    c.c_inflight <- false;
    issue_next d c
  end
  (* An unsolicited line is a server bug, but counting it against a
     method would skew the mix; just flag it. *)
  else d.sh.proto_errs <- d.sh.proto_errs + 1

let chunk = Bytes.create 65536

let read_cstate d c =
  match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
  | 0 -> fail_conn d c "connection closed by server"
  | nread ->
      Buffer.add_subbytes c.c_inb chunk 0 nread;
      let data = Buffer.contents c.c_inb in
      let len = String.length data in
      let start = ref 0 in
      (try
         while not c.c_done do
           let nl = String.index_from data !start '\n' in
           let line = String.sub data !start (nl - !start) in
           start := nl + 1;
           on_line d c line
         done
       with Not_found -> ());
      if !start > 0 then begin
        let rest = String.sub data !start (len - !start) in
        Buffer.clear c.c_inb;
        Buffer.add_string c.c_inb rest
      end
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error (e, _, _) ->
      fail_conn d c ("read: " ^ Unix.error_message e)

let write_cstate d c =
  let data = Buffer.contents c.c_outb in
  let len = String.length data in
  if len > 0 then
    match Unix.write_substring c.c_fd data 0 len with
    | written ->
        if written = len then Buffer.clear c.c_outb
        else if written > 0 then begin
          let rest = String.sub data written (len - written) in
          Buffer.clear c.c_outb;
          Buffer.add_string c.c_outb rest
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
        fail_conn d c ("write: " ^ Unix.error_message e)

let drive d states =
  let unfinished () = List.exists (fun c -> not c.c_done) states in
  (* Hard stop well past the workload's own stop line, so a hung server
     cannot hang the generator. *)
  let abort_at = d.until +. 30.0 in
  while unfinished () && Unix.gettimeofday () < abort_at do
    let live = List.filter (fun c -> not c.c_done) states in
    let slots = Array.of_list live in
    let n = Array.length slots in
    let fds = Array.map (fun c -> c.c_fd) slots in
    let events =
      Array.map
        (fun c ->
          Poll.pollin lor if Buffer.length c.c_outb > 0 then Poll.pollout else 0)
        slots
    in
    let revents = Array.make n 0 in
    (match Poll.poll ~fds ~events ~revents ~n ~timeout_ms:100 with
    | _ -> ()
    | exception Unix.Unix_error (_, _, _) -> ());
    Array.iteri
      (fun i c ->
        let r = revents.(i) in
        if not c.c_done then
          if r land Poll.pollin <> 0 then read_cstate d c
          else if r land Poll.pollerr <> 0 then
            fail_conn d c "connection error (POLLERR)")
      slots;
    Array.iter
      (fun c -> if (not c.c_done) && Buffer.length c.c_outb > 0 then write_cstate d c)
      slots;
    (* Past the stop line, idle connections must retire even though no
       IO event will fire for them. *)
    if Unix.gettimeofday () >= d.until then
      List.iter (fun c -> if not c.c_inflight then issue_next d c) live
  done;
  List.iter (fun c -> fail_conn d c "load generator timed out waiting") states

(* ---------------------------------------------------------------- *)
(* Setup                                                             *)

let gen_request ~id ~name ~n =
  Json.Obj
    [
      ("id", Json.Str id);
      ("method", Json.Str "gen");
      ("params", Json.Obj [ ("name", Json.Str name); ("n", Json.Int n) ]);
    ]

let setup_sessions ~endpoint ~sessions ~name ~n =
  match bconnect endpoint with
  | Error e -> Error e
  | Ok conn ->
      let rec go acc i =
        if i = sessions then Ok (List.rev acc)
        else
          let id = Printf.sprintf "setup-%d" i in
          match rpc conn (gen_request ~id ~name ~n) with
          | Error e -> Error e
          | Ok line -> (
              match classify ~id line with
              | `Ok payload -> (
                  match Json.of_string payload with
                  | Ok p -> (
                      match Json.member "session" p with
                      | Some (Json.Str sid) -> go (sid :: acc) (i + 1)
                      | _ -> Error "gen response lacks a session id")
                  | Error e -> Error e)
              | `Err e -> Error ("gen failed: " ^ e)
              | `Protocol e -> Error ("gen failed: " ^ e))
      in
      let result = go [] 0 in
      bdisconnect conn;
      result

let run ~endpoint ~conns ~total ?(sessions = 1) ?(name = "ring") ?(n = 12)
    ?deadline_ms ?duration_s () =
  if conns < 1 then Error "conns must be >= 1"
  else if total < 1 then Error "total must be >= 1"
  else if sessions < 1 then Error "sessions must be >= 1"
  else
    match setup_sessions ~endpoint ~sessions ~name ~n with
    | Error e -> Error e
    | Ok session_ids -> (
        let session_arr = Array.of_list session_ids in
        let sh =
          {
            latencies = Hashtbl.create 8;
            answers = Hashtbl.create 64;
            total = 0;
            errs = 0;
            proto_errs = 0;
            inconsistent = false;
          }
        in
        (* Connect everyone first (blocking, sequential: loopback
           connects are cheap even at thousands), then drive them from
           the poll loop. *)
        let rec connect_all acc i =
          if i = conns then Ok (List.rev acc)
          else
            match Net.connect endpoint with
            | Ok fd ->
                Unix.set_nonblock fd;
                connect_all
                  ({
                     c_fd = fd;
                     c_inb = Buffer.create 512;
                     c_outb = Buffer.create 512;
                     c_session = session_arr.(i mod sessions);
                     c_cid = i;
                     c_idx = 0;
                     c_sent_ns = 0;
                     c_meth = "";
                     c_key = "";
                     c_id = "";
                     c_inflight = false;
                     c_done = false;
                   }
                  :: acc)
                  (i + 1)
            | Error e ->
                List.iter
                  (fun c ->
                    try Unix.close c.c_fd with Unix.Unix_error (_, _, _) -> ())
                  acc;
                Error (Printf.sprintf "connection %d: %s" i e)
        in
        match connect_all [] 0 with
        | Error e -> Error e
        | Ok states ->
            let t0 = Unix.gettimeofday () in
            let d =
              {
                sh;
                issued = 0;
                total;
                until =
                  (match duration_s with
                  | Some s -> t0 +. s
                  | None -> t0 +. 3600.0);
                n;
                deadline_ms;
              }
            in
            List.iter (fun c -> issue_next d c) states;
            drive d states;
            let elapsed_s = Unix.gettimeofday () -. t0 in
            let all = ref [] in
            let by_method =
              Hashtbl.fold
                (fun meth samples acc ->
                  all := List.rev_append !samples !all;
                  let sorted = Array.of_list !samples in
                  Array.sort compare sorted;
                  {
                    meth;
                    count = Array.length sorted;
                    m_p50_ms = percentile sorted 50.0;
                    m_p99_ms = percentile sorted 99.0;
                  }
                  :: acc)
                sh.latencies []
              |> List.sort (fun a b -> compare a.meth b.meth)
            in
            let sorted = Array.of_list !all in
            Array.sort compare sorted;
            Ok
              {
                conns;
                sessions;
                requests = sh.total;
                errors = sh.errs;
                protocol_errors = sh.proto_errs + (if sh.inconsistent then 1 else 0);
                elapsed_s;
                req_per_s =
                  (if elapsed_s > 0.0 then float_of_int sh.total /. elapsed_s
                   else 0.0);
                p50_ms = percentile sorted 50.0;
                p99_ms = percentile sorted 99.0;
                by_method;
                consistent = not sh.inconsistent;
              })

let request_shutdown ~endpoint =
  match bconnect endpoint with
  | Error e -> Error e
  | Ok conn ->
      let req =
        Json.Obj
          [
            ("id", Json.Str "shutdown");
            ("method", Json.Str "shutdown");
            ("params", Json.Obj []);
          ]
      in
      let result =
        match rpc conn req with
        | Error e -> Error e
        | Ok line -> (
            match classify ~id:"shutdown" line with
            | `Ok _ -> Ok ()
            | `Err e -> Error e
            | `Protocol e -> Error e)
      in
      bdisconnect conn;
      result
