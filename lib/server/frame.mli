(** Wire frames of the front-tier/worker protocol, one frame per line
    over the worker's inherited socketpair:

    {v
    front -> worker:   Q <token> <raw request line>      route a request
                       S                                 drain and exit
    worker -> front:   A <token> <raw response line>     answer a token
    v}

    Tokens are the front's per-request integers; the worker echoes them
    verbatim (they double as the engine-side client id, so
    {!Engine.run_batch}'s [(client, response)] pairs are already
    [(token, response)]).  Payloads are complete protocol lines and
    never contain newlines, so framing is trivial. *)

type t =
  | Query of int * string  (** token, raw request line *)
  | Answer of int * string  (** token, raw response line *)
  | Stop  (** graceful drain order (front to worker) *)

val encode : t -> string
(** One line including the trailing newline. *)

val decode : string -> (t, string) result
(** Parse one line (without its newline). *)
