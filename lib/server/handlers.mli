(** Endpoint implementations, shared by the batch scheduler and the
    in-process tests.  Handlers are pure request -> result functions
    over the session store; queueing, deadlines, and backpressure live
    in {!Engine}. *)

type env = {
  sessions : Session.store;
  now : unit -> int;  (** monotonic ns *)
  stats : unit -> Bbc.Json.t;  (** scheduler counters, served live *)
  request_shutdown : unit -> unit;  (** the [shutdown] endpoint's hook *)
  assign_ids : bool;
      (** honor the front tier's ["_session"] param on [gen] /
          [load_instance] (sharded workers only — external clients must
          never pick their own session ids, see {!Session.add}) *)
}

val handle :
  env -> Protocol.request -> (Bbc.Json.t, Protocol.error_code * string) result
(** Execute one request.  Never raises: handler exceptions become
    [Internal] errors. *)
