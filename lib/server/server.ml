type mode = Listen of Net.listener list | Stdio

(* One live connection: a read accumulator for partial lines and a
   write buffer for responses not yet flushed (client fds are
   non-blocking). *)
type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  outbuf : Buffer.t;
  mutable eof : bool;
}

type st = {
  engine : Engine.t;
  conns : (int, conn) Hashtbl.t;
  mutable next_client : int;
  interrupted : bool Atomic.t;
}

let chunk = Bytes.create 65536

(* Per-connection buffer bounds: queue_cap backpressure caps queued
   requests but not these buffers, so without limits one client
   streaming newline-free bytes (inbuf) or submitting while never
   reading responses (outbuf) could exhaust server memory. *)
let max_line_bytes = 8 * 1024 * 1024
let max_outbuf_bytes = 256 * 1024 * 1024

(* Split complete lines out of [c.inbuf] and admit each one; immediate
   replies (parse errors, overload, ...) go straight to the write
   buffer. *)
let feed_lines st client c =
  let data = Buffer.contents c.inbuf in
  let len = String.length data in
  let start = ref 0 in
  (try
     while true do
       let nl = String.index_from data !start '\n' in
       let line = String.sub data !start (nl - !start) in
       start := nl + 1;
       if String.trim line <> "" then
         match Engine.submit st.engine ~client line with
         | `Queued -> ()
         | `Reply r ->
             Buffer.add_string c.outbuf r;
             Buffer.add_char c.outbuf '\n'
     done
   with Not_found -> ());
  if len - !start > max_line_bytes then begin
    (* No newline within the limit: answer with a structured error and
       close once it is flushed (eof stops further reads; sweep reaps
       the connection when outbuf drains). *)
    Buffer.clear c.inbuf;
    Buffer.add_string c.outbuf
      (Protocol.error ~id:Bbc.Json.Null Protocol.Bad_request
         (Printf.sprintf "request line exceeds %d bytes" max_line_bytes));
    Buffer.add_char c.outbuf '\n';
    c.eof <- true
  end
  else if !start > 0 then begin
    let rest = String.sub data !start (len - !start) in
    Buffer.clear c.inbuf;
    Buffer.add_string c.inbuf rest
  end

let read_conn st client c =
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> c.eof <- true
  | n ->
      Buffer.add_subbytes c.inbuf chunk 0 n;
      feed_lines st client c
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> c.eof <- true

(* Flush as much of the write buffer as the socket accepts. *)
let write_conn c =
  let data = Buffer.contents c.outbuf in
  let len = String.length data in
  if len > 0 then begin
    match Unix.write_substring c.fd data 0 len with
    | written ->
        if written > 0 && written < len then begin
          let rest = String.sub data written (len - written) in
          Buffer.clear c.outbuf;
          Buffer.add_string c.outbuf rest
        end
        else if written = len then Buffer.clear c.outbuf
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
        Buffer.clear c.outbuf;
        c.eof <- true
  end

let deliver st replies =
  List.iter
    (fun (client, reply) ->
      match Hashtbl.find_opt st.conns client with
      | None -> ()  (* client hung up before its response was ready *)
      | Some c ->
          Buffer.add_string c.outbuf reply;
          Buffer.add_char c.outbuf '\n';
          if Buffer.length c.outbuf > max_outbuf_bytes then begin
            (* The peer is not reading its responses; drop it rather
               than buffer without bound. *)
            Buffer.clear c.outbuf;
            c.eof <- true
          end)
    replies

let close_conn st client c =
  Hashtbl.remove st.conns client;
  try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()

(* A connection is dropped once the peer closed it and every pending
   response has been flushed. *)
let sweep st =
  let dead =
    Hashtbl.fold
      (fun client c acc ->
        if c.eof && Buffer.length c.outbuf = 0 then (client, c) :: acc else acc)
      st.conns []
  in
  List.iter (fun (client, c) -> close_conn st client c) dead

let stop_wanted st =
  Atomic.get st.interrupted || Engine.shutdown_requested st.engine

(* Graceful exit: admissions are already rejected ([begin_shutdown]);
   execute everything admitted, then block until each response is on
   the wire (bounded by a 5 s flush budget per the whole drain). *)
let drain_and_flush st =
  Engine.begin_shutdown st.engine;
  deliver st (Engine.drain st.engine);
  let give_up = Unix.gettimeofday () +. 5.0 in
  let rec flush_all () =
    let pending =
      Hashtbl.fold
        (fun _ c acc -> if Buffer.length c.outbuf > 0 && not c.eof then c :: acc else acc)
        st.conns []
    in
    if pending <> [] && Unix.gettimeofday () < give_up then begin
      List.iter write_conn pending;
      let still =
        List.exists (fun c -> Buffer.length c.outbuf > 0 && not c.eof) pending
      in
      if still then begin
        (* Plain sleep between flush attempts: the fd set may be larger
           than FD_SETSIZE, so waiting on writability via select is not
           an option here. *)
        (match Unix.select [] [] [] 0.05 with
        | _ -> ()
        | exception Unix.Unix_error (EINTR, _, _) -> ());
        flush_all ()
      end
    end
  in
  flush_all ();
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()) st.conns;
  Hashtbl.reset st.conns

let with_signals st f =
  let install s =
    match Sys.signal s (Sys.Signal_handle (fun _ -> Atomic.set st.interrupted true)) with
    | prev -> Some prev
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let pipe =
    match Sys.signal Sys.sigpipe Sys.Signal_ignore with
    | prev -> Some prev
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let old_int = install Sys.sigint and old_term = install Sys.sigterm in
  Fun.protect f ~finally:(fun () ->
      let restore s prev =
        match prev with
        | Some b -> ( try Sys.set_signal s b with Invalid_argument _ | Sys_error _ -> ())
        | None -> ()
      in
      restore Sys.sigint old_int;
      restore Sys.sigterm old_term;
      restore Sys.sigpipe pipe)

(* ---------------------------------------------------------------- *)
(* Listen mode                                                       *)

let rec accept_ready st l =
  match Net.accept l with
  | Some fd ->
      let client = st.next_client in
      st.next_client <- client + 1;
      Hashtbl.replace st.conns client
        { fd; inbuf = Buffer.create 256; outbuf = Buffer.create 256; eof = false };
      accept_ready st l
  | None -> ()

type slot = Slistener of Net.listener | Sconn of int * conn

(* One poll(2) wake-up: accept, read, run a batch, flush.  poll rather
   than select because "thousands of connections" crosses FD_SETSIZE —
   select fails on any fd *number* >= 1024 no matter how few fds are
   actually watched. *)
let iterate st listeners =
  let slots = ref [] in
  List.iter (fun l -> slots := Slistener l :: !slots) listeners;
  Hashtbl.iter
    (fun client c ->
      if (not c.eof) || Buffer.length c.outbuf > 0 then
        slots := Sconn (client, c) :: !slots)
    st.conns;
  let slots = Array.of_list !slots in
  let n = Array.length slots in
  let fds =
    Array.map (function Slistener l -> l.Net.l_fd | Sconn (_, c) -> c.fd) slots
  in
  let events =
    Array.map
      (function
        | Slistener _ -> Poll.pollin
        | Sconn (_, c) ->
            (if c.eof then 0 else Poll.pollin)
            lor if Buffer.length c.outbuf > 0 then Poll.pollout else 0)
      slots
  in
  let revents = Array.make n 0 in
  let timeout_ms = if Engine.pending st.engine > 0 then 0 else 50 in
  (match Poll.poll ~fds ~events ~revents ~n ~timeout_ms with
  | _ -> ()
  | exception Unix.Unix_error (_, _, _) -> ());
  Array.iteri
    (fun i s ->
      let r = revents.(i) in
      match s with
      | Slistener l -> if r land Poll.pollin <> 0 then accept_ready st l
      | Sconn (client, c) ->
          if r land Poll.pollin <> 0 && not c.eof then read_conn st client c
          else if r land Poll.pollerr <> 0 then c.eof <- true)
    slots;
  deliver st (Engine.run_batch st.engine);
  (* Opportunistic flush: freshly-delivered responses were not in
     anyone's pollout set for this wake-up, and sockets are
     non-blocking anyway — EAGAIN just leaves the buffer for the next
     pass. *)
  Hashtbl.iter (fun _ c -> if Buffer.length c.outbuf > 0 then write_conn c) st.conns;
  sweep st

let run_listen ?on_ready st listeners =
  Option.iter (fun f -> f ()) on_ready;
  let rec loop () =
    if stop_wanted st then ()
    else begin
      iterate st listeners;
      loop ()
    end
  in
  Fun.protect loop ~finally:(fun () ->
      List.iter Net.close_listener listeners;
      drain_and_flush st)

(* ---------------------------------------------------------------- *)
(* Stdio mode                                                        *)

(* One implicit connection on stdin/stdout, used by the cram tests:
   read until EOF (or an executed [shutdown]), answering each batch in
   admission order, then drain and return. *)
let run_stdio ?on_ready st =
  Option.iter (fun f -> f ()) on_ready;
  let emit replies =
    List.iter
      (fun (_, reply) ->
        print_string reply;
        print_newline ())
      replies;
    flush stdout
  in
  let submit_line line =
    if String.trim line <> "" then
      match Engine.submit st.engine ~client:0 line with
      | `Queued -> ()
      | `Reply r -> emit [ (0, r) ]
  in
  (try
     while not (stop_wanted st) do
       match input_line stdin with
       | line ->
           submit_line line;
           emit (Engine.run_batch st.engine)
       | exception End_of_file -> raise Exit
     done
   with Exit -> ());
  Engine.begin_shutdown st.engine;
  emit (Engine.drain st.engine)

let run ?on_ready ~engine mode =
  let st =
    {
      engine = Engine.create engine;
      conns = Hashtbl.create 16;
      next_client = 1;
      interrupted = Atomic.make false;
    }
  in
  with_signals st (fun () ->
      match mode with
      | Listen listeners -> run_listen ?on_ready st listeners
      | Stdio -> run_stdio ?on_ready st)
