module Json = Bbc.Json

type config = {
  queue_cap : int;
  max_batch : int;
  jobs : int option;
  session_cap : int;
  session_ttl_ms : int;
  now : unit -> int;
  assign_ids : bool;
}

let default_config () =
  {
    queue_cap = 256;
    max_batch = 64;
    jobs = None;
    session_cap = 1024;
    session_ttl_ms = 600_000;
    now = Bbc_obs.now_ns;
    assign_ids = false;
  }

type pending_req = {
  p_seq : int;
  p_client : int;
  p_req : Protocol.request;
  p_arrival_ns : int;
  p_deadline_ns : int option;  (** absolute *)
}

(* Exact per-endpoint counters (atomics: workers increment them during
   batch execution) behind the [stats] endpoint, plus Bbc_obs mirrors
   for --metrics and latency histograms. *)
type endpoint_obs = {
  served : int Atomic.t;
  failed : int Atomic.t;  (** error responses (excl. timeout/overload) *)
  obs_served : Bbc_obs.counter;
  obs_latency : Bbc_obs.histogram;
}

type t = {
  cfg : config;
  store : Session.store;
  queue : pending_req Queue.t;
  mutable next_seq : int;
  mutable stopping : bool;  (** admissions rejected once set *)
  stop_requested : bool Atomic.t;  (** set by the shutdown endpoint *)
  endpoints : (string * endpoint_obs) list;  (** one entry per method *)
  timeouts : int Atomic.t;
  overloads : int Atomic.t;
  rejected : int Atomic.t;  (** malformed / unknown-method / shutting-down *)
  batches : int Atomic.t;
  obs_timeouts : Bbc_obs.counter;
  obs_overloads : Bbc_obs.counter;
  obs_batches : Bbc_obs.counter;
  obs_queue_depth : Bbc_obs.gauge;
  obs_batch_size : Bbc_obs.histogram;
}

let create cfg =
  {
    cfg;
    store =
      Session.create_store ~capacity:cfg.session_cap
        ~ttl_ns:(cfg.session_ttl_ms * 1_000_000) ();
    queue = Queue.create ();
    next_seq = 0;
    stopping = false;
    stop_requested = Atomic.make false;
    endpoints =
      List.map
        (fun m ->
          ( m,
            {
              served = Atomic.make 0;
              failed = Atomic.make 0;
              obs_served = Bbc_obs.counter ("server.req." ^ m);
              obs_latency = Bbc_obs.histogram ("server.latency." ^ m);
            } ))
        Protocol.methods;
    timeouts = Atomic.make 0;
    overloads = Atomic.make 0;
    rejected = Atomic.make 0;
    batches = Atomic.make 0;
    obs_timeouts = Bbc_obs.counter "server.timeouts";
    obs_overloads = Bbc_obs.counter "server.overloaded";
    obs_batches = Bbc_obs.counter "server.batches";
    obs_queue_depth = Bbc_obs.gauge "server.queue_depth";
    obs_batch_size = Bbc_obs.histogram "server.batch_size";
  }

let sessions t = t.store
let pending t = Queue.length t.queue
let begin_shutdown t = t.stopping <- true
let draining t = t.stopping
let shutdown_requested t = Atomic.get t.stop_requested

let endpoint t meth = List.assoc meth t.endpoints

let stats_json t =
  let counts =
    List.filter_map
      (fun (m, e) ->
        let s = Atomic.get e.served in
        if s = 0 then None else Some (m, Json.Int s))
      t.endpoints
  in
  let failed =
    List.fold_left (fun acc (_, e) -> acc + Atomic.get e.failed) 0 t.endpoints
  in
  Json.Obj
    [
      ("sessions", Json.Int (Session.count t.store));
      ("queue_depth", Json.Int (Queue.length t.queue));
      ("served", Json.Obj counts);
      ("errors", Json.Int failed);
      ("timeouts", Json.Int (Atomic.get t.timeouts));
      ("overloaded", Json.Int (Atomic.get t.overloads));
      ("rejected", Json.Int (Atomic.get t.rejected));
      ("batches", Json.Int (Atomic.get t.batches));
    ]

let env t =
  {
    Handlers.sessions = t.store;
    now = t.cfg.now;
    stats = (fun () -> stats_json t);
    request_shutdown = (fun () -> Atomic.set t.stop_requested true);
    assign_ids = t.cfg.assign_ids;
  }

(* ---------------------------------------------------------------- *)
(* Admission                                                          *)

let submit t ~client line =
  match Protocol.parse_request line with
  | Error (id, code, msg) ->
      Atomic.incr t.rejected;
      `Reply (Protocol.error ~id code msg)
  | Ok req ->
      if t.stopping then begin
        Atomic.incr t.rejected;
        `Reply (Protocol.error ~id:req.id Protocol.Shutting_down "server is draining")
      end
      else if Queue.length t.queue >= t.cfg.queue_cap then begin
        Atomic.incr t.overloads;
        Bbc_obs.incr t.obs_overloads;
        `Reply
          (Protocol.error ~id:req.id Protocol.Overloaded
             (Printf.sprintf "admission queue full (%d requests)" t.cfg.queue_cap))
      end
      else begin
        let arrival = t.cfg.now () in
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        Queue.add
          {
            p_seq = seq;
            p_client = client;
            p_req = req;
            p_arrival_ns = arrival;
            p_deadline_ns =
              Option.map (fun ms -> arrival + (ms * 1_000_000)) req.deadline_ms;
          }
          t.queue;
        Bbc_obs.set_gauge t.obs_queue_depth (float_of_int (Queue.length t.queue));
        `Queued
      end

(* ---------------------------------------------------------------- *)
(* Batch execution                                                    *)

(* The session a request binds to, or [None] for sessionless requests
   (ping, gen, stats, ...), which form singleton groups and so
   parallelize freely — safe because the session store's structural
   operations are mutex-protected (see {!Session}). *)
let session_key (r : Protocol.request) =
  match Json.member "session" r.params with Some (Json.Str s) -> Some s | _ -> None

let execute_one t env p =
  let e = endpoint t p.p_req.meth in
  let reply =
    match Handlers.handle env p.p_req with
    | Ok result -> Protocol.ok ~id:p.p_req.id result
    | Error (code, msg) ->
        Atomic.incr e.failed;
        Protocol.error ~id:p.p_req.id code msg
  in
  Atomic.incr e.served;
  Bbc_obs.incr e.obs_served;
  Bbc_obs.observe e.obs_latency (t.cfg.now () - p.p_arrival_ns);
  reply

let run_batch t =
  if Queue.is_empty t.queue then []
  else begin
    let now = t.cfg.now () in
    let batch = ref [] in
    while (not (Queue.is_empty t.queue)) && List.length !batch < t.cfg.max_batch do
      batch := Queue.pop t.queue :: !batch
    done;
    let batch = List.rev !batch in
    Bbc_obs.set_gauge t.obs_queue_depth (float_of_int (Queue.length t.queue));
    Bbc_obs.incr t.obs_batches;
    Bbc_obs.observe t.obs_batch_size (List.length batch);
    Atomic.incr t.batches;
    (* Deadline check at dequeue: an expired request is answered with a
       structured timeout and never reaches a worker. *)
    let expired, live =
      List.partition
        (fun p -> match p.p_deadline_ns with Some d -> now > d | None -> false)
        batch
    in
    let timeout_replies =
      List.map
        (fun p ->
          Atomic.incr t.timeouts;
          Bbc_obs.incr t.obs_timeouts;
          ( p.p_seq,
            p.p_client,
            Protocol.error ~id:p.p_req.id Protocol.Timeout
              (Printf.sprintf "deadline of %d ms expired in queue"
                 (Option.value ~default:0 p.p_req.deadline_ms)) ))
        expired
    in
    (* Group by session, preserving first-admission order of groups and
       admission order within each group.  Same-session requests must
       not run concurrently (the Incr context is single-domain state);
       distinct groups are independent and fan out over the pool. *)
    let groups : (string option * pending_req list ref) list ref = ref [] in
    List.iter
      (fun p ->
        let key = session_key p.p_req in
        match
          if key = None then None
          else List.find_opt (fun (k, _) -> k = key) !groups
        with
        | Some (_, rs) -> rs := p :: !rs
        | None -> groups := !groups @ [ (key, ref [ p ]) ])
      live;
    let groups = Array.of_list (List.map (fun (_, rs) -> List.rev !rs) !groups) in
    let results : (int * int * string) list array =
      Array.make (Array.length groups) []
    in
    let env = env t in
    let exec_group g =
      results.(g) <-
        List.map (fun p -> (p.p_seq, p.p_client, execute_one t env p)) groups.(g)
    in
    let ngroups = Array.length groups in
    let jobs =
      min ngroups
        (match t.cfg.jobs with Some j -> max 1 j | None -> Bbc_parallel.default_jobs ())
    in
    if ngroups > 1 && jobs > 1 then
      Bbc_parallel.parallel_for ~jobs ~chunk:1 0 ngroups exec_group
    else Array.iteri (fun g _ -> exec_group g) groups;
    let all = timeout_replies @ List.concat (Array.to_list results) in
    List.sort (fun (a, _, _) (b, _, _) -> compare a b) all
    |> List.map (fun (_, client, reply) -> (client, reply))
  end

let drain t =
  let rec go acc =
    match run_batch t with [] -> List.rev acc | replies -> go (List.rev_append replies acc)
  in
  go []
