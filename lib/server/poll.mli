(** Thin binding to [poll(2)] for the serving event loops.

    {!Unix.select} cannot watch file descriptors numbered past
    [FD_SETSIZE] (1024 on Linux) — a hard wall for a front tier or load
    generator holding thousands of sockets, where the fd {e numbers}
    themselves exceed the range.  [poll] has no such limit.

    The interface is deliberately flat and allocation-free on the hot
    path: the caller owns three parallel arrays (descriptors, interest
    bits, result bits) plus a live count, refills the first [n] slots
    each iteration, and reuses the arrays across calls. *)

val pollin : int
(** Interest/result bit: readable (or peer hung up — a subsequent read
    returns 0, which is how callers detect EOF). *)

val pollout : int
(** Interest/result bit: writable. *)

val pollerr : int
(** Result-only bit: error/hangup/invalid.  Callers should treat the
    descriptor as dead. *)

val poll :
  fds:Unix.file_descr array ->
  events:int array ->
  revents:int array ->
  n:int ->
  timeout_ms:int ->
  int
(** Wait until one of the first [n] descriptors matches its interest
    bits or [timeout_ms] elapses ([0] = return immediately, [-1] =
    block).  Writes result bits into [revents.(0..n-1)] and returns the
    number of ready descriptors (0 on timeout — EINTR is reported as a
    timeout).  The OCaml runtime lock is released for the duration of
    the wait.

    Raises [Invalid_argument] if [n] exceeds any array length. *)
