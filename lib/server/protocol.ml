module Json = Bbc.Json

type error_code =
  | Bad_request
  | Unknown_method
  | Unknown_session
  | Bad_params
  | Timeout
  | Overloaded
  | Session_limit
  | Shutting_down
  | Internal

let code_string = function
  | Bad_request -> "bad_request"
  | Unknown_method -> "unknown_method"
  | Unknown_session -> "unknown_session"
  | Bad_params -> "bad_params"
  | Timeout -> "timeout"
  | Overloaded -> "overloaded"
  | Session_limit -> "session_limit"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

type request = {
  id : Json.t;
  meth : string;
  params : Json.t;
  deadline_ms : int option;
}

let methods =
  [
    "apply_move";
    "best_response";
    "close_session";
    "config";
    "cost";
    "gen";
    "instance";
    "load_instance";
    "ping";
    "run_unit";
    "shutdown";
    "stable";
    "stats";
    "step_dynamics";
  ]

let parse_request line =
  match Json.of_string line with
  | Error e -> Error (Json.Null, Bad_request, "malformed JSON: " ^ e)
  | Ok v -> (
      let id = Option.value ~default:Json.Null (Json.member "id" v) in
      match v with
      | Json.Obj _ -> (
          match Json.member "method" v with
          | Some (Json.Str meth) -> (
              if not (List.mem meth methods) then
                Error (id, Unknown_method, Printf.sprintf "unknown method %S" meth)
              else
                let params =
                  Option.value ~default:(Json.Obj []) (Json.member "params" v)
                in
                match params with
                | Json.Obj _ -> (
                    match Json.member "deadline_ms" v with
                    | None -> Ok { id; meth; params; deadline_ms = None }
                    | Some d -> (
                        match Json.to_int d with
                        | Some ms when ms >= 0 ->
                            Ok { id; meth; params; deadline_ms = Some ms }
                        | _ ->
                            Error
                              ( id,
                                Bad_request,
                                "deadline_ms must be a non-negative integer" )))
                | _ -> Error (id, Bad_request, "params must be an object"))
          | Some _ -> Error (id, Bad_request, "method must be a string")
          | None -> Error (id, Bad_request, "missing method"))
      | _ -> Error (id, Bad_request, "request must be a JSON object"))

let ok ~id result = Json.to_string (Json.Obj [ ("id", id); ("ok", result) ])

let error ~id code message =
  Json.to_string
    (Json.Obj
       [
         ("id", id);
         ( "error",
           Json.Obj
             [ ("code", Json.Str (code_string code)); ("message", Json.Str message) ]
         );
       ])
