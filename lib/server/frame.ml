type t = Query of int * string | Answer of int * string | Stop

let encode = function
  | Query (token, line) -> Printf.sprintf "Q %d %s\n" token line
  | Answer (token, line) -> Printf.sprintf "A %d %s\n" token line
  | Stop -> "S\n"

let decode_tagged line =
  (* "<tag> <token> <payload>"; the payload may contain spaces. *)
  match String.index_from_opt line 2 ' ' with
  | None -> Error (Printf.sprintf "frame %S lacks a payload" line)
  | Some sp -> (
      match int_of_string_opt (String.sub line 2 (sp - 2)) with
      | None -> Error (Printf.sprintf "frame %S has a malformed token" line)
      | Some token ->
          Ok (token, String.sub line (sp + 1) (String.length line - sp - 1)))

let decode line =
  if line = "S" then Ok Stop
  else if String.length line >= 4 && line.[1] = ' ' then
    match line.[0] with
    | 'Q' -> Result.map (fun (t, p) -> Query (t, p)) (decode_tagged line)
    | 'A' -> Result.map (fun (t, p) -> Answer (t, p)) (decode_tagged line)
    | c -> Error (Printf.sprintf "unknown frame tag %C" c)
  else Error (Printf.sprintf "malformed frame %S" line)
