(** Request scheduler: bounded admission queue, deadline enforcement,
    backpressure, and batch execution on the {!Bbc_parallel} domain
    pool.

    {1 Life of a request}

    {!submit} parses a raw line in the transport thread.  Malformed
    requests, unknown methods, overload ([queue depth >= queue_cap] —
    the backpressure high-water mark) and post-shutdown admissions are
    answered immediately; everything else is queued.  {!run_batch}
    drains up to [max_batch] queued requests, expires the ones whose
    [deadline_ms] has passed (structured [timeout] error — an expired
    request never occupies a worker), groups the rest {b by session}
    (a session's {!Bbc.Incr} context is single-domain state, so
    same-session requests execute sequentially in admission order
    while distinct sessions fan out over the pool), executes, and
    returns responses in admission order.

    {1 Determinism}

    Responses depend only on request payloads and per-session admission
    order, never on the pool width — the engine's analogue of
    {!Bbc_parallel}'s jobs-invariance.  With [jobs = 1], execution
    order itself is deterministic (groups in first-admission order),
    which the cram tests rely on.

    {1 Observability}

    Exact scheduler counters (served per endpoint, timeouts, overload
    rejections, batches) are plain atomics served by the [stats]
    endpoint; latency histograms ([server.latency.<method>], log2
    buckets, queue wait included) and mirror counters flow through
    {!Bbc_obs} for [--metrics] / [--trace-out]. *)

type config = {
  queue_cap : int;  (** admission queue bound; default 256 *)
  max_batch : int;  (** requests drained per batch; default 64 *)
  jobs : int option;  (** pool width; [None] = {!Bbc_parallel.default_jobs} *)
  session_cap : int;  (** live-session bound; default 1024 *)
  session_ttl_ms : int;
      (** idle TTL for at-capacity session eviction (see {!Session.add});
          default 10 min, [0] disables eviction *)
  now : unit -> int;  (** monotonic ns; injectable for deadline tests *)
  assign_ids : bool;
      (** honor front-minted ["_session"] ids on session creation;
          [false] (the default) everywhere except sharded workers *)
}

val default_config : unit -> config

type t

val create : config -> t

val submit : t -> client:int -> string -> [ `Queued | `Reply of string ]
(** Admit one raw request line from connection [client].  [`Reply] is an
    immediate response (parse error, unknown method, overload,
    shutting down) the transport must deliver itself. *)

val run_batch : t -> (int * string) list
(** Execute one batch; [(client, response line)] in admission order.
    Empty when nothing is queued. *)

val pending : t -> int
(** Current admission-queue depth. *)

val begin_shutdown : t -> unit
(** Stop admitting: subsequent {!submit}s get [shutting_down].  Queued
    work is kept — drain it with {!drain} or repeated {!run_batch}. *)

val draining : t -> bool

val shutdown_requested : t -> bool
(** True once a [shutdown] request was executed (the endpoint's hook);
    the transport loop polls this to begin its graceful exit. *)

val drain : t -> (int * string) list
(** Run batches until the queue is empty (responses in admission
    order).  Used on graceful shutdown. *)

val sessions : t -> Session.store

val stats_json : t -> Bbc.Json.t
(** The [stats] endpoint's payload: live session count, queue depth,
    per-endpoint served counts, timeouts, overload rejections, error
    count, batches executed. *)
