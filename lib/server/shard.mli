(** Session-id sharding for the multi-worker front tier.

    Every request naming a session is routed to worker
    [of_session ~workers id]; because the function is pure and stable
    across runs, processes and OCaml versions (FNV-1a, not the
    seed-randomizable [Hashtbl.hash]), a session created on one worker
    is found there by every later request, with no shared routing
    table.  New sessions get their id minted {e by the front} so the
    worker choice is already determined by the hash at creation time. *)

val fnv1a64 : string -> int64
(** 64-bit FNV-1a of the bytes of the string.  Deterministic. *)

val of_session : workers:int -> string -> int
(** Worker index in [0, workers) for this session id.  The empty
    string (used for requests that should name a session but do not)
    maps to a fixed worker, which then produces the canonical
    missing-parameter error.  Raises [Invalid_argument] when
    [workers < 1]. *)

val mint : int -> string
(** ["s<counter>"] — the session-id format shared with the
    single-process engine, so clients observe the same namespace in
    both modes. *)
