(** Server-side session store.

    A session owns one loaded/generated instance, its current
    configuration, and — when the incremental engine is enabled — a
    persistent {!Bbc.Incr} evaluation context, so repeated [cost] /
    [best_response] / [stable] / [step_dynamics] requests against the
    same session hit the version-counter caches instead of recomputing
    shortest paths from scratch.

    Contexts are single-domain mutable state; the scheduler therefore
    serializes all requests that name the same session onto one worker
    per batch (see {!Engine}).  Different sessions are independent and
    run concurrently.

    The {!store} itself {e is} domain-safe: creation, lookup, removal
    and counting are mutex-protected, because session-creating and
    -destroying requests ([gen], [load_instance], [close_session])
    execute as independent groups on the domain pool and may run
    concurrently with each other and with lookups. *)

type t = {
  id : string;  (** ["s1"], ["s2"], … — deterministic creation order *)
  instance : Bbc.Instance.t;
  mutable config : Bbc.Config.t;
  ctx : Bbc.Incr.ctx option;
      (** [None] iff the incremental engine was disabled at creation. *)
  mutable walk_index : int;  (** round-robin activations performed *)
  mutable walk_deviations : int;
  mutable walk_quiet : int;  (** trailing activations without a move *)
  mutable last_used_ns : int;
}

val set_config : t -> Bbc.Config.t -> unit
(** Update the configuration and re-sync the context (per-player diff
    via [Incr.ensure]). *)

val node_cost : ?objective:Bbc.Objective.t -> t -> int -> int
(** Cached when a context is present, from-scratch otherwise —
    bit-identical either way. *)

val all_costs : ?objective:Bbc.Objective.t -> t -> int array

type store

val create_store : ?capacity:int -> ?ttl_ns:int -> unit -> store
(** [capacity] defaults to 1024 live sessions.  [ttl_ns] (default
    10 minutes) is the idle TTL used by at-capacity eviction in {!add};
    [0] disables eviction, in which case capacity is only recovered by
    explicit [close_session]. *)

val add :
  ?id:string ->
  store ->
  now_ns:int ->
  Bbc.Instance.t ->
  Bbc.Config.t ->
  (t, string) result
(** Mint a fresh session (owning a new context when the incremental
    engine is enabled).  When the store is full, sessions idle longer
    than the TTL (by [last_used_ns]) are evicted first; [Error] only if
    the store is still at capacity afterwards, so abandoned sessions
    cannot exhaust the budget forever.

    [id] forces the session id instead of minting one — used by sharded
    workers, where the front tier mints ids so that the {!Shard} hash
    determines worker placement before the session exists.  [Error] if
    the id is already live. *)

val find : store -> string -> t option
val remove : store -> string -> bool
val count : store -> int
