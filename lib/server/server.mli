(** Transport loop of [bbc serve]: a single-threaded poll(2) loop over
    any number of listeners (Unix-domain and/or TCP — see {!Net}), or
    stdin/stdout in {!Stdio} mode, that reads line-delimited requests,
    admits them through {!Engine}, runs one batch per iteration, and
    writes responses back in admission order.  (The multi-process
    variant that shards sessions over worker processes is {!Front}.)

    {1 Lifecycle}

    SIGINT/SIGTERM (or an executed [shutdown] request) flips the loop
    into draining: the listeners close, new admissions are answered
    [shutting_down], every already-admitted request is executed and its
    response delivered, and {!run} returns — the caller then flushes
    metrics/trace sinks and exits 0.  In {!Stdio} mode EOF on stdin
    triggers the same drain.

    The loop never blocks on computation: batches run on the
    {!Bbc_parallel} pool via {!Engine.run_batch} between poll wake-ups,
    so accepting and reading stay responsive while workers evaluate.
    poll rather than select because select rejects any fd {e number}
    at or above [FD_SETSIZE] (1024) — a wall the load generator's
    "thousands of connections" target crosses immediately. *)

type mode =
  | Listen of Net.listener list
      (** serve these already-bound listeners; {!run} takes over their
          lifecycle and closes them on exit *)
  | Stdio  (** one implicit connection on stdin/stdout (cram tests) *)

val run : ?on_ready:(unit -> unit) -> engine:Engine.config -> mode -> unit
(** Serve until shutdown; blocks.  [on_ready] fires once the transport
    is accepting — used by the bench harness and scripts to sequence
    the load generator (listeners are bound by the caller, so ephemeral
    TCP ports are already resolved).  Signal handlers for SIGINT /
    SIGTERM are installed for the duration of the call.

    Per-connection buffers are bounded: a request line above 8 MiB is
    answered with [bad_request] and the connection closed, and a client
    that stops reading its responses is dropped once its pending output
    passes 256 MiB. *)
