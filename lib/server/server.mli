(** Transport loop of [bbc serve]: a single-threaded [select] loop over
    a Unix-domain listen socket (or stdin/stdout in {!Stdio} mode) that
    reads line-delimited requests, admits them through {!Engine}, runs
    one batch per iteration, and writes responses back in admission
    order.

    {1 Lifecycle}

    SIGINT/SIGTERM (or an executed [shutdown] request) flips the loop
    into draining: the listen socket closes, new admissions are
    answered [shutting_down], every already-admitted request is
    executed and its response delivered, and {!run} returns — the
    caller then flushes metrics/trace sinks and exits 0.  In {!Stdio}
    mode EOF on stdin triggers the same drain.

    The loop never blocks on computation: batches run on the
    {!Bbc_parallel} pool via {!Engine.run_batch} between [select]
    wake-ups, so accepting and reading stay responsive while workers
    evaluate. *)

type mode =
  | Socket of string  (** listen on this Unix-domain socket path *)
  | Stdio  (** one implicit connection on stdin/stdout (cram tests) *)

val run : ?on_ready:(unit -> unit) -> engine:Engine.config -> mode -> unit
(** Serve until shutdown; blocks.  [on_ready] fires once the transport
    is accepting (socket bound and listening) — used by the in-process
    bench harness to sequence the load generator.  Signal handlers for
    SIGINT/SIGTERM are installed for the duration of the call.  A stale
    socket file at the path (one that refuses connections) is replaced;
    if a live server still answers on it, raises [Failure] instead of
    stealing the path.

    Per-connection buffers are bounded: a request line above 8 MiB is
    answered with [bad_request] and the connection closed, and a client
    that stops reading its responses is dropped once its pending output
    passes 256 MiB. *)
