(** Closed-loop load generator for [bbc serve], over Unix-domain or TCP
    endpoints.

    A setup connection creates [sessions] identical sessions ([gen] on
    the same {!Bbc.Catalog} construction — on a sharded server each
    lands on its own worker, so multiple sessions spread load over the
    shards).  The load phase then opens [conns] concurrent connections
    and drives them all from a {b single-threaded poll(2) event loop}
    — one OS thread regardless of connection count, which is what lets
    the generator hold thousands of connections open (a
    thread-per-client design dies at a few hundred).  Each connection
    is closed-loop: one request in flight, the next issued when the
    response lands, so concurrency equals the connection count.

    Besides throughput and latency quantiles, the run cross-checks
    {b consistency}: sessions are never mutated and built identically,
    so every response to the same (method, node) query — across all
    connections, interleavings, and worker shards — must be
    byte-identical.  Any divergence (or any unparseable / misdelivered
    response) is a protocol error; the soak gate in
    scripts/check_server.sh requires zero. *)

type method_stats = {
  meth : string;
  count : int;
  m_p50_ms : float;
  m_p99_ms : float;
}

type summary = {
  conns : int;
  sessions : int;
  requests : int;  (** responses received across all connections *)
  errors : int;  (** structured error responses *)
  protocol_errors : int;  (** unparseable/mismatched/inconsistent responses *)
  elapsed_s : float;
  req_per_s : float;
  p50_ms : float;
  p99_ms : float;
  by_method : method_stats list;
  consistent : bool;  (** identical answers for identical queries *)
}

val summary_to_json : summary -> Bbc.Json.t

val run :
  endpoint:Net.endpoint ->
  conns:int ->
  total:int ->
  ?sessions:int ->
  ?name:string ->
  ?n:int ->
  ?deadline_ms:int ->
  ?duration_s:float ->
  unit ->
  (summary, string) result
(** Run the workload: [total] requests spread over [conns] concurrent
    closed-loop connections against [sessions] (default 1) fresh
    sessions built from catalog construction [name] (default ["ring"])
    of size [n] (default 12).  [deadline_ms], when given, is attached
    to every request (timeout responses count as [errors], not
    protocol errors).  [duration_s] stops issuing new requests once the
    wall clock passes it, whichever of the two budgets runs out first —
    used by the nightly soak.  [Error _] means the harness itself
    failed (connect or session setup), not that the server
    misbehaved. *)

val request_shutdown : endpoint:Net.endpoint -> (unit, string) result
(** Send a [shutdown] request on a fresh connection and wait for its
    acknowledgement. *)
