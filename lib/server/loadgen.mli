(** Closed-loop multi-client load generator for [bbc serve].

    Opens one setup connection to create a shared session ([gen] on a
    {!Bbc.Catalog} construction), then runs [clients] OS threads, each
    with its own connection, issuing [requests] back-to-back read-only
    queries (a fixed cost / best_response / stable mix over the shared
    session).  Being closed-loop, each thread waits for a response
    before sending the next request, so concurrency equals the client
    count.

    Besides throughput and latency quantiles, the run cross-checks
    {b consistency}: the shared session is never mutated, so every
    response to the same (method, node) query — across all clients and
    all interleavings — must be byte-identical.  Any divergence (or
    any unparseable / misdelivered response) is a protocol error; the
    soak gate in scripts/check_server.sh requires zero. *)

type method_stats = {
  meth : string;
  count : int;
  m_p50_ms : float;
  m_p99_ms : float;
}

type summary = {
  clients : int;
  requests : int;  (** responses received across all clients *)
  errors : int;  (** structured error responses *)
  protocol_errors : int;  (** unparseable/mismatched/inconsistent responses *)
  elapsed_s : float;
  req_per_s : float;
  p50_ms : float;
  p99_ms : float;
  by_method : method_stats list;
  consistent : bool;  (** identical answers for identical queries *)
}

val summary_to_json : summary -> Bbc.Json.t

val run :
  socket:string ->
  clients:int ->
  requests:int ->
  ?name:string ->
  ?n:int ->
  ?deadline_ms:int ->
  unit ->
  (summary, string) result
(** Run the workload: [requests] requests per client against a fresh
    shared session built from catalog construction [name] (default
    ["ring"]) of size [n] (default 12).  [deadline_ms], when given, is
    attached to every request (timeout responses count as [errors],
    not protocol errors).  [Error _] means the harness itself failed
    (connect or session setup), not that the server misbehaved. *)

val request_shutdown : socket:string -> (unit, string) result
(** Send a [shutdown] request on a fresh connection and wait for its
    acknowledgement. *)
