(** Transport endpoints shared by the server, the front tier and the
    load generator: Unix-domain socket paths and TCP host:port pairs,
    with the listener lifecycle (bind/listen/accept/cleanup) in one
    place so every component treats stale sockets, [SO_REUSEADDR] and
    [TCP_NODELAY] identically. *)

type endpoint =
  | Unix_path of string  (** Unix-domain socket at this path *)
  | Tcp of string * int  (** host, port *)

val endpoint_to_string : endpoint -> string
(** ["unix:PATH"] or ["tcp:HOST:PORT"]. *)

val parse_tcp : string -> (string * int, string) result
(** Parse a ["HOST:PORT"] spec (host defaults to 127.0.0.1 when the
    spec is just [":PORT"] or ["PORT"]).  Port 0 asks the kernel for a
    free port — {!listen_tcp} reports the resolved one. *)

type listener = { l_fd : Unix.file_descr; l_endpoint : endpoint }

val listen_unix : ?backlog:int -> string -> listener
(** Bind and listen on a Unix-domain socket path, non-blocking.  A file
    already at the path is connect-probed first: a live server answering
    on it raises [Failure] (never steal a running daemon's socket); a
    stale file from a crashed server is unlinked and replaced. *)

val listen_tcp : ?backlog:int -> host:string -> port:int -> unit -> listener
(** Bind and listen on [host:port] with [SO_REUSEADDR], non-blocking.
    [port = 0] binds an ephemeral port; the listener's endpoint carries
    the resolved one.  Raises [Failure] on resolution or bind errors. *)

val accept : listener -> Unix.file_descr option
(** Accept one pending connection, non-blocking ([None] when the queue
    is empty).  TCP connections get [TCP_NODELAY] — the protocol is
    small request/response lines, where Nagle costs milliseconds. *)

val close_listener : listener -> unit
(** Close the listen fd; for Unix-domain listeners also unlink the
    socket path.  Never raises. *)

val connect : endpoint -> (Unix.file_descr, string) result
(** Client-side blocking connect ([TCP_NODELAY] set on TCP).  The
    returned descriptor is in blocking mode; callers running event
    loops set non-blocking themselves. *)
