module Json = Bbc.Json

type env = {
  sessions : Session.store;
  now : unit -> int;
  stats : unit -> Json.t;
  request_shutdown : unit -> unit;
  assign_ids : bool;
}

let ( let* ) = Result.bind

let fail code msg = Error (code, msg)

(* ---------------------------------------------------------------- *)
(* Parameter accessors                                               *)

let opt_int params name default =
  match Json.member name params with
  | None -> Ok default
  | Some v -> (
      match Json.to_int v with
      | Some i -> Ok i
      | None ->
          fail Protocol.Bad_params (Printf.sprintf "param %S must be an integer" name))

let req_int params name =
  match Json.member name params with
  | None -> fail Protocol.Bad_params (Printf.sprintf "missing param %S" name)
  | Some v -> (
      match Json.to_int v with
      | Some i -> Ok i
      | None ->
          fail Protocol.Bad_params (Printf.sprintf "param %S must be an integer" name))

let req_str params name =
  match Json.member name params with
  | Some (Json.Str s) -> Ok s
  | Some _ -> fail Protocol.Bad_params (Printf.sprintf "param %S must be a string" name)
  | None -> fail Protocol.Bad_params (Printf.sprintf "missing param %S" name)

let objective params =
  match Json.member "objective" params with
  | None -> Ok Bbc.Objective.Sum
  | Some (Json.Str "sum") -> Ok Bbc.Objective.Sum
  | Some (Json.Str "max") -> Ok Bbc.Objective.Max
  | Some _ -> fail Protocol.Bad_params "param \"objective\" must be \"sum\" or \"max\""

let session env params =
  let* id = req_str params "session" in
  match Session.find env.sessions id with
  | Some s ->
      s.Session.last_used_ns <- env.now ();
      Ok s
  | None -> fail Protocol.Unknown_session (Printf.sprintf "no session %S" id)

let node_in_range s params =
  let n = Bbc.Instance.n s.Session.instance in
  let* u = req_int params "node" in
  if u >= 0 && u < n then Ok u
  else fail Protocol.Bad_params (Printf.sprintf "node %d out of range [0,%d)" u n)

(* ---------------------------------------------------------------- *)
(* Session construction                                               *)

let session_summary (s : Session.t) =
  Json.Obj
    [
      ("session", Json.Str s.id);
      ("n", Json.Int (Bbc.Instance.n s.instance));
      ("feasible", Json.Bool (Bbc.Config.feasible s.instance s.config));
      ("incremental", Json.Bool (Option.is_some s.ctx));
    ]

(* In sharded mode the front tier mints the session id (so the shard
   hash fixes worker placement up front) and smuggles it in as the
   "_session" param; a worker honors it, a standalone server ignores it
   — external clients never get to choose their own ids. *)
let add_session env params instance config =
  let id =
    if env.assign_ids then
      match Json.member "_session" params with Some (Json.Str s) -> Some s | _ -> None
    else None
  in
  match Session.add ?id env.sessions ~now_ns:(env.now ()) instance config with
  | Ok s -> Ok (session_summary s)
  | Error msg -> fail Protocol.Session_limit msg

let gen env params =
  let* name = req_str params "name" in
  let d = Bbc.Catalog.default_params in
  let* n = opt_int params "n" d.n in
  let* k = opt_int params "k" d.k in
  let* h = opt_int params "h" d.h in
  let* l = opt_int params "l" d.l in
  let* seed = opt_int params "seed" d.seed in
  match Bbc.Catalog.build name { n; k; h; l; seed } with
  | Ok (instance, config) -> add_session env params instance config
  | Error msg -> fail Protocol.Bad_params msg

let load_instance env params =
  let decode what of_json of_any v =
    match v with
    | Json.Str text -> of_any text
    | Json.Obj _ -> of_json v
    | _ -> Error (Printf.sprintf "param %S must be an object or a string" what)
  in
  match Json.member "instance" params with
  | None -> fail Protocol.Bad_params "missing param \"instance\""
  | Some iv -> (
      match
        decode "instance" Bbc.Codec.instance_of_json Bbc.Codec.instance_of_any_string iv
      with
      | Error msg -> fail Protocol.Bad_params ("instance: " ^ msg)
      | Ok instance -> (
          let* config =
            match Json.member "config" params with
            | None -> Ok (Bbc.Config.empty (Bbc.Instance.n instance))
            | Some cv -> (
                match
                  decode "config" Bbc.Codec.config_of_json Bbc.Codec.config_of_any_string
                    cv
                with
                | Error msg -> fail Protocol.Bad_params ("config: " ^ msg)
                | Ok c ->
                    if Bbc.Config.n c <> Bbc.Instance.n instance then
                      fail Protocol.Bad_params
                        "configuration size does not match instance"
                    else Ok c)
          in
          add_session env params instance config))

(* ---------------------------------------------------------------- *)
(* Queries                                                            *)

let cost env params =
  let* s = session env params in
  let* objective = objective params in
  match Json.member "node" params with
  | Some _ ->
      let* u = node_in_range s params in
      Ok
        (Json.Obj
           [ ("node", Json.Int u); ("cost", Json.Int (Session.node_cost ~objective s u)) ])
  | None ->
      let costs = Session.all_costs ~objective s in
      let social = Array.fold_left ( + ) 0 costs in
      Ok (Bbc.Codec.costs_to_json ~objective ~social costs)

let best_response env params =
  let* s = session env params in
  let* objective = objective params in
  let* u = node_in_range s params in
  let r = Bbc.Best_response.exact ~objective ?ctx:s.ctx s.instance s.config u in
  let current = Session.node_cost ~objective s u in
  Ok
    (Json.Obj
       [
         ("node", Json.Int u);
         ("strategy", Json.List (List.map (fun v -> Json.Int v) r.strategy));
         ("cost", Json.Int r.cost);
         ("current", Json.Int current);
         ("improving", Json.Bool (r.cost < current));
       ])

let stable env params =
  let* s = session env params in
  let* objective = objective params in
  if not (Bbc.Config.feasible s.instance s.config) then
    Ok (Json.Obj [ ("stable", Json.Bool false); ("feasible", Json.Bool false) ])
  else
    match Bbc.Stability.find_deviation ~objective ?ctx:s.ctx s.instance s.config with
    | None -> Ok (Json.Obj [ ("stable", Json.Bool true); ("feasible", Json.Bool true) ])
    | Some d ->
        Ok
          (Json.Obj
             [
               ("stable", Json.Bool false);
               ("feasible", Json.Bool true);
               ( "deviation",
                 Json.Obj
                   [
                     ("node", Json.Int d.node);
                     ("current", Json.Int d.current_cost);
                     ("cost", Json.Int d.better.cost);
                     ( "strategy",
                       Json.List (List.map (fun v -> Json.Int v) d.better.strategy) );
                   ] );
             ])

let apply_move env params =
  let* s = session env params in
  let* u = node_in_range s params in
  let* targets =
    match Json.member "targets" params with
    | Some v -> (
        match Json.int_list v with
        | Some l -> Ok l
        | None -> fail Protocol.Bad_params "param \"targets\" must be an integer list")
    | None -> fail Protocol.Bad_params "missing param \"targets\""
  in
  match Bbc.Config.with_strategy s.config u targets with
  | exception Invalid_argument msg -> fail Protocol.Bad_params msg
  | config' ->
      if not (Bbc.Config.feasible s.instance config') then
        fail Protocol.Bad_params
          (Printf.sprintf "strategy exceeds node %d's budget" u)
      else begin
        Session.set_config s config';
        (* A manual rewire restarts convergence detection for the
           session's round-robin walk. *)
        s.walk_quiet <- 0;
        Ok
          (Json.Obj
             [ ("applied", Json.Bool true); ("cost", Json.Int (Session.node_cost s u)) ])
      end

(* One round-robin best-response activation, mirroring
   [Dynamics.activate] under [Exact_best_response]: the node rewires iff
   the exact optimum strictly beats its current cost.  The step stream
   (node order, move decisions, adopted strategies, costs) is
   bit-identical to [Dynamics.run ~scheduler:Round_robin] on the same
   start state — the differential test in test_server.ml checks this. *)
let walk_step ~objective (s : Session.t) =
  let n = Bbc.Instance.n s.instance in
  let node = s.walk_index mod n in
  let current = Session.node_cost ~objective s node in
  let best = Bbc.Best_response.exact ~objective ?ctx:s.ctx s.instance s.config node in
  let moved = best.cost < current in
  if moved then begin
    Session.set_config s (Bbc.Config.with_strategy s.config node best.strategy);
    s.walk_deviations <- s.walk_deviations + 1;
    s.walk_quiet <- 0
  end
  else s.walk_quiet <- s.walk_quiet + 1;
  s.walk_index <- s.walk_index + 1;
  (node, moved, (if moved then best.cost else current))

let walk_converged (s : Session.t) =
  let n = Bbc.Instance.n s.instance in
  s.walk_index mod n = 0 && s.walk_quiet >= n

let step_dynamics env params =
  let* s = session env params in
  let* objective = objective params in
  let* steps = opt_int params "steps" 1 in
  if steps < 0 || steps > 1_000_000 then
    fail Protocol.Bad_params "param \"steps\" must be in [0, 1000000]"
  else begin
    let want_trace =
      match Json.member "trace" params with Some (Json.Bool b) -> b | _ -> false
    in
    let trace = ref [] in
    let executed = ref 0 in
    while !executed < steps && not (walk_converged s) do
      let node, moved, cost = walk_step ~objective s in
      if want_trace then
        trace :=
          Json.Obj
            [
              ("index", Json.Int (s.walk_index - 1));
              ("round", Json.Int ((s.walk_index - 1) / Bbc.Instance.n s.instance));
              ("node", Json.Int node);
              ("moved", Json.Bool moved);
              ( "strategy",
                Json.List
                  (List.map (fun v -> Json.Int v) (Bbc.Config.targets s.config node)) );
              ("cost", Json.Int cost);
            ]
          :: !trace;
      incr executed
    done;
    let n = Bbc.Instance.n s.instance in
    let base =
      [
        ("steps", Json.Int !executed);
        ("index", Json.Int s.walk_index);
        ("round", Json.Int (s.walk_index / n));
        ("deviations", Json.Int s.walk_deviations);
        ("converged", Json.Bool (walk_converged s));
      ]
    in
    let fields =
      if want_trace then base @ [ ("trace", Json.List (List.rev !trace)) ] else base
    in
    Ok (Json.Obj fields)
  end

let close_session env params =
  let* id = req_str params "session" in
  Ok (Json.Obj [ ("closed", Json.Bool (Session.remove env.sessions id)) ])

(* Stateless Monte-Carlo unit: decode a trial, run the whole walk, and
   return its summary.  No session is created — the campaign client's
   "session" param is only a shard-routing key for the front tier. *)
let run_unit params =
  let* tv =
    match Json.member "trial" params with
    | Some v -> Ok v
    | None -> fail Protocol.Bad_params "missing param \"trial\""
  in
  let* trial =
    Result.map_error (fun m -> (Protocol.Bad_params, m)) (Bbc.Trial.of_json tv)
  in
  match Bbc.Trial.run trial with
  | Ok s -> Ok (Bbc.Trial.summary_to_json s)
  | Error m -> fail Protocol.Bad_params m

(* ---------------------------------------------------------------- *)

let dispatch env (r : Protocol.request) =
  match r.meth with
  | "ping" -> Ok (Json.Obj [ ("pong", Json.Bool true) ])
  | "gen" -> gen env r.params
  | "load_instance" -> load_instance env r.params
  | "instance" ->
      let* s = session env r.params in
      Ok (Bbc.Codec.instance_to_json s.instance)
  | "config" ->
      let* s = session env r.params in
      Ok (Bbc.Codec.config_to_json s.config)
  | "cost" -> cost env r.params
  | "best_response" -> best_response env r.params
  | "stable" -> stable env r.params
  | "apply_move" -> apply_move env r.params
  | "step_dynamics" -> step_dynamics env r.params
  | "close_session" -> close_session env r.params
  | "run_unit" -> run_unit r.params
  | "stats" -> Ok (env.stats ())
  | "shutdown" ->
      env.request_shutdown ();
      Ok (Json.Obj [ ("stopping", Json.Bool true) ])
  | m -> fail Protocol.Unknown_method (Printf.sprintf "unknown method %S" m)

let handle env r =
  try dispatch env r
  with e -> fail Protocol.Internal (Printexc.to_string e)
