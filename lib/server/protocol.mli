(** Wire protocol of [bbc serve]: line-delimited JSON over a
    Unix-domain socket (or stdin/stdout in [--stdio] mode).

    Requests are single-line JSON objects

    {v {"id":1,"method":"cost","params":{"session":"s1","node":0},"deadline_ms":50} v}

    where [id] is echoed verbatim (any JSON value; [null] when absent),
    [params] defaults to [{}], and [deadline_ms] is an optional
    per-request deadline relative to arrival — requests still queued
    when it expires are answered with a structured [timeout] error
    instead of occupying a worker.

    Responses are [{"id":..,"ok":<result>}] on success and
    [{"id":..,"error":{"code":"..","message":".."}}] on failure.  Error
    codes are the closed set {!error_code}; [overloaded] is the
    backpressure signal (admission queue past its high-water mark) and
    [shutting_down] is returned for requests admitted after a drain
    began. *)

type error_code =
  | Bad_request  (** malformed JSON or missing/ill-typed envelope field *)
  | Unknown_method
  | Unknown_session
  | Bad_params
  | Timeout  (** deadline expired while queued *)
  | Overloaded  (** admission queue at capacity *)
  | Session_limit  (** session store at capacity *)
  | Shutting_down
  | Internal

val code_string : error_code -> string

type request = {
  id : Bbc.Json.t;  (** echoed verbatim; [Null] when absent *)
  meth : string;
  params : Bbc.Json.t;  (** [Obj []] when absent *)
  deadline_ms : int option;
}

val methods : string list
(** Every method the server implements, sorted. *)

val parse_request : string -> (request, Bbc.Json.t * error_code * string) result
(** Parse one request line.  The error carries the request id when one
    could be recovered (so the reply can still be correlated), the code
    ({!Bad_request} or {!Unknown_method}) and a message. *)

val ok : id:Bbc.Json.t -> Bbc.Json.t -> string
(** Success response line (no trailing newline). *)

val error : id:Bbc.Json.t -> error_code -> string -> string
(** Error response line (no trailing newline). *)
