let pollin = 1
let pollout = 2
let pollerr = 4

external poll_fds :
  Unix.file_descr array -> int array -> int array -> int -> int -> int
  = "bbc_poll_fds"

let poll ~fds ~events ~revents ~n ~timeout_ms =
  poll_fds fds events revents n timeout_ms
