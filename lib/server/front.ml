module Json = Bbc.Json

(* One client connection.  [c_order] holds the reorder tokens of every
   admitted-and-routed request in admission order; [c_ready] holds
   responses that came back before their turn.  A response is released
   to [c_outbuf] only when its token reaches the queue head, so answers
   cross worker boundaries without ever reordering on the wire. *)
type conn = {
  c_fd : Unix.file_descr;
  c_inbuf : Buffer.t;
  c_outbuf : Buffer.t;
  mutable c_eof : bool;
  c_order : int Queue.t;
  c_ready : (int, string) Hashtbl.t;
}

(* A [stats] request in flight: one part per worker alive at admission
   time, merged (field-wise sums) when the last part lands. *)
type fanout = {
  f_conn : int;
  f_token : int;  (** the client-facing reorder token *)
  f_id : Json.t;
  mutable f_parts : Json.t list;
  mutable f_missing : int;
}

type pend =
  | Direct of { d_conn : int; d_id : Json.t; d_worker : int }
  | Part of fanout * int  (** worker index *)

type wstate = {
  w_index : int;
  mutable w_pid : int;
  mutable w_fd : Unix.file_descr;
  w_inbuf : Buffer.t;
  w_outbuf : Buffer.t;
  mutable w_eof : bool;
}

type t = {
  wcfg : Engine.config;
  workers : wstate array;
  conns : (int, conn) Hashtbl.t;
  pending : (int, pend) Hashtbl.t;  (** worker-token -> continuation *)
  mutable next_conn : int;
  mutable next_token : int;
  mutable next_session : int;
  mutable stopping : bool;
  mutable respawns : int;
  mutable bad_exits : string list;  (** non-zero worker exits during drain *)
  interrupted : bool Atomic.t;
  mutable shutdown_req : bool;
}

type handle = t

let worker_pids t =
  Array.to_list (Array.map (fun w -> w.w_pid) t.workers)

let request_stop t = Atomic.set t.interrupted true

let chunk = Bytes.create 65536

(* Same per-connection bounds as the single-process transport (see
   server.ml for the rationale). *)
let max_line_bytes = 8 * 1024 * 1024
let max_outbuf_bytes = 256 * 1024 * 1024

(* ---------------------------------------------------------------- *)
(* Response delivery                                                  *)

let push_raw c reply =
  Buffer.add_string c.c_outbuf reply;
  Buffer.add_char c.c_outbuf '\n';
  if Buffer.length c.c_outbuf > max_outbuf_bytes then begin
    Buffer.clear c.c_outbuf;
    c.c_eof <- true
  end

(* Release every response whose turn has come. *)
let release c =
  let continue = ref true in
  while !continue && not (Queue.is_empty c.c_order) do
    let tok = Queue.peek c.c_order in
    match Hashtbl.find_opt c.c_ready tok with
    | Some reply ->
        ignore (Queue.pop c.c_order);
        Hashtbl.remove c.c_ready tok;
        push_raw c reply
    | None -> continue := false
  done

let deliver_ready st conn_id token reply =
  match Hashtbl.find_opt st.conns conn_id with
  | None -> ()  (* client hung up before its response was ready *)
  | Some c ->
      Hashtbl.replace c.c_ready token reply;
      release c

(* ---------------------------------------------------------------- *)
(* Stats merging                                                      *)

let rec merge_values a b =
  match (a, b) with
  | Json.Int x, Json.Int y -> Json.Int (x + y)
  | Json.Obj xs, Json.Obj ys -> Json.Obj (merge_fields xs ys)
  | _ -> a

and merge_fields xs ys =
  List.map
    (fun (k, v) ->
      match List.assoc_opt k ys with
      | Some w -> (k, merge_values v w)
      | None -> (k, v))
    xs
  @ List.filter (fun (k, _) -> not (List.mem_assoc k xs)) ys

let front_fields st =
  [
    ("workers", Json.Int (Array.length st.workers));
    ("respawns", Json.Int st.respawns);
    ("connections", Json.Int (Hashtbl.length st.conns));
  ]

let finish_fanout st f =
  let merged =
    List.fold_left
      (fun acc part -> match acc with None -> Some part | Some a -> Some (merge_values a part))
      None f.f_parts
  in
  let fields =
    match merged with Some (Json.Obj l) -> l @ front_fields st | _ -> front_fields st
  in
  deliver_ready st f.f_conn f.f_token (Protocol.ok ~id:f.f_id (Json.Obj fields))

(* ---------------------------------------------------------------- *)
(* Pending resolution                                                 *)

let resolve st token reply =
  match Hashtbl.find_opt st.pending token with
  | None -> ()  (* duplicate answer from a confused worker: drop *)
  | Some p -> (
      Hashtbl.remove st.pending token;
      match p with
      | Direct d -> deliver_ready st d.d_conn token reply
      | Part (f, _) ->
          (match Json.of_string reply with
          | Ok v -> (
              match Json.member "ok" v with
              | Some part -> f.f_parts <- part :: f.f_parts
              | None -> ())
          | Error _ -> ());
          f.f_missing <- f.f_missing - 1;
          if f.f_missing = 0 then finish_fanout st f)

(* A pend whose worker died: Direct gets a structured internal error;
   a fanout part is simply counted as missing. *)
let fail_pend st token p =
  Hashtbl.remove st.pending token;
  match p with
  | Direct d ->
      deliver_ready st d.d_conn token
        (Protocol.error ~id:d.d_id Protocol.Internal
           "worker died before answering; session state on its shard is lost")
  | Part (f, _) ->
      f.f_missing <- f.f_missing - 1;
      if f.f_missing = 0 then finish_fanout st f

(* ---------------------------------------------------------------- *)
(* Worker lifecycle                                                   *)

let write_all fd data =
  let len = String.length data in
  let off = ref 0 in
  (try Unix.clear_nonblock fd with Unix.Unix_error (_, _, _) -> ());
  try
    while !off < len do
      let n = Unix.write_substring fd data !off (len - !off) in
      if n <= 0 then raise Exit;
      off := !off + n
    done
  with Exit | Unix.Unix_error (_, _, _) -> ()

let reap ?(timeout_s = 5.0) pid =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let kill_and_wait () =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
    match Unix.waitpid [] pid with
    | _, status -> status
    | exception Unix.Unix_error (_, _, _) -> Unix.WSIGNALED Sys.sigkill
  in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () >= deadline then kill_and_wait ()
        else begin
          ignore (Unix.select [] [] [] 0.01);
          go ()
        end
    | _, status -> status
    | exception Unix.Unix_error (ECHILD, _, _) -> Unix.WEXITED 0
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> Unix.WEXITED 0
  in
  go ()

let status_string = function
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

(* EOF or a corrupt frame on a worker pipe: fail its in-flight
   requests, reap it, and (outside a drain) fork a replacement onto the
   same shard.  Sessions that lived there are gone — later requests for
   them get [unknown_session] from the fresh engine, which is the
   documented crash policy. *)
let worker_died st ~listeners w =
  if not w.w_eof then begin
    w.w_eof <- true;
    (try Unix.close w.w_fd with Unix.Unix_error (_, _, _) -> ());
    Buffer.clear w.w_inbuf;
    Buffer.clear w.w_outbuf;
    let status = reap w.w_pid in
    if st.stopping && status <> Unix.WEXITED 0 then
      st.bad_exits <-
        Printf.sprintf "worker %d (pid %d) %s" w.w_index w.w_pid
          (status_string status)
        :: st.bad_exits;
    let affected =
      Hashtbl.fold
        (fun token p acc ->
          match p with
          | Direct d when d.d_worker = w.w_index -> (token, p) :: acc
          | Part (_, wi) when wi = w.w_index -> (token, p) :: acc
          | _ -> acc)
        st.pending []
    in
    List.iter (fun (token, p) -> fail_pend st token p) affected;
    if not st.stopping then begin
      let close_in_child =
        List.map (fun l -> l.Net.l_fd) listeners
        @ Hashtbl.fold (fun _ c acc -> c.c_fd :: acc) st.conns []
        @ Array.fold_left
            (fun acc o -> if o.w_eof then acc else o.w_fd :: acc)
            [] st.workers
      in
      let fresh = Worker.spawn ~close_in_child ~engine:st.wcfg () in
      w.w_pid <- fresh.Worker.w_pid;
      w.w_fd <- fresh.Worker.w_fd;
      w.w_eof <- false;
      st.respawns <- st.respawns + 1
    end
  end

let send st wi token line =
  let w = st.workers.(wi) in
  if w.w_eof then
    (* Only reachable when a worker is down for good (draining): answer
       for it rather than leave the token dangling. *)
    resolve st token
      (Protocol.error ~id:Json.Null Protocol.Internal "worker unavailable")
  else Buffer.add_string w.w_outbuf (Frame.encode (Frame.Query (token, line)))

let flush_worker st ~listeners w =
  let data = Buffer.contents w.w_outbuf in
  let len = String.length data in
  if len > 0 then
    match Unix.write_substring w.w_fd data 0 len with
    | written ->
        if written = len then Buffer.clear w.w_outbuf
        else if written > 0 then begin
          let rest = String.sub data written (len - written) in
          Buffer.clear w.w_outbuf;
          Buffer.add_string w.w_outbuf rest
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> worker_died st ~listeners w

let read_worker st ~listeners w =
  match Unix.read w.w_fd chunk 0 (Bytes.length chunk) with
  | 0 -> worker_died st ~listeners w
  | n -> (
      Buffer.add_subbytes w.w_inbuf chunk 0 n;
      let data = Buffer.contents w.w_inbuf in
      let len = String.length data in
      let start = ref 0 in
      let corrupt = ref false in
      (try
         while not !corrupt do
           let nl = String.index_from data !start '\n' in
           let line = String.sub data !start (nl - !start) in
           start := nl + 1;
           if line <> "" then
             match Frame.decode line with
             | Ok (Frame.Answer (token, reply)) -> resolve st token reply
             | Ok (Frame.Query _ | Frame.Stop) | Error _ ->
                 (* Protocol corruption: answers can no longer be
                    trusted to carry the right token.  Treat the worker
                    as dead (its pendings fail, a fresh one spawns). *)
                 corrupt := true
         done
       with Not_found -> ());
      if !corrupt then begin
        (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
        worker_died st ~listeners w
      end
      else if !start > 0 then begin
        let rest = String.sub data !start (len - !start) in
        Buffer.clear w.w_inbuf;
        Buffer.add_string w.w_inbuf rest
      end)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> worker_died st ~listeners w

(* ---------------------------------------------------------------- *)
(* Admission and routing                                              *)

let take_token st c =
  let tok = st.next_token in
  st.next_token <- tok + 1;
  Queue.add tok c.c_order;
  tok

let fresh_token st =
  let tok = st.next_token in
  st.next_token <- tok + 1;
  tok

let local c token reply =
  Hashtbl.replace c.c_ready token reply;
  release c

let route st conn_id c id wi line =
  let tok = take_token st c in
  Hashtbl.replace st.pending tok (Direct { d_conn = conn_id; d_id = id; d_worker = wi });
  send st wi tok line

(* Rebuild a gen/load_instance request with the front-minted session id
   attached as the "_session" param.  Any "_session" the client sent is
   dropped first: external clients never choose their own ids. *)
let rewrite_with_session (req : Protocol.request) sid =
  let fields =
    match req.params with
    | Json.Obj l -> List.filter (fun (k, _) -> k <> "_session") l
    | _ -> []
  in
  let params = Json.Obj (fields @ [ ("_session", Json.Str sid) ]) in
  let base = [ ("id", req.id); ("method", Json.Str req.meth); ("params", params) ] in
  let base =
    match req.deadline_ms with
    | Some ms -> base @ [ ("deadline_ms", Json.Int ms) ]
    | None -> base
  in
  Json.to_string (Json.Obj base)

let admit st conn_id c line =
  if String.trim line <> "" then
    match Protocol.parse_request line with
    | Error (id, code, msg) ->
        (* Immediate rejections jump the reorder queue, exactly as the
           engine's [`Reply] path does in the single-process server. *)
        push_raw c (Protocol.error ~id code msg)
    | Ok req -> (
        if st.stopping then
          push_raw c
            (Protocol.error ~id:req.id Protocol.Shutting_down "server is draining")
        else
          match req.meth with
          | "ping" ->
              let tok = take_token st c in
              local c tok
                (Protocol.ok ~id:req.id (Json.Obj [ ("pong", Json.Bool true) ]))
          | "shutdown" ->
              st.shutdown_req <- true;
              let tok = take_token st c in
              local c tok
                (Protocol.ok ~id:req.id (Json.Obj [ ("stopping", Json.Bool true) ]))
          | "stats" -> (
              let alive =
                Array.fold_left
                  (fun acc w -> if w.w_eof then acc else w.w_index :: acc)
                  [] st.workers
              in
              let tok = take_token st c in
              match alive with
              | [] ->
                  local c tok
                    (Protocol.ok ~id:req.id (Json.Obj (front_fields st)))
              | alive ->
                  let f =
                    {
                      f_conn = conn_id;
                      f_token = tok;
                      f_id = req.id;
                      f_parts = [];
                      f_missing = List.length alive;
                    }
                  in
                  List.iter
                    (fun wi ->
                      let wtok = fresh_token st in
                      Hashtbl.replace st.pending wtok (Part (f, wi));
                      send st wi wtok line)
                    alive)
          | "gen" | "load_instance" ->
              let sid = Shard.mint st.next_session in
              st.next_session <- st.next_session + 1;
              let wi = Shard.of_session ~workers:(Array.length st.workers) sid in
              route st conn_id c req.id wi (rewrite_with_session req sid)
          | _ ->
              (* Sessionless or malformed-session requests all hash the
                 empty string — any single worker can answer bad_params /
                 unknown_session correctly. *)
              let key =
                match Json.member "session" req.params with
                | Some (Json.Str s) -> s
                | _ -> ""
              in
              let wi = Shard.of_session ~workers:(Array.length st.workers) key in
              route st conn_id c req.id wi line)

(* ---------------------------------------------------------------- *)
(* Client IO                                                          *)

let feed_lines st conn_id c =
  let data = Buffer.contents c.c_inbuf in
  let len = String.length data in
  let start = ref 0 in
  (try
     while true do
       let nl = String.index_from data !start '\n' in
       let line = String.sub data !start (nl - !start) in
       start := nl + 1;
       admit st conn_id c line
     done
   with Not_found -> ());
  if len - !start > max_line_bytes then begin
    Buffer.clear c.c_inbuf;
    push_raw c
      (Protocol.error ~id:Json.Null Protocol.Bad_request
         (Printf.sprintf "request line exceeds %d bytes" max_line_bytes));
    c.c_eof <- true
  end
  else if !start > 0 then begin
    let rest = String.sub data !start (len - !start) in
    Buffer.clear c.c_inbuf;
    Buffer.add_string c.c_inbuf rest
  end

let read_client st conn_id c =
  match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
  | 0 -> c.c_eof <- true
  | n ->
      Buffer.add_subbytes c.c_inbuf chunk 0 n;
      feed_lines st conn_id c
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> c.c_eof <- true

let write_client c =
  let data = Buffer.contents c.c_outbuf in
  let len = String.length data in
  if len > 0 then
    match Unix.write_substring c.c_fd data 0 len with
    | written ->
        if written = len then Buffer.clear c.c_outbuf
        else if written > 0 then begin
          let rest = String.sub data written (len - written) in
          Buffer.clear c.c_outbuf;
          Buffer.add_string c.c_outbuf rest
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
        Buffer.clear c.c_outbuf;
        c.c_eof <- true

let close_conn st conn_id c =
  Hashtbl.remove st.conns conn_id;
  try Unix.close c.c_fd with Unix.Unix_error (_, _, _) -> ()

let sweep st =
  let dead =
    Hashtbl.fold
      (fun conn_id c acc ->
        if c.c_eof && Buffer.length c.c_outbuf = 0 then (conn_id, c) :: acc else acc)
      st.conns []
  in
  List.iter (fun (conn_id, c) -> close_conn st conn_id c) dead

(* ---------------------------------------------------------------- *)
(* Event loop                                                         *)

type slot = Slistener of Net.listener | Sclient of int * conn | Sworker of wstate

let rec accept_loop st l =
  match Net.accept l with
  | Some fd ->
      let conn_id = st.next_conn in
      st.next_conn <- conn_id + 1;
      Hashtbl.replace st.conns conn_id
        {
          c_fd = fd;
          c_inbuf = Buffer.create 256;
          c_outbuf = Buffer.create 256;
          c_eof = false;
          c_order = Queue.create ();
          c_ready = Hashtbl.create 8;
        };
      accept_loop st l
  | None -> ()

let step st ~listeners ~timeout_ms =
  let slots = ref [] in
  List.iter (fun l -> slots := Slistener l :: !slots) listeners;
  Hashtbl.iter
    (fun conn_id c ->
      if (not c.c_eof) || Buffer.length c.c_outbuf > 0 then
        slots := Sclient (conn_id, c) :: !slots)
    st.conns;
  Array.iter (fun w -> if not w.w_eof then slots := Sworker w :: !slots) st.workers;
  let slots = Array.of_list !slots in
  let n = Array.length slots in
  let fds =
    Array.map
      (function
        | Slistener l -> l.Net.l_fd | Sclient (_, c) -> c.c_fd | Sworker w -> w.w_fd)
      slots
  in
  let events =
    Array.map
      (function
        | Slistener _ -> Poll.pollin
        | Sclient (_, c) ->
            (if c.c_eof then 0 else Poll.pollin)
            lor (if Buffer.length c.c_outbuf > 0 then Poll.pollout else 0)
        | Sworker w ->
            Poll.pollin lor if Buffer.length w.w_outbuf > 0 then Poll.pollout else 0)
      slots
  in
  let revents = Array.make n 0 in
  (match Poll.poll ~fds ~events ~revents ~n ~timeout_ms with
  | _ -> ()
  | exception Unix.Unix_error (_, _, _) -> ());
  Array.iteri
    (fun i slot ->
      let r = revents.(i) in
      match slot with
      | Slistener l -> if r land Poll.pollin <> 0 then accept_loop st l
      | Sclient (conn_id, c) ->
          if r land Poll.pollin <> 0 && not c.c_eof then read_client st conn_id c
          else if r land Poll.pollerr <> 0 then c.c_eof <- true
      | Sworker w ->
          if w.w_eof then ()
          else if r land Poll.pollin <> 0 then read_worker st ~listeners w
          else if r land Poll.pollerr <> 0 then worker_died st ~listeners w)
    slots;
  (* Opportunistic flush: frames routed and responses released this
     wake-up were not in anyone's pollout set. *)
  Array.iter
    (fun w ->
      if (not w.w_eof) && Buffer.length w.w_outbuf > 0 then
        flush_worker st ~listeners w)
    st.workers;
  Hashtbl.iter (fun _ c -> if Buffer.length c.c_outbuf > 0 then write_client c) st.conns;
  sweep st

let stop_wanted st = Atomic.get st.interrupted || st.shutdown_req

(* ---------------------------------------------------------------- *)
(* Drain                                                              *)

let drain st listeners =
  st.stopping <- true;
  List.iter Net.close_listener listeners;
  (* Resolve every outstanding token: workers keep executing and the
     loop keeps routing their answers; nothing new is admitted. *)
  let give_up = Unix.gettimeofday () +. 30.0 in
  while Hashtbl.length st.pending > 0 && Unix.gettimeofday () < give_up do
    step st ~listeners:[] ~timeout_ms:50
  done;
  if Hashtbl.length st.pending > 0 then begin
    let leftovers = Hashtbl.fold (fun tok p acc -> (tok, p) :: acc) st.pending [] in
    List.iter (fun (tok, p) -> fail_pend st tok p) leftovers
  end;
  (* Stop frames: each worker drains its engine, flushes, exits 0. *)
  Array.iter
    (fun w ->
      if not w.w_eof then begin
        Buffer.add_string w.w_outbuf (Frame.encode Frame.Stop);
        write_all w.w_fd (Buffer.contents w.w_outbuf);
        Buffer.clear w.w_outbuf;
        (try Unix.close w.w_fd with Unix.Unix_error (_, _, _) -> ());
        w.w_eof <- true
      end)
    st.workers;
  let statuses = Array.map (fun w -> (w, reap ~timeout_s:10.0 w.w_pid)) st.workers in
  (* Flush released responses to clients (bounded budget), then close. *)
  let flush_deadline = Unix.gettimeofday () +. 5.0 in
  let rec flush_clients () =
    let waiting =
      Hashtbl.fold
        (fun _ c acc ->
          if Buffer.length c.c_outbuf > 0 && not c.c_eof then c :: acc else acc)
        st.conns []
    in
    if waiting <> [] && Unix.gettimeofday () < flush_deadline then begin
      List.iter write_client waiting;
      let still =
        List.exists (fun c -> Buffer.length c.c_outbuf > 0 && not c.c_eof) waiting
      in
      if still then begin
        ignore (Unix.select [] [] [] 0.01);
        flush_clients ()
      end
    end
  in
  flush_clients ();
  Hashtbl.iter
    (fun _ c -> try Unix.close c.c_fd with Unix.Unix_error (_, _, _) -> ())
    st.conns;
  Hashtbl.reset st.conns;
  let status_bad =
    List.filter_map
      (fun (w, status) ->
        if status = Unix.WEXITED 0 then None
        else
          Some
            (Printf.sprintf "worker %d (pid %d) %s" w.w_index w.w_pid
               (status_string status)))
      (Array.to_list statuses)
  in
  let bad = st.bad_exits @ status_bad in
  if bad <> [] then failwith ("unclean worker exit: " ^ String.concat "; " bad)

(* ---------------------------------------------------------------- *)
(* Entry point                                                        *)

let with_signals st f =
  let install s =
    match
      Sys.signal s (Sys.Signal_handle (fun _ -> Atomic.set st.interrupted true))
    with
    | prev -> Some prev
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let pipe =
    match Sys.signal Sys.sigpipe Sys.Signal_ignore with
    | prev -> Some prev
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let old_int = install Sys.sigint and old_term = install Sys.sigterm in
  Fun.protect f ~finally:(fun () ->
      let restore s prev =
        match prev with
        | Some b -> (
            try Sys.set_signal s b with Invalid_argument _ | Sys_error _ -> ())
        | None -> ()
      in
      restore Sys.sigint old_int;
      restore Sys.sigterm old_term;
      restore Sys.sigpipe pipe)

let run ?on_ready ~engine ~workers listeners =
  if workers < 1 then invalid_arg "Front.run: workers must be >= 1";
  (* One engine per worker process: parallelism comes from the shards,
     so each worker defaults to a single-domain pool unless the caller
     explicitly sizes within-worker jobs. *)
  let wcfg =
    {
      engine with
      Engine.assign_ids = true;
      jobs = Some (max 1 (Option.value engine.Engine.jobs ~default:1));
    }
  in
  let listener_fds = List.map (fun l -> l.Net.l_fd) listeners in
  let ws =
    let acc = ref [] in
    for i = 0 to workers - 1 do
      let close_in_child =
        listener_fds @ List.map (fun w -> w.w_fd) !acc
      in
      let fresh = Worker.spawn ~close_in_child ~engine:wcfg () in
      acc :=
        {
          w_index = i;
          w_pid = fresh.Worker.w_pid;
          w_fd = fresh.Worker.w_fd;
          w_inbuf = Buffer.create 4096;
          w_outbuf = Buffer.create 4096;
          w_eof = false;
        }
        :: !acc
    done;
    Array.of_list (List.rev !acc)
  in
  let st =
    {
      wcfg;
      workers = ws;
      conns = Hashtbl.create 64;
      pending = Hashtbl.create 256;
      next_conn = 1;
      next_token = 1;
      next_session = 0;
      stopping = false;
      respawns = 0;
      bad_exits = [];
      interrupted = Atomic.make false;
      shutdown_req = false;
    }
  in
  with_signals st (fun () ->
      Option.iter (fun f -> f st) on_ready;
      while not (stop_wanted st) do
        step st ~listeners ~timeout_ms:50
      done;
      drain st listeners)
