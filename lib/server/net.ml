type endpoint = Unix_path of string | Tcp of string * int

let endpoint_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let parse_tcp spec =
  let host, port_s =
    match String.rindex_opt spec ':' with
    | Some i -> (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
    | None -> ("", spec)
  in
  let host = if host = "" then "127.0.0.1" else host in
  match int_of_string_opt port_s with
  | Some p when p >= 0 && p <= 65535 -> Ok (host, p)
  | _ -> Error (Printf.sprintf "invalid TCP spec %S (expected HOST:PORT)" spec)

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      if host = "localhost" then Unix.inet_addr_loopback
      else
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
        | _ | (exception Not_found) ->
            failwith (Printf.sprintf "cannot resolve host %S" host))

type listener = { l_fd : Unix.file_descr; l_endpoint : endpoint }

(* A socket file left by a crashed server refuses connections; a live
   server accepts them.  Only unlink in the former case — silently
   stealing the path from a running daemon would leave two servers, one
   unreachable. *)
let unix_socket_alive path =
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      match Unix.connect fd (ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error (_, _, _) -> false)

let listen_unix ?(backlog = 64) path =
  if Sys.file_exists path then
    if unix_socket_alive path then
      failwith
        (Printf.sprintf "socket %s is in use by a running server (stop it first)" path)
    else (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  (try
     Unix.bind fd (ADDR_UNIX path);
     Unix.listen fd backlog;
     Unix.set_nonblock fd
   with e ->
     (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
     raise e);
  { l_fd = fd; l_endpoint = Unix_path path }

let listen_tcp ?(backlog = 512) ~host ~port () =
  let addr = resolve_host host in
  let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  let setup () =
    Unix.setsockopt fd SO_REUSEADDR true;
    Unix.bind fd (ADDR_INET (addr, port));
    Unix.listen fd backlog;
    Unix.set_nonblock fd;
    match Unix.getsockname fd with ADDR_INET (_, bound) -> bound | _ -> port
  in
  match setup () with
  | bound -> { l_fd = fd; l_endpoint = Tcp (host, bound) }
  | exception e ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      let msg =
        match e with
        | Unix.Unix_error (err, _, _) ->
            Printf.sprintf "cannot listen on %s:%d: %s" host port
              (Unix.error_message err)
        | Failure m -> m
        | e -> Printexc.to_string e
      in
      failwith msg

let set_nodelay fd =
  try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error (_, _, _) -> ()

let accept l =
  match Unix.accept ~cloexec:true l.l_fd with
  | fd, _ ->
      Unix.set_nonblock fd;
      (match l.l_endpoint with Tcp _ -> set_nodelay fd | Unix_path _ -> ());
      Some fd
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> None

let close_listener l =
  (try Unix.close l.l_fd with Unix.Unix_error (_, _, _) -> ());
  match l.l_endpoint with
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error (_, _, _) | Sys_error _ -> ())
  | Tcp _ -> ()

let connect endpoint =
  let domain = match endpoint with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
  let fd = Unix.socket ~cloexec:true domain SOCK_STREAM 0 in
  let target =
    match endpoint with
    | Unix_path p -> Ok (Unix.ADDR_UNIX p)
    | Tcp (host, port) -> (
        match resolve_host host with
        | addr -> Ok (Unix.ADDR_INET (addr, port))
        | exception Failure m -> Error m)
  in
  match target with
  | Error m ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      Error m
  | Ok addr -> (
      match Unix.connect fd addr with
      | () ->
          (match endpoint with Tcp _ -> set_nodelay fd | Unix_path _ -> ());
          Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
          Error
            (Printf.sprintf "connect %s: %s"
               (endpoint_to_string endpoint)
               (Unix.error_message e)))
