type t = {
  id : string;
  instance : Bbc.Instance.t;
  mutable config : Bbc.Config.t;
  ctx : Bbc.Incr.ctx option;
  mutable walk_index : int;
  mutable walk_deviations : int;
  mutable walk_quiet : int;
  mutable last_used_ns : int;
}

let set_config s config =
  s.config <- config;
  Option.iter (fun ctx -> Bbc.Incr.ensure ctx config) s.ctx

let node_cost ?objective s u =
  match s.ctx with
  | Some ctx -> Bbc.Incr.node_cost ?objective ctx u
  | None -> Bbc.Eval.node_cost ?objective s.instance s.config u

let all_costs ?objective s =
  match s.ctx with
  | Some ctx -> Bbc.Incr.all_costs ?objective ctx
  | None -> Bbc.Eval.all_costs ?objective s.instance s.config

(* The table and id counter are shared mutable state touched from pool
   workers (gen / load_instance / close_session run as independent
   groups and parallelize freely) as well as the transport domain, and
   stdlib Hashtbl is not domain-safe — every structural access goes
   through [lock].  The session records themselves need no lock: all
   requests naming the same session are serialized onto one worker per
   batch by the scheduler. *)
type store = {
  tbl : (string, t) Hashtbl.t;
  mutable next_id : int;
  mutable reserved : int;
      (** ids minted whose sessions are still being constructed; counts
          against [capacity] so concurrent adds cannot overshoot *)
  capacity : int;
  ttl_ns : int;
  lock : Mutex.t;
}

let locked store f =
  Mutex.lock store.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock store.lock) f

let default_ttl_ns = 600_000_000_000 (* 10 min *)

let create_store ?(capacity = 1024) ?(ttl_ns = default_ttl_ns) () =
  {
    tbl = Hashtbl.create 64;
    next_id = 1;
    reserved = 0;
    capacity;
    ttl_ns;
    lock = Mutex.create ();
  }

(* Caller holds [store.lock].  [last_used_ns] is written by workers
   without the lock, but plain int stores never tear in OCaml, and a
   session touched this batch has a fresh stamp well inside any sane
   TTL. *)
let expire_idle_locked store ~now_ns =
  if store.ttl_ns > 0 then begin
    let stale =
      Hashtbl.fold
        (fun id s acc ->
          if now_ns - s.last_used_ns > store.ttl_ns then id :: acc else acc)
        store.tbl []
    in
    List.iter (Hashtbl.remove store.tbl) stale
  end

let add ?id store ~now_ns instance config =
  let minted =
    locked store (fun () ->
        if Hashtbl.length store.tbl + store.reserved >= store.capacity then
          (* Reclaim abandoned sessions before refusing, so clients
             that never close_session cannot exhaust the budget
             forever. *)
          expire_idle_locked store ~now_ns;
        if Hashtbl.length store.tbl + store.reserved >= store.capacity then
          Error
            (Printf.sprintf "session store at capacity (%d live sessions)"
               store.capacity)
        else
          match id with
          | Some id when Hashtbl.mem store.tbl id ->
              (* Assigned ids come from the front tier's global counter
                 and never collide; refusing (rather than replacing a
                 live session) keeps a buggy or malicious assignment
                 from hijacking someone else's state. *)
              Error (Printf.sprintf "session id %S already in use" id)
          | Some id ->
              store.reserved <- store.reserved + 1;
              Ok id
          | None ->
              let id = Printf.sprintf "s%d" store.next_id in
              store.next_id <- store.next_id + 1;
              store.reserved <- store.reserved + 1;
              Ok id)
  in
  match minted with
  | Error msg -> Error msg
  | Ok id ->
      (* Context construction (SSSP state) is the expensive part; keep
         it outside the lock so concurrent adds don't serialize on it. *)
      let ctx =
        try
          if Bbc.Incr.enabled () then Some (Bbc.Incr.create instance config) else None
        with e ->
          locked store (fun () -> store.reserved <- store.reserved - 1);
          raise e
      in
      let s =
        {
          id;
          instance;
          config;
          ctx;
          walk_index = 0;
          walk_deviations = 0;
          walk_quiet = 0;
          last_used_ns = now_ns;
        }
      in
      locked store (fun () ->
          store.reserved <- store.reserved - 1;
          Hashtbl.replace store.tbl id s);
      Ok s

let find store id = locked store (fun () -> Hashtbl.find_opt store.tbl id)

let remove store id =
  locked store (fun () ->
      let existed = Hashtbl.mem store.tbl id in
      Hashtbl.remove store.tbl id;
      existed)

let count store = locked store (fun () -> Hashtbl.length store.tbl)
