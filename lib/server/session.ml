type t = {
  id : string;
  instance : Bbc.Instance.t;
  mutable config : Bbc.Config.t;
  ctx : Bbc.Incr.ctx option;
  mutable walk_index : int;
  mutable walk_deviations : int;
  mutable walk_quiet : int;
  mutable last_used_ns : int;
}

let set_config s config =
  s.config <- config;
  Option.iter (fun ctx -> Bbc.Incr.ensure ctx config) s.ctx

let node_cost ?objective s u =
  match s.ctx with
  | Some ctx -> Bbc.Incr.node_cost ?objective ctx u
  | None -> Bbc.Eval.node_cost ?objective s.instance s.config u

let all_costs ?objective s =
  match s.ctx with
  | Some ctx -> Bbc.Incr.all_costs ?objective ctx
  | None -> Bbc.Eval.all_costs ?objective s.instance s.config

type store = {
  tbl : (string, t) Hashtbl.t;
  mutable next_id : int;
  capacity : int;
}

let create_store ?(capacity = 1024) () =
  { tbl = Hashtbl.create 64; next_id = 1; capacity }

let add store ~now_ns instance config =
  if Hashtbl.length store.tbl >= store.capacity then
    Error
      (Printf.sprintf "session store at capacity (%d live sessions)" store.capacity)
  else begin
    let id = Printf.sprintf "s%d" store.next_id in
    store.next_id <- store.next_id + 1;
    let ctx =
      if Bbc.Incr.enabled () then Some (Bbc.Incr.create instance config) else None
    in
    let s =
      {
        id;
        instance;
        config;
        ctx;
        walk_index = 0;
        walk_deviations = 0;
        walk_quiet = 0;
        last_used_ns = now_ns;
      }
    in
    Hashtbl.replace store.tbl id s;
    Ok s
  end

let find store id = Hashtbl.find_opt store.tbl id

let remove store id =
  let existed = Hashtbl.mem store.tbl id in
  Hashtbl.remove store.tbl id;
  existed

let count store = Hashtbl.length store.tbl
