/* poll(2) for the serving event loops.  Unix.select is unusable past
   FD_SETSIZE (1024): with thousands of live connections the *fd
   numbers* exceed the fd_set range even if a single call watches only
   a few.  The binding keeps the OCaml-side representation flat — three
   parallel arrays (fds, interest bits, result bits) and an explicit
   live count — so the caller can reuse buffers across iterations
   without allocating. */

#include <caml/mlvalues.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/threads.h>
#include <errno.h>
#include <poll.h>
#include <stdlib.h>

#define BBC_POLL_IN 1
#define BBC_POLL_OUT 2
#define BBC_POLL_ERR 4

CAMLprim value bbc_poll_fds(value vfds, value vevents, value vrevents,
                            value vn, value vtimeout_ms)
{
  CAMLparam5(vfds, vevents, vrevents, vn, vtimeout_ms);
  long n = Long_val(vn);
  int timeout = Int_val(vtimeout_ms);
  struct pollfd *pfds;
  long i;
  int ret;

  if (n < 0 || n > (long)Wosize_val(vfds) || n > (long)Wosize_val(vevents)
      || n > (long)Wosize_val(vrevents))
    caml_invalid_argument("Bbc_server.Poll.poll: n exceeds array lengths");

  pfds = malloc(n == 0 ? 1 : (size_t)n * sizeof(struct pollfd));
  if (pfds == NULL) caml_failwith("Bbc_server.Poll.poll: out of memory");

  for (i = 0; i < n; i++) {
    long ev = Long_val(Field(vevents, i));
    pfds[i].fd = Int_val(Field(vfds, i)); /* file_descr = int on Unix */
    pfds[i].events = 0;
    if (ev & BBC_POLL_IN) pfds[i].events |= POLLIN;
    if (ev & BBC_POLL_OUT) pfds[i].events |= POLLOUT;
    pfds[i].revents = 0;
  }

  caml_release_runtime_system();
  ret = poll(pfds, (nfds_t)n, timeout);
  caml_acquire_runtime_system();

  if (ret < 0) {
    int err = errno;
    free(pfds);
    if (err == EINTR) { /* treated as a timeout: no descriptor is ready */
      for (i = 0; i < n; i++) Field(vrevents, i) = Val_long(0);
      CAMLreturn(Val_long(0));
    }
    caml_failwith("Bbc_server.Poll.poll: poll(2) failed");
  }

  for (i = 0; i < n; i++) {
    long rv = 0;
    if (pfds[i].revents & (POLLIN | POLLHUP)) rv |= BBC_POLL_IN;
    if (pfds[i].revents & POLLOUT) rv |= BBC_POLL_OUT;
    if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) rv |= BBC_POLL_ERR;
    Field(vrevents, i) = Val_long(rv); /* int array: no write barrier needed */
  }

  free(pfds);
  CAMLreturn(Val_long(ret));
}
