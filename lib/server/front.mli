(** Sharded multi-process serving: the front tier.

    [run] forks [workers] {!Worker} processes (each owning a private
    {!Engine} — admission queue, deadline expiry, backpressure, session
    store) and then runs a single poll(2) event loop that owns every
    client socket: it accepts connections from the given listeners
    (Unix-domain and/or TCP), splits request lines, and routes each
    request to the worker chosen by {!Shard.of_session} on the
    session id, over the framed socketpair protocol in {!Frame}.

    {1 Routing}

    - Session-bound requests hash their ["session"] param.
    - [gen] / [load_instance] have no session yet, so the front mints
      the id ({!Shard.mint} on a global counter), picks the worker from
      its hash, and forwards the request with the id attached as the
      ["_session"] param (workers run with [assign_ids = true]); every
      later request for that session hashes to the same worker.
    - [ping] and [shutdown] are answered at the front; [stats] fans out
      to all workers and the per-worker payloads are summed field-wise
      (plus front-tier fields: [workers], [respawns], [connections]).

    {1 Guarantees}

    Per connection, responses to admitted requests are released in
    admission order even when they complete on different workers: each
    request takes a token into the connection's reorder queue, and a
    ready response is held until every earlier token has answered.
    (Immediate protocol rejections — malformed JSON, draining — jump
    that queue, exactly as the engine's [`Reply] path does in the
    single-process transport; worker-side rejections such as overload
    come back as ordinary answers, in order.)
    Within one worker the engine's own guarantees are unchanged.

    {1 Worker lifecycle}

    A worker that dies unexpectedly is detected by EOF on its pipe; its
    in-flight requests are answered with [internal] errors, and a fresh
    worker is forked onto the same shard (policy: respawn, sessions
    lost — later requests for them get [unknown_session]).  Other
    shards are unaffected.

    SIGINT/SIGTERM (or an executed [shutdown]) triggers a graceful
    drain: listeners close, new requests are answered [shutting_down],
    every outstanding token is resolved, workers receive a [Stop] frame
    and are reaped, responses are flushed, and [run] returns.  Raises
    [Failure] if a worker exits non-zero during that drain. *)

type handle
(** Control surface handed to [on_ready] (used by tests and the bench
    harness). *)

val worker_pids : handle -> int list
(** Live worker pids, index order. *)

val request_stop : handle -> unit
(** Ask the loop to begin its graceful drain (as if signalled). *)

val run :
  ?on_ready:(handle -> unit) ->
  engine:Engine.config ->
  workers:int ->
  Net.listener list ->
  unit
(** Serve until shutdown; blocks.  [workers >= 1].  The worker engine
    config is [engine] with [assign_ids = true] and, when [engine.jobs]
    is [None], [jobs = Some 1]: parallelism comes from the process
    shards, and [N] workers each defaulting to a full domain pool would
    oversubscribe the machine (pass an explicit [jobs] to compose
    within-worker pools with sharding).

    Must be called before the process creates any domains — [run]
    forks. *)
