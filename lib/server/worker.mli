(** Worker processes of the sharded serving tier.

    {!spawn} forks a child connected to the front by a socketpair.  The
    child runs a full {!Engine} of its own — admission queue, deadline
    expiry at dequeue, overload backpressure, session store — over the
    framed protocol in {!Frame}: [Q token line] in, [A token line] out,
    answers in admission order per worker.  Tokens double as the
    engine-side client ids, so {!Engine.run_batch}'s [(client,
    response)] pairs need no translation.

    Lifecycle: a [S] frame (or EOF — the front died) begins a graceful
    drain: every admitted request is executed, every answer flushed,
    and the child [_exit]s 0.  Workers ignore SIGINT/SIGTERM — a signal
    to the process group must not kill them mid-drain; the front
    coordinates shutdown through the pipe.

    {b Fork safety}: spawn forks, so it must only be called before the
    calling process creates any domains ({!Bbc_parallel} pools do not
    survive fork).  The front tier never touches the pool; worker
    engines run whatever [jobs] their config asks for, in their own
    fresh process. *)

type t = {
  w_pid : int;
  w_fd : Unix.file_descr;  (** front side of the socketpair, non-blocking *)
}

val spawn : ?close_in_child:Unix.file_descr list -> engine:Engine.config -> unit -> t
(** Fork one worker (engine config taken as given — callers decide the
    per-worker [jobs] width).  The child never returns.
    [close_in_child] lists inherited descriptors (listeners, client
    connections, sibling worker pipes) the child must not keep open. *)

val run : engine:Engine.config -> Unix.file_descr -> 'a
(** The child-side loop, exposed for tests that drive a worker over a
    hand-made socketpair.  Never returns: exits the process. *)
