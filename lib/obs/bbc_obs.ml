(* Observability: sharded metrics, nested spans, buffered JSONL tracing.
   See bbc_obs.mli for the contract. *)

external now_ns : unit -> int = "bbc_obs_clock_ns" [@@noalloc]

(* ------------------------------------------------------------------ *)
(* Master switch.                                                      *)

let enabled_flag = Atomic.make false
let sink_count = Atomic.make 0
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let tracing () = Atomic.get enabled_flag && Atomic.get sink_count > 0

(* ------------------------------------------------------------------ *)
(* Per-domain shard slots.

   Each domain gets a private slot index on first use; all metric
   storage is a flat array indexed by [slot * stride], so a domain only
   ever writes its own cells (no atomics, no locks on the hot path).
   Slots wrap modulo [max_shards]; the Bbc_parallel pool is capped well
   below that, so wrapping only matters for pathological domain churn,
   and even then it merely shares cells between domains that are never
   concurrent with the same slot in practice. *)

let max_shards = 128 (* power of two *)
let next_slot = Atomic.make 0

let slot_key =
  Domain.DLS.new_key (fun () -> Atomic.fetch_and_add next_slot 1 land (max_shards - 1))

let slot () = Domain.DLS.get slot_key

(* ------------------------------------------------------------------ *)
(* Registry.                                                           *)

type value = Int of int | Float of float | Str of string | Bool of bool
type attr = string * value

(* Counter cells are padded to a cache line (8 words) so concurrent
   domains do not false-share. *)
let counter_stride = 8

type counter = { c_name : string; c_cells : int array }

type gauge = { g_name : string; g_cell : float Atomic.t }

(* Histogram shard layout: 63 log2 buckets, then count, then sum. *)
let hist_buckets = 63
let hist_stride = hist_buckets + 2

type histogram = { h_name : string; h_cells : int array }

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry_mutex = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 32

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let register name make cast kind_name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match cast m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Bbc_obs: %S is already registered with another kind"
                   kind_name))
      | None ->
          let v = make () in
          v)

let counter name =
  register name
    (fun () ->
      let c = { c_name = name; c_cells = Array.make (max_shards * counter_stride) 0 } in
      Hashtbl.replace registry name (Counter c);
      c)
    (function Counter c -> Some c | _ -> None)
    name

let gauge name =
  register name
    (fun () ->
      let g = { g_name = name; g_cell = Atomic.make 0.0 } in
      Hashtbl.replace registry name (Gauge g);
      g)
    (function Gauge g -> Some g | _ -> None)
    name

let histogram name =
  register name
    (fun () ->
      let h = { h_name = name; h_cells = Array.make (max_shards * hist_stride) 0 } in
      Hashtbl.replace registry name (Histogram h);
      h)
    (function Histogram h -> Some h | _ -> None)
    name

(* --- hot-path updates --- *)

let add c n =
  if Atomic.get enabled_flag then begin
    let i = slot () * counter_stride in
    c.c_cells.(i) <- c.c_cells.(i) + n
  end

let incr c = add c 1

let set_gauge g v = if Atomic.get enabled_flag then Atomic.set g.g_cell v

(* floor(log2 v), clamped to the bucket range; v <= 1 lands in bucket 0. *)
let bucket_of v =
  let b = ref 0 and v = ref v in
  while !v > 1 && !b < hist_buckets - 1 do
    v := !v lsr 1;
    Stdlib.incr b
  done;
  !b

let observe h v =
  if Atomic.get enabled_flag then begin
    let v = max 0 v in
    let base = slot () * hist_stride in
    let b = base + bucket_of v in
    h.h_cells.(b) <- h.h_cells.(b) + 1;
    h.h_cells.(base + hist_buckets) <- h.h_cells.(base + hist_buckets) + 1;
    h.h_cells.(base + hist_buckets + 1) <- h.h_cells.(base + hist_buckets + 1) + v
  end

(* --- merged reads --- *)

let counter_value c =
  let acc = ref 0 in
  for s = 0 to max_shards - 1 do
    acc := !acc + c.c_cells.(s * counter_stride)
  done;
  !acc

let gauge_value g = Atomic.get g.g_cell

let hist_field h off =
  let acc = ref 0 in
  for s = 0 to max_shards - 1 do
    acc := !acc + h.h_cells.((s * hist_stride) + off)
  done;
  !acc

let histogram_count h = hist_field h hist_buckets
let histogram_sum h = hist_field h (hist_buckets + 1)

let histogram_buckets h =
  Array.init hist_buckets (fun b -> hist_field h b)

(* ------------------------------------------------------------------ *)
(* Span aggregates (count + cumulative ns per span name).

   Span open/close is orders of magnitude rarer than counter updates
   (whole-operation granularity), so a mutex-guarded table is fine. *)

type agg = { mutable a_count : int; mutable a_total_ns : int }

let span_aggs : (string, agg) Hashtbl.t = Hashtbl.create 32

let record_span name dt =
  with_registry (fun () ->
      match Hashtbl.find_opt span_aggs name with
      | Some a ->
          a.a_count <- a.a_count + 1;
          a.a_total_ns <- a.a_total_ns + dt
      | None -> Hashtbl.replace span_aggs name { a_count = 1; a_total_ns = dt })

let span_stats () =
  with_registry (fun () ->
      Hashtbl.fold (fun name a acc -> (name, a.a_count, a.a_total_ns) :: acc) span_aggs [])
  |> List.sort (fun (n1, _, t1) (n2, _, t2) ->
         match compare t2 t1 with 0 -> compare n1 n2 | c -> c)

(* ------------------------------------------------------------------ *)
(* Trace events: per-domain buffers, global sequence order.            *)

type kind = Span_open | Span_close | Instant | Snapshot

type ev = {
  seq : int;
  ts_ns : int;
  domain : int;
  kind : kind;
  name : string;
  id : int;
  parent : int;
  attrs : attr list;
}

let next_seq = Atomic.make 1
let next_span_id = Atomic.make 1

(* All per-domain buffers, so [drain] can reach every domain's events. *)
let buffers : ev list ref list ref = ref []

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let r = ref [] in
      with_registry (fun () -> buffers := r :: !buffers);
      r)

(* Innermost open span id per domain, for parenting. *)
let stack_key = Domain.DLS.new_key (fun () : int list ref -> ref [])

let push_event kind name ~id ~parent attrs =
  let e =
    {
      seq = Atomic.fetch_and_add next_seq 1;
      ts_ns = now_ns ();
      domain = slot ();
      kind;
      name;
      id;
      parent;
      attrs;
    }
  in
  let buf = Domain.DLS.get buffer_key in
  buf := e :: !buf

let current_parent () =
  match !(Domain.DLS.get stack_key) with p :: _ -> p | [] -> 0

let event ?(attrs = []) name =
  if tracing () then push_event Instant name ~id:0 ~parent:(current_parent ()) attrs

let with_span ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let traced = Atomic.get sink_count > 0 in
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with p :: _ -> p | [] -> 0 in
    let id = Atomic.fetch_and_add next_span_id 1 in
    stack := id :: !stack;
    if traced then push_event Span_open name ~id ~parent attrs;
    let t0 = now_ns () in
    let finish () =
      let dt = now_ns () - t0 in
      (match !stack with _ :: rest -> stack := rest | [] -> ());
      record_span name dt;
      if traced then push_event Span_close name ~id ~parent [ ("dur_ns", Int dt) ]
    in
    Fun.protect ~finally:finish f
  end

(* ------------------------------------------------------------------ *)
(* Sinks and draining.                                                 *)

let sinks : (ev -> unit) list ref = ref []

let add_sink s =
  with_registry (fun () -> sinks := !sinks @ [ s ]);
  Atomic.incr sink_count

let clear_sinks () =
  with_registry (fun () -> sinks := []);
  Atomic.set sink_count 0

let snapshot_events () =
  (* Registry iteration order is unspecified; sort by name so traces are
     reproducible. *)
  let metrics =
    with_registry (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  in
  let name_of = function
    | Counter c -> c.c_name
    | Gauge g -> g.g_name
    | Histogram h -> h.h_name
  in
  List.sort (fun a b -> compare (name_of a) (name_of b)) metrics
  |> List.map (fun m ->
         let name, attrs =
           match m with
           | Counter c -> (c.c_name, [ ("value", Int (counter_value c)) ])
           | Gauge g -> (g.g_name, [ ("value", Float (gauge_value g)) ])
           | Histogram h ->
               ( h.h_name,
                 [ ("count", Int (histogram_count h)); ("sum", Int (histogram_sum h)) ] )
         in
         {
           seq = Atomic.fetch_and_add next_seq 1;
           ts_ns = now_ns ();
           domain = slot ();
           kind = Snapshot;
           name;
           id = 0;
           parent = 0;
           attrs;
         })

let flush_events () =
  let bufs, current_sinks =
    with_registry (fun () ->
        let collected = List.map (fun r -> let evs = !r in r := []; evs) !buffers in
        (collected, !sinks))
  in
  if current_sinks <> [] then begin
    let events =
      List.concat bufs |> List.sort (fun a b -> compare a.seq b.seq)
    in
    List.iter (fun e -> List.iter (fun s -> s e) current_sinks) events
  end

let drain () =
  flush_events ();
  let current_sinks = with_registry (fun () -> !sinks) in
  if current_sinks <> [] then
    List.iter
      (fun e -> List.iter (fun s -> s e) current_sinks)
      (snapshot_events ())

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Array.fill c.c_cells 0 (Array.length c.c_cells) 0
          | Gauge g -> Atomic.set g.g_cell 0.0
          | Histogram h -> Array.fill h.h_cells 0 (Array.length h.h_cells) 0)
        registry;
      Hashtbl.reset span_aggs;
      List.iter (fun r -> r := []) !buffers)

(* ------------------------------------------------------------------ *)
(* JSONL sink.                                                         *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let kind_name = function
  | Span_open -> "span_open"
  | Span_close -> "span_close"
  | Instant -> "event"
  | Snapshot -> "snapshot"

let append_value b = function
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (Printf.sprintf "%g" f)
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Str s ->
      Buffer.add_char b '"';
      json_escape b s;
      Buffer.add_char b '"'

let append_event b e =
  Buffer.add_string b
    (Printf.sprintf "{\"seq\":%d,\"ts_ns\":%d,\"domain\":%d,\"kind\":\"%s\",\"name\":\""
       e.seq e.ts_ns e.domain (kind_name e.kind));
  json_escape b e.name;
  Buffer.add_string b (Printf.sprintf "\",\"id\":%d,\"parent\":%d,\"attrs\":{" e.id e.parent);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      json_escape b k;
      Buffer.add_string b "\":";
      append_value b v)
    e.attrs;
  Buffer.add_string b "}}\n"

let jsonl_sink oc e =
  let b = Buffer.create 160 in
  append_event b e;
  output_string oc (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Summary.                                                            *)

let pp_dur fmt ns =
  if ns <= 0 then Format.fprintf fmt "%10s" "-"
  else if ns < 1_000 then Format.fprintf fmt "%8dns" ns
  else if ns < 1_000_000 then Format.fprintf fmt "%8.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then Format.fprintf fmt "%8.1fms" (float_of_int ns /. 1e6)
  else Format.fprintf fmt "%9.2fs" (float_of_int ns /. 1e9)

let pp_summary fmt =
  let metrics =
    with_registry (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  in
  let counters =
    List.filter_map (function Counter c -> Some c | _ -> None) metrics
    |> List.sort (fun a b -> compare a.c_name b.c_name)
  in
  let gauges =
    List.filter_map (function Gauge g -> Some g | _ -> None) metrics
    |> List.sort (fun a b -> compare a.g_name b.g_name)
  in
  let histograms =
    List.filter_map (function Histogram h -> Some h | _ -> None) metrics
    |> List.sort (fun a b -> compare a.h_name b.h_name)
  in
  Format.fprintf fmt "== observability summary ==@.";
  (match span_stats () with
  | [] -> ()
  | stats ->
      Format.fprintf fmt "spans (by cumulative time)@.";
      Format.fprintf fmt "  %-36s %8s %10s %10s@." "name" "count" "total" "mean";
      List.iter
        (fun (name, count, total) ->
          Format.fprintf fmt "  %-36s %8d %a %a@." name count pp_dur total pp_dur
            (if count = 0 then 0 else total / count))
        stats);
  if counters <> [] then begin
    Format.fprintf fmt "counters@.";
    List.iter
      (fun c -> Format.fprintf fmt "  %-36s %12d@." c.c_name (counter_value c))
      counters
  end;
  if gauges <> [] then begin
    Format.fprintf fmt "gauges@.";
    List.iter
      (fun g -> Format.fprintf fmt "  %-36s %12g@." g.g_name (gauge_value g))
      gauges
  end;
  if histograms <> [] then begin
    Format.fprintf fmt "histograms@.";
    Format.fprintf fmt "  %-36s %8s %10s %10s@." "name" "count" "mean" "p~max";
    List.iter
      (fun h ->
        let count = histogram_count h in
        let mean = if count = 0 then 0 else histogram_sum h / count in
        let top = ref 0 in
        Array.iteri (fun b n -> if n > 0 then top := b) (histogram_buckets h);
        let upper = if count = 0 then 0 else 1 lsl (!top + 1) in
        Format.fprintf fmt "  %-36s %8d %a %a@." h.h_name count pp_dur mean pp_dur upper)
      histograms
  end
