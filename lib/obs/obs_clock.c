/* Monotonic clock for Bbc_obs spans.  Returns nanoseconds as a tagged
   OCaml int (63 bits on 64-bit platforms: ~292 years of range). */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value bbc_obs_clock_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((long)ts.tv_sec * 1000000000L + (long)ts.tv_nsec);
}
