(** Observability subsystem: metrics registry, span tracing, JSONL sink.

    Dependency-free (stdlib + a [clock_gettime] stub) so every layer of
    the laboratory — including {!Bbc_parallel} itself — can be
    instrumented without dependency cycles.

    {1 Cost model}

    Observability is {b disabled by default}.  Every hot-path operation
    ({!incr}, {!add}, {!observe}, {!with_span}) first reads one atomic
    flag and returns immediately when it is off, so instrumented code
    pays a single load-and-branch per call site.  The bench harness
    measures this against uninstrumented copies of the [eval] and [apsp]
    hot paths (the "observability overhead" section of [BENCH_N.json]).

    {1 Sharding}

    Metric updates are {b per-domain sharded}: each domain is assigned a
    private slot (via [Domain.DLS]) and writes only its own cells, so
    counters and histograms are safe — and contention-free — inside
    {!Bbc_parallel} workers.  Reads ({!counter_value},
    {!histogram_count}, …) merge the shards and may observe a slightly
    stale snapshot while writers are running; quiescent reads are exact.

    {1 Tracing}

    Spans nest per domain (a DLS span stack provides parent ids) and
    every trace event is buffered in a per-domain list; nothing is
    written until {!drain}, which merges all buffers in global sequence
    order and feeds them to the registered sinks, followed by one
    snapshot event per registered metric.  Events are recorded only when
    at least one sink is registered (see {!tracing}), so [--metrics]
    alone never accumulates unbounded event memory. *)

(** {1 Master switch} *)

val enabled : unit -> bool
(** One atomic load: the hot-path guard. *)

val enable : unit -> unit
val disable : unit -> unit

val tracing : unit -> bool
(** [enabled () && at least one sink registered].  Guard for call sites
    that would do extra work ({!Eval.node_cost}, list diffs) just to
    build event attributes. *)

val reset : unit -> unit
(** Zero all metric shards, span aggregates and per-domain event
    buffers.  Registered handles stay valid (their names and storage are
    kept).  Intended for tests. *)

(** {1 Attributes} *)

type value = Int of int | Float of float | Str of string | Bool of bool

type attr = string * value

(** {1 Metrics registry}

    Metrics are created once (typically at module initialisation) and
    looked up by name; creating the same name twice returns the same
    handle, and re-using a name for a different metric kind raises
    [Invalid_argument]. *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit

val counter_value : counter -> int
(** Sum over all per-domain shards. *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

type histogram

val histogram : string -> histogram

val observe : histogram -> int -> unit
(** Record a non-negative sample in the log-scale histogram: bucket [b]
    holds samples in [\[2^b, 2^(b+1))] (bucket 0 also catches [v <= 1]),
    63 buckets in total. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> int

val histogram_buckets : histogram -> int array
(** Merged 63-slot bucket array (a fresh copy). *)

(** {1 Spans} *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds. *)

val with_span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], recording (when enabled) a timing
    aggregate for [name] and — when {!tracing} — a [span_open] /
    [span_close] event pair around [f]'s events.  Spans nest: the parent
    of a span (or of an {!event}) is the innermost open span on the same
    domain.  Exception-safe: the span closes even if [f] raises. *)

val event : ?attrs:attr list -> string -> unit
(** Instant event under the current span.  No-op unless {!tracing}. *)

val span_stats : unit -> (string * int * int) list
(** [(name, count, total_ns)] per span name, sorted by descending
    cumulative time. *)

(** {1 Sinks and draining} *)

type kind = Span_open | Span_close | Instant | Snapshot

type ev = {
  seq : int;  (** global order, unique across domains *)
  ts_ns : int;
  domain : int;  (** shard slot of the emitting domain *)
  kind : kind;
  name : string;
  id : int;  (** span id; 0 for instants/snapshots *)
  parent : int;  (** enclosing span id; 0 at top level *)
  attrs : attr list;
}

val add_sink : (ev -> unit) -> unit
val clear_sinks : unit -> unit

val jsonl_sink : out_channel -> ev -> unit
(** Writes one JSON object per event, newline-terminated (the schema is
    documented in DESIGN.md section 8). *)

val flush_events : unit -> unit
(** Flush all per-domain buffers to the sinks in sequence order (no
    snapshots).  Lets a command surface buffered events mid-run — e.g.
    the CLI renders the activation stream before its outcome summary. *)

val drain : unit -> unit
(** {!flush_events}, then emit one {!Snapshot} event per registered
    metric (counters: [value]; gauges: [value]; histograms: [count] and
    [sum]).  Idempotent; safe to call with no sinks. *)

(** {1 Summary} *)

val pp_summary : Format.formatter -> unit
(** Human-readable exit report: top spans by cumulative time, counter
    table, gauges, histograms.  Durations are always rendered with a
    unit suffix ([ns]/[us]/[ms]/[s]) so output filters can strip them;
    counts and counter values are plain integers. *)
