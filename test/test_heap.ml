module H = Bbc_graph.Binary_heap

let test_empty () =
  let h = H.create () in
  Alcotest.(check bool) "empty" true (H.is_empty h);
  Alcotest.(check int) "size" 0 (H.size h);
  Alcotest.(check (option (pair int int))) "pop empty" None (H.pop h)

let test_ordering () =
  let h = H.create () in
  List.iter (fun p -> H.push h p (100 + p)) [ 5; 1; 9; 3; 7; 2; 8 ];
  let rec drain acc =
    match H.pop h with Some (p, v) -> drain ((p, v) :: acc) | None -> List.rev acc
  in
  let out = drain [] in
  Alcotest.(check (list (pair int int))) "sorted with payloads"
    [ (1, 101); (2, 102); (3, 103); (5, 105); (7, 107); (8, 108); (9, 109) ]
    out

let test_duplicates () =
  let h = H.create () in
  H.push h 4 0;
  H.push h 4 1;
  H.push h 4 2;
  Alcotest.(check int) "size" 3 (H.size h);
  let prios = List.init 3 (fun _ -> fst (Option.get (H.pop h))) in
  Alcotest.(check (list int)) "equal priorities" [ 4; 4; 4 ] prios

let test_growth () =
  let h = H.create ~capacity:1 () in
  for i = 999 downto 0 do
    H.push h i i
  done;
  Alcotest.(check int) "size after growth" 1000 (H.size h);
  for i = 0 to 999 do
    Alcotest.(check (option (pair int int))) "ascending" (Some (i, i)) (H.pop h)
  done

let test_interleaved () =
  let h = H.create () in
  H.push h 10 0;
  H.push h 5 1;
  Alcotest.(check (option (pair int int))) "min first" (Some (5, 1)) (H.pop h);
  H.push h 1 2;
  H.push h 20 3;
  Alcotest.(check (option (pair int int))) "new min" (Some (1, 2)) (H.pop h);
  Alcotest.(check (option (pair int int))) "then" (Some (10, 0)) (H.pop h);
  H.clear h;
  Alcotest.(check bool) "cleared" true (H.is_empty h)

let test_random_heapsort () =
  let rng = Bbc_prng.Splitmix.create 55 in
  for _ = 1 to 20 do
    let xs = List.init 200 (fun _ -> Bbc_prng.Splitmix.int rng 1000) in
    let h = H.create () in
    List.iter (fun x -> H.push h x x) xs;
    let rec drain acc =
      match H.pop h with Some (p, _) -> drain (p :: acc) | None -> List.rev acc
    in
    Alcotest.(check (list int)) "heapsort = sort" (List.sort compare xs) (drain [])
  done

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "duplicate priorities" `Quick test_duplicates;
    Alcotest.test_case "growth" `Quick test_growth;
    Alcotest.test_case "interleaved ops" `Quick test_interleaved;
    Alcotest.test_case "random heapsort" `Quick test_random_heapsort;
  ]
