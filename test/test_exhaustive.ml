module I = Bbc.Instance
module C = Bbc.Config
module X = Bbc.Exhaustive

let test_all_strategies_count () =
  (* (4,1)-uniform: each node has 3 single links + empty = 4 strategies. *)
  let inst = I.uniform ~n:4 ~k:1 in
  Alcotest.(check int) "k=1 strategies" 4 (List.length (X.all_strategies inst 0));
  (* (4,2): empty + 3 singles + 3 pairs = 7. *)
  let inst2 = I.uniform ~n:4 ~k:2 in
  Alcotest.(check int) "k=2 strategies" 7 (List.length (X.all_strategies inst2 0))

let test_all_strategies_budgeted () =
  let w = Array.make_matrix 3 3 1 in
  let cost = [| [| 0; 2; 3 |]; [| 1; 0; 1 |]; [| 1; 1; 0 |] |] in
  let ones = Array.make_matrix 3 3 1 in
  let inst = I.general ~weight:w ~cost ~length:ones ~budget:[| 3; 0; 2 |] () in
  (* Node 0 (budget 3): {}, {1}, {2} — the pair costs 5 > 3. *)
  Alcotest.(check int) "node 0" 3 (List.length (X.all_strategies inst 0));
  (* Node 1 (budget 0): only {}. *)
  Alcotest.(check (list (list int))) "node 1" [ [] ] (X.all_strategies inst 1)

let test_maximal_strategies () =
  let inst = I.uniform ~n:4 ~k:2 in
  let ms = X.maximal_strategies inst 0 in
  Alcotest.(check int) "pairs only" 3 (List.length ms);
  List.iter (fun s -> Alcotest.(check int) "size 2" 2 (List.length s)) ms

let test_space_size () =
  let inst = I.uniform ~n:4 ~k:1 in
  let cands = Array.init 4 (X.all_strategies inst) in
  Alcotest.(check (float 1e-9)) "4^4" 256.0 (X.space_size cands)

let test_ring_equilibria_found () =
  let inst = I.uniform ~n:4 ~k:1 in
  let r = X.search ~limit:max_int inst in
  Alcotest.(check bool) "complete" true r.complete;
  Alcotest.(check int) "every profile examined" 256 r.examined;
  (* Every reported equilibrium must verify. *)
  List.iter
    (fun c -> Alcotest.(check bool) "verified" true (Bbc.Stability.is_stable inst c))
    r.equilibria;
  (* The two directed 4-cycles through all nodes are among them. *)
  let cycle = C.of_lists 4 [| [ 1 ]; [ 2 ]; [ 3 ]; [ 0 ] |] in
  Alcotest.(check bool) "contains the ring" true
    (List.exists (C.equal cycle) r.equilibria);
  Alcotest.(check bool) "there are equilibria" true (r.equilibria <> [])

let test_limit_short_circuits () =
  let inst = I.uniform ~n:4 ~k:1 in
  let r = X.search ~limit:1 inst in
  Alcotest.(check int) "one found" 1 (List.length r.equilibria);
  Alcotest.(check bool) "search stopped early" true (r.examined < 256)

let test_max_profiles_aborts () =
  let inst = I.uniform ~n:4 ~k:1 in
  let r = X.search ~limit:max_int ~max_profiles:10 inst in
  Alcotest.(check bool) "incomplete" false r.complete;
  Alcotest.(check int) "examined exactly the cap" 10 r.examined

let test_candidate_restriction () =
  let inst = I.uniform ~n:4 ~k:1 in
  (* Restrict everyone to the ring strategy: exactly one profile. *)
  let cands = Array.init 4 (fun v -> [ [ (v + 1) mod 4 ] ]) in
  let r = X.search ~candidates:cands ~limit:max_int inst in
  Alcotest.(check int) "one profile" 1 r.examined;
  Alcotest.(check int) "it is stable" 1 (List.length r.equilibria)

let test_has_equilibrium () =
  let inst = I.uniform ~n:4 ~k:1 in
  Alcotest.(check (option bool)) "uniform games have NE" (Some true)
    (X.has_equilibrium inst);
  Alcotest.(check (option bool)) "abort yields None" None
    (X.has_equilibrium ~max_profiles:1 ~candidates:(Array.init 4 (fun v -> [ []; [ (v + 1) mod 4 ] ])) inst)

let test_count_equilibria_small () =
  (* n=2, k=1: profiles: each node links the other or nothing.  Stable
     iff both link each other (others strictly improve). *)
  let inst = I.uniform ~n:2 ~k:1 in
  Alcotest.(check (option int)) "unique NE" (Some 1) (X.count_equilibria inst)

let suite =
  [
    Alcotest.test_case "all_strategies counts" `Quick test_all_strategies_count;
    Alcotest.test_case "all_strategies respects budget" `Quick test_all_strategies_budgeted;
    Alcotest.test_case "maximal strategies" `Quick test_maximal_strategies;
    Alcotest.test_case "space size" `Quick test_space_size;
    Alcotest.test_case "(4,1) equilibria" `Quick test_ring_equilibria_found;
    Alcotest.test_case "limit short-circuits" `Quick test_limit_short_circuits;
    Alcotest.test_case "max_profiles aborts" `Quick test_max_profiles_aborts;
    Alcotest.test_case "candidate restriction" `Quick test_candidate_restriction;
    Alcotest.test_case "has_equilibrium" `Quick test_has_equilibrium;
    Alcotest.test_case "count equilibria n=2" `Quick test_count_equilibria_small;
  ]
