module Cnf = Bbc_sat.Cnf
module Solver = Bbc_sat.Solver
module Dimacs = Bbc_sat.Dimacs
module Gen = Bbc_sat.Gen
module SM = Bbc_prng.Splitmix

let check_witness f = function
  | Solver.Sat w -> Alcotest.(check bool) "witness satisfies" true (Cnf.eval f w)
  | Solver.Unsat -> Alcotest.fail "expected satisfiable"

let test_trivial_sat () =
  let f = Cnf.make ~num_vars:1 [ [ 1 ] ] in
  check_witness f (Solver.solve f)

let test_trivial_unsat () =
  let f = Cnf.make ~num_vars:1 [ [ 1 ]; [ -1 ] ] in
  Alcotest.(check bool) "unsat" false (Solver.is_satisfiable f)

let test_three_sat () =
  let f = Cnf.make ~num_vars:3 [ [ 1; 2; 3 ]; [ -1; -2; -3 ]; [ 1; -2; 3 ] ] in
  Alcotest.(check bool) "is 3SAT" true (Cnf.is_three_sat f);
  check_witness f (Solver.solve f)

let test_forced_chain () =
  (* Unit propagation chain: x1, x1->x2, x2->x3, and require x3. *)
  let f = Cnf.make ~num_vars:3 [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ]; [ 3 ] ] in
  match Solver.solve f with
  | Sat w ->
      Alcotest.(check bool) "x1" true w.(1);
      Alcotest.(check bool) "x2" true w.(2);
      Alcotest.(check bool) "x3" true w.(3)
  | Unsat -> Alcotest.fail "satisfiable"

let test_pigeonhole_unsat () =
  let f = Gen.pigeonhole ~holes:3 in
  Alcotest.(check bool) "PHP(4,3) unsat" false (Solver.is_satisfiable f)

let test_pigeonhole_small () =
  let f = Gen.pigeonhole ~holes:1 in
  Alcotest.(check bool) "PHP(2,1) unsat" false (Solver.is_satisfiable f)

let test_count_models () =
  (* (x1 | x2): 3 of 4 assignments. *)
  let f = Cnf.make ~num_vars:2 [ [ 1; 2 ] ] in
  Alcotest.(check int) "models" 3 (Solver.count_models f)

let test_solver_agrees_with_enumeration () =
  let rng = SM.create 41 in
  for _ = 1 to 50 do
    let f = Gen.random_3sat rng ~num_vars:6 ~num_clauses:15 in
    let by_enum = Solver.count_models f > 0 in
    Alcotest.(check bool) "dpll = enumeration" by_enum (Solver.is_satisfiable f)
  done

let test_planted_is_satisfiable () =
  let rng = SM.create 43 in
  for _ = 1 to 20 do
    let f, hidden = Gen.planted_3sat rng ~num_vars:8 ~num_clauses:30 in
    Alcotest.(check bool) "hidden satisfies" true (Cnf.eval f hidden);
    Alcotest.(check bool) "solver agrees" true (Solver.is_satisfiable f)
  done

let test_dimacs_roundtrip () =
  let rng = SM.create 47 in
  for _ = 1 to 10 do
    let f = Gen.random_3sat rng ~num_vars:5 ~num_clauses:8 in
    match Dimacs.parse (Dimacs.print f) with
    | Ok f' ->
        Alcotest.(check int) "vars" (Cnf.num_vars f) (Cnf.num_vars f');
        Alcotest.(check bool) "clauses" true (Cnf.clauses f = Cnf.clauses f')
    | Error e -> Alcotest.fail e
  done

let test_dimacs_parse () =
  let text = "c a comment\np cnf 3 2\n1 -2 3 0\n-1 2 0\n" in
  match Dimacs.parse text with
  | Ok f ->
      Alcotest.(check int) "vars" 3 (Cnf.num_vars f);
      Alcotest.(check bool) "clauses" true
        (Cnf.clauses f = [ [ 1; -2; 3 ]; [ -1; 2 ] ])
  | Error e -> Alcotest.fail e

let test_dimacs_multiline_clause () =
  let text = "p cnf 3 1\n1\n2\n3 0\n" in
  match Dimacs.parse text with
  | Ok f -> Alcotest.(check bool) "one clause" true (Cnf.clauses f = [ [ 1; 2; 3 ] ])
  | Error e -> Alcotest.fail e

let test_dimacs_errors () =
  Alcotest.(check bool) "missing header" true (Result.is_error (Dimacs.parse "1 2 0"));
  Alcotest.(check bool) "wrong count" true
    (Result.is_error (Dimacs.parse "p cnf 2 2\n1 0\n"));
  Alcotest.(check bool) "unterminated" true
    (Result.is_error (Dimacs.parse "p cnf 2 1\n1 2\n"));
  Alcotest.(check bool) "out-of-range literal" true
    (Result.is_error (Dimacs.parse "p cnf 1 1\n5 0\n"))

let test_cnf_validation () =
  Alcotest.(check bool) "zero literal rejected" true
    (try
       ignore (Cnf.make ~num_vars:2 [ [ 0 ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty clause rejected" true
    (try
       ignore (Cnf.make ~num_vars:2 [ [] ]);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
    Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
    Alcotest.test_case "three sat" `Quick test_three_sat;
    Alcotest.test_case "unit propagation chain" `Quick test_forced_chain;
    Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
    Alcotest.test_case "pigeonhole minimal" `Quick test_pigeonhole_small;
    Alcotest.test_case "count models" `Quick test_count_models;
    Alcotest.test_case "dpll agrees with enumeration" `Quick test_solver_agrees_with_enumeration;
    Alcotest.test_case "planted formulas satisfiable" `Quick test_planted_is_satisfiable;
    Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "dimacs parse" `Quick test_dimacs_parse;
    Alcotest.test_case "dimacs multiline clause" `Quick test_dimacs_multiline_clause;
    Alcotest.test_case "dimacs errors" `Quick test_dimacs_errors;
    Alcotest.test_case "cnf validation" `Quick test_cnf_validation;
  ]
