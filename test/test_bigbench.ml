(* The large-n engine: streaming builders vs the Digraph route, int32
   kernels vs int kernels, banned sweeps vs skip snapshots, the landmark
   estimator vs the exact social cost, and sampled best response. *)

module Csr = Bbc_graph.Csr
module W = Bbc_graph.Workspace
module SM = Bbc_prng.Splitmix
open Bbc

let families =
  [
    ("ring", Gen_instance.Ring);
    ("tree", Gen_instance.Tree);
    ("willows", Gen_instance.Willows_family);
    ("circulant", Gen_instance.Circulant);
    ("random", Gen_instance.Random_k);
  ]

(* Small parameter grid exercising every family, including willows tails
   of length 0 and > 0 and wrap-around circulants. *)
let grid = [ (24, 1, 3); (40, 2, 7); (60, 3, 11); (90, 2, 42) ]

let test_streaming_equals_digraph_route () =
  List.iter
    (fun (name, fam) ->
      List.iter
        (fun (n, k, seed) ->
          let _, streamed = Gen_instance.streaming fam ~n ~k ~seed in
          let reference = Gen_instance.streaming_reference_csr fam ~n ~k ~seed in
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d k=%d: streaming = of_digraph" name n k)
            true
            (Csr.equal streamed reference))
        grid)
    families

let test_streaming_equals_config_route () =
  List.iter
    (fun (name, fam) ->
      List.iter
        (fun (n, k, seed) ->
          let inst, streamed = Gen_instance.streaming fam ~n ~k ~seed in
          let inst', config = Gen_instance.streaming_reference fam ~n ~k ~seed in
          Alcotest.(check int)
            (Printf.sprintf "%s: same node count" name)
            (Instance.n inst) (Instance.n inst');
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d k=%d: streaming = Config.to_csr" name n k)
            true
            (Csr.equal streamed (Config.to_csr inst' config));
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d k=%d: reference profile feasible" name n k)
            true
            (Config.feasible inst' config))
        grid)
    families

let test_streaming_willows_matches_module () =
  (* When n is exactly a willows size, the streamed profile must be the
     Willows module's construction itself. *)
  let p = { Willows.k = 2; h = 2; l = 3 } in
  let n = Willows.size p in
  let _, config = Willows.build p in
  let _, streamed = Gen_instance.streaming Willows_family ~n ~k:2 ~seed:0 in
  let inst', reference = Gen_instance.streaming_reference Willows_family ~n ~k:2 ~seed:0 in
  Alcotest.(check int) "exact willows size" n (Instance.n inst');
  Alcotest.(check bool) "streamed = willows profile" true
    (Config.equal config reference);
  Alcotest.(check bool) "csr matches too" true
    (Csr.equal streamed (Config.to_csr inst' config))

let test_streaming_random_matches_generator () =
  (* The random family consumes randomness exactly like
     Generators.random_k_out, so the realized edge sets coincide. *)
  List.iter
    (fun (n, k, seed) ->
      let _, config = Gen_instance.streaming_reference Random_k ~n ~k ~seed in
      let g = Bbc_graph.Generators.random_k_out (SM.create seed) ~n ~k in
      Alcotest.(check bool)
        (Printf.sprintf "random n=%d k=%d seed=%d = random_k_out" n k seed)
        true
        (Config.equal config (Config.of_graph g)))
    grid

let test_streaming_circulant_matches_cayley () =
  List.iter
    (fun (n, k, seed) ->
      let _, config = Gen_instance.streaming_reference Circulant ~n ~k ~seed in
      let c = Bbc_group.Cayley.random_circulant (SM.create seed) ~n ~k in
      let _, reference = Cayley_game.to_game c in
      Alcotest.(check bool)
        (Printf.sprintf "circulant n=%d k=%d seed=%d = Cayley" n k seed)
        true
        (Config.equal config reference))
    grid

(* ------------------------------------------------------------------ *)
(* int32 kernels.                                                      *)

let random_weighted rng ~n ~max_len =
  let g = Bbc_graph.Digraph.create n in
  for u = 0 to n - 1 do
    let deg = SM.int rng 4 in
    for _ = 1 to deg do
      let v = SM.int rng n in
      if v <> u then Bbc_graph.Digraph.add_edge g u v (SM.int rng (max_len + 1))
    done
  done;
  g

let check_rows_agree msg n (dist : int array) (dist32 : Csr.dist32) =
  for v = 0 to n - 1 do
    let d32 = Bigarray.Array1.get dist32 v in
    let widened = if d32 = Csr.unreachable32 then Csr.unreachable else Int32.to_int d32 in
    if widened <> dist.(v) then
      Alcotest.failf "%s: vertex %d: int row %d, int32 row %ld" msg v dist.(v) d32
  done

let test_int32_kernels_match_int () =
  let rng = SM.create 514 in
  for case = 1 to 40 do
    let n = 2 + SM.int rng 50 in
    let g =
      if case mod 2 = 0 then
        Bbc_graph.Generators.random_k_out rng ~n ~k:(min (n - 1) (1 + SM.int rng 3))
      else random_weighted rng ~n ~max_len:5
    in
    let csr = Csr.of_digraph g in
    let src = SM.int rng n in
    let ban = if SM.bool rng then SM.int rng n else -1 in
    let dist = Array.make n Csr.unreachable in
    let dist32 = Csr.create_dist32 n in
    let s = Csr.create_scratch () in
    Csr.sssp ~ban csr s ~src ~dist;
    let s32 = Csr.create_scratch () in
    Csr.sssp32 ~ban csr s32 ~src ~dist:dist32;
    check_rows_agree (Printf.sprintf "case %d (ban %d)" case ban) n dist dist32;
    (* reset32 restores a clean row (sentinel everywhere). *)
    Csr.reset32 s32 dist32;
    for v = 0 to n - 1 do
      if Bigarray.Array1.get dist32 v <> Csr.unreachable32 then
        Alcotest.failf "case %d: reset32 left vertex %d dirty" case v
    done
  done

let test_ban_equals_skip_snapshot () =
  let rng = SM.create 99 in
  for _ = 1 to 30 do
    let n = 3 + SM.int rng 30 in
    let g = random_weighted rng ~n ~max_len:4 in
    let full = Csr.of_digraph g in
    let u = SM.int rng n in
    let skipped = Csr.of_digraph ~skip:u g in
    let src = SM.int rng n in
    let a = Array.make n Csr.unreachable in
    let b = Array.make n Csr.unreachable in
    Csr.sssp ~ban:u full (Csr.create_scratch ()) ~src ~dist:a;
    Csr.sssp skipped (Csr.create_scratch ()) ~src ~dist:b;
    Alcotest.(check (array int)) "ban sweep = skip snapshot" b a
  done

let test_workspace_int32_pool () =
  let ws = W.get () in
  let r1 = W.acquire32 ws 17 in
  let r2 = W.acquire32 ws 17 in
  Bigarray.Array1.set r1 3 5l;
  W.release32 ws r1;
  W.release_clean32 ws r2;
  let before = W.pooled32 ws in
  let r3 = W.acquire32 ws 17 in
  Alcotest.(check int) "acquire pops the stack" (before - 1) (W.pooled32 ws);
  for v = 0 to 16 do
    if Bigarray.Array1.get r3 v <> Csr.unreachable32 then
      Alcotest.failf "pooled row dirty at %d" v
  done;
  W.release_clean32 ws r3;
  (* Switching sizes drops the stale stack. *)
  let r4 = W.acquire32 ws 9 in
  Alcotest.(check int) "resize drops pool" 0 (W.pooled32 ws);
  W.release32 ws r4

(* ------------------------------------------------------------------ *)
(* Landmark estimator.                                                 *)

let test_landmark_exact_at_full_sample () =
  List.iter
    (fun (name, fam) ->
      List.iter
        (fun (n, k, seed) ->
          let inst, config = Gen_instance.streaming_reference fam ~n ~k ~seed in
          let csr = Config.to_csr inst config in
          let exact = Eval.social_cost inst config in
          List.iter
            (fun objective ->
              let exact =
                if objective = Objective.Sum then exact
                else Eval.social_cost ~objective inst config
              in
              let e =
                Approx.social_cost ~objective ~landmarks:(Instance.n inst) ~seed:7 inst
                  csr
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s n=%d: L=n estimate flagged exact" name n)
                true e.exact;
              Alcotest.(check (float 0.0))
                (Printf.sprintf "%s n=%d: L=n estimate = Eval.social_cost" name n)
                (float_of_int exact) e.value;
              Alcotest.(check (float 0.0)) "exact bound is 0" 0.0 e.bound)
            [ Objective.Sum; Objective.Max ])
        grid)
    families

let test_landmark_bound_contains_exact () =
  (* Statistical, but deterministic given the seeds: for every family,
     size and landmark seed, the exact total must sit inside
     value +- bound.  A two-thirds landmark fraction keeps the sample
     variance honest at these small sizes (fewer landmarks can miss a
     skewed population's outliers entirely); a 25-seed sweep over this
     grid showed zero misses at this fraction. *)
  let misses = ref 0 and checks = ref 0 in
  List.iter
    (fun (_, fam) ->
      List.iter
        (fun (n, k, seed) ->
          let inst, config = Gen_instance.streaming_reference fam ~n ~k ~seed in
          let csr = Config.to_csr inst config in
          let exact = float_of_int (Eval.social_cost inst config) in
          for lseed = 1 to 5 do
            let e =
              Approx.social_cost
                ~landmarks:(max 16 (2 * Instance.n inst / 3))
                ~seed:lseed inst csr
            in
            incr checks;
            if Float.abs (e.value -. exact) > e.bound then incr misses
          done)
        grid)
    families;
  (* 4-sigma with finite-population correction: even one miss across the
     whole grid would be suspicious; allow none. *)
  Alcotest.(check int)
    (Printf.sprintf "misses out of %d" !checks)
    0 !misses

let test_landmark_jobs_invariant () =
  let inst, config = Gen_instance.streaming_reference Random_k ~n:80 ~k:2 ~seed:5 in
  let csr = Config.to_csr inst config in
  let e1 = Approx.social_cost ~jobs:1 ~landmarks:20 ~seed:3 inst csr in
  let e2 = Approx.social_cost ~jobs:4 ~landmarks:20 ~seed:3 inst csr in
  Alcotest.(check (float 0.0)) "value independent of jobs" e1.value e2.value;
  Alcotest.(check int) "landmark count independent of jobs" e1.landmarks e2.landmarks

(* ------------------------------------------------------------------ *)
(* Sampled best response.                                              *)

let test_sampled_br_improving_only () =
  List.iter
    (fun (name, fam) ->
      List.iter
        (fun (n, k, seed) ->
          let inst, config = Gen_instance.streaming_reference fam ~n ~k ~seed in
          let csr = Config.to_csr inst config in
          let rng = SM.create (seed + 17) in
          for u = 0 to min 14 (Instance.n inst - 1) do
            let current = Eval.node_cost inst config u in
            match Best_response.sampled ~csr ~rng ~sample:3 inst config u with
            | None -> ()
            | Some r ->
                if r.cost >= current then
                  Alcotest.failf "%s n=%d node %d: sampled returned %d >= current %d"
                    name n u r.cost current;
                (* The reported cost is exact for the reported strategy. *)
                let adopted = Config.with_strategy config u r.strategy in
                Alcotest.(check int)
                  (Printf.sprintf "%s node %d: reported cost is exact" name u)
                  (Eval.node_cost inst adopted u)
                  r.cost
          done)
        grid)
    families

let test_sampled_br_full_sample_is_exact () =
  let inst, config = Gen_instance.streaming_reference Random_k ~n:24 ~k:2 ~seed:9 in
  let csr = Config.to_csr inst config in
  for u = 0 to 23 do
    let exact = Best_response.exact inst config u in
    let current = Eval.node_cost inst config u in
    let rng = SM.create u in
    match Best_response.sampled ~csr ~rng ~sample:100 inst config u with
    | Some r ->
        Alcotest.(check int) "full-sample cost = exact" exact.cost r.cost;
        Alcotest.(check (list int)) "full-sample strategy = exact" exact.strategy r.strategy
    | None ->
        Alcotest.(check bool)
          (Printf.sprintf "node %d: no improvement means exact >= current" u)
          true (exact.cost >= current)
  done

let test_sampled_dynamics_strict_improvements () =
  (* Replay the walk step by step and verify that every adopted move
     strictly lowered the mover's cost at the moment it moved. *)
  let inst, config = Gen_instance.streaming_reference Random_k ~n:40 ~k:2 ~seed:12 in
  let cur = ref config in
  let outcome =
    Dynamics.run
      ~policy:(Sampled_best_response { sample = 2; seed = 31 })
      ~on_step:(fun s ->
        if s.moved then begin
          let old_cost = Eval.node_cost inst !cur s.node in
          cur := Config.with_strategy !cur s.node s.strategy;
          let new_cost = Eval.node_cost inst !cur s.node in
          Alcotest.(check int)
            (Printf.sprintf "step %d: cost_after consistent" s.index)
            new_cost s.cost_after;
          if new_cost >= old_cost then
            Alcotest.failf "step %d: node %d moved %d -> %d (not improving)" s.index
              s.node old_cost new_cost
        end)
      ~scheduler:Round_robin ~max_rounds:4 inst config
  in
  let final = Dynamics.final_config outcome in
  Alcotest.(check bool) "final profile feasible" true (Config.feasible inst final);
  Alcotest.(check bool) "replay tracked the walk" true (Config.equal !cur final);
  Alcotest.(check bool) "steps recorded" true ((Dynamics.stats outcome).steps > 0)

let suite =
  [
    ("streaming = of_digraph (bit-identical)", `Quick, test_streaming_equals_digraph_route);
    ("streaming = Config.to_csr", `Quick, test_streaming_equals_config_route);
    ("streaming willows = Willows.build", `Quick, test_streaming_willows_matches_module);
    ("streaming random = Generators.random_k_out", `Quick, test_streaming_random_matches_generator);
    ("streaming circulant = Cayley circulant", `Quick, test_streaming_circulant_matches_cayley);
    ("int32 kernels match int kernels", `Quick, test_int32_kernels_match_int);
    ("ban sweep = skip snapshot", `Quick, test_ban_equals_skip_snapshot);
    ("workspace int32 pool", `Quick, test_workspace_int32_pool);
    ("landmarks: L = n is exact", `Quick, test_landmark_exact_at_full_sample);
    ("landmarks: bound contains exact", `Quick, test_landmark_bound_contains_exact);
    ("landmarks: value independent of jobs", `Quick, test_landmark_jobs_invariant);
    ("sampled BR: improving only", `Quick, test_sampled_br_improving_only);
    ("sampled BR: full sample = exact", `Quick, test_sampled_br_full_sample_is_exact);
    ("sampled dynamics: strict improvements", `Quick, test_sampled_dynamics_strict_improvements);
  ]
