module SO = Bbc.Social_optimum
module I = Bbc.Instance
module C = Bbc.Config

let test_ring_is_optimal_for_k1 () =
  let inst = I.uniform ~n:4 ~k:1 in
  match SO.analyze inst with
  | Some s ->
      (* The social optimum of (4,1) is the directed 4-cycle: each node
         pays 1+2+3 = 6, total 24 = the degree-1 lower bound. *)
      Alcotest.(check int) "optimum" (Bbc.Metrics.social_cost_lower_bound ~n:4 ~k:1)
        s.optimum;
      Alcotest.(check int) "profiles = 4^4" 256 s.profiles;
      Alcotest.(check bool) "has equilibria" true (s.equilibria > 0);
      (* The optimal profile achieves its reported cost. *)
      Alcotest.(check int) "optimal profile cost" s.optimum
        (Bbc.Eval.social_cost inst s.optimal_profile)
  | None -> Alcotest.fail "space should fit"

let test_pos_poa_ordering () =
  let inst = I.uniform ~n:4 ~k:1 in
  match SO.analyze inst with
  | Some s -> (
      match (SO.price_of_stability s, SO.price_of_anarchy s) with
      | Some pos, Some poa ->
          Alcotest.(check bool) "1 <= PoS" true (pos >= 1.0 -. 1e-9);
          Alcotest.(check bool) "PoS <= PoA" true (pos <= poa +. 1e-9)
      | _ -> Alcotest.fail "uniform games have equilibria")
  | None -> Alcotest.fail "space should fit"

let test_pos_is_one_for_small_uniform () =
  (* (4,1): the optimal ring is itself stable, so PoS = 1 exactly. *)
  let inst = I.uniform ~n:4 ~k:1 in
  match SO.analyze inst with
  | Some s ->
      Alcotest.(check (option (float 1e-9))) "PoS = 1" (Some 1.0)
        (SO.price_of_stability s)
  | None -> Alcotest.fail "space should fit"

let test_no_ne_core_has_no_equilibria () =
  let core = Bbc.Gadget.core () in
  match SO.analyze core with
  | Some s ->
      Alcotest.(check int) "no equilibria" 0 s.equilibria;
      Alcotest.(check (option (float 1e-9))) "PoS undefined" None
        (SO.price_of_stability s);
      Alcotest.(check bool) "optimum still computed" true (s.optimum > 0)
  | None -> Alcotest.fail "space should fit"

let test_candidate_restriction () =
  let inst = I.uniform ~n:4 ~k:1 in
  let ring = Array.init 4 (fun v -> [ [ (v + 1) mod 4 ] ]) in
  match SO.analyze ~candidates:ring inst with
  | Some s ->
      Alcotest.(check int) "single profile" 1 s.profiles;
      Alcotest.(check int) "it is the NE" 1 s.equilibria
  | None -> Alcotest.fail "space should fit"

let test_max_objective () =
  let inst = I.uniform ~n:4 ~k:1 in
  match SO.analyze ~objective:Max inst with
  | Some s ->
      (* Max objective: each ring node's max distance is 3, total 12. *)
      Alcotest.(check int) "max optimum" 12 s.optimum
  | None -> Alcotest.fail "space should fit"

let test_abort_on_large () =
  let inst = I.uniform ~n:10 ~k:2 in
  Alcotest.(check bool) "aborts" true (SO.analyze ~max_profiles:1000 inst = None)

let suite =
  [
    Alcotest.test_case "ring optimal for (4,1)" `Quick test_ring_is_optimal_for_k1;
    Alcotest.test_case "PoS <= PoA" `Quick test_pos_poa_ordering;
    Alcotest.test_case "PoS = 1 for (4,1)" `Quick test_pos_is_one_for_small_uniform;
    Alcotest.test_case "no-NE core" `Slow test_no_ne_core_has_no_equilibria;
    Alcotest.test_case "candidate restriction" `Quick test_candidate_restriction;
    Alcotest.test_case "max objective" `Quick test_max_objective;
    Alcotest.test_case "abort on large spaces" `Quick test_abort_on_large;
  ]

let test_local_search_upper_bounds_exact () =
  let rng = Bbc_prng.Splitmix.create 700 in
  let inst = I.uniform ~n:5 ~k:1 in
  let cost, config = SO.local_search rng inst in
  Alcotest.(check int) "realized" cost (Bbc.Eval.social_cost inst config);
  match SO.analyze inst with
  | Some s -> Alcotest.(check bool) "upper bound" true (cost >= s.optimum)
  | None -> Alcotest.fail "space should fit"

let test_local_search_finds_exact_on_small () =
  (* On (4,1) the landscape is easy: hill climbing reaches the optimum. *)
  let rng = Bbc_prng.Splitmix.create 701 in
  let inst = I.uniform ~n:4 ~k:1 in
  let cost, _ = SO.local_search ~restarts:5 rng inst in
  match SO.analyze inst with
  | Some s -> Alcotest.(check int) "optimum reached" s.optimum cost
  | None -> Alcotest.fail "space should fit"

let suite =
  suite
  @ [
      Alcotest.test_case "local search upper-bounds" `Quick test_local_search_upper_bounds_exact;
      Alcotest.test_case "local search exact on (4,1)" `Quick test_local_search_finds_exact_on_small;
    ]
