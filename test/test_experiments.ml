(* Bbc_experiments.Registry: the id scheme the CLI advertises (unique,
   contiguous e1..eN), lookup behavior, and a full quick-mode run of
   every entry — the same sweep `bbc experiment` performs — to keep the
   registry executable end to end. *)

module Registry = Bbc_experiments.Registry

let ids () = List.map (fun e -> e.Registry.id) Registry.all

let test_ids_contiguous () =
  let ids = ids () in
  Alcotest.(check bool) "non-empty" true (ids <> []);
  Alcotest.(check int)
    "unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iteri
    (fun i id -> Alcotest.(check string) "contiguous" (Printf.sprintf "e%d" (i + 1)) id)
    ids

let test_find () =
  List.iter
    (fun id ->
      match Registry.find id with
      | Some e -> Alcotest.(check string) "find returns the entry" id e.Registry.id
      | None -> Alcotest.failf "find %s returned None" id)
    (ids ());
  (match Registry.find (String.uppercase_ascii (List.hd (ids ()))) with
  | Some e -> Alcotest.(check string) "case-insensitive" "e1" e.Registry.id
  | None -> Alcotest.fail "uppercase lookup failed");
  let junk =
    [ ""; "e0"; Printf.sprintf "e%d" (List.length (ids ()) + 1); "e1 "; "x1"; "17"; "ee1" ]
  in
  List.iter
    (fun j ->
      match Registry.find j with
      | None -> ()
      | Some _ -> Alcotest.failf "find accepted junk id %S" j)
    junk

let test_all_run_quick () =
  (* Render to a throwaway buffer: the claim under test is "no entry
     raises in quick mode", not the prose. *)
  let buf = Buffer.create (1 lsl 16) in
  let fmt = Format.formatter_of_buffer buf in
  List.iter
    (fun e ->
      match Registry.run_entry ~quick:true fmt e with
      | () -> Format.pp_print_flush fmt ()
      | exception ex ->
          Alcotest.failf "%s (%s) raised: %s" e.Registry.id e.Registry.title
            (Printexc.to_string ex))
    Registry.all;
  Alcotest.(check bool) "experiments printed output" true (Buffer.length buf > 0)

let suite =
  [
    Alcotest.test_case "ids unique and contiguous" `Quick test_ids_contiguous;
    Alcotest.test_case "find: hits and junk" `Quick test_find;
    Alcotest.test_case "all entries run clean (quick)" `Slow test_all_run_quick;
  ]
