module Json = Bbc.Json

let parse s =
  match Json.of_string s with Ok v -> v | Error e -> Alcotest.failf "parse %S: %s" s e

let check_str name expected v =
  Alcotest.(check string) name expected (Json.to_string v)

let test_print () =
  check_str "null" "null" Json.Null;
  check_str "bool" "true" (Json.Bool true);
  check_str "int" "-42" (Json.Int (-42));
  check_str "float" "1.5" (Json.Float 1.5);
  check_str "nan is null" "null" (Json.Float nan);
  check_str "string" "\"a\\\"b\\n\"" (Json.Str "a\"b\n");
  check_str "control escape" "\"\\u0001\"" (Json.Str "\001");
  check_str "list" "[1,[2],[]]"
    (Json.List [ Json.Int 1; Json.List [ Json.Int 2 ]; Json.List [] ]);
  check_str "object" "{\"a\":1,\"b\":{}}"
    (Json.Obj [ ("a", Json.Int 1); ("b", Json.Obj []) ])

let test_parse_scalars () =
  Alcotest.(check bool) "null" true (parse "null" = Json.Null);
  Alcotest.(check bool) "true" true (parse "true" = Json.Bool true);
  Alcotest.(check bool) "int" true (parse " -17 " = Json.Int (-17));
  Alcotest.(check bool) "float" true (parse "2.5" = Json.Float 2.5);
  Alcotest.(check bool) "exponent is float" true (parse "1e3" = Json.Float 1000.0);
  Alcotest.(check bool) "escapes" true (parse "\"a\\u0041\\n\"" = Json.Str "aA\n")

let test_parse_nested () =
  let v = parse "{\"xs\":[1,2,3],\"o\":{\"y\":null},\"s\":\"hi\"}" in
  Alcotest.(check (option (list int))) "int_list" (Some [ 1; 2; 3 ])
    (Option.bind (Json.member "xs" v) Json.int_list);
  Alcotest.(check bool) "nested member" true
    (Option.bind (Json.member "o" v) (Json.member "y") = Some Json.Null);
  Alcotest.(check (option string)) "str" (Some "hi")
    (Option.bind (Json.member "s" v) Json.to_str)

let test_roundtrip () =
  let cases =
    [
      "null"; "[]"; "{}"; "[1,2.5,\"x\",true,null]";
      "{\"a\":[{\"b\":-3}],\"c\":\"\\\"\"}";
    ]
  in
  List.iter
    (fun s -> Alcotest.(check string) s s (Json.to_string (parse s)))
    cases;
  (* printer -> parser closes the loop too *)
  let v =
    Json.Obj
      [ ("k", Json.List [ Json.Int 1; Json.Float 0.5; Json.Str "\t" ]) ]
  in
  Alcotest.(check bool) "print/parse" true (parse (Json.to_string v) = v)

let test_errors () =
  let bad =
    [ ""; "{"; "[1,]"; "{\"a\"}"; "nul"; "\"unterminated"; "1 2"; "{\"a\":1,}" ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (Result.is_error (Json.of_string s)))
    bad

(* Pathological nesting must come back as a parse error, never a
   Stack_overflow that could kill a server reading untrusted input. *)
let test_depth_limit () =
  let deep n = String.make n '[' ^ String.make n ']' in
  Alcotest.(check bool) "moderate nesting ok" true
    (Result.is_ok (Json.of_string (deep 100)));
  Alcotest.(check bool) "over the limit rejected" true
    (Result.is_error (Json.of_string (deep 600)));
  Alcotest.(check bool) "unclosed bracket bomb rejected" true
    (Result.is_error (Json.of_string (String.make 200_000 '[')));
  Alcotest.(check bool) "object nesting bomb rejected" true
    (Result.is_error
       (Json.of_string (String.concat "" (List.init 600 (fun _ -> "{\"a\":")))))

let test_accessors () =
  Alcotest.(check (option int)) "to_int" (Some 3) (Json.to_int (Json.Int 3));
  Alcotest.(check (option int)) "to_int float" None (Json.to_int (Json.Float 3.5));
  Alcotest.(check bool) "to_float of int" true
    (Json.to_float (Json.Int 2) = Some 2.0);
  Alcotest.(check (option bool)) "to_bool" (Some false) (Json.to_bool (Json.Bool false));
  Alcotest.(check bool) "member missing" true
    (Json.member "z" (Json.Obj [ ("a", Json.Null) ]) = None);
  Alcotest.(check bool) "int_list rejects mixed" true
    (Json.int_list (Json.List [ Json.Int 1; Json.Str "x" ]) = None)

let suite =
  [
    Alcotest.test_case "printer" `Quick test_print;
    Alcotest.test_case "parse scalars" `Quick test_parse_scalars;
    Alcotest.test_case "parse nested" `Quick test_parse_nested;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "depth limit" `Quick test_depth_limit;
    Alcotest.test_case "accessors" `Quick test_accessors;
  ]
