(* The multicore execution engine: primitive operations against their
   sequential counterparts on randomized inputs, and the determinism
   contract of the parallelized hot paths — byte-identical results for
   every job count. *)

module P = Bbc_parallel
module Splitmix = Bbc_prng.Splitmix
module I = Bbc.Instance
module C = Bbc.Config

let random_instance_config seed ~n ~k =
  let rng = Splitmix.create seed in
  let inst = I.uniform ~n ~k in
  let g = Bbc_graph.Generators.random_k_out (Splitmix.split rng) ~n ~k in
  (inst, C.of_graph g)

(* ------------------------------------------------------------------ *)
(* Primitives on randomized inputs.                                    *)

let test_parallel_map_matches_sequential () =
  let rng = Splitmix.create 11 in
  for round = 1 to 20 do
    let len = Splitmix.int rng 200 in
    let arr = Array.init len (fun _ -> Splitmix.int_in_range rng ~lo:(-1000) ~hi:1000) in
    let f x = (x * 31) + (x * x mod 7) in
    let jobs = 1 + Splitmix.int rng 6 in
    Alcotest.(check (array int))
      (Printf.sprintf "map round %d (len=%d jobs=%d)" round len jobs)
      (Array.map f arr)
      (P.parallel_map ~jobs f arr)
  done

let test_parallel_reduce_matches_sequential () =
  let rng = Splitmix.create 12 in
  for round = 1 to 20 do
    let len = Splitmix.int rng 500 in
    let data = Array.init len (fun _ -> Splitmix.int_in_range rng ~lo:(-50) ~hi:50) in
    let jobs = 1 + Splitmix.int rng 6 in
    let expect = Array.fold_left ( + ) 0 data in
    Alcotest.(check int)
      (Printf.sprintf "sum round %d" round)
      expect
      (P.parallel_reduce ~jobs ~neutral:0 ~combine:( + ) 0 len (fun i -> data.(i)));
    let expect_max = Array.fold_left max min_int data in
    if len > 0 then
      Alcotest.(check int)
        (Printf.sprintf "max round %d" round)
        expect_max
        (P.parallel_reduce ~jobs ~neutral:min_int ~combine:max 0 len (fun i -> data.(i)))
  done

let test_parallel_for_covers_range () =
  let rng = Splitmix.create 13 in
  for _ = 1 to 10 do
    let len = 1 + Splitmix.int rng 300 in
    let jobs = 1 + Splitmix.int rng 6 in
    let chunk = 1 + Splitmix.int rng 17 in
    let hits = Array.make len 0 in
    P.parallel_for ~jobs ~chunk 0 len (fun i -> hits.(i) <- hits.(i) + 1);
    Alcotest.(check bool) "each index exactly once" true (Array.for_all (( = ) 1) hits)
  done

let test_find_first_is_sequential_winner () =
  let rng = Splitmix.create 14 in
  for _ = 1 to 20 do
    let len = 1 + Splitmix.int rng 400 in
    (* Several hits; the parallel scan must report the lowest index. *)
    let hit = Array.init len (fun _ -> Splitmix.int rng 10 = 0) in
    let jobs = 1 + Splitmix.int rng 6 in
    let expect =
      let rec go i = if i >= len then None else if hit.(i) then Some i else go (i + 1) in
      go 0
    in
    Alcotest.(check (option int))
      "lowest hit"
      expect
      (P.parallel_find_first ~jobs ~chunk:7 0 len (fun i -> if hit.(i) then Some i else None))
  done

let test_exceptions_propagate () =
  (match P.parallel_for ~jobs:4 0 1000 (fun i -> if i = 500 then failwith "boom") with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ());
  (* The pool survives a failed task. *)
  Alcotest.(check bool) "pool usable after exception" true
    (P.parallel_exists ~jobs:4 0 100 (fun i -> i = 99))

let test_nested_calls_degrade () =
  let outer =
    P.parallel_init ~jobs:4 8 (fun i ->
        P.parallel_reduce ~jobs:4 ~neutral:0 ~combine:( + ) 0 50 (fun j -> i + j))
  in
  Alcotest.(check (array int))
    "nested = sequential"
    (Array.init 8 (fun i -> (50 * i) + 1225))
    outer

let test_jobs_for () =
  Alcotest.(check int) "explicit wins" 4 (P.jobs_for ~jobs:4 ~threshold:1000 10);
  Alcotest.(check int) "explicit floored" 1 (P.jobs_for ~jobs:0 ~threshold:0 10);
  Alcotest.(check int) "below threshold sequential" 1 (P.jobs_for ~threshold:64 63)

(* ------------------------------------------------------------------ *)
(* Hot paths: jobs=1 vs jobs=4 identical.                              *)

let test_all_costs_jobs_invariant () =
  List.iter
    (fun (seed, n, k) ->
      let inst, config = random_instance_config seed ~n ~k in
      Alcotest.(check (array int))
        (Printf.sprintf "all_costs n=%d" n)
        (Bbc.Eval.all_costs ~jobs:1 inst config)
        (Bbc.Eval.all_costs ~jobs:4 inst config);
      Alcotest.(check int)
        (Printf.sprintf "social_cost n=%d" n)
        (Bbc.Eval.social_cost ~jobs:1 inst config)
        (Bbc.Eval.social_cost ~jobs:4 inst config))
    [ (21, 30, 2); (22, 77, 3); (23, 150, 2) ]

let test_all_costs_max_objective_jobs_invariant () =
  let inst, config = random_instance_config 31 ~n:90 ~k:2 in
  Alcotest.(check (array int))
    "all_costs max objective"
    (Bbc.Eval.all_costs ~objective:Max ~jobs:1 inst config)
    (Bbc.Eval.all_costs ~objective:Max ~jobs:4 inst config)

let test_apsp_jobs_invariant () =
  (* n >= 128 so the parallel Floyd–Warshall path actually engages. *)
  let rng = Splitmix.create 41 in
  let g = Bbc_graph.Generators.random_k_out rng ~n:140 ~k:3 in
  (* Mix in some non-unit lengths. *)
  for _ = 1 to 100 do
    let u = Splitmix.int rng 140 and v = Splitmix.int rng 140 in
    if u <> v then Bbc_graph.Digraph.add_edge g u v (1 + Splitmix.int rng 5)
  done;
  let m1 = Bbc_graph.Apsp.matrix (Bbc_graph.Apsp.compute ~jobs:1 g) in
  let m4 = Bbc_graph.Apsp.matrix (Bbc_graph.Apsp.compute ~jobs:4 g) in
  Alcotest.(check bool) "matrices equal" true (m1 = m4)

let test_stability_jobs_invariant () =
  (* A stable construction and an unstable random profile. *)
  let willows_inst, willows_cfg = Bbc.Willows.build { k = 2; h = 3; l = 1 } in
  Alcotest.(check bool) "willows stable under 4 domains" true
    (Bbc.Stability.is_stable ~jobs:4 willows_inst willows_cfg);
  Alcotest.(check bool) "is_stable_parallel wrapper agrees" true
    (Bbc.Stability.is_stable_parallel ~domains:3 willows_inst willows_cfg);
  let inst, config = random_instance_config 51 ~n:40 ~k:2 in
  Alcotest.(check bool)
    "same verdict"
    (Bbc.Stability.is_stable ~jobs:1 inst config)
    (Bbc.Stability.is_stable ~jobs:4 inst config);
  (* find_deviation reports the lowest unstable node either way. *)
  let dev_node ?jobs () =
    Option.map
      (fun (d : Bbc.Stability.deviation) -> (d.node, d.current_cost, d.better))
      (Bbc.Stability.find_deviation ?jobs inst config)
  in
  Alcotest.(check bool) "same first deviation" true (dev_node ~jobs:1 () = dev_node ~jobs:4 ());
  Alcotest.(check (list int))
    "same unstable nodes"
    (Bbc.Stability.unstable_nodes ~jobs:1 inst config)
    (Bbc.Stability.unstable_nodes ~jobs:4 inst config);
  Alcotest.(check int)
    "same stability gap"
    (Bbc.Stability.stability_gap ~jobs:1 inst config)
    (Bbc.Stability.stability_gap ~jobs:4 inst config)

let check_configs_equal msg l1 l2 =
  Alcotest.(check bool) msg true (List.length l1 = List.length l2 && List.for_all2 C.equal l1 l2)

let test_exhaustive_complete_jobs_invariant () =
  (* Complete enumeration: everything (including [examined]) must agree. *)
  let inst = I.uniform ~n:5 ~k:1 in
  let r1 = Bbc.Exhaustive.search ~limit:max_int ~jobs:1 inst in
  let r4 = Bbc.Exhaustive.search ~limit:max_int ~jobs:4 inst in
  check_configs_equal "equilibria lists" r1.equilibria r4.equilibria;
  Alcotest.(check int) "examined" r1.examined r4.examined;
  Alcotest.(check bool) "complete" r1.complete r4.complete;
  Alcotest.(check (option int))
    "count_equilibria"
    (Bbc.Exhaustive.count_equilibria ~jobs:1 inst)
    (Bbc.Exhaustive.count_equilibria ~jobs:4 inst)

let test_exhaustive_limited_jobs_invariant () =
  (* Early abort: the reported equilibria must still be the first ones in
     enumeration order, for several limits and a non-uniform instance. *)
  let insts =
    [
      ("uniform n=5 k=2", I.uniform ~n:5 ~k:2);
      ("sparse weights", Bbc.Gen_instance.sparse_weights (Splitmix.create 7) ~n:5 ~k:2 ());
    ]
  in
  List.iter
    (fun (name, inst) ->
      List.iter
        (fun limit ->
          let r1 = Bbc.Exhaustive.search ~limit ~jobs:1 inst in
          let r4 = Bbc.Exhaustive.search ~limit ~jobs:4 inst in
          check_configs_equal
            (Printf.sprintf "%s limit=%d equilibria" name limit)
            r1.equilibria r4.equilibria;
          Alcotest.(check bool)
            (Printf.sprintf "%s limit=%d complete" name limit)
            r1.complete r4.complete)
        [ 1; 2; 5 ])
    insts

let test_exhaustive_early_abort_finds_equilibrium () =
  (* The (n,1)-uniform game has pure equilibria (directed rings); the
     parallel limit=1 search must surface one and mark the search
     incomplete (it stopped early). *)
  let inst = I.uniform ~n:5 ~k:1 in
  let r = Bbc.Exhaustive.search ~limit:1 ~jobs:4 inst in
  (match r.equilibria with
  | [ config ] ->
      Alcotest.(check bool) "found profile is stable" true (Bbc.Stability.is_stable inst config)
  | other -> Alcotest.failf "expected exactly one equilibrium, got %d" (List.length other));
  Alcotest.(check bool) "aborted early" false r.complete;
  Alcotest.(check (option bool))
    "has_equilibrium under 4 domains"
    (Some true)
    (Bbc.Exhaustive.has_equilibrium ~jobs:4 inst)

let test_exhaustive_no_equilibrium_jobs_invariant () =
  (* A candidate restriction of the (4,1)-uniform game that provably
     contains no pure NE (checked by full enumeration): both job counts
     must certify the same absence after examining the whole space. *)
  let inst = I.uniform ~n:4 ~k:1 in
  let candidates = [| [ [ 1 ]; [ 2 ] ]; [ [ 2 ]; [ 3 ] ]; [ [ 3 ]; [ 1 ] ]; [ [ 1 ]; [ 2 ] ] |] in
  let r1 = Bbc.Exhaustive.search ~candidates ~limit:1 ~jobs:1 inst in
  let r4 = Bbc.Exhaustive.search ~candidates ~limit:1 ~jobs:4 inst in
  Alcotest.(check bool) "no equilibrium (seq)" true (r1.equilibria = []);
  Alcotest.(check bool) "no equilibrium (par)" true (r4.equilibria = []);
  Alcotest.(check bool) "both complete" true (r1.complete && r4.complete);
  Alcotest.(check int) "same examined" r1.examined r4.examined

let test_dynamics_jobs_independent () =
  (* The walk itself is sequential, but Max_cost_first fans its per-node
     improving scan over the pool; outcomes must not depend on it. *)
  let inst, config = random_instance_config 61 ~n:12 ~k:2 in
  let run jobs =
    P.set_default_jobs jobs;
    Fun.protect
      ~finally:(fun () -> P.set_default_jobs 1)
      (fun () ->
        Bbc.Dynamics.run ~scheduler:Bbc.Dynamics.Max_cost_first ~max_rounds:200 inst config)
  in
  let o1 = run 1 and o4 = run 4 in
  Alcotest.(check bool) "same final config" true
    (C.equal (Bbc.Dynamics.final_config o1) (Bbc.Dynamics.final_config o4));
  Alcotest.(check bool) "same stats" true (Bbc.Dynamics.stats o1 = Bbc.Dynamics.stats o4)

let suite =
  [
    Alcotest.test_case "parallel_map matches sequential" `Quick test_parallel_map_matches_sequential;
    Alcotest.test_case "parallel_reduce matches sequential" `Quick test_parallel_reduce_matches_sequential;
    Alcotest.test_case "parallel_for covers range once" `Quick test_parallel_for_covers_range;
    Alcotest.test_case "find_first returns lowest index" `Quick test_find_first_is_sequential_winner;
    Alcotest.test_case "exceptions propagate, pool survives" `Quick test_exceptions_propagate;
    Alcotest.test_case "nested calls degrade to sequential" `Quick test_nested_calls_degrade;
    Alcotest.test_case "jobs_for policy" `Quick test_jobs_for;
    Alcotest.test_case "all_costs jobs-invariant" `Quick test_all_costs_jobs_invariant;
    Alcotest.test_case "all_costs max objective jobs-invariant" `Quick test_all_costs_max_objective_jobs_invariant;
    Alcotest.test_case "apsp jobs-invariant" `Quick test_apsp_jobs_invariant;
    Alcotest.test_case "stability jobs-invariant" `Quick test_stability_jobs_invariant;
    Alcotest.test_case "exhaustive complete jobs-invariant" `Quick test_exhaustive_complete_jobs_invariant;
    Alcotest.test_case "exhaustive limited jobs-invariant" `Quick test_exhaustive_limited_jobs_invariant;
    Alcotest.test_case "exhaustive early abort finds NE" `Quick test_exhaustive_early_abort_finds_equilibrium;
    Alcotest.test_case "exhaustive absence certified in parallel" `Quick test_exhaustive_no_equilibrium_jobs_invariant;
    Alcotest.test_case "dynamics independent of pool size" `Quick test_dynamics_jobs_independent;
  ]
