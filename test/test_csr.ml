module D = Bbc_graph.Digraph
module P = Bbc_graph.Paths
module Csr = Bbc_graph.Csr
module W = Bbc_graph.Workspace
module G = Bbc_graph.Generators
module SM = Bbc_prng.Splitmix

(* Random digraph with arbitrary lengths (including 0) and isolated
   vertices — the shapes the kernels must agree with the list-graph
   reference on. *)
let random_weighted rng ~n ~max_len =
  let g = D.create n in
  for u = 0 to n - 1 do
    if SM.int rng 4 > 0 then begin
      let deg = 1 + SM.int rng 3 in
      for _ = 1 to deg do
        let v = SM.int rng n in
        if v <> u then D.add_edge g u v (SM.int rng (max_len + 1))
      done
    end
  done;
  g

let fresh_sweep csr src =
  let dist = Array.make (Csr.n csr) Csr.unreachable in
  Csr.sssp csr (Csr.create_scratch ()) ~src ~dist;
  dist

let test_bfs_matches_reference () =
  let rng = SM.create 2024 in
  for _ = 1 to 30 do
    let n = 5 + SM.int rng 40 in
    let g = G.random_k_out rng ~n ~k:(1 + SM.int rng 3) in
    let csr = Csr.of_digraph g in
    Alcotest.(check bool) "unit graph detected" true (Csr.unit_lengths csr);
    let src = SM.int rng n in
    Alcotest.(check (array int)) "bfs = Paths.bfs" (P.bfs g src) (fresh_sweep csr src)
  done

let test_dijkstra_matches_reference () =
  let rng = SM.create 7777 in
  for _ = 1 to 30 do
    let n = 2 + SM.int rng 40 in
    let g = random_weighted rng ~n ~max_len:4 in
    let csr = Csr.of_digraph g in
    let src = SM.int rng n in
    let dist = Array.make n Csr.unreachable in
    Csr.dijkstra csr (Csr.create_scratch ()) ~src ~dist;
    Alcotest.(check (array int)) "dijkstra = Paths.dijkstra" (P.dijkstra g src) dist
  done

let test_sssp_dispatch_zero_lengths () =
  (* Zero-length edges force the Dijkstra path even though BFS-shaped. *)
  let g = D.of_edges 4 [ (0, 1, 0); (1, 2, 0); (2, 3, 2) ] in
  let csr = Csr.of_digraph g in
  Alcotest.(check bool) "not unit" false (Csr.unit_lengths csr);
  Alcotest.(check (array int)) "sssp" [| 0; 0; 0; 2 |] (fresh_sweep csr 0)

let test_disconnected () =
  let g = D.create 5 in
  D.add_edge g 0 1 1;
  let csr = Csr.of_digraph g in
  let d = fresh_sweep csr 0 in
  Alcotest.(check int) "reached" 1 d.(1);
  Alcotest.(check int) "isolated" Csr.unreachable d.(3)

let test_skip_matches_removed () =
  let rng = SM.create 31 in
  for _ = 1 to 20 do
    let n = 3 + SM.int rng 20 in
    let g = random_weighted rng ~n ~max_len:3 in
    let u = SM.int rng n in
    let src = SM.int rng n in
    let pruned = D.copy g in
    List.iter (fun (v, _) -> D.remove_edge pruned u v) (D.out_edges g u);
    Alcotest.(check (array int))
      "of_digraph ~skip = sweep of pruned graph"
      (fresh_sweep (Csr.of_digraph pruned) src)
      (fresh_sweep (Csr.of_digraph ~skip:u g) src)
  done

let test_builder_matches_of_digraph () =
  let rng = SM.create 404 in
  for _ = 1 to 20 do
    let n = 2 + SM.int rng 25 in
    let g = random_weighted rng ~n ~max_len:3 in
    let m = List.length (D.edges g) in
    (* Overestimate capacity on purpose: [finish] must shrink. *)
    let b = Csr.builder ~n ~m:(m + 5) in
    for u = 0 to n - 1 do
      List.iter (fun (v, len) -> Csr.add b u v len) (D.out_edges g u)
    done;
    let built = Csr.finish b in
    Alcotest.(check int) "edge count" m (Csr.edge_count built);
    let src = SM.int rng n in
    Alcotest.(check (array int))
      "same distances" (fresh_sweep (Csr.of_digraph g) src) (fresh_sweep built src)
  done

let test_builder_rejects_unsorted () =
  let b = Csr.builder ~n:3 ~m:2 in
  Csr.add b 1 0 1;
  Alcotest.check_raises "descending source" (Invalid_argument "Csr.add: sources must be non-decreasing")
    (fun () -> Csr.add b 0 1 1)

let test_buffer_reuse_with_reset () =
  (* One scratch + one buffer across every source of many graphs: after
     [reset] the buffer must behave exactly like a fresh allocation. *)
  let rng = SM.create 555 in
  let scratch = Csr.create_scratch () in
  let buf = ref [||] in
  for _ = 1 to 10 do
    let n = 2 + SM.int rng 30 in
    let g = random_weighted rng ~n ~max_len:4 in
    let csr = Csr.of_digraph g in
    if Array.length !buf < n then buf := Array.make n Csr.unreachable;
    for src = 0 to n - 1 do
      Csr.sssp csr scratch ~src ~dist:!buf;
      let expect = P.shortest g src in
      for v = 0 to n - 1 do
        if !buf.(v) <> expect.(v) then
          Alcotest.failf "reused buffer diverges at src=%d v=%d" src v
      done;
      Csr.reset scratch !buf
    done;
    Array.iteri
      (fun i d ->
        if d <> Csr.unreachable then Alcotest.failf "reset left entry %d dirty" i)
      !buf
  done

let test_apsp_matches_floyd_warshall () =
  let rng = SM.create 97 in
  for _ = 1 to 10 do
    let n = 2 + SM.int rng 25 in
    let g = random_weighted rng ~n ~max_len:3 in
    let sweep = Bbc_graph.Apsp.matrix (Bbc_graph.Apsp.compute g) in
    let oracle = Bbc_graph.Apsp.matrix (Bbc_graph.Apsp.floyd_warshall g) in
    Array.iteri
      (fun i row -> Alcotest.(check (array int)) (Printf.sprintf "row %d" i) oracle.(i) row)
      sweep
  done

let test_shortest_csr_fast_path () =
  (* Above the dispatch threshold, [Paths.shortest] goes through the CSR
     kernels; the answers must not change. *)
  let rng = SM.create 12 in
  let n = 300 in
  let g = G.random_k_out rng ~n ~k:2 in
  let src = 17 in
  Alcotest.(check (array int)) "fast path = bfs" (P.bfs g src) (P.shortest g src);
  Alcotest.(check (array int)) "explicit csr entry" (P.bfs g src) (P.shortest_csr (Csr.of_digraph g) src)

let test_workspace_rows_clean () =
  let ws = W.get () in
  let r1 = W.acquire ws 16 in
  Array.iteri
    (fun i d -> if d <> Csr.unreachable then Alcotest.failf "fresh row dirty at %d" i)
    r1;
  r1.(3) <- 42;
  W.release ws r1;
  let r2 = W.acquire ws 16 in
  Alcotest.(check int) "recycled row is clean" Csr.unreachable r2.(3);
  W.release ws r2;
  Alcotest.(check bool) "pool retains rows" true (W.pooled ws >= 1)

(* Random unit-length digraph with isolated vertices — the MS-BFS
   dispatch shape ([random_weighted] draws 0-length edges, which defeat
   [unit_lengths]). *)
let random_unit rng ~n =
  let g = D.create n in
  for u = 0 to n - 1 do
    if SM.int rng 4 > 0 then begin
      let deg = 1 + SM.int rng 3 in
      for _ = 1 to deg do
        let v = SM.int rng n in
        if v <> u then D.add_edge g u v 1
      done
    end
  done;
  g

let test_msbfs_matches_scalar () =
  let rng = SM.create 6262 in
  for iter = 1 to 25 do
    let n = 2 + SM.int rng 60 in
    (* Every fifth graph is dense so the direction-optimizing pass
       actually flips to bottom-up. *)
    let g =
      if iter mod 5 = 0 then G.random_k_out rng ~n ~k:(max 1 (n / 2))
      else random_unit rng ~n
    in
    let csr = Csr.of_digraph g in
    let k = 1 + SM.int rng (min n Csr.batch_width) in
    (* Sources drawn with replacement: duplicates must behave like
       independent sweeps. *)
    let srcs = Array.init k (fun _ -> SM.int rng n) in
    let rows = Array.init k (fun _ -> Array.make n Csr.unreachable) in
    Csr.msbfs csr (Csr.create_scratch ()) ~srcs ~rows;
    Array.iteri
      (fun i src ->
        Alcotest.(check (array int))
          (Printf.sprintf "msbfs row %d = Paths.bfs" i)
          (P.bfs g src) rows.(i))
      srcs
  done

let test_msbfs_ban_matches_scalar () =
  let rng = SM.create 4242 in
  for _ = 1 to 20 do
    let n = 3 + SM.int rng 40 in
    let g = random_unit rng ~n in
    let csr = Csr.of_digraph g in
    let u = SM.int rng n in
    let k = min n Csr.batch_width in
    let srcs = Array.init k (fun i -> i mod n) in
    let rows = Array.init k (fun _ -> Array.make n Csr.unreachable) in
    Csr.msbfs ~ban:u csr (Csr.create_scratch ()) ~srcs ~rows;
    Array.iteri
      (fun i src ->
        let expect = Array.make n Csr.unreachable in
        Csr.bfs ~ban:u csr (Csr.create_scratch ()) ~src ~dist:expect;
        Alcotest.(check (array int))
          (Printf.sprintf "banned msbfs row %d" i)
          expect rows.(i))
      srcs
  done

let test_sssp_batch_windows () =
  (* n = 130 spans a full window, a second full window, and a ragged
     tail of 6 — plus an exactly-batch_width batch (the full-mask
     window, where the sign-bit guard matters). *)
  let rng = SM.create 130130 in
  let n = 130 in
  let g = random_unit rng ~n in
  let csr = Csr.of_digraph g in
  let scratch = Csr.create_scratch () in
  let check_all k =
    let srcs = Array.init k Fun.id in
    let rows = Array.init k (fun _ -> Array.make n Csr.unreachable) in
    Csr.sssp_batch csr scratch ~srcs ~rows;
    for i = 0 to k - 1 do
      Alcotest.(check (array int)) (Printf.sprintf "k=%d row %d" k i) (P.bfs g i) rows.(i)
    done;
    (* Multi-window batches fall back to full fills in reset_rows; both
       paths must leave every row clean. *)
    Csr.reset_rows scratch ~rows;
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun v d ->
            if d <> Csr.unreachable then
              Alcotest.failf "reset_rows left row %d entry %d dirty" i v)
          row)
      rows
  in
  check_all n;
  check_all Csr.batch_width;
  check_all 1

let test_msbfs32_matches_int () =
  let rng = SM.create 3232 in
  for _ = 1 to 15 do
    let n = 2 + SM.int rng 50 in
    let g = random_unit rng ~n in
    let csr = Csr.of_digraph g in
    let k = 1 + SM.int rng (min n Csr.batch_width) in
    let srcs = Array.init k (fun _ -> SM.int rng n) in
    let rows32 = Array.init k (fun _ -> Csr.create_dist32 n) in
    Csr.sssp_batch32 csr (Csr.create_scratch ()) ~srcs ~rows:rows32;
    Array.iteri
      (fun i src ->
        let expect = P.bfs g src in
        for v = 0 to n - 1 do
          let got = Bigarray.Array1.get rows32.(i) v in
          let want =
            if expect.(v) = Csr.unreachable then Csr.unreachable32
            else Int32.of_int expect.(v)
          in
          if got <> want then Alcotest.failf "int32 row %d diverges at v=%d" i v
        done)
      srcs
  done

let test_sssp_batch_weighted_dispatch () =
  (* Non-unit snapshots must route through per-source Dijkstra. *)
  let rng = SM.create 909 in
  for _ = 1 to 10 do
    let n = 3 + SM.int rng 30 in
    let g = random_weighted rng ~n ~max_len:4 in
    let csr = Csr.of_digraph g in
    let k = 1 + SM.int rng (min n 8) in
    let srcs = Array.init k (fun _ -> SM.int rng n) in
    let rows = Array.init k (fun _ -> Array.make n Csr.unreachable) in
    Csr.sssp_batch csr (Csr.create_scratch ()) ~srcs ~rows;
    Array.iteri
      (fun i src ->
        Alcotest.(check (array int))
          (Printf.sprintf "weighted batch row %d = dijkstra" i)
          (P.dijkstra g src) rows.(i))
      srcs
  done

let test_batch_reuse_and_clean_pool () =
  (* One scratch across many graphs and sizes (the self-cleaning bitmap
     invariant), pooled rows acquired in batches, restored through
     [reset_rows], and returned clean. *)
  let rng = SM.create 7171 in
  let scratch = Csr.create_scratch () in
  let ws = W.get () in
  for _ = 1 to 8 do
    let n = 4 + SM.int rng 60 in
    let g = random_unit rng ~n in
    let csr = Csr.of_digraph g in
    let k = min n Csr.batch_width in
    let srcs = Array.init k Fun.id in
    let rows = W.acquire_many ws n k in
    Array.iter
      (fun row ->
        Array.iteri
          (fun i d ->
            if d <> Csr.unreachable then Alcotest.failf "acquired row dirty at %d" i)
          row)
      rows;
    Csr.sssp_batch csr scratch ~srcs ~rows;
    Array.iteri
      (fun i src ->
        Alcotest.(check (array int))
          (Printf.sprintf "reused scratch row %d" i)
          (P.bfs g src) rows.(i))
      srcs;
    Csr.reset_rows scratch ~rows;
    Array.iter
      (fun row ->
        Array.iteri
          (fun i d ->
            if d <> Csr.unreachable then Alcotest.failf "reset_rows left entry %d dirty" i)
          row)
      rows;
    W.release_clean_many ws rows
  done;
  Alcotest.(check bool) "pool retains batch rows" true (W.pooled ws >= 1)

let test_pooled_best_response_jobs_invariant () =
  (* Pooled rows + per-domain workspaces: the parallel from-scratch
     stability scan (which runs pooled Best_response enumerations on
     every domain) must agree with the sequential one, and repeated
     Eval fan-outs must agree across job counts. *)
  let rng = SM.create 808 in
  for _ = 1 to 8 do
    let n = 12 in
    let inst = Bbc.Instance.uniform ~n ~k:2 in
    let c = Bbc.Config.of_graph (G.random_k_out rng ~n ~k:2) in
    let seq = Bbc.Stability.is_stable ~jobs:1 ~incremental:false inst c in
    let par = Bbc.Stability.is_stable ~jobs:4 ~incremental:false inst c in
    Alcotest.(check bool) "stability verdict jobs-invariant" seq par;
    Alcotest.(check (array int))
      "all_costs jobs-invariant"
      (Bbc.Eval.all_costs ~jobs:1 inst c)
      (Bbc.Eval.all_costs ~jobs:4 inst c)
  done

let suite =
  [
    Alcotest.test_case "bfs matches reference" `Quick test_bfs_matches_reference;
    Alcotest.test_case "dijkstra matches reference" `Quick test_dijkstra_matches_reference;
    Alcotest.test_case "zero lengths dispatch" `Quick test_sssp_dispatch_zero_lengths;
    Alcotest.test_case "disconnected graphs" `Quick test_disconnected;
    Alcotest.test_case "skip = removed out-edges" `Quick test_skip_matches_removed;
    Alcotest.test_case "builder matches of_digraph" `Quick test_builder_matches_of_digraph;
    Alcotest.test_case "builder rejects unsorted" `Quick test_builder_rejects_unsorted;
    Alcotest.test_case "buffer reuse with reset" `Quick test_buffer_reuse_with_reset;
    Alcotest.test_case "apsp matches floyd-warshall" `Quick test_apsp_matches_floyd_warshall;
    Alcotest.test_case "shortest csr fast path" `Quick test_shortest_csr_fast_path;
    Alcotest.test_case "workspace rows stay clean" `Quick test_workspace_rows_clean;
    Alcotest.test_case "msbfs matches scalar bfs" `Quick test_msbfs_matches_scalar;
    Alcotest.test_case "msbfs with ban" `Quick test_msbfs_ban_matches_scalar;
    Alcotest.test_case "sssp_batch windows + ragged tail" `Quick test_sssp_batch_windows;
    Alcotest.test_case "msbfs32 matches int rows" `Quick test_msbfs32_matches_int;
    Alcotest.test_case "sssp_batch weighted dispatch" `Quick
      test_sssp_batch_weighted_dispatch;
    Alcotest.test_case "batch reuse + clean pool" `Quick test_batch_reuse_and_clean_pool;
    Alcotest.test_case "pooled best response jobs-invariant" `Quick
      test_pooled_best_response_jobs_invariant;
  ]
