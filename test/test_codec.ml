module Codec = Bbc.Codec
module I = Bbc.Instance
module C = Bbc.Config

let instances_equal a b =
  let n = I.n a in
  n = I.n b
  && I.penalty a = I.penalty b
  && List.for_all
       (fun u ->
         I.budget a u = I.budget b u
         && List.for_all
              (fun v ->
                u = v
                || I.weight a u v = I.weight b u v
                   && I.cost a u v = I.cost b u v
                   && I.length a u v = I.length b u v)
              (List.init n Fun.id))
       (List.init n Fun.id)

let test_uniform_roundtrip () =
  let inst = I.uniform ~n:7 ~k:3 in
  match Codec.instance_of_string (Codec.instance_to_string inst) with
  | Ok inst' ->
      Alcotest.(check bool) "uniform roundtrip" true (instances_equal inst inst');
      Alcotest.(check bool) "still uniform" true (I.is_uniform inst')
  | Error e -> Alcotest.fail e

let test_general_roundtrip () =
  let weight = [| [| 0; 3; 0 |]; [| 1; 0; 2 |]; [| 0; 5; 0 |] |] in
  let cost = [| [| 0; 2; 1 |]; [| 1; 0; 1 |]; [| 3; 1; 0 |] |] in
  let length = [| [| 1; 4; 1 |]; [| 2; 1; 1 |]; [| 1; 1; 1 |] |] in
  let inst = I.general ~weight ~cost ~length ~budget:[| 2; 1; 3 |] () in
  match Codec.instance_of_string (Codec.instance_to_string inst) with
  | Ok inst' -> Alcotest.(check bool) "general roundtrip" true (instances_equal inst inst')
  | Error e -> Alcotest.fail e

let test_gadget_roundtrip () =
  let inst = Bbc.Gadget.no_nash ~n:11 in
  match Codec.instance_of_string (Codec.instance_to_string inst) with
  | Ok inst' -> Alcotest.(check bool) "gadget roundtrip" true (instances_equal inst inst')
  | Error e -> Alcotest.fail e

let test_config_roundtrip () =
  let c = C.of_lists 5 [| [ 1; 3 ]; []; [ 0 ]; [ 2; 4 ]; [] |] in
  match Codec.config_of_string (Codec.config_to_string c) with
  | Ok c' -> Alcotest.(check bool) "config roundtrip" true (C.equal c c')
  | Error e -> Alcotest.fail e

let test_empty_config_roundtrip () =
  let c = C.empty 4 in
  match Codec.config_of_string (Codec.config_to_string c) with
  | Ok c' -> Alcotest.(check bool) "empty roundtrip" true (C.equal c c')
  | Error e -> Alcotest.fail e

let test_comments_and_blanks () =
  let text = "bbc-config v1\n# a comment\nn 3\n\n0: 1 # trailing\n" in
  match Codec.config_of_string text with
  | Ok c -> Alcotest.(check (list int)) "parsed" [ 1 ] (C.targets c 0)
  | Error e -> Alcotest.fail e

let test_errors () =
  let bad = [ ""; "nonsense"; "bbc-config v1\nn x\n"; "bbc-config v1\nn 2\n5: 1\n" ] in
  List.iter
    (fun text ->
      Alcotest.(check bool) "rejected" true
        (Result.is_error (Codec.config_of_string text)))
    bad;
  Alcotest.(check bool) "bad instance" true
    (Result.is_error (Codec.instance_of_string "bbc-instance v1\nn 2\npenalty 9\nuniform 5\n"))

let test_file_roundtrip () =
  let dir = Filename.temp_file "bbc" "" in
  Sys.remove dir;
  let path = dir ^ ".game" in
  let inst = I.uniform ~n:5 ~k:2 in
  (match Codec.save_instance path inst with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Codec.load_instance path with
  | Ok inst' -> Alcotest.(check bool) "file roundtrip" true (instances_equal inst inst')
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_json_instance_roundtrip () =
  let uniform = I.uniform ~n:7 ~k:3 in
  let weight = [| [| 0; 3; 0 |]; [| 1; 0; 2 |]; [| 0; 5; 0 |] |] in
  let cost = [| [| 0; 2; 1 |]; [| 1; 0; 1 |]; [| 3; 1; 0 |] |] in
  let length = [| [| 1; 4; 1 |]; [| 2; 1; 1 |]; [| 1; 1; 1 |] |] in
  let general = I.general ~weight ~cost ~length ~budget:[| 2; 1; 3 |] () in
  List.iter
    (fun (name, inst) ->
      match Codec.instance_of_json (Codec.instance_to_json inst) with
      | Ok inst' ->
          Alcotest.(check bool) (name ^ " json roundtrip") true (instances_equal inst inst')
      | Error e -> Alcotest.fail e)
    [ ("uniform", uniform); ("general", general) ]

let test_json_config_roundtrip () =
  let c = C.of_lists 5 [| [ 1; 3 ]; []; [ 0 ]; [ 2; 4 ]; [] |] in
  match Codec.config_of_json (Codec.config_to_json c) with
  | Ok c' -> Alcotest.(check bool) "config json roundtrip" true (C.equal c c')
  | Error e -> Alcotest.fail e

let test_json_costs_roundtrip () =
  let costs = [| 4; 0; 17 |] in
  let j = Codec.costs_to_json ~objective:Bbc.Objective.Max ~social:17 costs in
  match Codec.costs_of_json j with
  | Ok (objective, costs', social) ->
      Alcotest.(check bool) "objective" true (objective = Bbc.Objective.Max);
      Alcotest.(check (list int)) "costs" (Array.to_list costs) (Array.to_list costs');
      Alcotest.(check int) "social" 17 social
  | Error e -> Alcotest.fail e

(* The auto-detecting readers accept both formats; the shared wire
   protocol and `bbc convert` rely on this. *)
let test_any_string_detection () =
  let inst = I.uniform ~n:5 ~k:2 in
  let as_text = Codec.instance_to_string inst in
  let as_json = Bbc.Json.to_string (Codec.instance_to_json inst) in
  List.iter
    (fun (label, s) ->
      match Codec.instance_of_any_string s with
      | Ok inst' -> Alcotest.(check bool) label true (instances_equal inst inst')
      | Error e -> Alcotest.fail e)
    [ ("text detected", as_text); ("json detected", as_json) ];
  let c = C.of_lists 3 [| [ 1 ]; [ 2 ]; [] |] in
  (match Codec.config_of_any_string (Bbc.Json.to_string (Codec.config_to_json c)) with
  | Ok c' -> Alcotest.(check bool) "config json detected" true (C.equal c c')
  | Error e -> Alcotest.fail e);
  (* a JSON payload of the wrong type is rejected, not misparsed *)
  Alcotest.(check bool) "type mismatch rejected" true
    (Result.is_error (Codec.instance_of_any_string (Bbc.Json.to_string (Codec.config_to_json c))))

let test_json_errors () =
  let bad =
    [
      "{}";
      "{\"type\":\"bbc-instance\",\"version\":1}";
      "{\"type\":\"bbc-instance\",\"version\":1,\"n\":0,\"penalty\":1,\"uniform_k\":1}";
      "{\"type\":\"bbc-instance\",\"version\":1,\"n\":2,\"penalty\":9,\"uniform_k\":5}";
    ]
  in
  List.iter
    (fun s ->
      match Bbc.Json.of_string s with
      | Error e -> Alcotest.fail e
      | Ok j ->
          Alcotest.(check bool) ("rejects " ^ s) true
            (Result.is_error (Codec.instance_of_json j)))
    bad

let suite =
  [
    Alcotest.test_case "uniform roundtrip" `Quick test_uniform_roundtrip;
    Alcotest.test_case "json instance roundtrip" `Quick test_json_instance_roundtrip;
    Alcotest.test_case "json config roundtrip" `Quick test_json_config_roundtrip;
    Alcotest.test_case "json costs roundtrip" `Quick test_json_costs_roundtrip;
    Alcotest.test_case "format auto-detection" `Quick test_any_string_detection;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "general roundtrip" `Quick test_general_roundtrip;
    Alcotest.test_case "gadget roundtrip" `Quick test_gadget_roundtrip;
    Alcotest.test_case "config roundtrip" `Quick test_config_roundtrip;
    Alcotest.test_case "empty config" `Quick test_empty_config_roundtrip;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
  ]
