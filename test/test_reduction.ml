module R = Bbc.Reduction
module Cnf = Bbc_sat.Cnf
module Solver = Bbc_sat.Solver
module I = Bbc.Instance
module C = Bbc.Config

let sat_formula () =
  Cnf.make ~num_vars:3 [ [ 1; 2; 3 ]; [ -1; 2; -3 ]; [ 1; -2; 3 ] ]

let unsat_formula () = Cnf.make ~num_vars:1 [ [ 1; 1; 1 ]; [ -1; -1; -1 ] ]

let test_build_shape () =
  let t = R.build (sat_formula ()) in
  (* 3 vars * 3 + 3 clauses * 4 + S + H + 5 core = 28. *)
  Alcotest.(check int) "node count" 28 (I.n t.instance);
  Alcotest.(check int) "sink budget 0" 0 (I.budget t.instance t.sink);
  Alcotest.(check int) "hub budget m" 3 (I.budget t.instance t.hub);
  Alcotest.(check int) "variable budget" 1 (I.budget t.instance (t.var_node 2));
  Alcotest.(check int) "truth budget 0" 0 (I.budget t.instance (t.truth_node 2 true))

let test_non_depicted_unaffordable () =
  let t = R.build (sat_formula ()) in
  (* A variable node cannot afford a link to another variable's truth
     node. *)
  Alcotest.(check bool) "priced out" true
    (I.cost t.instance (t.var_node 1) (t.truth_node 2 true)
    > I.budget t.instance (t.var_node 1));
  (* But its own truth links cost 1. *)
  Alcotest.(check int) "depicted link" 1
    (I.cost t.instance (t.var_node 1) (t.truth_node 1 false))

let test_encode_is_nash_when_satisfiable () =
  let f = sat_formula () in
  let t = R.build f in
  match Solver.solve f with
  | Sat assignment ->
      let config = R.encode t assignment in
      Alcotest.(check bool) "feasible" true (C.feasible t.instance config);
      Alcotest.(check bool) "pure NE" true (Bbc.Stability.is_stable t.instance config)
  | Unsat -> Alcotest.fail "formula is satisfiable"

let test_encode_decode_roundtrip () =
  let f = sat_formula () in
  let t = R.build f in
  match Solver.solve f with
  | Sat assignment ->
      let decoded = R.decode t (R.encode t assignment) in
      Alcotest.(check bool) "decoded satisfies" true (Cnf.eval f decoded);
      for i = 1 to Cnf.num_vars f do
        Alcotest.(check bool) "assignment preserved" assignment.(i) decoded.(i)
      done
  | Unsat -> Alcotest.fail "formula is satisfiable"

let test_every_satisfying_assignment_encodes_to_ne () =
  (* All satisfying assignments of a small formula yield equilibria. *)
  let f = Cnf.make ~num_vars:2 [ [ 1; 2; 2 ]; [ -1; 2; 2 ] ] in
  let t = R.build f in
  let assignment = Array.make 3 false in
  for a = 0 to 3 do
    assignment.(1) <- a land 1 = 1;
    assignment.(2) <- a land 2 = 2;
    if Cnf.eval f assignment then
      Alcotest.(check bool) "NE" true
        (Bbc.Stability.is_stable t.instance (R.encode t assignment))
  done

let test_unsatisfied_encoding_is_unstable () =
  (* Encoding a non-satisfying assignment must NOT be stable (the central
     node or a clause node deviates). *)
  let f = sat_formula () in
  let t = R.build f in
  let assignment = [| false; false; false; false |] in
  (* clause 3 = (x1 | -x2 | x3) is satisfied by all-false?  -x2 yes!
     pick all-false only if it fails the formula; otherwise find one. *)
  let falsifying = ref None in
  (try
     for a = 0 to 7 do
       let s = Array.init 4 (fun i -> i > 0 && (a lsr (i - 1)) land 1 = 1) in
       if not (Cnf.eval f s) then begin
         falsifying := Some s;
         raise Exit
       end
     done
   with Exit -> ());
  (match !falsifying with
  | Some s ->
      Alcotest.(check bool) "not stable" false
        (Bbc.Stability.is_stable t.instance (R.encode t s))
  | None -> Alcotest.fail "tautology?");
  ignore assignment

let test_unsat_has_no_ne_restricted () =
  let t = R.build (unsat_formula ()) in
  let candidates = R.candidate_strategies t in
  match Bbc.Exhaustive.has_equilibrium ~candidates t.instance with
  | Some b -> Alcotest.(check bool) "no NE over reduced space" false b
  | None -> Alcotest.fail "search aborted"

let test_sat_has_ne_restricted () =
  (* The same reduced space does contain the equilibrium when the formula
     is satisfiable. *)
  let f = Cnf.make ~num_vars:1 [ [ 1; 1; 1 ] ] in
  let t = R.build f in
  let candidates = R.candidate_strategies t in
  match Bbc.Exhaustive.has_equilibrium ~candidates t.instance with
  | Some b -> Alcotest.(check bool) "NE exists" true b
  | None -> Alcotest.fail "search aborted"

let test_rejects_non_3sat () =
  Alcotest.(check bool) "wide clause rejected" true
    (try
       ignore (R.build (Cnf.make ~num_vars:4 [ [ 1; 2; 3; 4 ] ]));
       false
     with Invalid_argument _ -> true)

let test_unsat_pair_and_larger () =
  (* V=2, m=4 unsatisfiable formula: (x|y|y)(x|-y|-y)(-x|y|y)(-x|-y|-y). *)
  let f =
    Cnf.make ~num_vars:2
      [ [ 1; 2; 2 ]; [ 1; -2; -2 ]; [ -1; 2; 2 ]; [ -1; -2; -2 ] ]
  in
  Alcotest.(check bool) "unsat" false (Solver.is_satisfiable f);
  let t = R.build f in
  let candidates = R.candidate_strategies t in
  match Bbc.Exhaustive.has_equilibrium ~candidates t.instance with
  | Some b -> Alcotest.(check bool) "no NE" false b
  | None -> Alcotest.fail "search aborted"

let suite =
  [
    Alcotest.test_case "layout" `Quick test_build_shape;
    Alcotest.test_case "non-depicted links priced out" `Quick test_non_depicted_unaffordable;
    Alcotest.test_case "SAT -> encoded profile is a NE" `Quick test_encode_is_nash_when_satisfiable;
    Alcotest.test_case "encode/decode roundtrip" `Quick test_encode_decode_roundtrip;
    Alcotest.test_case "all satisfying assignments -> NEs" `Quick test_every_satisfying_assignment_encodes_to_ne;
    Alcotest.test_case "falsifying encoding unstable" `Quick test_unsatisfied_encoding_is_unstable;
    Alcotest.test_case "UNSAT -> no NE (restricted)" `Quick test_unsat_has_no_ne_restricted;
    Alcotest.test_case "SAT -> NE found (restricted)" `Quick test_sat_has_ne_restricted;
    Alcotest.test_case "rejects non-3SAT" `Quick test_rejects_non_3sat;
    Alcotest.test_case "larger UNSAT instance" `Slow test_unsat_pair_and_larger;
  ]

let test_build_k_shapes () =
  let t = R.build_k ~k:2 (sat_formula ()) in
  Alcotest.(check int) "uniform budget" 2 (I.budget t.instance 0);
  Alcotest.(check int) "anchors" 3 (List.length t.anchors);
  List.iter
    (fun u -> Alcotest.(check int) "every budget = k" 2 (I.budget t.instance u))
    (List.init (I.n t.instance) Fun.id);
  (* k = 1 via build_k coincides with build. *)
  let t1 = R.build_k ~k:1 (sat_formula ()) in
  Alcotest.(check int) "k=1 fallthrough" 1 t1.budget_k;
  Alcotest.(check (list int)) "no anchors at k=1" [] t1.anchors

let test_build_k_sat_direction () =
  List.iter
    (fun k ->
      let f = sat_formula () in
      let t = R.build_k ~k f in
      match Solver.solve f with
      | Sat assignment ->
          let config = R.encode t assignment in
          Alcotest.(check bool) "feasible" true (C.feasible t.instance config);
          Alcotest.(check bool)
            (Printf.sprintf "k=%d pure NE" k)
            true
            (Bbc.Stability.is_stable t.instance config);
          Alcotest.(check bool) "decodes" true
            (Cnf.eval f (R.decode t config))
      | Unsat -> Alcotest.fail "satisfiable formula")
    [ 2; 3 ]

let test_build_k_unsat_direction () =
  List.iter
    (fun k ->
      let t = R.build_k ~k (unsat_formula ()) in
      let candidates = R.candidate_strategies t in
      match Bbc.Exhaustive.has_equilibrium ~candidates t.instance with
      | Some b ->
          Alcotest.(check bool) (Printf.sprintf "k=%d no NE" k) false b
      | None -> Alcotest.fail "search aborted")
    [ 2; 3 ]

let test_build_k_anchors_forced () =
  (* In the encoded equilibrium, every non-anchor node holds its anchor
     links (they are strictly dominant). *)
  let f = sat_formula () in
  let t = R.build_k ~k:2 f in
  match Solver.solve f with
  | Sat assignment ->
      let config = R.encode t assignment in
      let var = t.var_node 1 in
      let targets = C.targets config var in
      Alcotest.(check bool) "variable holds an anchor" true
        (List.exists (fun v -> List.mem v t.anchors) targets)
  | Unsat -> Alcotest.fail "satisfiable formula"

let suite =
  suite
  @ [
      Alcotest.test_case "build_k shapes" `Quick test_build_k_shapes;
      Alcotest.test_case "build_k SAT -> NE (k=2,3)" `Quick test_build_k_sat_direction;
      Alcotest.test_case "build_k UNSAT -> no NE (k=2,3)" `Slow test_build_k_unsat_direction;
      Alcotest.test_case "build_k anchors forced" `Quick test_build_k_anchors_forced;
    ]
