module GI = Bbc.Gen_instance
module I = Bbc.Instance
module SM = Bbc_prng.Splitmix

let test_sparse_weights_shape () =
  let rng = SM.create 1 in
  let inst = GI.sparse_weights rng ~n:8 ~k:2 () in
  Alcotest.(check int) "n" 8 (I.n inst);
  for u = 0 to 7 do
    Alcotest.(check int) "budget" 2 (I.budget inst u);
    for v = 0 to 7 do
      if u <> v then begin
        Alcotest.(check int) "unit cost" 1 (I.cost inst u v);
        Alcotest.(check bool) "weight range" true
          (I.weight inst u v >= 0 && I.weight inst u v <= 3)
      end
    done
  done

let test_sparse_weights_density () =
  let rng = SM.create 2 in
  let inst = GI.sparse_weights rng ~n:20 ~k:1 ~zero_probability:0.0 () in
  for u = 0 to 19 do
    for v = 0 to 19 do
      if u <> v then
        Alcotest.(check bool) "no zeros at p=0" true (I.weight inst u v > 0)
    done
  done

let test_random_budgets () =
  let rng = SM.create 3 in
  let inst = GI.random_budgets rng ~n:10 ~max_budget:3 in
  for u = 0 to 9 do
    Alcotest.(check bool) "in range" true (I.budget inst u >= 0 && I.budget inst u <= 3);
    for v = 0 to 9 do
      if u <> v then Alcotest.(check int) "uniform weight" 1 (I.weight inst u v)
    done
  done

let test_random_costs () =
  let rng = SM.create 4 in
  let inst = GI.random_costs rng ~n:10 ~k:3 () in
  for u = 0 to 9 do
    for v = 0 to 9 do
      if u <> v then
        Alcotest.(check bool) "cost range" true
          (I.cost inst u v >= 1 && I.cost inst u v <= 3)
    done
  done

let test_metric_lengths_triangle () =
  let rng = SM.create 5 in
  let inst = GI.metric_lengths rng ~n:12 ~k:2 () in
  for u = 0 to 11 do
    for v = 0 to 11 do
      if u <> v then begin
        Alcotest.(check int) "symmetric" (I.length inst u v) (I.length inst v u);
        for w = 0 to 11 do
          if w <> u && w <> v then
            Alcotest.(check bool) "triangle inequality" true
              (I.length inst u v <= I.length inst u w + I.length inst w v)
        done
      end
    done
  done

let test_perturbed_uniform () =
  let rng = SM.create 6 in
  let inst = GI.perturbed_uniform rng ~n:8 ~k:2 ~flips:3 in
  let twos = ref 0 in
  for u = 0 to 7 do
    for v = 0 to 7 do
      if u <> v then begin
        let w = I.weight inst u v in
        Alcotest.(check bool) "weights in {1,2}" true (w = 1 || w = 2);
        if w = 2 then incr twos
      end
    done
  done;
  Alcotest.(check bool) "at most 'flips' twos" true (!twos <= 3)

let test_determinism () =
  let a = GI.sparse_weights (SM.create 9) ~n:6 ~k:1 () in
  let b = GI.sparse_weights (SM.create 9) ~n:6 ~k:1 () in
  for u = 0 to 5 do
    for v = 0 to 5 do
      if u <> v then
        Alcotest.(check int) "same seed same instance" (I.weight a u v) (I.weight b u v)
    done
  done

let suite =
  [
    Alcotest.test_case "sparse weights shape" `Quick test_sparse_weights_shape;
    Alcotest.test_case "sparse density" `Quick test_sparse_weights_density;
    Alcotest.test_case "random budgets" `Quick test_random_budgets;
    Alcotest.test_case "random costs" `Quick test_random_costs;
    Alcotest.test_case "metric lengths" `Quick test_metric_lengths_triangle;
    Alcotest.test_case "perturbed uniform" `Quick test_perturbed_uniform;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
