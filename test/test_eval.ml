module I = Bbc.Instance
module C = Bbc.Config
module E = Bbc.Eval

let ring_config n = C.of_lists n (Array.init n (fun v -> [ (v + 1) mod n ]))

let test_ring_cost () =
  (* Directed ring on 5 nodes: each node's cost is 1+2+3+4 = 10. *)
  let inst = I.uniform ~n:5 ~k:1 in
  let c = ring_config 5 in
  for v = 0 to 4 do
    Alcotest.(check int) "node cost" 10 (E.node_cost inst c v)
  done;
  Alcotest.(check int) "social" 50 (E.social_cost inst c)

let test_disconnection_penalty () =
  let inst = I.uniform ~n:3 ~k:1 in
  let m = I.penalty inst in
  let c = C.of_lists 3 [| [ 1 ]; []; [] |] in
  Alcotest.(check int) "0 reaches 1, misses 2" (1 + m) (E.node_cost inst c 0);
  Alcotest.(check int) "1 isolated" (2 * m) (E.node_cost inst c 1)

let test_weights_multiply () =
  let w = [| [| 0; 3; 7 |]; [| 0; 0; 0 |]; [| 0; 0; 0 |] |] in
  let inst = I.of_weights ~k:2 w in
  let c = C.of_lists 3 [| [ 1 ]; [ 2 ]; [] |] in
  (* d(0,1)=1 w3, d(0,2)=2 w7 *)
  Alcotest.(check int) "weighted" (3 + 14) (E.node_cost inst c 0)

let test_zero_weight_ignores_unreachable () =
  (* A zero-preference target contributes nothing even when unreachable. *)
  let w = [| [| 0; 1; 0 |]; [| 0; 0; 0 |]; [| 0; 0; 0 |] |] in
  let inst = I.of_weights ~k:1 w in
  let c = C.of_lists 3 [| [ 1 ]; []; [] |] in
  Alcotest.(check int) "only the weighted term" 1 (E.node_cost inst c 0)

let test_lengths_respected () =
  let ones = Array.make_matrix 3 3 1 in
  let len = [| [| 1; 4; 1 |]; [| 1; 1; 6 |]; [| 1; 1; 1 |] |] in
  let inst = I.general ~weight:ones ~cost:ones ~length:len ~budget:[| 1; 1; 1 |] () in
  let c = C.of_lists 3 [| [ 1 ]; [ 2 ]; [ 0 ] |] in
  (* d(0,1)=4, d(0,2)=4+6=10 *)
  Alcotest.(check int) "weighted lengths" 14 (E.node_cost inst c 0)

let test_max_objective () =
  let inst = I.uniform ~n:5 ~k:1 in
  let c = ring_config 5 in
  for v = 0 to 4 do
    Alcotest.(check int) "max distance" 4 (E.node_cost ~objective:Max inst c v)
  done;
  Alcotest.(check int) "social max" 20 (E.social_cost ~objective:Max inst c)

let test_max_objective_penalty () =
  let inst = I.uniform ~n:4 ~k:1 in
  let c = C.of_lists 4 [| [ 1 ]; []; []; [] |] in
  Alcotest.(check int) "max = penalty" (I.penalty inst) (E.node_cost ~objective:Max inst c 0)

let test_all_costs_matches_node_cost () =
  let inst = I.uniform ~n:6 ~k:2 in
  let c =
    C.of_lists 6 [| [ 1; 2 ]; [ 3 ]; [ 4; 5 ]; [ 0 ]; [ 1 ]; [ 0; 3 ] |]
  in
  let all = E.all_costs inst c in
  for v = 0 to 5 do
    Alcotest.(check int) "agree" (E.node_cost inst c v) all.(v)
  done

let test_graph_reuse () =
  let inst = I.uniform ~n:5 ~k:1 in
  let c = ring_config 5 in
  let g = C.to_graph inst c in
  Alcotest.(check int) "explicit graph" (E.node_cost inst c 3)
    (E.node_cost ~graph:g inst c 3)

let test_shared_cost_of_distances () =
  let inst = I.uniform ~n:4 ~k:1 in
  let dist = [| 0; 2; Bbc_graph.Paths.unreachable; 1 |] in
  Alcotest.(check int) "fold with penalty" (2 + I.penalty inst + 1)
    (E.cost_of_distances inst 0 dist)

let suite =
  [
    Alcotest.test_case "ring cost" `Quick test_ring_cost;
    Alcotest.test_case "disconnection penalty" `Quick test_disconnection_penalty;
    Alcotest.test_case "weights multiply distances" `Quick test_weights_multiply;
    Alcotest.test_case "zero weight ignores unreachable" `Quick test_zero_weight_ignores_unreachable;
    Alcotest.test_case "lengths respected" `Quick test_lengths_respected;
    Alcotest.test_case "max objective" `Quick test_max_objective;
    Alcotest.test_case "max objective penalty" `Quick test_max_objective_penalty;
    Alcotest.test_case "all_costs consistency" `Quick test_all_costs_matches_node_cost;
    Alcotest.test_case "graph reuse" `Quick test_graph_reuse;
    Alcotest.test_case "cost_of_distances" `Quick test_shared_cost_of_distances;
  ]
